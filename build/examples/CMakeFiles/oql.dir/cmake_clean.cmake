file(REMOVE_RECURSE
  "CMakeFiles/oql.dir/oql.cpp.o"
  "CMakeFiles/oql.dir/oql.cpp.o.d"
  "oql"
  "oql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
