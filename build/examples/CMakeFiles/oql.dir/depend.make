# Empty dependencies file for oql.
# This may be replaced when dependencies are built.
