file(REMOVE_RECURSE
  "CMakeFiles/self_tuning.dir/self_tuning.cpp.o"
  "CMakeFiles/self_tuning.dir/self_tuning.cpp.o.d"
  "self_tuning"
  "self_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
