# Empty compiler generated dependencies file for self_tuning.
# This may be replaced when dependencies are built.
