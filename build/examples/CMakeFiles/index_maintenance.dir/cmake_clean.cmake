file(REMOVE_RECURSE
  "CMakeFiles/index_maintenance.dir/index_maintenance.cpp.o"
  "CMakeFiles/index_maintenance.dir/index_maintenance.cpp.o.d"
  "index_maintenance"
  "index_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
