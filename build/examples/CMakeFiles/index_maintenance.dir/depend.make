# Empty dependencies file for index_maintenance.
# This may be replaced when dependencies are built.
