# Empty compiler generated dependencies file for company.
# This may be replaced when dependencies are built.
