# Empty compiler generated dependencies file for cost_formula_test.
# This may be replaced when dependencies are built.
