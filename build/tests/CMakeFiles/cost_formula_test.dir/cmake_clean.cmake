file(REMOVE_RECURSE
  "CMakeFiles/cost_formula_test.dir/cost_formula_test.cc.o"
  "CMakeFiles/cost_formula_test.dir/cost_formula_test.cc.o.d"
  "cost_formula_test"
  "cost_formula_test.pdb"
  "cost_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
