file(REMOVE_RECURSE
  "CMakeFiles/gom_test.dir/gom_test.cc.o"
  "CMakeFiles/gom_test.dir/gom_test.cc.o.d"
  "gom_test"
  "gom_test.pdb"
  "gom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
