# Empty compiler generated dependencies file for gom_test.
# This may be replaced when dependencies are built.
