file(REMOVE_RECURSE
  "CMakeFiles/mix_driver_test.dir/mix_driver_test.cc.o"
  "CMakeFiles/mix_driver_test.dir/mix_driver_test.cc.o.d"
  "mix_driver_test"
  "mix_driver_test.pdb"
  "mix_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
