# Empty dependencies file for asr_query_test.
# This may be replaced when dependencies are built.
