file(REMOVE_RECURSE
  "CMakeFiles/asr_query_test.dir/asr_query_test.cc.o"
  "CMakeFiles/asr_query_test.dir/asr_query_test.cc.o.d"
  "asr_query_test"
  "asr_query_test.pdb"
  "asr_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
