
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bulk_build_test.cc" "tests/CMakeFiles/bulk_build_test.dir/bulk_build_test.cc.o" "gcc" "tests/CMakeFiles/bulk_build_test.dir/bulk_build_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/gom/CMakeFiles/asr_gom.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/asr_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/asr_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/asr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/asr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/asr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/asr_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/asr_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
