# Empty dependencies file for anchored_test.
# This may be replaced when dependencies are built.
