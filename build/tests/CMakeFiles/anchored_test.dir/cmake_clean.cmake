file(REMOVE_RECURSE
  "CMakeFiles/anchored_test.dir/anchored_test.cc.o"
  "CMakeFiles/anchored_test.dir/anchored_test.cc.o.d"
  "anchored_test"
  "anchored_test.pdb"
  "anchored_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchored_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
