# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/gom_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rel_test[1]_include.cmake")
include("/root/repo/build/tests/path_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/asr_query_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sharing_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/list_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/crosscheck_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/mix_driver_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/anchored_test[1]_include.cmake")
include("/root/repo/build/tests/cost_formula_test[1]_include.cmake")
include("/root/repo/build/tests/bulk_build_test[1]_include.cmake")
