file(REMOVE_RECURSE
  "CMakeFiles/validate_model_vs_system.dir/validate_model_vs_system.cc.o"
  "CMakeFiles/validate_model_vs_system.dir/validate_model_vs_system.cc.o.d"
  "validate_model_vs_system"
  "validate_model_vs_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_model_vs_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
