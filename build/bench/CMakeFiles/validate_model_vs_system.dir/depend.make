# Empty dependencies file for validate_model_vs_system.
# This may be replaced when dependencies are built.
