# Empty dependencies file for fig04_storage_extensions.
# This may be replaced when dependencies are built.
