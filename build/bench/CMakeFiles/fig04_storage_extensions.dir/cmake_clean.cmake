file(REMOVE_RECURSE
  "CMakeFiles/fig04_storage_extensions.dir/fig04_storage_extensions.cc.o"
  "CMakeFiles/fig04_storage_extensions.dir/fig04_storage_extensions.cc.o.d"
  "fig04_storage_extensions"
  "fig04_storage_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_storage_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
