file(REMOVE_RECURSE
  "CMakeFiles/fig05_storage_vary_d.dir/fig05_storage_vary_d.cc.o"
  "CMakeFiles/fig05_storage_vary_d.dir/fig05_storage_vary_d.cc.o.d"
  "fig05_storage_vary_d"
  "fig05_storage_vary_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_storage_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
