# Empty compiler generated dependencies file for fig05_storage_vary_d.
# This may be replaced when dependencies are built.
