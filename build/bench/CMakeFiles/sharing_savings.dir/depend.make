# Empty dependencies file for sharing_savings.
# This may be replaced when dependencies are built.
