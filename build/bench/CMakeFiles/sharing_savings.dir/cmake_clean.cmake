file(REMOVE_RECURSE
  "CMakeFiles/sharing_savings.dir/sharing_savings.cc.o"
  "CMakeFiles/sharing_savings.dir/sharing_savings.cc.o.d"
  "sharing_savings"
  "sharing_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
