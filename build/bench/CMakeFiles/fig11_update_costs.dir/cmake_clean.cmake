file(REMOVE_RECURSE
  "CMakeFiles/fig11_update_costs.dir/fig11_update_costs.cc.o"
  "CMakeFiles/fig11_update_costs.dir/fig11_update_costs.cc.o.d"
  "fig11_update_costs"
  "fig11_update_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_update_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
