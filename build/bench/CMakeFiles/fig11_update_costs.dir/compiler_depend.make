# Empty compiler generated dependencies file for fig11_update_costs.
# This may be replaced when dependencies are built.
