file(REMOVE_RECURSE
  "CMakeFiles/fig06_query_backward.dir/fig06_query_backward.cc.o"
  "CMakeFiles/fig06_query_backward.dir/fig06_query_backward.cc.o.d"
  "fig06_query_backward"
  "fig06_query_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_query_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
