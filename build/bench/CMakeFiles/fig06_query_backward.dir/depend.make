# Empty dependencies file for fig06_query_backward.
# This may be replaced when dependencies are built.
