file(REMOVE_RECURSE
  "CMakeFiles/fig14_opmix_binary.dir/fig14_opmix_binary.cc.o"
  "CMakeFiles/fig14_opmix_binary.dir/fig14_opmix_binary.cc.o.d"
  "fig14_opmix_binary"
  "fig14_opmix_binary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_opmix_binary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
