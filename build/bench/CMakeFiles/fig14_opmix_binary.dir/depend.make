# Empty dependencies file for fig14_opmix_binary.
# This may be replaced when dependencies are built.
