# Empty compiler generated dependencies file for empirical_opmix.
# This may be replaced when dependencies are built.
