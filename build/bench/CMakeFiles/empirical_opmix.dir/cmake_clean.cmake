file(REMOVE_RECURSE
  "CMakeFiles/empirical_opmix.dir/empirical_opmix.cc.o"
  "CMakeFiles/empirical_opmix.dir/empirical_opmix.cc.o.d"
  "empirical_opmix"
  "empirical_opmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_opmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
