file(REMOVE_RECURSE
  "CMakeFiles/fig16_left_vs_full.dir/fig16_left_vs_full.cc.o"
  "CMakeFiles/fig16_left_vs_full.dir/fig16_left_vs_full.cc.o.d"
  "fig16_left_vs_full"
  "fig16_left_vs_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_left_vs_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
