# Empty dependencies file for fig16_left_vs_full.
# This may be replaced when dependencies are built.
