file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_position.dir/ablation_update_position.cc.o"
  "CMakeFiles/ablation_update_position.dir/ablation_update_position.cc.o.d"
  "ablation_update_position"
  "ablation_update_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
