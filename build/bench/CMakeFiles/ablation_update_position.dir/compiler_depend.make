# Empty compiler generated dependencies file for ablation_update_position.
# This may be replaced when dependencies are built.
