# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_right_vs_full.
