# Empty dependencies file for fig17_right_vs_full.
# This may be replaced when dependencies are built.
