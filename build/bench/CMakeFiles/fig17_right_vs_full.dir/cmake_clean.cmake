file(REMOVE_RECURSE
  "CMakeFiles/fig17_right_vs_full.dir/fig17_right_vs_full.cc.o"
  "CMakeFiles/fig17_right_vs_full.dir/fig17_right_vs_full.cc.o.d"
  "fig17_right_vs_full"
  "fig17_right_vs_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_right_vs_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
