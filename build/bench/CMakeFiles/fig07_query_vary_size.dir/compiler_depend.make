# Empty compiler generated dependencies file for fig07_query_vary_size.
# This may be replaced when dependencies are built.
