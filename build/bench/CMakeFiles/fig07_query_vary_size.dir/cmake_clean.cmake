file(REMOVE_RECURSE
  "CMakeFiles/fig07_query_vary_size.dir/fig07_query_vary_size.cc.o"
  "CMakeFiles/fig07_query_vary_size.dir/fig07_query_vary_size.cc.o.d"
  "fig07_query_vary_size"
  "fig07_query_vary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_query_vary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
