file(REMOVE_RECURSE
  "CMakeFiles/fig12_update_costs2.dir/fig12_update_costs2.cc.o"
  "CMakeFiles/fig12_update_costs2.dir/fig12_update_costs2.cc.o.d"
  "fig12_update_costs2"
  "fig12_update_costs2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_update_costs2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
