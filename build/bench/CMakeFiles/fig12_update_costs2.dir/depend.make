# Empty dependencies file for fig12_update_costs2.
# This may be replaced when dependencies are built.
