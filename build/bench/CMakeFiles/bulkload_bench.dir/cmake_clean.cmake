file(REMOVE_RECURSE
  "CMakeFiles/bulkload_bench.dir/bulkload_bench.cc.o"
  "CMakeFiles/bulkload_bench.dir/bulkload_bench.cc.o.d"
  "bulkload_bench"
  "bulkload_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulkload_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
