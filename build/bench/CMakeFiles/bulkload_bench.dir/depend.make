# Empty dependencies file for bulkload_bench.
# This may be replaced when dependencies are built.
