# Empty dependencies file for fig13_update_vary_size.
# This may be replaced when dependencies are built.
