file(REMOVE_RECURSE
  "CMakeFiles/fig09_query_vary_fanout.dir/fig09_query_vary_fanout.cc.o"
  "CMakeFiles/fig09_query_vary_fanout.dir/fig09_query_vary_fanout.cc.o.d"
  "fig09_query_vary_fanout"
  "fig09_query_vary_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_query_vary_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
