# Empty compiler generated dependencies file for fig09_query_vary_fanout.
# This may be replaced when dependencies are built.
