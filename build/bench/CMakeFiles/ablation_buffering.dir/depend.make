# Empty dependencies file for ablation_buffering.
# This may be replaced when dependencies are built.
