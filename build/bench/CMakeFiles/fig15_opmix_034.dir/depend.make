# Empty dependencies file for fig15_opmix_034.
# This may be replaced when dependencies are built.
