file(REMOVE_RECURSE
  "CMakeFiles/fig15_opmix_034.dir/fig15_opmix_034.cc.o"
  "CMakeFiles/fig15_opmix_034.dir/fig15_opmix_034.cc.o.d"
  "fig15_opmix_034"
  "fig15_opmix_034.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_opmix_034.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
