# Empty dependencies file for fig08_query_supported.
# This may be replaced when dependencies are built.
