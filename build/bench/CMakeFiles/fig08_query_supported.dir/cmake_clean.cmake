file(REMOVE_RECURSE
  "CMakeFiles/fig08_query_supported.dir/fig08_query_supported.cc.o"
  "CMakeFiles/fig08_query_supported.dir/fig08_query_supported.cc.o.d"
  "fig08_query_supported"
  "fig08_query_supported.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_query_supported.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
