# Empty dependencies file for asr_workload.
# This may be replaced when dependencies are built.
