file(REMOVE_RECURSE
  "libasr_workload.a"
)
