
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/mix_driver.cc" "src/workload/CMakeFiles/asr_workload.dir/mix_driver.cc.o" "gcc" "src/workload/CMakeFiles/asr_workload.dir/mix_driver.cc.o.d"
  "/root/repo/src/workload/profile_estimator.cc" "src/workload/CMakeFiles/asr_workload.dir/profile_estimator.cc.o" "gcc" "src/workload/CMakeFiles/asr_workload.dir/profile_estimator.cc.o.d"
  "/root/repo/src/workload/synthetic_base.cc" "src/workload/CMakeFiles/asr_workload.dir/synthetic_base.cc.o" "gcc" "src/workload/CMakeFiles/asr_workload.dir/synthetic_base.cc.o.d"
  "/root/repo/src/workload/usage_recorder.cc" "src/workload/CMakeFiles/asr_workload.dir/usage_recorder.cc.o" "gcc" "src/workload/CMakeFiles/asr_workload.dir/usage_recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/asr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/asr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/gom/CMakeFiles/asr_gom.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/asr_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/asr_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
