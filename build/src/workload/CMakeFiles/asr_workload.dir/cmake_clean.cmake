file(REMOVE_RECURSE
  "CMakeFiles/asr_workload.dir/mix_driver.cc.o"
  "CMakeFiles/asr_workload.dir/mix_driver.cc.o.d"
  "CMakeFiles/asr_workload.dir/profile_estimator.cc.o"
  "CMakeFiles/asr_workload.dir/profile_estimator.cc.o.d"
  "CMakeFiles/asr_workload.dir/synthetic_base.cc.o"
  "CMakeFiles/asr_workload.dir/synthetic_base.cc.o.d"
  "CMakeFiles/asr_workload.dir/usage_recorder.cc.o"
  "CMakeFiles/asr_workload.dir/usage_recorder.cc.o.d"
  "libasr_workload.a"
  "libasr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
