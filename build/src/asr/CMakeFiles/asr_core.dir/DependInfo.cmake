
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asr/access_support_relation.cc" "src/asr/CMakeFiles/asr_core.dir/access_support_relation.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/access_support_relation.cc.o.d"
  "/root/repo/src/asr/decomposition.cc" "src/asr/CMakeFiles/asr_core.dir/decomposition.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/decomposition.cc.o.d"
  "/root/repo/src/asr/extension.cc" "src/asr/CMakeFiles/asr_core.dir/extension.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/extension.cc.o.d"
  "/root/repo/src/asr/maintenance.cc" "src/asr/CMakeFiles/asr_core.dir/maintenance.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/maintenance.cc.o.d"
  "/root/repo/src/asr/path_expression.cc" "src/asr/CMakeFiles/asr_core.dir/path_expression.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/path_expression.cc.o.d"
  "/root/repo/src/asr/query.cc" "src/asr/CMakeFiles/asr_core.dir/query.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/query.cc.o.d"
  "/root/repo/src/asr/sharing.cc" "src/asr/CMakeFiles/asr_core.dir/sharing.cc.o" "gcc" "src/asr/CMakeFiles/asr_core.dir/sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/gom/CMakeFiles/asr_gom.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/asr_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/asr_btree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
