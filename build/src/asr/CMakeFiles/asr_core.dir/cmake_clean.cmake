file(REMOVE_RECURSE
  "CMakeFiles/asr_core.dir/access_support_relation.cc.o"
  "CMakeFiles/asr_core.dir/access_support_relation.cc.o.d"
  "CMakeFiles/asr_core.dir/decomposition.cc.o"
  "CMakeFiles/asr_core.dir/decomposition.cc.o.d"
  "CMakeFiles/asr_core.dir/extension.cc.o"
  "CMakeFiles/asr_core.dir/extension.cc.o.d"
  "CMakeFiles/asr_core.dir/maintenance.cc.o"
  "CMakeFiles/asr_core.dir/maintenance.cc.o.d"
  "CMakeFiles/asr_core.dir/path_expression.cc.o"
  "CMakeFiles/asr_core.dir/path_expression.cc.o.d"
  "CMakeFiles/asr_core.dir/query.cc.o"
  "CMakeFiles/asr_core.dir/query.cc.o.d"
  "CMakeFiles/asr_core.dir/sharing.cc.o"
  "CMakeFiles/asr_core.dir/sharing.cc.o.d"
  "libasr_core.a"
  "libasr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
