# Empty compiler generated dependencies file for asr_core.
# This may be replaced when dependencies are built.
