file(REMOVE_RECURSE
  "libasr_core.a"
)
