file(REMOVE_RECURSE
  "CMakeFiles/asr_rel.dir/relation.cc.o"
  "CMakeFiles/asr_rel.dir/relation.cc.o.d"
  "libasr_rel.a"
  "libasr_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
