file(REMOVE_RECURSE
  "libasr_rel.a"
)
