# Empty compiler generated dependencies file for asr_rel.
# This may be replaced when dependencies are built.
