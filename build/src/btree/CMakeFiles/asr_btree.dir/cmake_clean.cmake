file(REMOVE_RECURSE
  "CMakeFiles/asr_btree.dir/btree.cc.o"
  "CMakeFiles/asr_btree.dir/btree.cc.o.d"
  "libasr_btree.a"
  "libasr_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
