# Empty dependencies file for asr_btree.
# This may be replaced when dependencies are built.
