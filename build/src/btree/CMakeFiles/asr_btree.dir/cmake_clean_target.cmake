file(REMOVE_RECURSE
  "libasr_btree.a"
)
