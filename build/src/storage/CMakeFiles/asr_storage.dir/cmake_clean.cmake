file(REMOVE_RECURSE
  "CMakeFiles/asr_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/asr_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/asr_storage.dir/disk.cc.o"
  "CMakeFiles/asr_storage.dir/disk.cc.o.d"
  "CMakeFiles/asr_storage.dir/slotted_page.cc.o"
  "CMakeFiles/asr_storage.dir/slotted_page.cc.o.d"
  "libasr_storage.a"
  "libasr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
