file(REMOVE_RECURSE
  "libasr_storage.a"
)
