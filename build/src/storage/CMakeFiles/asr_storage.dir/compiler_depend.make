# Empty compiler generated dependencies file for asr_storage.
# This may be replaced when dependencies are built.
