file(REMOVE_RECURSE
  "CMakeFiles/asr_advisor.dir/advisor.cc.o"
  "CMakeFiles/asr_advisor.dir/advisor.cc.o.d"
  "CMakeFiles/asr_advisor.dir/auto_tuner.cc.o"
  "CMakeFiles/asr_advisor.dir/auto_tuner.cc.o.d"
  "libasr_advisor.a"
  "libasr_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
