file(REMOVE_RECURSE
  "libasr_advisor.a"
)
