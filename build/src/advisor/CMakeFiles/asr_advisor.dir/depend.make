# Empty dependencies file for asr_advisor.
# This may be replaced when dependencies are built.
