file(REMOVE_RECURSE
  "libasr_lang.a"
)
