# Empty compiler generated dependencies file for asr_lang.
# This may be replaced when dependencies are built.
