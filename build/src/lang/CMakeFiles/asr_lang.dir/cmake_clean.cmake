file(REMOVE_RECURSE
  "CMakeFiles/asr_lang.dir/executor.cc.o"
  "CMakeFiles/asr_lang.dir/executor.cc.o.d"
  "CMakeFiles/asr_lang.dir/lexer.cc.o"
  "CMakeFiles/asr_lang.dir/lexer.cc.o.d"
  "CMakeFiles/asr_lang.dir/parser.cc.o"
  "CMakeFiles/asr_lang.dir/parser.cc.o.d"
  "libasr_lang.a"
  "libasr_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
