file(REMOVE_RECURSE
  "libasr_common.a"
)
