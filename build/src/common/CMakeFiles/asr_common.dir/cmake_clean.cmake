file(REMOVE_RECURSE
  "CMakeFiles/asr_common.dir/asr_key.cc.o"
  "CMakeFiles/asr_common.dir/asr_key.cc.o.d"
  "CMakeFiles/asr_common.dir/oid.cc.o"
  "CMakeFiles/asr_common.dir/oid.cc.o.d"
  "CMakeFiles/asr_common.dir/random.cc.o"
  "CMakeFiles/asr_common.dir/random.cc.o.d"
  "CMakeFiles/asr_common.dir/status.cc.o"
  "CMakeFiles/asr_common.dir/status.cc.o.d"
  "CMakeFiles/asr_common.dir/string_dict.cc.o"
  "CMakeFiles/asr_common.dir/string_dict.cc.o.d"
  "libasr_common.a"
  "libasr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
