# Empty compiler generated dependencies file for asr_common.
# This may be replaced when dependencies are built.
