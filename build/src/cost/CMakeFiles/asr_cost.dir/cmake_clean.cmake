file(REMOVE_RECURSE
  "CMakeFiles/asr_cost.dir/cost_model.cc.o"
  "CMakeFiles/asr_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/asr_cost.dir/opmix.cc.o"
  "CMakeFiles/asr_cost.dir/opmix.cc.o.d"
  "libasr_cost.a"
  "libasr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
