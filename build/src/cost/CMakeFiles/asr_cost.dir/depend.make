# Empty dependencies file for asr_cost.
# This may be replaced when dependencies are built.
