file(REMOVE_RECURSE
  "libasr_cost.a"
)
