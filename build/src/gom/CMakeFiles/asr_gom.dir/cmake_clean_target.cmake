file(REMOVE_RECURSE
  "libasr_gom.a"
)
