file(REMOVE_RECURSE
  "CMakeFiles/asr_gom.dir/database.cc.o"
  "CMakeFiles/asr_gom.dir/database.cc.o.d"
  "CMakeFiles/asr_gom.dir/object_store.cc.o"
  "CMakeFiles/asr_gom.dir/object_store.cc.o.d"
  "CMakeFiles/asr_gom.dir/type_system.cc.o"
  "CMakeFiles/asr_gom.dir/type_system.cc.o.d"
  "libasr_gom.a"
  "libasr_gom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_gom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
