
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gom/database.cc" "src/gom/CMakeFiles/asr_gom.dir/database.cc.o" "gcc" "src/gom/CMakeFiles/asr_gom.dir/database.cc.o.d"
  "/root/repo/src/gom/object_store.cc" "src/gom/CMakeFiles/asr_gom.dir/object_store.cc.o" "gcc" "src/gom/CMakeFiles/asr_gom.dir/object_store.cc.o.d"
  "/root/repo/src/gom/type_system.cc" "src/gom/CMakeFiles/asr_gom.dir/type_system.cc.o" "gcc" "src/gom/CMakeFiles/asr_gom.dir/type_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asr_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
