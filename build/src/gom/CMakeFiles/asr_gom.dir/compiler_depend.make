# Empty compiler generated dependencies file for asr_gom.
# This may be replaced when dependencies are built.
