// §5.4 sharing in practice: two path expressions overlapping in a middle
// chain segment, built through the AsrCatalog with the (0,i,i+j,n) sharing
// decompositions. Reports the storage saved by sharing the common partition
// versus building both ASRs privately.
#include <optional>

#include "asr/query.h"
#include "asr/sharing.h"
#include "bench_util.h"
#include "common/random.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

using namespace asr;

namespace {

struct TwoPathBase {
  gom::Schema schema;
  storage::Disk disk;
  storage::BufferManager buffers{&disk, 256};
  std::unique_ptr<gom::ObjectStore> store;
  std::optional<PathExpression> path_a, path_b;
};

// A0 -> B -> C -> D and A1 -> B -> C -> E share the chain B.Next -> C.
std::unique_ptr<TwoPathBase> BuildBase(int scale) {
  auto base = std::make_unique<TwoPathBase>();
  gom::Schema& s = base->schema;
  TypeId d = s.DefineTupleType("D", {}, {}).value();
  TypeId e = s.DefineTupleType("E", {}, {}).value();
  TypeId c = s.DefineTupleType("C", {},
                               {{"ToD", d, kInvalidTypeId},
                                {"ToE", e, kInvalidTypeId}})
                 .value();
  TypeId b = s.DefineTupleType("B", {}, {{"Next", c, kInvalidTypeId}})
                 .value();
  TypeId a0 = s.DefineTupleType("A0", {}, {{"ToB", b, kInvalidTypeId}})
                  .value();
  TypeId a1 = s.DefineTupleType("A1", {}, {{"IntoB", b, kInvalidTypeId}})
                  .value();
  base->store = std::make_unique<gom::ObjectStore>(&base->schema,
                                                   &base->buffers);
  gom::ObjectStore& st = *base->store;

  Rng rng(5);
  std::vector<Oid> bs, cs, ds, es;
  for (int i = 0; i < 6 * scale; ++i) bs.push_back(st.CreateObject(b).value());
  for (int i = 0; i < 5 * scale; ++i) cs.push_back(st.CreateObject(c).value());
  for (int i = 0; i < 4 * scale; ++i) ds.push_back(st.CreateObject(d).value());
  for (int i = 0; i < 4 * scale; ++i) es.push_back(st.CreateObject(e).value());
  for (int i = 0; i < 5 * scale; ++i) {
    Oid x = st.CreateObject(a0).value();
    ASR_CHECK(st.SetRef(x, "ToB", bs[rng.Uniform(bs.size())]).ok());
    Oid y = st.CreateObject(a1).value();
    ASR_CHECK(st.SetRef(y, "IntoB", bs[rng.Uniform(bs.size())]).ok());
  }
  for (Oid bb : bs) {
    ASR_CHECK(st.SetRef(bb, "Next", cs[rng.Uniform(cs.size())]).ok());
  }
  for (Oid cc : cs) {
    ASR_CHECK(st.SetRef(cc, "ToD", ds[rng.Uniform(ds.size())]).ok());
    ASR_CHECK(st.SetRef(cc, "ToE", es[rng.Uniform(es.size())]).ok());
  }
  base->path_a.emplace(
      PathExpression::Parse(s, a0, "ToB.Next.ToD").value());
  base->path_b.emplace(
      PathExpression::Parse(s, a1, "IntoB.Next.ToE").value());
  return base;
}

uint64_t TreePages(storage::Disk* disk, size_t from_segment) {
  uint64_t pages = 0;
  for (size_t seg = from_segment; seg < disk->segment_count(); ++seg) {
    pages += disk->SegmentPageCount(static_cast<uint32_t>(seg));
  }
  return pages;
}

}  // namespace

int main() {
  using namespace asr::bench;
  Title("Sharing (§5.4)",
        "partition pages with and without a shared middle segment");
  Header({"scale", "private pages", "shared pages", "saved %"});

  bool always_saves = true;
  for (int scale : {20, 60, 120}) {
    uint64_t private_pages, shared_pages;
    {
      auto base = BuildBase(scale);
      size_t before = base->disk.segment_count();
      PathOverlap overlap = FindLongestOverlap(*base->path_a, *base->path_b);
      auto a = AccessSupportRelation::Build(
                   base->store.get(), *base->path_a, ExtensionKind::kFull,
                   SharingDecomposition(overlap, true, *base->path_a))
                   .value();
      auto b = AccessSupportRelation::Build(
                   base->store.get(), *base->path_b, ExtensionKind::kFull,
                   SharingDecomposition(overlap, false, *base->path_b))
                   .value();
      ASR_CHECK(base->buffers.FlushAll().ok());
      private_pages = TreePages(&base->disk, before);
    }
    {
      auto base = BuildBase(scale);
      size_t before = base->disk.segment_count();
      PathOverlap overlap = FindLongestOverlap(*base->path_a, *base->path_b);
      AsrCatalog catalog(base->store.get());
      catalog
          .Build(*base->path_a, ExtensionKind::kFull,
                 SharingDecomposition(overlap, true, *base->path_a))
          .value();
      catalog
          .Build(*base->path_b, ExtensionKind::kFull,
                 SharingDecomposition(overlap, false, *base->path_b))
          .value();
      ASR_CHECK(base->buffers.FlushAll().ok());
      shared_pages = TreePages(&base->disk, before);
    }
    double saved = 100.0 * (1.0 - static_cast<double>(shared_pages) /
                                      static_cast<double>(private_pages));
    Cell(static_cast<double>(scale));
    Cell(static_cast<double>(private_pages));
    Cell(static_cast<double>(shared_pages));
    Cell(saved);
    EndRow();
    always_saves &= shared_pages < private_pages;
  }
  std::printf("\n");
  Claim("sharing the overlapping partition always saves storage",
        always_saves);
  return 0;
}
