// Ablation (beyond the paper's single figures): the full grid of update
// position ins_i (i = 0..n-1) against extension kind, binary decomposition,
// Fig. 4 profile — exposing the left/right search asymmetry of §6.1 in one
// table: left-complete degrades towards the left end of the path (backward
// data searches), right-complete towards the right end, full stays flat, and
// canonical is expensive everywhere.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  Decomposition binary = Decomposition::Binary(4);

  Title("Ablation: update position x extension",
        "page accesses for ins_i, binary decomposition");
  Header({"ins_i", "can", "full", "left", "right"});
  double left_at_0 = 0, left_at_3 = 0, right_at_0 = 0, right_at_3 = 0;
  double full_max = 0;
  for (uint32_t i = 0; i < 4; ++i) {
    Cell("ins_" + std::to_string(i));
    double can = model.UpdateCost(ExtensionKind::kCanonical, i, binary);
    double full = model.UpdateCost(ExtensionKind::kFull, i, binary);
    double left = model.UpdateCost(ExtensionKind::kLeftComplete, i, binary);
    double right = model.UpdateCost(ExtensionKind::kRightComplete, i, binary);
    Cell(can);
    Cell(full);
    Cell(left);
    Cell(right);
    EndRow();
    if (i == 0) {
      left_at_0 = left;
      right_at_0 = right;
    }
    if (i == 3) {
      left_at_3 = left;
      right_at_3 = right;
    }
    full_max = std::max(full_max, full);
  }
  std::printf("\n");
  Claim("left-complete updates get cheaper towards the path's right end",
        left_at_3 < left_at_0);
  Claim("right-complete updates get cheaper towards the path's left end",
        right_at_0 < right_at_3);
  Claim("full stays cheap across all positions (no data search, one "
        "affected partition)",
        full_max < left_at_0 && full_max < right_at_3);
  return 0;
}
