// Figure 9 (§5.9.4): cost of the backward query Q_{0,4}(bw) while the
// fan-out sweeps 10..100, for an application that favors canonical and
// left-complete extensions over full and right-complete (tiny d_0, huge
// extents).
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Figure 9",
        "Q_{0,4}(bw) cost vs fan-out (c_i=400000, d=(10,100,1000,100000))");
  Header({"fan", "can", "full", "left", "right", "no support"});

  Decomposition binary = Decomposition::Binary(4);
  bool can_left_never_worse = true;
  for (double fan = 10; fan <= 100; fan += 15) {
    cost::CostModel model(Fig9Profile(fan));
    Cell(fan);
    double can = model.QuerySupported(
        ExtensionKind::kCanonical, cost::QueryDirection::kBackward, 0, 4,
        binary);
    double full = model.QuerySupported(
        ExtensionKind::kFull, cost::QueryDirection::kBackward, 0, 4, binary);
    double left = model.QuerySupported(ExtensionKind::kLeftComplete,
                                       cost::QueryDirection::kBackward, 0, 4,
                                       binary);
    double right = model.QuerySupported(ExtensionKind::kRightComplete,
                                        cost::QueryDirection::kBackward, 0, 4,
                                        binary);
    Cell(can);
    Cell(full);
    Cell(left);
    Cell(right);
    Cell(model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 4));
    EndRow();
    can_left_never_worse &= can <= full * 1.0001 && left <= full * 1.0001 &&
                            can <= right * 1.0001;
  }
  std::printf("\n");
  Claim(
      "canonical/left-complete stay at most as expensive as full/right "
      "(few complete paths, so their relations stay small)",
      can_left_never_worse);
  return 0;
}
