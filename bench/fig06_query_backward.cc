// Figure 6 (§5.9.1): page accesses of the backward query Q_{0,4}(bw) for
// all extensions under binary and under no decomposition, against the
// unsupported (navigational) evaluation.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig6Profile());
  Decomposition none = Decomposition::None(4);
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 6", "cost of backward query Q_{0,4}(bw) in page accesses");
  double nas = model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 4);
  std::printf("no access support: %.1f page accesses\n\n", nas);

  // Model-only snapshot: same schema as the metered drift reports, with the
  // observed side absent (validate_model_vs_system fills it).
  obs::DriftReport drift("fig06_query_backward", "fig6");
  drift.AddModelRow("Q04(bw) nosup", nas);

  Header({"extension", "no dec", "binary dec"});
  bool all_cheaper = true;
  bool none_beats_binary = true;
  for (ExtensionKind x : AllExtensions()) {
    double a =
        model.QuerySupported(x, cost::QueryDirection::kBackward, 0, 4, none);
    double b = model.QuerySupported(x, cost::QueryDirection::kBackward, 0, 4,
                                    binary);
    Cell(ExtensionKindName(x));
    Cell(a);
    Cell(b);
    EndRow();
    drift.AddModelRow("Q04(bw) " + ExtensionKindName(x) + "/none", a);
    drift.AddModelRow("Q04(bw) " + ExtensionKindName(x) + "/bin", b);
    all_cheaper &= (a < nas && b < nas);
    none_beats_binary &= (a <= b);
  }
  std::printf("\n");
  Claim("every supported evaluation beats the exhaustive search",
        all_cheaper);
  Claim(
      "non-decomposed access relations answer the full-span query cheaper "
      "than binary decomposed ones",
      none_beats_binary);
  WriteDrift(drift, "BENCH_fig06_drift.json");
  return 0;
}
