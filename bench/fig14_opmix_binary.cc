// Figure 14 (§6.4.2): normalized cost of the operation mix under binary
// decomposition, for update probabilities 0.1 .. 0.9. The paper: "for an
// update probability less than 0.3 the left-complete extension beats the
// full extension"; the break-even vs no support is at ~0.998.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  cost::OperationMix mix = Fig14Mix();
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 14",
        "normalized operation-mix cost, binary decomposition (1.0 = no "
        "support)");
  Header({"P_up", "can", "full", "left", "right"});
  for (double p_up = 0.1; p_up <= 0.91; p_up += 0.1) {
    Cell(p_up);
    for (ExtensionKind x : AllExtensions()) {
      std::printf("%16.4f",
                  cost::NormalizedMixCost(model, x, binary, mix, p_up));
    }
    EndRow();
  }
  std::printf("\n");

  // Locate the left/full break-even point.
  double break_even = -1;
  for (double p_up = 0.01; p_up <= 1.0; p_up += 0.01) {
    double left = cost::MixCost(model, ExtensionKind::kLeftComplete, binary,
                                mix, p_up);
    double full = cost::MixCost(model, ExtensionKind::kFull, binary, mix,
                                p_up);
    if (left > full) {
      break_even = p_up;
      break;
    }
  }
  std::printf("left/full break-even at P_up ~ %.2f\n", break_even);
  Claim("left-complete beats full below P_up ~ 0.3",
        break_even > 0.1 && break_even < 0.6);

  // Break-even of full vs no support.
  double no_support_break = -1;
  for (double p_up = 0.9; p_up <= 1.0; p_up += 0.0005) {
    if (cost::NormalizedMixCost(model, ExtensionKind::kFull, binary, mix,
                                p_up) > 1.0) {
      no_support_break = p_up;
      break;
    }
  }
  std::printf("full/no-support break-even at P_up ~ %.4f\n",
              no_support_break);
  Claim("no support only wins at extreme update probabilities (~0.998)",
        no_support_break > 0.97);
  return 0;
}
