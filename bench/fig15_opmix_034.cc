// Figure 15 (§6.4.3): the same operation mix as Figure 14, evaluated under
// the non-binary decomposition (0, 3, 4).
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  cost::OperationMix mix = Fig14Mix();
  Decomposition dec = Decomposition::Of({0, 3, 4}, 4).value();
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 15",
        "normalized operation-mix cost, decomposition (0,3,4)");
  Header({"P_up", "can", "full", "left", "right"});
  for (double p_up = 0.1; p_up <= 0.91; p_up += 0.1) {
    Cell(p_up);
    for (ExtensionKind x : AllExtensions()) {
      std::printf("%16.4f",
                  cost::NormalizedMixCost(model, x, dec, mix, p_up));
    }
    EndRow();
  }
  std::printf("\n");

  // The (0,3,4) decomposition serves Q_{0,3}(bw) with a direct partition
  // lookup where the binary decomposition chains three partitions.
  double q03_dec = model.QueryCost(ExtensionKind::kFull,
                                   cost::QueryDirection::kBackward, 0, 3,
                                   dec);
  double q03_bi = model.QueryCost(ExtensionKind::kFull,
                                  cost::QueryDirection::kBackward, 0, 3,
                                  binary);
  std::printf("Q_{0,3}(bw) full: dec(0,3,4)=%.1f binary=%.1f\n", q03_dec,
              q03_bi);
  Claim("(0,3,4) evaluates the Q_{0,3} component cheaper than binary",
        q03_dec <= q03_bi);
  return 0;
}
