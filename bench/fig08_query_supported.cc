// Figure 8 (§5.9.3): which extensions support the sub-path query
// Q_{0,3}(bw) at all, and how decomposition decides whether the supported
// evaluation actually wins. Canonical and right-complete cannot evaluate
// Q_{0,3} (Eq. 35) and fall back to the navigational cost; the
// non-decomposed full/left relations must be scanned exhaustively (j = 3 is
// an interior column) and can be WORSE than no support.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Figure 8", "Q_{0,3}(bw) cost vs d_i (c_i = 10^4, fan 2, size 120)");
  Header({"d_i", "no support", "full/nodec", "full/binary", "left/nodec",
          "left/binary"});

  Decomposition none = Decomposition::None(4);
  Decomposition binary = Decomposition::Binary(4);
  bool nodec_worse_at_high_d = false;
  bool binary_wins_at_high_d = false;
  for (double d : {10.0, 100.0, 1000.0, 2500.0, 5000.0, 7500.0, 10000.0}) {
    cost::CostModel model(UniformProfile(d, 2));
    double nas = model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 3);
    double full_nodec = model.QueryCost(
        ExtensionKind::kFull, cost::QueryDirection::kBackward, 0, 3, none);
    double full_bi = model.QueryCost(
        ExtensionKind::kFull, cost::QueryDirection::kBackward, 0, 3, binary);
    double left_nodec = model.QueryCost(ExtensionKind::kLeftComplete,
                                        cost::QueryDirection::kBackward, 0, 3,
                                        none);
    double left_bi = model.QueryCost(ExtensionKind::kLeftComplete,
                                     cost::QueryDirection::kBackward, 0, 3,
                                     binary);
    Cell(d);
    Cell(nas);
    Cell(full_nodec);
    Cell(full_bi);
    Cell(left_nodec);
    Cell(left_bi);
    EndRow();
    if (d == 10000.0) {
      nodec_worse_at_high_d = full_nodec > nas && left_nodec > nas;
      binary_wins_at_high_d = full_bi < nas && left_bi < nas;
    }
  }
  std::printf("\n");
  cost::CostModel model(UniformProfile(10000, 2));
  Claim(
      "canonical and right-complete cannot evaluate Q_{0,3} and fall back "
      "to the unsupported cost",
      model.QueryCost(ExtensionKind::kCanonical,
                      cost::QueryDirection::kBackward, 0, 3, binary) ==
              model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 3) &&
          model.QueryCost(ExtensionKind::kRightComplete,
                          cost::QueryDirection::kBackward, 0, 3, binary) ==
              model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 3));
  Claim(
      "non-decomposed full/left evaluation is costlier than no support at "
      "large d_i (the big relation is exhaustively scanned)",
      nodec_worse_at_high_d);
  Claim("the binary decomposition keeps the supported evaluation cheaper",
        binary_wins_at_high_d);
  return 0;
}
