// Google-benchmark microbenchmarks for the hot paths of the library:
// B+ tree operations, ASR construction, and query evaluation (wall-clock
// rather than page accesses).
#include <benchmark/benchmark.h>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "bench_util.h"
#include "btree/btree.h"
#include "common/random.h"
#include "workload/synthetic_base.h"

namespace {

using namespace asr;

std::vector<AsrKey> Tuple2(uint64_t a, uint64_t b) {
  return {AsrKey::FromOid(Oid::Make(1, a)), AsrKey::FromOid(Oid::Make(1, b))};
}

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::Disk disk;
    storage::BufferManager buffers(&disk, 1024);
    btree::BTree tree(&buffers, "bm", 2, 0);
    Rng rng(7);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(Tuple2(rng.Uniform(1 << 20) + 1, i + 1));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 4096);
  btree::BTree tree(&buffers, "bm", 2, 0);
  Rng rng(7);
  for (int64_t i = 0; i < state.range(0); ++i) {
    tree.Insert(Tuple2(rng.Uniform(1 << 20) + 1, i + 1));
  }
  Rng probe(13);
  for (auto _ : state) {
    std::vector<std::vector<AsrKey>> rows;
    tree.Lookup(AsrKey::FromOid(Oid::Make(1, probe.Uniform(1 << 20) + 1)),
                &rows);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

cost::ApplicationProfile BenchProfile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {200, 400, 800, 1000};
  p.d = {160, 300, 600};
  p.fan = {2, 1, 2};
  p.size = {200, 200, 200, 100};
  return p;
}

void BM_AsrBuild(benchmark::State& state) {
  auto base = workload::SyntheticBase::Generate(BenchProfile(), {5, 4096})
                  .value();
  ExtensionKind kind = static_cast<ExtensionKind>(state.range(0));
  for (auto _ : state) {
    auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                            kind, Decomposition::Binary(3))
                   .value();
    benchmark::DoNotOptimize(asr);
  }
}
BENCHMARK(BM_AsrBuild)
    ->Arg(static_cast<int>(ExtensionKind::kCanonical))
    ->Arg(static_cast<int>(ExtensionKind::kFull));

void BM_SupportedBackwardQuery(benchmark::State& state) {
  auto base = workload::SyntheticBase::Generate(BenchProfile(), {5, 4096})
                  .value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(3))
                 .value();
  size_t i = 0;
  for (auto _ : state) {
    AsrKey target = AsrKey::FromOid(
        base->objects_at(3)[i++ % base->objects_at(3).size()]);
    auto result = asr->EvalBackward(target, 0, 3).value();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SupportedBackwardQuery);

void BM_NavigationalBackwardQuery(benchmark::State& state) {
  auto base = workload::SyntheticBase::Generate(BenchProfile(), {5, 4096})
                  .value();
  QueryEvaluator nav(base->store(), &base->path());
  size_t i = 0;
  for (auto _ : state) {
    AsrKey target = AsrKey::FromOid(
        base->objects_at(3)[i++ % base->objects_at(3).size()]);
    auto result = nav.BackwardNoSupport(target, 0, 3).value();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NavigationalBackwardQuery);

void BM_IncrementalMaintenance(benchmark::State& state) {
  auto base = workload::SyntheticBase::Generate(BenchProfile(), {5, 4096})
                  .value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::Binary(3))
                 .value();
  const PathStep& step = base->path().step(3);
  Rng rng(17);
  for (auto _ : state) {
    Oid u = base->objects_at(2)[rng.Uniform(base->objects_at(2).size())];
    Oid w = base->objects_at(3)[rng.Uniform(base->objects_at(3).size())];
    AsrKey set_key =
        base->store()->GetAttributeByName(u, step.attr_name).value();
    if (set_key.IsNull()) continue;
    Oid set_oid = set_key.ToOid();
    if (base->store()->SetContains(set_oid, AsrKey::FromOid(w)).value()) {
      ASR_CHECK(
          base->store()->RemoveFromSet(set_oid, AsrKey::FromOid(w)).ok());
      ASR_CHECK(asr->OnEdgeRemoved(u, 2, AsrKey::FromOid(w)).ok());
    } else {
      ASR_CHECK(base->store()->AddToSet(set_oid, AsrKey::FromOid(w)).ok());
      ASR_CHECK(asr->OnEdgeInserted(u, 2, AsrKey::FromOid(w)).ok());
    }
  }
}
BENCHMARK(BM_IncrementalMaintenance);

void BM_CostModelMixEvaluation(benchmark::State& state) {
  cost::CostModel model(bench::Fig4Profile());
  cost::OperationMix mix = bench::Fig14Mix();
  Decomposition binary = Decomposition::Binary(4);
  for (auto _ : state) {
    double c = cost::MixCost(model, ExtensionKind::kFull, binary, mix, 0.3);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CostModelMixEvaluation);

}  // namespace

BENCHMARK_MAIN();
