// Figure 4 (§4.4.1): storage cost of the access support relation for all
// four extensions under no decomposition and under binary decomposition,
// for the fixed engineering profile of §4.4.1.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  Decomposition none = Decomposition::None(4);
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 4", "access relation sizes (bytes, non-redundant)");
  Header({"extension", "no dec", "binary dec", "ratio"});
  for (ExtensionKind x : AllExtensions()) {
    double a = model.TotalBytes(x, none);
    double b = model.TotalBytes(x, binary);
    Cell(ExtensionKindName(x));
    Cell(a);
    Cell(b);
    Cell(a / b);
    EndRow();
  }
  std::printf("\n");

  double can = model.TotalBytes(ExtensionKind::kCanonical, none);
  double left = model.TotalBytes(ExtensionKind::kLeftComplete, none);
  double right = model.TotalBytes(ExtensionKind::kRightComplete, none);
  double full = model.TotalBytes(ExtensionKind::kFull, none);
  Claim(
      "canonical and left-complete drastically smaller than right-complete "
      "and full (few objects at the left of the path)",
      can < right / 2 && left < right / 2 && right <= full);
  double full_bi = model.TotalBytes(ExtensionKind::kFull, binary);
  Claim("binary decomposition reduces storage by a factor of ~2",
        full / full_bi > 1.4 && full / full_bi < 3.0);
  return 0;
}
