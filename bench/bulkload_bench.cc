// Beyond the paper: build-cost benchmark for the sorted bulk-load pipeline.
//
// A synthetic object base realizing the Fig. 4 profile is generated, and the
// full extension (binary decomposition) is materialized three ways: tuple-at
// -a-time insertion (the seed's only path), serial sorted bulk load, and
// bulk load with the partitions built on a worker pool. Page accesses are
// metered strictly (buffer capacity 0) and wall-clock time is taken per
// build. Results go to stdout and to BENCH_bulkload.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "bench_util.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace {

struct BuildResult {
  std::string label;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  double millis = 0;
  uint64_t rows = 0;
  uint64_t pages = 0;
};

BuildResult RunBuild(const std::string& label,
                     asr::workload::SyntheticBase* base,
                     const asr::AsrOptions& options) {
  using Clock = std::chrono::steady_clock;
  BuildResult r;
  r.label = label;
  Clock::time_point start = Clock::now();
  asr::storage::AccessStats cost = asr::workload::Meter(base->disk(), [&] {
    auto asr = asr::AccessSupportRelation::Build(
                   base->store(), base->path(), asr::ExtensionKind::kFull,
                   asr::Decomposition::Binary(base->path().n()), options)
                   .value();
    r.pages = asr->TotalPages();
  });
  r.millis = std::chrono::duration<double, std::milli>(Clock::now() - start)
                 .count();
  r.page_reads = cost.page_reads;
  r.page_writes = cost.page_writes;
  return r;
}

}  // namespace

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::ApplicationProfile profile = Fig4Profile();
  Title("Bulk load", "ASR build cost, Fig. 4 profile, full ext., binary dec.");
  auto base = workload::SyntheticBase::Generate(profile, {2026, 0}).value();

  std::vector<BuildResult> results;

  AsrOptions tuple_options;
  tuple_options.bulk_load = false;
  results.push_back(RunBuild("tuple-at-a-time", base.get(), tuple_options));

  AsrOptions serial_options;  // bulk_load defaults to true
  results.push_back(RunBuild("bulk serial", base.get(), serial_options));

  for (uint32_t threads : {2u, 4u}) {
    AsrOptions parallel_options;
    parallel_options.build_threads = threads;
    results.push_back(RunBuild("bulk " + std::to_string(threads) + " threads",
                               base.get(), parallel_options));
  }

  Header({"build", "reads", "writes", "pages", "ms", "write speedup"});
  const BuildResult& baseline = results.front();
  for (const BuildResult& r : results) {
    Cell(r.label);
    Cell(static_cast<double>(r.page_reads));
    Cell(static_cast<double>(r.page_writes));
    Cell(static_cast<double>(r.pages));
    Cell(r.millis);
    Cell(static_cast<double>(baseline.page_writes) /
         static_cast<double>(r.page_writes));
    EndRow();
  }
  std::printf("\n");

  const BuildResult& serial = results[1];
  double min_parallel_ms = results[2].millis;
  for (size_t i = 2; i < results.size(); ++i) {
    min_parallel_ms = std::min(min_parallel_ms, results[i].millis);
  }
  Claim("bulk load writes strictly fewer pages than tuple-at-a-time",
        serial.page_writes < baseline.page_writes);
  Claim("bulk load saves >= 5x page writes",
        static_cast<double>(baseline.page_writes) >=
            5.0 * static_cast<double>(serial.page_writes));
  Claim("parallel bulk build is no slower than serial (wall-clock; "
        "hardware-dependent)",
        min_parallel_ms <= serial.millis);

  FILE* json = std::fopen("BENCH_bulkload.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"profile\": \"fig4\",\n");
    std::fprintf(json, "  \"extension\": \"full\",\n");
    std::fprintf(json, "  \"decomposition\": \"binary\",\n");
    std::fprintf(json, "  \"builds\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const BuildResult& r = results[i];
      std::fprintf(json,
                   "    {\"label\": \"%s\", \"page_reads\": %llu, "
                   "\"page_writes\": %llu, \"pages\": %llu, "
                   "\"wall_ms\": %.3f}%s\n",
                   r.label.c_str(),
                   static_cast<unsigned long long>(r.page_reads),
                   static_cast<unsigned long long>(r.page_writes),
                   static_cast<unsigned long long>(r.pages), r.millis,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_bulkload.json\n");
  }

  // Drift snapshot: realized ASR storage footprint vs the model's page
  // estimate (Eq. 16 terms summed over the binary partitions, both redundant
  // trees), plus the full registry dump of the disk and build pool.
  cost::CostModel model(profile);
  Decomposition binary = Decomposition::Binary(profile.n);
  double model_pages = 0;
  for (size_t p = 0; p < binary.partition_count(); ++p) {
    auto [first, last] = binary.partition(p);
    model_pages +=
        2 * (model.PartitionPages(ExtensionKind::kFull, first, last) +
             model.BTreeNonLeafPages(ExtensionKind::kFull, first, last));
  }
  obs::DriftReport drift("bulkload_bench", "fig4");
  drift.AddMeta("extension", "full");
  drift.AddMeta("decomposition", "binary");
  drift.AddRow("asr pages full/bin", model_pages,
               static_cast<double>(serial.pages));
  for (const BuildResult& r : results) {
    drift.AddMeta("build." + r.label,
                  "writes=" + std::to_string(r.page_writes) +
                      " reads=" + std::to_string(r.page_reads) +
                      " wall_ms=" + std::to_string(r.millis));
  }
  base->disk()->ExportMetrics(drift.metrics(), "disk");
  base->buffers()->ExportMetrics(drift.metrics(), "buffers");
  WriteDrift(drift, "BENCH_bulkload_drift.json");
  return 0;
}
