// Beyond the paper: build-cost benchmark for the sorted bulk-load pipeline,
// reported in both of the system's currencies.
//
// A synthetic object base realizing the Fig. 4 profile is generated, and the
// full extension (binary decomposition) is materialized three ways: tuple-at
// -a-time insertion (the seed's only path), serial sorted bulk load, and
// bulk load with the partitions built on a worker pool. Every build runs
// twice, once per storage configuration:
//   - backend "memory": the metering instrument — in-memory backend, buffer
//     capacity 0, every page access counted (the model's currency);
//   - backend "file": the raw-speed configuration — file-backed pages
//     (pread/pwrite + mmap reads) behind a real buffer pool, timed
//     wall-clock (the hardware's currency), flushed before the clock stops.
// Page counts come from the metering rows, wall-clock comparisons from the
// file rows. Results go to stdout and BENCH_bulkload.json.
#include <cstdio>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "bench_util.h"
#include "obs/latency.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace {

// Frames for the raw-speed configuration: comfortably holds the Fig. 4 base
// and every partition tree, so the build is CPU + file-I/O bound, not
// eviction bound.
constexpr size_t kRawSpeedBufferFrames = 4096;

struct BuildResult {
  std::string label;
  std::string backend;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  double millis = 0;
  uint64_t pages = 0;
  // Storage-seam wall-clock latency over this build (file backend only;
  // the metering backend's seam is never timed, so these stay empty).
  asr::obs::HistogramSnapshot read_us;
  asr::obs::HistogramSnapshot write_us;
  asr::obs::HistogramSnapshot sync_us;
};

BuildResult RunBuild(const std::string& label,
                     asr::workload::SyntheticBase* base,
                     const asr::AsrOptions& options) {
  BuildResult r;
  r.label = label;
  r.backend = base->disk()->backend_name();
  asr::obs::LiveTelemetry& hub = asr::obs::LiveTelemetry::Instance();
  const asr::obs::HistogramSnapshot read_before =
      hub.storage_read_us.snapshot();
  const asr::obs::HistogramSnapshot write_before =
      hub.storage_write_us.snapshot();
  const asr::obs::HistogramSnapshot sync_before =
      hub.storage_sync_us.snapshot();
  asr::bench::WallTimer timer;
  asr::storage::AccessStats cost = asr::workload::Meter(base->disk(), [&] {
    auto asr = asr::AccessSupportRelation::Build(
                   base->store(), base->path(), asr::ExtensionKind::kFull,
                   asr::Decomposition::Binary(base->path().n()), options)
                   .value();
    r.pages = asr->TotalPages();
    // The raw-speed pool holds dirty pages; the clock must cover getting
    // them to storage (a no-op under strict metering, where capacity 0
    // writes through).
    ASR_CHECK(base->buffers()->FlushAll().ok());
  });
  r.millis = timer.ElapsedMs();
  r.page_reads = cost.page_reads;
  r.page_writes = cost.page_writes;
  r.read_us = hub.storage_read_us.snapshot().DeltaSince(read_before);
  r.write_us = hub.storage_write_us.snapshot().DeltaSince(write_before);
  r.sync_us = hub.storage_sync_us.snapshot().DeltaSince(sync_before);
  return r;
}

std::vector<BuildResult> RunAllBuilds(asr::workload::SyntheticBase* base) {
  std::vector<BuildResult> results;
  asr::AsrOptions tuple_options;
  tuple_options.bulk_load = false;
  results.push_back(RunBuild("tuple-at-a-time", base, tuple_options));

  asr::AsrOptions serial_options;  // bulk_load defaults to true
  results.push_back(RunBuild("bulk serial", base, serial_options));

  for (uint32_t threads : {2u, 4u}) {
    asr::AsrOptions parallel_options;
    parallel_options.build_threads = threads;
    results.push_back(RunBuild("bulk " + std::to_string(threads) + " threads",
                               base, parallel_options));
  }
  return results;
}

const BuildResult& FindBuild(const std::vector<BuildResult>& results,
                             const std::string& label) {
  for (const BuildResult& r : results) {
    if (r.label == label) return r;
  }
  ASR_CHECK(false);
  return results.front();
}

}  // namespace

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::ApplicationProfile profile = Fig4Profile();
  Title("Bulk load", "ASR build cost, Fig. 4 profile, full ext., binary dec.");

  // Metering configuration: every page access counted, nothing cached.
  workload::GenerateOptions meter_gen;
  meter_gen.seed = 2026;
  meter_gen.buffer_capacity = 0;
  meter_gen.disk = storage::DiskOptions::Memory();
  auto meter_base = workload::SyntheticBase::Generate(profile, meter_gen).value();
  std::vector<BuildResult> metered = RunAllBuilds(meter_base.get());

  // Raw-speed configuration: same builds, file-backed pages, real pool.
  workload::GenerateOptions raw_gen;
  raw_gen.seed = 2026;
  raw_gen.buffer_capacity = kRawSpeedBufferFrames;
  raw_gen.disk = storage::DiskOptions::File();
  auto raw_base = workload::SyntheticBase::Generate(profile, raw_gen).value();
  std::vector<BuildResult> raw = RunAllBuilds(raw_base.get());

  Header({"build", "reads", "writes", "pages", "meter ms", "file ms",
          "speedup"});
  const BuildResult& baseline = metered.front();
  for (size_t i = 0; i < metered.size(); ++i) {
    const BuildResult& m = metered[i];
    const BuildResult& f = raw[i];
    Cell(m.label);
    Cell(static_cast<double>(m.page_reads));
    Cell(static_cast<double>(m.page_writes));
    Cell(static_cast<double>(m.pages));
    Cell(m.millis);
    Cell(f.millis);
    Cell(m.millis / f.millis);
    EndRow();
  }
  std::printf("\n");

  const BuildResult& serial = FindBuild(metered, "bulk serial");
  const BuildResult& raw_tuple = FindBuild(raw, "tuple-at-a-time");
  double min_parallel_ms = metered[2].millis;
  for (size_t i = 2; i < metered.size(); ++i) {
    min_parallel_ms = std::min(min_parallel_ms, metered[i].millis);
  }
  Claim("bulk load writes strictly fewer pages than tuple-at-a-time",
        serial.page_writes < baseline.page_writes);
  Claim("bulk load saves >= 5x page writes",
        static_cast<double>(baseline.page_writes) >=
            5.0 * static_cast<double>(serial.page_writes));
  // The bulk pipeline is CPU-bound (sort + pack; ~6k page reads total), so
  // the worker pool buys little on fast hardware: accept parity within
  // noise rather than demand a win.
  Claim("parallel bulk build keeps pace with serial (<= 15% overhead; "
        "wall-clock; hardware-dependent)",
        min_parallel_ms <= serial.millis * 1.15);
  // The insert-path build moves ~1.3M counted pages; that is where the
  // file backend's buffer pool must beat the metering instrument's
  // pay-per-access discipline.
  Claim("file backend full-extension build (insert path) >= 1.5x faster "
        "than the metering path (wall-clock; hardware-dependent)",
        raw_tuple.millis * 1.5 <= baseline.millis);

  {
    JsonWriter json("BENCH_bulkload.json");
    json.BeginObject()
        .Field("profile", "fig4")
        .Field("extension", "full")
        .Field("decomposition", "binary")
        .BeginArray("builds");
    for (const std::vector<BuildResult>* group : {&metered, &raw}) {
      for (const BuildResult& r : *group) {
        json.BeginObject()
            .Field("label", r.label)
            .Field("backend", r.backend)
            .Field("page_reads", r.page_reads)
            .Field("page_writes", r.page_writes)
            .Field("pages", r.pages)
            .Field("wall_ms", r.millis);
        LatencyFields(&json, "read", r.read_us);
        LatencyFields(&json, "write", r.write_us);
        LatencyFields(&json, "sync", r.sync_us);
        json.EndObject();
      }
    }
    json.EndArray().EndObject();
    if (json.ok()) std::printf("wrote BENCH_bulkload.json\n");
  }

  // Drift snapshot: realized ASR storage footprint vs the model's page
  // estimate (Eq. 16 terms summed over the binary partitions, both redundant
  // trees), plus the full registry dump of the disk and build pool.
  cost::CostModel model(profile);
  Decomposition binary = Decomposition::Binary(profile.n);
  double model_pages = 0;
  for (size_t p = 0; p < binary.partition_count(); ++p) {
    auto [first, last] = binary.partition(p);
    model_pages +=
        2 * (model.PartitionPages(ExtensionKind::kFull, first, last) +
             model.BTreeNonLeafPages(ExtensionKind::kFull, first, last));
  }
  obs::DriftReport drift("bulkload_bench", "fig4");
  drift.AddMeta("extension", "full");
  drift.AddMeta("decomposition", "binary");
  drift.AddRow("asr pages full/bin", model_pages,
               static_cast<double>(serial.pages));
  for (const BuildResult& r : metered) {
    drift.AddMeta("build." + r.label,
                  "writes=" + std::to_string(r.page_writes) +
                      " reads=" + std::to_string(r.page_reads) +
                      " wall_ms=" + std::to_string(r.millis));
  }
  for (const BuildResult& r : raw) {
    drift.AddMeta("build.file." + r.label,
                  "wall_ms=" + std::to_string(r.millis));
  }
  meter_base->disk()->ExportMetrics(drift.metrics(), "disk");
  meter_base->buffers()->ExportMetrics(drift.metrics(), "buffers");
  raw_base->disk()->ExportMetrics(drift.metrics(), "disk.file");
  WriteDrift(drift, "BENCH_bulkload_drift.json");
  return 0;
}
