// Figure 5 (§4.4.2): access relation sizes of all extensions under no
// decomposition, while the number of defined attributes d_i sweeps from
// 2500 to 10000 (c_i fixed at 10000, fan-out 2).
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Figure 5", "relation sizes vs number of not-NULL attributes");
  Header({"d_i", "can", "full", "left", "right"});

  Decomposition none = Decomposition::None(4);
  double first_gap = 0;
  double last_gap = 0;
  for (double d = 2500; d <= 10000; d += 750) {
    cost::CostModel model(UniformProfile(d, 2));
    Cell(d);
    double can = model.TotalBytes(ExtensionKind::kCanonical, none);
    double full = model.TotalBytes(ExtensionKind::kFull, none);
    Cell(can);
    Cell(full);
    Cell(model.TotalBytes(ExtensionKind::kLeftComplete, none));
    Cell(model.TotalBytes(ExtensionKind::kRightComplete, none));
    EndRow();
    if (d == 2500) first_gap = full / can;
    last_gap = full / can;
  }
  std::printf("\n");
  Claim(
      "extension sizes grow with d_i and approach each other as d_i -> c_i "
      "(almost all paths become complete)",
      first_gap > 2.0 && last_gap < 1.2);
  return 0;
}
