// Ablation (beyond the paper): effect of buffer capacity on metered page
// accesses. The analytical model assumes no caching across an operation's
// pages; this bench shows how quickly real buffering erodes the exhaustive
// search's cost while leaving the supported query (already 2-4 accesses)
// essentially unchanged — i.e., access support pays off even against a
// generous cache.
#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "bench_util.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Ablation: buffer capacity",
        "metered Q_{0,4}(bw) accesses on the live Fig. 6 base");
  Header({"frames", "nosup reads", "nosup writes", "asr reads"});

  double nosup_unbuffered = 0;
  double nosup_big = 0;
  for (size_t capacity : {0ul, 16ul, 128ul, 1024ul}) {
    auto base =
        workload::SyntheticBase::Generate(Fig6Profile(), {99, capacity})
            .value();
    QueryEvaluator nav(base->store(), &base->path());
    auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                            ExtensionKind::kFull,
                                            Decomposition::None(4))
                   .value();
    ASR_CHECK(base->buffers()->FlushAll().ok());

    Oid target = base->objects_at(4)[1234];
    storage::AccessStats nosup = workload::Meter(base->disk(), [&] {
      nav.BackwardNoSupport(AsrKey::FromOid(target), 0, 4).value();
    });
    storage::AccessStats sup = workload::Meter(base->disk(), [&] {
      asr->EvalBackward(AsrKey::FromOid(target), 0, 4).value();
    });
    Cell(static_cast<double>(capacity));
    Cell(static_cast<double>(nosup.page_reads));
    Cell(static_cast<double>(nosup.page_writes));
    Cell(static_cast<double>(sup.page_reads));
    EndRow();
    if (capacity == 0) nosup_unbuffered = static_cast<double>(nosup.page_reads);
    nosup_big = static_cast<double>(nosup.page_reads);
  }
  std::printf("\n");
  Claim("buffering helps the exhaustive search but does not close the gap "
        "to access support",
        nosup_big <= nosup_unbuffered && nosup_big > 20);
  return 0;
}
