// Figure 12 (§6.3.2): update cost ins_3 for a second profile with fan-out
// (2, 1, 1, 4); the left-complete and full extensions remain almost
// comparable.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig12Profile());
  Decomposition none = Decomposition::None(4);
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 12", "update cost ins_3, profile with fan (2,1,1,4)");
  Header({"extension", "no dec", "binary dec"});
  for (ExtensionKind x : AllExtensions()) {
    Cell(ExtensionKindName(x));
    Cell(model.UpdateCost(x, 3, none));
    Cell(model.UpdateCost(x, 3, binary));
    EndRow();
  }
  std::printf("\n");

  double left = model.UpdateCost(ExtensionKind::kLeftComplete, 3, binary);
  double full = model.UpdateCost(ExtensionKind::kFull, 3, binary);
  Claim("update costs of left-complete and full are almost comparable",
        left / full < 2.5 && full / left < 2.5);
  return 0;
}
