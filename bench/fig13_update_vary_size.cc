// Figure 13 (§6.3.3): update cost of ins_1 while all object sizes sweep
// 100..800 bytes (binary decomposition). Canonical and right-complete grow
// with object size (their searches run through the object representation);
// left-complete needs only a forward search and is marginally affected.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Figure 13", "update cost ins_1 under varying object sizes");
  Header({"size_i", "can", "full", "left", "right"});

  Decomposition binary = Decomposition::Binary(4);
  double can_first = 0, can_last = 0;
  double right_first = 0, right_last = 0;
  double left_first = 0, left_last = 0;
  for (double size = 100; size <= 800; size += 100) {
    cost::ApplicationProfile p = Fig4Profile();
    p.size = {size, size, size, size, size};
    cost::CostModel model(p);
    double can = model.UpdateCost(ExtensionKind::kCanonical, 1, binary);
    double full = model.UpdateCost(ExtensionKind::kFull, 1, binary);
    double left = model.UpdateCost(ExtensionKind::kLeftComplete, 1, binary);
    double right = model.UpdateCost(ExtensionKind::kRightComplete, 1, binary);
    Cell(size);
    Cell(can);
    Cell(full);
    Cell(left);
    Cell(right);
    EndRow();
    if (size == 100) {
      can_first = can;
      right_first = right;
      left_first = left;
    }
    can_last = can;
    right_last = right;
    left_last = left;
  }
  std::printf("\n");
  Claim("canonical update cost grows as object sizes increase",
        can_last > can_first * 2);
  Claim("right-complete update cost grows as object sizes increase",
        right_last > right_first * 2);
  Claim("left-complete is only marginally affected (forward search only)",
        left_last - left_first < (can_last - can_first) / 4);
  return 0;
}
