// Figure 17 (§6.4.5): right-complete vs full extension for an n = 5 path
// whose query mix ends at t_n, under the binary decomposition and the
// coarser (0,3,5). The paper: the (0,3,5) decomposition "is always
// superior", and below P_up ~ 0.005 the right-complete extension beats full.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig17Profile());
  cost::OperationMix mix = Fig17Mix();
  Decomposition binary = Decomposition::Binary(5);
  Decomposition coarse = Decomposition::Of({0, 3, 5}, 5).value();

  Title("Figure 17", "operation mix: right-complete vs full, n = 5");
  Header({"P_up", "right/bin", "full/bin", "right/035", "full/035"});
  bool coarse_superior = true;
  for (double p_up : {0.0001, 0.001, 0.005, 0.01, 0.1, 0.3, 0.5, 0.9}) {
    std::printf("%16.4g", p_up);
    double rb = cost::MixCost(model, ExtensionKind::kRightComplete, binary,
                              mix, p_up);
    double fb = cost::MixCost(model, ExtensionKind::kFull, binary, mix, p_up);
    double rc = cost::MixCost(model, ExtensionKind::kRightComplete, coarse,
                              mix, p_up);
    double fc = cost::MixCost(model, ExtensionKind::kFull, coarse, mix, p_up);
    std::printf("%16.1f%16.1f%16.1f%16.1f\n", rb, fb, rc, fc);
    coarse_superior &= rc <= rb * 1.001 && fc <= fb * 1.001;
  }
  std::printf("\n");

  // Break-even of right vs full under (0,3,5).
  double break_even = -1;
  for (double p_up = 0.00005; p_up <= 0.2; p_up *= 1.3) {
    double right = cost::MixCost(model, ExtensionKind::kRightComplete,
                                 coarse, mix, p_up);
    double full = cost::MixCost(model, ExtensionKind::kFull, coarse, mix,
                                p_up);
    if (right > full) {
      break_even = p_up;
      break;
    }
  }
  std::printf("right/full break-even under (0,3,5) at P_up ~ %.4f\n",
              break_even);
  Claim("the (0,3,5) decomposition is always superior to binary here",
        coarse_superior);
  Claim("right-complete beats full only below a tiny update probability",
        break_even > 0 && break_even < 0.05);
  return 0;
}
