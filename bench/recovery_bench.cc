// Beyond the paper: recovery-overhead benchmark for the fault model.
//
// Three costs of the crash-consistency machinery are metered on the Fig. 4
// profile (full extension, binary decomposition): (1) a clean restart —
// Recover() when the journal is empty and every partition passes triage;
// (2) the crash matrix — a maintenance op is crashed at the k-th tree-page
// write (dropped and torn variants), Recover() re-derives a consistent
// state, and its page/wall cost is swept over k; (3) degradation — a
// corrupted partition is quarantined, queries fall back to object-base
// navigation until Repair() rebuilds the trees. Results go to stdout and
// BENCH_recovery.json.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "asr/access_support_relation.h"
#include "bench_util.h"
#include "obs/latency.h"
#include "storage/backend.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/mvcc.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace {

// Accumulated cost of one recovery class over the sweep.
struct RecoveryCost {
  uint64_t points = 0;        // crash points exercised
  uint64_t recoveries = 0;    // successful Recover() calls
  uint64_t total_pages = 0;   // page accesses across all recoveries
  uint64_t max_pages = 0;
  double total_ms = 0;
  uint64_t rows_recomputed = 0;

  double mean_pages() const {
    return recoveries > 0
               ? static_cast<double>(total_pages) /
                     static_cast<double>(recoveries)
               : 0;
  }
  double mean_ms() const {
    return recoveries > 0 ? total_ms / static_cast<double>(recoveries) : 0;
  }
};

// One durable-mode eviction workload on the real file backend: a buffer
// pool much smaller than the dirty working set churns write-backs, and the
// durability policy decides how many of them turn into fdatasync calls.
// Both modes end with FlushAll, so they leave identical on-disk guarantees.
struct DurabilityCost {
  uint64_t page_writes = 0;  // write-backs that reached the backend
  uint64_t fsyncs = 0;       // real fdatasync/fsync calls issued
  double wall_ms = 0;
  // Seam latency over the workload, from the backend's own histograms.
  asr::obs::HistogramSnapshot write_us;
  asr::obs::HistogramSnapshot sync_us;
};

DurabilityCost RunDurabilityWorkload(asr::storage::DurabilityMode mode,
                                     uint32_t flush_batch) {
  using namespace asr::storage;
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("asr_recovery_bench_dur_" + std::string(
                            DurabilityModeName(mode)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  DurabilityCost cost;
  {
    DiskOptions options = DiskOptions::File(dir.string(), /*mmap=*/false);
    options.durability = mode;
    options.flush_batch = flush_batch;
    Disk disk(options);
    const uint32_t seg = disk.CreateSegment("bench:durability");
    std::vector<PageId> ids;
    for (uint32_t i = 0; i < 512; ++i) ids.push_back(disk.AllocatePage(seg));
    asr::bench::WallTimer timer;
    {
      BufferManager pool(&disk, /*capacity=*/32);
      for (uint32_t round = 0; round < 4; ++round) {
        for (PageId id : ids) {
          PageGuard guard = pool.Pin(id);
          guard.page().Write<uint64_t>(0, round * ids.size() + id.page_no);
          guard.MarkDirty();
        }
      }
      ASR_CHECK(pool.FlushAll().ok());
    }
    cost.wall_ms = timer.ElapsedMs();
    cost.page_writes = disk.segment_stats(seg).page_writes;
    auto* fb = static_cast<FileBackend*>(disk.backend());
    cost.fsyncs = fb->fsyncs();
    cost.write_us = fb->write_latency();
    cost.sync_us = fb->sync_latency();
  }
  fs::remove_all(dir);
  return cost;
}

// Page reads billed to segments outside the B+ trees: the object-base
// navigation cost a degraded query pays and a healthy one does not.
uint64_t NonTreePageReads(asr::storage::Disk* disk) {
  uint64_t total = 0;
  for (uint32_t s = 0; s < disk->segment_count(); ++s) {
    if (disk->SegmentName(s).rfind("btree:", 0) == 0) continue;
    total += disk->segment_stats(s).page_reads;
  }
  return total;
}

// One multi-writer run: W threads over ONE transactional ASR, each toggling
// its own edge. Claims serialize the writers through Aborted-claim retries
// with backoff; storage-level commit conflicts stay on the MVCC
// first-committer-wins path. Committed ops come from the maintenance
// journal, conflicts/retries from the MVCC manager and the telemetry hub.
struct MultiWriterCost {
  uint32_t writers = 0;
  uint64_t ops_committed = 0;
  uint64_t ops_aborted = 0;   // exhausted retries (should be zero)
  uint64_t txn_commits = 0;   // storage commit groups
  uint64_t txn_conflicts = 0; // storage-level first-committer losses
  uint64_t retries = 0;       // claim-retry attempts beyond the first
  double wall_ms = 0;

  double ops_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(ops_committed) * 1000.0 / wall_ms
                       : 0;
  }
  double conflict_ratio() const {
    uint64_t attempts = txn_commits + txn_conflicts;
    return attempts > 0 ? static_cast<double>(txn_conflicts) /
                              static_cast<double>(attempts)
                        : 0;
  }
};

MultiWriterCost RunMultiWriterWorkload(const asr::cost::ApplicationProfile&
                                           profile,
                                       uint32_t writers, uint32_t iters) {
  using namespace asr;
  auto base =
      workload::SyntheticBase::Generate(profile, {2026, writers}).value();
  storage::MvccManager mvcc;
  base->disk()->AttachMvcc(&mvcc);
  AsrOptions options;
  options.transactional = true;
  options.txn_max_retries = 64;
  options.txn_backoff_us = 20;
  auto asr = AccessSupportRelation::Build(
                 base->store(), base->path(), ExtensionKind::kFull,
                 Decomposition::Binary(base->path().n()), options)
                 .value();
  // Writer k toggles its own edge (u_k at path position 2 -> w_k): the row
  // sets are disjoint, so correctness never depends on ordering, but every
  // op claims the shared partition stores — the contention being metered.
  // The setup pass makes each edge start absent so the toggle is symmetric.
  const PathStep& step = base->path().step(3);
  std::vector<Oid> us(writers);
  std::vector<AsrKey> ws(writers), set_keys(writers);
  for (uint32_t k = 0; k < writers; ++k) {
    us[k] = base->objects_at(2)[k];
    ws[k] = AsrKey::FromOid(base->objects_at(3)[writers + k]);
    set_keys[k] =
        base->store()->GetAttributeByName(us[k], step.attr_name).value();
    ASR_CHECK(!set_keys[k].IsNull());
    if (base->store()->SetContains(set_keys[k].ToOid(), ws[k]).value()) {
      ASR_CHECK(
          base->store()->RemoveFromSet(set_keys[k].ToOid(), ws[k]).ok());
      ASR_CHECK(asr->OnEdgeRemoved(us[k], 2, ws[k]).ok());
    }
  }

  obs::LiveTelemetry& hub = obs::LiveTelemetry::Instance();
  hub.Reset();
  const uint64_t journal_before = asr->journal().committed();
  const uint64_t commits_before = mvcc.commits().value();
  std::vector<std::thread> fleet;
  asr::bench::WallTimer timer;
  for (uint32_t k = 0; k < writers; ++k) {
    fleet.emplace_back([&, k] {
      for (uint32_t i = 0; i < iters; ++i) {
        ASR_CHECK(base->store()->AddToSet(set_keys[k].ToOid(), ws[k]).ok());
        ASR_CHECK(asr->OnEdgeInserted(us[k], 2, ws[k]).ok());
        ASR_CHECK(
            base->store()->RemoveFromSet(set_keys[k].ToOid(), ws[k]).ok());
        ASR_CHECK(asr->OnEdgeRemoved(us[k], 2, ws[k]).ok());
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  MultiWriterCost cost;
  cost.writers = writers;
  cost.wall_ms = timer.ElapsedMs();
  cost.ops_committed = asr->journal().committed() - journal_before;
  cost.ops_aborted = asr->journal().aborted();
  cost.txn_commits = mvcc.commits().value() - commits_before;
  cost.txn_conflicts = mvcc.conflicts().value();
  cost.retries = hub.txn_retries.snapshot().sum;
  hub.Reset();
  return cost;
}

}  // namespace

int main() {
  using namespace asr;
  using namespace asr::bench;
  using storage::FaultInjector;
  using storage::FaultKind;
  using storage::FaultSpec;

  cost::ApplicationProfile profile = Fig4Profile();
  Title("Recovery overhead",
        "crash matrix + degradation, Fig. 4 profile, full ext., binary dec.");
  auto base = workload::SyntheticBase::Generate(profile, {2026, 0}).value();
  const uint32_t n = base->path().n();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(n))
                 .value();
  ASR_CHECK(base->buffers()->FlushAll().ok());

  // --- Clean restart: triage every partition, re-derive nothing ----------
  RecoveryReport clean_report;
  asr::bench::WallTimer clean_timer;
  storage::AccessStats clean_cost = workload::Meter(base->disk(), [&] {
    ASR_CHECK(asr->Recover(&clean_report).ok());
  });
  double clean_ms = clean_timer.ElapsedMs();
  Claim("clean restart takes the fast path (nothing recomputed)",
        clean_report.clean && clean_report.rows_recomputed == 0);

  // --- Crash matrix: crash the k-th tree write of a maintenance op -------
  // The same edge (u at path position 2 -> w) is toggled in and out of the
  // base; the base mutation always completes before the injector is armed,
  // so each Recover() re-derives against a well-formed object base — the
  // same discipline a write-ahead base commit gives a real system.
  const PathStep& step = base->path().step(3);
  Oid u = base->objects_at(2)[1];
  Oid w = base->objects_at(3)[7];
  AsrKey set_key = base->store()->GetAttributeByName(u, step.attr_name).value();
  ASR_CHECK(!set_key.IsNull());

  RecoveryCost costs[2];  // [0] = write crash, [1] = torn write
  const FaultKind kinds[2] = {FaultKind::kWriteCrash, FaultKind::kTornWrite};
  for (int variant = 0; variant < 2; ++variant) {
    FaultInjector injector;
    base->disk()->set_fault_injector(&injector);
    for (uint64_t k = 1; k <= 64; ++k) {
      const bool present =
          base->store()->SetContains(set_key.ToOid(), AsrKey::FromOid(w))
              .value();
      if (present) {
        ASR_CHECK(base->store()
                      ->RemoveFromSet(set_key.ToOid(), AsrKey::FromOid(w))
                      .ok());
      } else {
        ASR_CHECK(base->store()
                      ->AddToSet(set_key.ToOid(), AsrKey::FromOid(w))
                      .ok());
      }
      FaultSpec spec;
      spec.kind = kinds[variant];
      spec.after_matching = k;
      spec.segment_prefix = "btree:";
      injector.Arm(spec);
      Status st = present ? asr->OnEdgeRemoved(u, 2, AsrKey::FromOid(w))
                          : asr->OnEdgeInserted(u, 2, AsrKey::FromOid(w));
      if (!injector.fired()) {
        // The op finished with fewer than k tree writes: sweep exhausted.
        injector.Disarm();
        ASR_CHECK(st.ok());
        break;
      }
      RecoveryCost& c = costs[variant];
      ++c.points;
      RecoveryReport report;
      asr::bench::WallTimer timer;
      storage::AccessStats cost = workload::Meter(base->disk(), [&] {
        ASR_CHECK(asr->Recover(&report).ok());
      });
      c.total_ms += timer.ElapsedMs();
      ++c.recoveries;
      c.total_pages += cost.total();
      c.max_pages = std::max(c.max_pages, cost.total());
      c.rows_recomputed += report.rows_recomputed;
      // Torn pages can leave a partition quarantined; re-admit it so the
      // next sweep point starts from a fully healthy ASR.
      ASR_CHECK(asr->Repair().ok());
      ASR_CHECK(!asr->degraded());
    }
    base->disk()->set_fault_injector(nullptr);
  }

  Header({"recovery class", "points", "mean pages", "max pages", "mean ms"});
  Cell("clean restart");
  Cell(1.0);
  Cell(static_cast<double>(clean_cost.total()));
  Cell(static_cast<double>(clean_cost.total()));
  Cell(clean_ms);
  EndRow();
  const char* labels[2] = {"write crash", "torn write"};
  for (int variant = 0; variant < 2; ++variant) {
    Cell(labels[variant]);
    Cell(static_cast<double>(costs[variant].points));
    Cell(costs[variant].mean_pages());
    Cell(static_cast<double>(costs[variant].max_pages));
    Cell(costs[variant].mean_ms());
    EndRow();
  }
  std::printf("\n");
  Claim("every write-crash point recovered",
        costs[0].points > 0 && costs[0].recoveries == costs[0].points);
  Claim("every torn-write point recovered",
        costs[1].points > 0 && costs[1].recoveries == costs[1].points);

  // --- Degradation: quarantined partition answers by navigation ----------
  AsrKey anchor = AsrKey::FromOid(base->objects_at(0)[0]);
  base->disk()->ResetStats();
  storage::AccessStats healthy = workload::Meter(base->disk(), [&] {
    ASR_CHECK(asr->EvalForward(anchor, 0, n).ok());
  });
  uint64_t healthy_nav = NonTreePageReads(base->disk());

  // Scribble zeros over a page of partition 0's forward tree: the checksum
  // is valid, so Recover()'s structural triage quarantines the partition.
  uint32_t seg = asr->partition_store(0)->forward->segment();
  storage::Page zeros;
  ASR_CHECK(base->disk()->WritePage(storage::PageId{seg, 0}, zeros).ok());
  base->buffers()->DropAll();
  RecoveryReport degrade_report;
  ASR_CHECK(asr->Recover(&degrade_report).ok());
  ASR_CHECK(asr->degraded());

  base->disk()->ResetStats();
  storage::AccessStats degraded = workload::Meter(base->disk(), [&] {
    ASR_CHECK(asr->EvalForward(anchor, 0, n).ok());
  });
  uint64_t degraded_nav = NonTreePageReads(base->disk());

  RecoveryReport repair_report;
  asr::bench::WallTimer repair_timer;
  storage::AccessStats repair_cost = workload::Meter(base->disk(), [&] {
    ASR_CHECK(asr->Repair(&repair_report).ok());
  });
  double repair_ms = repair_timer.ElapsedMs();

  base->disk()->ResetStats();
  storage::AccessStats repaired = workload::Meter(base->disk(), [&] {
    ASR_CHECK(asr->EvalForward(anchor, 0, n).ok());
  });
  uint64_t repaired_nav = NonTreePageReads(base->disk());

  Header({"query state", "pages", "base reads"});
  Cell("healthy");
  Cell(static_cast<double>(healthy.total()));
  Cell(static_cast<double>(healthy_nav));
  EndRow();
  Cell("degraded");
  Cell(static_cast<double>(degraded.total()));
  Cell(static_cast<double>(degraded_nav));
  EndRow();
  Cell("repaired");
  Cell(static_cast<double>(repaired.total()));
  Cell(static_cast<double>(repaired_nav));
  EndRow();
  std::printf("\n");
  Claim("healthy and repaired queries touch no object-base pages",
        healthy_nav == 0 && repaired_nav == 0);
  // Total pages can go either way on a short path slice (a tree probe costs
  // root-to-leaf reads too); the structural signature of degradation is
  // object-base traffic that a supported query never pays.
  Claim("degraded query pays for object-base navigation",
        degraded_nav > 0 && healthy_nav == 0);
  Claim("repair re-admitted the partition",
        repair_report.partitions_repaired >= 1 && !asr->degraded());

  // --- Durability: group flush vs per-page fsync on the file backend ------
  // 2048 dirty write-backs through a 32-frame pool. kPage buys its recovery
  // guarantee with one fdatasync per write-back; kGroup batches a run of
  // write-backs per sync and closes the final run in FlushAll, so both end
  // at the same durability point.
  DurabilityCost page_cost =
      RunDurabilityWorkload(storage::DurabilityMode::kPage, 64);
  DurabilityCost group_cost =
      RunDurabilityWorkload(storage::DurabilityMode::kGroup, 64);
  Header({"durability mode", "page writes", "fsyncs", "wall ms"});
  Cell("page");
  Cell(static_cast<double>(page_cost.page_writes));
  Cell(static_cast<double>(page_cost.fsyncs));
  Cell(page_cost.wall_ms);
  EndRow();
  Cell("group (batch 64)");
  Cell(static_cast<double>(group_cost.page_writes));
  Cell(static_cast<double>(group_cost.fsyncs));
  Cell(group_cost.wall_ms);
  EndRow();
  std::printf("\n");
  Claim("both modes persisted the same write-back stream",
        page_cost.page_writes == group_cost.page_writes &&
            page_cost.page_writes > 0);
  Claim("group flush cuts fsyncs at least 4x at equal guarantees",
        group_cost.fsyncs > 0 &&
            group_cost.fsyncs * 4 <= page_cost.fsyncs);

  // --- Multi-writer: transactional throughput on one shared ASR -----------
  // W writer threads toggle disjoint edges through the claim-and-retry
  // transactional path. Committed ops must equal the offered load at every
  // width (no writer may exhaust its retries); the conflict and retry
  // columns show what the serialization cost.
  const uint32_t widths[3] = {1, 2, 4};
  const uint32_t kMwIters = 50;
  MultiWriterCost mw[3];
  for (int i = 0; i < 3; ++i) {
    mw[i] = RunMultiWriterWorkload(profile, widths[i], kMwIters);
  }
  Header({"writers", "ops", "wall ms", "ops/sec", "conflicts", "retries"});
  for (int i = 0; i < 3; ++i) {
    Cell(static_cast<double>(mw[i].writers));
    Cell(static_cast<double>(mw[i].ops_committed));
    Cell(mw[i].wall_ms);
    Cell(mw[i].ops_per_sec());
    Cell(static_cast<double>(mw[i].txn_conflicts));
    Cell(static_cast<double>(mw[i].retries));
    EndRow();
  }
  std::printf("\n");
  bool mw_all_committed = true;
  for (int i = 0; i < 3; ++i) {
    mw_all_committed = mw_all_committed &&
                       mw[i].ops_committed ==
                           static_cast<uint64_t>(widths[i]) * 2 * kMwIters &&
                       mw[i].ops_aborted == 0;
  }
  Claim("every offered op committed at every writer width", mw_all_committed);

  FILE* json = std::fopen("BENCH_recovery.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"profile\": \"fig4\",\n");
    std::fprintf(json, "  \"extension\": \"full\",\n");
    std::fprintf(json, "  \"decomposition\": \"binary\",\n");
    std::fprintf(json,
                 "  \"clean_restart\": {\"pages\": %llu, \"wall_ms\": %.3f},\n",
                 static_cast<unsigned long long>(clean_cost.total()),
                 clean_ms);
    std::fprintf(json, "  \"crash_matrix\": {\n");
    const char* keys[2] = {"write_crash", "torn_write"};
    for (int variant = 0; variant < 2; ++variant) {
      const RecoveryCost& c = costs[variant];
      std::fprintf(json,
                   "    \"%s\": {\"points\": %llu, \"recovered\": %llu, "
                   "\"mean_pages\": %.1f, \"max_pages\": %llu, "
                   "\"mean_wall_ms\": %.3f, \"rows_recomputed\": %llu}%s\n",
                   keys[variant], static_cast<unsigned long long>(c.points),
                   static_cast<unsigned long long>(c.recoveries),
                   c.mean_pages(),
                   static_cast<unsigned long long>(c.max_pages), c.mean_ms(),
                   static_cast<unsigned long long>(c.rows_recomputed),
                   variant == 0 ? "," : "");
    }
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"durability\": {\n");
    std::fprintf(json,
                 "    \"page\": {\"page_writes\": %llu, \"fsyncs\": %llu, "
                 "\"wall_ms\": %.3f, \"write_p50_us\": %llu, "
                 "\"write_p99_us\": %llu, \"sync_p50_us\": %llu, "
                 "\"sync_p99_us\": %llu},\n",
                 static_cast<unsigned long long>(page_cost.page_writes),
                 static_cast<unsigned long long>(page_cost.fsyncs),
                 page_cost.wall_ms,
                 static_cast<unsigned long long>(
                     page_cost.write_us.Percentile(0.5)),
                 static_cast<unsigned long long>(
                     page_cost.write_us.Percentile(0.99)),
                 static_cast<unsigned long long>(
                     page_cost.sync_us.Percentile(0.5)),
                 static_cast<unsigned long long>(
                     page_cost.sync_us.Percentile(0.99)));
    std::fprintf(json,
                 "    \"group\": {\"flush_batch\": 64, \"page_writes\": %llu, "
                 "\"fsyncs\": %llu, \"wall_ms\": %.3f, "
                 "\"write_p50_us\": %llu, \"write_p99_us\": %llu, "
                 "\"sync_p50_us\": %llu, \"sync_p99_us\": %llu},\n",
                 static_cast<unsigned long long>(group_cost.page_writes),
                 static_cast<unsigned long long>(group_cost.fsyncs),
                 group_cost.wall_ms,
                 static_cast<unsigned long long>(
                     group_cost.write_us.Percentile(0.5)),
                 static_cast<unsigned long long>(
                     group_cost.write_us.Percentile(0.99)),
                 static_cast<unsigned long long>(
                     group_cost.sync_us.Percentile(0.5)),
                 static_cast<unsigned long long>(
                     group_cost.sync_us.Percentile(0.99)));
    std::fprintf(json, "    \"fsync_reduction\": %.1f\n",
                 group_cost.fsyncs > 0
                     ? static_cast<double>(page_cost.fsyncs) /
                           static_cast<double>(group_cost.fsyncs)
                     : 0.0);
    std::fprintf(json, "  },\n");
    std::fprintf(json, "  \"multi_writer\": [\n");
    for (int i = 0; i < 3; ++i) {
      std::fprintf(json,
                   "    {\"writers\": %u, \"ops_committed\": %llu, "
                   "\"wall_ms\": %.3f, \"ops_per_sec\": %.1f, "
                   "\"txn_commits\": %llu, \"txn_conflicts\": %llu, "
                   "\"conflict_ratio\": %.3f, \"retries\": %llu}%s\n",
                   mw[i].writers,
                   static_cast<unsigned long long>(mw[i].ops_committed),
                   mw[i].wall_ms, mw[i].ops_per_sec(),
                   static_cast<unsigned long long>(mw[i].txn_commits),
                   static_cast<unsigned long long>(mw[i].txn_conflicts),
                   mw[i].conflict_ratio(),
                   static_cast<unsigned long long>(mw[i].retries),
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(
        json,
        "  \"degradation\": {\"healthy_pages\": %llu, "
        "\"degraded_pages\": %llu, \"degraded_base_reads\": %llu, "
        "\"repair_pages\": %llu, \"repair_wall_ms\": %.3f, "
        "\"repaired_pages\": %llu}\n",
        static_cast<unsigned long long>(healthy.total()),
        static_cast<unsigned long long>(degraded.total()),
        static_cast<unsigned long long>(degraded_nav),
        static_cast<unsigned long long>(repair_cost.total()), repair_ms,
        static_cast<unsigned long long>(repaired.total()));
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_recovery.json\n");
  }
  return 0;
}
