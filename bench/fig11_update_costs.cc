// Figure 11 (§6.3.1): cost of the update operation ins_3 for all extensions
// under binary and no decomposition (Fig. 4 profile). The update sits at the
// right end of the path, so the left-complete extension — whose search for
// new paths runs forward only — is far superior to the right-complete one.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  Decomposition none = Decomposition::None(4);
  Decomposition binary = Decomposition::Binary(4);

  Title("Figure 11", "update cost ins_3 in page accesses");
  Header({"extension", "no dec", "binary dec", "search part"});
  for (ExtensionKind x : AllExtensions()) {
    Cell(ExtensionKindName(x));
    Cell(model.UpdateCost(x, 3, none));
    Cell(model.UpdateCost(x, 3, binary));
    Cell(model.UpdateSearchCost(x, 3, binary));
    EndRow();
  }
  std::printf("\nno access support: %.1f (object update only)\n\n",
              model.UpdateCostNoSupport());

  double left = model.UpdateCost(ExtensionKind::kLeftComplete, 3, binary);
  double right = model.UpdateCost(ExtensionKind::kRightComplete, 3, binary);
  double can = model.UpdateCost(ExtensionKind::kCanonical, 3, binary);
  Claim(
      "left-complete under binary decomposition is very much superior to "
      "right-complete for ins_3",
      left < right / 2);
  Claim(
      "canonical is problematic under updates (a data search is always "
      "necessary)",
      can > left);

  // The paper also notes the flip for ins_0.
  double left0 = model.UpdateCost(ExtensionKind::kLeftComplete, 0, binary);
  double right0 = model.UpdateCost(ExtensionKind::kRightComplete, 0, binary);
  Claim("for ins_0 the asymmetry flips: right-complete beats left-complete",
        right0 < left0);
  return 0;
}
