// Beyond the paper: the Fig. 14 operation mix executed EMPIRICALLY against a
// live object base with incremental ASR maintenance, at the Fig. 6 scale.
// The analytical figures predict where each extension wins; this bench
// verifies the ordering on the running system with measured page accesses
// per operation (normalized by the measured no-support cost, as in the
// paper's normalized plots).
#include "bench_util.h"
#include "workload/mix_driver.h"
#include "workload/synthetic_base.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::ApplicationProfile profile = Fig6Profile();
  cost::OperationMix mix = Fig14Mix();
  const uint64_t kOps = 60;

  Title("Empirical operation mix",
        "measured page accesses/op, Fig. 14 mix on the live Fig. 6 base");
  Header({"P_up", "no support", "can", "full", "left", "right"});

  bool support_always_wins = true;
  bool left_wins_low_pup = true;
  for (double p_up : {0.1, 0.5, 0.9}) {
    Cell(p_up);
    // Fresh base per configuration so updates do not accumulate.
    double nosup;
    {
      auto base =
          workload::SyntheticBase::Generate(profile, {404, 0}).value();
      workload::MixDriver driver(base.get(), nullptr, 17);
      nosup = driver.Run(mix, p_up, kOps).value().PerOperation();
    }
    Cell(nosup);
    double left_cost = 0, full_cost = 0;
    for (ExtensionKind x : AllExtensions()) {
      auto base =
          workload::SyntheticBase::Generate(profile, {404, 0}).value();
      auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                              x, Decomposition::Binary(4))
                     .value();
      ASR_CHECK(base->buffers()->FlushAll().ok());
      base->disk()->ResetStats();
      workload::MixDriver driver(base.get(), asr.get(), 17);
      double per_op = driver.Run(mix, p_up, kOps).value().PerOperation();
      Cell(per_op);
      if (x == ExtensionKind::kLeftComplete) left_cost = per_op;
      if (x == ExtensionKind::kFull) full_cost = per_op;
      if (p_up <= 0.5 && x == ExtensionKind::kFull) {
        support_always_wins &= per_op < nosup;
      }
    }
    EndRow();
    if (p_up == 0.1) left_wins_low_pup = left_cost <= full_cost * 1.5;
  }
  std::printf("\n");
  Claim("full-extension support beats no support at query-heavy mixes "
        "on the live system",
        support_always_wins);
  Claim("left-complete is competitive with full at low update probability "
        "(the analytical Fig. 14 ordering)",
        left_wins_low_pup);
  return 0;
}
