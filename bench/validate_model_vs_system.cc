// Beyond the paper: cross-validation of the analytical cost model against
// the executable system. A synthetic object base realizing the Fig. 6
// profile is generated; queries and updates are executed against the live
// store and ASRs with strict page-access metering, and the counts are
// compared with the model's predictions.
//
// Absolute agreement is not expected — the substrate differs from the
// paper's assumptions in documented ways (slotted-page overhead, co-located
// set instances, B+ trees with 8-byte fingerprints) — but the *shape* must
// hold: who wins, and by roughly what factor.
#include <algorithm>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "bench_util.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::ApplicationProfile profile = Fig6Profile();
  cost::CostModel model(profile);
  auto base = workload::SyntheticBase::Generate(profile, {2026, 0}).value();
  QueryEvaluator nav(base->store(), &base->path());
  obs::DriftReport drift("validate_model_vs_system", "fig6");
  drift.AddMeta("trials", "5");
  drift.AddMeta("seed", "2026");

  Title("Validation", "analytical model vs metered execution (Fig. 6 profile)");

  // --- Backward query without support -------------------------------------
  double nas_model =
      model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 4);
  uint64_t nas_sum = 0;
  const int kQueryTrials = 5;
  for (int t = 0; t < kQueryTrials; ++t) {
    Oid target = base->objects_at(4)[static_cast<size_t>(1 + 1997 * t)];
    storage::AccessStats st = workload::Meter(base->disk(), [&] {
      nav.BackwardNoSupport(AsrKey::FromOid(target), 0, 4).value();
    });
    nas_sum += st.total();
  }
  double nas_measured = static_cast<double>(nas_sum) / kQueryTrials;

  Header({"operation", "model", "measured", "ratio"});
  Cell("Q04(bw) nosup");
  Cell(nas_model);
  Cell(nas_measured);
  Cell(nas_measured / nas_model);
  EndRow();
  drift.AddRow("Q04(bw) nosup", nas_model, nas_measured);

  // --- Supported backward query per extension -----------------------------
  Decomposition none = Decomposition::None(4);
  double worst_supported = 0;
  for (ExtensionKind x : AllExtensions()) {
    auto asr = AccessSupportRelation::Build(base->store(), base->path(), x,
                                            none)
                   .value();
    ASR_CHECK(base->buffers()->FlushAll().ok());
    uint64_t sum = 0;
    for (int t = 0; t < kQueryTrials; ++t) {
      Oid target = base->objects_at(4)[static_cast<size_t>(1 + 1997 * t)];
      storage::AccessStats st = workload::Meter(base->disk(), [&] {
        asr->EvalBackward(AsrKey::FromOid(target), 0, 4).value();
      });
      sum += st.total();
    }
    double measured = static_cast<double>(sum) / kQueryTrials;
    double predicted = model.QuerySupported(
        x, cost::QueryDirection::kBackward, 0, 4, none);
    Cell("Q04(bw) " + ExtensionKindName(x));
    Cell(predicted);
    Cell(measured);
    Cell(predicted > 0 ? measured / predicted : 0);
    EndRow();
    drift.AddRow("Q04(bw) " + ExtensionKindName(x), predicted, measured);
    worst_supported = std::max(worst_supported, measured);
  }

  // --- Update ins_2 with incremental maintenance (left-complete, binary) --
  {
    Decomposition binary = Decomposition::Binary(4);
    auto asr = AccessSupportRelation::Build(
                   base->store(), base->path(), ExtensionKind::kLeftComplete,
                   binary)
                   .value();
    ASR_CHECK(base->buffers()->FlushAll().ok());
    const PathStep& step = base->path().step(3);
    uint64_t sum = 0;
    int performed = 0;
    for (size_t i = 0; i < base->objects_at(2).size() && performed < 5;
         i += 37) {
      Oid u = base->objects_at(2)[i];
      Oid w = base->objects_at(3)[(i * 13) % base->objects_at(3).size()];
      AsrKey set_key =
          base->store()->GetAttributeByName(u, step.attr_name).value();
      if (set_key.IsNull()) continue;
      if (base->store()->SetContains(set_key.ToOid(), AsrKey::FromOid(w))
              .value()) {
        continue;
      }
      storage::AccessStats st = workload::Meter(base->disk(), [&] {
        ASR_CHECK(base->store()
                      ->AddToSet(set_key.ToOid(), AsrKey::FromOid(w))
                      .ok());
        ASR_CHECK(asr->OnEdgeInserted(u, 2, AsrKey::FromOid(w)).ok());
      });
      sum += st.total();
      ++performed;
    }
    double measured = performed > 0 ? static_cast<double>(sum) / performed : 0;
    double predicted =
        model.UpdateCost(ExtensionKind::kLeftComplete, 2, binary);
    Cell("ins_2 left/bin");
    Cell(predicted);
    Cell(measured);
    Cell(predicted > 0 ? measured / predicted : 0);
    EndRow();
    drift.AddRow("ins_2 left/bin", predicted, measured);
  }
  std::printf("\n");

  Claim("supported queries are at least 5x cheaper than exhaustive search",
        worst_supported * 5 < nas_measured);

  base->disk()->ExportMetrics(drift.metrics(), "disk");
  base->buffers()->ExportMetrics(drift.metrics(), "buffers");
  nav.ExportMetrics(drift.metrics(), "query");
  WriteDrift(drift, "BENCH_validate_drift.json");
  return 0;
}
