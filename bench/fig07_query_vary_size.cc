// Figure 7 (§5.9.2): cost of the backward query Q_{0,4}(bw) as the stored
// object size varies from 100 to 800 bytes (binary decomposition). The
// supported costs are flat; only the unsupported cost grows.
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  Title("Figure 7", "Q_{0,4}(bw) cost under varying object size");
  Header({"size_i", "no support", "can", "full", "left", "right"});

  Decomposition binary = Decomposition::Binary(4);
  double nas_first = 0, nas_last = 0, full_first = 0, full_last = 0;
  for (double size = 100; size <= 800; size += 100) {
    cost::ApplicationProfile p = Fig6Profile();
    p.size = {size, size, size, size, size};
    cost::CostModel model(p);
    Cell(size);
    double nas = model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 4);
    Cell(nas);
    for (ExtensionKind x : AllExtensions()) {
      Cell(model.QuerySupported(x, cost::QueryDirection::kBackward, 0, 4,
                                binary));
    }
    EndRow();
    if (size == 100) {
      nas_first = nas;
      full_first = model.QuerySupported(
          ExtensionKind::kFull, cost::QueryDirection::kBackward, 0, 4,
          binary);
    }
    nas_last = nas;
    full_last = model.QuerySupported(ExtensionKind::kFull,
                                     cost::QueryDirection::kBackward, 0, 4,
                                     binary);
  }
  std::printf("\n");
  Claim("object size does not influence supported query cost",
        full_first == full_last);
  Claim("unsupported query cost grows roughly proportional to object size",
        nas_last > nas_first * 2.5);
  return 0;
}
