// Ablation (beyond the paper's figures, using its §6.4.2 setup): the effect
// of decomposition granularity. All 2^(n-1) decompositions of the full
// extension are costed against the Fig. 14 operation mix, separating query
// and update components — showing how the optimal interior cut points track
// the mix's entry and exit positions.
#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig4Profile());
  cost::OperationMix mix = Fig14Mix();

  Title("Ablation: decomposition granularity",
        "full extension, Fig. 14 mix, P_up = 0.3");
  Header({"decomposition", "query cost", "update cost", "mix cost",
          "storage MB"});

  struct Row {
    Decomposition dec = Decomposition::None(4);
    double mix_cost = 0;
  };
  std::vector<Row> rows;
  for (const Decomposition& dec : Decomposition::EnumerateAll(4)) {
    double queries = cost::MixCost(model, ExtensionKind::kFull, dec, mix,
                                   /*p_up=*/0.0);
    double updates = cost::MixCost(model, ExtensionKind::kFull, dec, mix,
                                   /*p_up=*/1.0);
    double total = cost::MixCost(model, ExtensionKind::kFull, dec, mix, 0.3);
    Cell(dec.ToString());
    Cell(queries);
    Cell(updates);
    Cell(total);
    std::printf("%16.2f",
                model.TotalBytes(ExtensionKind::kFull, dec) / 1e6);
    EndRow();
    rows.push_back({dec, total});
  }
  std::printf("\n");

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.mix_cost < b.mix_cost; });
  std::printf("best decomposition for this mix: %s (%.2f accesses/op)\n",
              rows.front().dec.ToString().c_str(), rows.front().mix_cost);

  double none_cost = cost::MixCost(model, ExtensionKind::kFull,
                                   Decomposition::None(4), mix, 0.3);
  double binary_cost = cost::MixCost(model, ExtensionKind::kFull,
                                     Decomposition::Binary(4), mix, 0.3);
  Claim("an intermediate decomposition beats both extremes",
        rows.front().mix_cost < none_cost &&
            rows.front().mix_cost < binary_cost);
  return 0;
}
