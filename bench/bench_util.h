// Shared profiles and table rendering for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's evaluation
// (Sections 4-6) from the analytical cost model, printing the series the
// figure plots plus the qualitative claim the paper's prose attaches to it.
// The application profiles are transcribed from the paper's tables.
#ifndef ASR_BENCH_BENCH_UTIL_H_
#define ASR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/opmix.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace asr::bench {

using cost::ApplicationProfile;
using cost::OperationMix;
using cost::QueryDirection;

inline const std::vector<ExtensionKind>& AllExtensions() {
  static const std::vector<ExtensionKind> kAll = {
      ExtensionKind::kCanonical, ExtensionKind::kFull,
      ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete};
  return kAll;
}

// §4.4.1 (Fig. 4) and §6.3.1 (Fig. 11) profile.
inline ApplicationProfile Fig4Profile() {
  ApplicationProfile p;
  p.n = 4;
  p.c = {1000, 5000, 10000, 50000, 100000};
  p.d = {900, 4000, 8000, 20000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

// §4.4.2 (Fig. 5) / §5.9.3 (Fig. 8) base profile with variable d.
inline ApplicationProfile UniformProfile(double d, double fan,
                                         double size = 120) {
  ApplicationProfile p;
  p.n = 4;
  p.c = {10000, 10000, 10000, 10000, 10000};
  p.d = {d, d, d, d};
  p.fan = {fan, fan, fan, fan};
  p.size = {size, size, size, size, size};
  return p;
}

// §5.9.1 (Fig. 6) / §5.9.2 (Fig. 7) profile. The paper prints d_2 = 8000,
// which exceeds c_2 = 1000; read as 800.
inline ApplicationProfile Fig6Profile() {
  ApplicationProfile p;
  p.n = 4;
  p.c = {100, 500, 1000, 5000, 10000};
  p.d = {90, 400, 800, 2000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

// §5.9.4 (Fig. 9) profile with variable fan-out.
inline ApplicationProfile Fig9Profile(double fan) {
  ApplicationProfile p;
  p.n = 4;
  p.c = {400000, 400000, 400000, 400000, 400000};
  p.d = {10, 100, 1000, 100000};
  p.fan = {fan, fan, fan, fan};
  p.size = {120, 120, 120, 120, 120};
  return p;
}

// §6.3.2 (Fig. 12) profile.
inline ApplicationProfile Fig12Profile() {
  ApplicationProfile p = Fig4Profile();
  p.fan = {2, 1, 1, 4};
  return p;
}

// §6.4.4 (Fig. 16) profile, n = 5.
inline ApplicationProfile Fig16Profile() {
  ApplicationProfile p;
  p.n = 5;
  p.c = {1000, 1000, 5000, 10000, 100000, 100000};
  p.d = {100, 1000, 3000, 8000, 100000};
  p.fan = {2, 2, 3, 4, 10};
  p.size = {600, 500, 400, 300, 300, 100};
  return p;
}

// §6.4.5 (Fig. 17) profile, n = 5.
inline ApplicationProfile Fig17Profile() {
  ApplicationProfile p;
  p.n = 5;
  p.c = {100000, 100000, 50000, 10000, 1000, 1000};
  p.d = {100000, 10000, 30000, 10000, 100};
  p.fan = {1, 10, 20, 4, 1};
  p.size = {600, 500, 400, 300, 200, 700};
  return p;
}

// §6.4.2 (Figs. 14/15) operation mix.
inline OperationMix Fig14Mix() {
  OperationMix mix;
  mix.queries = {{0.5, QueryDirection::kBackward, 0, 4},
                 {0.25, QueryDirection::kBackward, 0, 3},
                 {0.25, QueryDirection::kForward, 1, 2}};
  mix.updates = {{0.5, 2}, {0.5, 3}};
  return mix;
}

// §6.4.4 (Fig. 16) operation mix.
inline OperationMix Fig16Mix() {
  OperationMix mix;
  mix.queries = {{1.0 / 3, QueryDirection::kBackward, 0, 5},
                 {1.0 / 3, QueryDirection::kBackward, 0, 4},
                 {1.0 / 3, QueryDirection::kForward, 0, 5}};
  mix.updates = {{1.0 / 3, 3}, {1.0 / 3, 0}, {1.0 / 3, 4}};
  return mix;
}

// §6.4.5 (Fig. 17) operation mix.
inline OperationMix Fig17Mix() {
  OperationMix mix;
  mix.queries = {{0.5, QueryDirection::kBackward, 0, 5},
                 {0.25, QueryDirection::kBackward, 1, 5},
                 {0.25, QueryDirection::kBackward, 2, 5}};
  mix.updates = {{1.0, 3}};
  return mix;
}

// --- Wall-clock timing ----------------------------------------------------

// Monotonic stopwatch for the dual (page-count, wall-clock) reports: page
// accesses are the model's currency, ElapsedMs is the hardware's.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// --- JSON emission --------------------------------------------------------

// Streaming writer for the BENCH_*.json artifacts: owns the comma/indent
// bookkeeping the benches used to hand-roll around fprintf. Keys and string
// values are emitted verbatim (bench labels contain no characters needing
// escapes); doubles print with three decimals, like the tables.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {}
  ~JsonWriter() { Close(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  JsonWriter& BeginObject(const char* key = nullptr) {
    OpenScope('{', key);
    return *this;
  }
  JsonWriter& EndObject() {
    CloseScope('}');
    return *this;
  }
  JsonWriter& BeginArray(const char* key = nullptr) {
    OpenScope('[', key);
    return *this;
  }
  JsonWriter& EndArray() {
    CloseScope(']');
    return *this;
  }

  JsonWriter& Field(const char* key, const std::string& value) {
    Prefix(key);
    if (ok()) std::fprintf(file_, "\"%s\"", value.c_str());
    return *this;
  }
  JsonWriter& Field(const char* key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const char* key, double value) {
    Prefix(key);
    if (ok()) std::fprintf(file_, "%.3f", value);
    return *this;
  }
  JsonWriter& Field(const char* key, uint64_t value) {
    Prefix(key);
    if (ok()) {
      std::fprintf(file_, "%llu", static_cast<unsigned long long>(value));
    }
    return *this;
  }

  // Closes the file (any still-open scopes are the caller's bug; the
  // artifact checkers in scripts/ci.sh would catch the malformed output).
  void Close() {
    if (file_ == nullptr) return;
    std::fprintf(file_, "\n");
    std::fclose(file_);
    file_ = nullptr;
  }

 private:
  void Prefix(const char* key) {
    if (!ok()) return;
    if (!scopes_.empty()) {
      std::fprintf(file_, scopes_.back().has_items ? ",\n" : "\n");
      scopes_.back().has_items = true;
      for (size_t i = 0; i < scopes_.size(); ++i) std::fprintf(file_, "  ");
    }
    if (key != nullptr) std::fprintf(file_, "\"%s\": ", key);
  }
  void OpenScope(char open, const char* key) {
    Prefix(key);
    if (ok()) std::fprintf(file_, "%c", open);
    scopes_.push_back(Scope{});
  }
  void CloseScope(char close) {
    bool had_items = !scopes_.empty() && scopes_.back().has_items;
    if (!scopes_.empty()) scopes_.pop_back();
    if (!ok()) return;
    if (had_items) {
      std::fprintf(file_, "\n");
      for (size_t i = 0; i < scopes_.size(); ++i) std::fprintf(file_, "  ");
    }
    std::fprintf(file_, "%c", close);
  }

  struct Scope {
    bool has_items = false;
  };
  std::FILE* file_;
  std::vector<Scope> scopes_;
};

// Emits a wall-clock latency histogram's summary on the current JSON
// object as <name>_count / <name>_p50_us / <name>_p99_us. Benches that run
// the metering backend emit zeros (its seam is never wall-clock timed).
inline void LatencyFields(JsonWriter* json, const std::string& name,
                          const obs::HistogramSnapshot& h) {
  json->Field((name + "_count").c_str(), h.count);
  json->Field((name + "_p50_us").c_str(), h.Percentile(0.5));
  json->Field((name + "_p99_us").c_str(), h.Percentile(0.99));
}

// --- Table rendering -----------------------------------------------------

inline void Title(const std::string& figure, const std::string& what) {
  std::printf("=== %s — %s ===\n", figure.c_str(), what.c_str());
}

inline void Header(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------");
  std::printf("\n");
}

inline void Cell(double v) { std::printf("%16.1f", v); }
inline void Cell(const std::string& s) { std::printf("%16s", s.c_str()); }
inline void EndRow() { std::printf("\n"); }

inline void Claim(const std::string& text, bool holds) {
  std::printf("[%s] %s\n", holds ? "OK " : "???", text.c_str());
}

// --- Drift snapshots ------------------------------------------------------

// Writes the model-vs-observed snapshot to `filename` (conventionally
// BENCH_<bench>_drift.json in the working directory) and prints the
// destination plus the worst relative error over the rows that carry an
// observation.
inline void WriteDrift(const obs::DriftReport& report,
                       const std::string& filename) {
  if (report.WriteFile(filename)) {
    std::printf("wrote %s (max rel error %.3f)\n", filename.c_str(),
                report.MaxRelError());
  } else {
    std::printf("failed to write %s\n", filename.c_str());
  }
}

}  // namespace asr::bench

#endif  // ASR_BENCH_BENCH_UTIL_H_
