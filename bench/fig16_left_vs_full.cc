// Figure 16 (§6.4.4): left-complete vs full extension for an n = 5 path,
// under the binary decomposition (0,1,2,3,4,5) and the coarser (0,3,4,5).
#include "bench_util.h"

int main() {
  using namespace asr;
  using namespace asr::bench;

  cost::CostModel model(Fig16Profile());
  cost::OperationMix mix = Fig16Mix();
  Decomposition binary = Decomposition::Binary(5);
  Decomposition coarse = Decomposition::Of({0, 3, 4, 5}, 5).value();

  Title("Figure 16", "operation mix: left-complete vs full, n = 5");
  Header({"P_up", "left/bin", "full/bin", "left/034", "full/034"});
  bool left_wins_low = true;
  for (double p_up : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    Cell(p_up);
    double lb = cost::NormalizedMixCost(model, ExtensionKind::kLeftComplete,
                                        binary, mix, p_up);
    double fb = cost::NormalizedMixCost(model, ExtensionKind::kFull, binary,
                                        mix, p_up);
    double lc = cost::NormalizedMixCost(model, ExtensionKind::kLeftComplete,
                                        coarse, mix, p_up);
    double fc = cost::NormalizedMixCost(model, ExtensionKind::kFull, coarse,
                                        mix, p_up);
    std::printf("%16.4f%16.4f%16.4f%16.4f\n", lb, fb, lc, fc);
    if (p_up <= 0.1) left_wins_low &= lb <= fb * 1.001;
  }
  std::printf("\n");
  Claim(
      "the query mix anchors at t_0, so left-complete is never behind full "
      "at query-dominated operating points",
      left_wins_low);
  return 0;
}
