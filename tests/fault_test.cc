// Crash matrix for the fault-injection / recovery subsystem.
//
// Protocol under test: the object base is updated BEFORE maintenance runs,
// so after any injected crash the base is authoritative and
// AccessSupportRelation::Recover() can re-derive a state that (a) passes the
// full InvariantChecker and (b) answers every supported query identically to
// a fault-free twin — transparently degrading to object-base navigation
// where a partition had to be quarantined, until Repair() re-admits it.
//
// The matrix drives every extension kind over the paper's Company base
// (Fig. 2) through a fixed maintenance script, injecting a fault at the k-th
// matching page I/O for every k until the script completes fault-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "asr/access_support_relation.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "common/macros.h"
#include "gom/object_store.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "paper_example.h"

namespace asr {
namespace {

using storage::FaultInjector;
using storage::FaultKind;
using storage::FaultSpec;
using storage::Page;
using storage::PageId;

// --- Storage-level fault injection -----------------------------------------

TEST(FaultInjectorTest, NthWriteCrashDropsItAndEverythingAfter) {
  storage::Disk disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("victim");
  PageId a = disk.AllocatePage(seg);
  PageId b = disk.AllocatePage(seg);

  Page page;
  page.Write<uint64_t>(0, 11);
  ASSERT_TRUE(disk.WritePage(a, page).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kWriteCrash;
  spec.after_matching = 2;
  injector.Arm(spec);

  page.Write<uint64_t>(0, 22);
  ASSERT_TRUE(disk.WritePage(b, page).ok());  // 1st matching write survives
  page.Write<uint64_t>(0, 33);
  EXPECT_TRUE(disk.WritePage(a, page).IsIOError());  // 2nd fires the crash
  EXPECT_TRUE(injector.crashed());
  page.Write<uint64_t>(0, 44);
  EXPECT_TRUE(disk.WritePage(b, page).IsIOError());  // halted: all writes drop
  EXPECT_EQ(injector.dropped_writes(), 1u);

  disk.RecoverFromCrash();
  EXPECT_FALSE(injector.armed());
  Page out;
  ASSERT_TRUE(disk.ReadPage(a, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 11u);  // crashed write never landed
  ASSERT_TRUE(disk.ReadPage(b, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 22u);  // pre-crash write persisted
  ASSERT_TRUE(disk.VerifySegment(seg).ok());  // lost writes keep checksums
  page.Write<uint64_t>(0, 55);
  ASSERT_TRUE(disk.WritePage(a, page).ok());  // disk serves again
}

TEST(FaultInjectorTest, TornWriteSurfacesAsChecksumMismatchAfterRestart) {
  storage::Disk disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("victim");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(0, 1);
  page.Write<uint64_t>(4000, 1);
  ASSERT_TRUE(disk.WritePage(id, page).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.after_matching = 1;
  injector.Arm(spec);
  page.Write<uint64_t>(0, 2);
  page.Write<uint64_t>(4000, 2);
  EXPECT_TRUE(disk.WritePage(id, page).IsIOError());

  // Fiction zone: the in-flight op still sees its own write (no checksum
  // verification while crashed).
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 2u);

  // Restart: the torn image (half new, half old) becomes visible and the
  // stale checksum catches it.
  disk.RecoverFromCrash();
  EXPECT_TRUE(disk.VerifySegment(seg).IsCorruption());
  EXPECT_TRUE(disk.ReadPage(id, &out).IsCorruption());

  // A full rewrite heals the page.
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  EXPECT_TRUE(disk.VerifySegment(seg).ok());
}

TEST(FaultInjectorTest, SegmentTargetingSparesOtherSegments) {
  storage::Disk disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t tree = disk.CreateSegment("btree:p0:fwd");
  uint32_t obj = disk.CreateSegment("objects");
  PageId pt = disk.AllocatePage(tree);
  PageId po = disk.AllocatePage(obj);

  FaultSpec spec;
  spec.kind = FaultKind::kWriteCrash;
  spec.after_matching = 1;
  spec.segment_prefix = "btree:";
  injector.Arm(spec);

  Page page;
  ASSERT_TRUE(disk.WritePage(po, page).ok());  // non-matching segment
  EXPECT_FALSE(injector.fired());
  EXPECT_TRUE(disk.WritePage(pt, page).IsIOError());
  EXPECT_TRUE(injector.fired());
}

TEST(FaultInjectorTest, ReadFaultIsOneShotAndSurfacesThroughTryPin) {
  storage::Disk disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  storage::BufferManager buffers(&disk, 2);

  FaultSpec spec;
  spec.kind = FaultKind::kReadError;
  spec.after_matching = 1;
  injector.Arm(spec);

  Result<storage::PageGuard> guard = buffers.TryPin(id);
  EXPECT_TRUE(guard.status().IsIOError());
  // One-shot: the retry succeeds (a transient error, not a crash).
  EXPECT_TRUE(buffers.TryPin(id).ok());
  EXPECT_FALSE(injector.crashed());
}

TEST(FaultInjectorTest, FlushAllReportsStickyWriteError) {
  storage::Disk disk;
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  storage::BufferManager buffers(&disk, 4);
  {
    storage::PageGuard guard = buffers.Pin(id);
    guard.page().Write<uint32_t>(0, 7);
    guard.MarkDirty();
  }
  FaultSpec spec;
  spec.kind = FaultKind::kWriteCrash;
  spec.after_matching = 1;
  injector.Arm(spec);

  EXPECT_TRUE(buffers.FlushAll().IsIOError());
  EXPECT_TRUE(buffers.has_write_error());
  // DropAll is the restart point for the pool: frames and the sticky error
  // are discarded together.
  disk.RecoverFromCrash();
  buffers.DropAll();
  EXPECT_FALSE(buffers.has_write_error());
  EXPECT_TRUE(buffers.FlushAll().ok());
}

// --- Crash matrix over the Company base -------------------------------------

// One logical update: mutates the object base, then runs incremental
// maintenance. The base mutation must always succeed (the base is updated
// first and is authoritative); the returned status is the maintenance one,
// which may legitimately be an IOError once a fault fires.
using ScriptOp =
    std::function<Status(asr::testing::CompanyBase*, AccessSupportRelation*)>;

std::vector<ScriptOp> MaintenanceScript() {
  std::vector<ScriptOp> script;
  auto key = [](Oid oid) { return AsrKey::FromOid(oid); };
  // Auto division also manufactures the MB Trak.
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(b->store->AddToSet(b->prodset_auto, key(b->mbtrak)).ok());
    return a->OnEdgeInserted(b->auto_division, 0, key(b->mbtrak));
  });
  // The MB Trak gains a composition (the so-far unused part set, which
  // already contains the Door).
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(b->store->SetRef(b->mbtrak, "Composition", b->parts_unused)
                  .ok());
    return a->OnEdgeInserted(b->mbtrak, 1, key(b->door));
  });
  // The 560 SEC additionally uses the Pepper part.
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(b->store->AddToSet(b->parts_560, key(b->pepper)).ok());
    return a->OnEdgeInserted(b->sec560, 1, key(b->pepper));
  });
  // The Door is renamed (single-valued assignment at the last position).
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    AsrKey old_name = b->Name("Door");
    AsrKey new_name = b->Name("Gate");
    ASR_CHECK(b->store->SetString(b->door, "Name", "Gate").ok());
    return a->OnAttributeAssigned(b->door, 2, old_name, new_name);
  });
  // The Truck division stops manufacturing the 560 SEC.
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(
        b->store->RemoveFromSet(b->prodset_truck, key(b->sec560)).ok());
    return a->OnEdgeRemoved(b->truck_division, 0, key(b->sec560));
  });
  // The 560 SEC drops the Door from its composition.
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(b->store->RemoveFromSet(b->parts_560, key(b->door)).ok());
    return a->OnEdgeRemoved(b->sec560, 1, key(b->door));
  });
  // The Auto division picks up the Sausage.
  script.push_back([=](asr::testing::CompanyBase* b,
                       AccessSupportRelation* a) -> Status {
    ASR_CHECK(b->store->AddToSet(b->prodset_auto, key(b->sausage)).ok());
    return a->OnEdgeInserted(b->auto_division, 0, key(b->sausage));
  });
  return script;
}

struct TwinPair {
  std::unique_ptr<asr::testing::CompanyBase> twin;
  std::unique_ptr<asr::testing::CompanyBase> faulty;
  std::unique_ptr<AccessSupportRelation> twin_asr;
  std::unique_ptr<AccessSupportRelation> faulty_asr;
};

TwinPair MakePair(ExtensionKind kind,
                  const storage::DiskOptions& disk_options =
                      storage::DiskOptions::FromEnv()) {
  TwinPair p;
  p.twin = asr::testing::MakeCompanyBase(disk_options);
  p.faulty = asr::testing::MakeCompanyBase(disk_options);
  p.twin_asr =
      AccessSupportRelation::Build(p.twin->store.get(),
                                   asr::testing::MakeCompanyPath(*p.twin),
                                   kind, Decomposition::Binary(3))
          .value();
  p.faulty_asr =
      AccessSupportRelation::Build(p.faulty->store.get(),
                                   asr::testing::MakeCompanyPath(*p.faulty),
                                   kind, Decomposition::Binary(3))
          .value();
  return p;
}

// Anchor keys for queries at path position `pos`. The twin bases are built
// identically, so the OIDs (and string codes) coincide bit-for-bit and the
// same keys address both stores.
std::vector<AsrKey> AnchorsAt(asr::testing::CompanyBase* b, uint32_t pos) {
  switch (pos) {
    case 0:
      return {b->Key(b->auto_division), b->Key(b->truck_division),
              b->Key(b->space_division)};
    case 1:
      return {b->Key(b->sec560), b->Key(b->mbtrak), b->Key(b->sausage)};
    case 2:
      return {b->Key(b->door), b->Key(b->pepper)};
    default:
      return {b->store->GetAttributeByName(b->door, "Name").value(),
              b->store->GetAttributeByName(b->pepper, "Name").value()};
  }
}

std::vector<AsrKey> Sorted(std::vector<AsrKey> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Every supported Q_{i,j}, both directions, faulty vs twin.
void ExpectSameAnswers(TwinPair* p, const std::string& ctx) {
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j <= 3; ++j) {
      if (!p->twin_asr->SupportsQuery(i, j)) continue;
      for (AsrKey start : AnchorsAt(p->twin.get(), i)) {
        Result<std::vector<AsrKey>> want =
            p->twin_asr->EvalForward(start, i, j);
        Result<std::vector<AsrKey>> got =
            p->faulty_asr->EvalForward(start, i, j);
        ASSERT_TRUE(want.ok()) << ctx << ": " << want.status().ToString();
        ASSERT_TRUE(got.ok()) << ctx << ": " << got.status().ToString();
        EXPECT_EQ(Sorted(*want), Sorted(*got))
            << ctx << ": fwd Q_{" << i << "," << j << "} diverges";
      }
      for (AsrKey target : AnchorsAt(p->twin.get(), j)) {
        Result<std::vector<AsrKey>> want =
            p->twin_asr->EvalBackward(target, i, j);
        Result<std::vector<AsrKey>> got =
            p->faulty_asr->EvalBackward(target, i, j);
        ASSERT_TRUE(want.ok()) << ctx << ": " << want.status().ToString();
        ASSERT_TRUE(got.ok()) << ctx << ": " << got.status().ToString();
        EXPECT_EQ(Sorted(*want), Sorted(*got))
            << ctx << ": bwd Q_{" << i << "," << j << "} diverges";
      }
    }
  }
}

void ExpectInvariantsClean(AccessSupportRelation* asr,
                           const std::string& ctx) {
  check::CheckReport report;
  check::InvariantChecker checker;  // semantic + losslessness on
  checker.CheckAsr(asr, &report);
  EXPECT_TRUE(report.clean()) << ctx << "\n" << report.ToString();
}

// Injects `fault_kind` at the k-th tree-page I/O of the maintenance script,
// recovers, and verifies invariants + answers; sweeps k until the script
// runs fault-free. Returns the number of fault points exercised.
int RunCrashMatrix(ExtensionKind kind, FaultKind fault_kind,
                   const storage::DiskOptions& disk_options =
                       storage::DiskOptions::FromEnv()) {
  constexpr uint64_t kSweepCap = 400;
  int exercised = 0;
  for (uint64_t k = 1; k <= kSweepCap; ++k) {
    TwinPair p = MakePair(kind, disk_options);
    FaultInjector injector;
    p.faulty->disk.set_fault_injector(&injector);
    FaultSpec spec;
    spec.kind = fault_kind;
    spec.after_matching = k;
    spec.segment_prefix = "btree:";
    injector.Arm(spec);

    const std::string ctx = std::string(ExtensionKindName(kind)) + "/" +
                            storage::FaultKindName(fault_kind) +
                            " k=" + std::to_string(k);
    for (ScriptOp& op : MaintenanceScript()) {
      Status twin_st = op(p.twin.get(), p.twin_asr.get());
      EXPECT_TRUE(twin_st.ok()) << ctx << ": " << twin_st.ToString();
      Status faulty_st = op(p.faulty.get(), p.faulty_asr.get());
      if (injector.crashed()) {
        // The crashed op must not claim success.
        EXPECT_FALSE(faulty_st.ok() &&
                     p.faulty_asr->journal().unresolved() == 0)
            << ctx << ": crashed op committed";
        break;  // the machine is down — no further updates reach it
      }
      EXPECT_TRUE(faulty_st.ok()) << ctx << ": " << faulty_st.ToString();
    }
    if (!injector.fired()) {
      // Fewer than k matching I/Os in the whole script: sweep is exhausted.
      injector.Disarm();
      p.faulty->disk.set_fault_injector(nullptr);
      EXPECT_GT(exercised, 0) << "sweep never fired a fault";
      return exercised;
    }
    ++exercised;

    RecoveryReport report;
    Status rst = p.faulty_asr->Recover(&report);
    EXPECT_TRUE(rst.ok()) << ctx << ": " << rst.ToString();
    EXPECT_FALSE(report.clean) << ctx;
    EXPECT_EQ(p.faulty_asr->journal().unresolved(), 0u) << ctx;
    ExpectInvariantsClean(p.faulty_asr.get(), ctx + " post-recover");
    ExpectSameAnswers(&p, ctx + " post-recover");

    // Repair re-admits every quarantined partition.
    Status pst = p.faulty_asr->Repair();
    EXPECT_TRUE(pst.ok()) << ctx << ": " << pst.ToString();
    EXPECT_EQ(p.faulty_asr->quarantined_count(), 0u) << ctx;
    ExpectInvariantsClean(p.faulty_asr.get(), ctx + " post-repair");
    ExpectSameAnswers(&p, ctx + " post-repair");

    p.faulty->disk.set_fault_injector(nullptr);
    if (::testing::Test::HasFailure()) return exercised;
  }
  ADD_FAILURE() << "sweep cap reached; script issues more than " << kSweepCap
                << " tree I/Os";
  return exercised;
}

class CrashMatrixTest : public ::testing::TestWithParam<ExtensionKind> {};

TEST_P(CrashMatrixTest, EveryWriteCrashPointRecovers) {
  int exercised = RunCrashMatrix(GetParam(), FaultKind::kWriteCrash);
  RecordProperty("fault_points", exercised);
}

TEST_P(CrashMatrixTest, EveryTornWritePointRecovers) {
  int exercised = RunCrashMatrix(GetParam(), FaultKind::kTornWrite);
  RecordProperty("fault_points", exercised);
}

INSTANTIATE_TEST_SUITE_P(AllExtensions, CrashMatrixTest,
                         ::testing::Values(ExtensionKind::kFull,
                                           ExtensionKind::kCanonical,
                                           ExtensionKind::kLeftComplete,
                                           ExtensionKind::kRightComplete),
                         [](const auto& info) {
                           return std::string(ExtensionKindName(info.param));
                         });

// The crash/recovery protocol lives above the storage seam, so one matrix
// row runs explicitly on the file backend no matter what
// ASR_STORAGE_BACKEND says (the CI file-backend job flips the rest of the
// suite). Torn writes are the sharpest probe: the staged torn image must
// land in the segment *file* at restart and still be caught by the
// checksum.
TEST(CrashMatrixTest, TornWriteMatrixRecoversOnFileBackend) {
  int exercised = RunCrashMatrix(ExtensionKind::kFull, FaultKind::kTornWrite,
                                 storage::DiskOptions::File());
  RecordProperty("fault_points", exercised);
}

// A crash in the middle of a bulk Rebuild() must be recoverable too.
TEST(CrashMatrixTest, RebuildCrashRecovers) {
  TwinPair p = MakePair(ExtensionKind::kFull);
  ASSERT_TRUE(p.twin_asr->Rebuild().ok());

  FaultInjector injector;
  p.faulty->disk.set_fault_injector(&injector);
  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.after_matching = 3;
  spec.segment_prefix = "btree:";
  injector.Arm(spec);

  Status st = p.faulty_asr->Rebuild();
  EXPECT_TRUE(injector.fired());
  EXPECT_FALSE(st.ok() && p.faulty_asr->journal().unresolved() == 0)
      << "crashed rebuild committed";

  ASSERT_TRUE(p.faulty_asr->Recover().ok());
  ExpectInvariantsClean(p.faulty_asr.get(), "rebuild-crash post-recover");
  ExpectSameAnswers(&p, "rebuild-crash post-recover");
  ASSERT_TRUE(p.faulty_asr->Repair().ok());
  EXPECT_EQ(p.faulty_asr->quarantined_count(), 0u);
  ExpectSameAnswers(&p, "rebuild-crash post-repair");
  p.faulty->disk.set_fault_injector(nullptr);
}

// --- Quarantine fallback: correct answers at navigation cost ----------------

uint64_t NonTreePageReads(storage::Disk* disk) {
  uint64_t total = 0;
  for (uint32_t s = 0; s < disk->segment_count(); ++s) {
    if (disk->SegmentName(s).rfind("btree:", 0) == 0) continue;
    total += disk->segment_stats(s).page_reads;
  }
  return total;
}

TEST(DegradeTest, QuarantinedPartitionAnswersByNavigationAndMetersIt) {
  TwinPair p = MakePair(ExtensionKind::kFull);

  // Scribble zeros over a page of partition 0's forward tree via a normal
  // write: the checksum is valid, so triage catches it structurally.
  uint32_t seg = p.faulty_asr->partition_store(0)->forward->segment();
  Page zeros;
  ASSERT_TRUE(p.faulty->disk.WritePage(PageId{seg, 0}, zeros).ok());
  p.faulty->buffers.DropAll();  // drop any cached copy of the page

  RecoveryReport report;
  ASSERT_TRUE(p.faulty_asr->Recover(&report).ok());
  EXPECT_FALSE(report.clean);
  EXPECT_GE(report.partitions_quarantined, 1u);
  ASSERT_TRUE(p.faulty_asr->degraded());

  // Healthy ASR query: no object-base pages touched.
  p.twin->disk.ResetStats();
  ASSERT_TRUE(
      p.twin_asr->EvalForward(p.twin->Key(p.twin->auto_division), 0, 3)
          .ok());
  uint64_t healthy_nav_reads = NonTreePageReads(&p.twin->disk);
  EXPECT_EQ(healthy_nav_reads, 0u);

  // Degraded query: same answers, object-base pages billed.
  p.faulty->disk.ResetStats();
  ExpectSameAnswers(&p, "degraded");
  uint64_t degraded_nav_reads = NonTreePageReads(&p.faulty->disk);
  EXPECT_GT(degraded_nav_reads, 0u);

  // The obs layer attributes the fallback: degraded hop counter plus a
  // drift report row carrying the extra page reads.
  obs::MetricsRegistry metrics;
  p.faulty_asr->ExportMetrics(&metrics, "asr");
#if ASR_METRICS_ENABLED
  // Hot counters are no-op types under -DASR_METRICS=OFF; the navigation
  // behavior above is asserted in every mode, the attribution only here.
  EXPECT_GT(metrics.counter("asr.hops.degraded"), 0u);
  EXPECT_EQ(metrics.counter("asr.quarantined"), report.partitions_quarantined);
  EXPECT_GT(metrics.counter("asr.recoveries"), 0u);
#endif

  obs::DriftReport drift("fault_degrade", "company");
  drift.AddRow("nav_page_reads", static_cast<double>(healthy_nav_reads),
               static_cast<double>(degraded_nav_reads));
  p.faulty_asr->ExportMetrics(drift.metrics(), "asr");
  EXPECT_TRUE(drift.metrics()->HasCounter("asr.hops.degraded"));

  // Repair rebuilds the partition from the refcounts and re-admits it.
  RecoveryReport repair;
  ASSERT_TRUE(p.faulty_asr->Repair(&repair).ok());
  EXPECT_GE(repair.partitions_repaired, 1u);
  EXPECT_FALSE(p.faulty_asr->degraded());
  p.faulty->disk.ResetStats();
  ExpectSameAnswers(&p, "post-repair");
  EXPECT_EQ(NonTreePageReads(&p.faulty->disk), 0u);
  ExpectInvariantsClean(p.faulty_asr.get(), "post-repair");
}

// Maintenance keeps refcounts current while a partition is quarantined, so
// Repair() after further updates still lands on the right state.
TEST(DegradeTest, MaintenanceDuringQuarantineSurvivesRepair) {
  TwinPair p = MakePair(ExtensionKind::kFull);
  uint32_t seg = p.faulty_asr->partition_store(0)->forward->segment();
  Page zeros;
  ASSERT_TRUE(p.faulty->disk.WritePage(PageId{seg, 0}, zeros).ok());
  p.faulty->buffers.DropAll();
  ASSERT_TRUE(p.faulty_asr->Recover().ok());
  ASSERT_TRUE(p.faulty_asr->degraded());

  for (ScriptOp& op : MaintenanceScript()) {
    ASSERT_TRUE(op(p.twin.get(), p.twin_asr.get()).ok());
    ASSERT_TRUE(op(p.faulty.get(), p.faulty_asr.get()).ok());
  }
  ExpectSameAnswers(&p, "quarantined churn");

  ASSERT_TRUE(p.faulty_asr->Repair().ok());
  EXPECT_FALSE(p.faulty_asr->degraded());
  ExpectInvariantsClean(p.faulty_asr.get(), "churn post-repair");
  ExpectSameAnswers(&p, "churn post-repair");
}

// A clean shutdown/restart (no unresolved journal, no damage) takes the
// fast path: nothing is recomputed.
TEST(RecoveryTest, CleanJournalShortCircuits) {
  TwinPair p = MakePair(ExtensionKind::kFull);
  for (ScriptOp& op : MaintenanceScript()) {
    ASSERT_TRUE(op(p.faulty.get(), p.faulty_asr.get()).ok());
    ASSERT_TRUE(op(p.twin.get(), p.twin_asr.get()).ok());
  }
  ASSERT_TRUE(p.faulty->buffers.FlushAll().ok());
  RecoveryReport report;
  ASSERT_TRUE(p.faulty_asr->Recover(&report).ok());
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.rows_recomputed, 0u);
  EXPECT_EQ(p.faulty_asr->journal().lost(), 0u);
  ExpectSameAnswers(&p, "clean recover");
}

}  // namespace
}  // namespace asr
