// Tests for the sorted bulk-load path of the B+ tree and the (optionally
// parallel) ASR partition build pipeline: bulk-loaded trees must be
// observationally identical to tuple-at-a-time trees, and a threaded build
// must produce the same ASR as a serial one for every decomposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "asr/access_support_relation.h"
#include "btree/btree.h"
#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

using btree::BTree;

std::vector<AsrKey> RandomTuple(Rng* rng, uint32_t width, uint64_t key_range) {
  std::vector<AsrKey> out;
  for (uint32_t c = 0; c < width; ++c) {
    out.push_back(AsrKey::FromOid(Oid::Make(1, rng->Uniform(key_range) + 1)));
  }
  return out;
}

std::vector<std::vector<AsrKey>> Dump(BTree* tree) {
  std::vector<std::vector<AsrKey>> rows;
  EXPECT_TRUE(tree->ScanAll([&](const std::vector<AsrKey>& row) -> Status {
                    rows.push_back(row);
                    return Status::OK();
                  }).ok());
  return rows;
}

// Property: for random multisets of tuples (duplicates included), a
// bulk-loaded tree scans identically to one grown by tuple-at-a-time
// insertion, across widths, key columns, sizes, and fill factors.
TEST(BulkLoadTest, ScanIdenticalToTupleAtATime) {
  struct Case {
    uint32_t width;
    uint32_t key_column;
    size_t tuples;
    uint64_t key_range;  // small range => many duplicate keys
    double fill_factor;
  };
  const Case cases[] = {
      {1, 0, 50, 30, 1.0},     {2, 0, 500, 100, 1.0},
      {2, 1, 500, 100, 0.7},   {3, 0, 3000, 400, 1.0},
      {3, 2, 3000, 400, 0.5},  {5, 0, 2000, 250, 0.9},
  };
  Rng rng(7);
  for (const Case& c : cases) {
    std::vector<std::vector<AsrKey>> tuples;
    for (size_t i = 0; i < c.tuples; ++i) {
      tuples.push_back(RandomTuple(&rng, c.width, c.key_range));
    }
    // Some exact duplicates: set semantics must collapse them in both paths.
    for (size_t i = 0; i < c.tuples / 10; ++i) {
      tuples.push_back(tuples[rng.Uniform(c.tuples)]);
    }

    storage::Disk disk;
    storage::BufferManager buffers(&disk, 64);
    BTree inserted(&buffers, "ins", c.width, c.key_column);
    for (const auto& t : tuples) inserted.Insert(t);
    BTree bulk(&buffers, "blk", c.width, c.key_column);
    ASSERT_TRUE(bulk.BulkLoad(tuples, c.fill_factor).ok());

    EXPECT_TRUE(bulk.CheckIntegrity().ok());
    EXPECT_EQ(bulk.tuple_count(), inserted.tuple_count());
    EXPECT_EQ(Dump(&bulk), Dump(&inserted))
        << "width=" << c.width << " key_column=" << c.key_column
        << " fill_factor=" << c.fill_factor;

    // Point lookups agree on every key in range (probes misses too).
    for (uint64_t k = 1; k <= c.key_range + 1; ++k) {
      AsrKey key = AsrKey::FromOid(Oid::Make(1, k));
      std::vector<std::vector<AsrKey>> a, b;
      bulk.Lookup(key, &a);
      inserted.Lookup(key, &b);
      EXPECT_EQ(a, b) << "key " << k;
    }
  }
}

TEST(BulkLoadTest, RequiresEmptyTreeAndValidFillFactor) {
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 16);
  std::vector<std::vector<AsrKey>> one{{AsrKey::FromOid(Oid::Make(1, 1))}};

  BTree tree(&buffers, "t", 1, 0);
  EXPECT_FALSE(tree.BulkLoad(one, 0.0).ok());
  EXPECT_FALSE(tree.BulkLoad(one, 1.5).ok());
  EXPECT_TRUE(tree.Insert({AsrKey::FromOid(Oid::Make(1, 2))}));
  EXPECT_FALSE(tree.BulkLoad(one).ok());  // non-empty tree

  BTree empty(&buffers, "e", 1, 0);
  EXPECT_TRUE(empty.BulkLoad({}).ok());  // empty input is fine
  EXPECT_EQ(empty.tuple_count(), 0u);
  EXPECT_TRUE(empty.CheckIntegrity().ok());
}

TEST(BulkLoadTest, FillFactorControlsLeafCount) {
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 64);
  std::vector<std::vector<AsrKey>> tuples;
  for (uint64_t i = 1; i <= 4000; ++i) {
    tuples.push_back({AsrKey::FromOid(Oid::Make(1, i)),
                      AsrKey::FromOid(Oid::Make(2, i))});
  }
  BTree packed(&buffers, "p", 2, 0);
  ASSERT_TRUE(packed.BulkLoad(tuples, 1.0).ok());
  BTree half(&buffers, "h", 2, 0);
  ASSERT_TRUE(half.BulkLoad(tuples, 0.5).ok());

  EXPECT_TRUE(half.CheckIntegrity().ok());
  EXPECT_GE(half.leaf_page_count(), packed.leaf_page_count() * 3 / 2);
  EXPECT_EQ(Dump(&half), Dump(&packed));
}

// The point of the exercise: bulk loading writes each page once, so it must
// cost strictly fewer page writes than the same content via splits, and
// produce at most as many pages.
TEST(BulkLoadTest, FewerPageWritesThanInsert) {
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);  // strict metering
  Rng rng(13);
  std::vector<std::vector<AsrKey>> tuples;
  for (size_t i = 0; i < 5000; ++i) {
    tuples.push_back(RandomTuple(&rng, 3, 2000));
  }

  BTree inserted(&buffers, "ins", 3, 0);
  storage::AccessStats insert_cost = workload::Meter(&disk, [&] {
    for (const auto& t : tuples) inserted.Insert(t);
  });
  BTree bulk(&buffers, "blk", 3, 0);
  storage::AccessStats bulk_cost = workload::Meter(&disk, [&] {
    ASSERT_TRUE(bulk.BulkLoad(tuples).ok());
  });

  EXPECT_LT(bulk_cost.page_writes, insert_cost.page_writes);
  EXPECT_LE(bulk.leaf_page_count() + bulk.inner_page_count(),
            inserted.leaf_page_count() + inserted.inner_page_count());
  EXPECT_EQ(Dump(&bulk), Dump(&inserted));
}

cost::ApplicationProfile SmallProfile() {
  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {80, 150, 200, 120};
  profile.d = {70, 120, 160};
  profile.fan = {2, 2, 2};
  profile.size = {120, 120, 120, 120};
  return profile;
}

// A threaded build must produce, for every decomposition of the path, the
// exact partition contents (and query answers) of a serial tuple-at-a-time
// build. Exercises kFull (NULL-padded rows included).
TEST(ParallelBuildTest, AllDecompositionsMatchSerialAcrossThreadCounts) {
  auto base = workload::SyntheticBase::Generate(SmallProfile(), {11, 64});
  ASSERT_TRUE(base.ok());
  const uint32_t n = (*base)->path().n();

  for (const Decomposition& dec : Decomposition::EnumerateAll(n)) {
    AsrOptions serial_options;
    serial_options.bulk_load = false;  // reference: tuple-at-a-time
    auto reference = AccessSupportRelation::Build(
        (*base)->store(), (*base)->path(), ExtensionKind::kFull, dec,
        serial_options);
    ASSERT_TRUE(reference.ok()) << dec.ToString();

    for (uint32_t threads : {1u, 4u}) {
      AsrOptions options;
      options.build_threads = threads;
      auto built = AccessSupportRelation::Build(
          (*base)->store(), (*base)->path(), ExtensionKind::kFull, dec,
          options);
      ASSERT_TRUE(built.ok()) << dec.ToString() << " threads=" << threads;
      ASSERT_EQ((*built)->partition_count(), (*reference)->partition_count());
      for (size_t p = 0; p < (*built)->partition_count(); ++p) {
        EXPECT_TRUE((*built)->DumpPartition(p).value().EqualsAsSet(
            (*reference)->DumpPartition(p).value()))
            << dec.ToString() << " partition " << p << " threads=" << threads;
        EXPECT_TRUE(
            const_cast<btree::BTree&>((*built)->forward_tree(p))
                .CheckIntegrity().ok());
        EXPECT_TRUE(
            const_cast<btree::BTree&>((*built)->backward_tree(p))
                .CheckIntegrity().ok());
      }

      for (Oid anchor : (*base)->objects_at(0)) {
        auto got = (*built)->EvalForward(AsrKey::FromOid(anchor), 0, n);
        auto want = (*reference)->EvalForward(AsrKey::FromOid(anchor), 0, n);
        ASSERT_TRUE(got.ok() && want.ok());
        std::sort(got->begin(), got->end());
        std::sort(want->begin(), want->end());
        EXPECT_EQ(*got, *want) << dec.ToString() << " threads=" << threads;
      }
    }
  }
}

// Rebuild over the bulk path must keep partition-store identity (sharing
// contract) and reproduce the same contents.
TEST(ParallelBuildTest, BulkRebuildPreservesStoreIdentityAndContents) {
  auto base = workload::SyntheticBase::Generate(SmallProfile(), {17, 64});
  ASSERT_TRUE(base.ok());
  const uint32_t n = (*base)->path().n();
  Decomposition dec = Decomposition::EnumerateAll(n).back();

  AsrOptions options;
  options.build_threads = 4;
  auto asr = AccessSupportRelation::Build((*base)->store(), (*base)->path(),
                                          ExtensionKind::kFull, dec, options);
  ASSERT_TRUE(asr.ok());

  std::vector<rel::Relation> before;
  std::vector<std::shared_ptr<PartitionStore>> stores;
  for (size_t p = 0; p < (*asr)->partition_count(); ++p) {
    before.push_back((*asr)->DumpPartition(p).value());
    stores.push_back((*asr)->partition_store(p));
  }

  ASSERT_TRUE((*asr)->Rebuild().ok());
  for (size_t p = 0; p < (*asr)->partition_count(); ++p) {
    EXPECT_EQ((*asr)->partition_store(p).get(), stores[p].get())
        << "partition store identity lost by Rebuild";
    EXPECT_TRUE((*asr)->DumpPartition(p).value().EqualsAsSet(before[p]))
        << "partition " << p;
  }
}

}  // namespace
}  // namespace asr
