// Kill-based process-crash harness: the durability contract proven against
// real SIGKILL, not simulated faults.
//
// Per iteration, a forked child opens the durable base snapshot on the file
// backend (group-flush durability), attaches a WAL, builds an ASR, and runs
// a deterministic edge-toggle maintenance loop — logging each logical op as
// an 'O' intent record, running the journaled maintenance (whose own
// 'I'/'C' records share the log), and sealing the op with a 'K' commit
// record + fdatasync, checkpointing a durable snapshot every few ops. The
// parent SIGKILLs the child at a randomized progress point, then proves the
// contract from the surviving files alone:
//
//   1. the checkpoint snapshot, if present, opens cleanly (atomic rename),
//   2. the WAL replays with at worst a torn tail (never a corrupt suffix),
//   3. checkpoint + committed-op replay + journal replay + Recover() yields
//      an ASR that passes the full InvariantChecker and answers every
//      supported query exactly like a fault-free twin built from the same
//      checkpoint and committed ops.
//
// The interleaved-writer mode (InterleavedWritersRecoverToTwinEquality) runs
// the same contract with TWO concurrent transactional writers in the child:
// each maintains its own anchored ASR over a disjoint subgraph, journals to
// its own WAL stream of the shared log, and commits page transactions
// through the MVCC layer. SIGKILL lands with the writers in arbitrary —
// usually different — commit phases; recovery must resolve both journals
// independently and leave both ASRs twin-equal.
//
// ASR_KILL_POINTS picks the number of randomized kill points (CI runs 50).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "asr/access_support_relation.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "common/macros.h"
#include "gom/database.h"
#include "obs/events.h"
#include "storage/backend.h"
#include "storage/wal.h"

namespace asr {
namespace {

using storage::DiskOptions;
using storage::DurabilityMode;
using storage::WriteAheadLog;

// --- The company base inside a Database -----------------------------------

struct CompanyDb {
  TypeId division, prodset, product, basepartset, basepart, meta;
  Oid auto_div, truck_div, space_div;
  Oid prodset_auto, prodset_truck;
  Oid sec560, mbtrak, sausage;
  Oid parts_560, parts_sausage;
  Oid door, pepper;
  Oid watermark;  // Meta object whose Name holds the applied-op count
};

CompanyDb BuildCompany(gom::Database* db) {
  gom::Schema& s = *db->schema();
  gom::ObjectStore& st = *db->store();
  CompanyDb c;
  c.basepart = s.DefineTupleType(
                    "BasePart", {},
                    {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                     {"Price", gom::Schema::kDecimalType, kInvalidTypeId}})
                   .value();
  c.basepartset = s.DefineSetType("BasePartSET", c.basepart).value();
  c.product = s.DefineTupleType(
                   "Product", {},
                   {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                    {"Composition", c.basepartset, kInvalidTypeId}})
                  .value();
  c.prodset = s.DefineSetType("ProdSET", c.product).value();
  c.division = s.DefineTupleType(
                    "Division", {},
                    {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                     {"Manufactures", c.prodset, kInvalidTypeId}})
                   .value();
  c.meta = s.DefineTupleType(
                "Meta", {},
                {{"Name", gom::Schema::kStringType, kInvalidTypeId}})
               .value();

  auto obj = [&](TypeId t) { return st.CreateObject(t).value(); };
  auto set = [&](TypeId t) { return st.CreateSet(t).value(); };
  auto key = [](Oid o) { return AsrKey::FromOid(o); };

  c.auto_div = obj(c.division);
  c.truck_div = obj(c.division);
  c.space_div = obj(c.division);
  c.prodset_auto = set(c.prodset);
  c.prodset_truck = set(c.prodset);
  c.sec560 = obj(c.product);
  c.mbtrak = obj(c.product);
  c.sausage = obj(c.product);
  c.parts_560 = set(c.basepartset);
  c.parts_sausage = set(c.basepartset);
  c.door = obj(c.basepart);
  c.pepper = obj(c.basepart);
  c.watermark = obj(c.meta);

  ASR_CHECK(st.SetString(c.auto_div, "Name", "Auto").ok());
  ASR_CHECK(st.SetString(c.truck_div, "Name", "Truck").ok());
  ASR_CHECK(st.SetString(c.space_div, "Name", "Space").ok());
  ASR_CHECK(st.SetRef(c.auto_div, "Manufactures", c.prodset_auto).ok());
  ASR_CHECK(st.SetRef(c.truck_div, "Manufactures", c.prodset_truck).ok());
  ASR_CHECK(st.AddToSet(c.prodset_auto, key(c.sec560)).ok());
  ASR_CHECK(st.AddToSet(c.prodset_truck, key(c.sec560)).ok());
  ASR_CHECK(st.AddToSet(c.prodset_truck, key(c.mbtrak)).ok());
  ASR_CHECK(st.SetString(c.sec560, "Name", "560 SEC").ok());
  ASR_CHECK(st.SetString(c.mbtrak, "Name", "MB Trak").ok());
  ASR_CHECK(st.SetString(c.sausage, "Name", "Sausage").ok());
  ASR_CHECK(st.SetRef(c.sec560, "Composition", c.parts_560).ok());
  ASR_CHECK(st.SetRef(c.sausage, "Composition", c.parts_sausage).ok());
  ASR_CHECK(st.AddToSet(c.parts_560, key(c.door)).ok());
  ASR_CHECK(st.AddToSet(c.parts_sausage, key(c.pepper)).ok());
  ASR_CHECK(st.SetString(c.door, "Name", "Door").ok());
  ASR_CHECK(st.SetDecimal(c.door, "Price", 1205.50).ok());
  ASR_CHECK(st.SetString(c.pepper, "Name", "Pepper").ok());
  ASR_CHECK(st.SetDecimal(c.pepper, "Price", 0.12).ok());
  ASR_CHECK(st.SetString(c.watermark, "Name", "0").ok());
  return c;
}

PathExpression CompanyPath(gom::Database* db, const CompanyDb& c) {
  return PathExpression::Parse(*db->schema(), c.division,
                               "Manufactures.Composition.Name")
      .value();
}

std::unique_ptr<AccessSupportRelation> BuildAsr(gom::Database* db,
                                                const CompanyDb& c) {
  return AccessSupportRelation::Build(db->store(), CompanyPath(db, c),
                                      ExtensionKind::kFull,
                                      Decomposition::Binary(3))
      .value();
}

// --- The deterministic edge-toggle schedule -------------------------------

// Each op toggles one of these edges: entry = op % 4, direction = whatever
// flips the current membership. The direction is recorded in the op's WAL
// intent so replay never has to guess.
struct EdgeTarget {
  Oid set;   // the base collection the edge lives in
  Oid u;     // maintenance: source object
  uint32_t p;  // maintenance: path position
  Oid w;     // maintenance: target
};

std::vector<EdgeTarget> EdgeTargets(const CompanyDb& c) {
  return {
      {c.prodset_auto, c.auto_div, 0, c.sausage},
      {c.prodset_truck, c.truck_div, 0, c.sausage},
      {c.parts_560, c.sec560, 1, c.pepper},
      {c.prodset_auto, c.auto_div, 0, c.mbtrak},
  };
}

// Applies logical op `op_idx` (direction `insert`) to base + ASR. The base
// mutation must succeed; the returned status is the maintenance one.
Status ApplyOp(gom::Database* db, AccessSupportRelation* asr,
               const CompanyDb& c, uint32_t op_idx, bool insert) {
  const EdgeTarget t = EdgeTargets(c)[op_idx % 4];
  const AsrKey w = AsrKey::FromOid(t.w);
  if (insert) {
    ASR_CHECK(db->store()->AddToSet(t.set, w).ok());
    return asr->OnEdgeInserted(t.u, t.p, w);
  }
  ASR_CHECK(db->store()->RemoveFromSet(t.set, w).ok());
  return asr->OnEdgeRemoved(t.u, t.p, w);
}

// --- Harness WAL records ---------------------------------------------------
//
// The harness shares the database WAL with the maintenance journal. Its own
// record types (routed back by MaintenanceJournal::ApplyWalRecord):
//   'O' [u32 op_idx][u8 insert]   logical-op intent, appended unsynced
//   'K' [u32 op_idx]              logical-op commit, appended + fdatasync

std::string OpIntentRecord(uint32_t op_idx, bool insert) {
  std::string rec(1, 'O');
  for (int i = 0; i < 4; ++i) {
    rec.push_back(static_cast<char>((op_idx >> (8 * i)) & 0xFF));
  }
  rec.push_back(insert ? 1 : 0);
  return rec;
}

std::string OpCommitRecord(uint32_t op_idx) {
  std::string rec(1, 'K');
  for (int i = 0; i < 4; ++i) {
    rec.push_back(static_cast<char>((op_idx >> (8 * i)) & 0xFF));
  }
  return rec;
}

uint32_t DecodeOpIdx(const std::string& rec) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(rec[1 + i]))
         << (8 * i);
  }
  return v;
}

uint32_t ReadWatermark(gom::Database* db, const CompanyDb& c) {
  return static_cast<uint32_t>(
      std::stoul(db->store()->GetString(c.watermark, "Name").value()));
}

// --- Child: live maintenance until SIGKILL --------------------------------

constexpr uint32_t kMaxChildOps = 400;
constexpr uint32_t kCheckpointEvery = 16;

// Runs in the forked child; must never return into gtest. Exit codes mark
// unexpected failures (0 is unreachable in practice — the parent kills us).
[[noreturn]] void ChildRun(const std::string& snapshot,
                           const std::string& iter_dir, const CompanyDb& c,
                           int progress_fd) {
  DiskOptions options = DiskOptions::File(iter_dir, /*mmap=*/false);
  options.durability = DurabilityMode::kGroup;
  options.flush_batch = 4;
  auto db_or = gom::Database::Open(snapshot, /*buffer_capacity=*/4, options);
  if (!db_or.ok()) _exit(10);
  std::unique_ptr<gom::Database> db = std::move(*db_or);
  if (!db->AttachWal(iter_dir + "/journal.wal").ok()) _exit(11);
  auto asr_or = AccessSupportRelation::Build(db->store(), CompanyPath(db.get(), c),
                                             ExtensionKind::kFull,
                                             Decomposition::Binary(3));
  if (!asr_or.ok()) _exit(12);
  std::unique_ptr<AccessSupportRelation> asr = std::move(*asr_or);
  // From here on, every journal transition also lands in the WAL.
  asr->mutable_journal()->AttachWal(db->wal());

  for (uint32_t op = 0; op < kMaxChildOps; ++op) {
    const EdgeTarget t = EdgeTargets(c)[op % 4];
    Result<bool> present =
        db->store()->SetContains(t.set, AsrKey::FromOid(t.w));
    if (!present.ok()) _exit(13);
    const bool insert = !*present;
    if (!db->wal()->Append(OpIntentRecord(op, insert)).ok()) _exit(14);
    if (!ApplyOp(db.get(), asr.get(), c, op, insert).ok()) _exit(15);
    if (!db->wal()->Append(OpCommitRecord(op)).ok()) _exit(16);
    if (!db->wal()->Sync().ok()) _exit(17);
    // The op is durable — only now is the parent told it happened.
    if (::write(progress_fd, "x", 1) != 1) _exit(18);
    if ((op + 1) % kCheckpointEvery == 0) {
      if (!db->store()
               ->SetString(c.watermark, "Name", std::to_string(op + 1))
               .ok()) {
        _exit(19);
      }
      if (!db->SaveDurable(iter_dir + "/ckpt.asrdb").ok()) _exit(20);
    }
  }
  _exit(0);
}

// --- Parent: reopen, recover, verify --------------------------------------

std::vector<AsrKey> Sorted(std::vector<AsrKey> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<AsrKey> AnchorsAt(gom::Database* db, const CompanyDb& c,
                              uint32_t pos) {
  auto key = [](Oid o) { return AsrKey::FromOid(o); };
  switch (pos) {
    case 0:
      return {key(c.auto_div), key(c.truck_div), key(c.space_div)};
    case 1:
      return {key(c.sec560), key(c.mbtrak), key(c.sausage)};
    case 2:
      return {key(c.door), key(c.pepper)};
    default:
      return {db->store()->GetAttributeByName(c.door, "Name").value(),
              db->store()->GetAttributeByName(c.pepper, "Name").value()};
  }
}

void ExpectSameAnswers(gom::Database* want_db, AccessSupportRelation* want,
                       AccessSupportRelation* got, const CompanyDb& c,
                       const std::string& ctx) {
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j <= 3; ++j) {
      if (!want->SupportsQuery(i, j)) continue;
      for (AsrKey start : AnchorsAt(want_db, c, i)) {
        Result<std::vector<AsrKey>> w = want->EvalForward(start, i, j);
        Result<std::vector<AsrKey>> g = got->EvalForward(start, i, j);
        ASSERT_TRUE(w.ok()) << ctx << ": " << w.status().ToString();
        ASSERT_TRUE(g.ok()) << ctx << ": " << g.status().ToString();
        EXPECT_EQ(Sorted(*w), Sorted(*g))
            << ctx << ": fwd Q_{" << i << "," << j << "} diverges";
      }
      for (AsrKey target : AnchorsAt(want_db, c, j)) {
        Result<std::vector<AsrKey>> w = want->EvalBackward(target, i, j);
        Result<std::vector<AsrKey>> g = got->EvalBackward(target, i, j);
        ASSERT_TRUE(w.ok()) << ctx << ": " << w.status().ToString();
        ASSERT_TRUE(g.ok()) << ctx << ": " << g.status().ToString();
        EXPECT_EQ(Sorted(*w), Sorted(*g))
            << ctx << ": bwd Q_{" << i << "," << j << "} diverges";
      }
    }
  }
}

struct IterationOutcome {
  uint32_t ops_committed = 0;   // 'K' records found in the WAL
  uint32_t ops_replayed = 0;    // committed ops past the checkpoint
  bool used_checkpoint = false;
  bool needed_recovery = false;  // journal came back with unresolved intent
};

void VerifyAfterKill(const std::string& snapshot, const std::string& iter_dir,
                     const CompanyDb& c, const std::string& ctx,
                     IterationOutcome* outcome) {
  // (1) The checkpoint, if published, must open cleanly: SaveDurable's
  // atomic rename means there is no state in which a torn checkpoint exists
  // under the final name.
  std::string base = snapshot;
  const std::string ckpt = iter_dir + "/ckpt.asrdb";
  if (std::filesystem::exists(ckpt)) {
    ASSERT_TRUE(gom::Database::Open(ckpt).ok())
        << ctx << ": published checkpoint does not open";
    base = ckpt;
    outcome->used_checkpoint = true;
  }

  // (2) The WAL replays; SIGKILL can only tear the tail, never corrupt the
  // interior (each frame is one pwrite, appends are sequential).
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> records;
  {
    auto wal = WriteAheadLog::Open(
        iter_dir + "/journal.wal",
        [&](std::string_view payload) { records.emplace_back(payload); },
        &stats);
    ASSERT_TRUE(wal.ok()) << ctx << ": " << wal.status().ToString();
  }
  EXPECT_FALSE(stats.corrupt_suffix) << ctx;

  // (3) Reconstruct: checkpoint pages, then journal records, then committed
  // logical ops, then Recover() if anything is unresolved.
  auto open_and_replay = [&](bool with_journal,
                             std::unique_ptr<gom::Database>* db_out,
                             std::unique_ptr<AccessSupportRelation>* asr_out) {
    auto db = gom::Database::Open(base).value();
    auto asr = BuildAsr(db.get(), c);
    std::vector<std::pair<uint32_t, bool>> intents;  // op_idx -> direction
    std::vector<uint32_t> commits;
    for (const std::string& rec : records) {
      if (with_journal && asr->mutable_journal()->ApplyWalRecord(rec)) {
        continue;
      }
      if (rec.size() == 6 && rec[0] == 'O') {
        intents.emplace_back(DecodeOpIdx(rec), rec[5] != 0);
      } else if (rec.size() == 5 && rec[0] == 'K') {
        commits.push_back(DecodeOpIdx(rec));
      }
    }
    const uint32_t watermark = ReadWatermark(db.get(), c);
    uint32_t replayed = 0;
    for (const auto& [op_idx, insert] : intents) {
      if (std::find(commits.begin(), commits.end(), op_idx) == commits.end()) {
        continue;  // intent without commit: the op never happened
      }
      if (op_idx < watermark) continue;  // already inside the checkpoint
      Status st = ApplyOp(db.get(), asr.get(), c, op_idx, insert);
      ASSERT_TRUE(st.ok()) << ctx << ": replay op " << op_idx << ": "
                           << st.ToString();
      ++replayed;
    }
    // The replayed base state is re-established durable state, not
    // crash-lost cache: flush it down so Recover()'s DropAll (which models
    // losing RAM) cannot take the replayed mutations with it.
    ASSERT_TRUE(db->buffers()->FlushAll().ok()) << ctx;
    outcome->ops_committed = static_cast<uint32_t>(commits.size());
    if (with_journal) outcome->ops_replayed = replayed;
    *db_out = std::move(db);
    *asr_out = std::move(asr);
  };

  std::unique_ptr<gom::Database> rec_db, twin_db;
  std::unique_ptr<AccessSupportRelation> rec_asr, twin_asr;
  open_and_replay(/*with_journal=*/true, &rec_db, &rec_asr);
  if (::testing::Test::HasFatalFailure()) return;

  if (rec_asr->journal().unresolved() > 0) {
    outcome->needed_recovery = true;
#if ASR_METRICS_ENABLED
    const uint64_t events_before = obs::EventLog::Instance().total_recorded();
#endif
    RecoveryReport report;
    Status st = rec_asr->Recover(&report);
    ASSERT_TRUE(st.ok()) << ctx << ": " << st.ToString();
    EXPECT_EQ(rec_asr->journal().unresolved(), 0u) << ctx;
#if ASR_METRICS_ENABLED
    // The restart must leave an audit trail: recovery start and finish land
    // in the operational event journal.
    bool saw_start = false, saw_finish = false;
    for (const obs::Event& e : obs::EventLog::Instance().Snapshot()) {
      if (e.seq <= events_before) continue;
      saw_start |= e.kind == obs::EventKind::kRecoveryStart;
      saw_finish |= e.kind == obs::EventKind::kRecoveryFinish;
    }
    EXPECT_TRUE(saw_start && saw_finish)
        << ctx << ": Recover() left no recovery_start/recovery_finish events";
#endif
  }

  // (4) Post-recovery invariants: the full checker, semantic checks on.
  check::CheckReport check_report;
  check::InvariantChecker checker;
  checker.CheckAsr(rec_asr.get(), &check_report);
  EXPECT_TRUE(check_report.clean()) << ctx << "\n" << check_report.ToString();

  // (5) Answer-equality against the fault-free twin: same checkpoint, same
  // committed ops, no crash machinery.
  open_and_replay(/*with_journal=*/false, &twin_db, &twin_asr);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectSameAnswers(twin_db.get(), twin_asr.get(), rec_asr.get(), c, ctx);
}

TEST(KillHarnessTest, RandomizedSigkillPointsRecoverToTwinEquality) {
  const char* env = std::getenv("ASR_KILL_POINTS");
  const int iterations = env != nullptr ? std::atoi(env) : 10;
  ASSERT_GT(iterations, 0);

  const std::string workdir =
      ::testing::TempDir() + "/kill_harness." + std::to_string(::getpid());
  std::filesystem::remove_all(workdir);
  ASSERT_TRUE(std::filesystem::create_directories(workdir));
  const std::string snapshot = workdir + "/base.asrdb";

  CompanyDb c;
  {
    auto db = gom::Database::Create();
    c = BuildCompany(db.get());
    ASSERT_TRUE(db->SaveDurable(snapshot).ok());
  }

  uint32_t kills = 0, recoveries = 0, checkpoints_used = 0;
  uint64_t total_committed = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    const std::string ctx = "iter " + std::to_string(iter);
    const std::string iter_dir = workdir + "/iter_" + std::to_string(iter);
    ASSERT_TRUE(std::filesystem::create_directories(iter_dir));
    // Deterministic per-iteration randomization: the kill lands after a
    // random number of committed ops, plus a microsecond jitter so it can
    // strike mid-append, mid-maintenance, or mid-checkpoint.
    std::mt19937 rng(0xC0FFEEu + static_cast<uint32_t>(iter));
    const uint32_t target_ops = 1 + rng() % 48;
    const useconds_t jitter_us = rng() % 2000;

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      ChildRun(snapshot, iter_dir, c, pipefd[1]);  // never returns
    }
    ::close(pipefd[1]);
    uint32_t progressed = 0;
    char byte;
    while (progressed < target_ops) {
      ssize_t n = ::read(pipefd[0], &byte, 1);
      if (n == 1) {
        ++progressed;
      } else {
        break;  // EOF: the child died on its own
      }
    }
    if (progressed < target_ops) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      ::close(pipefd[0]);
      FAIL() << ctx << ": child exited early (status " << status
             << ") after " << progressed << " ops";
    }
    ::usleep(jitter_us);
    ASSERT_EQ(::kill(pid, SIGKILL), 0) << ctx;
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << ctx;
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << ctx << ": child was not killed (status " << status << ")";
    ::close(pipefd[0]);
    ++kills;

    IterationOutcome outcome;
    VerifyAfterKill(snapshot, iter_dir, c, ctx, &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    // Durability floor: every op the parent saw progress for was sealed by
    // a synced 'K' record, so it must still be visible after the kill.
    EXPECT_GE(outcome.ops_committed, target_ops) << ctx;
    total_committed += outcome.ops_committed;
    recoveries += outcome.needed_recovery ? 1 : 0;
    checkpoints_used += outcome.used_checkpoint ? 1 : 0;

    std::filesystem::remove_all(iter_dir);
  }

  EXPECT_EQ(kills, static_cast<uint32_t>(iterations));
  EXPECT_GT(total_committed, 0u);
  ::testing::Test::RecordProperty("kills", static_cast<int>(kills));
  ::testing::Test::RecordProperty("recoveries", static_cast<int>(recoveries));
  ::testing::Test::RecordProperty("checkpoints_used",
                                  static_cast<int>(checkpoints_used));
  std::filesystem::remove_all(workdir);
}

// === Interleaved two-writer mode ===========================================

// Each writer owns a private chain hanging off the shared schema — fully
// disjoint object subgraphs, so the two anchored canonical ASRs never cover
// each other's edges and the §5.4 maintain-all contract stays satisfied
// per writer.
struct WriterChain {
  Oid division, prodset;
  Oid product_a, partset_a, part_a, part_b;  // part_b toggles at p=1
  Oid product_b, partset_b, part_c;          // product_b toggles at p=0
  Oid anchor;                                // singleton {division}
};

struct InterleavedDb {
  CompanyDb c;
  WriterChain chains[2];
};

InterleavedDb BuildInterleavedCompany(gom::Database* db) {
  InterleavedDb idb;
  idb.c = BuildCompany(db);
  gom::Schema& s = *db->schema();
  gom::ObjectStore& st = *db->store();
  TypeId division_set =
      s.DefineSetType("DivisionSET", idb.c.division).value();
  for (int k = 0; k < 2; ++k) {
    WriterChain& w = idb.chains[k];
    const std::string tag = std::to_string(k);
    w.division = st.CreateObject(idb.c.division).value();
    w.prodset = st.CreateSet(idb.c.prodset).value();
    w.product_a = st.CreateObject(idb.c.product).value();
    w.partset_a = st.CreateSet(idb.c.basepartset).value();
    w.part_a = st.CreateObject(idb.c.basepart).value();
    w.part_b = st.CreateObject(idb.c.basepart).value();
    w.product_b = st.CreateObject(idb.c.product).value();
    w.partset_b = st.CreateSet(idb.c.basepartset).value();
    w.part_c = st.CreateObject(idb.c.basepart).value();
    ASR_CHECK(st.SetString(w.division, "Name", "WDiv" + tag).ok());
    ASR_CHECK(st.SetRef(w.division, "Manufactures", w.prodset).ok());
    ASR_CHECK(st.AddToSet(w.prodset, AsrKey::FromOid(w.product_a)).ok());
    ASR_CHECK(st.SetString(w.product_a, "Name", "WProdA" + tag).ok());
    ASR_CHECK(st.SetRef(w.product_a, "Composition", w.partset_a).ok());
    ASR_CHECK(st.AddToSet(w.partset_a, AsrKey::FromOid(w.part_a)).ok());
    ASR_CHECK(st.SetString(w.part_a, "Name", "WPartA" + tag).ok());
    ASR_CHECK(st.SetString(w.part_b, "Name", "WPartB" + tag).ok());
    ASR_CHECK(st.SetString(w.product_b, "Name", "WProdB" + tag).ok());
    ASR_CHECK(st.SetRef(w.product_b, "Composition", w.partset_b).ok());
    ASR_CHECK(st.AddToSet(w.partset_b, AsrKey::FromOid(w.part_c)).ok());
    ASR_CHECK(st.SetString(w.part_c, "Name", "WPartC" + tag).ok());
    w.anchor = st.CreateSet(division_set).value();
    ASR_CHECK(st.AddToSet(w.anchor, AsrKey::FromOid(w.division)).ok());
  }
  return idb;
}

// Writer k's two toggled edges: op % 2 picks the p=1 edge (part_b into
// product_a's composition) or the p=0 edge (product_b into the prodset).
EdgeTarget WriterEdge(const WriterChain& w, uint32_t op_idx) {
  if (op_idx % 2 == 0) {
    return {w.partset_a, w.product_a, 1, w.part_b};
  }
  return {w.prodset, w.division, 0, w.product_b};
}

Status ApplyWriterOp(gom::Database* db, AccessSupportRelation* asr,
                     const WriterChain& w, uint32_t op_idx, bool insert) {
  const EdgeTarget t = WriterEdge(w, op_idx);
  const AsrKey key = AsrKey::FromOid(t.w);
  if (insert) {
    ASR_CHECK(db->store()->AddToSet(t.set, key).ok());
    return asr->OnEdgeInserted(t.u, t.p, key);
  }
  ASR_CHECK(db->store()->RemoveFromSet(t.set, key).ok());
  return asr->OnEdgeRemoved(t.u, t.p, key);
}

// Interleaved-mode harness records carry a trailing writer byte:
//   'O' [u32 op_idx][u8 insert][u8 writer]   intent      (7 bytes)
//   'K' [u32 op_idx][u8 writer]              commit+sync (6 bytes)
// Sizes are disjoint from the single-writer records (6/5), so a replayer
// can tell the modes apart from the bytes alone.

std::string WriterOpIntent(uint32_t op_idx, bool insert, uint8_t writer) {
  std::string rec = OpIntentRecord(op_idx, insert);
  rec.push_back(static_cast<char>(writer));
  return rec;
}

std::string WriterOpCommit(uint32_t op_idx, uint8_t writer) {
  std::string rec = OpCommitRecord(op_idx);
  rec.push_back(static_cast<char>(writer));
  return rec;
}

std::unique_ptr<AccessSupportRelation> BuildWriterAsr(gom::Database* db,
                                                      const WriterChain& w,
                                                      bool transactional) {
  AsrOptions options;
  options.anchor_collection = w.anchor;
  options.transactional = transactional;
  options.txn_max_retries = 64;
  options.txn_backoff_us = 20;
  PathExpression path =
      PathExpression::Parse(*db->schema(),
                            db->schema()->FindType("Division").value(),
                            "Manufactures.Composition.Name")
          .value();
  return AccessSupportRelation::Build(db->store(), path,
                                      ExtensionKind::kCanonical,
                                      Decomposition::Binary(3), options)
      .value();
}

constexpr uint32_t kMaxWriterOps = 200;

// The forked child for interleaved mode: one MVCC-enabled database, two
// writer threads free-running their own transactional edge-toggle loops.
// Each writer journals to WAL stream (writer+1) and seals every logical op
// with a synced 'K' before reporting progress ('0'+writer on the pipe).
[[noreturn]] void InterleavedChildRun(const std::string& snapshot,
                                      const std::string& iter_dir,
                                      const InterleavedDb& idb,
                                      int progress_fd) {
  DiskOptions options = DiskOptions::File(iter_dir, /*mmap=*/false);
  options.durability = DurabilityMode::kGroup;
  options.flush_batch = 4;
  auto db_or = gom::Database::Open(snapshot, /*buffer_capacity=*/8, options);
  if (!db_or.ok()) _exit(30);
  std::unique_ptr<gom::Database> db = std::move(*db_or);
  if (!db->AttachWal(iter_dir + "/journal.wal").ok()) _exit(31);
  db->EnableMvcc();

  std::unique_ptr<AccessSupportRelation> asrs[2];
  for (int k = 0; k < 2; ++k) {
    asrs[k] = BuildWriterAsr(db.get(), idb.chains[k], /*transactional=*/true);
    if (asrs[k] == nullptr) _exit(32);
    asrs[k]->mutable_journal()->SetWalStream(static_cast<uint8_t>(k + 1));
    asrs[k]->mutable_journal()->AttachWal(db->wal());
  }

  std::thread writers[2];
  for (int k = 0; k < 2; ++k) {
    writers[k] = std::thread([&, k] {
      const WriterChain& w = idb.chains[k];
      AccessSupportRelation* asr = asrs[k].get();
      for (uint32_t op = 0; op < kMaxWriterOps; ++op) {
        const EdgeTarget t = WriterEdge(w, op);
        Result<bool> present =
            db->store()->SetContains(t.set, AsrKey::FromOid(t.w));
        if (!present.ok()) _exit(33);
        const bool insert = !*present;
        if (!db->wal()
                 ->Append(WriterOpIntent(op, insert,
                                         static_cast<uint8_t>(k)))
                 .ok()) {
          _exit(34);
        }
        if (!ApplyWriterOp(db.get(), asr, w, op, insert).ok()) _exit(35);
        if (!db->wal()
                 ->Append(WriterOpCommit(op, static_cast<uint8_t>(k)))
                 .ok()) {
          _exit(36);
        }
        if (!db->wal()->Sync().ok()) _exit(37);
        const char tag = static_cast<char>('0' + k);
        if (::write(progress_fd, &tag, 1) != 1) _exit(38);
      }
    });
  }
  for (int k = 0; k < 2; ++k) writers[k].join();
  _exit(0);
}

std::vector<AsrKey> WriterAnchorsAt(gom::Database* db, const WriterChain& w,
                                    uint32_t pos) {
  auto key = [](Oid o) { return AsrKey::FromOid(o); };
  switch (pos) {
    case 0:
      return {key(w.division)};
    case 1:
      return {key(w.product_a), key(w.product_b)};
    case 2:
      return {key(w.part_a), key(w.part_b), key(w.part_c)};
    default: {
      std::vector<AsrKey> names;
      for (Oid part : {w.part_a, w.part_b, w.part_c}) {
        names.push_back(
            db->store()->GetAttributeByName(part, "Name").value());
      }
      return names;
    }
  }
}

void ExpectSameWriterAnswers(gom::Database* want_db,
                             AccessSupportRelation* want,
                             AccessSupportRelation* got,
                             const WriterChain& w, const std::string& ctx) {
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j <= 3; ++j) {
      if (!want->SupportsQuery(i, j)) continue;
      for (AsrKey start : WriterAnchorsAt(want_db, w, i)) {
        Result<std::vector<AsrKey>> a = want->EvalForward(start, i, j);
        Result<std::vector<AsrKey>> b = got->EvalForward(start, i, j);
        ASSERT_TRUE(a.ok() && b.ok()) << ctx;
        EXPECT_EQ(Sorted(*a), Sorted(*b))
            << ctx << ": fwd Q_{" << i << "," << j << "} diverges";
      }
      for (AsrKey target : WriterAnchorsAt(want_db, w, j)) {
        Result<std::vector<AsrKey>> a = want->EvalBackward(target, i, j);
        Result<std::vector<AsrKey>> b = got->EvalBackward(target, i, j);
        ASSERT_TRUE(a.ok() && b.ok()) << ctx;
        EXPECT_EQ(Sorted(*a), Sorted(*b))
            << ctx << ": bwd Q_{" << i << "," << j << "} diverges";
      }
    }
  }
}

struct InterleavedOutcome {
  uint32_t ops_committed[2] = {0, 0};
  uint32_t recoveries = 0;  // writers whose journal needed Recover()
};

void VerifyInterleavedAfterKill(const std::string& snapshot,
                                const std::string& iter_dir,
                                const InterleavedDb& idb,
                                const std::string& ctx,
                                InterleavedOutcome* outcome) {
  // The WAL is the only surviving artifact (no checkpoints in this mode);
  // SIGKILL may tear its tail but never corrupt the interior.
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> records;
  {
    auto wal = WriteAheadLog::Open(
        iter_dir + "/journal.wal",
        [&](std::string_view payload) { records.emplace_back(payload); },
        &stats);
    ASSERT_TRUE(wal.ok()) << ctx << ": " << wal.status().ToString();
  }
  EXPECT_FALSE(stats.corrupt_suffix) << ctx;

  // Reconstruct one shared base + both ASRs: journal records route to their
  // stream's journal, harness records replay the committed logical ops.
  auto open_and_replay =
      [&](bool with_journal, std::unique_ptr<gom::Database>* db_out,
          std::unique_ptr<AccessSupportRelation>* asr0_out,
          std::unique_ptr<AccessSupportRelation>* asr1_out) {
        auto db = gom::Database::Open(snapshot).value();
        std::unique_ptr<AccessSupportRelation> asrs[2];
        for (int k = 0; k < 2; ++k) {
          asrs[k] = BuildWriterAsr(db.get(), idb.chains[k],
                                   /*transactional=*/false);
          if (with_journal) {
            asrs[k]->mutable_journal()->SetWalStream(
                static_cast<uint8_t>(k + 1));
          }
        }
        struct PendingOp {
          uint8_t writer;
          uint32_t op_idx;
          bool insert;
        };
        std::vector<PendingOp> intents;
        std::vector<uint32_t> commits[2];
        for (const std::string& rec : records) {
          if (with_journal &&
              (asrs[0]->mutable_journal()->ApplyWalRecord(rec) ||
               asrs[1]->mutable_journal()->ApplyWalRecord(rec))) {
            continue;
          }
          if (rec.size() == 7 && rec[0] == 'O') {
            const uint8_t writer = static_cast<uint8_t>(rec[6]);
            if (writer < 2) {
              intents.push_back({writer, DecodeOpIdx(rec), rec[5] != 0});
            }
          } else if (rec.size() == 6 && rec[0] == 'K') {
            const uint8_t writer = static_cast<uint8_t>(rec[5]);
            if (writer < 2) commits[writer].push_back(DecodeOpIdx(rec));
          }
        }
        for (const PendingOp& op : intents) {
          if (std::find(commits[op.writer].begin(), commits[op.writer].end(),
                        op.op_idx) == commits[op.writer].end()) {
            continue;  // intent without commit: the op never happened
          }
          Status st = ApplyWriterOp(db.get(), asrs[op.writer].get(),
                                    idb.chains[op.writer], op.op_idx,
                                    op.insert);
          ASSERT_TRUE(st.ok()) << ctx << ": replay writer "
                               << int{op.writer} << " op " << op.op_idx
                               << ": " << st.ToString();
        }
        ASSERT_TRUE(db->buffers()->FlushAll().ok()) << ctx;
        outcome->ops_committed[0] = static_cast<uint32_t>(commits[0].size());
        outcome->ops_committed[1] = static_cast<uint32_t>(commits[1].size());
        *db_out = std::move(db);
        *asr0_out = std::move(asrs[0]);
        *asr1_out = std::move(asrs[1]);
      };

  std::unique_ptr<gom::Database> rec_db, twin_db;
  std::unique_ptr<AccessSupportRelation> rec_asr[2], twin_asr[2];
  open_and_replay(true, &rec_db, &rec_asr[0], &rec_asr[1]);
  if (::testing::Test::HasFatalFailure()) return;
  open_and_replay(false, &twin_db, &twin_asr[0], &twin_asr[1]);
  if (::testing::Test::HasFatalFailure()) return;

  for (int k = 0; k < 2; ++k) {
    const std::string wctx = ctx + " writer " + std::to_string(k);
    if (rec_asr[k]->journal().unresolved() > 0) {
      ++outcome->recoveries;
      RecoveryReport report;
      Status st = rec_asr[k]->Recover(&report);
      ASSERT_TRUE(st.ok()) << wctx << ": " << st.ToString();
      EXPECT_EQ(rec_asr[k]->journal().unresolved(), 0u) << wctx;
    }
    check::CheckReport check_report;
    check::InvariantChecker checker;
    checker.CheckAsr(rec_asr[k].get(), &check_report);
    EXPECT_TRUE(check_report.clean())
        << wctx << "\n" << check_report.ToString();
    ExpectSameWriterAnswers(twin_db.get(), twin_asr[k].get(),
                            rec_asr[k].get(), idb.chains[k], wctx);
  }
}

TEST(KillHarnessTest, InterleavedWritersRecoverToTwinEquality) {
  const char* env = std::getenv("ASR_KILL_POINTS");
  const int iterations = env != nullptr ? std::atoi(env) : 10;
  ASSERT_GT(iterations, 0);

  const std::string workdir = ::testing::TempDir() + "/kill_interleaved." +
                              std::to_string(::getpid());
  std::filesystem::remove_all(workdir);
  ASSERT_TRUE(std::filesystem::create_directories(workdir));
  const std::string snapshot = workdir + "/base.asrdb";

  InterleavedDb idb;
  {
    auto db = gom::Database::Create();
    idb = BuildInterleavedCompany(db.get());
    ASSERT_TRUE(db->SaveDurable(snapshot).ok());
  }

  uint32_t kills = 0, recoveries = 0;
  uint64_t total_committed = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    const std::string ctx = "interleaved iter " + std::to_string(iter);
    const std::string iter_dir = workdir + "/iter_" + std::to_string(iter);
    ASSERT_TRUE(std::filesystem::create_directories(iter_dir));
    std::mt19937 rng(0xBADC0DEu + static_cast<uint32_t>(iter));
    const uint32_t target_ops = 2 + rng() % 60;  // across both writers
    const useconds_t jitter_us = rng() % 2000;

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      InterleavedChildRun(snapshot, iter_dir, idb, pipefd[1]);
    }
    ::close(pipefd[1]);
    uint32_t progressed[2] = {0, 0};
    char byte;
    while (progressed[0] + progressed[1] < target_ops) {
      ssize_t n = ::read(pipefd[0], &byte, 1);
      if (n != 1) break;  // EOF: the child died on its own
      if (byte == '0' || byte == '1') ++progressed[byte - '0'];
    }
    if (progressed[0] + progressed[1] < target_ops) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      ::close(pipefd[0]);
      FAIL() << ctx << ": child exited early (status " << status << ") after "
             << progressed[0] << "+" << progressed[1] << " ops";
    }
    ::usleep(jitter_us);
    ASSERT_EQ(::kill(pid, SIGKILL), 0) << ctx;
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << ctx;
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << ctx << ": child was not killed (status " << status << ")";
    ::close(pipefd[0]);
    ++kills;

    InterleavedOutcome outcome;
    VerifyInterleavedAfterKill(snapshot, iter_dir, idb, ctx, &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    // Durability floor, per writer: every op whose progress byte the parent
    // saw was sealed with a synced 'K' record first.
    EXPECT_GE(outcome.ops_committed[0], progressed[0]) << ctx;
    EXPECT_GE(outcome.ops_committed[1], progressed[1]) << ctx;
    total_committed += outcome.ops_committed[0] + outcome.ops_committed[1];
    recoveries += outcome.recoveries;

    std::filesystem::remove_all(iter_dir);
  }

  EXPECT_EQ(kills, static_cast<uint32_t>(iterations));
  EXPECT_GT(total_committed, 0u);
  ::testing::Test::RecordProperty("kills", static_cast<int>(kills));
  ::testing::Test::RecordProperty("writer_recoveries",
                                  static_cast<int>(recoveries));
  std::filesystem::remove_all(workdir);
}

}  // namespace
}  // namespace asr
