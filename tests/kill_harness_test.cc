// Kill-based process-crash harness: the durability contract proven against
// real SIGKILL, not simulated faults.
//
// Per iteration, a forked child opens the durable base snapshot on the file
// backend (group-flush durability), attaches a WAL, builds an ASR, and runs
// a deterministic edge-toggle maintenance loop — logging each logical op as
// an 'O' intent record, running the journaled maintenance (whose own
// 'I'/'C' records share the log), and sealing the op with a 'K' commit
// record + fdatasync, checkpointing a durable snapshot every few ops. The
// parent SIGKILLs the child at a randomized progress point, then proves the
// contract from the surviving files alone:
//
//   1. the checkpoint snapshot, if present, opens cleanly (atomic rename),
//   2. the WAL replays with at worst a torn tail (never a corrupt suffix),
//   3. checkpoint + committed-op replay + journal replay + Recover() yields
//      an ASR that passes the full InvariantChecker and answers every
//      supported query exactly like a fault-free twin built from the same
//      checkpoint and committed ops.
//
// ASR_KILL_POINTS picks the number of randomized kill points (CI runs 50).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "common/macros.h"
#include "gom/database.h"
#include "obs/events.h"
#include "storage/backend.h"
#include "storage/wal.h"

namespace asr {
namespace {

using storage::DiskOptions;
using storage::DurabilityMode;
using storage::WriteAheadLog;

// --- The company base inside a Database -----------------------------------

struct CompanyDb {
  TypeId division, prodset, product, basepartset, basepart, meta;
  Oid auto_div, truck_div, space_div;
  Oid prodset_auto, prodset_truck;
  Oid sec560, mbtrak, sausage;
  Oid parts_560, parts_sausage;
  Oid door, pepper;
  Oid watermark;  // Meta object whose Name holds the applied-op count
};

CompanyDb BuildCompany(gom::Database* db) {
  gom::Schema& s = *db->schema();
  gom::ObjectStore& st = *db->store();
  CompanyDb c;
  c.basepart = s.DefineTupleType(
                    "BasePart", {},
                    {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                     {"Price", gom::Schema::kDecimalType, kInvalidTypeId}})
                   .value();
  c.basepartset = s.DefineSetType("BasePartSET", c.basepart).value();
  c.product = s.DefineTupleType(
                   "Product", {},
                   {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                    {"Composition", c.basepartset, kInvalidTypeId}})
                  .value();
  c.prodset = s.DefineSetType("ProdSET", c.product).value();
  c.division = s.DefineTupleType(
                    "Division", {},
                    {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                     {"Manufactures", c.prodset, kInvalidTypeId}})
                   .value();
  c.meta = s.DefineTupleType(
                "Meta", {},
                {{"Name", gom::Schema::kStringType, kInvalidTypeId}})
               .value();

  auto obj = [&](TypeId t) { return st.CreateObject(t).value(); };
  auto set = [&](TypeId t) { return st.CreateSet(t).value(); };
  auto key = [](Oid o) { return AsrKey::FromOid(o); };

  c.auto_div = obj(c.division);
  c.truck_div = obj(c.division);
  c.space_div = obj(c.division);
  c.prodset_auto = set(c.prodset);
  c.prodset_truck = set(c.prodset);
  c.sec560 = obj(c.product);
  c.mbtrak = obj(c.product);
  c.sausage = obj(c.product);
  c.parts_560 = set(c.basepartset);
  c.parts_sausage = set(c.basepartset);
  c.door = obj(c.basepart);
  c.pepper = obj(c.basepart);
  c.watermark = obj(c.meta);

  ASR_CHECK(st.SetString(c.auto_div, "Name", "Auto").ok());
  ASR_CHECK(st.SetString(c.truck_div, "Name", "Truck").ok());
  ASR_CHECK(st.SetString(c.space_div, "Name", "Space").ok());
  ASR_CHECK(st.SetRef(c.auto_div, "Manufactures", c.prodset_auto).ok());
  ASR_CHECK(st.SetRef(c.truck_div, "Manufactures", c.prodset_truck).ok());
  ASR_CHECK(st.AddToSet(c.prodset_auto, key(c.sec560)).ok());
  ASR_CHECK(st.AddToSet(c.prodset_truck, key(c.sec560)).ok());
  ASR_CHECK(st.AddToSet(c.prodset_truck, key(c.mbtrak)).ok());
  ASR_CHECK(st.SetString(c.sec560, "Name", "560 SEC").ok());
  ASR_CHECK(st.SetString(c.mbtrak, "Name", "MB Trak").ok());
  ASR_CHECK(st.SetString(c.sausage, "Name", "Sausage").ok());
  ASR_CHECK(st.SetRef(c.sec560, "Composition", c.parts_560).ok());
  ASR_CHECK(st.SetRef(c.sausage, "Composition", c.parts_sausage).ok());
  ASR_CHECK(st.AddToSet(c.parts_560, key(c.door)).ok());
  ASR_CHECK(st.AddToSet(c.parts_sausage, key(c.pepper)).ok());
  ASR_CHECK(st.SetString(c.door, "Name", "Door").ok());
  ASR_CHECK(st.SetDecimal(c.door, "Price", 1205.50).ok());
  ASR_CHECK(st.SetString(c.pepper, "Name", "Pepper").ok());
  ASR_CHECK(st.SetDecimal(c.pepper, "Price", 0.12).ok());
  ASR_CHECK(st.SetString(c.watermark, "Name", "0").ok());
  return c;
}

PathExpression CompanyPath(gom::Database* db, const CompanyDb& c) {
  return PathExpression::Parse(*db->schema(), c.division,
                               "Manufactures.Composition.Name")
      .value();
}

std::unique_ptr<AccessSupportRelation> BuildAsr(gom::Database* db,
                                                const CompanyDb& c) {
  return AccessSupportRelation::Build(db->store(), CompanyPath(db, c),
                                      ExtensionKind::kFull,
                                      Decomposition::Binary(3))
      .value();
}

// --- The deterministic edge-toggle schedule -------------------------------

// Each op toggles one of these edges: entry = op % 4, direction = whatever
// flips the current membership. The direction is recorded in the op's WAL
// intent so replay never has to guess.
struct EdgeTarget {
  Oid set;   // the base collection the edge lives in
  Oid u;     // maintenance: source object
  uint32_t p;  // maintenance: path position
  Oid w;     // maintenance: target
};

std::vector<EdgeTarget> EdgeTargets(const CompanyDb& c) {
  return {
      {c.prodset_auto, c.auto_div, 0, c.sausage},
      {c.prodset_truck, c.truck_div, 0, c.sausage},
      {c.parts_560, c.sec560, 1, c.pepper},
      {c.prodset_auto, c.auto_div, 0, c.mbtrak},
  };
}

// Applies logical op `op_idx` (direction `insert`) to base + ASR. The base
// mutation must succeed; the returned status is the maintenance one.
Status ApplyOp(gom::Database* db, AccessSupportRelation* asr,
               const CompanyDb& c, uint32_t op_idx, bool insert) {
  const EdgeTarget t = EdgeTargets(c)[op_idx % 4];
  const AsrKey w = AsrKey::FromOid(t.w);
  if (insert) {
    ASR_CHECK(db->store()->AddToSet(t.set, w).ok());
    return asr->OnEdgeInserted(t.u, t.p, w);
  }
  ASR_CHECK(db->store()->RemoveFromSet(t.set, w).ok());
  return asr->OnEdgeRemoved(t.u, t.p, w);
}

// --- Harness WAL records ---------------------------------------------------
//
// The harness shares the database WAL with the maintenance journal. Its own
// record types (routed back by MaintenanceJournal::ApplyWalRecord):
//   'O' [u32 op_idx][u8 insert]   logical-op intent, appended unsynced
//   'K' [u32 op_idx]              logical-op commit, appended + fdatasync

std::string OpIntentRecord(uint32_t op_idx, bool insert) {
  std::string rec(1, 'O');
  for (int i = 0; i < 4; ++i) {
    rec.push_back(static_cast<char>((op_idx >> (8 * i)) & 0xFF));
  }
  rec.push_back(insert ? 1 : 0);
  return rec;
}

std::string OpCommitRecord(uint32_t op_idx) {
  std::string rec(1, 'K');
  for (int i = 0; i < 4; ++i) {
    rec.push_back(static_cast<char>((op_idx >> (8 * i)) & 0xFF));
  }
  return rec;
}

uint32_t DecodeOpIdx(const std::string& rec) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(rec[1 + i]))
         << (8 * i);
  }
  return v;
}

uint32_t ReadWatermark(gom::Database* db, const CompanyDb& c) {
  return static_cast<uint32_t>(
      std::stoul(db->store()->GetString(c.watermark, "Name").value()));
}

// --- Child: live maintenance until SIGKILL --------------------------------

constexpr uint32_t kMaxChildOps = 400;
constexpr uint32_t kCheckpointEvery = 16;

// Runs in the forked child; must never return into gtest. Exit codes mark
// unexpected failures (0 is unreachable in practice — the parent kills us).
[[noreturn]] void ChildRun(const std::string& snapshot,
                           const std::string& iter_dir, const CompanyDb& c,
                           int progress_fd) {
  DiskOptions options = DiskOptions::File(iter_dir, /*mmap=*/false);
  options.durability = DurabilityMode::kGroup;
  options.flush_batch = 4;
  auto db_or = gom::Database::Open(snapshot, /*buffer_capacity=*/4, options);
  if (!db_or.ok()) _exit(10);
  std::unique_ptr<gom::Database> db = std::move(*db_or);
  if (!db->AttachWal(iter_dir + "/journal.wal").ok()) _exit(11);
  auto asr_or = AccessSupportRelation::Build(db->store(), CompanyPath(db.get(), c),
                                             ExtensionKind::kFull,
                                             Decomposition::Binary(3));
  if (!asr_or.ok()) _exit(12);
  std::unique_ptr<AccessSupportRelation> asr = std::move(*asr_or);
  // From here on, every journal transition also lands in the WAL.
  asr->mutable_journal()->AttachWal(db->wal());

  for (uint32_t op = 0; op < kMaxChildOps; ++op) {
    const EdgeTarget t = EdgeTargets(c)[op % 4];
    Result<bool> present =
        db->store()->SetContains(t.set, AsrKey::FromOid(t.w));
    if (!present.ok()) _exit(13);
    const bool insert = !*present;
    if (!db->wal()->Append(OpIntentRecord(op, insert)).ok()) _exit(14);
    if (!ApplyOp(db.get(), asr.get(), c, op, insert).ok()) _exit(15);
    if (!db->wal()->Append(OpCommitRecord(op)).ok()) _exit(16);
    if (!db->wal()->Sync().ok()) _exit(17);
    // The op is durable — only now is the parent told it happened.
    if (::write(progress_fd, "x", 1) != 1) _exit(18);
    if ((op + 1) % kCheckpointEvery == 0) {
      if (!db->store()
               ->SetString(c.watermark, "Name", std::to_string(op + 1))
               .ok()) {
        _exit(19);
      }
      if (!db->SaveDurable(iter_dir + "/ckpt.asrdb").ok()) _exit(20);
    }
  }
  _exit(0);
}

// --- Parent: reopen, recover, verify --------------------------------------

std::vector<AsrKey> Sorted(std::vector<AsrKey> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<AsrKey> AnchorsAt(gom::Database* db, const CompanyDb& c,
                              uint32_t pos) {
  auto key = [](Oid o) { return AsrKey::FromOid(o); };
  switch (pos) {
    case 0:
      return {key(c.auto_div), key(c.truck_div), key(c.space_div)};
    case 1:
      return {key(c.sec560), key(c.mbtrak), key(c.sausage)};
    case 2:
      return {key(c.door), key(c.pepper)};
    default:
      return {db->store()->GetAttributeByName(c.door, "Name").value(),
              db->store()->GetAttributeByName(c.pepper, "Name").value()};
  }
}

void ExpectSameAnswers(gom::Database* want_db, AccessSupportRelation* want,
                       AccessSupportRelation* got, const CompanyDb& c,
                       const std::string& ctx) {
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j <= 3; ++j) {
      if (!want->SupportsQuery(i, j)) continue;
      for (AsrKey start : AnchorsAt(want_db, c, i)) {
        Result<std::vector<AsrKey>> w = want->EvalForward(start, i, j);
        Result<std::vector<AsrKey>> g = got->EvalForward(start, i, j);
        ASSERT_TRUE(w.ok()) << ctx << ": " << w.status().ToString();
        ASSERT_TRUE(g.ok()) << ctx << ": " << g.status().ToString();
        EXPECT_EQ(Sorted(*w), Sorted(*g))
            << ctx << ": fwd Q_{" << i << "," << j << "} diverges";
      }
      for (AsrKey target : AnchorsAt(want_db, c, j)) {
        Result<std::vector<AsrKey>> w = want->EvalBackward(target, i, j);
        Result<std::vector<AsrKey>> g = got->EvalBackward(target, i, j);
        ASSERT_TRUE(w.ok()) << ctx << ": " << w.status().ToString();
        ASSERT_TRUE(g.ok()) << ctx << ": " << g.status().ToString();
        EXPECT_EQ(Sorted(*w), Sorted(*g))
            << ctx << ": bwd Q_{" << i << "," << j << "} diverges";
      }
    }
  }
}

struct IterationOutcome {
  uint32_t ops_committed = 0;   // 'K' records found in the WAL
  uint32_t ops_replayed = 0;    // committed ops past the checkpoint
  bool used_checkpoint = false;
  bool needed_recovery = false;  // journal came back with unresolved intent
};

void VerifyAfterKill(const std::string& snapshot, const std::string& iter_dir,
                     const CompanyDb& c, const std::string& ctx,
                     IterationOutcome* outcome) {
  // (1) The checkpoint, if published, must open cleanly: SaveDurable's
  // atomic rename means there is no state in which a torn checkpoint exists
  // under the final name.
  std::string base = snapshot;
  const std::string ckpt = iter_dir + "/ckpt.asrdb";
  if (std::filesystem::exists(ckpt)) {
    ASSERT_TRUE(gom::Database::Open(ckpt).ok())
        << ctx << ": published checkpoint does not open";
    base = ckpt;
    outcome->used_checkpoint = true;
  }

  // (2) The WAL replays; SIGKILL can only tear the tail, never corrupt the
  // interior (each frame is one pwrite, appends are sequential).
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> records;
  {
    auto wal = WriteAheadLog::Open(
        iter_dir + "/journal.wal",
        [&](std::string_view payload) { records.emplace_back(payload); },
        &stats);
    ASSERT_TRUE(wal.ok()) << ctx << ": " << wal.status().ToString();
  }
  EXPECT_FALSE(stats.corrupt_suffix) << ctx;

  // (3) Reconstruct: checkpoint pages, then journal records, then committed
  // logical ops, then Recover() if anything is unresolved.
  auto open_and_replay = [&](bool with_journal,
                             std::unique_ptr<gom::Database>* db_out,
                             std::unique_ptr<AccessSupportRelation>* asr_out) {
    auto db = gom::Database::Open(base).value();
    auto asr = BuildAsr(db.get(), c);
    std::vector<std::pair<uint32_t, bool>> intents;  // op_idx -> direction
    std::vector<uint32_t> commits;
    for (const std::string& rec : records) {
      if (with_journal && asr->mutable_journal()->ApplyWalRecord(rec)) {
        continue;
      }
      if (rec.size() == 6 && rec[0] == 'O') {
        intents.emplace_back(DecodeOpIdx(rec), rec[5] != 0);
      } else if (rec.size() == 5 && rec[0] == 'K') {
        commits.push_back(DecodeOpIdx(rec));
      }
    }
    const uint32_t watermark = ReadWatermark(db.get(), c);
    uint32_t replayed = 0;
    for (const auto& [op_idx, insert] : intents) {
      if (std::find(commits.begin(), commits.end(), op_idx) == commits.end()) {
        continue;  // intent without commit: the op never happened
      }
      if (op_idx < watermark) continue;  // already inside the checkpoint
      Status st = ApplyOp(db.get(), asr.get(), c, op_idx, insert);
      ASSERT_TRUE(st.ok()) << ctx << ": replay op " << op_idx << ": "
                           << st.ToString();
      ++replayed;
    }
    // The replayed base state is re-established durable state, not
    // crash-lost cache: flush it down so Recover()'s DropAll (which models
    // losing RAM) cannot take the replayed mutations with it.
    ASSERT_TRUE(db->buffers()->FlushAll().ok()) << ctx;
    outcome->ops_committed = static_cast<uint32_t>(commits.size());
    if (with_journal) outcome->ops_replayed = replayed;
    *db_out = std::move(db);
    *asr_out = std::move(asr);
  };

  std::unique_ptr<gom::Database> rec_db, twin_db;
  std::unique_ptr<AccessSupportRelation> rec_asr, twin_asr;
  open_and_replay(/*with_journal=*/true, &rec_db, &rec_asr);
  if (::testing::Test::HasFatalFailure()) return;

  if (rec_asr->journal().unresolved() > 0) {
    outcome->needed_recovery = true;
#if ASR_METRICS_ENABLED
    const uint64_t events_before = obs::EventLog::Instance().total_recorded();
#endif
    RecoveryReport report;
    Status st = rec_asr->Recover(&report);
    ASSERT_TRUE(st.ok()) << ctx << ": " << st.ToString();
    EXPECT_EQ(rec_asr->journal().unresolved(), 0u) << ctx;
#if ASR_METRICS_ENABLED
    // The restart must leave an audit trail: recovery start and finish land
    // in the operational event journal.
    bool saw_start = false, saw_finish = false;
    for (const obs::Event& e : obs::EventLog::Instance().Snapshot()) {
      if (e.seq <= events_before) continue;
      saw_start |= e.kind == obs::EventKind::kRecoveryStart;
      saw_finish |= e.kind == obs::EventKind::kRecoveryFinish;
    }
    EXPECT_TRUE(saw_start && saw_finish)
        << ctx << ": Recover() left no recovery_start/recovery_finish events";
#endif
  }

  // (4) Post-recovery invariants: the full checker, semantic checks on.
  check::CheckReport check_report;
  check::InvariantChecker checker;
  checker.CheckAsr(rec_asr.get(), &check_report);
  EXPECT_TRUE(check_report.clean()) << ctx << "\n" << check_report.ToString();

  // (5) Answer-equality against the fault-free twin: same checkpoint, same
  // committed ops, no crash machinery.
  open_and_replay(/*with_journal=*/false, &twin_db, &twin_asr);
  if (::testing::Test::HasFatalFailure()) return;
  ExpectSameAnswers(twin_db.get(), twin_asr.get(), rec_asr.get(), c, ctx);
}

TEST(KillHarnessTest, RandomizedSigkillPointsRecoverToTwinEquality) {
  const char* env = std::getenv("ASR_KILL_POINTS");
  const int iterations = env != nullptr ? std::atoi(env) : 10;
  ASSERT_GT(iterations, 0);

  const std::string workdir =
      ::testing::TempDir() + "/kill_harness." + std::to_string(::getpid());
  std::filesystem::remove_all(workdir);
  ASSERT_TRUE(std::filesystem::create_directories(workdir));
  const std::string snapshot = workdir + "/base.asrdb";

  CompanyDb c;
  {
    auto db = gom::Database::Create();
    c = BuildCompany(db.get());
    ASSERT_TRUE(db->SaveDurable(snapshot).ok());
  }

  uint32_t kills = 0, recoveries = 0, checkpoints_used = 0;
  uint64_t total_committed = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    const std::string ctx = "iter " + std::to_string(iter);
    const std::string iter_dir = workdir + "/iter_" + std::to_string(iter);
    ASSERT_TRUE(std::filesystem::create_directories(iter_dir));
    // Deterministic per-iteration randomization: the kill lands after a
    // random number of committed ops, plus a microsecond jitter so it can
    // strike mid-append, mid-maintenance, or mid-checkpoint.
    std::mt19937 rng(0xC0FFEEu + static_cast<uint32_t>(iter));
    const uint32_t target_ops = 1 + rng() % 48;
    const useconds_t jitter_us = rng() % 2000;

    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ::close(pipefd[0]);
      ChildRun(snapshot, iter_dir, c, pipefd[1]);  // never returns
    }
    ::close(pipefd[1]);
    uint32_t progressed = 0;
    char byte;
    while (progressed < target_ops) {
      ssize_t n = ::read(pipefd[0], &byte, 1);
      if (n == 1) {
        ++progressed;
      } else {
        break;  // EOF: the child died on its own
      }
    }
    if (progressed < target_ops) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      ::close(pipefd[0]);
      FAIL() << ctx << ": child exited early (status " << status
             << ") after " << progressed << " ops";
    }
    ::usleep(jitter_us);
    ASSERT_EQ(::kill(pid, SIGKILL), 0) << ctx;
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << ctx;
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << ctx << ": child was not killed (status " << status << ")";
    ::close(pipefd[0]);
    ++kills;

    IterationOutcome outcome;
    VerifyAfterKill(snapshot, iter_dir, c, ctx, &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    // Durability floor: every op the parent saw progress for was sealed by
    // a synced 'K' record, so it must still be visible after the kill.
    EXPECT_GE(outcome.ops_committed, target_ops) << ctx;
    total_committed += outcome.ops_committed;
    recoveries += outcome.needed_recovery ? 1 : 0;
    checkpoints_used += outcome.used_checkpoint ? 1 : 0;

    std::filesystem::remove_all(iter_dir);
  }

  EXPECT_EQ(kills, static_cast<uint32_t>(iterations));
  EXPECT_GT(total_committed, 0u);
  ::testing::Test::RecordProperty("kills", static_cast<int>(kills));
  ::testing::Test::RecordProperty("recoveries", static_cast<int>(recoveries));
  ::testing::Test::RecordProperty("checkpoints_used",
                                  static_cast<int>(checkpoints_used));
  std::filesystem::remove_all(workdir);
}

}  // namespace
}  // namespace asr
