// Tests that the four extensions (Defs. 3.3-3.7) computed over the Figure 2
// Company database reproduce the paper's §3 example tuples exactly.
#include <gtest/gtest.h>

#include "asr/extension.h"
#include "paper_example.h"

namespace asr {
namespace {

using rel::JoinKind;
using rel::Relation;
using rel::Row;
using testing::CompanyBase;
using testing::MakeCompanyBase;
using testing::MakeCompanyPath;

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest() : base_(MakeCompanyBase()), path_(MakeCompanyPath(*base_)) {}

  AsrKey K(Oid oid) const { return AsrKey::FromOid(oid); }
  AsrKey N() const { return AsrKey::Null(); }
  AsrKey Name(const char* s) { return base_->Name(s); }

  Relation Ext(ExtensionKind kind, bool drop_sets) {
    return ComputeExtension(base_->store.get(), path_, kind, drop_sets)
        .value();
  }

  std::unique_ptr<CompanyBase> base_;
  PathExpression path_;
};

TEST_F(ExtensionTest, AuxiliaryRelationsMatchPaperSection3) {
  // E_0: (Division, ProdSET, Product) — the paper's example lists
  // (i2, i5, i9) and (i1, i4, i6) among others.
  Relation e0 =
      BuildAuxiliaryRelation(base_->store.get(), path_, 1, false).value();
  Relation expected_e0(3);
  expected_e0.AddRow({K(base_->auto_division), K(base_->prodset_auto),
                      K(base_->sec560)});
  expected_e0.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                      K(base_->sec560)});
  expected_e0.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                      K(base_->mbtrak)});
  EXPECT_TRUE(e0.EqualsAsSet(expected_e0));

  // E_1: (Product, BasePartSET, BasePart) — (i11, i13, i14), (i6, i7, i8).
  Relation e1 =
      BuildAuxiliaryRelation(base_->store.get(), path_, 2, false).value();
  Relation expected_e1(3);
  expected_e1.AddRow({K(base_->sec560), K(base_->parts_560), K(base_->door)});
  expected_e1.AddRow({K(base_->sausage), K(base_->parts_sausage),
                      K(base_->pepper)});
  EXPECT_TRUE(e1.EqualsAsSet(expected_e1));

  // E_2: (BasePart, Name value) — (i14, "Pepper"), (i8, "Door").
  Relation e2 =
      BuildAuxiliaryRelation(base_->store.get(), path_, 3, false).value();
  Relation expected_e2(2);
  expected_e2.AddRow({K(base_->door), Name("Door")});
  expected_e2.AddRow({K(base_->pepper), Name("Pepper")});
  EXPECT_TRUE(e2.EqualsAsSet(expected_e2));
}

TEST_F(ExtensionTest, EmptySetYieldsNullTuple) {
  // Def. 3.3 case 2: an empty set o'_j contributes (o_{j-1}, o'_j, NULL).
  Oid empty_division = base_->store->CreateObject(base_->division_type).value();
  Oid empty_set = base_->store->CreateSet(base_->prodset_type).value();
  ASSERT_TRUE(
      base_->store->SetRef(empty_division, "Manufactures", empty_set).ok());
  Relation e0 =
      BuildAuxiliaryRelation(base_->store.get(), path_, 1, false).value();
  bool found = false;
  for (const Row& row : e0.rows()) {
    if (row[0] == K(empty_division)) {
      EXPECT_EQ(row[1], K(empty_set));
      EXPECT_TRUE(row[2].IsNull());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExtensionTest, CanonicalContainsOnlyCompletePaths) {
  Relation can = Ext(ExtensionKind::kCanonical, /*drop_sets=*/false);
  Relation expected(6);
  expected.AddRow({K(base_->auto_division), K(base_->prodset_auto),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  EXPECT_TRUE(can.EqualsAsSet(expected));
}

TEST_F(ExtensionTest, FullContainsAllPartialPaths) {
  Relation full = Ext(ExtensionKind::kFull, false);
  Relation expected(6);
  // Complete paths.
  expected.AddRow({K(base_->auto_division), K(base_->prodset_auto),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  // The paper's example tuples: (i2, i5, i9, NULL, NULL, NULL) and
  // (NULL, NULL, i11, i13, i14, "Pepper").
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->mbtrak), N(), N(), N()});
  expected.AddRow({N(), N(), K(base_->sausage), K(base_->parts_sausage),
                   K(base_->pepper), Name("Pepper")});
  EXPECT_TRUE(full.EqualsAsSet(expected));
}

TEST_F(ExtensionTest, LeftCompleteKeepsPathsFromT0) {
  Relation left = Ext(ExtensionKind::kLeftComplete, false);
  Relation expected(6);
  expected.AddRow({K(base_->auto_division), K(base_->prodset_auto),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  // (i2, i5, i9, NULL, NULL, NULL): originates in t_0, leads to NULL.
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->mbtrak), N(), N(), N()});
  EXPECT_TRUE(left.EqualsAsSet(expected));
}

TEST_F(ExtensionTest, RightCompleteKeepsPathsToAn) {
  Relation right = Ext(ExtensionKind::kRightComplete, false);
  Relation expected(6);
  expected.AddRow({K(base_->auto_division), K(base_->prodset_auto),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  expected.AddRow({K(base_->truck_division), K(base_->prodset_truck),
                   K(base_->sec560), K(base_->parts_560), K(base_->door),
                   Name("Door")});
  // (NULL, NULL, i11, i13, i14, "Pepper"): defined for A_n, not from t_0.
  expected.AddRow({N(), N(), K(base_->sausage), K(base_->parts_sausage),
                   K(base_->pepper), Name("Pepper")});
  EXPECT_TRUE(right.EqualsAsSet(expected));
}

TEST_F(ExtensionTest, DropSetColumnsProjectsSetOids) {
  Relation can = Ext(ExtensionKind::kCanonical, /*drop_sets=*/true);
  Relation expected(4);
  expected.AddRow({K(base_->auto_division), K(base_->sec560), K(base_->door),
                   Name("Door")});
  expected.AddRow({K(base_->truck_division), K(base_->sec560), K(base_->door),
                   Name("Door")});
  EXPECT_TRUE(can.EqualsAsSet(expected));

  Relation full = Ext(ExtensionKind::kFull, true);
  EXPECT_EQ(full.arity(), 4u);
  EXPECT_EQ(full.size(), 4u);
}

// Containment properties: can is contained in left and right; left and
// right rows appear in full (comparing complete rows only is not needed —
// the extensions are literally subsets here).
TEST_F(ExtensionTest, ExtensionContainment) {
  for (bool drop : {false, true}) {
    Relation can = Ext(ExtensionKind::kCanonical, drop);
    Relation left = Ext(ExtensionKind::kLeftComplete, drop);
    Relation right = Ext(ExtensionKind::kRightComplete, drop);
    Relation full = Ext(ExtensionKind::kFull, drop);

    auto contains = [](const Relation& outer, const Relation& inner) {
      for (const Row& row : inner.rows()) {
        bool found = false;
        for (const Row& other : outer.rows()) {
          if (row == other) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    };
    EXPECT_TRUE(contains(left, can));
    EXPECT_TRUE(contains(right, can));
    EXPECT_TRUE(contains(full, left));
    EXPECT_TRUE(contains(full, right));
  }
}

TEST_F(ExtensionTest, SupportedQueryMatrix) {
  const uint32_t n = 3;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j <= n; ++j) {
      EXPECT_EQ(ExtensionSupportsQuery(ExtensionKind::kCanonical, i, j, n),
                i == 0 && j == n);
      EXPECT_TRUE(ExtensionSupportsQuery(ExtensionKind::kFull, i, j, n));
      EXPECT_EQ(ExtensionSupportsQuery(ExtensionKind::kLeftComplete, i, j, n),
                i == 0);
      EXPECT_EQ(ExtensionSupportsQuery(ExtensionKind::kRightComplete, i, j, n),
                j == n);
    }
  }
}

TEST_F(ExtensionTest, SubtypeInstancesAppearInExtents) {
  // A Division subtype's instances must flow into E_0.
  TypeId special =
      base_->schema.DefineTupleType("SpecialDivision",
                                    {base_->division_type}, {})
          .value();
  Oid sd = base_->store->CreateObject(special).value();
  Oid set = base_->store->CreateSet(base_->prodset_type).value();
  ASSERT_TRUE(base_->store->SetRef(sd, "Manufactures", set).ok());
  ASSERT_TRUE(
      base_->store->AddToSet(set, AsrKey::FromOid(base_->sausage)).ok());

  Relation can = Ext(ExtensionKind::kCanonical, true);
  bool found = false;
  for (const Row& row : can.rows()) {
    if (row[0] == K(sd)) {
      EXPECT_EQ(row[1], K(base_->sausage));
      EXPECT_EQ(row[3], Name("Pepper"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace asr
