// Tests for the query-language front end: lexer, parser, and engine,
// executing the paper's Queries 1-3 textually.
#include <gtest/gtest.h>

#include <set>

#include "lang/executor.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "paper_example.h"

namespace asr::lang {
namespace {

// --- Lexer ------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsIdentifiersAndLiterals) {
  auto tokens = Tokenize("select r.Name from r in ROBOT where x = \"U\"")
                    .value();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kSelect, TokenKind::kIdent, TokenKind::kDot,
                       TokenKind::kIdent, TokenKind::kFrom, TokenKind::kIdent,
                       TokenKind::kIn, TokenKind::kIdent, TokenKind::kWhere,
                       TokenKind::kIdent, TokenKind::kEquals,
                       TokenKind::kString, TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("SELECT x FROM y IN Z").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFrom);
  EXPECT_EQ(tokens[4].kind, TokenKind::kIn);
}

TEST(LexerTest, NumbersAndDecimals) {
  auto tokens = Tokenize("42 1205.50 0.5 -7").value();
  EXPECT_EQ(tokens[0].number, 42);
  EXPECT_FALSE(tokens[0].decimal);
  EXPECT_EQ(tokens[1].number, 120550);
  EXPECT_TRUE(tokens[1].decimal);
  EXPECT_EQ(tokens[2].number, 50);  // 0.5 -> 50 cents
  EXPECT_EQ(tokens[3].number, -7);
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("\"unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("a ? b").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("1.234").status().IsInvalidArgument());
}

// --- Parser ------------------------------------------------------------

TEST(ParserTest, ParsesQueryOne) {
  SelectQuery q = Parse("select r.Name from r in ROBOT where "
                        "r.Arm.MountedTool.ManufacturedBy.Location = "
                        "\"Utopia\"")
                      .value();
  EXPECT_EQ(q.select.ToString(), "r.Name");
  ASSERT_EQ(q.ranges.size(), 1u);
  EXPECT_EQ(q.ranges[0].var, "r");
  EXPECT_EQ(q.ranges[0].source.ToString(), "ROBOT");
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_EQ(q.conditions[0].path.ToString(),
            "r.Arm.MountedTool.ManufacturedBy.Location");
  EXPECT_EQ(q.conditions[0].literal.string_value, "Utopia");
}

TEST(ParserTest, ParsesMultipleRangesAndConditions) {
  SelectQuery q =
      Parse("select d.Name from d in Division, b in "
            "d.Manufactures.Composition where b.Name = \"Door\" and "
            "b.Price = 1205.50")
          .value();
  ASSERT_EQ(q.ranges.size(), 2u);
  EXPECT_EQ(q.ranges[1].var, "b");
  EXPECT_EQ(q.ranges[1].source.ToString(), "d.Manufactures.Composition");
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[1].literal.kind, Literal::Kind::kDecimal);
  EXPECT_EQ(q.conditions[1].literal.int_value, 120550);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(Parse("select from r in T").ok());
  EXPECT_FALSE(Parse("select x").ok());
  EXPECT_FALSE(Parse("select x from y T").ok());
  EXPECT_FALSE(Parse("select x from y in T where z =").ok());
  EXPECT_FALSE(Parse("select x from y in T trailing").ok());
}

// --- Engine over the company base ---------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : base_(testing::MakeCompanyBase()) {}

  std::set<std::string> Run(QueryEngine* engine, const std::string& text) {
    std::vector<AsrKey> keys = engine->Execute(text).value();
    std::set<std::string> out;
    for (AsrKey k : keys) {
      if (k.IsOid() &&
          base_->schema.IsSubtypeOf(k.ToOid().type_id(),
                                    base_->division_type)) {
        out.insert(base_->store->GetString(k.ToOid(), "Name").value());
      } else {
        out.insert(engine->Format(k));
      }
    }
    return out;
  }

  std::unique_ptr<testing::CompanyBase> base_;
};

TEST_F(EngineTest, Query2NavigationalAndSupportedAgree) {
  const std::string text =
      "select d from d in Division, b in d.Manufactures.Composition "
      "where b.Name = \"Door\"";

  QueryEngine nav_engine(base_->store.get());
  std::set<std::string> nav = Run(&nav_engine, text);
  EXPECT_EQ(nav, (std::set<std::string>{"Auto", "Truck"}));
  EXPECT_EQ(nav_engine.navigational_evals(), 1u);

  PathExpression path = testing::MakeCompanyPath(*base_);
  auto asr = AccessSupportRelation::Build(base_->store.get(), path,
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(3))
                 .value();
  QueryEngine asr_engine(base_->store.get());
  asr_engine.RegisterAsr(asr.get());
  EXPECT_EQ(Run(&asr_engine, text), nav);
  EXPECT_EQ(asr_engine.supported_evals(), 1u);
  EXPECT_EQ(asr_engine.navigational_evals(), 0u);
}

TEST_F(EngineTest, Query3ProjectsAlongPath) {
  QueryEngine engine(base_->store.get());
  std::set<std::string> names =
      Run(&engine,
          "select d.Manufactures.Composition.Name from d in Division "
          "where d.Name = \"Auto\"");
  EXPECT_EQ(names, (std::set<std::string>{"\"Door\""}));
}

TEST_F(EngineTest, DecimalConditions) {
  QueryEngine engine(base_->store.get());
  std::set<std::string> parts = Run(
      &engine,
      "select b.Name from b in BasePart where b.Price = 1205.50");
  EXPECT_EQ(parts, (std::set<std::string>{"\"Door\""}));
  // Whole-number literal against a DECIMAL attribute scales by 100.
  Oid cheap = base_->store->CreateObject(base_->basepart_type).value();
  ASSERT_TRUE(base_->store->SetString(cheap, "Name", "Bolt").ok());
  ASSERT_TRUE(base_->store->SetDecimal(cheap, "Price", 3.0).ok());
  parts = Run(&engine,
              "select b.Name from b in BasePart where b.Price = 3");
  EXPECT_EQ(parts, (std::set<std::string>{"\"Bolt\""}));
}

TEST_F(EngineTest, ConjunctionIntersects) {
  QueryEngine engine(base_->store.get());
  // Truck manufactures both the 560 SEC (with Door) and the MB Trak; the
  // conjunction keeps divisions matching both conditions.
  std::set<std::string> divisions = Run(
      &engine,
      "select d from d in Division, p in d.Manufactures "
      "where p.Name = \"MB Trak\" and d.Name = \"Truck\"");
  EXPECT_EQ(divisions, (std::set<std::string>{"Truck"}));
  divisions = Run(&engine,
                  "select d from d in Division, p in d.Manufactures "
                  "where p.Name = \"MB Trak\" and d.Name = \"Auto\"");
  EXPECT_TRUE(divisions.empty());
}

TEST_F(EngineTest, NoConditionScansExtent) {
  QueryEngine engine(base_->store.get());
  std::set<std::string> all = Run(&engine, "select d from d in Division");
  EXPECT_EQ(all, (std::set<std::string>{"Auto", "Truck", "Space"}));
}

TEST_F(EngineTest, UnknownLiteralStringMatchesNothing) {
  QueryEngine engine(base_->store.get());
  std::set<std::string> none = Run(
      &engine,
      "select d from d in Division, b in d.Manufactures.Composition "
      "where b.Name = \"NeverSeen\"");
  EXPECT_TRUE(none.empty());
}

TEST_F(EngineTest, SemanticErrors) {
  QueryEngine engine(base_->store.get());
  // Unknown type.
  EXPECT_FALSE(engine.Execute("select x from x in Nowhere").ok());
  // Second range must chain off a declared variable.
  EXPECT_FALSE(
      engine.Execute("select x from x in Division, y in z.Name").ok());
  // Condition against an object-valued path.
  EXPECT_TRUE(engine
                  .Execute("select d from d in Division where "
                           "d.Manufactures = \"X\"")
                  .status()
                  .IsTypeError());
  // Literal kind mismatch.
  EXPECT_TRUE(engine
                  .Execute("select d from d in Division where d.Name = 4")
                  .status()
                  .IsTypeError());
  // Unknown attribute inside a path.
  EXPECT_FALSE(
      engine.Execute("select d from d in Division where d.Ghost = \"x\"")
          .ok());
}

TEST_F(EngineTest, ExplainPredictsAndLabelsSteps) {
  const std::string text =
      "select d from d in Division, b in d.Manufactures.Composition "
      "where b.Name = \"Door\"";

  QueryEngine nav_engine(base_->store.get());
  QueryEngine::QueryPlan nav_plan = nav_engine.Explain(text).value();
  ASSERT_EQ(nav_plan.steps.size(), 1u);
  EXPECT_FALSE(nav_plan.steps[0].supported);
  EXPECT_GT(nav_plan.steps[0].predicted_accesses, 0.0);
  EXPECT_NE(nav_plan.steps[0].description.find(
                "Division.Manufactures.Composition.Name"),
            std::string::npos);

  PathExpression path = testing::MakeCompanyPath(*base_);
  auto asr = AccessSupportRelation::Build(base_->store.get(), path,
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(3))
                 .value();
  QueryEngine asr_engine(base_->store.get());
  asr_engine.RegisterAsr(asr.get());
  QueryEngine::QueryPlan asr_plan = asr_engine.Explain(text).value();
  ASSERT_EQ(asr_plan.steps.size(), 1u);
  EXPECT_TRUE(asr_plan.steps[0].supported);
  // At this toy scale (one-page extents) the model honestly reports that
  // the index's tree traversals cost as much as the scan; both predictions
  // are small single digits.
  EXPECT_GT(asr_plan.total_predicted, 0.0);
  EXPECT_LE(asr_plan.total_predicted, 10.0);
  EXPECT_LE(nav_plan.total_predicted, 10.0);

  // Rendering mentions the dispatch decision.
  EXPECT_NE(asr_plan.ToString().find("[asr]"), std::string::npos);
  EXPECT_NE(nav_plan.ToString().find("[navigate]"), std::string::npos);
}

TEST_F(EngineTest, ExplainCoversProjectionAndExtentScan) {
  QueryEngine engine(base_->store.get());
  QueryEngine::QueryPlan plan =
      engine.Explain("select d.Manufactures.Composition.Name from d in "
                     "Division where d.Name = \"Auto\"")
          .value();
  ASSERT_EQ(plan.steps.size(), 2u);  // condition + projection
  EXPECT_NE(plan.steps[1].description.find("projection"), std::string::npos);

  QueryEngine::QueryPlan scan =
      engine.Explain("select d from d in Division").value();
  ASSERT_EQ(scan.steps.size(), 1u);
  EXPECT_NE(scan.steps[0].description.find("extent scan"), std::string::npos);

  // Semantic errors surface at planning time too.
  EXPECT_FALSE(engine.Explain("select x from x in Nowhere").ok());
  EXPECT_TRUE(engine
                  .Explain("select d from d in Division where d.Name = 4")
                  .status()
                  .IsTypeError());
}

TEST_F(EngineTest, FormatRendersKeyKinds) {
  QueryEngine engine(base_->store.get());
  EXPECT_EQ(engine.Format(AsrKey::FromInt(42)), "42");
  EXPECT_EQ(engine.Format(base_->Name("Door")), "\"Door\"");
  EXPECT_EQ(engine.Format(AsrKey::FromOid(base_->door)),
            base_->door.ToString());
}

}  // namespace
}  // namespace asr::lang
