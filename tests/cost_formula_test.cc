// Hand-computed checks of individual cost-model formulas on a small profile
// where every quantity can be verified on paper.
//
// Profile: n = 2, c = (10, 20, 40), d = (8, 10), fan = (2, 2), explicit
// shar = (1, 1). Derived by hand:
//   e_1 = d_0*fan_0/shar_0 = 16        e_2 = d_1*fan_1/shar_1 = 20
//   P_A = (0.8, 0.5)                    P_H = (16/20, 20/40) = (0.8, 0.5)
//   ref_0 = 16, ref_1 = 20
//   path(0,1) = 16; path(1,2) = 20; path(0,2) = 16 * (P_A1 * fan_1) = 16
//   RefBy(0,1) = e_1 = 16
//   RefBy(0,2) = e_2 * (1 - (1 - fan_1/e_2)^(RefBy(0,1)*P_A1))
//              = 20 * (1 - 0.9^12.8) ~ 20 * (1 - 0.2596) ~ 14.807
//   Ref(1,2) = d_1 = 10
//   Ref(0,2) = d_0 * (1 - (1 - shar_0/d_0)^(Ref(1,2)*P_H1))
//            = 8 * (1 - 0.875^8) ~ 8 * (1 - 0.34361) ~ 5.251
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"

namespace asr::cost {
namespace {

CostModel TinyModel() {
  ApplicationProfile p;
  p.n = 2;
  p.c = {10, 20, 40};
  p.d = {8, 10};
  p.fan = {2, 2};
  p.shar = {1, 1};
  p.size = {500, 400, 300};
  return CostModel(p);
}

TEST(CostFormulaTest, DerivedQuantitiesByHand) {
  CostModel m = TinyModel();
  EXPECT_DOUBLE_EQ(m.e(1), 16.0);
  EXPECT_DOUBLE_EQ(m.e(2), 20.0);
  EXPECT_DOUBLE_EQ(m.PA(0), 0.8);
  EXPECT_DOUBLE_EQ(m.PA(1), 0.5);
  EXPECT_DOUBLE_EQ(m.PH(1), 0.8);
  EXPECT_DOUBLE_EQ(m.PH(2), 0.5);
  EXPECT_DOUBLE_EQ(m.ref(0), 16.0);
  EXPECT_DOUBLE_EQ(m.ref(1), 20.0);
}

TEST(CostFormulaTest, PathCountsByHand) {
  CostModel m = TinyModel();
  EXPECT_DOUBLE_EQ(m.PathCount(0, 1), 16.0);
  EXPECT_DOUBLE_EQ(m.PathCount(1, 2), 20.0);
  // path(0,2) = ref_0 * P_A1 * fan_1 = 16 * 0.5 * 2.
  EXPECT_DOUBLE_EQ(m.PathCount(0, 2), 16.0);
}

TEST(CostFormulaTest, RefByAndRefByHand) {
  CostModel m = TinyModel();
  EXPECT_DOUBLE_EQ(m.RefBy(0, 1), 16.0);
  double refby02 = 20.0 * (1.0 - std::pow(1.0 - 2.0 / 20.0, 16.0 * 0.5));
  EXPECT_NEAR(m.RefBy(0, 2), refby02, 1e-9);
  EXPECT_NEAR(m.PRefBy(0, 2), refby02 / 40.0, 1e-9);

  EXPECT_DOUBLE_EQ(m.Ref(1, 2), 10.0);
  // Exponent: Ref(1,2) * P_H(1) = 10 * 0.8 = 8.
  double ref02 = 8.0 * (1.0 - std::pow(1.0 - 1.0 / 8.0, 10.0 * 0.8));
  EXPECT_NEAR(m.Ref(0, 2), ref02, 1e-9);
  EXPECT_NEAR(m.PRef(0, 2), ref02 / 10.0, 1e-9);
}

TEST(CostFormulaTest, ThreeArgumentBaseCasesByHand) {
  CostModel m = TinyModel();
  // RefBy(0, 1, k) = e_1 * (1 - (1 - fan_0/e_1)^k), Eq. 29 base case.
  EXPECT_NEAR(m.RefBy(0, 1, 1), 16.0 * (1.0 - std::pow(0.875, 1.0)), 1e-9);
  EXPECT_NEAR(m.RefBy(0, 1, 4), 16.0 * (1.0 - std::pow(0.875, 4.0)), 1e-9);
  // Ref(1, 2, k) = d_1 * (1 - (1 - shar_1/d_1)^k), Eq. 30 base case.
  EXPECT_NEAR(m.Ref(1, 2, 1), 10.0 * (1.0 - std::pow(0.9, 1.0)), 1e-9);
  EXPECT_NEAR(m.Ref(1, 2, 5), 10.0 * (1.0 - std::pow(0.9, 5.0)), 1e-9);
}

TEST(CostFormulaTest, CanonicalCardinalityByHand) {
  CostModel m = TinyModel();
  // #E_can^{0,2} = path(0,2) = 16.
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kCanonical, 0, 2), 16.0, 1e-9);
  // #E_can^{0,1} = path(0,1) * P_Ref(1,2) = 16 * 10/20 = 8.
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kCanonical, 0, 1), 8.0, 1e-9);
  // #E_can^{1,2} = P_RefBy(0,1) * path(1,2) = 16/20 * 20 = 16.
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kCanonical, 1, 2), 16.0, 1e-9);
}

TEST(CostFormulaTest, LeftCompleteCardinalityByHand) {
  CostModel m = TinyModel();
  // #E_left^{0,2} = sum over fragment lengths k=1,2 anchored at 0:
  //   k=1: path(0,1) * P_rb(1, min(2,2)) = 16 * (1 - 0.5) = 8
  //   k=2: path(0,2) * P_rb(2, 2) = 16 * 1 = 16   -> 24.
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kLeftComplete, 0, 2), 24.0, 1e-9);
}

TEST(CostFormulaTest, RightCompleteCardinalityByHand) {
  CostModel m = TinyModel();
  // #E_right^{0,2}:
  //   k=1 (fragment over [1,2]): P_lb(max(0,0),1) * path(1,2) * P_Ref(2,2)
  //        = (1 - 16/20) * 20 = 4
  //   k=2 (fragment over [0,2]): P_lb(0,0)=1 * path(0,2) = 16   -> 20.
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kRightComplete, 0, 2), 20.0, 1e-9);
}

TEST(CostFormulaTest, StoragePipelineByHand) {
  CostModel m = TinyModel();
  // Tuples of [0..2]: 3 columns x 8 bytes = 24; 4056/24 = 169 per page.
  EXPECT_DOUBLE_EQ(m.TupleBytes(0, 2), 24.0);
  EXPECT_DOUBLE_EQ(m.TuplesPerPage(0, 2), 169.0);
  EXPECT_DOUBLE_EQ(m.PartitionBytes(ExtensionKind::kCanonical, 0, 2),
                   16.0 * 24.0);
  EXPECT_DOUBLE_EQ(m.PartitionPages(ExtensionKind::kCanonical, 0, 2), 1.0);
  // Objects: floor(4056/500)=8 per page, ceil(10/8)=2 pages.
  EXPECT_DOUBLE_EQ(m.ObjectsPerPage(0), 8.0);
  EXPECT_DOUBLE_EQ(m.ObjectPages(0), 2.0);
}

TEST(CostFormulaTest, QnasByHand) {
  CostModel m = TinyModel();
  // Forward Q_{0,2}(fw): 1 + y(ceil(RefBy(0,1,1)), op_1, c_1).
  // RefBy(0,1,1) = 2, op_1 = ceil(20/10) = 2 (size 400 -> 10/page).
  double y = CostModel::Yao(2, 2, 20);
  EXPECT_DOUBLE_EQ(m.QueryNoSupport(QueryDirection::kForward, 0, 2), 1.0 + y);
  // Backward Q_{0,2}(bw): op_0 + y(ceil(RefBy(0,1,d_0)), op_1, c_1).
  double k = std::ceil(16.0 * (1.0 - std::pow(0.875, 8.0)));
  EXPECT_DOUBLE_EQ(m.QueryNoSupport(QueryDirection::kBackward, 0, 2),
                   2.0 + CostModel::Yao(k, 2, 20));
}

TEST(CostFormulaTest, QsupSingleLookupByHand) {
  CostModel m = TinyModel();
  Decomposition none = Decomposition::None(2);
  // Whole-path forward query on a 1-page canonical relation: ht(=0) + nlp.
  // nlp_can = ceil(as / (PageSize * Ref(0,2) * P_RefBy(0,0))); as = 384,
  // Ref(0,2) ~ 5.251 -> ceil(384 / (4056 * 5.251)) = 1.
  EXPECT_DOUBLE_EQ(m.QuerySupported(ExtensionKind::kCanonical,
                                    QueryDirection::kForward, 0, 2, none),
                   1.0);
}

TEST(CostFormulaTest, UpdateObjectTouchCost) {
  CostModel m = TinyModel();
  // The paper charges 3 accesses for touching the object itself (§6); the
  // total is at least that for every extension.
  Decomposition bi = Decomposition::Binary(2);
  for (ExtensionKind x :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    EXPECT_GE(m.UpdateCost(x, 0, bi), 3.0);
    EXPECT_GE(m.UpdateCost(x, 1, bi), 3.0);
  }
  EXPECT_DOUBLE_EQ(m.UpdateCostNoSupport(), 3.0);
}

}  // namespace
}  // namespace asr::cost
