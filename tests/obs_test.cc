// Observability subsystem: JSON writer, metrics registry, trace spans,
// EXPLAIN, and drift reports.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "asr/access_support_relation.h"
#include "asr/decomposition.h"
#include "asr/query.h"
#include "cost/profile.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

// --- JsonWriter ----------------------------------------------------------

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("a");
  json.Int(-3);
  json.Key("b");
  json.BeginArray();
  json.UInt(1);
  json.String("two");
  json.Bool(true);
  json.Null();
  json.EndArray();
  json.Key("c");
  json.BeginObject();
  json.Key("d");
  json.Double(0.5);
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"a\":-3,\"b\":[1,\"two\",true,null],\"c\":{\"d\":0.5}}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(obs::JsonWriter::Escape("a\"b\\c\n\t\x01"),
            "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter json;
  json.BeginArray();
  json.Double(std::nan(""));
  json.Double(INFINITY);
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

// --- Metrics registry ----------------------------------------------------

TEST(MetricsRegistryTest, CountersSetAddAndDump) {
  obs::MetricsRegistry reg;
  reg.Set("b.count", 2);
  reg.Add("a.count", 1);
  reg.Add("a.count", 4);
  EXPECT_EQ(reg.counter("a.count"), 5u);
  EXPECT_EQ(reg.counter("b.count"), 2u);
  EXPECT_TRUE(reg.HasCounter("a.count"));
  EXPECT_FALSE(reg.HasCounter("missing"));
  EXPECT_EQ(reg.counter("missing"), 0u);
  // ToText is sorted by name (std::map storage).
  EXPECT_EQ(reg.ToText(), "a.count 5\nb.count 2\n");
}

TEST(MetricsRegistryTest, MergeFoldsCountersAndHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.Set("x", 1);
  b.Set("x", 2);
  b.Set("y", 7);
  obs::HistogramSnapshot h;
  h.count = 2;
  h.sum = 10;
  h.max = 8;
  h.buckets[3] = 2;  // bucket 3 covers (4, 8]
  a.SetHistogram("lat", h);
  b.SetHistogram("lat", h);
  a.MergeFrom(b);
  EXPECT_EQ(a.counter("x"), 3u);
  EXPECT_EQ(a.counter("y"), 7u);
  EXPECT_EQ(a.histogram("lat").count, 4u);
  EXPECT_EQ(a.histogram("lat").sum, 20u);
  EXPECT_EQ(a.histogram("lat").max, 8u);
}

TEST(MetricsRegistryTest, JsonDumpIsWellFormedObject) {
  obs::MetricsRegistry reg;
  reg.Set("c", 1);
  std::string json = reg.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":1"), std::string::npos);
}

#if ASR_METRICS_ENABLED
TEST(HotHistogramTest, PowerOfTwoBuckets) {
  // Bucket b covers (2^{b-1}, 2^b]; values 0 and 1 land in bucket 0.
  EXPECT_EQ(obs::HotHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(1), 0u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(2), 1u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(4), 2u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(5), 3u);
  EXPECT_EQ(obs::HotHistogram::BucketIndex(1ull << 40),
            obs::kHistogramBuckets - 1);

  obs::HotHistogram h;
  h.Observe(1);
  h.Observe(4);
  h.Observe(100);
  obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 105u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 35.0);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[obs::HotHistogram::BucketIndex(100)], 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}
#endif

// --- Trace spans ---------------------------------------------------------

TEST(SpanTest, InertWithoutContext) {
  obs::ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Attr("ignored", uint64_t{1});  // must not crash
}

TEST(SpanTest, AttributesPageCostsToNestedSpans) {
  storage::Disk disk;
  uint32_t seg = disk.CreateSegment("seg");
  storage::Page page{};
  disk.AllocatePage(seg);
  disk.AllocatePage(seg);

  obs::ProbeFn probe = [&disk] {
    obs::CostProbe p;
    storage::AccessStats st = disk.stats();
    p.page_reads = st.page_reads;
    p.page_writes = st.page_writes;
    return p;
  };

  obs::TraceContext ctx("root", probe);
  {
    obs::ScopedSpan outer("outer");
    ASSERT_TRUE(disk.ReadPage(storage::PageId{seg, 0}, &page).ok());
    {
      obs::ScopedSpan inner("inner");
      inner.Attr("k", std::string("v"));
      ASSERT_TRUE(disk.ReadPage(storage::PageId{seg, 1}, &page).ok());
      ASSERT_TRUE(disk.WritePage(storage::PageId{seg, 1}, page).ok());
    }
  }
  obs::Trace trace = ctx.Finish();
  ASSERT_FALSE(trace.empty());
  const obs::SpanNode& root = trace.root();
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.page_reads, 2u);
  EXPECT_EQ(root.page_writes, 1u);
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.page_reads, 2u);  // includes the nested span
  ASSERT_EQ(outer.children.size(), 1u);
  const obs::SpanNode& inner = *outer.children[0];
  EXPECT_EQ(inner.page_reads, 1u);
  EXPECT_EQ(inner.page_writes, 1u);
  ASSERT_EQ(inner.attrs.size(), 1u);
  EXPECT_EQ(inner.attrs[0].first, "k");

  std::string text = trace.ToText();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("  outer"), std::string::npos);
  EXPECT_NE(text.find("    inner [k=v]"), std::string::npos);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(SpanTest, FinishRestoresEnclosingContext) {
  obs::TraceContext outer("outer", nullptr);
  {
    obs::TraceContext inner("inner", nullptr);
    EXPECT_EQ(obs::TraceContext::Current(), &inner);
    inner.Finish();
  }
  EXPECT_EQ(obs::TraceContext::Current(), &outer);
  outer.Finish();
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
}

// --- EXPLAIN over a synthetic base ---------------------------------------

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cost::ApplicationProfile profile;
    profile.n = 3;
    profile.c = {40, 40, 40, 40};
    profile.d = {35, 35, 35};
    profile.fan = {2, 2, 2};
    ASSERT_TRUE(profile.Validate().ok());
    base_ = workload::SyntheticBase::Generate(profile).value();
    asr_ = AccessSupportRelation::Build(
               base_->store(), base_->path(), ExtensionKind::kFull,
               Decomposition::Of({0, 2, 3}, base_->path().n()).value())
               .value();
  }

  std::unique_ptr<workload::SyntheticBase> base_;
  std::unique_ptr<AccessSupportRelation> asr_;
};

TEST_F(ExplainTest, ForwardSupportedProducesHopSpans) {
  QueryEvaluator eval(base_->store(), &base_->path());
  AsrKey start = AsrKey::FromOid(base_->objects_at(0).front());
  ExplainResult r =
      eval.Explain(QueryDir::kForward, start, 0, 3, asr_.get()).value();
  EXPECT_TRUE(r.used_asr);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.root().name, "query");
  // Two partitions, so a nonempty result needs two hop spans.
  ASSERT_GE(r.trace.root().children.size(), 1u);
  EXPECT_EQ(r.trace.root().children[0]->name, "hop");

  // Same answer as the untraced evaluation.
  std::vector<AsrKey> plain = asr_->EvalForward(start, 0, 3).value();
  EXPECT_EQ(r.keys, plain);
}

TEST_F(ExplainTest, BackwardSupportedProducesHopSpans) {
  QueryEvaluator eval(base_->store(), &base_->path());
  AsrKey start = AsrKey::FromOid(base_->objects_at(0).front());
  std::vector<AsrKey> ends = asr_->EvalForward(start, 0, 3).value();
  ASSERT_FALSE(ends.empty());
  ExplainResult r =
      eval.Explain(QueryDir::kBackward, ends.front(), 0, 3, asr_.get())
          .value();
  EXPECT_TRUE(r.used_asr);
  ASSERT_FALSE(r.trace.empty());
  ASSERT_GE(r.trace.root().children.size(), 1u);
  EXPECT_EQ(r.trace.root().children[0]->name, "hop");
  // The start object must be among the backward answers.
  EXPECT_NE(std::find(r.keys.begin(), r.keys.end(), start), r.keys.end());
}

TEST_F(ExplainTest, NavigationalFallbackWithoutAsr) {
  QueryEvaluator eval(base_->store(), &base_->path());
  AsrKey start = AsrKey::FromOid(base_->objects_at(0).front());
  ExplainResult fwd = eval.Explain(QueryDir::kForward, start, 0, 3).value();
  EXPECT_FALSE(fwd.used_asr);
  ASSERT_FALSE(fwd.trace.empty());
  ASSERT_GE(fwd.trace.root().children.size(), 1u);
  EXPECT_EQ(fwd.trace.root().children[0]->name, "level");

  ASSERT_FALSE(fwd.keys.empty());
  ExplainResult bwd =
      eval.Explain(QueryDir::kBackward, fwd.keys.front(), 0, 3).value();
  EXPECT_FALSE(bwd.used_asr);
  ASSERT_FALSE(bwd.trace.empty());
  EXPECT_EQ(bwd.trace.root().children[0]->name, "extent_scan");
}

#if ASR_METRICS_ENABLED
TEST_F(ExplainTest, ComponentExportsFeedOneRegistry) {
  QueryEvaluator eval(base_->store(), &base_->path());
  AsrKey start = AsrKey::FromOid(base_->objects_at(0).front());
  asr_->EvalForward(start, 0, 3).value();

  obs::MetricsRegistry reg;
  base_->disk()->ExportMetrics(&reg, "disk");
  base_->buffers()->ExportMetrics(&reg, "buffers");
  asr_->ExportMetrics(&reg, "asr");
  eval.ExportMetrics(&reg, "query");
  EXPECT_GT(reg.counter("disk.reads"), 0u);
  EXPECT_EQ(reg.counter("asr.queries.forward"), 1u);
  EXPECT_EQ(reg.counter("asr.hops.lookup"), 2u);
  EXPECT_GT(reg.histogram("asr.frontier_size").count, 0u);
  // Per-partition tree counters are forwarded under the ASR prefix.
  std::string text = reg.ToText();
  EXPECT_NE(text.find(".fwd.descents"), std::string::npos);
}

TEST(MeterTest, BufferOverloadReportsHitMissDeltas) {
  storage::Disk disk;
  uint32_t seg = disk.CreateSegment("seg");
  storage::BufferManager buffers(&disk, /*capacity=*/4);
  storage::PageId id = disk.AllocatePage(seg);

  workload::MeterResult r = workload::Meter(&buffers, [&] {
    buffers.Pin(id);  // cold: miss
    buffers.Pin(id);  // warm: hit
  });
  EXPECT_EQ(r.buffer_misses, 1u);
  EXPECT_EQ(r.buffer_hits, 1u);
  EXPECT_EQ(r.page_reads, 1u);

  // The Disk overload still compiles and slices into AccessStats.
  storage::AccessStats st = workload::Meter(&disk, [&] {
    storage::Page page{};
    ASSERT_TRUE(disk.ReadPage(id, &page).ok());
  });
  EXPECT_EQ(st.page_reads, 1u);
}
#endif

// --- Drift report --------------------------------------------------------

TEST(DriftReportTest, RelativeErrorPerRow) {
  obs::DriftReport report("bench", "profile");
  report.AddRow("exact", 10, 10);
  report.AddRow("off", 10, 15);
  report.AddModelRow("model-only", 42);
  ASSERT_EQ(report.rows().size(), 3u);
  EXPECT_DOUBLE_EQ(report.rows()[0].RelError(), 0.0);
  EXPECT_DOUBLE_EQ(report.rows()[1].RelError(), 0.5);
  EXPECT_FALSE(report.rows()[2].has_observed);
  EXPECT_DOUBLE_EQ(report.MaxRelError(), 0.5);
}

TEST(DriftReportTest, JsonCarriesRowsMetaAndRegistry) {
  obs::DriftReport report("mybench", "fig6");
  report.AddMeta("seed", "7");
  report.AddRow("op1", 4, 5);
  report.metrics()->Set("disk.reads", 11);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"bench\":\"mybench\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\":\"fig6\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":\"7\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"op1\""), std::string::npos);
  EXPECT_NE(json.find("\"rel_error\""), std::string::npos);
  EXPECT_NE(json.find("\"disk.reads\":11"), std::string::npos);
}

TEST(DriftReportTest, WriteFileRoundTrips) {
  obs::DriftReport report("bench", "p");
  report.AddRow("op", 1, 2);
  std::string path = ::testing::TempDir() + "drift_test.json";
  ASSERT_TRUE(report.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), report.ToJson() + "\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asr
