// Tests for the page-based B+ tree storing ASR tuples.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::btree {
namespace {

std::vector<AsrKey> Tuple(std::initializer_list<uint64_t> seqs) {
  std::vector<AsrKey> out;
  for (uint64_t s : seqs) {
    out.push_back(s == 0 ? AsrKey::Null() : AsrKey::FromOid(Oid::Make(1, s)));
  }
  return out;
}

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : buffers_(&disk_, /*capacity=*/64) {}

  storage::Disk disk_;
  storage::BufferManager buffers_;
};

TEST_F(BTreeTest, InsertAndLookup) {
  BTree tree(&buffers_, "t", /*width=*/2, /*key_column=*/0);
  EXPECT_TRUE(tree.Insert(Tuple({1, 10})));
  EXPECT_TRUE(tree.Insert(Tuple({1, 11})));
  EXPECT_TRUE(tree.Insert(Tuple({2, 20})));

  std::vector<std::vector<AsrKey>> rows;
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 1)), &rows);
  EXPECT_EQ(rows.size(), 2u);
  rows.clear();
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 2)), &rows);
  EXPECT_EQ(rows.size(), 1u);
  rows.clear();
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 99)), &rows);
  EXPECT_TRUE(rows.empty());
}

TEST_F(BTreeTest, SetSemanticsDuplicateInsert) {
  BTree tree(&buffers_, "t", 2, 0);
  EXPECT_TRUE(tree.Insert(Tuple({1, 10})));
  EXPECT_FALSE(tree.Insert(Tuple({1, 10})));
  EXPECT_EQ(tree.tuple_count(), 1u);
}

TEST_F(BTreeTest, EraseExactTuple) {
  BTree tree(&buffers_, "t", 2, 0);
  tree.Insert(Tuple({1, 10}));
  tree.Insert(Tuple({1, 11}));
  EXPECT_TRUE(tree.Erase(Tuple({1, 10})));
  EXPECT_FALSE(tree.Erase(Tuple({1, 10})));  // already gone
  EXPECT_FALSE(tree.Erase(Tuple({1, 12})));  // never there
  std::vector<std::vector<AsrKey>> rows;
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 1)), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], AsrKey::FromOid(Oid::Make(1, 11)));
}

TEST_F(BTreeTest, ContainsMatchesLookup) {
  BTree tree(&buffers_, "t", 3, 1);  // keyed on the middle column
  tree.Insert(Tuple({1, 5, 9}));
  EXPECT_TRUE(tree.Contains(AsrKey::FromOid(Oid::Make(1, 5))));
  EXPECT_FALSE(tree.Contains(AsrKey::FromOid(Oid::Make(1, 1))));
  EXPECT_FALSE(tree.Contains(AsrKey::FromOid(Oid::Make(1, 9))));
}

TEST_F(BTreeTest, NullKeysAreStorable) {
  BTree tree(&buffers_, "t", 2, 0);
  EXPECT_TRUE(tree.Insert({AsrKey::Null(), AsrKey::FromOid(Oid::Make(1, 7))}));
  std::vector<std::vector<AsrKey>> rows;
  tree.Lookup(AsrKey::Null(), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].IsNull());
}

TEST_F(BTreeTest, ManyInsertsSplitAndStaySorted) {
  BTree tree(&buffers_, "t", 2, 0);
  Rng rng(3);
  std::set<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(1000000) + 1;
    bool fresh = keys.insert(k).second;
    EXPECT_EQ(tree.Insert(Tuple({k, k})), fresh);
  }
  EXPECT_EQ(tree.tuple_count(), keys.size());
  EXPECT_GT(tree.leaf_page_count(), 1u);
  EXPECT_GE(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckIntegrity().ok());

  // Full scan yields every key exactly once, in order.
  std::vector<uint64_t> scanned;
  ASSERT_TRUE(tree.ScanAll([&](const std::vector<AsrKey>& row) {
                    scanned.push_back(row[0].ToOid().seq());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(scanned.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  std::vector<uint64_t> expected(keys.begin(), keys.end());
  EXPECT_EQ(scanned, expected);
}

TEST_F(BTreeTest, LargeClustersSpanLeaves) {
  BTree tree(&buffers_, "t", 2, 0);
  // One key with far more tuples than fit on a single leaf.
  for (uint64_t v = 1; v <= 2000; ++v) {
    ASSERT_TRUE(tree.Insert(Tuple({42, v})));
  }
  for (uint64_t v = 1; v <= 100; ++v) {
    ASSERT_TRUE(tree.Insert(Tuple({7, v})));
    ASSERT_TRUE(tree.Insert(Tuple({99, v})));
  }
  std::vector<std::vector<AsrKey>> rows;
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 42)), &rows);
  EXPECT_EQ(rows.size(), 2000u);
  std::set<uint64_t> values;
  for (const auto& row : rows) values.insert(row[1].ToOid().seq());
  EXPECT_EQ(values.size(), 2000u);
}

TEST_F(BTreeTest, EraseUnderChurn) {
  BTree tree(&buffers_, "t", 2, 0);
  Rng rng(17);
  std::set<std::pair<uint64_t, uint64_t>> reference;
  for (int op = 0; op < 30000; ++op) {
    uint64_t k = rng.Uniform(50) + 1;
    uint64_t v = rng.Uniform(50) + 1;
    if (rng.Bernoulli(0.6)) {
      bool fresh = reference.insert({k, v}).second;
      EXPECT_EQ(tree.Insert(Tuple({k, v})), fresh);
    } else {
      bool present = reference.erase({k, v}) > 0;
      EXPECT_EQ(tree.Erase(Tuple({k, v})), present);
    }
  }
  EXPECT_EQ(tree.tuple_count(), reference.size());
  for (uint64_t k = 1; k <= 50; ++k) {
    std::vector<std::vector<AsrKey>> rows;
    tree.Lookup(AsrKey::FromOid(Oid::Make(1, k)), &rows);
    size_t expected = 0;
    for (const auto& [rk, rv] : reference) {
      if (rk == k) ++expected;
    }
    EXPECT_EQ(rows.size(), expected) << "cluster " << k;
  }
}

TEST_F(BTreeTest, StatisticsTrackGrowth) {
  BTree tree(&buffers_, "t", 4, 0);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.leaf_page_count(), 1u);
  uint32_t leaf_cap = tree.leaf_capacity();
  for (uint64_t i = 1; i <= static_cast<uint64_t>(leaf_cap) + 1; ++i) {
    tree.Insert(Tuple({i, i, i, i}));
  }
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.leaf_page_count(), 2u);
  EXPECT_EQ(tree.inner_page_count(), 1u);
}

TEST_F(BTreeTest, WideTuplesRoundTrip) {
  for (uint32_t width : {2u, 3u, 5u, 6u}) {
    BTree tree(&buffers_, "w" + std::to_string(width), width, width - 1);
    std::vector<AsrKey> tuple;
    for (uint32_t c = 0; c < width; ++c) {
      tuple.push_back(AsrKey::FromOid(Oid::Make(c + 1, 100 + c)));
    }
    ASSERT_TRUE(tree.Insert(tuple));
    std::vector<std::vector<AsrKey>> rows;
    tree.Lookup(tuple.back(), &rows);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], tuple);
  }
}

TEST_F(BTreeTest, LookupCostIsHeightPlusLeaves) {
  BTree tree(&buffers_, "t", 2, 0);
  for (uint64_t i = 1; i <= 50000; ++i) tree.Insert(Tuple({i, i}));
  ASSERT_GE(tree.height(), 1u);
  ASSERT_TRUE(buffers_.FlushAll().ok());

  storage::Disk* disk = buffers_.disk();
  storage::AccessStats before = disk->stats();
  std::vector<std::vector<AsrKey>> rows;
  tree.Lookup(AsrKey::FromOid(Oid::Make(1, 25000)), &rows);
  storage::AccessStats delta = disk->stats() - before;
  ASSERT_EQ(rows.size(), 1u);
  // Root-to-leaf path: height inner pages plus 1-2 leaf pages for a
  // singleton cluster (some may be buffer hits).
  EXPECT_LE(delta.page_reads, tree.height() + 2);
}

// --- Leaf compression & batched probes (CPU micro-optimizations) ---------

TEST_F(BTreeTest, BulkLoadCompressesDenseKeyRuns) {
  BTree tree(&buffers_, "t", 2, 0);
  std::vector<std::vector<AsrKey>> tuples;
  for (uint64_t i = 1; i <= 30000; ++i) tuples.push_back(Tuple({i, i}));
  ASSERT_TRUE(tree.BulkLoad(tuples).ok());

  // Dense OID runs fit 1/2-byte deltas: every packed leaf compresses. The
  // leaf count (the model-validated quantity) is unaffected by the format.
  BTree::LeafFormatCounts counts = tree.CountLeafFormats().value();
  EXPECT_GT(counts.compressed, 0u);
  EXPECT_EQ(counts.compressed + counts.plain, tree.leaf_page_count());
  EXPECT_TRUE(tree.CheckIntegrity().ok());

  std::vector<uint64_t> scanned;
  ASSERT_TRUE(tree.ScanAll([&](const std::vector<AsrKey>& row) {
                    scanned.push_back(row[0].ToOid().seq());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(scanned.size(), 30000u);
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST_F(BTreeTest, SplitsProduceCompressedLeavesOnInsertPath) {
  BTree tree(&buffers_, "t", 2, 0);
  // Grow past several splits: fresh leaves start plain, but every split
  // re-encodes both halves, which compresses dense runs.
  for (uint64_t i = 1; i <= 5 * tree.leaf_capacity(); ++i) {
    ASSERT_TRUE(tree.Insert(Tuple({i, i})));
  }
  BTree::LeafFormatCounts counts = tree.CountLeafFormats().value();
  EXPECT_GT(counts.compressed, 0u);
  EXPECT_TRUE(tree.CheckIntegrity().ok());
}

TEST_F(BTreeTest, WideKeySpanFallsBackToPlainLeaves) {
  BTree tree(&buffers_, "t", 2, 0);
  std::vector<std::vector<AsrKey>> tuples;
  // Adjacent keys 2^33 apart: no leaf with two entries can hold the span in
  // a 4-byte delta (seq is 40 bits, so stay under 120 keys).
  for (uint64_t i = 0; i < 120; ++i) {
    tuples.push_back(Tuple({1 + (i << 33), i + 1}));
  }
  ASSERT_TRUE(tree.BulkLoad(tuples).ok());
  BTree::LeafFormatCounts counts = tree.CountLeafFormats().value();
  EXPECT_EQ(counts.compressed, 0u);
  EXPECT_GT(counts.plain, 0u);
  EXPECT_TRUE(tree.CheckIntegrity().ok());
  for (uint64_t i = 0; i < 120; ++i) {
    EXPECT_TRUE(tree.Contains(AsrKey::FromOid(Oid::Make(1, 1 + (i << 33)))));
  }
}

// The batched probe must be indistinguishable from scalar probes in what it
// delivers: same rows, same per-key attribution, same order — across
// tuple widths/key columns (the decompositions the ASR eval paths use),
// absent keys, multi-leaf duplicate clusters, and early stops.
TEST_F(BTreeTest, LookupBatchMatchesScalarProbes) {
  struct Config {
    uint32_t width;
    uint32_t key_col;
  };
  Rng rng(29);
  for (Config cfg : {Config{2, 0}, Config{3, 1}, Config{4, 3}}) {
    BTree tree(&buffers_, "b" + std::to_string(cfg.width), cfg.width,
               cfg.key_col);
    for (int i = 0; i < 20000; ++i) {
      std::vector<AsrKey> t;
      for (uint32_t c = 0; c < cfg.width; ++c) {
        uint64_t seq =
            c == cfg.key_col ? rng.Uniform(3000) + 1 : rng.Uniform(40) + 1;
        t.push_back(AsrKey::FromOid(Oid::Make(1, seq)));
      }
      tree.Insert(t);
    }
    // Both leaf formats must be in play for the comparison to mean much.
    BTree::LeafFormatCounts counts = tree.CountLeafFormats().value();
    EXPECT_GT(counts.compressed, 0u) << "width " << cfg.width;

    // Probe every key in [1, 3200]: present, absent past 3000, clusters.
    std::vector<AsrKey> keys;
    for (uint64_t k = 1; k <= 3200; ++k) {
      keys.push_back(AsrKey::FromOid(Oid::Make(1, k)));
    }
    using Hit = std::pair<size_t, std::vector<AsrKey>>;
    std::vector<Hit> want;
    for (size_t i = 0; i < keys.size(); ++i) {
      tree.LookupEach(keys[i], [&](const std::vector<AsrKey>& row) {
        want.push_back({i, row});
        return true;
      });
    }
    std::vector<Hit> got;
    tree.LookupBatch(keys, [&](size_t i, const std::vector<AsrKey>& row) {
      got.push_back({i, row});
      return true;
    });
    EXPECT_EQ(want, got) << "width " << cfg.width;

    // Early stop: the batch delivers exactly the scalar prefix, then halts.
    constexpr size_t kStop = 7;
    std::vector<Hit> partial;
    tree.LookupBatch(keys, [&](size_t i, const std::vector<AsrKey>& row) {
      partial.push_back({i, row});
      return partial.size() < kStop;
    });
    ASSERT_EQ(partial.size(), std::min(kStop, want.size()));
    std::vector<Hit> prefix(want.begin(), want.begin() + partial.size());
    EXPECT_EQ(prefix, partial) << "width " << cfg.width;
  }
}

TEST_F(BTreeTest, LookupBatchOnEmptyTreeDeliversNothing) {
  BTree tree(&buffers_, "t", 2, 0);
  std::vector<AsrKey> keys = {AsrKey::FromOid(Oid::Make(1, 1)),
                              AsrKey::FromOid(Oid::Make(1, 2))};
  tree.LookupBatch(keys, [&](size_t, const std::vector<AsrKey>&) {
    ADD_FAILURE() << "empty tree delivered a row";
    return true;
  });
}

}  // namespace
}  // namespace asr::btree
