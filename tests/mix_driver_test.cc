// Tests for the empirical operation-mix driver and the skewed-sharing
// workload generation.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/mix_driver.h"
#include "workload/profile_estimator.h"
#include "workload/synthetic_base.h"

namespace asr::workload {
namespace {

cost::ApplicationProfile SmallProfile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {60, 120, 200, 150};
  p.d = {50, 100, 160};
  p.fan = {2, 1, 2};
  p.size = {200, 200, 200, 120};
  return p;
}

TEST(MixDriverTest, RunsMixedOperationsAndMeters) {
  auto base = SyntheticBase::Generate(SmallProfile(), {1, 0}).value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(3))
                 .value();
  cost::OperationMix mix;
  mix.queries = {{0.7, cost::QueryDirection::kBackward, 0, 3},
                 {0.3, cost::QueryDirection::kForward, 0, 2}};
  mix.updates = {{1.0, 2}};

  MixDriver driver(base.get(), asr.get(), 9);
  MixRunResult result = driver.Run(mix, 0.4, 50).value();
  EXPECT_EQ(result.operations, 50u);
  EXPECT_EQ(result.queries + result.updates, 50u);
  EXPECT_GT(result.updates, 5u);   // ~20 expected
  EXPECT_GT(result.queries, 15u);  // ~30 expected
  EXPECT_GT(result.total_page_accesses, 0u);
  EXPECT_GT(result.PerOperation(), 0.0);

  // The ASR must still be consistent after the driver's real updates.
  auto rebuilt = AccessSupportRelation::Build(base->store(), base->path(),
                                              ExtensionKind::kFull,
                                              Decomposition::Binary(3))
                     .value();
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    EXPECT_TRUE(asr->DumpPartition(p).value().EqualsAsSet(
        rebuilt->DumpPartition(p).value()))
        << "partition " << p;
  }
}

TEST(MixDriverTest, SupportedMixIsCheaperThanNavigational) {
  cost::OperationMix mix;
  mix.queries = {{1.0, cost::QueryDirection::kBackward, 0, 3}};
  mix.updates = {{1.0, 1}};

  double nosup;
  {
    auto base = SyntheticBase::Generate(SmallProfile(), {2, 0}).value();
    MixDriver driver(base.get(), nullptr, 5);
    nosup = driver.Run(mix, 0.1, 30).value().PerOperation();
  }
  double supported;
  {
    auto base = SyntheticBase::Generate(SmallProfile(), {2, 0}).value();
    auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                            ExtensionKind::kLeftComplete,
                                            Decomposition::Binary(3))
                   .value();
    ASSERT_TRUE(base->buffers()->FlushAll().ok());
    MixDriver driver(base.get(), asr.get(), 5);
    supported = driver.Run(mix, 0.1, 30).value().PerOperation();
  }
  EXPECT_LT(supported, nosup / 2);
}

TEST(MixDriverTest, RejectsEmptyMixAndBadPositions) {
  auto base = SyntheticBase::Generate(SmallProfile(), {3, 0}).value();
  MixDriver driver(base.get(), nullptr, 1);
  EXPECT_TRUE(driver.Run(cost::OperationMix{}, 0.5, 10)
                  .status()
                  .IsInvalidArgument());
  cost::OperationMix bad;
  bad.updates = {{1.0, 99}};
  EXPECT_TRUE(driver.Run(bad, 1.0, 1).status().IsInvalidArgument());
}

TEST(SkewedSharingTest, SharParameterConcentratesReferences) {
  cost::ApplicationProfile profile = SmallProfile();
  profile.shar = {5.0, 1.0, 1.0};  // heavy sharing on the first hop

  auto base = SyntheticBase::Generate(profile, {11, 64}).value();
  const PathStep& step = base->path().step(1);
  std::unordered_set<uint64_t> distinct_targets;
  uint64_t edges = 0;
  for (Oid o : base->objects_at(0)) {
    AsrKey v = base->store()->GetAttributeByName(o, step.attr_name).value();
    if (v.IsNull()) continue;
    gom::SetView view = base->store()->GetSet(v.ToOid()).value();
    for (AsrKey m : view.members) {
      distinct_targets.insert(m.raw());
      ++edges;
    }
  }
  // d_0 * fan_0 = 100 references over ~e_1 = 100/5 = 20 distinct targets.
  EXPECT_EQ(edges, 100u);
  EXPECT_LE(distinct_targets.size(), 25u);
  EXPECT_GE(distinct_targets.size(), 15u);

  // The estimator measures the skew back.
  cost::ApplicationProfile est =
      EstimateProfile(base->store(), base->path()).value();
  EXPECT_GT(est.shar[0], 3.0);
  EXPECT_LT(est.shar[0], 7.0);
}

}  // namespace
}  // namespace asr::workload
