// Tests for the §7 self-tuning loop: profile estimation from a live base,
// usage recording, and the auto tuner that ties them to the design advisor.
#include <gtest/gtest.h>

#include "advisor/auto_tuner.h"
#include "workload/profile_estimator.h"
#include "workload/synthetic_base.h"
#include "workload/usage_recorder.h"

namespace asr {
namespace {

cost::ApplicationProfile Profile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {100, 200, 300, 150};
  p.d = {80, 150, 200};
  p.fan = {2, 1, 3};
  p.size = {500, 400, 300, 100};
  return p;
}

TEST(ProfileEstimatorTest, RecoversGeneratedStatistics) {
  auto base = workload::SyntheticBase::Generate(Profile(), {3, 64}).value();
  cost::ApplicationProfile est =
      workload::EstimateProfile(base->store(), base->path()).value();

  const cost::ApplicationProfile truth = Profile();
  ASSERT_EQ(est.n, truth.n);
  for (uint32_t i = 0; i <= truth.n; ++i) {
    EXPECT_DOUBLE_EQ(est.c[i], truth.c[i]) << "c_" << i;
  }
  for (uint32_t i = 0; i < truth.n; ++i) {
    EXPECT_DOUBLE_EQ(est.d[i], truth.d[i]) << "d_" << i;
    EXPECT_DOUBLE_EQ(est.fan[i], truth.fan[i]) << "fan_" << i;
    EXPECT_GE(est.shar[i], 1.0) << "shar_" << i;
  }
  // Effective sizes include slotted-page and co-located-set overhead but
  // stay in the declared ballpark.
  for (uint32_t i = 0; i <= truth.n; ++i) {
    EXPECT_GE(est.size[i], truth.size[i] * 0.8) << "size_" << i;
    EXPECT_LE(est.size[i], truth.size[i] * 1.8 + 64) << "size_" << i;
  }
}

TEST(ProfileEstimatorTest, TracksUpdatesToTheBase) {
  auto base = workload::SyntheticBase::Generate(Profile(), {3, 64}).value();
  gom::ObjectStore* store = base->store();
  const PathStep& step = base->path().step(2);  // single-valued level 1

  // Clear ten defined attributes at level 1.
  int cleared = 0;
  for (Oid o : base->objects_at(1)) {
    if (cleared == 10) break;
    AsrKey v = store->GetAttributeByName(o, step.attr_name).value();
    if (v.IsNull()) continue;
    ASSERT_TRUE(
        store->SetAttributeByName(o, step.attr_name, AsrKey::Null()).ok());
    ++cleared;
  }
  cost::ApplicationProfile est =
      workload::EstimateProfile(store, base->path()).value();
  EXPECT_DOUBLE_EQ(est.d[1], Profile().d[1] - 10);
}

TEST(ProfileEstimatorTest, AtomicTerminalCountsDistinctValues) {
  gom::Schema schema;
  TypeId t = schema
                 .DefineTupleType("T", {},
                                  {{"Tag", gom::Schema::kStringType,
                                    kInvalidTypeId}})
                 .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  gom::ObjectStore store(&schema, &buffers);
  for (int i = 0; i < 30; ++i) {
    Oid o = store.CreateObject(t).value();
    ASSERT_TRUE(store.SetString(o, "Tag", i % 2 == 0 ? "even" : "odd").ok());
  }
  PathExpression path = PathExpression::Parse(schema, t, "Tag").value();
  cost::ApplicationProfile est =
      workload::EstimateProfile(&store, path).value();
  EXPECT_DOUBLE_EQ(est.c[0], 30.0);
  EXPECT_DOUBLE_EQ(est.d[0], 30.0);
  EXPECT_DOUBLE_EQ(est.c[1], 2.0);  // "even", "odd"
}

TEST(UsageRecorderTest, AggregatesOperations) {
  workload::UsageRecorder recorder;
  recorder.RecordQuery(cost::QueryDirection::kBackward, 0, 3);
  recorder.RecordQuery(cost::QueryDirection::kBackward, 0, 3);
  recorder.RecordQuery(cost::QueryDirection::kForward, 1, 2);
  recorder.RecordUpdate(2);

  EXPECT_EQ(recorder.query_count(), 3u);
  EXPECT_EQ(recorder.update_count(), 1u);
  EXPECT_DOUBLE_EQ(recorder.UpdateProbability(), 0.25);

  cost::OperationMix mix = recorder.ToMix();
  ASSERT_EQ(mix.queries.size(), 2u);
  ASSERT_EQ(mix.updates.size(), 1u);
  double total_q = 0;
  for (const auto& q : mix.queries) total_q += q.weight;
  EXPECT_DOUBLE_EQ(total_q, 1.0);
  EXPECT_DOUBLE_EQ(mix.updates[0].weight, 1.0);
  EXPECT_EQ(mix.updates[0].position, 2u);
}

TEST(UsageRecorderTest, ResetClearsHistory) {
  workload::UsageRecorder recorder;
  recorder.RecordQuery(cost::QueryDirection::kForward, 0, 1);
  recorder.RecordUpdate(0);
  recorder.Reset();
  EXPECT_EQ(recorder.operation_count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.UpdateProbability(), 0.0);

  // Recording after a Reset starts a fresh history.
  recorder.RecordUpdate(3);
  EXPECT_EQ(recorder.update_count(), 1u);
  cost::OperationMix mix = recorder.ToMix();
  EXPECT_TRUE(mix.queries.empty());
  ASSERT_EQ(mix.updates.size(), 1u);
  EXPECT_EQ(mix.updates[0].position, 3u);
}

TEST(UsageRecorderTest, EmptyRecorderYieldsEmptyMix) {
  workload::UsageRecorder recorder;
  cost::OperationMix mix = recorder.ToMix();
  EXPECT_TRUE(mix.queries.empty());
  EXPECT_TRUE(mix.updates.empty());
  EXPECT_EQ(recorder.operation_count(), 0u);
  EXPECT_DOUBLE_EQ(recorder.UpdateProbability(), 0.0);
}

TEST(UsageRecorderTest, NormalizesWeightsWithinEachClass) {
  workload::UsageRecorder recorder;
  // 3:1 among queries, 1:1 among updates — weights normalize per class,
  // independent of the query/update split.
  for (int k = 0; k < 3; ++k) {
    recorder.RecordQuery(cost::QueryDirection::kBackward, 0, 4);
  }
  recorder.RecordQuery(cost::QueryDirection::kForward, 0, 2);
  recorder.RecordUpdate(1);
  recorder.RecordUpdate(2);

  cost::OperationMix mix = recorder.ToMix();
  ASSERT_EQ(mix.queries.size(), 2u);
  ASSERT_EQ(mix.updates.size(), 2u);
  double qsum = 0;
  for (const auto& q : mix.queries) {
    qsum += q.weight;
    EXPECT_TRUE(q.weight == 0.75 || q.weight == 0.25);
  }
  EXPECT_DOUBLE_EQ(qsum, 1.0);
  EXPECT_DOUBLE_EQ(mix.updates[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(mix.updates[1].weight, 0.5);
  EXPECT_DOUBLE_EQ(recorder.UpdateProbability(), 2.0 / 6.0);
}

TEST(AutoTunerTest, RefusesEmptyHistory) {
  auto base = workload::SyntheticBase::Generate(Profile(), {3, 64}).value();
  workload::UsageRecorder recorder;
  EXPECT_TRUE(advisor::AutoTuner::Tune(base->store(), base->path(), recorder)
                  .status()
                  .IsInvalidArgument());
}

TEST(AutoTunerTest, TunesAndMaterializes) {
  auto base = workload::SyntheticBase::Generate(Profile(), {3, 64}).value();
  workload::UsageRecorder recorder;
  for (int i = 0; i < 95; ++i) {
    recorder.RecordQuery(cost::QueryDirection::kBackward, 0, 3);
  }
  for (int i = 0; i < 5; ++i) recorder.RecordUpdate(2);

  advisor::TuningResult result =
      advisor::AutoTuner::Tune(base->store(), base->path(), recorder)
          .value();
  EXPECT_DOUBLE_EQ(result.update_probability, 0.05);
  EXPECT_LT(result.chosen.normalized, 1.0);
  ASSERT_NE(result.asr, nullptr);
  EXPECT_EQ(result.asr->kind(), result.chosen.kind);

  // The materialized ASR must support the recorded query.
  EXPECT_TRUE(result.asr->SupportsQuery(0, 3));
  AsrKey target = AsrKey::FromOid(base->objects_at(3)[0]);
  EXPECT_TRUE(result.asr->EvalBackward(target, 0, 3).ok());
}

TEST(AutoTunerTest, HonorsStorageBudget) {
  auto base = workload::SyntheticBase::Generate(Profile(), {3, 64}).value();
  workload::UsageRecorder recorder;
  recorder.RecordQuery(cost::QueryDirection::kBackward, 0, 3);
  recorder.RecordUpdate(1);

  advisor::AutoTuner::Options options;
  options.materialize = false;
  advisor::TuningResult free_choice =
      advisor::AutoTuner::Tune(base->store(), base->path(), recorder, options)
          .value();
  options.max_storage_bytes = free_choice.chosen.storage_bytes * 0.6;
  advisor::TuningResult constrained =
      advisor::AutoTuner::Tune(base->store(), base->path(), recorder, options)
          .value();
  EXPECT_LE(constrained.chosen.storage_bytes,
            free_choice.chosen.storage_bytes);
  EXPECT_EQ(constrained.asr, nullptr);  // materialize = false
}

}  // namespace
}  // namespace asr
