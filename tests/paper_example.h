// Shared test fixture: the Company database of the paper's Figure 2.
//
//   type Company is {Division};
//   type Division is [Name: STRING, Manufactures: ProdSET];
//   type ProdSET is {Product};
//   type Product is [Name: STRING, Composition: BasePartSET];
//   type BasePartSET is {BasePart};
//   type BasePart is [Name: STRING, Price: DECIMAL];
//
// Extension (Figure 2): divisions Auto (-> ProdSET {560 SEC}), Truck
// (-> ProdSET {560 SEC, MB Trak}), Space (Manufactures NULL); products
// 560 SEC (-> {Door}), MB Trak (Composition NULL), Sausage (-> {Pepper});
// i10 is a BasePartSET referenced by no product.
#ifndef ASR_TESTS_PAPER_EXAMPLE_H_
#define ASR_TESTS_PAPER_EXAMPLE_H_

#include <memory>

#include "asr/path_expression.h"
#include "common/macros.h"
#include "gom/object_store.h"
#include "gom/type_system.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::testing {

struct CompanyBase {
  CompanyBase() = default;
  explicit CompanyBase(const storage::DiskOptions& disk_options)
      : disk(disk_options) {}

  gom::Schema schema;
  storage::Disk disk;
  storage::BufferManager buffers{&disk, 0};
  std::unique_ptr<gom::ObjectStore> store;

  TypeId division_type = kInvalidTypeId;
  TypeId prodset_type = kInvalidTypeId;
  TypeId product_type = kInvalidTypeId;
  TypeId basepartset_type = kInvalidTypeId;
  TypeId basepart_type = kInvalidTypeId;

  // The paper's instance names.
  Oid auto_division, truck_division, space_division;   // i1, i2, i3
  Oid prodset_auto, prodset_truck;                     // i4, i5
  Oid sec560, mbtrak, sausage;                         // i6, i9, i11
  Oid parts_560, parts_unused, parts_sausage;          // i7, i10, i13
  Oid door, pepper;                                    // i8, i14

  AsrKey Key(Oid oid) const { return AsrKey::FromOid(oid); }
  AsrKey Name(const char* s) {
    return AsrKey::FromString(s, store->string_dict());
  }
};

// `disk_options` picks the storage backend; the default follows the
// environment (like a bare Disk), so ASR_STORAGE_BACKEND=file flips every
// fixture-based test at once.
inline std::unique_ptr<CompanyBase> MakeCompanyBase(
    const storage::DiskOptions& disk_options = storage::DiskOptions::FromEnv()) {
  auto base = std::make_unique<CompanyBase>(disk_options);
  gom::Schema& s = base->schema;

  TypeId basepart =
      s.DefineTupleType(
           "BasePart", {},
           {{"Name", gom::Schema::kStringType, kInvalidTypeId},
            {"Price", gom::Schema::kDecimalType, kInvalidTypeId}})
          .value();
  TypeId basepartset = s.DefineSetType("BasePartSET", basepart).value();
  TypeId product =
      s.DefineTupleType("Product", {},
                        {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                         {"Composition", basepartset, kInvalidTypeId}})
          .value();
  TypeId prodset = s.DefineSetType("ProdSET", product).value();
  TypeId division =
      s.DefineTupleType("Division", {},
                        {{"Name", gom::Schema::kStringType, kInvalidTypeId},
                         {"Manufactures", prodset, kInvalidTypeId}})
          .value();

  base->division_type = division;
  base->prodset_type = prodset;
  base->product_type = product;
  base->basepartset_type = basepartset;
  base->basepart_type = basepart;

  base->store =
      std::make_unique<gom::ObjectStore>(&base->schema, &base->buffers);
  gom::ObjectStore& st = *base->store;

  auto obj = [&](TypeId t) { return st.CreateObject(t).value(); };
  auto set = [&](TypeId t) { return st.CreateSet(t).value(); };

  base->auto_division = obj(division);
  base->truck_division = obj(division);
  base->space_division = obj(division);
  base->prodset_auto = set(prodset);
  base->prodset_truck = set(prodset);
  base->sec560 = obj(product);
  base->mbtrak = obj(product);
  base->sausage = obj(product);
  base->parts_560 = set(basepartset);
  base->parts_unused = set(basepartset);
  base->parts_sausage = set(basepartset);
  base->door = obj(basepart);
  base->pepper = obj(basepart);

  ASR_CHECK(st.SetString(base->auto_division, "Name", "Auto").ok());
  ASR_CHECK(st.SetString(base->truck_division, "Name", "Truck").ok());
  ASR_CHECK(st.SetString(base->space_division, "Name", "Space").ok());
  ASR_CHECK(st.SetRef(base->auto_division, "Manufactures",
                      base->prodset_auto).ok());
  ASR_CHECK(st.SetRef(base->truck_division, "Manufactures",
                      base->prodset_truck).ok());
  // Space division: Manufactures stays NULL.

  ASR_CHECK(st.AddToSet(base->prodset_auto,
                        AsrKey::FromOid(base->sec560)).ok());
  ASR_CHECK(st.AddToSet(base->prodset_truck,
                        AsrKey::FromOid(base->sec560)).ok());
  ASR_CHECK(st.AddToSet(base->prodset_truck,
                        AsrKey::FromOid(base->mbtrak)).ok());

  ASR_CHECK(st.SetString(base->sec560, "Name", "560 SEC").ok());
  ASR_CHECK(st.SetString(base->mbtrak, "Name", "MB Trak").ok());
  ASR_CHECK(st.SetString(base->sausage, "Name", "Sausage").ok());
  ASR_CHECK(st.SetRef(base->sec560, "Composition", base->parts_560).ok());
  // MB Trak: Composition stays NULL.
  ASR_CHECK(st.SetRef(base->sausage, "Composition", base->parts_sausage).ok());

  ASR_CHECK(st.AddToSet(base->parts_560, AsrKey::FromOid(base->door)).ok());
  ASR_CHECK(st.AddToSet(base->parts_unused,
                        AsrKey::FromOid(base->door)).ok());
  ASR_CHECK(st.AddToSet(base->parts_sausage,
                        AsrKey::FromOid(base->pepper)).ok());

  ASR_CHECK(st.SetString(base->door, "Name", "Door").ok());
  ASR_CHECK(st.SetDecimal(base->door, "Price", 1205.50).ok());
  ASR_CHECK(st.SetString(base->pepper, "Name", "Pepper").ok());
  ASR_CHECK(st.SetDecimal(base->pepper, "Price", 0.12).ok());

  return base;
}

// The path Division.Manufactures.Composition.Name of the paper's §3 example.
inline PathExpression MakeCompanyPath(const CompanyBase& base) {
  return PathExpression::Parse(base.schema, base.division_type,
                               "Manufactures.Composition.Name")
      .value();
}

}  // namespace asr::testing

#endif  // ASR_TESTS_PAPER_EXAMPLE_H_
