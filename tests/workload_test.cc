// Tests for the synthetic object-base generator: the generated base must
// realize the profile's statistics, and metered scans must match the cost
// model's page estimates.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace asr::workload {
namespace {

cost::ApplicationProfile Profile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {100, 200, 300, 150};
  p.d = {80, 150, 200};
  p.fan = {2, 1, 3};
  p.size = {500, 400, 300, 100};
  return p;
}

TEST(SyntheticBaseTest, RealizesObjectCounts) {
  auto base = SyntheticBase::Generate(Profile()).value();
  gom::ObjectStore* store = base->store();
  EXPECT_EQ(store->ObjectCount(base->type_at(0)), 100u);
  EXPECT_EQ(store->ObjectCount(base->type_at(1)), 200u);
  EXPECT_EQ(store->ObjectCount(base->type_at(2)), 300u);
  EXPECT_EQ(store->ObjectCount(base->type_at(3)), 150u);
  EXPECT_EQ(base->objects_at(0).size(), 100u);
}

TEST(SyntheticBaseTest, RealizesDefinedCountsAndFan) {
  auto base = SyntheticBase::Generate(Profile()).value();
  gom::ObjectStore* store = base->store();
  const cost::ApplicationProfile p = Profile();
  for (uint32_t i = 0; i < 3; ++i) {
    uint64_t defined = 0;
    uint64_t edges = 0;
    const PathStep& step = base->path().step(i + 1);
    for (Oid o : base->objects_at(i)) {
      AsrKey v = store->GetAttributeByName(o, step.attr_name).value();
      if (v.IsNull()) continue;
      ++defined;
      if (step.set_occurrence) {
        edges += store->GetSet(v.ToOid())->members.size();
      } else {
        edges += 1;
      }
    }
    EXPECT_EQ(defined, static_cast<uint64_t>(p.d[i])) << "level " << i;
    EXPECT_EQ(edges, static_cast<uint64_t>(p.d[i] * p.fan[i]))
        << "level " << i;
  }
}

TEST(SyntheticBaseTest, DeterministicForSeed) {
  auto a = SyntheticBase::Generate(Profile(), GenerateOptions{99, 0}).value();
  auto b = SyntheticBase::Generate(Profile(), GenerateOptions{99, 0}).value();
  // Same structure: compare the edge sets of level 0.
  const PathStep& step = a->path().step(1);
  for (size_t i = 0; i < a->objects_at(0).size(); ++i) {
    AsrKey va =
        a->store()->GetAttributeByName(a->objects_at(0)[i], step.attr_name)
            .value();
    AsrKey vb =
        b->store()->GetAttributeByName(b->objects_at(0)[i], step.attr_name)
            .value();
    EXPECT_EQ(va.IsNull(), vb.IsNull());
    if (!va.IsNull()) {
      auto ma = a->store()->GetSet(va.ToOid())->members;
      auto mb = b->store()->GetSet(vb.ToOid())->members;
      EXPECT_EQ(ma, mb);
    }
  }
}

TEST(SyntheticBaseTest, ObjectPagesMatchModel) {
  auto base = SyntheticBase::Generate(Profile()).value();
  cost::CostModel model(Profile());
  // Levels without co-located sets must match op_i almost exactly; levels
  // with sets carry the co-located set records (documented deviation).
  for (uint32_t i = 0; i <= 3; ++i) {
    double modeled = model.ObjectPages(i);
    double actual = base->store()->PageCount(base->type_at(i));
    EXPECT_GE(actual, modeled * 0.9) << "level " << i;
    EXPECT_LE(actual, modeled * 1.6 + 2) << "level " << i;
  }
}

TEST(SyntheticBaseTest, ExtentScanCostTracksOpI) {
  auto base = SyntheticBase::Generate(Profile()).value();
  storage::Disk* disk = base->disk();
  for (uint32_t i = 0; i <= 3; ++i) {
    storage::AccessStats cost = Meter(disk, [&] {
      ASSERT_TRUE(base->store()
                      ->ScanTuples(base->type_at(i),
                                   [](const gom::TupleView&) {
                                     return Status::OK();
                                   })
                      .ok());
    });
    EXPECT_EQ(cost.page_reads, base->store()->PageCount(base->type_at(i)));
    EXPECT_EQ(cost.page_writes, 0u);
  }
}

TEST(SyntheticBaseTest, PathTraversalReachesTerminalLevel) {
  auto base = SyntheticBase::Generate(Profile()).value();
  // At least one complete path should exist with these densities.
  const PathExpression& path = base->path();
  gom::ObjectStore* store = base->store();
  int complete = 0;
  for (Oid o : base->objects_at(0)) {
    AsrKey cur = AsrKey::FromOid(o);
    for (uint32_t q = 1; q <= path.n() && !cur.IsNull(); ++q) {
      const PathStep& step = path.step(q);
      AsrKey v = store->GetAttributeByName(cur.ToOid(), step.attr_name)
                     .value();
      if (v.IsNull()) {
        cur = AsrKey::Null();
        break;
      }
      if (step.set_occurrence) {
        auto members = store->GetSet(v.ToOid())->members;
        cur = members.empty() ? AsrKey::Null() : members[0];
      } else {
        cur = v;
      }
    }
    if (!cur.IsNull()) ++complete;
  }
  EXPECT_GT(complete, 0);
}

TEST(SyntheticBaseTest, FractionalRoundingAndEdgeProfiles) {
  cost::ApplicationProfile p;
  p.n = 1;
  p.c = {10, 5};
  p.d = {10};
  p.fan = {5};  // fan equals the whole target level
  p.size = {100, 100};
  auto base = SyntheticBase::Generate(p).value();
  const PathStep& step = base->path().step(1);
  for (Oid o : base->objects_at(0)) {
    AsrKey v = base->store()->GetAttributeByName(o, step.attr_name).value();
    ASSERT_FALSE(v.IsNull());
    EXPECT_EQ(base->store()->GetSet(v.ToOid())->members.size(), 5u);
  }
}

TEST(MeterTest, CapturesOnlyTheOperation) {
  auto base = SyntheticBase::Generate(Profile()).value();
  storage::AccessStats cost = Meter(base->disk(), [] {});
  EXPECT_EQ(cost.total(), 0u);
}

}  // namespace
}  // namespace asr::workload
