// Live telemetry pipeline: percentile math, shared (sampler-safe) metric
// types, the operational event journal, the background sampler with its
// alert rules, and the Prometheus exposition.
#include <bit>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/events.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/sampler.h"

namespace asr {
namespace {

// --- HistogramSnapshot percentiles and windows ---------------------------

// Registry bucket geometry, restated locally so the snapshot-math tests
// also run under -DASR_METRICS=OFF (where HotHistogram is a no-op type).
size_t BucketOf(uint64_t v) {
  if (v <= 1) return 0;
  size_t b = static_cast<size_t>(std::bit_width(v - 1));
  return b < obs::kHistogramBuckets ? b : obs::kHistogramBuckets - 1;
}

obs::HistogramSnapshot MakeSnapshot(std::vector<uint64_t> values) {
  obs::HistogramSnapshot s;
  for (uint64_t v : values) {
    ++s.count;
    s.sum += v;
    if (v > s.max) s.max = v;
    ++s.buckets[BucketOf(v)];
  }
  return s;
}

TEST(HistogramPercentileTest, EmptySnapshotIsZero) {
  obs::HistogramSnapshot s;
  EXPECT_EQ(s.Percentile(0.5), 0u);
  EXPECT_EQ(s.P99(), 0u);
}

TEST(HistogramPercentileTest, PercentileReturnsCoveringBucketBound) {
  // 100 observations of 3us (bucket (2,4]) and one of 1000us: p50 must
  // report the 4us bucket bound, p99 still the 4us bound (rank 100 of 101),
  // p100 the exact max.
  std::vector<uint64_t> values(100, 3);
  values.push_back(1000);
  obs::HistogramSnapshot s = MakeSnapshot(values);
  EXPECT_EQ(s.P50(), 4u);
  EXPECT_EQ(s.Percentile(0.99), 4u);
  EXPECT_EQ(s.Percentile(1.0), 1000u);
}

TEST(HistogramPercentileTest, CappedAtObservedMax) {
  // A single observation of 5 lands in bucket (4,8]; the percentile must
  // not report the bucket bound 8 when the true max is 5.
  obs::HistogramSnapshot s = MakeSnapshot({5});
  EXPECT_EQ(s.P50(), 5u);
  EXPECT_EQ(s.P99(), 5u);
}

TEST(HistogramPercentileTest, SpreadAcrossBuckets) {
  // 90 fast (1us), 10 slow (100us, bucket (64,128]): p50 in the fast
  // bucket, p95 and p99 in the slow one.
  std::vector<uint64_t> values(90, 1);
  for (int i = 0; i < 10; ++i) values.push_back(100);
  obs::HistogramSnapshot s = MakeSnapshot(values);
  EXPECT_EQ(s.P50(), 1u);
  EXPECT_EQ(s.P95(), 100u);
  EXPECT_EQ(s.P99(), 100u);
}

TEST(HistogramPercentileTest, DeltaSinceSubtractsWindow) {
  obs::HistogramSnapshot earlier = MakeSnapshot({1, 1, 1});
  obs::HistogramSnapshot later = MakeSnapshot({1, 1, 1, 100, 100});
  obs::HistogramSnapshot delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 200u);
  EXPECT_EQ(delta.max, 100u);  // max carries the later cumulative value
  EXPECT_EQ(delta.P50(), 100u);
}

#if ASR_METRICS_ENABLED

// --- Shared (sampler-safe) metric types ----------------------------------

TEST(SharedMetricsTest, CounterIncAndReset) {
  obs::SharedCounter c;
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(SharedMetricsTest, HistogramMatchesHotGeometry) {
  obs::SharedHistogram shared;
  obs::HotHistogram hot;
  for (uint64_t v : {1ull, 4ull, 100ull, 5000ull}) {
    shared.Observe(v);
    hot.Observe(v);
  }
  obs::HistogramSnapshot a = shared.snapshot();
  obs::HistogramSnapshot b = hot.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

TEST(SharedMetricsTest, LatencyTimerObservesPrimaryAndMirror) {
  obs::SharedHistogram primary;
  obs::SharedHistogram mirror;
  { obs::LatencyTimer t(/*enabled=*/true, &primary, &mirror); }
  EXPECT_EQ(primary.count(), 1u);
  EXPECT_EQ(mirror.count(), 1u);
  { obs::LatencyTimer t(/*enabled=*/false, &primary, &mirror); }
  EXPECT_EQ(primary.count(), 1u) << "disabled timer must not observe";
  EXPECT_EQ(mirror.count(), 1u);
}

// --- Operational event journal -------------------------------------------

TEST(EventLogTest, RecordsInOrderWithAdvancingSeq) {
  obs::EventLog log(8);
  log.Record(obs::EventKind::kRecoveryStart, "partitions=2");
  log.Record(obs::EventKind::kPartitionQuarantine, "partition=0");
  log.Record(obs::EventKind::kRecoveryFinish);
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kRecoveryStart);
  EXPECT_EQ(events[0].detail, "partitions=2");
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, OverflowDropsOldestButKeepsCounting) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(obs::EventKind::kAlert, "n=" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The retained window is the tail, oldest first, seq never reused.
  EXPECT_EQ(events.front().seq, 7u);
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(events.back().detail, "n=9");
}

TEST(EventLogTest, SinceAndOfKindFilter) {
  obs::EventLog log(16);
  log.Record(obs::EventKind::kWalTornTail, "dropped_bytes=12");
  log.Record(obs::EventKind::kCheckpointSaved);
  log.Record(obs::EventKind::kWalTornTail, "dropped_bytes=7");
  EXPECT_EQ(log.Since(1).size(), 2u);
  EXPECT_EQ(log.Since(3).size(), 0u);
  std::vector<obs::Event> torn = log.OfKind(obs::EventKind::kWalTornTail);
  ASSERT_EQ(torn.size(), 2u);
  EXPECT_EQ(torn[1].detail, "dropped_bytes=7");
}

TEST(EventLogTest, ClearKeepsSequenceAdvancing) {
  obs::EventLog log(8);
  log.Record(obs::EventKind::kAlert);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  log.Record(obs::EventKind::kAlert);
  EXPECT_EQ(log.Snapshot().front().seq, 2u);
}

TEST(EventLogTest, JsonShape) {
  obs::EventLog log(8);
  log.Record(obs::EventKind::kReadOnlyDemotion, "reason=EIO");
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"read_only_demotion\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"reason=EIO\""), std::string::npos);
}

TEST(EventLogTest, KindNamesCoverTaxonomy) {
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kRecoveryStart),
               "recovery_start");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kDegradedNavigation),
               "degraded_navigation");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kAlert), "alert");
}

// --- TelemetrySampler ----------------------------------------------------

// A deterministic collector the tests can steer between samples.
struct FakeSource {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t hops = 0;
  obs::HotHistogram sync_us;

  obs::TelemetryCollector Collector() {
    return [this](obs::MetricsRegistry* registry) {
      registry->Set("live.buffer.hits", hits);
      registry->Set("live.buffer.misses", misses);
      registry->Set("live.degraded.hops", hops);
      registry->SetHistogram("live.storage.sync_us", sync_us.snapshot());
    };
  }
};

obs::TelemetrySampler::Options TestOptions(FakeSource* source) {
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 0;  // tests drive SampleOnce() directly
  opts.collector = source->Collector();
  return opts;
}

TEST(TelemetrySamplerTest, DeltasAndRatesAgainstPreviousSample) {
  FakeSource source;
  source.hits = 100;
  obs::TelemetrySampler sampler(TestOptions(&source));
  obs::TelemetrySample first = sampler.SampleOnce();
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.dt_us, 0u);
  EXPECT_EQ(first.counter("live.buffer.hits"), 100u);
  EXPECT_EQ(first.delta("live.buffer.hits"), 0u);

  source.hits = 250;
  source.sync_us.Observe(300);
  obs::TelemetrySample second = sampler.SampleOnce();
  EXPECT_EQ(second.seq, 2u);
  EXPECT_GT(second.dt_us, 0u);
  EXPECT_EQ(second.delta("live.buffer.hits"), 150u);
  EXPECT_GT(second.rate("live.buffer.hits"), 0.0);
  EXPECT_EQ(second.histogram_delta("live.storage.sync_us").count, 1u);
  EXPECT_EQ(sampler.samples_taken(), 2u);

  obs::TelemetrySample latest;
  ASSERT_TRUE(sampler.Latest(&latest));
  EXPECT_EQ(latest.seq, 2u);
}

TEST(TelemetrySamplerTest, RingIsBounded) {
  FakeSource source;
  obs::TelemetrySampler::Options opts = TestOptions(&source);
  opts.ring_capacity = 3;
  obs::TelemetrySampler sampler(opts);
  for (int i = 0; i < 8; ++i) sampler.SampleOnce();
  std::vector<obs::TelemetrySample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().seq, 6u);  // oldest retained
  EXPECT_EQ(samples.back().seq, 8u);
  EXPECT_EQ(sampler.samples_taken(), 8u);
}

TEST(TelemetrySamplerTest, AlertsAreEdgeTriggered) {
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  sampler.AddRule(
      obs::CounterRateAbove("degraded", "live.degraded.hops", 0.0));
  std::vector<std::string> fired;
  sampler.OnAlert([&fired](const obs::AlertFiring& firing) {
    fired.push_back(firing.rule);
  });

  sampler.SampleOnce();  // first sample: no window, no evaluation
  EXPECT_TRUE(fired.empty());

  source.hops = 5;
  sampler.SampleOnce();  // false -> true edge: fires
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "degraded");

  source.hops = 9;
  sampler.SampleOnce();  // still true: no re-fire
  EXPECT_EQ(fired.size(), 1u);

  sampler.SampleOnce();  // no new hops: rate 0, rule re-arms
  source.hops = 12;
  sampler.SampleOnce();  // second edge: fires again
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sampler.Firings().size(), 2u);
  EXPECT_EQ(sampler.Firings()[0].sample_seq, 2u);
}

TEST(TelemetrySamplerTest, FiringsBecomeAlertEvents) {
  obs::EventLog& log = obs::EventLog::Instance();
  const uint64_t before = log.total_recorded();
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  sampler.AddRule(
      obs::CounterRateAbove("degraded", "live.degraded.hops", 0.0));
  sampler.SampleOnce();
  source.hops = 1;
  sampler.SampleOnce();
  std::vector<obs::Event> alerts = log.OfKind(obs::EventKind::kAlert);
  ASSERT_FALSE(alerts.empty());
  EXPECT_GT(log.total_recorded(), before);
  EXPECT_NE(alerts.back().detail.find("degraded"), std::string::npos);
}

TEST(TelemetrySamplerTest, RatioBelowRespectsMinimumEvents) {
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  sampler.AddRule(obs::RatioBelow("hit_ratio", "live.buffer.hits",
                                  "live.buffer.misses", 0.95,
                                  /*min_events=*/64));
  sampler.SampleOnce();
  // 10 events at ratio 0.5: far below the floor, but under min_events.
  source.hits = 5;
  source.misses = 5;
  sampler.SampleOnce();
  EXPECT_TRUE(sampler.Firings().empty());
  // 100 more events at ratio 0.5: now it fires.
  source.hits = 55;
  source.misses = 55;
  sampler.SampleOnce();
  ASSERT_EQ(sampler.Firings().size(), 1u);
  EXPECT_EQ(sampler.Firings()[0].rule, "hit_ratio");
}

TEST(TelemetrySamplerTest, HistogramP99RuleFiresOnSlowWindow) {
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  sampler.AddRule(obs::HistogramP99Above("slow_sync", "live.storage.sync_us",
                                         /*ceiling_us=*/1000,
                                         /*min_count=*/4));
  sampler.SampleOnce();
  for (int i = 0; i < 8; ++i) source.sync_us.Observe(50);
  sampler.SampleOnce();  // fast window: quiet
  EXPECT_TRUE(sampler.Firings().empty());
  for (int i = 0; i < 8; ++i) source.sync_us.Observe(100000);
  sampler.SampleOnce();  // slow window: fires
  ASSERT_EQ(sampler.Firings().size(), 1u);
  EXPECT_EQ(sampler.Firings()[0].rule, "slow_sync");
}

TEST(TelemetrySamplerTest, DefaultRulesCoverTheStockConditions) {
  std::vector<obs::AlertRule> rules = obs::DefaultAlertRules(0.95, 100000);
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "degraded_navigation");
  EXPECT_EQ(rules[1].name, "buffer_hit_ratio");
  EXPECT_EQ(rules[2].name, "sync_latency_p99");
  EXPECT_EQ(rules[3].name, "txn_conflict_ratio");
}

TEST(TelemetrySamplerTest, TxnConflictRatioRespectsMinimumAttempts) {
  uint64_t commits = 0, conflicts = 0;
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 0;
  opts.collector = [&](obs::MetricsRegistry* registry) {
    registry->Set("live.txn.commits", commits);
    registry->Set("live.txn.conflicts", conflicts);
  };
  obs::TelemetrySampler sampler(opts);
  sampler.AddRule(obs::TxnConflictRatioAbove("txn_conflict_ratio", 0.5, 16));
  sampler.SampleOnce();  // baseline

  // High conflict ratio, but only 8 attempts in the window: below min_events.
  commits += 2;
  conflicts += 6;
  sampler.SampleOnce();
  EXPECT_TRUE(sampler.Firings().empty());

  // 20 attempts at 80% conflicts: fires, and the detail names the ratio.
  commits += 4;
  conflicts += 16;
  sampler.SampleOnce();
  ASSERT_EQ(sampler.Firings().size(), 1u);
  EXPECT_EQ(sampler.Firings()[0].rule, "txn_conflict_ratio");
  EXPECT_NE(sampler.Firings()[0].detail.find("conflict_ratio="),
            std::string::npos);

  // A healthy window re-arms the edge trigger.
  commits += 32;
  sampler.SampleOnce();
  EXPECT_EQ(sampler.Firings().size(), 1u);
}

TEST(TelemetrySamplerTest, CollectLiveExportsTheTxnSurface) {
  obs::LiveTelemetry& hub = obs::LiveTelemetry::Instance();
  hub.Reset();
  hub.txn_commits.Inc();
  hub.txn_commits.Inc();
  hub.txn_conflicts.Inc();
  hub.txn_retries.Observe(3);
  hub.snapshot_age_epochs.Set(7);
  obs::MetricsRegistry registry;
  obs::CollectLive(&registry);
  EXPECT_EQ(registry.counter("live.txn.commits"), 2u);
  EXPECT_EQ(registry.counter("live.txn.conflicts"), 1u);
  EXPECT_EQ(registry.counter("live.txn.snapshot_age"), 7u);
  EXPECT_EQ(registry.histogram("live.txn.retries").count, 1u);
  // The whole surface rides the existing Prometheus exposition.
  std::string text = obs::ToPrometheusText(registry);
  EXPECT_NE(text.find("asr_live_txn_commits 2\n"), std::string::npos);
  EXPECT_NE(text.find("asr_live_txn_conflicts 1\n"), std::string::npos);
  EXPECT_NE(text.find("asr_live_txn_snapshot_age 7\n"), std::string::npos);
  EXPECT_NE(text.find("asr_live_txn_retries_count 1\n"), std::string::npos);
  hub.Reset();
}

TEST(TelemetrySamplerTest, BackgroundThreadSamplesAndStops) {
  FakeSource source;
  obs::TelemetrySampler::Options opts = TestOptions(&source);
  opts.interval_ms = 1;
  obs::TelemetrySampler sampler(opts);
  ASSERT_TRUE(sampler.Start());
  EXPECT_TRUE(sampler.running());
  while (sampler.samples_taken() < 3) std::this_thread::yield();
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const uint64_t settled = sampler.samples_taken();
  EXPECT_GE(settled, 3u);
  EXPECT_EQ(sampler.samples_taken(), settled) << "thread must be joined";
}

TEST(TelemetrySamplerTest, ConcurrentHubWritersWhileSampling) {
  // The TSan job leans on this test: the default CollectLive collector
  // reads the hub on a 1ms cadence while writer threads hammer every
  // shared counter and histogram. A non-atomic access anywhere in the
  // snapshot path is a hard race here.
  obs::LiveTelemetry& hub = obs::LiveTelemetry::Instance();
  hub.Reset();
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 1;  // collector defaults to CollectLive
  obs::TelemetrySampler sampler(opts);
  ASSERT_TRUE(sampler.Start());
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&hub] {
      for (int i = 0; i < 20000; ++i) {
        hub.buffer_hits.Inc();
        hub.degraded_hops.Inc();
        hub.storage_read_us.Observe(static_cast<uint64_t>(i % 512));
        hub.wal_sync_us.Observe(300);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  while (sampler.samples_taken() < 2) std::this_thread::yield();
  sampler.Stop();
  // A quiescent sample after the writers joined sees the exact totals.
  obs::TelemetrySample last = sampler.SampleOnce();
  EXPECT_EQ(last.counter("live.buffer.hits"), 40000u);
  EXPECT_EQ(last.counter("live.degraded.hops"), 40000u);
  EXPECT_EQ(last.histograms.at("live.storage.read_us").count, 40000u);
  EXPECT_EQ(last.histograms.at("live.wal.sync_us").count, 40000u);
  hub.Reset();
}

TEST(TelemetrySamplerTest, StartIsNoOpAtIntervalZero) {
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  EXPECT_FALSE(sampler.Start());
  EXPECT_FALSE(sampler.running());
}

TEST(TelemetrySamplerTest, OptionsFromEnv) {
  ::setenv("ASR_TELEMETRY_MS", "125", 1);
  EXPECT_EQ(obs::TelemetrySampler::Options::FromEnv().interval_ms, 125u);
  ::setenv("ASR_TELEMETRY_MS", "nonsense", 1);
  EXPECT_EQ(obs::TelemetrySampler::Options::FromEnv().interval_ms, 0u);
  ::unsetenv("ASR_TELEMETRY_MS");
  EXPECT_EQ(obs::TelemetrySampler::Options::FromEnv().interval_ms, 0u);
}

TEST(TelemetrySamplerTest, JsonShape) {
  FakeSource source;
  obs::TelemetrySampler sampler(TestOptions(&source));
  sampler.SampleOnce();
  std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"interval_ms\":0"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_NE(json.find("\"alerts\":["), std::string::npos);
}

TEST(LiveTelemetryTest, CollectLiveExportsHubNames) {
  obs::LiveTelemetry& hub = obs::LiveTelemetry::Instance();
  hub.Reset();
  hub.buffer_hits.Inc(7);
  hub.storage_sync_us.Observe(123);
  obs::MetricsRegistry registry;
  obs::CollectLive(&registry);
  EXPECT_EQ(registry.counter("live.buffer.hits"), 7u);
  EXPECT_EQ(registry.histogram("live.storage.sync_us").count, 1u);
  hub.Reset();
}

#else  // !ASR_METRICS_ENABLED

// --- Compile-out contract ------------------------------------------------

TEST(TelemetryOffTest, SamplerNeverRunsAndSamplesAreEmpty) {
  obs::TelemetrySampler sampler;
  EXPECT_FALSE(sampler.Start());
  EXPECT_FALSE(sampler.running());
  obs::TelemetrySample s = sampler.SampleOnce();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(sampler.Samples().empty());
}

TEST(TelemetryOffTest, EventLogRecordsNothing) {
  obs::EventLog log(8);
  log.Record(obs::EventKind::kAlert, "ignored");
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(TelemetryOffTest, SharedTypesAreInert) {
  obs::SharedCounter c;
  c.Inc(5);
  EXPECT_EQ(c.value(), 0u);
  obs::SharedHistogram h;
  h.Observe(100);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(obs::MonotonicMicros(), 0u);
}

#endif  // ASR_METRICS_ENABLED

// --- Prometheus exposition (format-only, metrics mode agnostic) ----------

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(obs::PrometheusMetricName("storage.read.pages"),
            "asr_storage_read_pages");
  EXPECT_EQ(obs::PrometheusMetricName("live.wal.append_us"),
            "asr_live_wal_append_us");
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  obs::HistogramSnapshot s = MakeSnapshot({1, 3, 3, 100});
  std::string out;
  obs::AppendPrometheusHistogram("asr_t_us", s, &out);
  // Bucket (2,4] holds two observations; le="4" must include the le="1".
  EXPECT_NE(out.find("asr_t_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("asr_t_us_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("asr_t_us_bucket{le=\"128\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("asr_t_us_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("asr_t_us_sum 107\n"), std::string::npos);
  EXPECT_NE(out.find("asr_t_us_count 4\n"), std::string::npos);
}

TEST(PrometheusTest, RegistryExposesCountersAndHistograms) {
  obs::MetricsRegistry registry;
  registry.Set("disk.page_reads", 42);
  registry.SetHistogram("disk.read_us", MakeSnapshot({5, 9}));
  std::string text = obs::ToPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE asr_disk_page_reads counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("asr_disk_page_reads 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE asr_disk_read_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("asr_disk_read_us_count 2\n"), std::string::npos);
}

}  // namespace
}  // namespace asr
