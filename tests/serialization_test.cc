// Direct unit tests for the snapshot serialization building blocks: binary
// IO helpers, string dictionary, schema replay, disk images — plus the
// Rebuild() maintenance fallback for retained-set-column ASRs.
#include <gtest/gtest.h>

#include <sstream>

#include "asr/access_support_relation.h"
#include "common/binary_io.h"
#include "common/string_dict.h"
#include "gom/type_system.h"
#include "paper_example.h"
#include "storage/disk.h"

namespace asr {
namespace {

TEST(BinaryIoTest, ScalarAndStringRoundTrip) {
  std::stringstream stream;
  io::WriteScalar<uint64_t>(&stream, 0xDEADBEEFCAFEF00Dull);
  io::WriteScalar<uint16_t>(&stream, 7);
  io::WriteString(&stream, "hello");
  io::WriteString(&stream, "");

  EXPECT_EQ(*io::ReadScalar<uint64_t>(&stream), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(*io::ReadScalar<uint16_t>(&stream), 7);
  EXPECT_EQ(*io::ReadScalar<uint8_t>(&stream), 5u);  // the string length LSB
}

TEST(BinaryIoTest, TruncationIsCorruption) {
  std::stringstream stream;
  io::WriteScalar<uint16_t>(&stream, 1);
  io::ReadScalar<uint16_t>(&stream).value();
  EXPECT_TRUE(io::ReadScalar<uint32_t>(&stream).status().IsCorruption());

  std::stringstream stream2;
  io::WriteScalar<uint32_t>(&stream2, 100);  // claims a 100-byte string
  stream2 << "short";
  EXPECT_TRUE(io::ReadString(&stream2).status().IsCorruption());
}

TEST(StringDictSerializationTest, CodesPreserved) {
  StringDict dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  uint32_t c = dict.Intern("alpha");  // duplicate
  EXPECT_EQ(a, c);

  std::stringstream stream;
  dict.Serialize(&stream);
  StringDict loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get(a), "alpha");
  EXPECT_EQ(loaded.Get(b), "beta");
  EXPECT_EQ(loaded.Lookup("beta"), b);
}

TEST(SchemaSerializationTest, ReplaysAllTypeKinds) {
  gom::Schema schema;
  TypeId base = schema
                    .DefineTupleType("Base", {},
                                     {{"X", gom::Schema::kIntType,
                                       kInvalidTypeId}})
                    .value();
  TypeId other = schema
                     .DefineTupleType("Other", {},
                                      {{"Y", gom::Schema::kDecimalType,
                                        kInvalidTypeId}})
                     .value();
  TypeId sub =
      schema
          .DefineTupleType("Sub", {base, other},
                           {{"Z", gom::Schema::kStringType, kInvalidTypeId},
                            {"Peer", base, kInvalidTypeId}})
          .value();
  TypeId set = schema.DefineSetType("Subs", sub).value();
  TypeId list = schema.DefineListType("SubList", sub).value();

  std::stringstream stream;
  schema.Serialize(&stream);
  gom::Schema loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());

  EXPECT_EQ(loaded.type_count(), schema.type_count());
  EXPECT_EQ(*loaded.FindType("Sub"), sub);
  EXPECT_TRUE(loaded.IsSubtypeOf(sub, base));
  EXPECT_TRUE(loaded.IsSubtypeOf(sub, other));
  // Flattened attribute order reproduced: inherited first.
  const auto& attrs = loaded.attributes(sub);
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].name, "X");
  EXPECT_EQ(attrs[1].name, "Y");
  EXPECT_EQ(attrs[2].name, "Z");
  EXPECT_EQ(attrs[3].range_type, base);
  EXPECT_TRUE(loaded.IsSet(set));
  EXPECT_TRUE(loaded.IsList(list));
  EXPECT_EQ(loaded.element_type(list), sub);
}

TEST(SchemaSerializationTest, RequiresFreshTarget) {
  gom::Schema schema;
  schema.DefineTupleType("T", {}, {}).value();
  std::stringstream stream;
  schema.Serialize(&stream);

  gom::Schema occupied;
  occupied.DefineTupleType("Existing", {}, {}).value();
  EXPECT_TRUE(occupied.Deserialize(&stream).IsInvalidArgument());
}

TEST(DiskSerializationTest, PagesSurviveByteForByte) {
  storage::Disk disk;
  uint32_t a = disk.CreateSegment("alpha");
  uint32_t b = disk.CreateSegment("beta");
  storage::PageId pa = disk.AllocatePage(a);
  storage::PageId pb1 = disk.AllocatePage(b);
  storage::PageId pb2 = disk.AllocatePage(b);
  storage::Page page;
  page.Write<uint64_t>(0, 111);
  disk.WritePage(pa, page);
  page.Write<uint64_t>(0, 222);
  disk.WritePage(pb1, page);
  page.Write<uint64_t>(4000, 333);
  disk.WritePage(pb2, page);

  std::stringstream stream;
  disk.Serialize(&stream);
  storage::Disk loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());
  EXPECT_EQ(loaded.segment_count(), 2u);
  EXPECT_EQ(loaded.SegmentName(0), "alpha");
  EXPECT_EQ(loaded.SegmentPageCount(1), 2u);
  storage::Page out;
  loaded.ReadPage(pa, &out);
  EXPECT_EQ(out.Read<uint64_t>(0), 111u);
  loaded.ReadPage(pb2, &out);
  EXPECT_EQ(out.Read<uint64_t>(4000), 333u);
}

// --- Rebuild() as the retained-set-column maintenance path -----------------

TEST(RebuildTest, RetainedSetColumnsCatchUpViaRebuild) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  AsrOptions options;
  options.drop_set_columns = false;
  auto asr = AccessSupportRelation::Build(
                 base->store.get(), path, ExtensionKind::kFull,
                 Decomposition::Binary(path.m()), options)
                 .value();

  // Mutate the base: the Sausage product joins the Auto division.
  Oid auto_products =
      base->store->GetAttributeByName(base->auto_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base->store
                  ->AddToSet(auto_products, AsrKey::FromOid(base->sausage))
                  .ok());
  // Incremental maintenance is unavailable in this mode...
  EXPECT_TRUE(asr->OnEdgeInserted(base->auto_division, 0,
                                  AsrKey::FromOid(base->sausage))
                  .IsNotSupported());
  // ...but Rebuild() catches the index up.
  ASSERT_TRUE(asr->Rebuild().ok());
  std::vector<AsrKey> divisions =
      asr->EvalBackward(base->Name("Pepper"), 0, 3).value();
  ASSERT_EQ(divisions.size(), 1u);
  EXPECT_EQ(divisions[0], AsrKey::FromOid(base->auto_division));
}

TEST(RebuildTest, MatchesFreshBuildAfterChurn) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  auto asr = AccessSupportRelation::Build(base->store.get(), path,
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::Binary(3))
                 .value();
  // Change the base without maintaining the ASR, then rebuild.
  Oid truck_products =
      base->store->GetAttributeByName(base->truck_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base->store
                  ->RemoveFromSet(truck_products,
                                  AsrKey::FromOid(base->sec560))
                  .ok());
  ASSERT_TRUE(asr->Rebuild().ok());

  auto fresh = AccessSupportRelation::Build(base->store.get(), path,
                                            ExtensionKind::kLeftComplete,
                                            Decomposition::Binary(3))
                   .value();
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    EXPECT_TRUE(asr->DumpPartition(p).value().EqualsAsSet(
        fresh->DumpPartition(p).value()))
        << "partition " << p;
  }
}

}  // namespace
}  // namespace asr
