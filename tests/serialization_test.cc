// Direct unit tests for the snapshot serialization building blocks: binary
// IO helpers, string dictionary, schema replay, disk images — plus the
// Rebuild() maintenance fallback for retained-set-column ASRs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "asr/access_support_relation.h"
#include "common/binary_io.h"
#include "gom/database.h"
#include "common/string_dict.h"
#include "gom/type_system.h"
#include "paper_example.h"
#include "storage/disk.h"

namespace asr {
namespace {

TEST(BinaryIoTest, ScalarAndStringRoundTrip) {
  std::stringstream stream;
  io::WriteScalar<uint64_t>(&stream, 0xDEADBEEFCAFEF00Dull);
  io::WriteScalar<uint16_t>(&stream, 7);
  io::WriteString(&stream, "hello");
  io::WriteString(&stream, "");

  EXPECT_EQ(*io::ReadScalar<uint64_t>(&stream), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(*io::ReadScalar<uint16_t>(&stream), 7);
  EXPECT_EQ(*io::ReadScalar<uint8_t>(&stream), 5u);  // the string length LSB
}

TEST(BinaryIoTest, TruncationIsCorruption) {
  std::stringstream stream;
  io::WriteScalar<uint16_t>(&stream, 1);
  io::ReadScalar<uint16_t>(&stream).value();
  EXPECT_TRUE(io::ReadScalar<uint32_t>(&stream).status().IsCorruption());

  std::stringstream stream2;
  io::WriteScalar<uint32_t>(&stream2, 100);  // claims a 100-byte string
  stream2 << "short";
  EXPECT_TRUE(io::ReadString(&stream2).status().IsCorruption());
}

TEST(StringDictSerializationTest, CodesPreserved) {
  StringDict dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  uint32_t c = dict.Intern("alpha");  // duplicate
  EXPECT_EQ(a, c);

  std::stringstream stream;
  dict.Serialize(&stream);
  StringDict loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get(a), "alpha");
  EXPECT_EQ(loaded.Get(b), "beta");
  EXPECT_EQ(loaded.Lookup("beta"), b);
}

TEST(SchemaSerializationTest, ReplaysAllTypeKinds) {
  gom::Schema schema;
  TypeId base = schema
                    .DefineTupleType("Base", {},
                                     {{"X", gom::Schema::kIntType,
                                       kInvalidTypeId}})
                    .value();
  TypeId other = schema
                     .DefineTupleType("Other", {},
                                      {{"Y", gom::Schema::kDecimalType,
                                        kInvalidTypeId}})
                     .value();
  TypeId sub =
      schema
          .DefineTupleType("Sub", {base, other},
                           {{"Z", gom::Schema::kStringType, kInvalidTypeId},
                            {"Peer", base, kInvalidTypeId}})
          .value();
  TypeId set = schema.DefineSetType("Subs", sub).value();
  TypeId list = schema.DefineListType("SubList", sub).value();

  std::stringstream stream;
  schema.Serialize(&stream);
  gom::Schema loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());

  EXPECT_EQ(loaded.type_count(), schema.type_count());
  EXPECT_EQ(*loaded.FindType("Sub"), sub);
  EXPECT_TRUE(loaded.IsSubtypeOf(sub, base));
  EXPECT_TRUE(loaded.IsSubtypeOf(sub, other));
  // Flattened attribute order reproduced: inherited first.
  const auto& attrs = loaded.attributes(sub);
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].name, "X");
  EXPECT_EQ(attrs[1].name, "Y");
  EXPECT_EQ(attrs[2].name, "Z");
  EXPECT_EQ(attrs[3].range_type, base);
  EXPECT_TRUE(loaded.IsSet(set));
  EXPECT_TRUE(loaded.IsList(list));
  EXPECT_EQ(loaded.element_type(list), sub);
}

TEST(SchemaSerializationTest, RequiresFreshTarget) {
  gom::Schema schema;
  schema.DefineTupleType("T", {}, {}).value();
  std::stringstream stream;
  schema.Serialize(&stream);

  gom::Schema occupied;
  occupied.DefineTupleType("Existing", {}, {}).value();
  EXPECT_TRUE(occupied.Deserialize(&stream).IsInvalidArgument());
}

TEST(DiskSerializationTest, PagesSurviveByteForByte) {
  storage::Disk disk;
  uint32_t a = disk.CreateSegment("alpha");
  uint32_t b = disk.CreateSegment("beta");
  storage::PageId pa = disk.AllocatePage(a);
  storage::PageId pb1 = disk.AllocatePage(b);
  storage::PageId pb2 = disk.AllocatePage(b);
  storage::Page page;
  page.Write<uint64_t>(0, 111);
  ASSERT_TRUE(disk.WritePage(pa, page).ok());
  page.Write<uint64_t>(0, 222);
  ASSERT_TRUE(disk.WritePage(pb1, page).ok());
  page.Write<uint64_t>(4000, 333);
  ASSERT_TRUE(disk.WritePage(pb2, page).ok());

  std::stringstream stream;
  disk.Serialize(&stream);
  storage::Disk loaded;
  ASSERT_TRUE(loaded.Deserialize(&stream).ok());
  EXPECT_EQ(loaded.segment_count(), 2u);
  EXPECT_EQ(loaded.SegmentName(0), "alpha");
  EXPECT_EQ(loaded.SegmentPageCount(1), 2u);
  storage::Page out;
  ASSERT_TRUE(loaded.ReadPage(pa, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 111u);
  ASSERT_TRUE(loaded.ReadPage(pb2, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(4000), 333u);
}

// --- Negative paths: truncated and corrupt snapshot streams ----------------

TEST(DiskSerializationTest, TruncatedStreamLeavesDiskEmpty) {
  storage::Disk disk;
  uint32_t a = disk.CreateSegment("alpha");
  disk.CreateSegment("beta");
  storage::Page page;
  page.Write<uint64_t>(0, 42);
  ASSERT_TRUE(disk.WritePage(disk.AllocatePage(a), page).ok());

  std::ostringstream full_out;
  disk.Serialize(&full_out);
  const std::string full = full_out.str();

  // Cut the image at every structurally interesting point: inside the
  // header, inside a segment name, inside page data. Deserialize must fail
  // with Corruption and leave the target disk completely empty — a
  // half-populated segment table would satisfy later page-bound checks with
  // pages that were never loaded.
  for (size_t cut : {size_t{2}, size_t{7}, full.size() / 2, full.size() - 1}) {
    ASSERT_LT(cut, full.size());
    std::istringstream in(full.substr(0, cut));
    storage::Disk loaded;
    Status st = loaded.Deserialize(&in);
    EXPECT_TRUE(st.IsCorruption()) << "cut at " << cut << ": " << st.message();
    EXPECT_EQ(loaded.segment_count(), 0u) << "cut at " << cut;
  }
}

TEST(DiskSerializationTest, AbsurdCountsRejectedWithoutCrash) {
  // A corrupt header claiming 2^32-1 segments must fail at the first
  // missing segment record, not try to honour the count.
  std::stringstream huge_segs;
  io::WriteScalar<uint32_t>(&huge_segs, 0xFFFFFFFFu);
  storage::Disk disk1;
  EXPECT_TRUE(disk1.Deserialize(&huge_segs).IsCorruption());
  EXPECT_EQ(disk1.segment_count(), 0u);

  // Likewise for a plausible segment with an absurd page count: pages are
  // read one at a time, so the loader fails at the first missing page
  // instead of allocating ~16 TiB up front.
  std::stringstream huge_pages;
  io::WriteScalar<uint32_t>(&huge_pages, 1);
  io::WriteString(&huge_pages, "seg");
  io::WriteScalar<uint32_t>(&huge_pages, 0xFFFFFFFFu);
  storage::Disk disk2;
  EXPECT_TRUE(disk2.Deserialize(&huge_pages).IsCorruption());
  EXPECT_EQ(disk2.segment_count(), 0u);

  // An implausible string length in the segment name is caught by the
  // bounded ReadString rather than a giant allocation.
  std::stringstream huge_name;
  io::WriteScalar<uint32_t>(&huge_name, 1);
  io::WriteScalar<uint32_t>(&huge_name, 0x7FFFFFFFu);  // name "length"
  storage::Disk disk3;
  EXPECT_TRUE(disk3.Deserialize(&huge_name).IsCorruption());
  EXPECT_EQ(disk3.segment_count(), 0u);
}

TEST(DatabaseSnapshotTest, CorruptSnapshotFailsToOpenCleanly) {
  const std::string path = ::testing::TempDir() + "asr_corrupt_snapshot.bin";
  {
    auto db = gom::Database::Create(16);
    TypeId t = db->schema()
                   ->DefineTupleType(
                       "T", {}, {{"X", gom::Schema::kIntType, kInvalidTypeId}})
                   .value();
    ASSERT_TRUE(db->store()->CreateObject(t).ok());
    ASSERT_TRUE(db->Save(path).ok());
  }
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }

  // Truncation anywhere in the stream surfaces as a Status error, never a
  // crash or a half-open database.
  for (size_t cut : {size_t{4}, image.size() / 3, image.size() - 2}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(gom::Database::Open(path, 16).ok()) << "cut at " << cut;
  }

  // A wrong magic number is rejected before any state is built.
  {
    std::string bad = image;
    bad[0] ^= 0x5A;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    Result<std::unique_ptr<gom::Database>> opened =
        gom::Database::Open(path, 16);
    EXPECT_TRUE(opened.status().IsCorruption());
  }

  // The pristine image still opens: the negative cases above failed for
  // the right reason, not because the fixture snapshot was unusable.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.close();
    EXPECT_TRUE(gom::Database::Open(path, 16).ok());
  }
  std::remove(path.c_str());
}

// --- Rebuild() as the retained-set-column maintenance path -----------------

TEST(RebuildTest, RetainedSetColumnsCatchUpViaRebuild) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  AsrOptions options;
  options.drop_set_columns = false;
  auto asr = AccessSupportRelation::Build(
                 base->store.get(), path, ExtensionKind::kFull,
                 Decomposition::Binary(path.m()), options)
                 .value();

  // Mutate the base: the Sausage product joins the Auto division.
  Oid auto_products =
      base->store->GetAttributeByName(base->auto_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base->store
                  ->AddToSet(auto_products, AsrKey::FromOid(base->sausage))
                  .ok());
  // Incremental maintenance is unavailable in this mode...
  EXPECT_TRUE(asr->OnEdgeInserted(base->auto_division, 0,
                                  AsrKey::FromOid(base->sausage))
                  .IsNotSupported());
  // ...but Rebuild() catches the index up.
  ASSERT_TRUE(asr->Rebuild().ok());
  std::vector<AsrKey> divisions =
      asr->EvalBackward(base->Name("Pepper"), 0, 3).value();
  ASSERT_EQ(divisions.size(), 1u);
  EXPECT_EQ(divisions[0], AsrKey::FromOid(base->auto_division));
}

TEST(RebuildTest, MatchesFreshBuildAfterChurn) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  auto asr = AccessSupportRelation::Build(base->store.get(), path,
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::Binary(3))
                 .value();
  // Change the base without maintaining the ASR, then rebuild.
  Oid truck_products =
      base->store->GetAttributeByName(base->truck_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base->store
                  ->RemoveFromSet(truck_products,
                                  AsrKey::FromOid(base->sec560))
                  .ok());
  ASSERT_TRUE(asr->Rebuild().ok());

  auto fresh = AccessSupportRelation::Build(base->store.get(), path,
                                            ExtensionKind::kLeftComplete,
                                            Decomposition::Binary(3))
                   .value();
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    EXPECT_TRUE(asr->DumpPartition(p).value().EqualsAsSet(
        fresh->DumpPartition(p).value()))
        << "partition " << p;
  }
}

}  // namespace
}  // namespace asr
