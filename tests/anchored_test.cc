// Tests for collection-anchored access support relations — the §3
// alternative of anchoring a path at a particular collection C of t_0
// elements instead of the whole extent ("var OurRobots: ROBOT_SET").
#include <gtest/gtest.h>

#include <set>

#include "asr/access_support_relation.h"
#include "paper_example.h"

namespace asr {
namespace {

using testing::CompanyBase;
using testing::MakeCompanyBase;
using testing::MakeCompanyPath;

class AnchoredAsrTest : public ::testing::Test {
 protected:
  AnchoredAsrTest() : base_(MakeCompanyBase()), path_(MakeCompanyPath(*base_)) {
    // The anchor collection: "Mercedes" holds only the Auto division (the
    // Truck division exists in the extent but is outside C).
    TypeId division_set =
        base_->schema.DefineSetType("DivisionSET", base_->division_type)
            .value();
    mercedes_ = base_->store->CreateSet(division_set).value();
    ASR_CHECK(base_->store
                  ->AddToSet(mercedes_, AsrKey::FromOid(base_->auto_division))
                  .ok());
  }

  std::unique_ptr<AccessSupportRelation> Build(ExtensionKind kind) {
    AsrOptions options;
    options.anchor_collection = mercedes_;
    return AccessSupportRelation::Build(base_->store.get(), path_, kind,
                                        Decomposition::Binary(3), options)
        .value();
  }

  std::set<uint64_t> Backward(AccessSupportRelation* asr, AsrKey target) {
    std::set<uint64_t> out;
    for (AsrKey k : asr->EvalBackward(target, 0, 3).value()) {
      out.insert(k.raw());
    }
    return out;
  }

  std::unique_ptr<CompanyBase> base_;
  PathExpression path_;
  Oid mercedes_;
};

TEST_F(AnchoredAsrTest, OnlyAnchoredPathsMaterialized) {
  auto asr = Build(ExtensionKind::kCanonical);
  // Both divisions reach "Door", but only Auto is in the collection.
  EXPECT_EQ(Backward(asr.get(), base_->Name("Door")),
            (std::set<uint64_t>{base_->auto_division.raw()}));

  // An unanchored ASR still sees both.
  auto whole = AccessSupportRelation::Build(base_->store.get(), path_,
                                            ExtensionKind::kCanonical,
                                            Decomposition::Binary(3))
                   .value();
  EXPECT_EQ(Backward(whole.get(), base_->Name("Door")).size(), 2u);
}

TEST_F(AnchoredAsrTest, LeftCompleteRespectsAnchor) {
  auto asr = Build(ExtensionKind::kLeftComplete);
  rel::Relation first = asr->DumpPartition(0).value();
  for (const rel::Row& row : first.rows()) {
    // Every left-complete row must originate in the anchored division.
    EXPECT_EQ(row[0], AsrKey::FromOid(base_->auto_division));
  }
}

TEST_F(AnchoredAsrTest, MaintenanceHonorsAnchor) {
  auto asr = Build(ExtensionKind::kFull);
  // A new edge under the NON-anchored Truck division must not introduce
  // anchored-complete rows; one under Auto must.
  Oid truck_products =
      base_->store->GetAttributeByName(base_->truck_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base_->store
                  ->AddToSet(truck_products, AsrKey::FromOid(base_->sausage))
                  .ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->truck_division, 0,
                                  AsrKey::FromOid(base_->sausage))
                  .ok());
  // Pepper is reachable from Truck now, but Truck is outside the anchor.
  EXPECT_TRUE(Backward(asr.get(), base_->Name("Pepper")).empty());

  Oid auto_products =
      base_->store->GetAttributeByName(base_->auto_division, "Manufactures")
          ->ToOid();
  ASSERT_TRUE(base_->store
                  ->AddToSet(auto_products, AsrKey::FromOid(base_->sausage))
                  .ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->auto_division, 0,
                                  AsrKey::FromOid(base_->sausage))
                  .ok());
  EXPECT_EQ(Backward(asr.get(), base_->Name("Pepper")),
            (std::set<uint64_t>{base_->auto_division.raw()}));
}

TEST_F(AnchoredAsrTest, AnchorMembershipChangesViaRebuild) {
  auto asr = Build(ExtensionKind::kCanonical);
  EXPECT_EQ(Backward(asr.get(), base_->Name("Door")).size(), 1u);

  // Truck joins the Mercedes collection; the ASR catches up on Rebuild().
  ASSERT_TRUE(base_->store
                  ->AddToSet(mercedes_, AsrKey::FromOid(base_->truck_division))
                  .ok());
  ASSERT_TRUE(asr->Rebuild().ok());
  EXPECT_EQ(Backward(asr.get(), base_->Name("Door")),
            (std::set<uint64_t>{base_->auto_division.raw(),
                                base_->truck_division.raw()}));
}

}  // namespace
}  // namespace asr
