// Unit tests for Decomposition (Def. 3.8) and its lookup helpers.
#include <gtest/gtest.h>

#include <set>

#include "asr/decomposition.h"

namespace asr {
namespace {

TEST(DecompositionTest, NoneAndBinaryFactories) {
  Decomposition none = Decomposition::None(4);
  EXPECT_EQ(none.ToString(), "(0,4)");
  EXPECT_EQ(none.partition_count(), 1u);
  EXPECT_EQ(none.m(), 4u);

  Decomposition binary = Decomposition::Binary(4);
  EXPECT_EQ(binary.ToString(), "(0,1,2,3,4)");
  EXPECT_EQ(binary.partition_count(), 4u);
  for (size_t p = 0; p < 4; ++p) {
    auto [a, b] = binary.partition(p);
    EXPECT_EQ(a, p);
    EXPECT_EQ(b, p + 1);
  }
}

TEST(DecompositionTest, OfValidates) {
  EXPECT_TRUE(Decomposition::Of({0, 2, 4}, 4).ok());
  EXPECT_FALSE(Decomposition::Of({0, 2}, 4).ok());      // does not reach m
  EXPECT_FALSE(Decomposition::Of({1, 4}, 4).ok());      // does not start at 0
  EXPECT_FALSE(Decomposition::Of({0, 2, 2, 4}, 4).ok());  // not increasing
  EXPECT_FALSE(Decomposition::Of({0, 3, 2, 4}, 4).ok());  // not increasing
  EXPECT_FALSE(Decomposition::Of({}, 4).ok());
}

TEST(DecompositionTest, EnumerateAllCoversThePowerSet) {
  std::vector<Decomposition> all = Decomposition::EnumerateAll(4);
  EXPECT_EQ(all.size(), 8u);  // 2^(m-1)
  std::set<std::string> rendered;
  for (const Decomposition& dec : all) rendered.insert(dec.ToString());
  EXPECT_EQ(rendered.size(), 8u);
  EXPECT_TRUE(rendered.count("(0,4)") > 0);
  EXPECT_TRUE(rendered.count("(0,1,2,3,4)") > 0);
  EXPECT_TRUE(rendered.count("(0,2,4)") > 0);

  EXPECT_EQ(Decomposition::EnumerateAll(1).size(), 1u);
  EXPECT_EQ(Decomposition::EnumerateAll(5).size(), 16u);
}

TEST(DecompositionTest, BoundaryAndCoverageLookups) {
  Decomposition dec = Decomposition::Of({0, 2, 3, 5}, 5).value();

  EXPECT_TRUE(dec.IsBoundary(0));
  EXPECT_TRUE(dec.IsBoundary(2));
  EXPECT_TRUE(dec.IsBoundary(3));
  EXPECT_TRUE(dec.IsBoundary(5));
  EXPECT_FALSE(dec.IsBoundary(1));
  EXPECT_FALSE(dec.IsBoundary(4));

  EXPECT_EQ(dec.PartitionStartingAt(0), 0);
  EXPECT_EQ(dec.PartitionStartingAt(2), 1);
  EXPECT_EQ(dec.PartitionStartingAt(3), 2);
  EXPECT_EQ(dec.PartitionStartingAt(5), -1);  // nothing starts at m
  EXPECT_EQ(dec.PartitionStartingAt(1), -1);

  EXPECT_EQ(dec.PartitionEndingAt(2), 0);
  EXPECT_EQ(dec.PartitionEndingAt(3), 1);
  EXPECT_EQ(dec.PartitionEndingAt(5), 2);
  EXPECT_EQ(dec.PartitionEndingAt(0), -1);
  EXPECT_EQ(dec.PartitionEndingAt(4), -1);

  // Covering: leftmost partition containing the column (boundaries belong
  // to the partition ending there).
  EXPECT_EQ(dec.PartitionCovering(0), 0);
  EXPECT_EQ(dec.PartitionCovering(1), 0);
  EXPECT_EQ(dec.PartitionCovering(2), 0);
  EXPECT_EQ(dec.PartitionCovering(3), 1);
  EXPECT_EQ(dec.PartitionCovering(4), 2);
  EXPECT_EQ(dec.PartitionCovering(5), 2);
}

TEST(DecompositionTest, Equality) {
  EXPECT_TRUE(Decomposition::Binary(3) ==
              Decomposition::Of({0, 1, 2, 3}, 3).value());
  EXPECT_FALSE(Decomposition::Binary(3) == Decomposition::None(3));
}

}  // namespace
}  // namespace asr
