// lock-discipline fixture, out-of-line half: definitions whose ASR_REQUIRES
// lives on the header declaration, plus a bare m.lock() body and a seeded
// unlocked access.
#include "counter.h"

namespace fixture {

void Counter::Flush() {
  value_ = 0;  // clean: the declaration in counter.h carries ASR_REQUIRES(mu_)
}

void Counter::LockedByHand() {
  mu_.lock();
  ++value_;  // clean: a direct mu_.lock() counts as holding the mutex
  mu_.unlock();
}

void Counter::BadReset() {
  value_ = 0;  // expect: lock-discipline
}

}  // namespace fixture
