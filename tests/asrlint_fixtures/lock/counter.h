// lock-discipline fixture: a class with ASR_GUARDED_BY fields exercised by
// methods that do and do not hold the mutex. Fixtures are linted, never
// compiled — each seeded defect line carries a trailing "expect: <rule>"
// marker that asrlint_test recovers as the golden diagnostic set.
#ifndef ASR_TESTS_ASRLINT_FIXTURES_LOCK_COUNTER_H_
#define ASR_TESTS_ASRLINT_FIXTURES_LOCK_COUNTER_H_

#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void Good() {
    std::lock_guard<std::mutex> lock(mu_);
    ++value_;
  }

  void BadIncrement() {
    ++value_;  // expect: lock-discipline
  }

  uint64_t Read() const ASR_REQUIRES(mu_) { return value_; }

  // Out-of-line definition in counter.cc inherits this declaration's
  // ASR_REQUIRES — the cross-file half of the rule.
  void Flush() ASR_REQUIRES(mu_);
  void BadReset();
  void LockedByHand();

  void Allowed() {
    // asrlint:allow(lock-discipline) fixture: demonstrates suppression.
    value_ = 0;
  }

 private:
  mutable std::mutex mu_;
  uint64_t value_ ASR_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // ASR_TESTS_ASRLINT_FIXTURES_LOCK_COUNTER_H_
