// status-discipline fixture: (void)-discarded call results with and without
// the "// justified:" escape hatch. A plain (void)value unused-parameter
// silencer is legal and must stay clean.
namespace fixture {

struct Status {
  bool ok() const;
};

Status Write();

struct Sink {
  Status Flush();
};

void Discards(Sink* sink, int fd) {
  (void)Write();         // expect: status-discipline
  (void)sink->Flush();   // expect: status-discipline
  (void)fd;              // clean: plain value silencer, not a call
}

void Justified() {
  // justified: fixture demonstrates the justification escape hatch.
  (void)Write();
}

void Allowed(Sink* sink) {
  // asrlint:allow(status-discipline) fixture: demonstrates suppression.
  (void)sink->Flush();
}

}  // namespace fixture
