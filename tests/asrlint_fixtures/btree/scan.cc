// metering-purity fixture: clock reads in a metering-path file (the path
// contains /btree/). Every clock token fires, call or not — the rule guards
// the bit-identical-counts contract, so even a stray mention is suspect.
#include <chrono>
#include <ctime>

namespace fixture {

long TimedScan() {
  auto t0 = std::chrono::steady_clock::now();  // expect: metering-purity
  long rows = 0;
  for (int i = 0; i < 64; ++i) rows += i;
  auto t1 = std::chrono::steady_clock::now();  // expect: metering-purity
  return rows + (t1 - t0).count();
}

long WallClock() {
  timespec ts;
  clock_gettime(0, &ts);  // expect: metering-purity
  return ts.tv_nsec;
}

long Allowed() {
  // asrlint:allow(metering-purity) fixture: demonstrates suppression.
  return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace fixture
