// seam-purity fixture: raw POSIX I/O in a file that is NOT on the seam
// allow-list (only file_backend.cc / wal.cc / io_retry.cc may issue it).
// Member calls and suppressed lines must stay clean. rename is deliberately
// absent here — it would additionally trip durability-order, which has its
// own fixture under storage/wal.cc.
#include <string>

namespace fixture {

struct File;

long ReadHeader(int fd, char* buf, long n) {
  return ::pread(fd, buf, n, 0);  // expect: seam-purity
}

int OpenRaw(const std::string& path) {
  return open(path.c_str(), 0);  // expect: seam-purity
}

int OpenMember(File* f, const std::string& path);

void SyncAllowed(int fd) {
  // asrlint:allow(seam-purity) fixture: demonstrates suppression.
  fsync(fd);
}

}  // namespace fixture
