// durability-order fixture. The path mirrors a seam-allowed file
// (storage/wal.cc) so raw rename/fsync are legal here and durability-order
// is exercised in isolation from seam-purity.
#include <string>

namespace fixture {

int PublishUnsynced(const std::string& tmp, const std::string& dst) {
  return ::rename(tmp.c_str(), dst.c_str());  // expect: durability-order
}

int PublishSynced(int fd, const std::string& tmp, const std::string& dst) {
  fsync(fd);
  return ::rename(tmp.c_str(), dst.c_str());  // clean: fsync came first
}

int PublishAllowed(const std::string& tmp, const std::string& dst) {
  // asrlint:allow(durability-order) fixture: demonstrates suppression.
  return ::rename(tmp.c_str(), dst.c_str());
}

}  // namespace fixture
