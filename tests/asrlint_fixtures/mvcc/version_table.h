// lock-discipline fixture for the storage/mvcc.h lock aliases: TxnCommitLock
// (exclusive) and SnapshotReadLock (shared) count as holding the mutex named
// in their constructor arguments, exactly like the std:: lock handles. The
// clean methods prove the aliases are recognised; each alias also gets one
// seeded violation where the handle is missing. Fixtures are linted, never
// compiled — seeded lines carry a trailing "expect: <rule>" marker.
#ifndef ASR_TESTS_ASRLINT_FIXTURES_MVCC_VERSION_TABLE_H_
#define ASR_TESTS_ASRLINT_FIXTURES_MVCC_VERSION_TABLE_H_

#include <cstdint>
#include <shared_mutex>

#include "common/thread_annotations.h"
#include "storage/mvcc.h"

namespace fixture {

class VersionTable {
 public:
  // Clean: TxnCommitLock names table_mu_ in its constructor arguments, so
  // the exclusive side of the commit path holds the mutex.
  void Commit() {
    storage::TxnCommitLock commit(table_mu_);
    ++epoch_;
  }

  // Clean: SnapshotReadLock is the shared side of the same mutex.
  uint64_t SnapshotEpoch() const {
    storage::SnapshotReadLock read(table_mu_);
    return epoch_;
  }

  // Seeded: the commit path mutates the epoch without its TxnCommitLock.
  void BadCommit() {
    ++epoch_;  // expect: lock-discipline
  }

  // Seeded: the read path drops its SnapshotReadLock.
  uint64_t BadSnapshotEpoch() const {
    return epoch_;  // expect: lock-discipline
  }

 private:
  mutable std::shared_mutex table_mu_;
  uint64_t epoch_ ASR_GUARDED_BY(table_mu_) = 0;
};

}  // namespace fixture

#endif  // ASR_TESTS_ASRLINT_FIXTURES_MVCC_VERSION_TABLE_H_
