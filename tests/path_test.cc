// Tests for path expressions (Def. 3.1) and their column layout (Def. 3.2).
#include <gtest/gtest.h>

#include "asr/path_expression.h"
#include "paper_example.h"

namespace asr {
namespace {

TEST(PathExpressionTest, CompanyPathResolves) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);

  EXPECT_EQ(path.n(), 3u);
  EXPECT_EQ(path.k(), 2u);  // Manufactures and Composition are sets
  EXPECT_EQ(path.m(), 5u);  // arity 6 with set columns (Def. 3.2 example)
  EXPECT_EQ(path.anchor(), base->division_type);
  EXPECT_TRUE(path.step(1).set_occurrence);
  EXPECT_TRUE(path.step(2).set_occurrence);
  EXPECT_FALSE(path.step(3).set_occurrence);
  EXPECT_EQ(path.type_at(0), base->division_type);
  EXPECT_EQ(path.type_at(1), base->product_type);
  EXPECT_EQ(path.type_at(2), base->basepart_type);
  EXPECT_EQ(path.type_at(3), gom::Schema::kStringType);
  EXPECT_TRUE(path.terminal_is_atomic());
  EXPECT_EQ(path.ToString(), "Division.Manufactures.Composition.Name");
}

TEST(PathExpressionTest, ColumnOfPositionWithSets) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  // Columns: 0=Division, 1=ProdSET, 2=Product, 3=BasePartSET, 4=BasePart,
  // 5=Name value.
  EXPECT_EQ(path.ColumnOfPosition(0), 0u);
  EXPECT_EQ(path.ColumnOfPosition(1), 2u);
  EXPECT_EQ(path.ColumnOfPosition(2), 4u);
  EXPECT_EQ(path.ColumnOfPosition(3), 5u);
}

TEST(PathExpressionTest, LinearPathHasNoSetColumns) {
  gom::Schema schema;
  TypeId leaf = schema.DefineTupleType("Leaf", {}, {}).value();
  TypeId mid =
      schema
          .DefineTupleType("Mid", {}, {{"Next", leaf, kInvalidTypeId}})
          .value();
  TypeId root =
      schema
          .DefineTupleType("Root", {}, {{"Child", mid, kInvalidTypeId}})
          .value();
  PathExpression path =
      PathExpression::Parse(schema, root, "Child.Next").value();
  EXPECT_EQ(path.n(), 2u);
  EXPECT_EQ(path.k(), 0u);
  EXPECT_EQ(path.m(), 2u);
  for (uint32_t p = 0; p <= 2; ++p) {
    EXPECT_EQ(path.ColumnOfPosition(p), p);
  }
}

TEST(PathExpressionTest, UnknownAttributeRejected) {
  auto base = testing::MakeCompanyBase();
  Result<PathExpression> bad = PathExpression::Parse(
      base->schema, base->division_type, "Manufactures.Ghost");
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(PathExpressionTest, AtomicMidPathRejected) {
  auto base = testing::MakeCompanyBase();
  // Name is atomic; nothing can follow it.
  Result<PathExpression> bad = PathExpression::Parse(
      base->schema, base->division_type, "Name.Manufactures");
  EXPECT_TRUE(bad.status().IsTypeError());
}

TEST(PathExpressionTest, EmptyPathRejected) {
  auto base = testing::MakeCompanyBase();
  EXPECT_FALSE(
      PathExpression::Create(base->schema, base->division_type, {}).ok());
  EXPECT_FALSE(
      PathExpression::Parse(base->schema, base->division_type, "A..B").ok());
}

TEST(PathExpressionTest, NonTupleAnchorRejected) {
  auto base = testing::MakeCompanyBase();
  EXPECT_TRUE(PathExpression::Parse(base->schema, base->prodset_type, "Name")
                  .status()
                  .IsTypeError());
  EXPECT_TRUE(
      PathExpression::Parse(base->schema, gom::Schema::kStringType, "Name")
          .status()
          .IsTypeError());
}

TEST(PathExpressionTest, InheritedAttributesTraversable) {
  gom::Schema schema;
  TypeId target = schema.DefineTupleType("Target", {}, {}).value();
  TypeId base_t =
      schema
          .DefineTupleType("Base", {}, {{"Ref", target, kInvalidTypeId}})
          .value();
  TypeId sub = schema.DefineTupleType("Sub", {base_t}, {}).value();
  Result<PathExpression> path = PathExpression::Parse(schema, sub, "Ref");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->step(1).domain_type, sub);
  EXPECT_EQ(path->step(1).range_type, target);
}

TEST(PathExpressionTest, SingleStepAtomic) {
  auto base = testing::MakeCompanyBase();
  Result<PathExpression> path =
      PathExpression::Parse(base->schema, base->basepart_type, "Price");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->n(), 1u);
  EXPECT_TRUE(path->terminal_is_atomic());
  EXPECT_EQ(path->type_at(1), gom::Schema::kDecimalType);
}

}  // namespace
}  // namespace asr
