// Tests for the common module: Status/Result, Oid, AsrKey, StringDict, Rng.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/asr_key.h"
#include "common/oid.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_dict.h"

namespace asr {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesDistinguishable) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_FALSE(Status::OutOfRange("x").IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(*r);
  EXPECT_EQ(*v, 7);
}

Status Propagates(bool fail) {
  ASR_RETURN_IF_ERROR(fail ? Status::Corruption("bad") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_TRUE(Propagates(true).IsCorruption());
}

// --- Oid ---------------------------------------------------------------------

TEST(OidTest, NullIsDefault) {
  Oid oid;
  EXPECT_TRUE(oid.IsNull());
  EXPECT_EQ(oid.raw(), 0u);
  EXPECT_EQ(oid.ToString(), "NULL");
}

TEST(OidTest, MakeRoundTrips) {
  Oid oid = Oid::Make(17, 12345);
  EXPECT_FALSE(oid.IsNull());
  EXPECT_EQ(oid.type_id(), 17u);
  EXPECT_EQ(oid.seq(), 12345u);
  EXPECT_EQ(oid.ToString(), "t17.s12345");
}

TEST(OidTest, LargeSequenceNumbers) {
  uint64_t big = (uint64_t{1} << 40) - 1;  // max 40-bit seq
  Oid oid = Oid::Make(3, big);
  EXPECT_EQ(oid.seq(), big);
  EXPECT_EQ(oid.type_id(), 3u);
}

TEST(OidTest, OrderingIsByTypeThenSeq) {
  EXPECT_LT(Oid::Make(1, 5), Oid::Make(2, 1));
  EXPECT_LT(Oid::Make(1, 1), Oid::Make(1, 2));
  EXPECT_EQ(Oid::Make(1, 1), Oid::Make(1, 1));
  EXPECT_NE(Oid::Make(1, 1), Oid::Make(1, 2));
}

TEST(OidTest, HashSpreadsSequentialIds) {
  std::unordered_set<size_t> hashes;
  for (uint64_t s = 1; s <= 1000; ++s) {
    hashes.insert(std::hash<Oid>()(Oid::Make(1, s)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

// --- AsrKey -------------------------------------------------------------------

TEST(AsrKeyTest, NullProperties) {
  AsrKey key;
  EXPECT_TRUE(key.IsNull());
  EXPECT_FALSE(key.IsOid());
  EXPECT_FALSE(key.IsInt());
  EXPECT_FALSE(key.IsString());
  EXPECT_EQ(key.ToString(), "NULL");
}

TEST(AsrKeyTest, OidRoundTrip) {
  Oid oid = Oid::Make(9, 77);
  AsrKey key = AsrKey::FromOid(oid);
  EXPECT_TRUE(key.IsOid());
  EXPECT_EQ(key.ToOid(), oid);
}

TEST(AsrKeyTest, IntRoundTripPositive) {
  AsrKey key = AsrKey::FromInt(123456789);
  EXPECT_TRUE(key.IsInt());
  EXPECT_EQ(key.ToInt(), 123456789);
}

TEST(AsrKeyTest, IntRoundTripNegative) {
  AsrKey key = AsrKey::FromInt(-42);
  EXPECT_TRUE(key.IsInt());
  EXPECT_EQ(key.ToInt(), -42);
}

TEST(AsrKeyTest, IntRoundTripExtremes) {
  EXPECT_EQ(AsrKey::FromInt(AsrKey::kMaxInt).ToInt(), AsrKey::kMaxInt);
  EXPECT_EQ(AsrKey::FromInt(AsrKey::kMinInt).ToInt(), AsrKey::kMinInt);
  EXPECT_EQ(AsrKey::FromInt(0).ToInt(), 0);
}

TEST(AsrKeyTest, StringCodes) {
  StringDict dict;
  AsrKey a = AsrKey::FromString("Utopia", &dict);
  AsrKey b = AsrKey::FromString("Utopia", &dict);
  AsrKey c = AsrKey::FromString("Mars", &dict);
  EXPECT_TRUE(a.IsString());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.Get(a.ToStringCode()), "Utopia");
  EXPECT_EQ(dict.Get(c.ToStringCode()), "Mars");
}

TEST(AsrKeyTest, TagsDoNotCollide) {
  StringDict dict;
  AsrKey as_oid = AsrKey::FromOid(Oid::Make(0, 5));
  AsrKey as_int = AsrKey::FromInt(5);
  AsrKey as_str = AsrKey::FromStringCode(5);
  EXPECT_NE(as_oid, as_int);
  EXPECT_NE(as_int, as_str);
  EXPECT_NE(as_oid, as_str);
}

TEST(AsrKeyTest, TotalOrderNullFirst) {
  StringDict dict;
  AsrKey null = AsrKey::Null();
  AsrKey oid = AsrKey::FromOid(Oid::Make(1, 1));
  AsrKey num = AsrKey::FromInt(-100);
  AsrKey str = AsrKey::FromString("a", &dict);
  EXPECT_LT(null, oid);
  EXPECT_LT(oid, num);
  EXPECT_LT(num, str);
}

// --- StringDict -----------------------------------------------------------

TEST(StringDictTest, InternIsIdempotent) {
  StringDict dict;
  uint32_t a = dict.Intern("hello");
  uint32_t b = dict.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(StringDictTest, LookupWithoutIntern) {
  StringDict dict;
  EXPECT_EQ(dict.Lookup("ghost"), StringDict::kNotFound);
  dict.Intern("ghost");
  EXPECT_NE(dict.Lookup("ghost"), StringDict::kNotFound);
}

TEST(StringDictTest, ManyStringsStableCodes) {
  StringDict dict;
  std::vector<uint32_t> codes;
  for (int i = 0; i < 2000; ++i) {
    codes.push_back(dict.Intern("str" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(dict.Get(codes[i]), "str" + std::to_string(i));
  }
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(99);
  for (uint64_t n : {uint64_t{10}, uint64_t{100}, uint64_t{10000}}) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, n / 2, n}) {
      std::vector<uint64_t> sample = rng.SampleWithoutReplacement(n, k);
      std::set<uint64_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(sample.size(), k);
      EXPECT_EQ(uniq.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace asr
