// Tests for ASR sharing across overlapping path expressions (§5.4).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "asr/query.h"
#include "asr/sharing.h"
#include "common/random.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr {
namespace {

// Two paths sharing the middle chain B -Next-> C:
//   pathA: A0.ToB.Next.ToD      (A0 -> B -> C -> D)
//   pathB: A1.IntoB.Next.ToE    (A1 -> B -> C -> E)
class SharingTest : public ::testing::Test {
 protected:
  SharingTest() : buffers_(&disk_, 64) {
    d_ = schema_.DefineTupleType("D", {}, {}).value();
    e_ = schema_.DefineTupleType("E", {}, {}).value();
    c_ = schema_
             .DefineTupleType("C", {},
                              {{"ToD", d_, kInvalidTypeId},
                               {"ToE", e_, kInvalidTypeId}})
             .value();
    b_ = schema_
             .DefineTupleType("B", {}, {{"Next", c_, kInvalidTypeId}})
             .value();
    a0_ = schema_
              .DefineTupleType("A0", {}, {{"ToB", b_, kInvalidTypeId}})
              .value();
    a1_ = schema_
              .DefineTupleType("A1", {}, {{"IntoB", b_, kInvalidTypeId}})
              .value();
    store_ = std::make_unique<gom::ObjectStore>(&schema_, &buffers_);
    path_a_.emplace(
        PathExpression::Parse(schema_, a0_, "ToB.Next.ToD").value());
    path_b_.emplace(
        PathExpression::Parse(schema_, a1_, "IntoB.Next.ToE").value());
  }

  // Populates a random instance graph.
  void Populate(uint64_t seed) {
    Rng rng(seed);
    std::vector<Oid> bs, cs, ds, es;
    for (int i = 0; i < 12; ++i) bs.push_back(store_->CreateObject(b_).value());
    for (int i = 0; i < 10; ++i) cs.push_back(store_->CreateObject(c_).value());
    for (int i = 0; i < 8; ++i) ds.push_back(store_->CreateObject(d_).value());
    for (int i = 0; i < 8; ++i) es.push_back(store_->CreateObject(e_).value());
    for (int i = 0; i < 10; ++i) {
      Oid a0 = store_->CreateObject(a0_).value();
      if (rng.Bernoulli(0.8)) {
        ASR_CHECK(store_->SetRef(a0, "ToB", bs[rng.Uniform(bs.size())]).ok());
      }
      Oid a1 = store_->CreateObject(a1_).value();
      if (rng.Bernoulli(0.8)) {
        ASR_CHECK(
            store_->SetRef(a1, "IntoB", bs[rng.Uniform(bs.size())]).ok());
      }
    }
    for (Oid b : bs) {
      if (rng.Bernoulli(0.75)) {
        ASR_CHECK(store_->SetRef(b, "Next", cs[rng.Uniform(cs.size())]).ok());
      }
    }
    for (Oid c : cs) {
      if (rng.Bernoulli(0.7)) {
        ASR_CHECK(store_->SetRef(c, "ToD", ds[rng.Uniform(ds.size())]).ok());
      }
      if (rng.Bernoulli(0.7)) {
        ASR_CHECK(store_->SetRef(c, "ToE", es[rng.Uniform(es.size())]).ok());
      }
    }
  }

  gom::Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  std::unique_ptr<gom::ObjectStore> store_;
  std::optional<PathExpression> path_a_, path_b_;
  TypeId a0_, a1_, b_, c_, d_, e_;
};

TEST_F(SharingTest, FindLongestOverlapLocatesSharedChain) {
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  ASSERT_FALSE(overlap.empty());
  // Shared segment: position 1..2 in both paths (B -Next-> C).
  EXPECT_EQ(overlap.a_start, 1u);
  EXPECT_EQ(overlap.b_start, 1u);
  EXPECT_EQ(overlap.length, 1u);
}

TEST_F(SharingTest, OverlapWithSelfIsWholePath) {
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_a_);
  EXPECT_EQ(overlap.a_start, 0u);
  EXPECT_EQ(overlap.length, path_a_->n());
}

TEST_F(SharingTest, NoOverlapBetweenDisjointPaths) {
  PathExpression c_to_d = PathExpression::Parse(schema_, c_, "ToD").value();
  PathExpression c_to_e = PathExpression::Parse(schema_, c_, "ToE").value();
  EXPECT_TRUE(FindLongestOverlap(c_to_d, c_to_e).empty());
}

TEST_F(SharingTest, SharabilityRules) {
  PathOverlap mid = FindLongestOverlap(*path_a_, *path_b_);
  EXPECT_TRUE(OverlapSharable(mid, ExtensionKind::kFull, *path_a_, *path_b_));
  EXPECT_FALSE(OverlapSharable(mid, ExtensionKind::kCanonical, *path_a_,
                               *path_b_));
  // The shared segment is neither a prefix nor a suffix of both paths.
  EXPECT_FALSE(OverlapSharable(mid, ExtensionKind::kLeftComplete, *path_a_,
                               *path_b_));
  EXPECT_FALSE(OverlapSharable(mid, ExtensionKind::kRightComplete, *path_a_,
                               *path_b_));

  // A path compared to itself: prefix and suffix both hold.
  PathOverlap self = FindLongestOverlap(*path_a_, *path_a_);
  EXPECT_TRUE(OverlapSharable(self, ExtensionKind::kLeftComplete, *path_a_,
                              *path_a_));
  EXPECT_TRUE(OverlapSharable(self, ExtensionKind::kRightComplete, *path_a_,
                              *path_a_));
}

TEST_F(SharingTest, SharingDecompositionIsolatesSegment) {
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  Decomposition dec_a = SharingDecomposition(overlap, true, *path_a_);
  EXPECT_EQ(dec_a.ToString(), "(0,1,2,3)");
  Decomposition dec_b = SharingDecomposition(overlap, false, *path_b_);
  EXPECT_EQ(dec_b.ToString(), "(0,1,2,3)");
}

TEST_F(SharingTest, SegmentSignaturesMatchAcrossPaths) {
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  EXPECT_EQ(SegmentSignature(*path_a_, overlap.a_start, overlap.length),
            SegmentSignature(*path_b_, overlap.b_start, overlap.length));
  EXPECT_NE(SegmentSignature(*path_a_, 0, 1),
            SegmentSignature(*path_b_, 0, 1));
}

// The §5.4 equality: over the shared chain segment, both paths' full
// extensions materialize the same *subpaths*. (The NULL-padded dangler rows
// may differ — whether an unreferenced object shows up depends on its edges
// outside the shared window — which is why a shared store keeps the union.)
TEST_F(SharingTest, SharedPartitionSubpathsEqual) {
  Populate(3);
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  rel::Relation ext_a =
      ComputeExtension(store_.get(), *path_a_, ExtensionKind::kFull, true)
          .value();
  rel::Relation ext_b =
      ComputeExtension(store_.get(), *path_b_, ExtensionKind::kFull, true)
          .value();
  auto complete_rows = [](const rel::Relation& r) {
    rel::Relation out(r.arity());
    for (const rel::Row& row : r.rows()) {
      bool has_null = false;
      for (AsrKey k : row) has_null |= k.IsNull();
      if (!has_null) out.AddRow(row);
    }
    return out;
  };
  rel::Relation shared_a = complete_rows(
      ext_a.Project(overlap.a_start, overlap.a_start + overlap.length));
  rel::Relation shared_b = complete_rows(
      ext_b.Project(overlap.b_start, overlap.b_start + overlap.length));
  EXPECT_GT(shared_a.size(), 0u);
  EXPECT_TRUE(shared_a.EqualsAsSet(shared_b));
}

TEST_F(SharingTest, CatalogSharesPartitionStores) {
  Populate(5);
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  AsrCatalog catalog(store_.get());
  AccessSupportRelation* asr_a =
      catalog.Build(*path_a_, ExtensionKind::kFull,
                    SharingDecomposition(overlap, true, *path_a_))
          .value();
  uint32_t segments_before =
      static_cast<uint32_t>(store_->buffers()->disk()->segment_count());
  AccessSupportRelation* asr_b =
      catalog.Build(*path_b_, ExtensionKind::kFull,
                    SharingDecomposition(overlap, false, *path_b_))
          .value();
  uint32_t segments_after =
      static_cast<uint32_t>(store_->buffers()->disk()->segment_count());

  EXPECT_EQ(catalog.shared_partition_count(), 1u);
  // The shared partition is the same object in both ASRs.
  EXPECT_EQ(asr_a->partition_store(1).get(), asr_b->partition_store(1).get());
  // Only the two private partitions created new tree segments (2 trees each).
  EXPECT_EQ(segments_after - segments_before, 4u);

  // Both ASRs answer correctly despite the shared storage.
  QueryEvaluator nav_a(store_.get(), &*path_a_);
  QueryEvaluator nav_b(store_.get(), &*path_b_);
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    AsrKey target_d = AsrKey::FromOid(Oid::Make(d_, seq));
    std::set<uint64_t> want, got;
    for (AsrKey k : nav_a.BackwardNoSupport(target_d, 0, 3).value()) {
      want.insert(k.raw());
    }
    for (AsrKey k : asr_a->EvalBackward(target_d, 0, 3).value()) {
      got.insert(k.raw());
    }
    EXPECT_EQ(got, want) << "path A, d seq " << seq;

    AsrKey target_e = AsrKey::FromOid(Oid::Make(e_, seq));
    want.clear();
    got.clear();
    for (AsrKey k : nav_b.BackwardNoSupport(target_e, 0, 3).value()) {
      want.insert(k.raw());
    }
    for (AsrKey k : asr_b->EvalBackward(target_e, 0, 3).value()) {
      got.insert(k.raw());
    }
    EXPECT_EQ(got, want) << "path B, e seq " << seq;
  }
}

TEST_F(SharingTest, CatalogSharesPrefixPartitionsForLeftComplete) {
  Populate(13);
  // Two left-complete paths with the same anchor and prefix A0.ToB.Next,
  // diverging in the last step (ToD vs ToE) — §5.4 exception 1.
  PathExpression to_d =
      PathExpression::Parse(schema_, a0_, "ToB.Next.ToD").value();
  PathExpression to_e =
      PathExpression::Parse(schema_, a0_, "ToB.Next.ToE").value();
  PathOverlap overlap = FindLongestOverlap(to_d, to_e);
  EXPECT_EQ(overlap.a_start, 0u);
  EXPECT_EQ(overlap.length, 2u);
  EXPECT_TRUE(OverlapSharable(overlap, ExtensionKind::kLeftComplete, to_d,
                              to_e));

  AsrCatalog catalog(store_.get());
  Decomposition dec = Decomposition::Of({0, 2, 3}, 3).value();
  AccessSupportRelation* asr_d =
      catalog.Build(to_d, ExtensionKind::kLeftComplete, dec).value();
  AccessSupportRelation* asr_e =
      catalog.Build(to_e, ExtensionKind::kLeftComplete, dec).value();
  EXPECT_EQ(catalog.shared_partition_count(), 1u);
  EXPECT_EQ(asr_d->partition_store(0).get(), asr_e->partition_store(0).get());
  EXPECT_NE(asr_d->partition_store(1).get(), asr_e->partition_store(1).get());

  // Queries stay correct through the shared prefix.
  QueryEvaluator nav_d(store_.get(), &to_d);
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    AsrKey target = AsrKey::FromOid(Oid::Make(d_, seq));
    std::set<uint64_t> want, got;
    for (AsrKey k : nav_d.BackwardNoSupport(target, 0, 3).value()) {
      want.insert(k.raw());
    }
    for (AsrKey k : asr_d->EvalBackward(target, 0, 3).value()) {
      got.insert(k.raw());
    }
    EXPECT_EQ(got, want) << "d seq " << seq;
  }

  // A canonical ASR never shares, even over the identical path.
  catalog.Build(to_d, ExtensionKind::kCanonical, dec).value();
  EXPECT_EQ(catalog.shared_partition_count(), 1u);
}

TEST_F(SharingTest, CatalogMaintenanceKeepsSharedStoresConsistent) {
  Populate(7);
  PathOverlap overlap = FindLongestOverlap(*path_a_, *path_b_);
  AsrCatalog catalog(store_.get());
  AccessSupportRelation* asr_a =
      catalog.Build(*path_a_, ExtensionKind::kFull,
                    SharingDecomposition(overlap, true, *path_a_))
          .value();
  AccessSupportRelation* asr_b =
      catalog.Build(*path_b_, ExtensionKind::kFull,
                    SharingDecomposition(overlap, false, *path_b_))
          .value();
  ASSERT_EQ(catalog.shared_partition_count(), 1u);

  // Churn edges on the SHARED segment (B.Next) and on private segments;
  // after each batch both ASRs must match from-scratch rebuilds.
  Rng rng(99);
  for (int op = 0; op < 25; ++op) {
    Oid u;
    std::string attr;
    AsrKey old_value;
    AsrKey new_value;
    int what = static_cast<int>(rng.Uniform(3));
    if (what == 0) {  // shared segment
      u = Oid::Make(b_, rng.Uniform(12) + 1);
      attr = "Next";
      new_value = rng.Bernoulli(0.25)
                      ? AsrKey::Null()
                      : AsrKey::FromOid(Oid::Make(c_, rng.Uniform(10) + 1));
    } else if (what == 1) {  // path A private tail
      u = Oid::Make(c_, rng.Uniform(10) + 1);
      attr = "ToD";
      new_value = rng.Bernoulli(0.25)
                      ? AsrKey::Null()
                      : AsrKey::FromOid(Oid::Make(d_, rng.Uniform(8) + 1));
    } else {  // path B private tail
      u = Oid::Make(c_, rng.Uniform(10) + 1);
      attr = "ToE";
      new_value = rng.Bernoulli(0.25)
                      ? AsrKey::Null()
                      : AsrKey::FromOid(Oid::Make(e_, rng.Uniform(8) + 1));
    }
    old_value = store_->GetAttributeByName(u, attr).value();
    if (old_value == new_value) continue;
    ASSERT_TRUE(store_->SetAttributeByName(u, attr, new_value).ok());
    // Assignment = insert new edge first, then remove old (see
    // OnAttributeAssigned); through the catalog this reaches every ASR.
    if (!new_value.IsNull()) {
      ASSERT_TRUE(catalog.OnEdgeInserted(u, attr, new_value).ok());
    }
    if (!old_value.IsNull()) {
      ASSERT_TRUE(catalog.OnEdgeRemoved(u, attr, old_value).ok());
    }

    // Oracle: private partitions equal a private rebuild; the shared
    // partition equals the UNION of both paths' rebuilt projections (each
    // path contributes its own NULL-padded dangler rows).
    auto rebuilt_a = AccessSupportRelation::Build(
                         store_.get(), asr_a->path(), asr_a->kind(),
                         asr_a->decomposition(), asr_a->options())
                         .value();
    auto rebuilt_b = AccessSupportRelation::Build(
                         store_.get(), asr_b->path(), asr_b->kind(),
                         asr_b->decomposition(), asr_b->options())
                         .value();
    auto check = [&](AccessSupportRelation* asr,
                     AccessSupportRelation* mine,
                     AccessSupportRelation* other, const char* label) {
      for (size_t p = 0; p < asr->partition_count(); ++p) {
        rel::Relation actual = asr->DumpPartition(p).value();
        rel::Relation expected = mine->DumpPartition(p).value();
        if (asr->partition_store(p).get() ==
            (asr == asr_a ? asr_b : asr_a)->partition_store(1).get()) {
          // Shared store: union in the other path's projection.
          rel::Relation other_part = other->DumpPartition(1).value();
          for (const rel::Row& row : other_part.rows()) {
            expected.AddRow(row);
          }
          expected.Normalize();
        }
        ASSERT_TRUE(actual.EqualsAsSet(expected))
            << label << " op " << op << " attr " << attr << " partition "
            << p << "\nactual:\n" << actual.ToString() << "expected:\n"
            << expected.ToString();
      }
    };
    check(asr_a, rebuilt_a.get(), rebuilt_b.get(), "A");
    check(asr_b, rebuilt_b.get(), rebuilt_a.get(), "B");
  }
}

}  // namespace
}  // namespace asr
