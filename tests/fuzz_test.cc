// Randomized differential tests ("fuzz" suites): the B+ tree against a
// reference container over long random operation sequences, random-base
// losslessness of arbitrary decompositions (Theorem 3.9), and random-path
// query agreement between all extensions.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "btree/btree.h"
#include "common/random.h"
#include "rel/relation.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

// --- B+ tree vs reference multiset ---------------------------------------

struct BTreeFuzzCase {
  uint32_t width;
  uint32_t key_column;
  uint64_t seed;
  uint64_t key_space;
};

class BTreeFuzzTest : public ::testing::TestWithParam<BTreeFuzzCase> {};

TEST_P(BTreeFuzzTest, MatchesReferenceUnderRandomOps) {
  const BTreeFuzzCase& param = GetParam();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 128);
  btree::BTree tree(&buffers, "fuzz", param.width, param.key_column);

  using Tuple = std::vector<uint64_t>;
  std::set<Tuple> reference;
  Rng rng(param.seed);

  auto random_tuple = [&] {
    Tuple t(param.width);
    for (uint64_t& v : t) v = rng.Uniform(param.key_space) + 1;
    return t;
  };
  auto to_keys = [](const Tuple& t) {
    std::vector<AsrKey> keys;
    for (uint64_t v : t) keys.push_back(AsrKey::FromOid(Oid::Make(1, v)));
    return keys;
  };

  for (int op = 0; op < 20000; ++op) {
    Tuple t = random_tuple();
    if (rng.Bernoulli(0.65)) {
      bool fresh = reference.insert(t).second;
      ASSERT_EQ(tree.Insert(to_keys(t)), fresh) << "op " << op;
    } else {
      bool present = reference.erase(t) > 0;
      ASSERT_EQ(tree.Erase(to_keys(t)), present) << "op " << op;
    }
  }
  ASSERT_EQ(tree.tuple_count(), reference.size());
  ASSERT_TRUE(tree.CheckIntegrity().ok());

  // Every cluster agrees with the reference.
  std::map<uint64_t, size_t> cluster_sizes;
  for (const Tuple& t : reference) ++cluster_sizes[t[param.key_column]];
  for (uint64_t key = 1; key <= param.key_space; ++key) {
    std::vector<std::vector<AsrKey>> rows;
    tree.Lookup(AsrKey::FromOid(Oid::Make(1, key)), &rows);
    auto it = cluster_sizes.find(key);
    size_t expected = it == cluster_sizes.end() ? 0 : it->second;
    ASSERT_EQ(rows.size(), expected) << "cluster " << key;
  }

  // Scan yields the whole content once, in key order.
  size_t scanned = 0;
  uint64_t prev_key = 0;
  ASSERT_TRUE(tree.ScanAll([&](const std::vector<AsrKey>& row) {
                    uint64_t key = row[param.key_column].ToOid().seq();
                    EXPECT_GE(key, prev_key);
                    prev_key = key;
                    Tuple t;
                    for (AsrKey k : row) t.push_back(k.ToOid().seq());
                    EXPECT_TRUE(reference.count(t) > 0);
                    ++scanned;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(scanned, reference.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeFuzzTest,
    ::testing::Values(BTreeFuzzCase{2, 0, 11, 40},
                      BTreeFuzzCase{2, 1, 12, 2000},
                      BTreeFuzzCase{3, 1, 13, 25},
                      BTreeFuzzCase{5, 4, 14, 200},
                      BTreeFuzzCase{6, 0, 15, 8}),
    [](const ::testing::TestParamInfo<BTreeFuzzCase>& info) {
      return "w" + std::to_string(info.param.width) + "k" +
             std::to_string(info.param.key_column) + "s" +
             std::to_string(info.param.seed);
    });

// --- Theorem 3.9 on random bases -------------------------------------------

TEST(LosslessnessFuzz, EveryDecompositionRejoinsToTheExtension) {
  for (uint64_t seed : {2ull, 5ull, 8ull}) {
    cost::ApplicationProfile profile;
    profile.n = 3;
    profile.c = {15, 25, 35, 20};
    profile.d = {12, 20, 28};
    profile.fan = {2, 1, 2};
    profile.size = {120, 120, 120, 120};
    auto base =
        workload::SyntheticBase::Generate(profile, {seed, 64}).value();

    for (ExtensionKind kind :
         {ExtensionKind::kCanonical, ExtensionKind::kFull,
          ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
      rel::Relation extension =
          ComputeExtension(base->store(), base->path(), kind, true).value();
      for (const Decomposition& dec : Decomposition::EnumerateAll(3)) {
        // Materialize the partitions by projection (Def. 3.8) and re-join.
        std::vector<rel::Relation> parts;
        for (size_t p = 0; p < dec.partition_count(); ++p) {
          auto [a, b] = dec.partition(p);
          parts.push_back(extension.Project(a, b));
        }
        rel::Relation rejoined = parts[0];
        for (size_t p = 1; p < parts.size(); ++p) {
          rejoined = rel::Relation::Join(rejoined, parts[p],
                                         rel::JoinKind::kNatural);
        }
        // The natural re-join reproduces every NULL-free row, and — because
        // prefixes and suffixes are independent given the boundary object —
        // adds nothing beyond the extension's rows whose boundary columns
        // are non-NULL. Compare on that common footing.
        auto non_null_boundary_rows = [&](const rel::Relation& r) {
          rel::Relation out(r.arity());
          for (const rel::Row& row : r.rows()) {
            bool ok = true;
            for (uint32_t cut : dec.cuts()) {
              ok &= !row[cut].IsNull();
            }
            for (AsrKey k : row) ok &= !k.IsNull();
            if (ok) out.AddRow(row);
          }
          out.Normalize();
          return out;
        };
        rel::Relation expected = non_null_boundary_rows(extension);
        rel::Relation actual = non_null_boundary_rows(rejoined);
        ASSERT_TRUE(actual.EqualsAsSet(expected))
            << ExtensionKindName(kind) << " " << dec.ToString() << " seed "
            << seed;
      }
    }
  }
}

// --- Random query agreement across extensions -------------------------------

TEST(QueryAgreementFuzz, AllSupportingExtensionsAgreeWithNavigation) {
  cost::ApplicationProfile profile;
  profile.n = 4;
  profile.c = {25, 40, 60, 80, 50};
  profile.d = {20, 32, 45, 60};
  profile.fan = {2, 1, 2, 1};
  profile.size = {120, 120, 120, 120, 120};
  auto base = workload::SyntheticBase::Generate(profile, {31, 64}).value();
  QueryEvaluator nav(base->store(), &base->path());

  std::vector<std::unique_ptr<AccessSupportRelation>> asrs;
  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    for (const Decomposition& dec :
         {Decomposition::None(4), Decomposition::Binary(4),
          Decomposition::Of({0, 2, 4}, 4).value()}) {
      asrs.push_back(AccessSupportRelation::Build(base->store(),
                                                  base->path(), kind, dec)
                         .value());
    }
  }

  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t i = static_cast<uint32_t>(rng.Uniform(4));
    uint32_t j = i + 1 + static_cast<uint32_t>(rng.Uniform(4 - i));
    bool forward = rng.Bernoulli(0.5);
    std::set<uint64_t> expected;
    AsrKey anchor;
    if (forward) {
      const auto& starts = base->objects_at(i);
      anchor = AsrKey::FromOid(starts[rng.Uniform(starts.size())]);
      for (AsrKey k : nav.ForwardNoSupport(anchor, i, j).value()) {
        expected.insert(k.raw());
      }
    } else {
      const auto& targets = base->objects_at(j);
      anchor = AsrKey::FromOid(targets[rng.Uniform(targets.size())]);
      for (AsrKey k : nav.BackwardNoSupport(anchor, i, j).value()) {
        expected.insert(k.raw());
      }
    }
    for (const auto& asr : asrs) {
      if (!asr->SupportsQuery(i, j)) continue;
      std::set<uint64_t> got;
      Result<std::vector<AsrKey>> result =
          forward ? asr->EvalForward(anchor, i, j)
                  : asr->EvalBackward(anchor, i, j);
      ASSERT_TRUE(result.ok());
      for (AsrKey k : *result) got.insert(k.raw());
      ASSERT_EQ(got, expected)
          << ExtensionKindName(asr->kind()) << " "
          << asr->decomposition().ToString() << " trial " << trial
          << (forward ? " fw" : " bw") << " i=" << i << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace asr
