// Self-test for tools/asrlint.
//
// The fixtures under tests/asrlint_fixtures/ mirror the src/ layout (the
// path-scoped rules match by path fragment) and seed one set of known
// violations; every seeded line carries a trailing "expect: <rule>" marker.
// The golden set is recovered from the fixtures themselves, so the test
// asserts the exact (rule, file, line) of every diagnostic — each planted
// defect must be reported exactly once, and nothing else may fire (the
// fixtures also contain near-miss clean code and suppressed lines).
//
// The second half runs the analyzer over the real src/ tree and requires it
// to be clean — the same gate scripts/ci.sh enforces.
#include "lint.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace asrlint {
namespace {

using Golden = std::set<std::pair<int, std::string>>;  // (line, rule)

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kSet = {
      "lock-discipline", "seam-purity", "metering-purity",
      "status-discipline", "durability-order"};
  return kSet;
}

// Scans a fixture for "expect: <rule>" markers; only the five known rule
// names count (so prose mentioning the marker syntax does not).
Golden ExpectedIn(const std::string& path) {
  Golden out;
  std::ifstream in(path);
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    size_t pos = line.find("expect: ");
    if (pos == std::string::npos) continue;
    size_t start = pos + 8;
    size_t end = start;
    while (end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[end])) ||
            line[end] == '-')) {
      ++end;
    }
    const std::string rule = line.substr(start, end - start);
    if (KnownRules().count(rule) > 0) out.insert({ln, rule});
  }
  return out;
}

std::string Render(const std::string& file, const Golden& set) {
  std::string out;
  for (const auto& [line, rule] : set) {
    out += "  " + file + ":" + std::to_string(line) + " [" + rule + "]\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

TEST(AsrlintFixtures, EverySeededDefectReportedExactlyOnce) {
  const std::vector<std::string> fixtures = GlobSources(ASR_LINT_FIXTURE_DIR);
  ASSERT_GE(fixtures.size(), 6u) << "fixture tree missing";

  Analyzer analyzer;
  std::map<std::string, Golden> expected;
  for (const std::string& path : fixtures) {
    ASSERT_TRUE(analyzer.AddFile(path)) << path;
    expected[path] = ExpectedIn(path);
  }

  std::map<std::string, Golden> actual;
  for (const std::string& path : fixtures) actual[path];  // empty default
  for (const Diagnostic& d : analyzer.Run()) {
    // A repeated (line, rule) pair would collapse in a set; fail loudly.
    EXPECT_TRUE(actual[d.file].insert({d.line, d.rule}).second)
        << "duplicate diagnostic: " << d.file << ":" << d.line << " ["
        << d.rule << "]";
  }

  for (const std::string& path : fixtures) {
    EXPECT_EQ(expected[path], actual[path])
        << path << "\nexpected:\n"
        << Render(path, expected[path]) << "actual:\n"
        << Render(path, actual[path]);
  }
}

TEST(AsrlintFixtures, AllFiveRulesAreExercised) {
  std::set<std::string> seeded;
  for (const std::string& path : GlobSources(ASR_LINT_FIXTURE_DIR)) {
    for (const auto& [line, rule] : ExpectedIn(path)) seeded.insert(rule);
  }
  EXPECT_EQ(seeded, KnownRules());
}

TEST(AsrlintCleanTree, SrcHasNoDiagnostics) {
  const std::vector<std::string> sources = GlobSources(ASR_LINT_SOURCE_DIR);
  ASSERT_GT(sources.size(), 50u) << "src/ glob came back suspiciously small";

  Analyzer analyzer;
  for (const std::string& path : sources) {
    ASSERT_TRUE(analyzer.AddFile(path)) << path;
  }
  std::vector<Diagnostic> diags = analyzer.Run();
  std::string rendered;
  for (const Diagnostic& d : diags) {
    rendered +=
        d.file + ":" + std::to_string(d.line) + " [" + d.rule + "] " +
        d.message + "\n";
  }
  EXPECT_TRUE(diags.empty()) << rendered;
}

TEST(AsrlintInputs, FilesFromCompileCommandsExtractsFileKeys) {
  const std::string path = ::testing::TempDir() + "/asrlint_cc.json";
  {
    std::ofstream out(path);
    out << R"([
      {"directory": "/b", "command": "c++ -c a.cc", "file": "/b/a.cc"},
      {"directory": "/b", "file": "/b/dir with space/x.cc",
       "command": "c++ -c x.cc"},
      {"file": "/b/esc\"aped.cc"}
    ])";
  }
  const std::vector<std::string> files = FilesFromCompileCommands(path);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "/b/a.cc");
  EXPECT_EQ(files[1], "/b/dir with space/x.cc");
  EXPECT_EQ(files[2], "/b/esc\"aped.cc");
  std::remove(path.c_str());
}

TEST(AsrlintInputs, SuppressionCoversContiguousCommentBlockOnly) {
  Analyzer analyzer;
  analyzer.AddSource("mem/one.cc",
                     "// asrlint:allow(seam-purity) reaching past the seam\n"
                     "// is fine in this probe.\n"
                     "int a(int fd) { return fsync(fd); }\n"
                     "\n"
                     "int b(int fd) { return fsync(fd); }\n");
  std::vector<Diagnostic> diags = analyzer.Run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "seam-purity");
  EXPECT_EQ(diags[0].line, 5);  // the blank line broke the comment block
}

}  // namespace
}  // namespace asrlint
