// Tests for access support relation construction and supported query
// evaluation, cross-checked against navigational evaluation on the same
// object base (the two must always agree on results).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "paper_example.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

using workload::GenerateOptions;
using workload::SyntheticBase;

std::set<uint64_t> AsSet(const std::vector<AsrKey>& keys) {
  std::set<uint64_t> out;
  for (AsrKey k : keys) out.insert(k.raw());
  return out;
}

cost::ApplicationProfile SmallProfile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {40, 60, 80, 50};
  p.d = {30, 45, 60};
  p.fan = {2, 1, 3};
  p.size = {120, 120, 120, 120};
  return p;
}

struct QueryCase {
  ExtensionKind kind;
  std::vector<uint32_t> cuts;
};

class AsrQueryTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(AsrQueryTest, SupportedQueriesMatchNavigational) {
  const QueryCase& param = GetParam();
  auto base = SyntheticBase::Generate(SmallProfile(), GenerateOptions{7, 64})
                  .value();
  Decomposition dec =
      Decomposition::Of(param.cuts, base->path().n()).value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          param.kind, dec)
                 .value();
  QueryEvaluator nav(base->store(), &base->path());
  const uint32_t n = base->path().n();

  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j <= n; ++j) {
      // Forward from a sample of level-i objects.
      for (size_t s = 0; s < base->objects_at(i).size(); s += 7) {
        AsrKey start = AsrKey::FromOid(base->objects_at(i)[s]);
        Result<std::vector<AsrKey>> expect = nav.ForwardNoSupport(start, i, j);
        ASSERT_TRUE(expect.ok());
        Result<std::vector<AsrKey>> got = asr->EvalForward(start, i, j);
        if (!asr->SupportsQuery(i, j)) {
          EXPECT_TRUE(got.status().IsNotSupported());
          continue;
        }
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(AsSet(*got), AsSet(*expect))
            << "fw i=" << i << " j=" << j << " s=" << s;
      }
      // Backward towards a sample of level-j objects.
      for (size_t t = 0; t < base->objects_at(j).size(); t += 11) {
        AsrKey target = AsrKey::FromOid(base->objects_at(j)[t]);
        Result<std::vector<AsrKey>> expect =
            nav.BackwardNoSupport(target, i, j);
        ASSERT_TRUE(expect.ok());
        Result<std::vector<AsrKey>> got = asr->EvalBackward(target, i, j);
        if (!asr->SupportsQuery(i, j)) {
          EXPECT_TRUE(got.status().IsNotSupported());
          continue;
        }
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_EQ(AsSet(*got), AsSet(*expect))
            << "bw i=" << i << " j=" << j << " t=" << t;
      }
    }
  }
}

TEST_P(AsrQueryTest, PartitionsEqualProjectedExtension) {
  const QueryCase& param = GetParam();
  auto base = SyntheticBase::Generate(SmallProfile(), GenerateOptions{7, 64})
                  .value();
  Decomposition dec =
      Decomposition::Of(param.cuts, base->path().n()).value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          param.kind, dec)
                 .value();
  rel::Relation extension =
      ComputeExtension(base->store(), base->path(), param.kind,
                       /*drop_set_columns=*/true)
          .value();
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    auto [first, last] = asr->partition_range(p);
    rel::Relation expected = extension.Project(first, last);
    // The stored partition omits all-NULL slices.
    rel::Relation trimmed(expected.arity());
    for (const rel::Row& row : expected.rows()) {
      bool all_null = true;
      for (AsrKey k : row) all_null &= k.IsNull();
      if (!all_null) trimmed.AddRow(row);
    }
    rel::Relation actual = asr->DumpPartition(p).value();
    EXPECT_TRUE(actual.EqualsAsSet(trimmed))
        << "partition " << first << "-" << last;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExtensionsAndDecompositions, AsrQueryTest,
    ::testing::Values(
        QueryCase{ExtensionKind::kCanonical, {0, 3}},
        QueryCase{ExtensionKind::kCanonical, {0, 1, 2, 3}},
        QueryCase{ExtensionKind::kFull, {0, 3}},
        QueryCase{ExtensionKind::kFull, {0, 1, 2, 3}},
        QueryCase{ExtensionKind::kFull, {0, 2, 3}},
        QueryCase{ExtensionKind::kLeftComplete, {0, 3}},
        QueryCase{ExtensionKind::kLeftComplete, {0, 1, 3}},
        QueryCase{ExtensionKind::kRightComplete, {0, 3}},
        QueryCase{ExtensionKind::kRightComplete, {0, 2, 3}}),
    [](const ::testing::TestParamInfo<QueryCase>& info) {
      std::string name = ExtensionKindName(info.param.kind);
      for (uint32_t c : info.param.cuts) name += "_" + std::to_string(c);
      return name;
    });

TEST(AsrBuildTest, RejectsMismatchedDecomposition) {
  auto base = SyntheticBase::Generate(SmallProfile(), GenerateOptions{7, 64})
                  .value();
  Decomposition wrong = Decomposition::None(5);
  EXPECT_TRUE(AccessSupportRelation::Build(base->store(), base->path(),
                                           ExtensionKind::kFull, wrong)
                  .status()
                  .IsInvalidArgument());
}

TEST(AsrBuildTest, RetainedSetColumnsCompanyQueries) {
  auto company = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*company);
  AsrOptions options;
  options.drop_set_columns = false;
  auto asr = AccessSupportRelation::Build(
                 company->store.get(), path, ExtensionKind::kFull,
                 Decomposition::Binary(path.m()), options)
                 .value();
  EXPECT_EQ(asr->width(), 6u);

  // Query 2 (backward over the whole path): which Division uses a BasePart
  // named "Door"?
  Result<std::vector<AsrKey>> divisions =
      asr->EvalBackward(company->Name("Door"), 0, 3);
  ASSERT_TRUE(divisions.ok());
  EXPECT_EQ(AsSet(*divisions),
            AsSet({AsrKey::FromOid(company->auto_division),
                   AsrKey::FromOid(company->truck_division)}));

  // Query 3 (forward): all BasePart names used by the Auto division.
  Result<std::vector<AsrKey>> names =
      asr->EvalForward(AsrKey::FromOid(company->auto_division), 0, 3);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(AsSet(*names), AsSet({company->Name("Door")}));
}

TEST(AsrBuildTest, QueriesThroughInteriorColumnsScanPartition) {
  auto company = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*company);
  // No decomposition: sub-queries enter at interior columns.
  auto asr = AccessSupportRelation::Build(company->store.get(), path,
                                          ExtensionKind::kFull,
                                          Decomposition::None(path.n()))
                 .value();
  // Q_{1,3}: names reachable from the 560 SEC product.
  Result<std::vector<AsrKey>> names =
      asr->EvalForward(AsrKey::FromOid(company->sec560), 1, 3);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(AsSet(*names), AsSet({company->Name("Door")}));

  // Q_{1,2} backward: products using the Pepper base part.
  Result<std::vector<AsrKey>> products =
      asr->EvalBackward(AsrKey::FromOid(company->pepper), 1, 2);
  ASSERT_TRUE(products.ok());
  EXPECT_EQ(AsSet(*products), AsSet({AsrKey::FromOid(company->sausage)}));
}

TEST(AsrBuildTest, DescribeSummarizesPartitions) {
  auto base = SyntheticBase::Generate(SmallProfile(), GenerateOptions{7, 64})
                  .value();
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kFull,
                                          Decomposition::Of({0, 2, 3}, 3)
                                              .value())
                 .value();
  std::string text = asr->Describe();
  EXPECT_NE(text.find("extension=full"), std::string::npos);
  EXPECT_NE(text.find("decomposition=(0,2,3)"), std::string::npos);
  EXPECT_NE(text.find("partition [0..2]"), std::string::npos);
  EXPECT_NE(text.find("partition [2..3]"), std::string::npos);
  EXPECT_NE(text.find("tuples="), std::string::npos);
}

TEST(AsrBuildTest, TotalPagesPositiveAndGrowsWithRedundancy) {
  auto base = SyntheticBase::Generate(SmallProfile(), GenerateOptions{7, 64})
                  .value();
  auto none = AccessSupportRelation::Build(
                  base->store(), base->path(), ExtensionKind::kFull,
                  Decomposition::None(base->path().n()))
                  .value();
  auto binary = AccessSupportRelation::Build(
                    base->store(), base->path(), ExtensionKind::kFull,
                    Decomposition::Binary(base->path().n()))
                    .value();
  EXPECT_GT(none->TotalPages(), 0u);
  EXPECT_GT(binary->TotalPages(), 0u);
  EXPECT_EQ(none->partition_count(), 1u);
  EXPECT_EQ(binary->partition_count(), 3u);
}

}  // namespace
}  // namespace asr
