// Tests for the relational kernel: joins with the paper's NULL semantics,
// projections, and normalization.
#include <gtest/gtest.h>

#include "rel/relation.h"

namespace asr::rel {
namespace {

AsrKey K(uint64_t seq) { return AsrKey::FromOid(Oid::Make(1, seq)); }
AsrKey N() { return AsrKey::Null(); }

Relation Make(uint32_t arity, std::initializer_list<Row> rows) {
  Relation r(arity);
  for (const Row& row : rows) r.AddRow(row);
  return r;
}

TEST(RelationTest, NaturalJoinMatchesOnSharedColumn) {
  Relation left = Make(2, {{K(1), K(2)}, {K(3), K(4)}});
  Relation right = Make(2, {{K(2), K(9)}, {K(7), K(8)}});
  Relation out = Relation::Join(left, right, JoinKind::kNatural);
  EXPECT_EQ(out.arity(), 3u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0], (Row{K(1), K(2), K(9)}));
}

TEST(RelationTest, NaturalJoinFansOut) {
  Relation left = Make(2, {{K(1), K(2)}});
  Relation right = Make(2, {{K(2), K(5)}, {K(2), K(6)}});
  Relation out = Relation::Join(left, right, JoinKind::kNatural);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RelationTest, NullNeverJoins) {
  Relation left = Make(2, {{K(1), N()}});
  Relation right = Make(2, {{N(), K(9)}});
  EXPECT_EQ(Relation::Join(left, right, JoinKind::kNatural).size(), 0u);
  // Outer variants keep both rows as dangling, NULL-padded rows.
  Relation full = Relation::Join(left, right, JoinKind::kFullOuter);
  full.Normalize();
  Relation expected = Make(3, {{K(1), N(), N()}, {N(), N(), K(9)}});
  EXPECT_TRUE(full.EqualsAsSet(expected));
}

TEST(RelationTest, LeftOuterKeepsDanglingLeft) {
  Relation left = Make(2, {{K(1), K(2)}, {K(3), K(4)}});
  Relation right = Make(2, {{K(2), K(9)}});
  Relation out = Relation::Join(left, right, JoinKind::kLeftOuter);
  Relation expected = Make(3, {{K(1), K(2), K(9)}, {K(3), K(4), N()}});
  EXPECT_TRUE(out.EqualsAsSet(expected));
}

TEST(RelationTest, RightOuterKeepsDanglingRight) {
  Relation left = Make(2, {{K(1), K(2)}});
  Relation right = Make(2, {{K(2), K(9)}, {K(5), K(6)}});
  Relation out = Relation::Join(left, right, JoinKind::kRightOuter);
  Relation expected = Make(3, {{K(1), K(2), K(9)}, {N(), K(5), K(6)}});
  EXPECT_TRUE(out.EqualsAsSet(expected));
}

TEST(RelationTest, FullOuterKeepsBoth) {
  Relation left = Make(2, {{K(1), K(2)}, {K(3), K(4)}});
  Relation right = Make(2, {{K(2), K(9)}, {K(5), K(6)}});
  Relation out = Relation::Join(left, right, JoinKind::kFullOuter);
  Relation expected = Make(3, {{K(1), K(2), K(9)},
                               {K(3), K(4), N()},
                               {N(), K(5), K(6)}});
  EXPECT_TRUE(out.EqualsAsSet(expected));
}

TEST(RelationTest, TernaryOperandJoins) {
  // Set-occurrence auxiliary relations are ternary; the join is still on
  // last-of-left and first-of-right.
  Relation left = Make(3, {{K(1), K(2), K(3)}});
  Relation right = Make(3, {{K(3), K(4), K(5)}});
  Relation out = Relation::Join(left, right, JoinKind::kNatural);
  EXPECT_EQ(out.arity(), 5u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0], (Row{K(1), K(2), K(3), K(4), K(5)}));
}

TEST(RelationTest, ProjectionDeduplicates) {
  Relation r = Make(3, {{K(1), K(2), K(3)},
                        {K(1), K(2), K(4)},
                        {K(5), K(6), K(7)}});
  Relation p = r.Project(0, 1);
  EXPECT_EQ(p.arity(), 2u);
  EXPECT_EQ(p.size(), 2u);  // (1,2) appears once
}

TEST(RelationTest, ProjectionSingleColumn) {
  Relation r = Make(3, {{K(1), K(2), K(3)}, {K(4), K(2), K(5)}});
  Relation p = r.Project(1, 1);
  EXPECT_EQ(p.arity(), 1u);
  EXPECT_EQ(p.size(), 1u);
}

TEST(RelationTest, NormalizeSortsAndDedups) {
  Relation r = Make(2, {{K(3), K(4)}, {K(1), K(2)}, {K(3), K(4)}});
  r.Normalize();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.rows()[0], (Row{K(1), K(2)}));
  EXPECT_EQ(r.rows()[1], (Row{K(3), K(4)}));
}

TEST(RelationTest, EqualsAsSetIgnoresOrderAndDuplicates) {
  Relation a = Make(2, {{K(1), K(2)}, {K(3), K(4)}});
  Relation b = Make(2, {{K(3), K(4)}, {K(1), K(2)}, {K(1), K(2)}});
  EXPECT_TRUE(a.EqualsAsSet(b));
  Relation c = Make(2, {{K(1), K(2)}});
  EXPECT_FALSE(a.EqualsAsSet(c));
  Relation d = Make(3, {{K(1), K(2), K(3)}});
  EXPECT_FALSE(a.EqualsAsSet(d));
}

TEST(RelationTest, EmptyOperands) {
  Relation empty(2);
  Relation right = Make(2, {{K(2), K(9)}});
  EXPECT_EQ(Relation::Join(empty, right, JoinKind::kNatural).size(), 0u);
  EXPECT_EQ(Relation::Join(empty, right, JoinKind::kLeftOuter).size(), 0u);
  Relation ro = Relation::Join(empty, right, JoinKind::kRightOuter);
  EXPECT_EQ(ro.size(), 1u);
  EXPECT_TRUE(ro.rows()[0][0].IsNull());
}

// Losslessness (Theorem 3.9) on a path-shaped relation: re-joining the
// projections of a decomposition reproduces the original, because prefixes
// and suffixes are independent given the shared column value.
TEST(RelationTest, LosslessDecompositionOfPathRelation) {
  // Paths through a 3-level graph: b has edges to both d and e; a and c
  // both reach b. All four combinations must exist for consistency.
  Relation paths = Make(3, {{K(1), K(5), K(8)},
                            {K(1), K(5), K(9)},
                            {K(2), K(5), K(8)},
                            {K(2), K(5), K(9)},
                            {K(3), K(6), K(8)}});
  Relation left = paths.Project(0, 1);
  Relation right = paths.Project(1, 2);
  Relation rejoined = Relation::Join(left, right, JoinKind::kNatural);
  EXPECT_TRUE(rejoined.EqualsAsSet(paths));
}

}  // namespace
}  // namespace asr::rel
