// Tests for the GOM type system and object store.
#include <gtest/gtest.h>

#include <set>

#include "gom/object_store.h"
#include "gom/type_system.h"
#include "paper_example.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::gom {
namespace {

// --- Schema / type system -------------------------------------------------

TEST(SchemaTest, BuiltInAtomicTypes) {
  Schema schema;
  EXPECT_EQ(schema.name(Schema::kIntType), "INTEGER");
  EXPECT_EQ(schema.name(Schema::kDecimalType), "DECIMAL");
  EXPECT_EQ(schema.name(Schema::kStringType), "STRING");
  EXPECT_TRUE(schema.IsAtomic(Schema::kStringType));
  EXPECT_EQ(schema.atomic_kind(Schema::kIntType), AtomicKind::kInt);
}

TEST(SchemaTest, DefineTupleTypeWithAttributes) {
  Schema schema;
  Result<TypeId> t = schema.DefineTupleType(
      "Person", {},
      {{"Name", Schema::kStringType, kInvalidTypeId},
       {"Age", Schema::kIntType, kInvalidTypeId}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(schema.IsTuple(*t));
  ASSERT_EQ(schema.attributes(*t).size(), 2u);
  EXPECT_EQ(schema.attributes(*t)[0].name, "Name");
  EXPECT_EQ(*schema.FindAttribute(*t, "Age"), 1u);
  EXPECT_TRUE(schema.FindAttribute(*t, "Ghost").status().IsNotFound());
}

TEST(SchemaTest, DuplicateTypeNameRejected) {
  Schema schema;
  ASSERT_TRUE(schema.DefineTupleType("T", {}, {}).ok());
  EXPECT_TRUE(schema.DefineTupleType("T", {}, {}).status().IsAlreadyExists());
}

TEST(SchemaTest, DuplicateAttributeRejected) {
  Schema schema;
  Result<TypeId> t = schema.DefineTupleType(
      "T", {},
      {{"A", Schema::kIntType, kInvalidTypeId},
       {"A", Schema::kIntType, kInvalidTypeId}});
  EXPECT_TRUE(t.status().IsTypeError());
}

TEST(SchemaTest, SingleInheritanceFlattensAttributes) {
  Schema schema;
  TypeId base = schema
                    .DefineTupleType("Base", {},
                                     {{"X", Schema::kIntType, kInvalidTypeId}})
                    .value();
  TypeId sub =
      schema
          .DefineTupleType("Sub", {base},
                           {{"Y", Schema::kIntType, kInvalidTypeId}})
          .value();
  ASSERT_EQ(schema.attributes(sub).size(), 2u);
  EXPECT_EQ(schema.attributes(sub)[0].name, "X");  // inherited first
  EXPECT_EQ(schema.attributes(sub)[1].name, "Y");
  EXPECT_TRUE(schema.IsSubtypeOf(sub, base));
  EXPECT_FALSE(schema.IsSubtypeOf(base, sub));
  EXPECT_TRUE(schema.IsSubtypeOf(sub, sub));  // reflexive
}

TEST(SchemaTest, MultipleInheritance) {
  Schema schema;
  TypeId a = schema
                 .DefineTupleType("A", {},
                                  {{"X", Schema::kIntType, kInvalidTypeId}})
                 .value();
  TypeId b = schema
                 .DefineTupleType("B", {},
                                  {{"Y", Schema::kIntType, kInvalidTypeId}})
                 .value();
  TypeId ab = schema.DefineTupleType("AB", {a, b}, {}).value();
  EXPECT_EQ(schema.attributes(ab).size(), 2u);
  EXPECT_TRUE(schema.IsSubtypeOf(ab, a));
  EXPECT_TRUE(schema.IsSubtypeOf(ab, b));
}

TEST(SchemaTest, DiamondInheritanceAllowed) {
  Schema schema;
  TypeId root =
      schema
          .DefineTupleType("Root", {},
                           {{"X", Schema::kIntType, kInvalidTypeId}})
          .value();
  TypeId left = schema.DefineTupleType("L", {root}, {}).value();
  TypeId right = schema.DefineTupleType("R", {root}, {}).value();
  Result<TypeId> diamond = schema.DefineTupleType("D", {left, right}, {});
  ASSERT_TRUE(diamond.ok());
  // X arrives twice via the shared ancestor but is the same attribute.
  EXPECT_EQ(schema.attributes(*diamond).size(), 1u);
  EXPECT_TRUE(schema.IsSubtypeOf(*diamond, root));
}

TEST(SchemaTest, AmbiguousInheritanceRejected) {
  Schema schema;
  TypeId a = schema
                 .DefineTupleType("A", {},
                                  {{"X", Schema::kIntType, kInvalidTypeId}})
                 .value();
  TypeId b = schema
                 .DefineTupleType("B", {},
                                  {{"X", Schema::kIntType, kInvalidTypeId}})
                 .value();
  EXPECT_TRUE(schema.DefineTupleType("AB", {a, b}, {}).status().IsTypeError());
}

TEST(SchemaTest, SetTypes) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  TypeId st = schema.DefineSetType("TSet", t).value();
  EXPECT_TRUE(schema.IsSet(st));
  EXPECT_EQ(schema.element_type(st), t);
}

TEST(SchemaTest, PowersetsRejected) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  TypeId st = schema.DefineSetType("TSet", t).value();
  EXPECT_TRUE(schema.DefineSetType("TSetSet", st).status().IsTypeError());
}

TEST(SchemaTest, FindTypeByName) {
  Schema schema;
  TypeId t = schema.DefineTupleType("Widget", {}, {}).value();
  EXPECT_EQ(*schema.FindType("Widget"), t);
  EXPECT_TRUE(schema.FindType("Gadget").status().IsNotFound());
}

// --- ObjectStore ------------------------------------------------------------

TEST(ObjectStoreBasics, CreateAndReadTuple) {
  Schema schema;
  TypeId person =
      schema
          .DefineTupleType("Person", {},
                           {{"Name", Schema::kStringType, kInvalidTypeId},
                            {"Age", Schema::kIntType, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);

  Oid p = store.CreateObject(person).value();
  EXPECT_FALSE(p.IsNull());
  EXPECT_TRUE(store.Exists(p));
  // Fresh attributes are NULL (§2 "instantiation").
  EXPECT_TRUE(store.GetAttributeByName(p, "Name")->IsNull());

  ASSERT_TRUE(store.SetString(p, "Name", "Alice").ok());
  ASSERT_TRUE(store.SetInt(p, "Age", 31).ok());
  EXPECT_EQ(*store.GetString(p, "Name"), "Alice");
  EXPECT_EQ(store.GetAttributeByName(p, "Age")->ToInt(), 31);
}

TEST(ObjectStoreBasics, StrongTypingOnAttributes) {
  Schema schema;
  TypeId other = schema.DefineTupleType("Other", {}, {}).value();
  TypeId person =
      schema
          .DefineTupleType("Person", {},
                           {{"Age", Schema::kIntType, kInvalidTypeId},
                            {"Peer", other, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  Oid p = store.CreateObject(person).value();
  Oid o = store.CreateObject(other).value();

  // String into INTEGER attribute: rejected.
  EXPECT_TRUE(store.SetString(p, "Age", "old").IsTypeError());
  // Object reference into INTEGER attribute: rejected.
  EXPECT_TRUE(
      store.SetAttributeByName(p, "Age", AsrKey::FromOid(o)).IsTypeError());
  // Person reference where Other expected: rejected.
  EXPECT_TRUE(
      store.SetAttributeByName(p, "Peer", AsrKey::FromOid(p)).IsTypeError());
  // Correct reference accepted; NULL always accepted.
  EXPECT_TRUE(store.SetAttributeByName(p, "Peer", AsrKey::FromOid(o)).ok());
  EXPECT_TRUE(store.SetAttributeByName(p, "Peer", AsrKey::Null()).ok());
}

TEST(ObjectStoreBasics, SubtypeSubstitutability) {
  Schema schema;
  TypeId base = schema.DefineTupleType("Base", {}, {}).value();
  TypeId sub = schema.DefineTupleType("Sub", {base}, {}).value();
  TypeId holder =
      schema
          .DefineTupleType("Holder", {},
                           {{"Ref", base, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  Oid h = store.CreateObject(holder).value();
  Oid s = store.CreateObject(sub).value();
  // "the actually referenced instance may be a subtype-instance" (§2).
  EXPECT_TRUE(store.SetAttributeByName(h, "Ref", AsrKey::FromOid(s)).ok());
}

TEST(ObjectStoreBasics, DecimalFixedPoint) {
  Schema schema;
  TypeId t = schema
                 .DefineTupleType("T", {},
                                  {{"Price", Schema::kDecimalType,
                                    kInvalidTypeId}})
                 .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  Oid o = store.CreateObject(t).value();
  ASSERT_TRUE(store.SetDecimal(o, "Price", 1205.50).ok());
  EXPECT_EQ(store.GetAttributeByName(o, "Price")->ToInt(), 120550);
}

TEST(ObjectStoreBasics, SetSemantics) {
  Schema schema;
  TypeId item = schema.DefineTupleType("Item", {}, {}).value();
  TypeId items = schema.DefineSetType("Items", item).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);

  Oid set = store.CreateSet(items).value();
  Oid a = store.CreateObject(item).value();
  Oid b = store.CreateObject(item).value();

  EXPECT_EQ(store.GetSet(set)->members.size(), 0u);
  ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(a)).ok());
  ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(b)).ok());
  // Duplicate insertion is a no-op.
  ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(a)).ok());
  EXPECT_EQ(store.GetSet(set)->members.size(), 2u);
  EXPECT_TRUE(*store.SetContains(set, AsrKey::FromOid(a)));

  ASSERT_TRUE(store.RemoveFromSet(set, AsrKey::FromOid(a)).ok());
  EXPECT_FALSE(*store.SetContains(set, AsrKey::FromOid(a)));
  EXPECT_TRUE(store.RemoveFromSet(set, AsrKey::FromOid(a)).IsNotFound());
}

TEST(ObjectStoreBasics, SetElementTyping) {
  Schema schema;
  TypeId item = schema.DefineTupleType("Item", {}, {}).value();
  TypeId other = schema.DefineTupleType("Other", {}, {}).value();
  TypeId items = schema.DefineSetType("Items", item).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  Oid set = store.CreateSet(items).value();
  Oid o = store.CreateObject(other).value();
  EXPECT_TRUE(store.AddToSet(set, AsrKey::FromOid(o)).IsTypeError());
  EXPECT_TRUE(store.AddToSet(set, AsrKey::FromInt(5)).IsTypeError());
  EXPECT_TRUE(store.AddToSet(set, AsrKey::Null()).IsInvalidArgument());
}

TEST(ObjectStoreBasics, SetGrowthRelocates) {
  Schema schema;
  TypeId item = schema.DefineTupleType("Item", {}, {}).value();
  TypeId items = schema.DefineSetType("Items", item).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);

  Oid set = store.CreateSet(items).value();
  std::vector<Oid> members;
  for (int i = 0; i < 200; ++i) {
    Oid m = store.CreateObject(item).value();
    members.push_back(m);
    ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(m)).ok());
  }
  Result<SetView> view = store.GetSet(set);
  ASSERT_TRUE(view.ok());
  std::set<uint64_t> got;
  for (AsrKey k : view->members) got.insert(k.raw());
  EXPECT_EQ(got.size(), 200u);
  for (Oid m : members) EXPECT_TRUE(got.count(m.raw()) > 0);
}

TEST(ObjectStoreBasics, DeleteObject) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  Oid a = store.CreateObject(t).value();
  Oid b = store.CreateObject(t).value();
  EXPECT_EQ(store.ObjectCount(t), 2u);
  ASSERT_TRUE(store.DeleteObject(a).ok());
  EXPECT_FALSE(store.Exists(a));
  EXPECT_TRUE(store.Exists(b));
  EXPECT_EQ(store.ObjectCount(t), 1u);
  EXPECT_TRUE(store.DeleteObject(a).IsNotFound());
  EXPECT_TRUE(store.GetTuple(a).status().IsNotFound());
}

TEST(ObjectStoreBasics, ObjectSizePaddingControlsPageFill) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  store.SetObjectSize(t, 500);
  for (int i = 0; i < 80; ++i) store.CreateObject(t).value();
  // floor((4056-4) / 504) = 8 objects per page -> 10 pages.
  EXPECT_EQ(store.PageCount(t), 10u);
}

TEST(ObjectStoreBasics, ScanVisitsEachLiveTupleOnce) {
  Schema schema;
  TypeId t = schema
                 .DefineTupleType("T", {},
                                  {{"V", Schema::kIntType, kInvalidTypeId}})
                 .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  std::vector<Oid> oids;
  for (int i = 0; i < 50; ++i) {
    Oid o = store.CreateObject(t).value();
    ASSERT_TRUE(store.SetInt(o, "V", i).ok());
    oids.push_back(o);
  }
  ASSERT_TRUE(store.DeleteObject(oids[10]).ok());
  std::set<uint64_t> seen;
  ASSERT_TRUE(store
                  .ScanTuples(t,
                              [&](const TupleView& view) {
                                EXPECT_TRUE(seen.insert(view.oid.raw()).second);
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(seen.size(), 49u);
  EXPECT_EQ(seen.count(oids[10].raw()), 0u);
}

TEST(ObjectStoreBasics, ScanCostEqualsPageCount) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  store.SetObjectSize(t, 400);
  for (int i = 0; i < 100; ++i) store.CreateObject(t).value();
  disk.ResetStats();
  ASSERT_TRUE(
      store.ScanTuples(t, [](const TupleView&) { return Status::OK(); }).ok());
  EXPECT_EQ(disk.stats().page_reads, store.PageCount(t));
}

TEST(ObjectStoreBasics, GetTuplesBatchesPageAccesses) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  store.SetObjectSize(t, 400);  // ~10 objects per page
  std::vector<Oid> oids;
  for (int i = 0; i < 100; ++i) oids.push_back(store.CreateObject(t).value());

  disk.ResetStats();
  Result<std::vector<TupleView>> views = store.GetTuples(oids);
  ASSERT_TRUE(views.ok());
  EXPECT_EQ(views->size(), 100u);
  // All 100 objects over PageCount pages: one read per page.
  EXPECT_EQ(disk.stats().page_reads, store.PageCount(t));

  // Individual access costs one page each instead.
  disk.ResetStats();
  for (Oid o : oids) store.GetTuple(o).value();
  EXPECT_EQ(disk.stats().page_reads, 100u);
}

TEST(ObjectStoreBasics, ColocatedSetsShareOwnerPages) {
  Schema schema;
  TypeId target = schema.DefineTupleType("Target", {}, {}).value();
  TypeId tset = schema.DefineSetType("TSet", target).value();
  TypeId owner =
      schema
          .DefineTupleType("Owner", {}, {{"Kids", tset, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  store.SetObjectSize(owner, 250);
  store.SetObjectSize(tset, 48);
  store.ColocateType(tset, owner);

  std::vector<Oid> targets;
  for (int i = 0; i < 4; ++i) targets.push_back(store.CreateObject(target).value());

  std::vector<Oid> owners;
  for (int i = 0; i < 64; ++i) {
    Oid o = store.CreateObject(owner).value();
    Oid s = store.CreateSet(tset).value();
    ASSERT_TRUE(store.SetAttributeByName(o, "Kids", AsrKey::FromOid(s)).ok());
    ASSERT_TRUE(store.AddToSet(s, AsrKey::FromOid(targets[i % 4])).ok());
    owners.push_back(o);
  }

  // GetAttributeTargets should decode sets from the owners' pages: total
  // reads == pages of the shared segment.
  disk.ResetStats();
  auto result = store.GetAttributeTargets(owners, "Kids");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 64u);
  EXPECT_EQ(disk.stats().page_reads, store.PageCount(owner));
}

TEST(ObjectStoreBasics, ScanWithTargetsExpandsSets) {
  auto base = asr::testing::MakeCompanyBase();
  gom::ObjectStore& store = *base->store;
  int edges = 0;
  ASSERT_TRUE(store
                  .ScanWithTargets(base->division_type, "Manufactures",
                                   [&](Oid, const std::vector<AsrKey>& kids) {
                                     edges += static_cast<int>(kids.size());
                                     return Status::OK();
                                   })
                  .ok());
  // Auto -> {560 SEC}; Truck -> {560 SEC, MB Trak}; Space has NULL.
  EXPECT_EQ(edges, 3);
}


TEST(ObjectStoreBasics, LargeSetsOverflowAcrossPages) {
  Schema schema;
  TypeId item = schema.DefineTupleType("Item", {}, {}).value();
  TypeId items = schema.DefineSetType("Items", item).value();
  TypeId owner =
      schema.DefineTupleType("Owner", {},
                             {{"Kids", items, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 64);
  ObjectStore store(&schema, &buffers);

  // Far more members than a 4056-byte page can hold inline (~500).
  constexpr int kMembers = 2000;
  Oid set = store.CreateSet(items).value();
  std::vector<Oid> members;
  for (int i = 0; i < kMembers; ++i) {
    Oid m = store.CreateObject(item).value();
    members.push_back(m);
    ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(m)).ok());
  }

  // Full membership via GetSet.
  Result<SetView> view = store.GetSet(set);
  ASSERT_TRUE(view.ok());
  std::set<uint64_t> got;
  for (AsrKey k : view->members) got.insert(k.raw());
  EXPECT_EQ(got.size(), static_cast<size_t>(kMembers));

  // Contains across the chain, both ends.
  EXPECT_TRUE(*store.SetContains(set, AsrKey::FromOid(members.front())));
  EXPECT_TRUE(*store.SetContains(set, AsrKey::FromOid(members.back())));
  // Duplicate insertion across the chain stays a no-op.
  ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(members[1500])).ok());
  EXPECT_EQ(store.GetSet(set)->members.size(),
            static_cast<size_t>(kMembers));

  // Removal from a continuation record.
  ASSERT_TRUE(store.RemoveFromSet(set, AsrKey::FromOid(members[1777])).ok());
  EXPECT_FALSE(*store.SetContains(set, AsrKey::FromOid(members[1777])));
  EXPECT_EQ(store.GetSet(set)->members.size(),
            static_cast<size_t>(kMembers - 1));

  // ScanSets reports the set once, with full membership.
  int seen = 0;
  ASSERT_TRUE(store
                  .ScanSets(items,
                            [&](const SetView& v) {
                              ++seen;
                              EXPECT_EQ(v.members.size(),
                                        static_cast<size_t>(kMembers - 1));
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(seen, 1);

  // GetAttributeTargets expands the chain for owners too.
  Oid o = store.CreateObject(owner).value();
  ASSERT_TRUE(store.SetAttributeByName(o, "Kids", AsrKey::FromOid(set)).ok());
  auto targets = store.GetAttributeTargets({o}, "Kids").value();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0].second.size(), static_cast<size_t>(kMembers - 1));

  ASSERT_TRUE(store.CheckConsistency().ok());

  // Deleting the set tombstones its chain as well.
  ASSERT_TRUE(store.DeleteObject(set).ok());
  ASSERT_TRUE(store.CheckConsistency().ok());
  seen = 0;
  ASSERT_TRUE(store
                  .ScanSets(items,
                            [&](const SetView&) {
                              ++seen;
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(seen, 0);
}

TEST(ObjectStoreBasics, OverflowedSetsWorkThroughPathMachinery) {
  // An access-path hop through a set larger than one page.
  Schema schema;
  TypeId leaf = schema
                    .DefineTupleType("Leaf", {},
                                     {{"Tag", Schema::kStringType,
                                       kInvalidTypeId}})
                    .value();
  TypeId leafset = schema.DefineSetType("LeafSet", leaf).value();
  TypeId root =
      schema.DefineTupleType("Root", {},
                             {{"Kids", leafset, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 64);
  ObjectStore store(&schema, &buffers);

  Oid r = store.CreateObject(root).value();
  Oid set = store.CreateSet(leafset).value();
  ASSERT_TRUE(store.SetAttributeByName(r, "Kids", AsrKey::FromOid(set)).ok());
  for (int i = 0; i < 1200; ++i) {
    Oid l = store.CreateObject(leaf).value();
    ASSERT_TRUE(store.SetString(l, "Tag", "t" + std::to_string(i % 7)).ok());
    ASSERT_TRUE(store.AddToSet(set, AsrKey::FromOid(l)).ok());
  }
  int edges = 0;
  ASSERT_TRUE(store
                  .ScanWithTargets(root, "Kids",
                                   [&](Oid, const std::vector<AsrKey>& kids) {
                                     edges += static_cast<int>(kids.size());
                                     return Status::OK();
                                   })
                  .ok());
  EXPECT_EQ(edges, 1200);
}

TEST(ObjectStoreBasics, ErrorsOnInvalidOids) {
  Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  ObjectStore store(&schema, &buffers);
  EXPECT_TRUE(store.GetTuple(Oid::Null()).status().IsInvalidArgument());
  EXPECT_TRUE(store.GetTuple(Oid::Make(t, 99)).status().IsNotFound());
  EXPECT_TRUE(store.CreateObject(Schema::kIntType).status().IsTypeError());
  EXPECT_TRUE(store.CreateSet(t).status().IsTypeError());
}

}  // namespace
}  // namespace asr::gom
