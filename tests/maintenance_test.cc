// Property tests for incremental ASR maintenance (§6): after every edge
// insertion/removal, the incrementally maintained partitions must equal a
// from-scratch rebuild over the updated object base — for every extension
// and several decompositions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "common/macros.h"
#include "common/random.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

using workload::GenerateOptions;
using workload::SyntheticBase;

cost::ApplicationProfile TinyProfile() {
  cost::ApplicationProfile p;
  p.n = 3;
  p.c = {12, 16, 20, 14};
  p.d = {9, 12, 15};
  p.fan = {2, 1, 2};  // set-valued, single-valued, set-valued hops
  p.size = {120, 120, 120, 120};
  return p;
}

// Compares every partition of `asr` with a rebuilt ASR over the same store.
void ExpectMatchesRebuild(gom::ObjectStore* store,
                          AccessSupportRelation* asr,
                          const std::string& context) {
  auto rebuilt = AccessSupportRelation::Build(
                     store, asr->path(), asr->kind(), asr->decomposition(),
                     asr->options())
                     .value();
  ASSERT_EQ(rebuilt->partition_count(), asr->partition_count());
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    rel::Relation actual = asr->DumpPartition(p).value();
    rel::Relation expected = rebuilt->DumpPartition(p).value();
    EXPECT_TRUE(actual.EqualsAsSet(expected))
        << context << " partition " << p << "\nactual:\n"
        << actual.ToString() << "expected:\n"
        << expected.ToString();
  }
}

struct MaintenanceCase {
  ExtensionKind kind;
  std::vector<uint32_t> cuts;
};

class MaintenanceTest : public ::testing::TestWithParam<MaintenanceCase> {};

TEST_P(MaintenanceTest, RandomEdgeChurnMatchesRebuild) {
  const MaintenanceCase& param = GetParam();
  auto base =
      SyntheticBase::Generate(TinyProfile(), GenerateOptions{11, 64}).value();
  gom::ObjectStore* store = base->store();
  const PathExpression& path = base->path();
  Decomposition dec = Decomposition::Of(param.cuts, path.n()).value();
  auto asr = AccessSupportRelation::Build(store, path, param.kind, dec)
                 .value();

  Rng rng(1234);
  int checked = 0;
  for (int op = 0; op < 60; ++op) {
    uint32_t p = static_cast<uint32_t>(rng.Uniform(path.n()));
    const PathStep& step = path.step(p + 1);
    const std::vector<Oid>& owners = base->objects_at(p);
    const std::vector<Oid>& targets = base->objects_at(p + 1);
    Oid u = owners[rng.Uniform(owners.size())];
    Oid w = targets[rng.Uniform(targets.size())];
    AsrKey wkey = AsrKey::FromOid(w);

    if (!step.set_occurrence) {
      // Single-valued: assignment (covers insert, replace, clear).
      AsrKey old_value =
          store->GetAttributeByName(u, step.attr_name).value();
      AsrKey new_value = rng.Bernoulli(0.2) ? AsrKey::Null() : wkey;
      ASSERT_TRUE(
          store->SetAttributeByName(u, step.attr_name, new_value).ok());
      ASSERT_TRUE(asr->OnAttributeAssigned(u, p, old_value, new_value).ok());
    } else {
      AsrKey set_key = store->GetAttributeByName(u, step.attr_name).value();
      if (set_key.IsNull()) {
        // Owner was undefined: give it a set instance and immediately its
        // first member, then run maintenance for the new edge. (A lingering
        // *empty* set would itself change the extension — an empty set
        // yields a dangling tuple where an undefined attribute yields none,
        // Def. 3.3 — so the set is never left empty here.)
        Oid set_oid = store->CreateSet(step.set_type).value();
        ASSERT_TRUE(store->SetAttributeByName(u, step.attr_name,
                                              AsrKey::FromOid(set_oid))
                        .ok());
        ASSERT_TRUE(store->AddToSet(set_oid, wkey).ok());
        ASSERT_TRUE(asr->OnEdgeInserted(u, p, wkey).ok());
        goto check;
      }
      {
        Oid set_oid = set_key.ToOid();
        bool contains = store->SetContains(set_oid, wkey).value();
        if (!contains && rng.Bernoulli(0.6)) {
          ASSERT_TRUE(store->AddToSet(set_oid, wkey).ok());
          ASSERT_TRUE(asr->OnEdgeInserted(u, p, wkey).ok());
        } else if (contains) {
          ASSERT_TRUE(store->RemoveFromSet(set_oid, wkey).ok());
          ASSERT_TRUE(asr->OnEdgeRemoved(u, p, wkey).ok());
        } else {
          continue;  // nothing to do this round
        }
      }
    check:;
    }

    ExpectMatchesRebuild(store, asr.get(),
                         "op " + std::to_string(op) + " at p=" +
                             std::to_string(p) + " u=" + u.ToString() +
                             " w=" + w.ToString());
    ++checked;
    if (::testing::Test::HasFailure()) return;  // stop at first divergence
  }
  ExpectMatchesRebuild(store, asr.get(), "final");
  EXPECT_GT(checked, 0);

#if ASR_PARANOID_ENABLED
  // Paranoid teardown: beyond the per-commit-point structural validation,
  // run the full invariant checker (Defs. 3.3-3.6 membership, Theorem 3.9
  // losslessness) over the churned ASR once.
  check::CheckReport report;
  check::InvariantChecker().CheckAsr(asr.get(), &report);
  EXPECT_TRUE(report.clean()) << report.ToString();
#endif
}

INSTANTIATE_TEST_SUITE_P(
    AllExtensions, MaintenanceTest,
    ::testing::Values(
        MaintenanceCase{ExtensionKind::kCanonical, {0, 3}},
        MaintenanceCase{ExtensionKind::kCanonical, {0, 1, 2, 3}},
        MaintenanceCase{ExtensionKind::kFull, {0, 3}},
        MaintenanceCase{ExtensionKind::kFull, {0, 1, 2, 3}},
        MaintenanceCase{ExtensionKind::kFull, {0, 2, 3}},
        MaintenanceCase{ExtensionKind::kLeftComplete, {0, 3}},
        MaintenanceCase{ExtensionKind::kLeftComplete, {0, 1, 2, 3}},
        MaintenanceCase{ExtensionKind::kRightComplete, {0, 3}},
        MaintenanceCase{ExtensionKind::kRightComplete, {0, 1, 2, 3}},
        MaintenanceCase{ExtensionKind::kCanonical, {0, 2, 3}},
        MaintenanceCase{ExtensionKind::kLeftComplete, {0, 2, 3}},
        MaintenanceCase{ExtensionKind::kRightComplete, {0, 1, 3}}),
    [](const ::testing::TestParamInfo<MaintenanceCase>& info) {
      std::string name = ExtensionKindName(info.param.kind);
      for (uint32_t c : info.param.cuts) name += "_" + std::to_string(c);
      return name;
    });

// Deterministic corner cases on a linear 2-hop path.
class LinearMaintenanceTest : public ::testing::Test {
 protected:
  LinearMaintenanceTest() : buffers_(&disk_, 64) {
    c_ = schema_.DefineTupleType("C", {}, {}).value();
    b_ = schema_
             .DefineTupleType("B", {}, {{"Next", c_, kInvalidTypeId}})
             .value();
    a_ = schema_
             .DefineTupleType("A", {}, {{"Next", b_, kInvalidTypeId}})
             .value();
    store_ = std::make_unique<gom::ObjectStore>(&schema_, &buffers_);
    path_.emplace(PathExpression::Parse(schema_, a_, "Next.Next").value());
  }

  std::unique_ptr<AccessSupportRelation> Build(ExtensionKind kind) {
    return AccessSupportRelation::Build(store_.get(), *path_, kind,
                                        Decomposition::Binary(2))
        .value();
  }

  gom::Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  std::unique_ptr<gom::ObjectStore> store_;
  std::optional<PathExpression> path_;
  TypeId a_, b_, c_;
};

TEST_F(LinearMaintenanceTest, FirstEdgeRemovesDanglingRows) {
  Oid a = store_->CreateObject(a_).value();
  Oid b = store_->CreateObject(b_).value();
  Oid c = store_->CreateObject(c_).value();
  ASSERT_TRUE(store_->SetRef(a, "Next", b).ok());

  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    auto asr = Build(kind);
    // Connect b -> c: completes the path a -> b -> c.
    ASSERT_TRUE(store_->SetRef(b, "Next", c).ok());
    ASSERT_TRUE(asr->OnEdgeInserted(b, 1, AsrKey::FromOid(c)).ok());
    ExpectMatchesRebuild(store_.get(), asr.get(),
                         "insert " + ExtensionKindName(kind));
    // And disconnect again: dangling rows must come back.
    ASSERT_TRUE(
        store_->SetAttributeByName(b, "Next", AsrKey::Null()).ok());
    ASSERT_TRUE(asr->OnEdgeRemoved(b, 1, AsrKey::FromOid(c)).ok());
    ExpectMatchesRebuild(store_.get(), asr.get(),
                         "remove " + ExtensionKindName(kind));
  }
}

TEST_F(LinearMaintenanceTest, EdgeAtPathStart) {
  Oid a = store_->CreateObject(a_).value();
  Oid b = store_->CreateObject(b_).value();
  Oid c = store_->CreateObject(c_).value();
  ASSERT_TRUE(store_->SetRef(b, "Next", c).ok());

  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    auto asr = Build(kind);
    ASSERT_TRUE(store_->SetRef(a, "Next", b).ok());
    ASSERT_TRUE(asr->OnEdgeInserted(a, 0, AsrKey::FromOid(b)).ok());
    ExpectMatchesRebuild(store_.get(), asr.get(),
                         "insert@0 " + ExtensionKindName(kind));
    ASSERT_TRUE(
        store_->SetAttributeByName(a, "Next", AsrKey::Null()).ok());
    ASSERT_TRUE(asr->OnEdgeRemoved(a, 0, AsrKey::FromOid(b)).ok());
    ExpectMatchesRebuild(store_.get(), asr.get(),
                         "remove@0 " + ExtensionKindName(kind));
  }
}

TEST_F(LinearMaintenanceTest, MaintenanceRequiresDroppedSetColumns) {
  // An ASR with retained set columns refuses incremental maintenance.
  gom::Schema schema;
  TypeId leaf = schema.DefineTupleType("Leaf", {}, {}).value();
  TypeId leafset = schema.DefineSetType("LeafSet", leaf).value();
  TypeId root =
      schema
          .DefineTupleType("Root", {}, {{"Kids", leafset, kInvalidTypeId}})
          .value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 64);
  gom::ObjectStore store(&schema, &buffers);
  PathExpression path = PathExpression::Parse(schema, root, "Kids").value();
  AsrOptions options;
  options.drop_set_columns = false;
  auto asr = AccessSupportRelation::Build(&store, path, ExtensionKind::kFull,
                                          Decomposition::Binary(path.m()),
                                          options)
                 .value();
  Oid r = store.CreateObject(root).value();
  EXPECT_TRUE(
      asr->OnEdgeInserted(r, 0, AsrKey::FromInt(1)).IsNotSupported());
}

}  // namespace
}  // namespace asr
