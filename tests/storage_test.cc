// Tests for the storage substrate: disk, buffer manager, slotted pages, and
// backend parity (everything above the storage seam must behave identically
// on the metering in-memory store and the file-backed store).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace asr::storage {
namespace {

TEST(DiskTest, SegmentsAreIndependent) {
  Disk disk;
  uint32_t a = disk.CreateSegment("a");
  uint32_t b = disk.CreateSegment("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(disk.SegmentName(a), "a");
  EXPECT_EQ(disk.SegmentName(b), "b");
  disk.AllocatePage(a);
  disk.AllocatePage(a);
  disk.AllocatePage(b);
  EXPECT_EQ(disk.SegmentPageCount(a), 2u);
  EXPECT_EQ(disk.SegmentPageCount(b), 1u);
}

TEST(DiskTest, ReadWriteRoundTrip) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("seg");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(100, 0xDEADBEEFull);
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(100), 0xDEADBEEFull);
}

TEST(DiskTest, CountsAccessesPerSegment) {
  Disk disk;
  uint32_t a = disk.CreateSegment("a");
  uint32_t b = disk.CreateSegment("b");
  PageId pa = disk.AllocatePage(a);
  PageId pb = disk.AllocatePage(b);
  Page page;
  ASSERT_TRUE(disk.WritePage(pa, page).ok());
  ASSERT_TRUE(disk.ReadPage(pa, &page).ok());
  ASSERT_TRUE(disk.ReadPage(pb, &page).ok());
  EXPECT_EQ(disk.segment_stats(a).page_writes, 1u);
  EXPECT_EQ(disk.segment_stats(a).page_reads, 1u);
  EXPECT_EQ(disk.segment_stats(b).page_reads, 1u);
  EXPECT_EQ(disk.stats().page_reads, 2u);
  EXPECT_EQ(disk.stats().page_writes, 1u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().total(), 0u);
}

TEST(AccessStatsTest, Arithmetic) {
  AccessStats a{10, 4};
  AccessStats b{3, 1};
  AccessStats d = a - b;
  EXPECT_EQ(d.page_reads, 7u);
  EXPECT_EQ(d.page_writes, 3u);
  EXPECT_EQ(d.total(), 10u);
  d += b;
  EXPECT_EQ(d.page_reads, 10u);

  AccessStats s = a + b;
  EXPECT_EQ(s.page_reads, 13u);
  EXPECT_EQ(s.page_writes, 5u);
  // operator+ leaves its operands untouched.
  EXPECT_EQ(a.page_reads, 10u);
  EXPECT_EQ(b.page_reads, 3u);
  // Round trip: (a + b) - b == a.
  AccessStats back = s - b;
  EXPECT_EQ(back.page_reads, a.page_reads);
  EXPECT_EQ(back.page_writes, a.page_writes);
}

TEST(AccessStatsTest, DefaultIsZeroAndToStringRenders) {
  AccessStats zero;
  EXPECT_EQ(zero.total(), 0u);
  EXPECT_EQ(zero.ToString(), "reads=0 writes=0");
}

// --- BufferManager -------------------------------------------------------

TEST(BufferManagerTest, UnbufferedCountsEveryPin) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/0);
  for (int i = 0; i < 5; ++i) {
    PageGuard guard = buffers.Pin(id);
  }
  EXPECT_EQ(disk.stats().page_reads, 5u);
}

TEST(BufferManagerTest, CachedPinIsFree) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/4);
  for (int i = 0; i < 5; ++i) {
    PageGuard guard = buffers.Pin(id);
  }
  EXPECT_EQ(disk.stats().page_reads, 1u);
  EXPECT_EQ(buffers.hits(), 4u);
  EXPECT_EQ(buffers.misses(), 1u);
}

TEST(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/0);
  {
    PageGuard guard = buffers.Pin(id);
    guard.page().Write<uint32_t>(0, 777);
    guard.MarkDirty();
  }
  EXPECT_EQ(disk.stats().page_writes, 1u);
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint32_t>(0), 777u);
}

TEST(BufferManagerTest, CleanEvictionDoesNotWrite) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/0);
  {
    PageGuard guard = buffers.Pin(id);
  }
  EXPECT_EQ(disk.stats().page_writes, 0u);
}

TEST(BufferManagerTest, LruEvictsOldest) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(disk.AllocatePage(seg));
  BufferManager buffers(&disk, /*capacity=*/2);
  { PageGuard g = buffers.Pin(ids[0]); }
  { PageGuard g = buffers.Pin(ids[1]); }
  { PageGuard g = buffers.Pin(ids[2]); }  // evicts ids[0]
  disk.ResetStats();
  { PageGuard g = buffers.Pin(ids[1]); }  // still cached
  EXPECT_EQ(disk.stats().page_reads, 0u);
  { PageGuard g = buffers.Pin(ids[0]); }  // was evicted, re-read
  EXPECT_EQ(disk.stats().page_reads, 1u);
}

TEST(BufferManagerTest, PinnedPagesSurviveCapacityPressure) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(disk.AllocatePage(seg));
  BufferManager buffers(&disk, /*capacity=*/1);
  PageGuard held = buffers.Pin(ids[0]);
  held.page().Write<uint32_t>(0, 42);
  held.MarkDirty();
  for (int i = 1; i < 6; ++i) {
    PageGuard g = buffers.Pin(ids[i]);
  }
  // The held frame must still be valid and carry the data.
  EXPECT_EQ(held.page().Read<uint32_t>(0), 42u);
}

TEST(BufferManagerTest, AllocatePinnedIsDirtyFromBirth) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  BufferManager buffers(&disk, /*capacity=*/0);
  PageId id;
  {
    PageGuard guard = buffers.AllocatePinned(seg);
    id = guard.id();
    guard.page().Write<uint32_t>(8, 99);
  }
  // Written back even without MarkDirty: fresh pages are dirty.
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint32_t>(8), 99u);
  EXPECT_EQ(disk.stats().page_reads, 1u);  // allocation did not read
}

TEST(BufferManagerTest, FlushAllPersistsEverything) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/8);
  {
    PageGuard guard = buffers.Pin(id);
    guard.page().Write<uint32_t>(4, 5);
    guard.MarkDirty();
  }
  ASSERT_TRUE(buffers.FlushAll().ok());
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint32_t>(4), 5u);
}

TEST(BufferManagerTest, MovedGuardReleasesOnce) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  BufferManager buffers(&disk, /*capacity=*/0);
  PageGuard a = buffers.Pin(id);
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_FALSE(b.valid());
}

// --- Backend parity ------------------------------------------------------
//
// Metering, checksums, fault staging, and snapshots all live ABOVE the
// storage seam (storage/backend.h), so their observable behavior — down to
// exact page-access counts — must not depend on where the bytes live. The
// suite runs once per backend configuration. Segments are grown past the
// file backend's initial 64-page reservation so the ftruncate-doubling
// growth path (and, with mmap reads, the remap on growth) executes.

class BackendParityTest : public ::testing::TestWithParam<DiskOptions> {};

constexpr uint32_t kParityPages = 130;  // two ftruncate doublings past 64

uint64_t PatternFor(uint32_t page_no) {
  return 0x9E3779B97F4A7C15ull * (page_no + 1);
}

void FillSegment(Disk* disk, uint32_t seg) {
  for (uint32_t i = 0; i < kParityPages; ++i) {
    PageId id = disk->AllocatePage(seg);
    Page page;
    page.Write<uint64_t>(0, PatternFor(i));
    page.Write<uint64_t>(kPageSize - 8, ~PatternFor(i));
    ASSERT_TRUE(disk->WritePage(id, page).ok());
  }
}

TEST_P(BackendParityTest, RoundTripVerifyAndExactMetering) {
  Disk disk(GetParam());
  uint32_t seg = disk.CreateSegment("parity");
  FillSegment(&disk, seg);
  ASSERT_EQ(disk.SegmentPageCount(seg), kParityPages);
  for (uint32_t i = 0; i < kParityPages; ++i) {
    Page out;
    ASSERT_TRUE(disk.ReadPage(PageId{seg, i}, &out).ok());
    EXPECT_EQ(out.Read<uint64_t>(0), PatternFor(i));
    EXPECT_EQ(out.Read<uint64_t>(kPageSize - 8), ~PatternFor(i));
  }
  EXPECT_TRUE(disk.VerifySegment(seg).ok());
  // The counts are exact and identical on every backend (VerifySegment
  // bills one read per page — recovery pays in the common unit).
  EXPECT_EQ(disk.segment_stats(seg).page_writes, kParityPages);
  EXPECT_EQ(disk.segment_stats(seg).page_reads, 2 * kParityPages);
}

TEST_P(BackendParityTest, DroppedWriteKeepsOldImageAndChecksumAgrees) {
  Disk disk(GetParam());
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("parity");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(0, 11);
  ASSERT_TRUE(disk.WritePage(id, page).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kWriteCrash;
  spec.after_matching = 1;
  injector.Arm(spec);
  page.Write<uint64_t>(0, 22);
  EXPECT_TRUE(disk.WritePage(id, page).IsIOError());

  // A dropped write is checksum-invisible: the old image and its checksum
  // still agree after restart, on any backend.
  disk.RecoverFromCrash();
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 11u);
  EXPECT_TRUE(disk.VerifySegment(seg).ok());
  disk.set_fault_injector(nullptr);
}

TEST_P(BackendParityTest, TornWriteStagesUntilRestart) {
  Disk disk(GetParam());
  FaultInjector injector;
  disk.set_fault_injector(&injector);
  uint32_t seg = disk.CreateSegment("parity");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(0, 1);
  page.Write<uint64_t>(kPageSize - 8, 1);
  ASSERT_TRUE(disk.WritePage(id, page).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.after_matching = 1;
  injector.Arm(spec);
  page.Write<uint64_t>(0, 2);
  page.Write<uint64_t>(kPageSize - 8, 2);
  EXPECT_TRUE(disk.WritePage(id, page).IsIOError());

  // Still "up": the torn image is staged above the seam, so reads serve the
  // fully-written page through the OS-cache fiction — no backend ever holds
  // a half-written page while the process lives.
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 2u);

  // Restart: the torn image lands in the backend and the stale checksum
  // rejects it.
  disk.RecoverFromCrash();
  EXPECT_TRUE(disk.ReadPage(id, &out).IsCorruption());
  EXPECT_TRUE(disk.VerifySegment(seg).IsCorruption());

  // A full rewrite heals the page.
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  EXPECT_TRUE(disk.VerifySegment(seg).ok());
  disk.set_fault_injector(nullptr);
}

TEST_P(BackendParityTest, SnapshotLoadsOnEveryBackend) {
  Disk src(GetParam());
  uint32_t seg = src.CreateSegment("parity");
  FillSegment(&src, seg);
  std::ostringstream out;
  src.Serialize(&out);
  const std::string snapshot = out.str();

  // The snapshot format is backend-independent: an image written on this
  // backend loads on both, bit-identical, with checksums recomputed.
  for (const DiskOptions& dst_options :
       {DiskOptions::Memory(), DiskOptions::File()}) {
    Disk dst(dst_options);
    std::istringstream in(snapshot);
    ASSERT_TRUE(dst.Deserialize(&in).ok());
    ASSERT_EQ(dst.segment_count(), 1u);
    ASSERT_EQ(dst.SegmentPageCount(0), kParityPages);
    EXPECT_TRUE(dst.VerifySegment(0).ok());
    for (uint32_t i = 0; i < kParityPages; ++i) {
      Page got;
      ASSERT_TRUE(dst.ReadPage(PageId{0, i}, &got).ok());
      EXPECT_EQ(got.Read<uint64_t>(0), PatternFor(i));
      EXPECT_EQ(got.Read<uint64_t>(kPageSize - 8), ~PatternFor(i));
    }
  }
}

TEST_P(BackendParityTest, SyncIsADurabilityPointOnEveryBackend) {
  Disk disk(GetParam());
  uint32_t seg = disk.CreateSegment("parity");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(0, 42);
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  // Sync succeeds on every backend (no-op where the storage is the process
  // image, fdatasync where it is a file) and never perturbs page metering.
  EXPECT_TRUE(disk.SyncSegment(seg).ok());
  EXPECT_TRUE(disk.SyncAll().ok());
  EXPECT_EQ(disk.sync_requests(), 2u);
  EXPECT_EQ(disk.segment_stats(seg).page_writes, 1u);
  EXPECT_EQ(disk.segment_stats(seg).page_reads, 0u);
  if (GetParam().backend == BackendKind::kFile) {
    auto* fb = static_cast<FileBackend*>(disk.backend());
    EXPECT_GE(fb->fsyncs(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendParityTest,
    ::testing::Values(DiskOptions::Memory(), DiskOptions::File(),
                      DiskOptions::File("", /*mmap=*/false)),
    [](const ::testing::TestParamInfo<DiskOptions>& info) {
      std::string name = BackendKindName(info.param.backend);
      if (info.param.backend == BackendKind::kFile) {
        name += info.param.mmap_reads ? "Mmap" : "Pread";
      }
      return name;
    });

// --- Durability: group flush and structural fsync points ------------------

// Drives `writes` dirty write-backs through an unbuffered pool and returns
// the disk afterwards (sync_requests tells how many durability points the
// pool issued — backend-independent, so the memory backend meters policy).
uint64_t SyncsForPolicy(DurabilityMode mode, uint32_t flush_batch,
                        uint32_t writes, uint64_t* group_flushes = nullptr) {
  DiskOptions options;  // memory backend
  options.durability = mode;
  options.flush_batch = flush_batch;
  Disk disk(options);
  uint32_t seg = disk.CreateSegment("s");
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < writes; ++i) ids.push_back(disk.AllocatePage(seg));
  uint64_t flushes = 0;
  {
    BufferManager buffers(&disk, /*capacity=*/0);
    for (PageId id : ids) {
      PageGuard guard = buffers.Pin(id);
      guard.page().Write<uint64_t>(0, id.page_no);
      guard.MarkDirty();
    }  // capacity 0: each release evicts and writes back immediately
    EXPECT_TRUE(buffers.FlushAll().ok());
    flushes = buffers.group_flushes();
  }
  if (group_flushes != nullptr) *group_flushes = flushes;
  return disk.sync_requests();
}

TEST(BufferManagerDurabilityTest, OffModeIssuesNoSyncs) {
  uint64_t flushes = 0;
  EXPECT_EQ(SyncsForPolicy(DurabilityMode::kOff, 64, 64, &flushes), 0u);
  EXPECT_EQ(flushes, 0u);
}

TEST(BufferManagerDurabilityTest, PageModeSyncsEveryWriteBack) {
  EXPECT_EQ(SyncsForPolicy(DurabilityMode::kPage, 64, 32), 32u);
}

TEST(BufferManagerDurabilityTest, GroupModeBatchesWriteBacksPerSync) {
  // 64 write-backs in runs of 8 = 8 sync requests (single segment, so each
  // run syncs one segment once). kPage would need 64 — the 8x saving the
  // recovery bench measures with real fsyncs.
  EXPECT_EQ(SyncsForPolicy(DurabilityMode::kGroup, 8, 64), 8u);
  // A partial trailing run is closed by FlushAll, never left unsynced.
  EXPECT_EQ(SyncsForPolicy(DurabilityMode::kGroup, 8, 60), 8u);
  EXPECT_EQ(SyncsForPolicy(DurabilityMode::kGroup, 1000, 60), 1u);
}

TEST(BufferManagerDurabilityTest, MeteringIsBitIdenticalAcrossPolicies) {
  // The durability policy must never change what the paper-facing counters
  // see: page reads/writes are identical under every mode.
  for (DurabilityMode mode :
       {DurabilityMode::kOff, DurabilityMode::kGroup, DurabilityMode::kPage}) {
    DiskOptions options;
    options.durability = mode;
    options.flush_batch = 4;
    Disk disk(options);
    uint32_t seg = disk.CreateSegment("s");
    std::vector<PageId> ids;
    for (uint32_t i = 0; i < 16; ++i) ids.push_back(disk.AllocatePage(seg));
    BufferManager buffers(&disk, /*capacity=*/2);
    for (int round = 0; round < 3; ++round) {
      for (PageId id : ids) {
        PageGuard guard = buffers.Pin(id);
        guard.page().Write<uint64_t>(8, round);
        guard.MarkDirty();
      }
    }
    ASSERT_TRUE(buffers.FlushAll().ok());
    EXPECT_EQ(disk.stats().page_reads, 48u) << DurabilityModeName(mode);
    EXPECT_EQ(disk.stats().page_writes, 48u) << DurabilityModeName(mode);
  }
}

TEST(FileBackendDurabilityTest, StructuralFsyncPointsFireWhenDurable) {
  DiskOptions options = DiskOptions::File("", /*mmap=*/false);
  options.durability = DurabilityMode::kGroup;
  Disk disk(options);
  auto* fb = static_cast<FileBackend*>(disk.backend());
  disk.CreateSegment("s");
  // The directory entry of the new segment file was fsynced.
  EXPECT_GE(fb->dir_fsyncs(), 1u);
  const uint64_t before = fb->fsyncs();
  // Growing past the initial reservation ftruncates and syncs the metadata.
  for (uint32_t i = 0; i < 130; ++i) disk.AllocatePage(0);
  EXPECT_GT(fb->fsyncs(), before);
}

TEST(FileBackendDurabilityTest, NonDurableIssuesNoStructuralSyncs) {
  Disk disk(DiskOptions::File("", /*mmap=*/false));
  auto* fb = static_cast<FileBackend*>(disk.backend());
  disk.CreateSegment("s");
  for (uint32_t i = 0; i < 130; ++i) disk.AllocatePage(0);
  EXPECT_EQ(fb->fsyncs(), 0u);
  EXPECT_EQ(fb->dir_fsyncs(), 0u);
}

TEST(FileBackendDurabilityTest, ReadOnlyDemotionFailsWritesFastReadsWork) {
  Disk disk(DiskOptions::File("", /*mmap=*/false));
  auto* fb = static_cast<FileBackend*>(disk.backend());
  uint32_t seg = disk.CreateSegment("s");
  PageId id = disk.AllocatePage(seg);
  Page page;
  page.Write<uint64_t>(0, 7);
  ASSERT_TRUE(disk.WritePage(id, page).ok());

  fb->EnterReadOnly(Status::IOError("simulated permanent failure"));
  ASSERT_TRUE(fb->read_only());
  Status wst = disk.WritePage(id, page);
  EXPECT_TRUE(wst.IsIOError());
  EXPECT_NE(wst.ToString().find("permanent failure"), std::string::npos);
  // Reads (and checksums — the failed write never touched them) still work.
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(out.Read<uint64_t>(0), 7u);
  EXPECT_TRUE(disk.VerifySegment(seg).ok());
}

// --- SlottedPage --------------------------------------------------------

TEST(SlottedPageTest, InsertAndRead) {
  Page page;
  SlottedPage::Init(&page);
  std::string data = "hello world";
  int slot = SlottedPage::Insert(&page, data.data(),
                                 static_cast<uint16_t>(data.size()));
  ASSERT_GE(slot, 0);
  ASSERT_EQ(SlottedPage::RecordLength(page, slot), data.size());
  std::string out(data.size(), '\0');
  SlottedPage::Read(page, slot, out.data());
  EXPECT_EQ(out, data);
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<char> rec(100, 'x');
  int count = 0;
  while (SlottedPage::Insert(&page, rec.data(), 100) >= 0) ++count;
  // 4056 - 4 header over (100 + 4 slot) each.
  EXPECT_EQ(count, (4056 - 4) / 104);
  EXPECT_FALSE(SlottedPage::Fits(page, 100));
  EXPECT_TRUE(SlottedPage::Fits(page, 10));
}

TEST(SlottedPageTest, DeleteAndReuseSameSize) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<char> rec(100, 'a');
  int slot = SlottedPage::Insert(&page, rec.data(), 100);
  int other = SlottedPage::Insert(&page, rec.data(), 100);
  ASSERT_GE(slot, 0);
  ASSERT_GE(other, 0);
  SlottedPage::Delete(&page, slot);
  EXPECT_FALSE(SlottedPage::IsLive(page, slot));
  EXPECT_TRUE(SlottedPage::IsLive(page, other));
  std::vector<char> rec2(100, 'b');
  int reused = SlottedPage::Insert(&page, rec2.data(), 100);
  EXPECT_EQ(reused, slot);  // the hole is reused
  std::vector<char> out(100);
  SlottedPage::Read(page, reused, out.data());
  EXPECT_EQ(out[0], 'b');
}

TEST(SlottedPageTest, SmallerRecordReusesLargerHole) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<char> big(200, 'a');
  int slot = SlottedPage::Insert(&page, big.data(), 200);
  SlottedPage::Delete(&page, slot);
  std::vector<char> small(50, 'b');
  int reused = SlottedPage::Insert(&page, small.data(), 50);
  EXPECT_EQ(reused, slot);
  EXPECT_EQ(SlottedPage::RecordLength(page, reused), 50);
}

TEST(SlottedPageTest, WriteInPlacePreservesNeighbors) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<char> a(40, 'a');
  std::vector<char> b(40, 'b');
  int sa = SlottedPage::Insert(&page, a.data(), 40);
  int sb = SlottedPage::Insert(&page, b.data(), 40);
  std::vector<char> a2(40, 'z');
  SlottedPage::WriteInPlace(&page, sa, a2.data(), 40);
  std::vector<char> out(40);
  SlottedPage::Read(page, sb, out.data());
  EXPECT_EQ(out[0], 'b');
  SlottedPage::Read(page, sa, out.data());
  EXPECT_EQ(out[0], 'z');
}

TEST(SlottedPageTest, FreeSpaceDecreasesWithInserts) {
  Page page;
  SlottedPage::Init(&page);
  uint32_t before = SlottedPage::FreeSpace(page);
  std::vector<char> rec(64, 'r');
  SlottedPage::Insert(&page, rec.data(), 64);
  EXPECT_EQ(SlottedPage::FreeSpace(page), before - 64 - 4);
}

TEST(SlottedPageTest, ManyMixedSizes) {
  Page page;
  SlottedPage::Init(&page);
  std::vector<int> slots;
  for (int len = 10; len <= 100; len += 10) {
    std::vector<char> rec(len, static_cast<char>('0' + len / 10));
    int s = SlottedPage::Insert(&page, rec.data(),
                                static_cast<uint16_t>(len));
    ASSERT_GE(s, 0);
    slots.push_back(s);
  }
  for (int i = 0; i < 10; ++i) {
    int len = (i + 1) * 10;
    ASSERT_EQ(SlottedPage::RecordLength(page, slots[i]), len);
    std::vector<char> out(len);
    SlottedPage::Read(page, slots[i], out.data());
    EXPECT_EQ(out[0], static_cast<char>('0' + (i + 1)));
  }
}

}  // namespace
}  // namespace asr::storage
