// Corruption-injection suite for the invariant checker (src/check/).
//
// Every test builds a healthy ASR, injects one targeted corruption through
// the lowest-level interface that can express it — scribbling B+ tree leaf
// bytes, desynchronizing the two per-partition trees, mutating the object
// base behind the maintenance hooks' back, corrupting a slotted-page header
// — and asserts that the checker reports the violation in the *right*
// category. A final suite verifies the zero-violation clean pass over all
// four extension kinds and several decompositions.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "paper_example.h"
#include "storage/slotted_page.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

using check::Category;
using check::CheckOptions;
using check::CheckReport;
using check::InvariantChecker;
using testing::CompanyBase;
using testing::MakeCompanyBase;
using testing::MakeCompanyPath;

std::unique_ptr<workload::SyntheticBase> MakeTinyBase(uint64_t seed) {
  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {15, 25, 35, 20};
  profile.d = {12, 20, 28};
  profile.fan = {2, 1, 2};
  profile.size = {120, 120, 120, 120};
  return workload::SyntheticBase::Generate(profile, {seed, 64}).value();
}

// --- CheckReport -----------------------------------------------------------

TEST(CheckReportTest, AccumulatesAndSerializes) {
  CheckReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.ToString(), "clean");

  report.Add(Category::kBTreeStructure, "partition p0 fwd", "out of order");
  report.Add(Category::kLosslessness, "rel", "row lost");
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.total(), 2u);
  EXPECT_EQ(report.count(Category::kBTreeStructure), 1u);
  EXPECT_EQ(report.count(Category::kRefcount), 0u);

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"btree_structure\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"losslessness\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("row lost"), std::string::npos) << json;
}

TEST(CheckReportTest, RecordingIsCappedPerCategory) {
  CheckReport report;
  for (int i = 0; i < 1000; ++i) {
    report.Add(Category::kRefcount, "site", "v" + std::to_string(i));
  }
  EXPECT_EQ(report.total(), 1000u);
  EXPECT_EQ(report.count(Category::kRefcount), 1000u);
  EXPECT_EQ(report.violations().size(), CheckReport::kMaxRecordedPerCategory);
  EXPECT_NE(report.ToString().find("not recorded"), std::string::npos);
}

// --- clean pass ------------------------------------------------------------

TEST(CheckCleanTest, AllKindsAndDecompositionsPassOnAHealthyBase) {
  auto base = MakeTinyBase(17);
  InvariantChecker checker;

  CheckReport store_report;
  checker.CheckObjectStore(base->store(), &store_report);
  EXPECT_TRUE(store_report.clean()) << store_report.ToString();

  const uint32_t m = base->path().n();
  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    for (const Decomposition& dec :
         {Decomposition::None(m), Decomposition::Binary(m),
          Decomposition::Of({0, 2, 3}, m).value()}) {
      auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                              kind, dec)
                     .value();
      CheckReport report;
      checker.CheckAsr(asr.get(), &report);
      EXPECT_TRUE(report.clean())
          << ExtensionKindName(kind) << " " << dec.ToString() << "\n"
          << report.ToString();
    }
  }
}

TEST(CheckCleanTest, PaperCompanyBasePasses) {
  auto base = MakeCompanyBase();
  PathExpression path = MakeCompanyPath(*base);
  InvariantChecker checker;

  CheckReport store_report;
  checker.CheckObjectStore(base->store.get(), &store_report);
  EXPECT_TRUE(store_report.clean()) << store_report.ToString();

  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    auto asr = AccessSupportRelation::Build(base->store.get(), path, kind,
                                            Decomposition::Binary(path.n()))
                   .value();
    CheckReport report;
    checker.CheckAsr(asr.get(), &report);
    EXPECT_TRUE(report.clean())
        << ExtensionKindName(kind) << "\n" << report.ToString();
  }
}

// --- injected corruption: B+ tree structure --------------------------------

// Swapping two adjacent leaf entries wholesale preserves the stored tuple
// *set* (so no desync, no membership drift) but breaks the leaf key order —
// the checker must localize it as a btree_structure violation and nothing
// semantic.
TEST(CheckCorruptionTest, SwappedLeafEntriesAreBTreeStructure) {
  auto base = MakeTinyBase(23);
  auto asr = AccessSupportRelation::Build(
                 base->store(), base->path(), ExtensionKind::kFull,
                 Decomposition::None(base->path().n()))
                 .value();

  PartitionStore* store = asr->partition_store(0).get();
  btree::BTree* tree = store->forward.get();
  const uint32_t entry_bytes = 8 + 8 * tree->width();

  uint32_t victim_leaf = UINT32_MAX;
  ASSERT_TRUE(tree->ForEachLeaf([&](uint32_t page_no, uint16_t count) {
                    if (victim_leaf == UINT32_MAX && count >= 2) {
                      victim_leaf = page_no;
                    }
                    return Status::OK();
                  })
                  .ok());
  ASSERT_NE(victim_leaf, UINT32_MAX) << "no leaf with two entries";

  {
    storage::PageGuard guard =
        store->buffers->Pin(storage::PageId{tree->segment(), victim_leaf});
    std::vector<std::byte> first(entry_bytes);
    std::vector<std::byte> second(entry_bytes);
    guard.page().ReadBytes(8, first.data(), entry_bytes);
    guard.page().ReadBytes(8 + entry_bytes, second.data(), entry_bytes);
    guard.page().WriteBytes(8, second.data(), entry_bytes);
    guard.page().WriteBytes(8 + entry_bytes, first.data(), entry_bytes);
    guard.MarkDirty();
  }

  CheckReport report;
  InvariantChecker checker;
  checker.CheckAsr(asr.get(), &report);
  EXPECT_GE(report.count(Category::kBTreeStructure), 1u)
      << report.ToString();
}

// --- injected corruption: partition desync ---------------------------------

// Erasing a tuple from the first-column tree only leaves the two redundant
// trees of §5.2 disagreeing; the refcount table still references the erased
// slice.
TEST(CheckCorruptionTest, OneSidedEraseIsPartitionDesync) {
  auto base = MakeTinyBase(29);
  auto asr = AccessSupportRelation::Build(
                 base->store(), base->path(), ExtensionKind::kCanonical,
                 Decomposition::Binary(base->path().n()))
                 .value();

  PartitionStore* store = asr->partition_store(1).get();
  rel::Relation dump = asr->DumpPartition(1).value();
  ASSERT_FALSE(dump.rows().empty());
  const rel::Row victim = dump.rows().front();
  ASSERT_TRUE(store->forward->Erase(victim));

  CheckReport report;
  InvariantChecker checker;
  checker.CheckAsr(asr.get(), &report);
  EXPECT_GE(report.count(Category::kPartitionDesync), 1u)
      << report.ToString();
  EXPECT_GE(report.count(Category::kRefcount), 1u) << report.ToString();
}

// --- injected corruption: extension membership -----------------------------

// Mutating the object base behind the maintenance hooks' back is the
// canonical "silently dropped partial path": the stored left-complete
// extension keeps MB Trak's dead-end row and misses the new complete paths,
// both of which only the semantic recompute can see.
TEST(CheckCorruptionTest, UnmaintainedBaseMutationIsMembershipDrift) {
  auto base = MakeCompanyBase();
  PathExpression path = MakeCompanyPath(*base);
  auto asr = AccessSupportRelation::Build(base->store.get(), path,
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::None(path.n()))
                 .value();

  // MB Trak gains a composition the ASR never hears about.
  ASSERT_TRUE(base->store
                  ->SetRef(base->mbtrak, "Composition", base->parts_unused)
                  .ok());

  CheckReport report;
  InvariantChecker checker;
  checker.CheckAsr(asr.get(), &report);
  EXPECT_GE(report.count(Category::kExtensionMembership), 1u)
      << report.ToString();

  // With the semantic recompute disabled the drift is invisible — the
  // stored structures are internally consistent.
  CheckReport structural_only;
  CheckOptions opts;
  opts.semantic = false;
  InvariantChecker structural(opts);
  structural.CheckAsr(asr.get(), &structural_only);
  EXPECT_TRUE(structural_only.clean()) << structural_only.ToString();
}

// A canonical extension must hold complete paths only (Def. 3.4). Insert a
// NULL-padded slice consistently into both trees and the refcounts: every
// structural layer stays green, but the shape rule flags it.
TEST(CheckCorruptionTest, PartialPathInCanonicalIsMembershipViolation) {
  auto base = MakeCompanyBase();
  PathExpression path = MakeCompanyPath(*base);
  auto asr = AccessSupportRelation::Build(base->store.get(), path,
                                          ExtensionKind::kCanonical,
                                          Decomposition::None(path.n()))
                 .value();

  PartitionStore* store = asr->partition_store(0).get();
  rel::Row bogus(store->width, AsrKey());
  bogus[0] = base->Key(base->space_division);  // (i3, NULL, ..., NULL)
  ASSERT_TRUE(store->forward->Insert(bogus));
  ASSERT_TRUE(store->backward->Insert(bogus));
  store->refcounts[bogus] = 1;

  CheckReport report;
  InvariantChecker checker;
  checker.CheckAsr(asr.get(), &report);
  EXPECT_GE(report.count(Category::kExtensionMembership), 1u)
      << report.ToString();
  EXPECT_EQ(report.count(Category::kPartitionDesync), 0u)
      << report.ToString();
}

// --- injected corruption: losslessness -------------------------------------

// Consistently deleting one slice from a middle partition (both trees and
// the refcounts) leaves every tree healthy and the shape rules satisfied,
// but the natural re-join of Theorem 3.9 loses the rows that ran through
// the slice — and the partition stops being the Def. 3.8 projection.
TEST(CheckCorruptionTest, ConsistentSliceLossIsLosslessnessViolation) {
  auto base = MakeTinyBase(31);
  auto asr = AccessSupportRelation::Build(
                 base->store(), base->path(), ExtensionKind::kCanonical,
                 Decomposition::Binary(base->path().n()))
                 .value();

  PartitionStore* store = asr->partition_store(1).get();
  rel::Relation dump = asr->DumpPartition(1).value();
  ASSERT_FALSE(dump.rows().empty());
  const rel::Row victim = dump.rows().front();
  ASSERT_TRUE(store->forward->Erase(victim));
  ASSERT_TRUE(store->backward->Erase(victim));
  store->refcounts.erase(victim);

  CheckReport report;
  CheckOptions opts;
  opts.semantic = false;  // isolate the decomposition-level detection
  InvariantChecker checker(opts);
  checker.CheckAsr(asr.get(), &report);
  EXPECT_GE(report.count(Category::kLosslessness), 1u) << report.ToString();
  EXPECT_EQ(report.count(Category::kPartitionDesync), 0u)
      << report.ToString();
  EXPECT_EQ(report.count(Category::kBTreeStructure), 0u)
      << report.ToString();
}

// --- injected corruption: slotted page -------------------------------------

// Scribbling a slotted-page header (free_end beyond the page) must be caught
// by the storage-layer sweep of CheckObjectStore.
TEST(CheckCorruptionTest, CorruptSlottedPageHeaderIsDetected) {
  auto base = MakeCompanyBase();
  const int64_t segment = base->store->SegmentOf(base->division_type);
  ASSERT_GE(segment, 0);

  {
    storage::PageGuard guard = base->buffers.Pin(
        storage::PageId{static_cast<uint32_t>(segment), 0});
    guard.page().Write<uint16_t>(2, storage::kPageSize + 17);
    guard.MarkDirty();
  }

  CheckReport report;
  InvariantChecker checker;
  checker.CheckSlottedPage(
      base->buffers.Pin(storage::PageId{static_cast<uint32_t>(segment), 0})
          .page(),
      "division page 0", &report);
  EXPECT_GE(report.count(Category::kSlottedPage), 1u) << report.ToString();

  CheckReport store_report;
  checker.CheckObjectStore(base->store.get(), &store_report);
  EXPECT_GE(store_report.count(Category::kSlottedPage), 1u)
      << store_report.ToString();
}

// Overlapping slot extents are the other slotted-page failure mode: point
// slot 1 into slot 0's record.
TEST(CheckCorruptionTest, OverlappingSlotsAreDetected) {
  auto base = MakeCompanyBase();
  const int64_t segment = base->store->SegmentOf(base->division_type);
  ASSERT_GE(segment, 0);
  const storage::PageId id{static_cast<uint32_t>(segment), 0};

  {
    storage::PageGuard guard = base->buffers.Pin(id);
    const storage::Page& page = guard.page();
    ASSERT_GE(storage::SlottedPage::slot_count(page), 2);
    const uint16_t offset0 = page.Read<uint16_t>(4);
    const uint16_t length0 = page.Read<uint16_t>(6);
    ASSERT_GT(length0 & ~storage::SlottedPage::kTombstoneBit, 0);
    // Slot 1 now claims the same extent as slot 0.
    guard.page().Write<uint16_t>(8, offset0);
    guard.page().Write<uint16_t>(10, length0);
    guard.MarkDirty();
  }

  CheckReport report;
  InvariantChecker checker;
  checker.CheckSlottedPage(base->buffers.Pin(id).page(), "division page 0",
                           &report);
  EXPECT_GE(report.count(Category::kSlottedPage), 1u) << report.ToString();
}

}  // namespace
}  // namespace asr
