// Tests for database snapshot persistence: save, reopen, and continue
// operating — including ASR rebuilds over the reopened base.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "gom/database.h"
#include "lang/executor.h"

namespace asr::gom {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds the company schema/extension inside a Database.
struct Company {
  TypeId division, prodset, product, basepartset, basepart;
  Oid auto_div, truck_div, sec560, door;
};

Company BuildCompany(Database* db) {
  Schema& s = *db->schema();
  ObjectStore& st = *db->store();
  Company c;
  c.basepart = s.DefineTupleType(
                    "BasePart", {},
                    {{"Name", Schema::kStringType, kInvalidTypeId},
                     {"Price", Schema::kDecimalType, kInvalidTypeId}})
                   .value();
  c.basepartset = s.DefineSetType("BasePartSET", c.basepart).value();
  c.product = s.DefineTupleType(
                   "Product", {},
                   {{"Name", Schema::kStringType, kInvalidTypeId},
                    {"Composition", c.basepartset, kInvalidTypeId}})
                  .value();
  c.prodset = s.DefineSetType("ProdSET", c.product).value();
  c.division = s.DefineTupleType(
                    "Division", {},
                    {{"Name", Schema::kStringType, kInvalidTypeId},
                     {"Manufactures", c.prodset, kInvalidTypeId}})
                   .value();

  c.auto_div = st.CreateObject(c.division).value();
  ASR_CHECK(st.SetString(c.auto_div, "Name", "Auto").ok());
  c.truck_div = st.CreateObject(c.division).value();
  ASR_CHECK(st.SetString(c.truck_div, "Name", "Truck").ok());
  c.sec560 = st.CreateObject(c.product).value();
  ASR_CHECK(st.SetString(c.sec560, "Name", "560 SEC").ok());
  c.door = st.CreateObject(c.basepart).value();
  ASR_CHECK(st.SetString(c.door, "Name", "Door").ok());
  ASR_CHECK(st.SetDecimal(c.door, "Price", 1205.50).ok());

  Oid ps = st.CreateSet(c.prodset).value();
  ASR_CHECK(st.SetRef(c.auto_div, "Manufactures", ps).ok());
  ASR_CHECK(st.AddToSet(ps, AsrKey::FromOid(c.sec560)).ok());
  Oid ps2 = st.CreateSet(c.prodset).value();
  ASR_CHECK(st.SetRef(c.truck_div, "Manufactures", ps2).ok());
  ASR_CHECK(st.AddToSet(ps2, AsrKey::FromOid(c.sec560)).ok());
  Oid bp = st.CreateSet(c.basepartset).value();
  ASR_CHECK(st.SetRef(c.sec560, "Composition", bp).ok());
  ASR_CHECK(st.AddToSet(bp, AsrKey::FromOid(c.door)).ok());
  return c;
}

TEST(DatabaseTest, SaveAndReopenRoundTrip) {
  std::string file = TempPath("company.asrdb");
  Company c;
  {
    auto db = Database::Create();
    c = BuildCompany(db.get());
    ASSERT_TRUE(db->Save(file).ok());
  }  // original database destroyed

  auto db = Database::Open(file).value();
  Schema& s = *db->schema();
  ObjectStore& st = *db->store();
  ASSERT_TRUE(st.CheckConsistency().ok());

  // Schema survived with identical type ids.
  EXPECT_EQ(*s.FindType("Division"), c.division);
  EXPECT_EQ(*s.FindType("BasePart"), c.basepart);
  EXPECT_TRUE(s.IsSet(c.prodset));
  EXPECT_EQ(s.attributes(c.division)[1].name, "Manufactures");

  // Objects and values survived, OIDs stable.
  EXPECT_TRUE(st.Exists(c.auto_div));
  EXPECT_EQ(*st.GetString(c.auto_div, "Name"), "Auto");
  EXPECT_EQ(st.GetAttributeByName(c.door, "Price")->ToInt(), 120550);
  EXPECT_EQ(st.ObjectCount(c.division), 2u);

  // Whole-path query over the reopened base.
  PathExpression path =
      PathExpression::Parse(s, c.division, "Manufactures.Composition.Name")
          .value();
  QueryEvaluator nav(&st, &path);
  AsrKey door_name = AsrKey::FromString("Door", st.string_dict());
  EXPECT_EQ(nav.BackwardNoSupport(door_name, 0, 3)->size(), 2u);

  // ASRs rebuild over the reopened base.
  auto asr = AccessSupportRelation::Build(&st, path, ExtensionKind::kFull,
                                          Decomposition::Binary(3))
                 .value();
  EXPECT_EQ(asr->EvalBackward(door_name, 0, 3)->size(), 2u);
  std::remove(file.c_str());
}

TEST(DatabaseTest, ReopenedDatabaseAcceptsUpdates) {
  std::string file = TempPath("company2.asrdb");
  Company c;
  {
    auto db = Database::Create();
    c = BuildCompany(db.get());
    ASSERT_TRUE(db->Save(file).ok());
  }
  auto db = Database::Open(file).value();
  ObjectStore& st = *db->store();

  // New objects get fresh OIDs continuing the old sequence.
  Oid fresh = st.CreateObject(c.division).value();
  EXPECT_GT(fresh.seq(), c.truck_div.seq());
  ASSERT_TRUE(st.SetString(fresh, "Name", "Space").ok());
  EXPECT_EQ(st.ObjectCount(c.division), 3u);

  // Mutations to existing objects work and strings stay interned.
  ASSERT_TRUE(st.SetString(c.auto_div, "Name", "Automobile").ok());
  EXPECT_EQ(*st.GetString(c.auto_div, "Name"), "Automobile");
  EXPECT_EQ(*st.GetString(c.truck_div, "Name"), "Truck");

  // The language engine runs against the reopened database.
  lang::QueryEngine engine(&st);
  auto rows =
      engine.Execute("select d.Name from d in Division").value();
  EXPECT_EQ(rows.size(), 3u);
  std::remove(file.c_str());
}

TEST(DatabaseTest, PersistsOverflowChains) {
  std::string file = TempPath("chains.asrdb");
  TypeId item, items;
  Oid set;
  {
    auto db = Database::Create();
    Schema& s = *db->schema();
    ObjectStore& st = *db->store();
    item = s.DefineTupleType("Item", {}, {}).value();
    items = s.DefineSetType("Items", item).value();
    set = st.CreateSet(items).value();
    for (int i = 0; i < 1200; ++i) {
      Oid m = st.CreateObject(item).value();
      ASSERT_TRUE(st.AddToSet(set, AsrKey::FromOid(m)).ok());
    }
    ASSERT_TRUE(db->Save(file).ok());
  }
  auto db = Database::Open(file).value();
  ASSERT_TRUE(db->store()->CheckConsistency().ok());
  EXPECT_EQ(db->store()->GetSet(set)->members.size(), 1200u);
  // The chain keeps working for further growth.
  Oid extra = db->store()->CreateObject(item).value();
  ASSERT_TRUE(db->store()->AddToSet(set, AsrKey::FromOid(extra)).ok());
  EXPECT_EQ(db->store()->GetSet(set)->members.size(), 1201u);
  std::remove(file.c_str());
}

TEST(DatabaseTest, RejectsForeignAndTruncatedFiles) {
  std::string file = TempPath("bogus.asrdb");
  {
    std::ofstream out(file, std::ios::binary);
    out << "definitely not a snapshot";
  }
  EXPECT_TRUE(Database::Open(file).status().IsCorruption());

  EXPECT_TRUE(Database::Open(TempPath("missing.asrdb"))
                  .status()
                  .IsNotFound());

  // Truncated snapshot: valid magic, then nothing.
  {
    auto db = Database::Create();
    BuildCompany(db.get());
    ASSERT_TRUE(db->Save(file).ok());
  }
  std::ifstream in(file, std::ios::binary);
  std::string prefix(64, '\0');
  in.read(prefix.data(), 64);
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(prefix.data(), 64);
  }
  EXPECT_FALSE(Database::Open(file).ok());
  std::remove(file.c_str());
}

TEST(DatabaseTest, DeletedObjectsStayDeleted) {
  std::string file = TempPath("deleted.asrdb");
  Company c;
  {
    auto db = Database::Create();
    c = BuildCompany(db.get());
    ASSERT_TRUE(db->store()->DeleteObject(c.truck_div).ok());
    ASSERT_TRUE(db->Save(file).ok());
  }
  auto db = Database::Open(file).value();
  EXPECT_FALSE(db->store()->Exists(c.truck_div));
  EXPECT_TRUE(db->store()->Exists(c.auto_div));
  EXPECT_EQ(db->store()->ObjectCount(c.division), 1u);
  std::remove(file.c_str());
}

}  // namespace
}  // namespace asr::gom
