// Tests for the page-level MVCC layer (storage/mvcc.h): snapshot reads at a
// pinned epoch, optimistic writer transactions with first-committer-wins
// conflict detection, copy-on-write retention and its collection, and the
// legacy-path guarantee for unregistered segments.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "storage/disk.h"
#include "storage/mvcc.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace asr::storage {
namespace {

Page MakePage(uint64_t stamp) {
  Page page;
  page.Write<uint64_t>(0, stamp);
  return page;
}

uint64_t Stamp(const Page& page) { return page.Read<uint64_t>(0); }

struct MvccDisk {
  Disk disk;
  MvccManager mvcc;
  uint32_t seg = 0;

  MvccDisk() {
    disk.AttachMvcc(&mvcc);
    seg = disk.CreateSegment("versioned");
    mvcc.RegisterSegment(seg);
  }
};

TEST(MvccTest, UnregisteredSegmentsTakeTheLegacyPath) {
  Disk disk;
  MvccManager mvcc;
  disk.AttachMvcc(&mvcc);
  uint32_t seg = disk.CreateSegment("plain");
  PageId id = disk.AllocatePage(seg);
  ASSERT_TRUE(disk.WritePage(id, MakePage(7)).ok());
  Page out;
  ASSERT_TRUE(disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), 7u);
  // No epoch advanced, no version bookkeeping: the write was legacy.
  EXPECT_EQ(mvcc.committed_epoch(), 0u);
  EXPECT_EQ(mvcc.retained_pages(), 0u);
  // Metering is the legacy metering.
  EXPECT_EQ(disk.segment_stats(seg).page_writes, 1u);
  EXPECT_EQ(disk.segment_stats(seg).page_reads, 1u);
}

TEST(MvccTest, DirectWritesToRegisteredSegmentsAutoVersion) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
  EXPECT_EQ(d.mvcc.committed_epoch(), 1u);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(2)).ok());
  EXPECT_EQ(d.mvcc.committed_epoch(), 2u);
  Page out;
  ASSERT_TRUE(d.disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), 2u);
}

TEST(MvccTest, SnapshotReadsThePinnedEpoch) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(10)).ok());

  PageSnapshot snap = d.mvcc.BeginSnapshot();
  EXPECT_TRUE(snap.valid());
  const MvccEpoch pinned = snap.epoch();

  ASSERT_TRUE(d.disk.WritePage(id, MakePage(20)).ok());
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(30)).ok());

  Page live;
  ASSERT_TRUE(d.disk.ReadPage(id, &live).ok());
  EXPECT_EQ(Stamp(live), 30u);

  Page old;
  ASSERT_TRUE(d.disk.ReadPageSnapshot(id, snap, &old).ok());
  EXPECT_EQ(Stamp(old), 10u);
  EXPECT_EQ(snap.epoch(), pinned);

  // A fresh snapshot sees the newest committed image.
  PageSnapshot now = d.mvcc.BeginSnapshot();
  Page newest;
  ASSERT_TRUE(d.disk.ReadPageSnapshot(id, now, &newest).ok());
  EXPECT_EQ(Stamp(newest), 30u);
}

TEST(MvccTest, SnapshotBeforeAnyCommitReadsThePreMvccImage) {
  Disk disk;
  uint32_t seg = disk.CreateSegment("versioned");
  PageId id = disk.AllocatePage(seg);
  ASSERT_TRUE(disk.WritePage(id, MakePage(5)).ok());  // before the manager

  MvccManager mvcc;
  disk.AttachMvcc(&mvcc);
  mvcc.RegisterSegment(seg);

  PageSnapshot snap = mvcc.BeginSnapshot();
  EXPECT_EQ(snap.epoch(), 0u);
  ASSERT_TRUE(disk.WritePage(id, MakePage(6)).ok());
  Page out;
  ASSERT_TRUE(disk.ReadPageSnapshot(id, snap, &out).ok());
  EXPECT_EQ(Stamp(out), 5u);
}

TEST(MvccTest, RetainedImagesAreCollectedAtSnapshotRelease) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
  {
    PageSnapshot snap = d.mvcc.BeginSnapshot();
    EXPECT_EQ(d.mvcc.live_snapshots(), 1u);
    ASSERT_TRUE(d.disk.WritePage(id, MakePage(2)).ok());
    EXPECT_GE(d.mvcc.retained_pages(), 1u);
    // Overwriting again does not need another retained copy for this
    // snapshot: only the image valid at the pinned epoch matters.
    ASSERT_TRUE(d.disk.WritePage(id, MakePage(3)).ok());
    Page out;
    ASSERT_TRUE(d.disk.ReadPageSnapshot(id, snap, &out).ok());
    EXPECT_EQ(Stamp(out), 1u);
  }
  EXPECT_EQ(d.mvcc.live_snapshots(), 0u);
  EXPECT_EQ(d.mvcc.retained_pages(), 0u);
}

TEST(MvccTest, TransactionStagesPrivatelyAndReadsItsOwnWrites) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
  const MvccEpoch before = d.mvcc.committed_epoch();

  PageTransaction txn(&d.mvcc, {d.seg});
  EXPECT_TRUE(txn.active());
  EXPECT_TRUE(txn.covers(d.seg));
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(99)).ok());
  EXPECT_EQ(txn.staged_page_count(), 1u);
  EXPECT_EQ(d.mvcc.committed_epoch(), before);  // nothing committed yet

  // Read-your-writes on the staging thread...
  Page mine;
  ASSERT_TRUE(d.disk.ReadPage(id, &mine).ok());
  EXPECT_EQ(Stamp(mine), 99u);
  // ...while a snapshot still sees the committed image.
  PageSnapshot snap = d.mvcc.BeginSnapshot();
  Page theirs;
  ASSERT_TRUE(d.disk.ReadPageSnapshot(id, snap, &theirs).ok());
  EXPECT_EQ(Stamp(theirs), 1u);

  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(d.mvcc.committed_epoch(), before + 1);
  Page out;
  ASSERT_TRUE(d.disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), 99u);
  // The pre-commit snapshot keeps its view.
  ASSERT_TRUE(d.disk.ReadPageSnapshot(id, snap, &theirs).ok());
  EXPECT_EQ(Stamp(theirs), 1u);
}

TEST(MvccTest, AbortDiscardsTheStagedSet) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
  const MvccEpoch before = d.mvcc.committed_epoch();
  {
    PageTransaction txn(&d.mvcc, {d.seg});
    ASSERT_TRUE(d.disk.WritePage(id, MakePage(50)).ok());
    txn.Abort();
    EXPECT_FALSE(txn.active());
  }
  EXPECT_EQ(d.mvcc.committed_epoch(), before);
  Page out;
  ASSERT_TRUE(d.disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), 1u);
}

TEST(MvccTest, FirstCommitterWinsSecondAbortsWithConflictList) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());

  PageTransaction loser(&d.mvcc, {d.seg});
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(100)).ok());

  // A second writer (its own thread: transactions bind thread-locally)
  // commits the same page first.
  std::thread winner([&] {
    PageTransaction txn(&d.mvcc, {d.seg});
    ASSERT_TRUE(d.disk.WritePage(id, MakePage(200)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  });
  winner.join();

  std::vector<PageId> conflicts;
  Status st = loser.Commit(&conflicts);
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], id);
  EXPECT_FALSE(loser.active());
#if ASR_METRICS_ENABLED
  EXPECT_EQ(d.mvcc.conflicts().value(), 1u);
  EXPECT_EQ(d.mvcc.commits().value(), 1u);
#endif

  // The loser's staged image never reached the disk.
  Page out;
  ASSERT_TRUE(d.disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), 200u);
}

TEST(MvccTest, DisjointPagesCommitWithoutConflict) {
  MvccDisk d;
  PageId a = d.disk.AllocatePage(d.seg);
  PageId b = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(a, MakePage(1)).ok());
  ASSERT_TRUE(d.disk.WritePage(b, MakePage(2)).ok());

  PageTransaction mine(&d.mvcc, {d.seg});
  ASSERT_TRUE(d.disk.WritePage(a, MakePage(11)).ok());
  std::thread other([&] {
    PageTransaction txn(&d.mvcc, {d.seg});
    ASSERT_TRUE(d.disk.WritePage(b, MakePage(22)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  });
  other.join();
  EXPECT_TRUE(mine.Commit().ok());

  Page out;
  ASSERT_TRUE(d.disk.ReadPage(a, &out).ok());
  EXPECT_EQ(Stamp(out), 11u);
  ASSERT_TRUE(d.disk.ReadPage(b, &out).ok());
  EXPECT_EQ(Stamp(out), 22u);
#if ASR_METRICS_ENABLED
  EXPECT_EQ(d.mvcc.conflicts().value(), 0u);
#endif
}

// N writers over disjoint pages of one registered segment: every commit must
// eventually succeed, the epoch must advance once per commit, and under TSan
// this doubles as the storage-level race check.
TEST(MvccTest, ConcurrentDisjointWritersAllCommit) {
  MvccDisk d;
  constexpr int kWriters = 4;
  constexpr int kCommits = 25;
  std::vector<PageId> pages;
  for (int i = 0; i < kWriters; ++i) {
    pages.push_back(d.disk.AllocatePage(d.seg));
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommits; ++i) {
        PageTransaction txn(&d.mvcc, {d.seg});
        Page page = MakePage(static_cast<uint64_t>(w) * 1000 + i);
        ASSERT_TRUE(d.disk.WritePage(pages[w], page).ok());
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(d.mvcc.committed_epoch(),
            static_cast<MvccEpoch>(kWriters) * kCommits);
#if ASR_METRICS_ENABLED
  EXPECT_EQ(d.mvcc.commits().value(),
            static_cast<uint64_t>(kWriters) * kCommits);
#endif
  for (int w = 0; w < kWriters; ++w) {
    Page out;
    ASSERT_TRUE(d.disk.ReadPage(pages[w], &out).ok());
    EXPECT_EQ(Stamp(out), static_cast<uint64_t>(w) * 1000 + (kCommits - 1));
  }
}

// Contended page under concurrent writers: exactly the winners' commits land
// (epoch == successful commits) and losers surface as Aborted, never as a
// torn or interleaved image.
TEST(MvccTest, ContendedPageSerializesByConflict) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(0)).ok());
  const MvccEpoch base_epoch = d.mvcc.committed_epoch();

  constexpr int kWriters = 4;
  constexpr int kAttempts = 20;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kAttempts; ++i) {
        PageTransaction txn(&d.mvcc, {d.seg});
        Page cur;
        ASSERT_TRUE(d.disk.ReadPage(id, &cur).ok());
        ASSERT_TRUE(
            d.disk.WritePage(id, MakePage(Stamp(cur) + 1)).ok());
        Status st = txn.Commit();
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          ASSERT_TRUE(st.IsAborted()) << st.ToString();
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(committed + aborted,
            static_cast<uint64_t>(kWriters) * kAttempts);
  EXPECT_EQ(d.mvcc.committed_epoch(), base_epoch + committed);
  // The page value counts exactly the successful increments: no lost or
  // duplicated update slipped through the conflict check.
  Page out;
  ASSERT_TRUE(d.disk.ReadPage(id, &out).ok());
  EXPECT_EQ(Stamp(out), committed.load());
#if ASR_METRICS_ENABLED
  EXPECT_EQ(d.mvcc.conflicts().value(), aborted.load());
#endif
}

TEST(MvccTest, CommitAppendsAForeignWalRecordJournalReplayIgnores) {
  std::string path =
      ::testing::TempDir() + "/mvcc_commit_marker.wal";
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path).value();

  MvccDisk d;
  d.mvcc.AttachWal(wal.get());
  PageId id = d.disk.AllocatePage(d.seg);
  {
    PageTransaction txn(&d.mvcc, {d.seg});
    ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(wal->Sync().ok());
  wal.reset();

  // Reopen and replay: the commit marker ('X', epoch + page count) must be
  // self-describing enough that it is delivered intact — audit tools read
  // it — while MaintenanceJournal::ApplyWalRecord (size-checked per type)
  // would simply not claim it. Exactly one record: the single commit above.
  // (Counted directly rather than via records_appended(), which compiles
  // out under ASR_METRICS=OFF.)
  std::vector<std::string> payloads;
  auto reopened = WriteAheadLog::Open(path, [&](std::string_view payload) {
                    payloads.emplace_back(payload);
                  }).value();
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0][0], 'X');
  EXPECT_EQ(payloads[0].size(), 1u + 8u + 4u);
  std::remove(path.c_str());
}

TEST(MvccTest, ExportMetricsPublishesTheMvccSurface) {
  MvccDisk d;
  PageId id = d.disk.AllocatePage(d.seg);
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(1)).ok());
  PageSnapshot snap = d.mvcc.BeginSnapshot();
  ASSERT_TRUE(d.disk.WritePage(id, MakePage(2)).ok());

  obs::MetricsRegistry registry;
  d.mvcc.ExportMetrics(&registry, "mvcc");
  EXPECT_GE(registry.counter("mvcc.epoch"), 2u);
  EXPECT_EQ(registry.counter("mvcc.live_snapshots"), 1u);
  EXPECT_GE(registry.counter("mvcc.retained_pages"), 1u);
}

}  // namespace
}  // namespace asr::storage
