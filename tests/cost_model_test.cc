// Tests for the analytical cost model (Sections 4-6) — derived quantities,
// cardinalities, storage, query and update costs — including checks of the
// qualitative claims the paper states for its figures.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/opmix.h"

namespace asr::cost {
namespace {

// The application profile of §4.4.1 / Fig. 4 (also §6.3.1 / Fig. 11 with
// sizes).
ApplicationProfile Fig4Profile() {
  ApplicationProfile p;
  p.n = 4;
  p.c = {1000, 5000, 10000, 50000, 100000};
  p.d = {900, 4000, 8000, 20000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

// The profile of §5.9.1 / Fig. 6.
ApplicationProfile Fig6Profile() {
  ApplicationProfile p;
  p.n = 4;
  // The paper's table prints d_2 = 8000, which exceeds c_2 = 1000 — an
  // obvious typo; we read it as 800.
  p.c = {100, 500, 1000, 5000, 10000};
  p.d = {90, 400, 800, 2000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

TEST(SystemParametersTest, PaperDefaults) {
  SystemParameters sys;
  EXPECT_EQ(sys.page_size, 4056);
  EXPECT_EQ(sys.oid_size, 8);
  EXPECT_EQ(sys.pp_size, 4);
  // floor(4056 / 12) = 338.
  EXPECT_EQ(sys.BTreeFanOut(), 338);
}

TEST(ProfileTest, ValidationCatchesArityErrors) {
  ApplicationProfile p;
  p.n = 2;
  p.c = {10, 10};  // needs 3 entries
  p.d = {5, 5};
  p.fan = {1, 1};
  EXPECT_FALSE(p.Validate().ok());
  p.c = {10, 10, 10};
  EXPECT_TRUE(p.Validate().ok());
  p.d = {50, 5};  // d > c
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DerivedTest, DefaultSharingYieldsDistinctReferencedObjects) {
  CostModel m(Fig4Profile());
  // With the default (uniform-spread, sharing >= 1) assumption,
  // e_i = min(d_{i-1} * fan_{i-1}, c_i): the references land on distinct
  // objects while they are fewer than the target extent.
  EXPECT_DOUBLE_EQ(m.e(1), 1800.0);   // 900 * 2
  EXPECT_DOUBLE_EQ(m.e(2), 8000.0);   // 4000 * 2
  EXPECT_DOUBLE_EQ(m.e(3), 24000.0);  // 8000 * 3
  EXPECT_DOUBLE_EQ(m.e(4), 80000.0);  // 20000 * 4
  for (uint32_t i = 1; i <= 4; ++i) {
    EXPECT_LE(m.e(i), m.c(i)) << i;
    EXPECT_LE(m.PH(i), 1.0) << i;
  }
  EXPECT_DOUBLE_EQ(m.PA(0), 0.9);
  EXPECT_DOUBLE_EQ(m.PA(1), 0.8);
  EXPECT_DOUBLE_EQ(m.ref(0), 1800.0);
}

TEST(DerivedTest, ExplicitSharingOverrides) {
  ApplicationProfile p = Fig4Profile();
  p.shar = {2, 2, 2, 2};
  CostModel m(p);
  // e_1 = d_0 fan_0 / shar_0 = 900*2/2 = 900 (< c_1 = 5000).
  EXPECT_DOUBLE_EQ(m.e(1), 900.0);
  EXPECT_LT(m.PH(1), 1.0);
}

TEST(DerivedTest, RefByBaseCaseAndMonotonicity) {
  CostModel m(Fig4Profile());
  EXPECT_DOUBLE_EQ(m.RefBy(0, 1), m.e(1));
  // More distant levels can only be reached through defined attributes.
  for (uint32_t j = 1; j <= 4; ++j) {
    EXPECT_GT(m.RefBy(0, j), 0.0);
    EXPECT_LE(m.RefBy(0, j), m.c(j));
    EXPECT_GE(m.PRefBy(0, j), 0.0);
    EXPECT_LE(m.PRefBy(0, j), 1.0);
  }
}

TEST(DerivedTest, RefBaseCaseAndBounds) {
  CostModel m(Fig4Profile());
  EXPECT_DOUBLE_EQ(m.Ref(3, 4), m.d(3));
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_GT(m.Ref(i, 4), 0.0);
    EXPECT_LE(m.Ref(i, 4), m.d(i));  // only defined objects have paths
  }
}

TEST(DerivedTest, ThreeArgumentVariantsGrowWithK) {
  CostModel m(Fig4Profile());
  // RefBy(i, j, k) increases with k and reaches RefBy(i, j) at k = d_i.
  double prev = 0.0;
  for (double k : {1.0, 10.0, 100.0, 900.0}) {
    double v = m.RefBy(0, 4, k);
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Anchoring at all d_0 objects approaches (but, due to the collision
  // model in the k-variant, does not exceed) the two-argument quantity.
  EXPECT_LE(m.RefBy(0, 4, m.d(0)), m.RefBy(0, 4) * (1 + 1e-9));
  EXPECT_NEAR(m.Ref(0, 4, m.c(4)), m.Ref(0, 4), m.Ref(0, 4) * 0.05);
  // Degenerate one-element anchors.
  EXPECT_DOUBLE_EQ(m.RefBy(0, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.Ref(4, 4, 1.0), 1.0);
}

TEST(DerivedTest, PathCountMatchesHandComputation) {
  CostModel m(Fig4Profile());
  // path(0,1) = ref_0 = d_0 * fan_0.
  EXPECT_DOUBLE_EQ(m.PathCount(0, 1), 1800.0);
  // path(0,2) = ref_0 * P_A1 * fan_1 = 1800 * 0.8 * 2.
  EXPECT_DOUBLE_EQ(m.PathCount(0, 2), 1800.0 * 0.8 * 2.0);
  // path over the whole chain.
  double expect = 1800.0 * (0.8 * 2.0) * (0.8 * 3.0) * (0.4 * 4.0);
  EXPECT_NEAR(m.PathCount(0, 4), expect, 1e-6);
}

TEST(YaoTest, BasicProperties) {
  // Fetching everything touches every page.
  EXPECT_DOUBLE_EQ(CostModel::Yao(100, 10, 100), 10.0);
  // Fetching nothing costs nothing.
  EXPECT_DOUBLE_EQ(CostModel::Yao(0, 10, 100), 0.0);
  // One record: exactly one page.
  EXPECT_DOUBLE_EQ(CostModel::Yao(1, 10, 100), 1.0);
  // Monotone in k, bounded by m.
  double prev = 0.0;
  for (double k = 1; k <= 100; ++k) {
    double y = CostModel::Yao(k, 10, 100);
    EXPECT_GE(y, prev);
    EXPECT_LE(y, 10.0);
    prev = y;
  }
  // One page holds everything: always 1 page once k > 0.
  EXPECT_DOUBLE_EQ(CostModel::Yao(5, 1, 100), 1.0);
}

TEST(CardinalityTest, CanonicalWholePathEqualsPathCount) {
  CostModel m(Fig4Profile());
  // #E_can = path(0, n) (§4.2.1, no decomposition).
  EXPECT_NEAR(m.Cardinality(ExtensionKind::kCanonical, 0, 4),
              m.PathCount(0, 4), 1e-6);
}

TEST(CardinalityTest, ExtensionOrdering) {
  CostModel m(Fig4Profile());
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j <= 4; ++j) {
      double can = m.Cardinality(ExtensionKind::kCanonical, i, j);
      double left = m.Cardinality(ExtensionKind::kLeftComplete, i, j);
      double right = m.Cardinality(ExtensionKind::kRightComplete, i, j);
      double full = m.Cardinality(ExtensionKind::kFull, i, j);
      EXPECT_GT(can, 0.0);
      // can <= left, right <= full (more partial paths retained).
      EXPECT_LE(can, left * (1 + 1e-9)) << i << "," << j;
      EXPECT_LE(can, right * (1 + 1e-9)) << i << "," << j;
      EXPECT_LE(left, full * (1 + 1e-9)) << i << "," << j;
      EXPECT_LE(right, full * (1 + 1e-9)) << i << "," << j;
    }
  }
}

TEST(CardinalityTest, Fig4StorageOrdering) {
  // §4.4.1: "few objects at the left side of the path cause the canonical
  // and left-complete extensions to be drastically smaller than the
  // right-complete and full extension."
  CostModel m(Fig4Profile());
  Decomposition none = Decomposition::None(4);
  double can = m.TotalBytes(ExtensionKind::kCanonical, none);
  double left = m.TotalBytes(ExtensionKind::kLeftComplete, none);
  double right = m.TotalBytes(ExtensionKind::kRightComplete, none);
  double full = m.TotalBytes(ExtensionKind::kFull, none);
  EXPECT_LT(can, right / 2.0);
  EXPECT_LT(left, right / 2.0);
  EXPECT_LE(right, full);
}

TEST(CardinalityTest, Fig4BinaryDecompositionShrinksStorage) {
  // §4.4.1: "the binary decomposition reduces storage costs by a factor
  // of 2" (tuples of width 2 instead of up to n+1).
  CostModel m(Fig4Profile());
  double none = m.TotalBytes(ExtensionKind::kFull, Decomposition::None(4));
  double binary =
      m.TotalBytes(ExtensionKind::kFull, Decomposition::Binary(4));
  EXPECT_LT(binary, none);
  EXPECT_NEAR(none / binary, 2.0, 0.8);
}

TEST(CardinalityTest, Fig5ExtensionsConvergeWhenAllDefined) {
  // §4.4.2: as d_i -> c_i the storage costs of all extensions approach
  // each other.
  ApplicationProfile p;
  p.n = 4;
  p.c = {10000, 10000, 10000, 10000, 10000};
  p.fan = {2, 2, 2, 2};
  p.size = {120, 120, 120, 120, 120};
  p.d = {10000, 10000, 10000, 10000};
  CostModel all_defined(p);
  Decomposition none = Decomposition::None(4);
  double can = all_defined.TotalBytes(ExtensionKind::kCanonical, none);
  double full = all_defined.TotalBytes(ExtensionKind::kFull, none);
  EXPECT_NEAR(full / can, 1.0, 0.05);

  p.d = {2500, 2500, 2500, 2500};
  CostModel sparse(p);
  double can_s = sparse.TotalBytes(ExtensionKind::kCanonical, none);
  double full_s = sparse.TotalBytes(ExtensionKind::kFull, none);
  EXPECT_GT(full_s / can_s, 3.0);  // far apart when paths are sparse
}

TEST(StorageTest, TupleAndPageFormulas) {
  CostModel m(Fig4Profile());
  EXPECT_DOUBLE_EQ(m.TupleBytes(0, 4), 40.0);   // 5 columns x 8 bytes
  EXPECT_DOUBLE_EQ(m.TupleBytes(1, 2), 16.0);
  EXPECT_DOUBLE_EQ(m.TuplesPerPage(1, 2), 253.0);  // floor(4056/16)
  EXPECT_DOUBLE_EQ(m.ObjectsPerPage(0), 8.0);      // floor(4056/500)
  EXPECT_DOUBLE_EQ(m.ObjectPages(0), 125.0);       // ceil(1000/8)
}

TEST(StorageTest, BTreeHeightGrowsWithPartitionSize) {
  CostModel m(Fig4Profile());
  double ht_small = m.BTreeHeight(ExtensionKind::kCanonical, 0, 1);
  double ht_big = m.BTreeHeight(ExtensionKind::kFull, 0, 4);
  EXPECT_GE(ht_big, ht_small);
  EXPECT_GE(m.BTreeNonLeafPages(ExtensionKind::kFull, 0, 4), 1.0);
}

TEST(QueryCostTest, NoSupportForwardCheaperThanBackward) {
  CostModel m(Fig6Profile());
  // A forward query chases one object's references; a backward query scans
  // the whole t_i extent (§5.6).
  EXPECT_LT(m.QueryNoSupport(QueryDirection::kForward, 0, 4),
            m.QueryNoSupport(QueryDirection::kBackward, 0, 4));
}

TEST(QueryCostTest, SupportBeatsNoSupportOnFig6Profile) {
  // Fig. 6's whole point: supported backward queries are far cheaper.
  CostModel m(Fig6Profile());
  Decomposition none = Decomposition::None(4);
  for (ExtensionKind x :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    EXPECT_LT(m.QuerySupported(x, QueryDirection::kBackward, 0, 4, none),
              m.QueryNoSupport(QueryDirection::kBackward, 0, 4))
        << ExtensionKindName(x);
  }
}

TEST(QueryCostTest, Fig6NoDecompositionBeatsBinary) {
  // §5.9.1: "the query costs for non-decomposed access relations is lower
  // than for binary decomposed relations" (for the full-span query).
  CostModel m(Fig6Profile());
  for (ExtensionKind x :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    double none =
        m.QuerySupported(x, QueryDirection::kBackward, 0, 4,
                         Decomposition::None(4));
    double binary =
        m.QuerySupported(x, QueryDirection::kBackward, 0, 4,
                         Decomposition::Binary(4));
    EXPECT_LE(none, binary) << ExtensionKindName(x);
  }
}

TEST(QueryCostTest, Fig7SupportedCostIndependentOfObjectSize) {
  // §5.9.2: object size does not influence supported queries; unsupported
  // cost grows with object size.
  ApplicationProfile p = Fig6Profile();
  p.size = {100, 100, 100, 100, 100};
  CostModel small(p);
  p.size = {800, 800, 800, 800, 800};
  CostModel big(p);
  Decomposition bi = Decomposition::Binary(4);
  EXPECT_DOUBLE_EQ(
      small.QuerySupported(ExtensionKind::kFull, QueryDirection::kBackward,
                           0, 4, bi),
      big.QuerySupported(ExtensionKind::kFull, QueryDirection::kBackward, 0,
                         4, bi));
  EXPECT_LT(small.QueryNoSupport(QueryDirection::kBackward, 0, 4),
            big.QueryNoSupport(QueryDirection::kBackward, 0, 4));
}

TEST(QueryCostTest, Eq35DispatchesUnsupportedToNas) {
  CostModel m(Fig6Profile());
  Decomposition bi = Decomposition::Binary(4);
  // Canonical cannot answer Q_{0,3}: falls back to Qnas.
  EXPECT_DOUBLE_EQ(
      m.QueryCost(ExtensionKind::kCanonical, QueryDirection::kBackward, 0, 3,
                  bi),
      m.QueryNoSupport(QueryDirection::kBackward, 0, 3));
  // Right-complete cannot either (j != n).
  EXPECT_DOUBLE_EQ(
      m.QueryCost(ExtensionKind::kRightComplete, QueryDirection::kBackward,
                  0, 3, bi),
      m.QueryNoSupport(QueryDirection::kBackward, 0, 3));
  // Left-complete and full can.
  EXPECT_NE(
      m.QueryCost(ExtensionKind::kLeftComplete, QueryDirection::kBackward, 0,
                  3, bi),
      m.QueryNoSupport(QueryDirection::kBackward, 0, 3));
}

TEST(QueryCostTest, Fig8NonDecomposedCanBeWorseThanNoSupport) {
  // §5.9.3: with ample d_i, evaluating Q_{0,3}(bw) via the non-decomposed
  // full extension is costlier than the unsupported evaluation (the large
  // relation is scanned exhaustively since j=3 is an interior column).
  ApplicationProfile p;
  p.n = 4;
  p.c = {10000, 10000, 10000, 10000, 10000};
  p.d = {10000, 10000, 10000, 10000};
  p.fan = {2, 2, 2, 2};
  p.size = {120, 120, 120, 120, 120};
  CostModel m(p);
  double supported = m.QueryCost(
      ExtensionKind::kFull, QueryDirection::kBackward, 0, 3,
      Decomposition::None(4));
  double unsupported = m.QueryNoSupport(QueryDirection::kBackward, 0, 3);
  EXPECT_GT(supported, unsupported);
  // Under the binary decomposition the supported query wins again.
  double decomposed = m.QueryCost(
      ExtensionKind::kFull, QueryDirection::kBackward, 0, 3,
      Decomposition::Binary(4));
  EXPECT_LT(decomposed, unsupported);
}

TEST(UpdateCostTest, SearchCostsRespectExtensionAsymmetry) {
  CostModel m(Fig4Profile());
  Decomposition bi = Decomposition::Binary(4);
  // §6.3.1 (update at the right end, ins_3): the left-complete extension is
  // "very much superior to the right-complete extension".
  double left = m.UpdateCost(ExtensionKind::kLeftComplete, 3, bi);
  double right = m.UpdateCost(ExtensionKind::kRightComplete, 3, bi);
  EXPECT_LT(left, right);
  // For ins_0 the right-complete extension is "drastically better".
  double left0 = m.UpdateCost(ExtensionKind::kLeftComplete, 0, bi);
  double right0 = m.UpdateCost(ExtensionKind::kRightComplete, 0, bi);
  EXPECT_LT(right0, left0);
}

TEST(UpdateCostTest, FullNeedsNoDataSearch) {
  CostModel m(Fig4Profile());
  Decomposition bi = Decomposition::Binary(4);
  // The full extension's search cost is bounded by one partition lookup;
  // canonical must search the object representation and is much costlier.
  double full = m.UpdateSearchCost(ExtensionKind::kFull, 2, bi);
  double can = m.UpdateSearchCost(ExtensionKind::kCanonical, 2, bi);
  EXPECT_LT(full, can);
}

TEST(UpdateCostTest, Fig13CanAndRightGrowWithObjectSize) {
  // §6.3.3: canonical and right-complete update costs (ins_1) grow with
  // object size because of the backward data search; left-complete is only
  // marginally affected.
  ApplicationProfile p = Fig4Profile();
  p.size = {100, 100, 100, 100, 100};
  CostModel small(p);
  p.size = {800, 800, 800, 800, 800};
  CostModel big(p);
  Decomposition bi = Decomposition::Binary(4);
  double can_growth = big.UpdateCost(ExtensionKind::kCanonical, 1, bi) -
                      small.UpdateCost(ExtensionKind::kCanonical, 1, bi);
  double right_growth =
      big.UpdateCost(ExtensionKind::kRightComplete, 1, bi) -
      small.UpdateCost(ExtensionKind::kRightComplete, 1, bi);
  double left_growth =
      big.UpdateCost(ExtensionKind::kLeftComplete, 1, bi) -
      small.UpdateCost(ExtensionKind::kLeftComplete, 1, bi);
  EXPECT_GT(can_growth, left_growth);
  EXPECT_GT(right_growth, left_growth);
}

OperationMix Fig14Mix() {
  OperationMix mix;
  mix.queries = {{0.5, QueryDirection::kBackward, 0, 4},
                 {0.25, QueryDirection::kBackward, 0, 3},
                 {0.25, QueryDirection::kForward, 1, 2}};
  mix.updates = {{0.5, 2}, {0.5, 3}};
  return mix;
}

TEST(OpMixTest, WeightsCompose) {
  CostModel m(Fig4Profile());
  OperationMix mix = Fig14Mix();
  Decomposition bi = Decomposition::Binary(4);
  double q_only = MixCost(m, ExtensionKind::kFull, bi, mix, 0.0);
  double u_only = MixCost(m, ExtensionKind::kFull, bi, mix, 1.0);
  double half = MixCost(m, ExtensionKind::kFull, bi, mix, 0.5);
  EXPECT_NEAR(half, (q_only + u_only) / 2.0, 1e-9);
}

TEST(OpMixTest, Fig14LeftBeatsFullAtLowUpdateProbability) {
  // §6.4.2: "for an update probability less than 0.3 the left-complete
  // extension beats the full extension" (binary decomposition).
  CostModel m(Fig4Profile());
  OperationMix mix = Fig14Mix();
  Decomposition bi = Decomposition::Binary(4);
  double left_low = MixCost(m, ExtensionKind::kLeftComplete, bi, mix, 0.1);
  double full_low = MixCost(m, ExtensionKind::kFull, bi, mix, 0.1);
  EXPECT_LT(left_low, full_low);
  // At high update probability the relation flips.
  double left_high = MixCost(m, ExtensionKind::kLeftComplete, bi, mix, 0.9);
  double full_high = MixCost(m, ExtensionKind::kFull, bi, mix, 0.9);
  EXPECT_GT(left_high, full_high);
}

TEST(OpMixTest, NormalizedCostBelowOneMeansSupportPaysOff) {
  CostModel m(Fig4Profile());
  OperationMix mix = Fig14Mix();
  Decomposition bi = Decomposition::Binary(4);
  // Query-dominated mixes: access support must be a clear win.
  EXPECT_LT(NormalizedMixCost(m, ExtensionKind::kFull, bi, mix, 0.1), 1.0);
  // At extreme update rates plain objects win (break-even near 0.998).
  EXPECT_GT(NormalizedMixCost(m, ExtensionKind::kFull, bi, mix, 0.9999), 1.0);
}

TEST(OpMixTest, Fig17RightBeatsFullOnlyAtTinyUpdateRates) {
  // §6.4.5 profile; decomposition (0,3,5): "for update probabilities less
  // than 0.005 the right-complete extension is even better than the full
  // extension".
  ApplicationProfile p;
  p.n = 5;
  p.c = {100000, 100000, 50000, 10000, 1000, 1000};
  p.d = {100000, 10000, 30000, 10000, 100};
  p.fan = {1, 10, 20, 4, 1};
  p.size = {600, 500, 400, 300, 200, 700};
  CostModel m(p);
  OperationMix mix;
  mix.queries = {{0.5, QueryDirection::kBackward, 0, 5},
                 {0.25, QueryDirection::kBackward, 1, 5},
                 {0.25, QueryDirection::kBackward, 2, 5}};
  mix.updates = {{1.0, 3}};
  Decomposition dec = Decomposition::Of({0, 3, 5}, 5).value();
  double right_lo = MixCost(m, ExtensionKind::kRightComplete, dec, mix, 1e-4);
  double full_lo = MixCost(m, ExtensionKind::kFull, dec, mix, 1e-4);
  EXPECT_LT(right_lo, full_lo);
  double right_hi = MixCost(m, ExtensionKind::kRightComplete, dec, mix, 0.5);
  double full_hi = MixCost(m, ExtensionKind::kFull, dec, mix, 0.5);
  EXPECT_GT(right_hi, full_hi);
}

TEST(ClusterCountTest, OutsidePartitionsAreZeroForFull) {
  CostModel m(Fig4Profile());
  // Full extension: only the partition covering (i, i+1) is updated.
  EXPECT_DOUBLE_EQ(m.ClustersForward(ExtensionKind::kFull, 2, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.ClustersForward(ExtensionKind::kFull, 2, 3, 4), 0.0);
  EXPECT_GT(m.ClustersForward(ExtensionKind::kFull, 2, 2, 3), 0.0);
  EXPECT_GT(m.ClustersBackward(ExtensionKind::kFull, 2, 2, 3), 0.0);
}

TEST(ClusterCountTest, CanonicalTouchesAllPartitions) {
  CostModel m(Fig4Profile());
  for (uint32_t a = 0; a < 4; ++a) {
    EXPECT_GT(m.ClustersForward(ExtensionKind::kCanonical, 2, a, a + 1), 0.0)
        << a;
  }
}

TEST(PPathTest, ProbabilitiesInRange) {
  CostModel m(Fig4Profile());
  for (uint32_t l = 0; l <= 4; ++l) {
    double p = m.PPath(l);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_NEAR(m.PNoPath(l), 1.0 - p, 1e-12);
  }
}

}  // namespace
}  // namespace asr::cost
