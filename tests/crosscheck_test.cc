// Cross-checks between the analytical cost model's machinery and the real
// implementation: Yao's formula against metered batched fetches, the B+ tree
// page/height estimates against real trees, and ASR cardinality estimates
// against materialized extensions on synthetic bases.
#include <gtest/gtest.h>

#include <cmath>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "btree/btree.h"
#include "common/random.h"
#include "cost/cost_model.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

// Yao's y(k, m, n) predicts the pages touched when k of n records spread
// over m pages are fetched. Our GetTuples pins each containing page once —
// measure and compare across a k sweep.
TEST(YaoCrossCheck, BatchedFetchMatchesFormula) {
  gom::Schema schema;
  TypeId t = schema.DefineTupleType("T", {}, {}).value();
  storage::Disk disk;
  storage::BufferManager buffers(&disk, 0);
  gom::ObjectStore store(&schema, &buffers);
  store.SetObjectSize(t, 400);  // ~10 objects per page

  const uint64_t n = 2000;
  std::vector<Oid> oids;
  for (uint64_t i = 0; i < n; ++i) oids.push_back(store.CreateObject(t).value());
  const double m = store.PageCount(t);

  Rng rng(5);
  for (uint64_t k : {1ull, 10ull, 50ull, 200ull, 1000ull, 2000ull}) {
    // Average measured pages over a few random samples.
    double measured_sum = 0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<Oid> sample;
      for (uint64_t idx : rng.SampleWithoutReplacement(n, k)) {
        sample.push_back(oids[idx]);
      }
      storage::AccessStats cost = workload::Meter(&disk, [&] {
        store.GetTuples(sample).value();
      });
      measured_sum += static_cast<double>(cost.page_reads);
    }
    double measured = measured_sum / kTrials;
    double predicted = cost::CostModel::Yao(static_cast<double>(k), m,
                                            static_cast<double>(n));
    EXPECT_NEAR(measured, predicted, std::max(2.0, predicted * 0.15))
        << "k=" << k << " m=" << m;
  }
}

// The model's ht/pg/ap estimates (Eqs. 16, 19, 20) against a real partition
// tree built from the same profile.
TEST(BTreeCrossCheck, PageAndHeightEstimatesTrackRealTrees) {
  cost::ApplicationProfile profile;
  profile.n = 3;
  profile.c = {300, 1000, 3000, 2000};
  profile.d = {250, 800, 2500};
  profile.fan = {2, 2, 2};
  profile.size = {120, 120, 120, 120};

  auto base = workload::SyntheticBase::Generate(profile, {21, 64}).value();
  cost::CostModel model(profile);

  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    auto asr = AccessSupportRelation::Build(
                   base->store(), base->path(), kind,
                   Decomposition::None(base->path().n()))
                   .value();
    const btree::BTree& tree = asr->forward_tree(0);

    double cardinality = model.Cardinality(kind, 0, 3);
    double real_tuples = static_cast<double>(tree.tuple_count());
    // Expected tuple counts within 35% (the model is probabilistic and the
    // realized graph is one sample).
    EXPECT_NEAR(real_tuples, cardinality,
                std::max(20.0, cardinality * 0.35))
        << ExtensionKindName(kind);

    // Real leaf pages vs ap: the real tree stores an extra 8-byte
    // fingerprint per tuple and splits at ~50-100% fill, so allow a factor
    // of ~3 but require the same order of magnitude.
    double ap = model.PartitionPages(kind, 0, 3);
    double real_leaves = tree.leaf_page_count();
    EXPECT_LE(real_leaves, ap * 4 + 2) << ExtensionKindName(kind);
    EXPECT_GE(real_leaves, ap * 0.5) << ExtensionKindName(kind);

    // Heights differ by at most one level.
    double ht = model.BTreeHeight(kind, 0, 3);
    EXPECT_NEAR(static_cast<double>(tree.height()), ht, 1.0)
        << ExtensionKindName(kind);
  }
}

// Extension cardinalities (§4.2) against materialized extensions across a
// grid of profiles — the central quantities behind Figs. 4 and 5.
TEST(CardinalityCrossCheck, ModelTracksMaterializedExtensions) {
  for (uint64_t seed : {1ull, 7ull}) {
    for (double density : {0.5, 0.9}) {
      cost::ApplicationProfile profile;
      profile.n = 3;
      profile.c = {200, 400, 800, 600};
      profile.d = {200 * density, 400 * density, 800 * density};
      profile.fan = {2, 1, 2};
      profile.size = {120, 120, 120, 120};
      auto base =
          workload::SyntheticBase::Generate(profile, {seed, 64}).value();
      cost::CostModel model(profile);

      for (ExtensionKind kind :
           {ExtensionKind::kCanonical, ExtensionKind::kFull,
            ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
        rel::Relation ext =
            ComputeExtension(base->store(), base->path(), kind, true)
                .value();
        double predicted = model.Cardinality(kind, 0, 3);
        double actual = static_cast<double>(ext.size());
        EXPECT_NEAR(actual, predicted, std::max(30.0, predicted * 0.35))
            << ExtensionKindName(kind) << " density " << density << " seed "
            << seed;
      }
    }
  }
}

// The navigational backward query estimate Qnas(bw) (Eq. 32) against the
// metered execution, across profile scales.
TEST(QueryCostCrossCheck, NavigationalBackwardTracksModel) {
  for (double scale : {0.5, 1.0, 2.0}) {
    cost::ApplicationProfile profile;
    profile.n = 3;
    profile.c = {100 * scale, 300 * scale, 900 * scale, 600 * scale};
    profile.d = {80 * scale, 240 * scale, 700 * scale};
    profile.fan = {2, 2, 2};
    profile.size = {300, 300, 200, 100};
    auto base = workload::SyntheticBase::Generate(profile, {3, 0}).value();
    cost::CostModel model(profile);
    QueryEvaluator nav(base->store(), &base->path());

    double measured_sum = 0;
    const int kTrials = 4;
    for (int trial = 0; trial < kTrials; ++trial) {
      Oid target = base->objects_at(3)[static_cast<size_t>(
          (trial * 131) % base->objects_at(3).size())];
      storage::AccessStats st = workload::Meter(base->disk(), [&] {
        nav.BackwardNoSupport(AsrKey::FromOid(target), 0, 3).value();
      });
      measured_sum += static_cast<double>(st.total());
    }
    double measured = measured_sum / kTrials;
    double predicted =
        model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 3);
    EXPECT_GT(measured, predicted * 0.5) << "scale " << scale;
    EXPECT_LT(measured, predicted * 2.0) << "scale " << scale;
  }
}

}  // namespace
}  // namespace asr
