// Tests for the durability layer: WAL framing (round-trip, torn tail,
// corrupt suffix), journal persistence through the WAL, durable snapshots,
// and read-only degradation after a permanent backend write failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "asr/journal.h"
#include "check/check_report.h"
#include "check/invariant_checker.h"
#include "gom/database.h"
#include "storage/file_backend.h"
#include "storage/wal.h"
#include "paper_example.h"

namespace asr {
namespace {

using storage::Crc32;
using storage::DiskOptions;
using storage::WriteAheadLog;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> ReplayAll(const std::string& path,
                                   WriteAheadLog::ReplayStats* stats = nullptr,
                                   std::unique_ptr<WriteAheadLog>* keep =
                                       nullptr) {
  std::vector<std::string> records;
  auto wal = WriteAheadLog::Open(
      path, [&](std::string_view payload) { records.emplace_back(payload); },
      stats);
  ASR_CHECK(wal.ok());
  if (keep != nullptr) *keep = std::move(*wal);
  return records;
}

// --- Frame format ---------------------------------------------------------

TEST(WalCrcTest, MatchesTheIeeeReferenceVector) {
  // The standard zlib/zip check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalTest, RoundTripsRandomRecordsAcrossReopen) {
  const std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  std::mt19937 rng(20260808);
  std::vector<std::string> written;
  {
    auto wal = WriteAheadLog::Open(path).value();
    for (int i = 0; i < 200; ++i) {
      // Lengths from 0 to a few KiB, arbitrary bytes (including '\0' and
      // bytes that look like frame headers).
      std::string rec(rng() % 4096, '\0');
      for (char& c : rec) c = static_cast<char>(rng() & 0xFF);
      ASSERT_TRUE(wal->Append(rec).ok());
      written.push_back(std::move(rec));
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> replayed = ReplayAll(path, &stats);
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(stats.records, written.size());
  EXPECT_EQ(stats.dropped_bytes, 0u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_FALSE(stats.corrupt_suffix);
  std::remove(path.c_str());
}

TEST(WalTest, OpenCreatesEmptyLogAndAppendsAfterReopen) {
  const std::string path = TempPath("wal_empty.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path).value();
    EXPECT_EQ(wal->tail_offset(), 0u);
    ASSERT_TRUE(wal->Append("one").ok());
  }
  {
    std::unique_ptr<WriteAheadLog> wal;
    std::vector<std::string> records = ReplayAll(path, nullptr, &wal);
    ASSERT_EQ(records.size(), 1u);
    ASSERT_TRUE(wal->Append("two").ok());
  }
  std::vector<std::string> records = ReplayAll(path);
  EXPECT_EQ(records, (std::vector<std::string>{"one", "two"}));
  std::remove(path.c_str());
}

TEST(WalTest, RejectsOversizeRecords) {
  const std::string path = TempPath("wal_oversize.wal");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path).value();
  std::string huge(WriteAheadLog::kMaxRecordBytes + 1, 'x');
  EXPECT_TRUE(wal->Append(huge).IsInvalidArgument());
  EXPECT_EQ(wal->tail_offset(), 0u);
  std::remove(path.c_str());
}

// Cuts the file at every possible byte offset inside the final frame; each
// cut is exactly what a SIGKILL mid-append leaves, and every one must replay
// the intact prefix and truncate the tail.
TEST(WalTest, TornTailAtEveryOffsetRecoversThePrefix) {
  const std::string path = TempPath("wal_torn.wal");
  const std::string base = TempPath("wal_torn_base.wal");
  std::remove(base.c_str());
  uint64_t full_size;
  uint64_t prefix_size;  // frames 0 and 1
  {
    auto wal = WriteAheadLog::Open(base).value();
    ASSERT_TRUE(wal->Append("first record").ok());
    ASSERT_TRUE(wal->Append("second record").ok());
    prefix_size = wal->tail_offset();
    ASSERT_TRUE(wal->Append("the record the crash tears").ok());
    full_size = wal->tail_offset();
  }
  std::string image(full_size, '\0');
  {
    std::ifstream in(base, std::ios::binary);
    in.read(image.data(), static_cast<std::streamsize>(full_size));
    ASSERT_TRUE(in.good());
  }
  // cut == prefix_size would be a clean frame boundary, not a torn tail.
  for (uint64_t cut = prefix_size + 1; cut < full_size; ++cut) {
    std::remove(path.c_str());
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(cut));
    }
    WriteAheadLog::ReplayStats stats;
    std::unique_ptr<WriteAheadLog> wal;
    std::vector<std::string> records = ReplayAll(path, &stats, &wal);
    ASSERT_EQ(records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(records[1], "second record");
    EXPECT_TRUE(stats.torn_tail) << "cut at " << cut;
    EXPECT_FALSE(stats.corrupt_suffix);
    EXPECT_EQ(stats.valid_bytes, prefix_size);
    EXPECT_EQ(stats.dropped_bytes, cut - prefix_size);
    // The tail was truncated: a new append lands at the prefix boundary and
    // survives the next reopen.
    EXPECT_EQ(wal->tail_offset(), prefix_size);
    ASSERT_TRUE(wal->Append("after recovery").ok());
    wal.reset();
    std::vector<std::string> again = ReplayAll(path);
    ASSERT_EQ(again.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(again[2], "after recovery");
  }
  std::remove(path.c_str());
  std::remove(base.c_str());
}

TEST(WalTest, CorruptCrcQuarantinesTheEntireSuffix) {
  const std::string path = TempPath("wal_corrupt.wal");
  std::remove(path.c_str());
  uint64_t second_frame_off;
  {
    auto wal = WriteAheadLog::Open(path).value();
    ASSERT_TRUE(wal->Append("kept record").ok());
    second_frame_off = wal->tail_offset();
    ASSERT_TRUE(wal->Append("stomped record").ok());
    ASSERT_TRUE(wal->Append("valid but untrustworthy").ok());
  }
  {
    // Flip one payload byte of the middle record; its CRC now fails.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(second_frame_off + 8));
    char byte;
    f.seekg(static_cast<std::streamoff>(second_frame_off + 8));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(second_frame_off + 8));
    f.write(&byte, 1);
  }
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> records = ReplayAll(path, &stats);
  // Only the prefix before the corruption survives — the third record is
  // bit-valid but lives beyond an untrustworthy frame boundary, so it is
  // quarantined with the rest of the suffix.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "kept record");
  EXPECT_TRUE(stats.corrupt_suffix);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.valid_bytes, second_frame_off);
  EXPECT_GT(stats.dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, AbsurdLengthHeaderIsCorruptionNotAnAllocation) {
  const std::string path = TempPath("wal_absurd.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path).value();
    ASSERT_TRUE(wal->Append("good").ok());
  }
  {
    // Forge a frame whose length field claims 4 GiB.
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const char header[8] = {'\xFF', '\xFF', '\xFF', '\xFF', 0, 0, 0, 0};
    f.write(header, 8);
    f.write("junk", 4);
  }
  WriteAheadLog::ReplayStats stats;
  std::vector<std::string> records = ReplayAll(path, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(stats.corrupt_suffix);
  std::remove(path.c_str());
}

// --- Journal persistence --------------------------------------------------

TEST(JournalWalTest, TransitionsSurviveReopenThroughApplyWalRecord) {
  const std::string path = TempPath("journal.wal");
  std::remove(path.c_str());
  uint64_t committed_seq, lost_seq, pending_seq, rebuild_seq;
  {
    auto wal = WriteAheadLog::Open(path).value();
    MaintenanceJournal journal;
    journal.AttachWal(wal.get());
    committed_seq = journal.BeginEdge(MaintOp::kEdgeInsert, Oid::FromRaw(7),
                                      1, AsrKey::FromRaw(9));
    journal.Commit(committed_seq);
    lost_seq = journal.BeginEdge(MaintOp::kEdgeRemove, Oid::FromRaw(8), 2,
                                 AsrKey::FromRaw(10));
    journal.MarkLost(lost_seq);
    rebuild_seq = journal.BeginRebuild();
    journal.Commit(rebuild_seq);
    // The crash tail: an intent whose commit never happened.
    pending_seq = journal.BeginEdge(MaintOp::kEdgeInsert, Oid::FromRaw(11),
                                    0, AsrKey::FromRaw(12));
    EXPECT_TRUE(journal.wal_error().ok());
  }  // process dies

  MaintenanceJournal restored;
  std::unique_ptr<WriteAheadLog> wal;
  for (const std::string& rec : ReplayAll(path, nullptr, &wal)) {
    EXPECT_TRUE(restored.ApplyWalRecord(rec));
  }
  EXPECT_EQ(restored.committed(), 2u);
  EXPECT_EQ(restored.lost(), 1u);
  EXPECT_EQ(restored.pending(), 1u);
  EXPECT_EQ(restored.unresolved(), 2u);  // the lost + the trailing intent
  EXPECT_EQ(restored.next_seq(), pending_seq + 1);
  // The trailing intent came back with its payload intact. (entries() now
  // returns a snapshot copy, so take the element by value.)
  const JournalEntry tail = restored.entries().back();
  EXPECT_EQ(tail.seq, pending_seq);
  EXPECT_EQ(tail.state, JournalState::kPending);
  EXPECT_EQ(tail.u.raw(), 11u);
  EXPECT_EQ(tail.p, 0u);
  EXPECT_EQ(tail.w.raw(), 12u);
  // Recovery resolves everything, and the resolution is itself logged.
  restored.AttachWal(wal.get());
  EXPECT_EQ(restored.MarkAllRecovered(), 2u);
  wal.reset();

  MaintenanceJournal final_state;
  for (const std::string& rec : ReplayAll(path)) {
    EXPECT_TRUE(final_state.ApplyWalRecord(rec));
  }
  EXPECT_EQ(final_state.unresolved(), 0u);
  std::remove(path.c_str());
}

TEST(JournalWalTest, ForeignRecordsAreRoutedBack) {
  MaintenanceJournal journal;
  EXPECT_FALSE(journal.ApplyWalRecord(""));
  EXPECT_FALSE(journal.ApplyWalRecord("O application redo record"));
  EXPECT_FALSE(journal.ApplyWalRecord("X"));
  // A journal-typed record of the wrong size is rejected, not misparsed.
  EXPECT_FALSE(journal.ApplyWalRecord("C123"));
  EXPECT_EQ(journal.next_seq(), 1u);
  EXPECT_EQ(journal.unresolved(), 0u);
}

TEST(JournalWalTest, DetachedJournalBehavesAsBefore) {
  MaintenanceJournal journal;
  uint64_t seq = journal.BeginEdge(MaintOp::kEdgeInsert, Oid::FromRaw(1), 0,
                                   AsrKey::FromRaw(2));
  journal.Commit(seq);
  EXPECT_EQ(journal.committed(), 1u);
  EXPECT_TRUE(journal.wal_error().ok());
  EXPECT_EQ(journal.wal(), nullptr);
}

// --- Durable snapshots ----------------------------------------------------

TEST(DatabaseDurabilityTest, SaveDurablePublishesAtomically) {
  const std::string file = TempPath("durable.asrdb");
  std::remove(file.c_str());
  Oid obj;
  TypeId t;
  {
    auto db = gom::Database::Create();
    t = db->schema()->DefineTupleType(
                        "T", {},
                        {{"Name", gom::Schema::kStringType, kInvalidTypeId}})
            .value();
    obj = db->store()->CreateObject(t).value();
    ASSERT_TRUE(db->store()->SetString(obj, "Name", "v1").ok());
    ASSERT_TRUE(db->SaveDurable(file).ok());
    // No temporary sibling is left behind after the rename.
    std::ifstream tmp(file + ".tmp");
    EXPECT_FALSE(tmp.good());
    // A second durable save replaces the first in place.
    ASSERT_TRUE(db->store()->SetString(obj, "Name", "v2").ok());
    ASSERT_TRUE(db->SaveDurable(file).ok());
  }
  auto db = gom::Database::Open(file).value();
  EXPECT_EQ(*db->store()->GetString(obj, "Name"), "v2");
  std::remove(file.c_str());
}

TEST(DatabaseDurabilityTest, AttachWalReplaysPriorRecords) {
  const std::string path = TempPath("db_attach.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path).value();
    ASSERT_TRUE(wal->Append("alpha").ok());
    ASSERT_TRUE(wal->Append("beta").ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto db = gom::Database::Create();
  ASSERT_TRUE(db->AttachWal(path).ok());
  EXPECT_EQ(db->replayed_wal(),
            (std::vector<std::string>{"alpha", "beta"}));
  ASSERT_NE(db->wal(), nullptr);
  ASSERT_TRUE(db->wal()->Append("gamma").ok());
  std::remove(path.c_str());
}

// --- Read-only degradation ------------------------------------------------

std::vector<AsrKey> Sorted(std::vector<AsrKey> keys) {
  std::sort(keys.begin(), keys.end());
  return keys;
}

// After a permanent write failure the file backend demotes itself to
// read-only. Maintenance marks its op lost, Recover() quarantines the
// partitions it cannot persist, and every query still answers correctly via
// degraded navigation over the (readable) object base.
TEST(ReadOnlyDegradationTest, PermanentWriteFailureDegradesGracefully) {
  auto faulty = asr::testing::MakeCompanyBase(DiskOptions::File("", false));
  auto twin = asr::testing::MakeCompanyBase(DiskOptions::Memory());
  auto faulty_asr = AccessSupportRelation::Build(
                        faulty->store.get(),
                        asr::testing::MakeCompanyPath(*faulty),
                        ExtensionKind::kFull, Decomposition::Binary(3))
                        .value();
  auto twin_asr = AccessSupportRelation::Build(
                      twin->store.get(), asr::testing::MakeCompanyPath(*twin),
                      ExtensionKind::kFull, Decomposition::Binary(3))
                      .value();

  // The update both sides apply: Auto also manufactures the Sausage. The
  // base mutation lands BEFORE the disk fails (base-first protocol).
  AsrKey sausage = faulty->Key(faulty->sausage);
  ASSERT_TRUE(faulty->store->AddToSet(faulty->prodset_auto, sausage).ok());
  ASSERT_TRUE(twin->store->AddToSet(twin->prodset_auto, sausage).ok());
  ASSERT_TRUE(twin_asr->OnEdgeInserted(twin->auto_division, 0, sausage).ok());

  auto* backend =
      static_cast<storage::FileBackend*>(faulty->disk.backend());
  backend->EnterReadOnly(Status::IOError("simulated media failure"));
  ASSERT_TRUE(backend->read_only());
  EXPECT_TRUE(backend->write_error().IsIOError());

  // Maintenance cannot persist its tree updates: the op is marked lost.
  Status st = faulty_asr->OnEdgeInserted(faulty->auto_division, 0, sausage);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(faulty_asr->journal().lost(), 1u);

  // Recovery completes despite the unwritable backend, by quarantining what
  // it cannot reconcile.
  RecoveryReport report;
  Status rst = faulty_asr->Recover(&report);
  EXPECT_TRUE(rst.ok()) << rst.ToString();
  EXPECT_FALSE(report.clean);
  EXPECT_GE(report.partitions_quarantined, 1u);
  EXPECT_TRUE(faulty_asr->degraded());
  EXPECT_EQ(faulty_asr->journal().unresolved(), 0u);

  check::CheckReport check_report;
  check::InvariantChecker checker;
  checker.CheckAsr(faulty_asr.get(), &check_report);
  EXPECT_TRUE(check_report.clean()) << check_report.ToString();

  // Reads still work: every supported query answers exactly like the twin.
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = i + 1; j <= 3; ++j) {
      if (!twin_asr->SupportsQuery(i, j)) continue;
      AsrKey start = twin->Key(twin->auto_division);
      if (i != 0) continue;
      Result<std::vector<AsrKey>> want = twin_asr->EvalForward(start, i, j);
      Result<std::vector<AsrKey>> got = faulty_asr->EvalForward(start, i, j);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(Sorted(*want), Sorted(*got))
          << "Q_{" << i << "," << j << "} diverges";
    }
  }

  // Repair needs a writable disk: it fails and keeps the quarantine.
  EXPECT_FALSE(faulty_asr->Repair().ok());
  EXPECT_TRUE(faulty_asr->degraded());

  // Writes fail fast with the original cause.
  storage::Page page;
  Status wst = faulty->disk.WritePage(storage::PageId{0, 0}, page);
  EXPECT_TRUE(wst.IsIOError());
  EXPECT_NE(wst.ToString().find("media failure"), std::string::npos);
}

}  // namespace
}  // namespace asr
