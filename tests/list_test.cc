// Tests for GOM lists: ordered collections with duplicates, handled by the
// access-support machinery exactly like sets (§2.1).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "gom/object_store.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::gom {
namespace {

class ListTest : public ::testing::Test {
 protected:
  ListTest() : buffers_(&disk_, 64) {
    item_ = schema_
                .DefineTupleType("Item", {},
                                 {{"Tag", Schema::kStringType,
                                   kInvalidTypeId}})
                .value();
    items_ = schema_.DefineListType("Items", item_).value();
    owner_ =
        schema_
            .DefineTupleType("Owner", {},
                             {{"Sequence", items_, kInvalidTypeId}})
            .value();
    store_ = std::make_unique<ObjectStore>(&schema_, &buffers_);
  }

  Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  std::unique_ptr<ObjectStore> store_;
  TypeId item_, items_, owner_;
};

TEST_F(ListTest, TypeSystemProperties) {
  EXPECT_TRUE(schema_.IsList(items_));
  EXPECT_FALSE(schema_.IsSet(items_));
  EXPECT_TRUE(schema_.IsCollection(items_));
  EXPECT_EQ(schema_.element_type(items_), item_);
  // Nested collections rejected in both flavors.
  EXPECT_TRUE(schema_.DefineListType("LL", items_).status().IsTypeError());
  TypeId set = schema_.DefineSetType("S", item_).value();
  EXPECT_TRUE(schema_.DefineListType("LS", set).status().IsTypeError());
}

TEST_F(ListTest, PreservesOrderAndDuplicates) {
  Oid list = store_->CreateList(items_).value();
  Oid a = store_->CreateObject(item_).value();
  Oid b = store_->CreateObject(item_).value();
  ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(a)).ok());
  ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(b)).ok());
  ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(a)).ok());  // dup

  SetView view = store_->GetSet(list).value();
  ASSERT_EQ(view.members.size(), 3u);
  EXPECT_EQ(view.members[0], AsrKey::FromOid(a));
  EXPECT_EQ(view.members[1], AsrKey::FromOid(b));
  EXPECT_EQ(view.members[2], AsrKey::FromOid(a));
  EXPECT_EQ(*store_->ListLength(list), 3u);
}

TEST_F(ListTest, RemoveAtPreservesOrder) {
  Oid list = store_->CreateList(items_).value();
  std::vector<Oid> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back(store_->CreateObject(item_).value());
    ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(items[i])).ok());
  }
  ASSERT_TRUE(store_->ListRemoveAt(list, 1).ok());
  SetView view = store_->GetSet(list).value();
  ASSERT_EQ(view.members.size(), 4u);
  EXPECT_EQ(view.members[0], AsrKey::FromOid(items[0]));
  EXPECT_EQ(view.members[1], AsrKey::FromOid(items[2]));
  EXPECT_EQ(view.members[2], AsrKey::FromOid(items[3]));
  EXPECT_EQ(view.members[3], AsrKey::FromOid(items[4]));
  EXPECT_TRUE(store_->ListRemoveAt(list, 99).IsOutOfRange());
}

TEST_F(ListTest, LongListsChainAcrossPagesInOrder) {
  Oid list = store_->CreateList(items_).value();
  Oid probe = store_->CreateObject(item_).value();
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(probe)).ok());
  }
  // Duplicates are kept (1500 occurrences), in order.
  EXPECT_EQ(*store_->ListLength(list), 1500u);
  ASSERT_TRUE(store_->ListRemoveAt(list, 1200).ok());
  EXPECT_EQ(*store_->ListLength(list), 1499u);
}

TEST_F(ListTest, TypeChecks) {
  Oid list = store_->CreateList(items_).value();
  Oid foreign = store_->CreateObject(owner_).value();
  EXPECT_TRUE(
      store_->ListAppend(list, AsrKey::FromOid(foreign)).IsTypeError());
  EXPECT_TRUE(store_->ListAppend(list, AsrKey::FromInt(3)).IsTypeError());
  EXPECT_TRUE(
      store_->ListAppend(list, AsrKey::Null()).IsInvalidArgument());
  // AddToSet is set-only.
  Oid item = store_->CreateObject(item_).value();
  EXPECT_TRUE(store_->AddToSet(list, AsrKey::FromOid(item)).IsTypeError());
  // CreateList needs a list type.
  EXPECT_TRUE(store_->CreateList(item_).status().IsTypeError());
  EXPECT_TRUE(store_->CreateSet(items_).status().IsTypeError());
}

TEST_F(ListTest, PathThroughListBehavesLikeSet) {
  // Owner.Sequence.Tag — a path with a list occurrence.
  PathExpression path =
      PathExpression::Parse(schema_, owner_, "Sequence.Tag").value();
  EXPECT_EQ(path.n(), 2u);
  EXPECT_EQ(path.k(), 1u);  // list occurrence counts like a set occurrence
  EXPECT_TRUE(path.step(1).set_occurrence);

  Oid o1 = store_->CreateObject(owner_).value();
  Oid o2 = store_->CreateObject(owner_).value();
  Oid l1 = store_->CreateList(items_).value();
  Oid l2 = store_->CreateList(items_).value();
  ASSERT_TRUE(store_->SetRef(o1, "Sequence", l1).ok());
  ASSERT_TRUE(store_->SetRef(o2, "Sequence", l2).ok());
  Oid red = store_->CreateObject(item_).value();
  ASSERT_TRUE(store_->SetString(red, "Tag", "red").ok());
  Oid blue = store_->CreateObject(item_).value();
  ASSERT_TRUE(store_->SetString(blue, "Tag", "blue").ok());
  ASSERT_TRUE(store_->ListAppend(l1, AsrKey::FromOid(red)).ok());
  ASSERT_TRUE(store_->ListAppend(l1, AsrKey::FromOid(red)).ok());  // dup
  ASSERT_TRUE(store_->ListAppend(l1, AsrKey::FromOid(blue)).ok());
  ASSERT_TRUE(store_->ListAppend(l2, AsrKey::FromOid(blue)).ok());

  // ASR over the list path: duplicates collapse (the extension is a set).
  auto asr = AccessSupportRelation::Build(store_.get(), path,
                                          ExtensionKind::kFull,
                                          Decomposition::Binary(2))
                 .value();
  AsrKey red_tag = AsrKey::FromString("red", store_->string_dict());
  std::set<uint64_t> owners;
  for (AsrKey k : asr->EvalBackward(red_tag, 0, 2).value()) {
    owners.insert(k.raw());
  }
  EXPECT_EQ(owners, (std::set<uint64_t>{o1.raw()}));

  AsrKey blue_tag = AsrKey::FromString("blue", store_->string_dict());
  owners.clear();
  for (AsrKey k : asr->EvalBackward(blue_tag, 0, 2).value()) {
    owners.insert(k.raw());
  }
  EXPECT_EQ(owners, (std::set<uint64_t>{o1.raw(), o2.raw()}));

  // Navigational evaluation agrees.
  QueryEvaluator nav(store_.get(), &path);
  std::set<uint64_t> nav_owners;
  for (AsrKey k : nav.BackwardNoSupport(blue_tag, 0, 2).value()) {
    nav_owners.insert(k.raw());
  }
  EXPECT_EQ(nav_owners, owners);
}

TEST_F(ListTest, MaintenanceOnListEdges) {
  PathExpression path =
      PathExpression::Parse(schema_, owner_, "Sequence.Tag").value();
  Oid o = store_->CreateObject(owner_).value();
  Oid list = store_->CreateList(items_).value();
  ASSERT_TRUE(store_->SetRef(o, "Sequence", list).ok());
  Oid item = store_->CreateObject(item_).value();
  ASSERT_TRUE(store_->SetString(item, "Tag", "green").ok());

  auto asr = AccessSupportRelation::Build(store_.get(), path,
                                          ExtensionKind::kFull,
                                          Decomposition::None(2))
                 .value();
  // Append a (first occurrence) element and maintain the edge.
  ASSERT_TRUE(store_->ListAppend(list, AsrKey::FromOid(item)).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(o, 0, AsrKey::FromOid(item)).ok());

  auto rebuilt = AccessSupportRelation::Build(store_.get(), path,
                                              ExtensionKind::kFull,
                                              Decomposition::None(2))
                     .value();
  EXPECT_TRUE(asr->DumpPartition(0).value().EqualsAsSet(
      rebuilt->DumpPartition(0).value()));
}

}  // namespace
}  // namespace asr::gom
