// Tests for the physical design advisor.
#include <gtest/gtest.h>

#include "advisor/advisor.h"

namespace asr::advisor {
namespace {

cost::ApplicationProfile Profile() {
  cost::ApplicationProfile p;
  p.n = 4;
  p.c = {1000, 5000, 10000, 50000, 100000};
  p.d = {900, 4000, 8000, 20000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

cost::OperationMix QueryHeavyMix() {
  cost::OperationMix mix;
  mix.queries = {{1.0, cost::QueryDirection::kBackward, 0, 4}};
  mix.updates = {{1.0, 3}};
  return mix;
}

TEST(AdvisorTest, RanksFullDesignSpace) {
  cost::CostModel model(Profile());
  std::vector<DesignChoice> ranked =
      DesignAdvisor::Rank(model, QueryHeavyMix(), 0.1);
  // 4 extensions x 2^(n-1) = 8 decompositions.
  EXPECT_EQ(ranked.size(), 4u * 8u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].cost, ranked[i].cost);
  }
}

TEST(AdvisorTest, BestBeatsNoSupportForQueryMix) {
  cost::CostModel model(Profile());
  DesignChoice best = DesignAdvisor::Best(model, QueryHeavyMix(), 0.05);
  EXPECT_LT(best.normalized, 1.0);
  EXPECT_GT(best.storage_bytes, 0.0);
}

TEST(AdvisorTest, StorageBudgetFiltersDesigns) {
  cost::CostModel model(Profile());
  DesignChoice unconstrained =
      DesignAdvisor::BestWithinBudget(model, QueryHeavyMix(), 0.1, 0);
  DesignChoice tight = DesignAdvisor::BestWithinBudget(
      model, QueryHeavyMix(), 0.1, unconstrained.storage_bytes / 2.0);
  EXPECT_LE(tight.storage_bytes, unconstrained.storage_bytes);
  EXPECT_GE(tight.cost, unconstrained.cost);
}

TEST(AdvisorTest, UpdateHeavyMixPrefersCheaperMaintenance) {
  cost::CostModel model(Profile());
  cost::OperationMix mix;
  mix.queries = {{1.0, cost::QueryDirection::kBackward, 0, 4}};
  mix.updates = {{1.0, 3}};
  DesignChoice query_best = DesignAdvisor::Best(model, mix, 0.01);
  DesignChoice update_best = DesignAdvisor::Best(model, mix, 0.99);
  // The chosen design must differ or at least not cost more at its own
  // operating point than the other design would.
  double update_best_at_high = update_best.cost;
  double query_best_at_high =
      cost::MixCost(model, query_best.kind, query_best.decomposition, mix,
                    0.99);
  EXPECT_LE(update_best_at_high, query_best_at_high);
}

TEST(AdvisorTest, ChoiceRendersReadably) {
  cost::CostModel model(Profile());
  DesignChoice best = DesignAdvisor::Best(model, QueryHeavyMix(), 0.1);
  std::string s = best.ToString();
  EXPECT_NE(s.find("cost="), std::string::npos);
  EXPECT_NE(s.find("("), std::string::npos);
}

}  // namespace
}  // namespace asr::advisor
