// End-to-end integration tests: the paper's running examples (robots §2.2,
// company §2.3) executed through the full stack, plus an empirical
// cross-validation of the analytical cost model against metered execution.
#include <gtest/gtest.h>

#include <set>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "cost/cost_model.h"
#include "paper_example.h"
#include "workload/meter.h"
#include "workload/synthetic_base.h"

namespace asr {
namespace {

// --- The robot example (§2.2, Figure 1) -----------------------------------

class RobotTest : public ::testing::Test {
 protected:
  RobotTest() : buffers_(&disk_, 0) {
    using gom::Schema;
    manufacturer_ =
        schema_
            .DefineTupleType(
                "MANUFACTURER", {},
                {{"Name", Schema::kStringType, kInvalidTypeId},
                 {"Location", Schema::kStringType, kInvalidTypeId}})
            .value();
    tool_ = schema_
                .DefineTupleType(
                    "TOOL", {},
                    {{"Function", Schema::kStringType, kInvalidTypeId},
                     {"ManufacturedBy", manufacturer_, kInvalidTypeId}})
                .value();
    arm_ = schema_
               .DefineTupleType("ARM", {},
                                {{"Kinematics", Schema::kStringType,
                                  kInvalidTypeId},
                                 {"MountedTool", tool_, kInvalidTypeId}})
               .value();
    robot_ = schema_
                 .DefineTupleType("ROBOT", {},
                                  {{"Name", Schema::kStringType,
                                    kInvalidTypeId},
                                   {"Arm", arm_, kInvalidTypeId}})
                 .value();
    store_ = std::make_unique<gom::ObjectStore>(&schema_, &buffers_);

    // Figure 1's extension: R2D2 (welding, RobClone/Utopia), X4D5
    // (gripping, RobClone/Utopia), Robi (gripping tool shared with X4D5).
    robclone_ = store_->CreateObject(manufacturer_).value();
    ASR_CHECK(store_->SetString(robclone_, "Name", "RobClone").ok());
    ASR_CHECK(store_->SetString(robclone_, "Location", "Utopia").ok());

    welding_ = store_->CreateObject(tool_).value();
    ASR_CHECK(store_->SetString(welding_, "Function", "welding").ok());
    ASR_CHECK(store_->SetRef(welding_, "ManufacturedBy", robclone_).ok());
    gripping_ = store_->CreateObject(tool_).value();
    ASR_CHECK(store_->SetString(gripping_, "Function", "gripping").ok());
    ASR_CHECK(store_->SetRef(gripping_, "ManufacturedBy", robclone_).ok());

    r2d2_ = MakeRobot("R2D2", welding_);
    x4d5_ = MakeRobot("X4D5", gripping_);
    robi_ = MakeRobot("Robi", gripping_);
    // Robi's tool has no manufacturer in Figure 1: detach via its own tool.
    Oid robi_arm = store_->GetAttributeByName(robi_, "Arm")->ToOid();
    Oid robi_tool = store_->CreateObject(tool_).value();
    ASR_CHECK(store_->SetString(robi_tool, "Function", "gripping").ok());
    ASR_CHECK(store_->SetRef(robi_arm, "MountedTool", robi_tool).ok());
  }

  Oid MakeRobot(const char* name, Oid tool) {
    Oid robot = store_->CreateObject(robot_).value();
    ASR_CHECK(store_->SetString(robot, "Name", name).ok());
    Oid arm = store_->CreateObject(arm_).value();
    ASR_CHECK(store_->SetString(arm, "Kinematics", "6dof").ok());
    ASR_CHECK(store_->SetRef(arm, "MountedTool", tool).ok());
    ASR_CHECK(store_->SetRef(robot, "Arm", arm).ok());
    return robot;
  }

  gom::Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  std::unique_ptr<gom::ObjectStore> store_;
  TypeId manufacturer_, tool_, arm_, robot_;
  Oid robclone_, welding_, gripping_, r2d2_, x4d5_, robi_;
};

TEST_F(RobotTest, Query1RobotsUsingToolsFromUtopia) {
  // Query 1: select r.Name from r in OurRobots
  //          where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"
  PathExpression path =
      PathExpression::Parse(schema_, robot_,
                            "Arm.MountedTool.ManufacturedBy.Location")
          .value();
  EXPECT_EQ(path.n(), 4u);
  EXPECT_EQ(path.k(), 0u);  // a linear path

  auto asr = AccessSupportRelation::Build(store_.get(), path,
                                          ExtensionKind::kCanonical,
                                          Decomposition::None(4))
                 .value();
  AsrKey utopia = AsrKey::FromString("Utopia", store_->string_dict());
  std::vector<AsrKey> robots = asr->EvalBackward(utopia, 0, 4).value();

  std::set<std::string> names;
  for (AsrKey r : robots) {
    names.insert(store_->GetString(r.ToOid(), "Name").value());
  }
  EXPECT_EQ(names, (std::set<std::string>{"R2D2", "X4D5"}));

  // Navigational evaluation must agree.
  QueryEvaluator nav(store_.get(), &path);
  std::vector<AsrKey> nav_robots = nav.BackwardNoSupport(utopia, 0, 4).value();
  std::set<uint64_t> a, b;
  for (AsrKey k : robots) a.insert(k.raw());
  for (AsrKey k : nav_robots) b.insert(k.raw());
  EXPECT_EQ(a, b);
}

TEST_F(RobotTest, SharedSubobjectsTraverseCorrectly) {
  // The gripping tool is shared by X4D5's arm (object sharing via OIDs).
  PathExpression path =
      PathExpression::Parse(schema_, robot_, "Arm.MountedTool").value();
  QueryEvaluator nav(store_.get(), &path);
  std::vector<AsrKey> tools =
      nav.ForwardNoSupport(AsrKey::FromOid(x4d5_), 0, 2).value();
  ASSERT_EQ(tools.size(), 1u);
  EXPECT_EQ(tools[0], AsrKey::FromOid(gripping_));
}

// --- The company example (§2.3, Figure 2) -----------------------------------

TEST(CompanyIntegrationTest, Query2DivisionsUsingDoor) {
  auto base = testing::MakeCompanyBase();
  PathExpression path =
      PathExpression::Parse(base->schema, base->division_type,
                            "Manufactures.Composition")
          .value();
  QueryEvaluator nav(base->store.get(), &path);
  std::vector<AsrKey> divisions =
      nav.BackwardNoSupport(AsrKey::FromOid(base->door), 0, 2).value();
  std::set<uint64_t> got;
  for (AsrKey k : divisions) got.insert(k.raw());
  EXPECT_EQ(got, (std::set<uint64_t>{base->auto_division.raw(),
                                     base->truck_division.raw()}));
}

TEST(CompanyIntegrationTest, Query3BasePartNamesOfAuto) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  QueryEvaluator nav(base->store.get(), &path);
  std::vector<AsrKey> names =
      nav.ForwardNoSupport(AsrKey::FromOid(base->auto_division), 0, 3)
          .value();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(base->store->string_dict()->Get(names[0].ToStringCode()), "Door");
}

TEST(CompanyIntegrationTest, AsrAgreesAcrossAllExtensions) {
  auto base = testing::MakeCompanyBase();
  PathExpression path = testing::MakeCompanyPath(*base);
  AsrKey door_name = base->Name("Door");
  std::set<uint64_t> expected{base->auto_division.raw(),
                              base->truck_division.raw()};
  for (ExtensionKind kind :
       {ExtensionKind::kCanonical, ExtensionKind::kFull,
        ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete}) {
    auto asr = AccessSupportRelation::Build(base->store.get(), path, kind,
                                            Decomposition::Binary(3))
                   .value();
    std::vector<AsrKey> divisions =
        asr->EvalBackward(door_name, 0, 3).value();
    std::set<uint64_t> got;
    for (AsrKey k : divisions) got.insert(k.raw());
    EXPECT_EQ(got, expected) << ExtensionKindName(kind);
  }
}

// --- Empirical vs analytical cross-validation --------------------------------

cost::ApplicationProfile ValidationProfile() {
  // The Fig. 6 profile at its published scale — small enough to execute.
  cost::ApplicationProfile p;
  p.n = 4;
  p.c = {100, 500, 1000, 5000, 10000};
  p.d = {90, 400, 800, 2000};
  p.fan = {2, 2, 3, 4};
  p.size = {500, 400, 300, 300, 100};
  return p;
}

TEST(ValidationTest, BackwardQueryEmpiricalVsModelShape) {
  auto base = workload::SyntheticBase::Generate(ValidationProfile(),
                                                {42, 0})
                  .value();
  cost::CostModel model(ValidationProfile());
  QueryEvaluator nav(base->store(), &base->path());

  Oid target = base->objects_at(4)[7];
  storage::AccessStats nas = workload::Meter(base->disk(), [&] {
    nav.BackwardNoSupport(AsrKey::FromOid(target), 0, 4).value();
  });
  double modeled_nas =
      model.QueryNoSupport(cost::QueryDirection::kBackward, 0, 4);
  // Shape agreement: within a factor of 2 of the analytical estimate.
  EXPECT_GT(static_cast<double>(nas.page_reads), modeled_nas * 0.5);
  EXPECT_LT(static_cast<double>(nas.page_reads), modeled_nas * 2.0);

  // Supported query: orders of magnitude cheaper, and the model agrees.
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kFull,
                                          Decomposition::None(4))
                 .value();
  ASSERT_TRUE(base->buffers()->FlushAll().ok());
  base->disk()->ResetStats();
  storage::AccessStats sup = workload::Meter(base->disk(), [&] {
    asr->EvalBackward(AsrKey::FromOid(target), 0, 4).value();
  });
  double modeled_sup = model.QuerySupported(
      ExtensionKind::kFull, cost::QueryDirection::kBackward, 0, 4,
      Decomposition::None(4));
  EXPECT_LT(sup.page_reads, nas.page_reads / 5);
  EXPECT_LT(std::abs(static_cast<double>(sup.page_reads) - modeled_sup),
            modeled_sup * 3 + 10);
}

TEST(ValidationTest, SupportedAndNavigationalResultsAgreeAtScale) {
  auto base = workload::SyntheticBase::Generate(ValidationProfile(),
                                                {42, 64})
                  .value();
  QueryEvaluator nav(base->store(), &base->path());
  auto asr = AccessSupportRelation::Build(base->store(), base->path(),
                                          ExtensionKind::kLeftComplete,
                                          Decomposition::Binary(4))
                 .value();
  for (size_t t = 0; t < base->objects_at(4).size(); t += 997) {
    AsrKey target = AsrKey::FromOid(base->objects_at(4)[t]);
    std::set<uint64_t> a, b;
    for (AsrKey k : nav.BackwardNoSupport(target, 0, 4).value()) {
      a.insert(k.raw());
    }
    for (AsrKey k : asr->EvalBackward(target, 0, 4).value()) {
      b.insert(k.raw());
    }
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace asr
