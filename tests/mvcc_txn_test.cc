// Tests for transactional ASR maintenance and consistent-epoch snapshot
// readers (asr/txn.cc, asr/snapshot.h): snapshot isolation across all four
// extension kinds against a fault-free twin, multi-writer maintenance over
// shared and disjoint partition stores (the TSan stress surface), clean
// Aborted resolution when retries exhaust, and the OpenSnapshot
// preconditions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asr/access_support_relation.h"
#include "asr/snapshot.h"
#include "paper_example.h"
#include "storage/mvcc.h"

namespace asr {
namespace {

using testing::CompanyBase;
using testing::MakeCompanyBase;
using testing::MakeCompanyPath;

constexpr ExtensionKind kAllKinds[] = {
    ExtensionKind::kCanonical, ExtensionKind::kFull,
    ExtensionKind::kLeftComplete, ExtensionKind::kRightComplete};

AsrOptions TxnOptions() {
  AsrOptions options;
  options.transactional = true;
  options.txn_max_retries = 64;  // generous: stress tests must not flake
  options.txn_backoff_us = 20;
  return options;
}

// Every supported query of `asr`, evaluated from a fixed candidate frontier
// per path position, as one canonical sorted answer table. Two ASRs over
// isomorphic bases agree iff their tables are equal — the "bit-identical to
// the twin" oracle.
std::vector<std::vector<uint64_t>> AnswerTable(
    AccessSupportRelation* asr, const std::vector<std::vector<AsrKey>>& keys) {
  std::vector<std::vector<uint64_t>> table;
  const uint32_t n = asr->path().n();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j <= n; ++j) {
      if (!asr->SupportsQuery(i, j)) continue;
      for (AsrKey start : keys[i]) {
        std::vector<uint64_t> row{i, j, 0, start.raw()};
        for (AsrKey k : asr->EvalForward(start, i, j).value()) {
          row.push_back(k.raw());
        }
        std::sort(row.begin() + 4, row.end());
        table.push_back(std::move(row));
      }
      for (AsrKey target : keys[j]) {
        std::vector<uint64_t> row{i, j, 1, target.raw()};
        for (AsrKey k : asr->EvalBackward(target, i, j).value()) {
          row.push_back(k.raw());
        }
        std::sort(row.begin() + 4, row.end());
        table.push_back(std::move(row));
      }
    }
  }
  return table;
}

// Snapshot variant of AnswerTable (AsrSnapshot mirrors the Eval contract).
std::vector<std::vector<uint64_t>> SnapshotAnswerTable(
    AsrSnapshot* snap, const AccessSupportRelation* asr,
    const std::vector<std::vector<AsrKey>>& keys) {
  std::vector<std::vector<uint64_t>> table;
  const uint32_t n = asr->path().n();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j <= n; ++j) {
      if (!asr->SupportsQuery(i, j)) continue;
      for (AsrKey start : keys[i]) {
        std::vector<uint64_t> row{i, j, 0, start.raw()};
        for (AsrKey k : snap->EvalForward(start, i, j).value()) {
          row.push_back(k.raw());
        }
        std::sort(row.begin() + 4, row.end());
        table.push_back(std::move(row));
      }
      for (AsrKey target : keys[j]) {
        std::vector<uint64_t> row{i, j, 1, target.raw()};
        for (AsrKey k : snap->EvalBackward(target, i, j).value()) {
          row.push_back(k.raw());
        }
        std::sort(row.begin() + 4, row.end());
        table.push_back(std::move(row));
      }
    }
  }
  return table;
}

// The Company base's objects, one candidate frontier per path position.
std::vector<std::vector<AsrKey>> CompanyKeys(CompanyBase* base) {
  return {
      {base->Key(base->auto_division), base->Key(base->truck_division),
       base->Key(base->space_division)},
      {base->Key(base->sec560), base->Key(base->mbtrak),
       base->Key(base->sausage)},
      {base->Key(base->door), base->Key(base->pepper)},
      {base->Name("Door"), base->Name("Pepper")},
  };
}

// Compares every partition of `asr` against a from-scratch rebuild over the
// same store (built transactionally too, so stores get private pools).
void ExpectMatchesRebuild(gom::ObjectStore* store, AccessSupportRelation* asr,
                          const std::string& context) {
  auto rebuilt =
      AccessSupportRelation::Build(store, asr->path(), asr->kind(),
                                   asr->decomposition(), asr->options())
          .value();
  ASSERT_EQ(rebuilt->partition_count(), asr->partition_count());
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    rel::Relation actual = asr->DumpPartition(p).value();
    rel::Relation expected = rebuilt->DumpPartition(p).value();
    EXPECT_TRUE(actual.EqualsAsSet(expected))
        << context << " partition " << p << "\nactual:\n"
        << actual.ToString() << "expected:\n"
        << expected.ToString();
  }
}

class MvccTxnTest : public ::testing::TestWithParam<ExtensionKind> {
 protected:
  MvccTxnTest() : base_(MakeCompanyBase()), path_(MakeCompanyPath(*base_)) {
    base_->disk.AttachMvcc(&mvcc_);
  }

  std::unique_ptr<AccessSupportRelation> BuildTxn(ExtensionKind kind) {
    return AccessSupportRelation::Build(base_->store.get(), path_, kind,
                                        Decomposition::Binary(3), TxnOptions())
        .value();
  }

  storage::MvccManager mvcc_;
  std::unique_ptr<CompanyBase> base_;
  PathExpression path_;
};

TEST_P(MvccTxnTest, TransactionalEdgeOpsMatchRebuild) {
  auto asr = BuildTxn(GetParam());
  gom::ObjectStore* store = base_->store.get();

  AsrKey sausage = base_->Key(base_->sausage);
  AsrKey pepper = base_->Key(base_->pepper);
  AsrKey door = base_->Key(base_->door);

  ASSERT_TRUE(store->AddToSet(base_->prodset_auto, sausage).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->auto_division, 0, sausage).ok());
  ExpectMatchesRebuild(store, asr.get(), "after insert p=0");

  ASSERT_TRUE(store->AddToSet(base_->parts_560, pepper).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->sec560, 1, pepper).ok());
  ExpectMatchesRebuild(store, asr.get(), "after insert p=1");

  ASSERT_TRUE(store->RemoveFromSet(base_->parts_560, door).ok());
  ASSERT_TRUE(asr->OnEdgeRemoved(base_->sec560, 1, door).ok());
  ExpectMatchesRebuild(store, asr.get(), "after remove p=1");

  EXPECT_EQ(asr->journal().committed(), 3u);
  EXPECT_EQ(asr->journal().aborted(), 0u);
  EXPECT_EQ(asr->journal().unresolved(), 0u);
  EXPECT_GE(mvcc_.committed_epoch(), 3u);
}

// The tentpole isolation property: a snapshot opened before maintenance
// answers every supported query exactly like a fault-free twin that never
// saw the ops — across all four extension kinds — while the live ASR moves
// on underneath it.
TEST_P(MvccTxnTest, SnapshotIsBitIdenticalToFaultFreeTwin) {
  auto asr = BuildTxn(GetParam());

  // The twin: an identical Company base (object creation is deterministic,
  // so keys compare raw-for-raw) that receives no maintenance.
  auto twin_base = MakeCompanyBase();
  auto twin = AccessSupportRelation::Build(
                  twin_base->store.get(), MakeCompanyPath(*twin_base),
                  GetParam(), Decomposition::Binary(3))
                  .value();

  auto snapshot = asr->OpenSnapshot().value();
  const storage::MvccEpoch pinned = snapshot->epoch();

  // Maintenance commits after the snapshot was pinned.
  gom::ObjectStore* store = base_->store.get();
  AsrKey sausage = base_->Key(base_->sausage);
  AsrKey pepper = base_->Key(base_->pepper);
  AsrKey door = base_->Key(base_->door);
  ASSERT_TRUE(store->AddToSet(base_->prodset_auto, sausage).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->auto_division, 0, sausage).ok());
  ASSERT_TRUE(store->AddToSet(base_->parts_560, pepper).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->sec560, 1, pepper).ok());
  ASSERT_TRUE(store->RemoveFromSet(base_->parts_560, door).ok());
  ASSERT_TRUE(asr->OnEdgeRemoved(base_->sec560, 1, door).ok());

  auto keys = CompanyKeys(base_.get());
  auto twin_keys = CompanyKeys(twin_base.get());
  EXPECT_EQ(SnapshotAnswerTable(snapshot.get(), asr.get(), keys),
            AnswerTable(twin.get(), twin_keys));
  EXPECT_EQ(snapshot->epoch(), pinned);

  // Sanity: the live ASR really did move — its answers differ from the
  // twin's (the inserted sausage/pepper paths are visible live).
  EXPECT_NE(AnswerTable(asr.get(), keys), AnswerTable(twin.get(), twin_keys));

  // A snapshot taken now sees the post-maintenance state.
  auto fresh = asr->OpenSnapshot().value();
  EXPECT_GT(fresh->epoch(), pinned);
  EXPECT_EQ(SnapshotAnswerTable(fresh.get(), asr.get(), keys),
            AnswerTable(asr.get(), keys));
}

TEST_P(MvccTxnTest, SnapshotSurvivesRebuild) {
  auto asr = BuildTxn(GetParam());
  auto keys = CompanyKeys(base_.get());
  auto before = AnswerTable(asr.get(), keys);

  auto snapshot = asr->OpenSnapshot().value();

  gom::ObjectStore* store = base_->store.get();
  AsrKey sausage = base_->Key(base_->sausage);
  ASSERT_TRUE(store->AddToSet(base_->prodset_auto, sausage).ok());
  ASSERT_TRUE(asr->OnEdgeInserted(base_->auto_division, 0, sausage).ok());
  // A full in-place rebuild reloads every partition mid-snapshot.
  ASSERT_TRUE(asr->Rebuild().ok());

  EXPECT_EQ(SnapshotAnswerTable(snapshot.get(), asr.get(), keys), before);
  EXPECT_NE(AnswerTable(asr.get(), keys), before);
  ExpectMatchesRebuild(store, asr.get(), "after rebuild under snapshot");
}

INSTANTIATE_TEST_SUITE_P(AllExtensions, MvccTxnTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<ExtensionKind>& i) {
                           return ExtensionKindName(i.param);
                         });

// Two writers on ONE transactional ASR: every operation claims all its
// partition stores, so the writers serialize through Aborted-claim retries
// with backoff. Both must succeed on every op and the final trees must match
// a rebuild. (The edges touch disjoint row sets, so the object-store reads
// inside each maintenance op are unaffected by the other writer's churn.)
TEST(MvccTxnConcurrencyTest, SharedStoreWritersSerializeViaRetry) {
  auto base = MakeCompanyBase();
  storage::MvccManager mvcc;
  base->disk.AttachMvcc(&mvcc);
  auto asr = AccessSupportRelation::Build(
                 base->store.get(), MakeCompanyPath(*base),
                 ExtensionKind::kCanonical, Decomposition::Binary(3),
                 TxnOptions())
                 .value();
  gom::ObjectStore* store = base->store.get();

  constexpr int kIters = 25;
  std::thread writer_a([&] {
    AsrKey sausage = AsrKey::FromOid(base->sausage);
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(store->AddToSet(base->prodset_auto, sausage).ok());
      ASSERT_TRUE(
          asr->OnEdgeInserted(base->auto_division, 0, sausage).ok());
      ASSERT_TRUE(store->RemoveFromSet(base->prodset_auto, sausage).ok());
      ASSERT_TRUE(asr->OnEdgeRemoved(base->auto_division, 0, sausage).ok());
    }
  });
  std::thread writer_b([&] {
    AsrKey pepper = AsrKey::FromOid(base->pepper);
    for (int i = 0; i < kIters; ++i) {
      ASSERT_TRUE(store->AddToSet(base->parts_560, pepper).ok());
      ASSERT_TRUE(asr->OnEdgeInserted(base->sec560, 1, pepper).ok());
      ASSERT_TRUE(store->RemoveFromSet(base->parts_560, pepper).ok());
      ASSERT_TRUE(asr->OnEdgeRemoved(base->sec560, 1, pepper).ok());
    }
  });
  writer_a.join();
  writer_b.join();

  EXPECT_EQ(asr->journal().committed(), 4u * kIters);
  EXPECT_EQ(asr->journal().unresolved(), 0u);
  EXPECT_EQ(asr->journal().aborted(), 0u);
  ExpectMatchesRebuild(store, asr.get(), "after concurrent shared-store ops");
}

// N writers over DISJOINT partitions: one shared base, one anchored
// transactional ASR per writer over its own private subgraph. Claims never
// collide; the conflict surface shrinks to the storage commit lock. Under
// -DASR_SANITIZE=thread this is the multi-writer race check. ASR_WRITERS
// picks the fleet size (default 4).
TEST(MvccTxnConcurrencyTest, DisjointAnchoredWritersRunConcurrently) {
  int writers = 4;
  if (const char* env = std::getenv("ASR_WRITERS")) {
    writers = std::max(2, std::min(8, std::atoi(env)));
  }

  auto base = MakeCompanyBase();
  storage::MvccManager mvcc;
  base->disk.AttachMvcc(&mvcc);
  gom::ObjectStore* store = base->store.get();
  TypeId division_set =
      base->schema.DefineSetType("DivisionSET", base->division_type).value();

  // Writer k's private chain: division -> prodset -> product -> partset
  // -> base part, plus a second base part whose edge the writer churns.
  struct Chain {
    Oid division, prodset, product, partset, part_a, part_b, anchor;
  };
  std::vector<Chain> chains(static_cast<size_t>(writers));
  for (int k = 0; k < writers; ++k) {
    Chain& c = chains[k];
    c.division = store->CreateObject(base->division_type).value();
    c.prodset = store->CreateSet(base->prodset_type).value();
    c.product = store->CreateObject(base->product_type).value();
    c.partset = store->CreateSet(base->basepartset_type).value();
    c.part_a = store->CreateObject(base->basepart_type).value();
    c.part_b = store->CreateObject(base->basepart_type).value();
    std::string tag = std::to_string(k);
    ASSERT_TRUE(store->SetString(c.division, "Name", "Div" + tag).ok());
    ASSERT_TRUE(store->SetRef(c.division, "Manufactures", c.prodset).ok());
    ASSERT_TRUE(
        store->AddToSet(c.prodset, AsrKey::FromOid(c.product)).ok());
    ASSERT_TRUE(store->SetString(c.product, "Name", "Prod" + tag).ok());
    ASSERT_TRUE(store->SetRef(c.product, "Composition", c.partset).ok());
    ASSERT_TRUE(
        store->AddToSet(c.partset, AsrKey::FromOid(c.part_a)).ok());
    ASSERT_TRUE(store->SetString(c.part_a, "Name", "PartA" + tag).ok());
    ASSERT_TRUE(store->SetString(c.part_b, "Name", "PartB" + tag).ok());
    c.anchor = store->CreateSet(division_set).value();
    ASSERT_TRUE(
        store->AddToSet(c.anchor, AsrKey::FromOid(c.division)).ok());
  }

  PathExpression path = MakeCompanyPath(*base);
  std::vector<std::unique_ptr<AccessSupportRelation>> asrs;
  for (int k = 0; k < writers; ++k) {
    AsrOptions options = TxnOptions();
    options.anchor_collection = chains[k].anchor;
    // Canonical: an anchored ASR materializes only complete paths from its
    // own anchor, so the writers' extensions are truly disjoint. (Full /
    // right-complete would put every writer's dangling right fragments into
    // every ASR and re-impose the §5.4 maintain-all contract.)
    asrs.push_back(AccessSupportRelation::Build(store, path,
                                                ExtensionKind::kCanonical,
                                                Decomposition::Binary(3),
                                                options)
                       .value());
  }

  constexpr int kIters = 20;
  std::vector<std::thread> fleet;
  for (int k = 0; k < writers; ++k) {
    fleet.emplace_back([&, k] {
      const Chain& c = chains[k];
      AccessSupportRelation* asr = asrs[k].get();
      AsrKey part_b = AsrKey::FromOid(c.part_b);
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(store->AddToSet(c.partset, part_b).ok());
        ASSERT_TRUE(asr->OnEdgeInserted(c.product, 1, part_b).ok());
        if (i + 1 < kIters) {
          ASSERT_TRUE(store->RemoveFromSet(c.partset, part_b).ok());
          ASSERT_TRUE(asr->OnEdgeRemoved(c.product, 1, part_b).ok());
        }
      }
    });
  }
  for (std::thread& t : fleet) t.join();

  // Every writer's last insert stuck; every ASR matches its own rebuild and
  // still answers its anchored queries.
  for (int k = 0; k < writers; ++k) {
    const Chain& c = chains[k];
    AccessSupportRelation* asr = asrs[k].get();
    EXPECT_EQ(asr->journal().committed(),
              static_cast<uint64_t>(2 * kIters - 1));
    EXPECT_EQ(asr->journal().unresolved(), 0u);
    auto fwd = asr->EvalForward(AsrKey::FromOid(c.division), 0, 3).value();
    std::set<uint64_t> names;
    for (AsrKey key : fwd) names.insert(key.raw());
    std::string tag = std::to_string(k);
    EXPECT_TRUE(names.count(
        AsrKey::FromString("PartB" + tag, store->string_dict()).raw()))
        << "writer " << k;
    ExpectMatchesRebuild(store, asr,
                         "writer " + std::to_string(k) + " final state");
  }
  EXPECT_GE(mvcc.committed_epoch(),
            static_cast<uint64_t>(writers) * (2 * kIters - 1));
}

// When every retry loses its claim, the operation resolves as a clean abort:
// Aborted to the caller, journal entry 'aborted' (not lost — recovery owes
// nothing), and the ASR unchanged. Releasing the claim and re-issuing
// converges to the rebuilt state.
TEST(MvccTxnConcurrencyTest, ExhaustedRetriesAbortCleanly) {
  auto base = MakeCompanyBase();
  storage::MvccManager mvcc;
  base->disk.AttachMvcc(&mvcc);
  AsrOptions options = TxnOptions();
  options.txn_max_retries = 2;
  options.txn_backoff_us = 1;
  auto asr = AccessSupportRelation::Build(
                 base->store.get(), MakeCompanyPath(*base),
                 ExtensionKind::kCanonical, Decomposition::Binary(3), options)
                 .value();
  gom::ObjectStore* store = base->store.get();
  AsrKey sausage = AsrKey::FromOid(base->sausage);
  ASSERT_TRUE(store->AddToSet(base->prodset_auto, sausage).ok());

  auto keys = CompanyKeys(base.get());
  auto before = AnswerTable(asr.get(), keys);
  {
    // A rival writer parks on one partition claim for the whole duration.
    std::unique_lock<std::mutex> rival(
        asr->partition_store(0)->claim_mu);
    Status st;
    std::thread writer([&] {
      st = asr->OnEdgeInserted(base->auto_division, 0, sausage);
    });
    writer.join();
    EXPECT_TRUE(st.IsAborted()) << st.ToString();
  }
  EXPECT_EQ(asr->journal().aborted(), 1u);
  EXPECT_EQ(asr->journal().lost(), 0u);
  EXPECT_EQ(asr->journal().unresolved(), 0u);
  EXPECT_EQ(AnswerTable(asr.get(), keys), before);

  // Re-issue with the claim free: converges.
  ASSERT_TRUE(asr->OnEdgeInserted(base->auto_division, 0, sausage).ok());
  ExpectMatchesRebuild(store, asr.get(), "after abort then retry");
}

TEST(MvccTxnPreconditionTest, OpenSnapshotRequiresTransactionalMode) {
  auto base = MakeCompanyBase();
  storage::MvccManager mvcc;
  base->disk.AttachMvcc(&mvcc);
  auto asr = AccessSupportRelation::Build(base->store.get(),
                                          MakeCompanyPath(*base),
                                          ExtensionKind::kCanonical,
                                          Decomposition::Binary(3))
                 .value();
  Status st = asr->OpenSnapshot().status();
  EXPECT_TRUE(st.IsNotSupported()) << st.ToString();
}

TEST(MvccTxnPreconditionTest, TransactionalBuildRequiresMvccManager) {
  auto base = MakeCompanyBase();  // no manager attached
  auto built = AccessSupportRelation::Build(
      base->store.get(), MakeCompanyPath(*base), ExtensionKind::kCanonical,
      Decomposition::Binary(3), TxnOptions());
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsNotSupported()) << built.status().ToString();
}

TEST(MvccTxnPreconditionTest, FromEnvReadsRetryKnobs) {
  setenv("ASR_TXN_RETRIES", "17", 1);
  setenv("ASR_TXN_BACKOFF_US", "250", 1);
  AsrOptions options = AsrOptions::FromEnv();
  EXPECT_EQ(options.txn_max_retries, 17u);
  EXPECT_EQ(options.txn_backoff_us, 250u);
  unsetenv("ASR_TXN_RETRIES");
  unsetenv("ASR_TXN_BACKOFF_US");
  AsrOptions defaults = AsrOptions::FromEnv();
  EXPECT_EQ(defaults.txn_max_retries, AsrOptions{}.txn_max_retries);
  EXPECT_EQ(defaults.txn_backoff_us, AsrOptions{}.txn_backoff_us);
}

}  // namespace
}  // namespace asr
