#!/usr/bin/env bash
# CI entry point. Jobs, in order:
#
#   lint        scripts/lint.sh — clang-tidy (when installed) + idiom greps
#   default     tier-1 suite, default configuration (-Werror is ON)
#   tsan        same suite under ThreadSanitizer (races are hard failures —
#               this is what keeps the single-writer counter discipline in
#               src/obs honest)
#   asan        same suite under AddressSanitizer with leak detection —
#               the recovery paths juggle staged pages and rebuilt trees,
#               exactly where lifetime bugs would hide
#   ubsan       same suite under UndefinedBehaviorSanitizer with
#               -fno-sanitize-recover=all, so any UB aborts the test
#   fault       the crash-matrix harness (fault_test) re-run explicitly in
#               the UBSan tree: every injected crash point must recover
#               without tripping a single UB check
#   no-metrics  smoke build with -DASR_METRICS=OFF to prove the
#               instrumentation compiles out
#   paranoid    suite with -DASR_PARANOID=ON: every maintenance commit
#               point revalidates the ASR structural invariants inline
#   file-backend  the full default-tree ctest run again with
#               ASR_STORAGE_BACKEND=file — everything above the storage
#               seam (metering, checksums, fault staging, recovery) must
#               behave identically when page bytes live in real files
#   crash-harness  the kill-based process-crash harness on the file
#               backend: 50 randomized SIGKILL points against a child doing
#               WAL-logged maintenance with group-flush durability; every
#               point must recover to invariant-clean, twin-equal answers
#   bench-smoke   runs the dual-report bench and fails unless the JSON
#               artifact carries wall_ms fields (the raw-speed half of the
#               reporting contract)
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_job() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

scripts/lint.sh "$JOBS"

run_job default     build-ci
run_job tsan        build-ci-tsan      -DASR_SANITIZE=thread
run_job asan        build-ci-asan      -DASR_SANITIZE=address
run_job ubsan       build-ci-ubsan     -DASR_SANITIZE=ubsan

echo "==== [fault] crash matrix under UBSan ===="
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  build-ci-ubsan/tests/fault_test

run_job no-metrics  build-ci-nometrics -DASR_METRICS=OFF
run_job paranoid    build-ci-paranoid  -DASR_PARANOID=ON

echo "==== [file-backend] tier-1 suite on the file backend ===="
ASR_STORAGE_BACKEND=file \
  ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "==== [crash-harness] 50 SIGKILL points on the file backend ===="
ASR_STORAGE_BACKEND=file ASR_KILL_POINTS=50 \
  build-ci/tests/kill_harness_test

echo "==== [bench-smoke] dual-report artifact check ===="
REPO_ROOT="$PWD"
BENCH_DIR="$(mktemp -d)"
(cd "$BENCH_DIR" && "$REPO_ROOT"/build-ci/bench/bulkload_bench)
grep -q '"wall_ms"' "$BENCH_DIR/BENCH_bulkload.json" || {
  echo "bench-smoke: BENCH_bulkload.json carries no wall_ms field" >&2
  exit 1
}
rm -rf "$BENCH_DIR"

echo "==== all CI jobs passed ===="
