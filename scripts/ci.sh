#!/usr/bin/env bash
# CI entry point: tier-1 suite in the default configuration, then the same
# suite under ThreadSanitizer (races are hard failures — this is what keeps
# the single-writer counter discipline in src/obs honest), then a smoke
# build with -DASR_METRICS=OFF to prove the instrumentation compiles out.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_job() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_job default     build-ci
run_job tsan        build-ci-tsan      -DASR_SANITIZE=thread
run_job no-metrics  build-ci-nometrics -DASR_METRICS=OFF

echo "==== all CI jobs passed ===="
