#!/usr/bin/env bash
# CI entry point. Jobs, in order:
#
#   lint        scripts/lint.sh — asrlint + clang-tidy (when installed) +
#               idiom greps
#   default     tier-1 suite, default configuration (-Werror is ON)
#   analysis    the in-repo discipline analyzer (tools/asrlint) over the
#               compiled tree — any diagnostic from the five rules
#               (lock-discipline, seam-purity, metering-purity,
#               status-discipline, durability-order) fails the job — plus
#               the seeded-violation self-test, which must report every
#               planted defect exactly once. An advisory gcc -fanalyzer
#               pass over src/storage follows (never fails the job; see
#               EXPERIMENTS.md for why it is advisory-only)
#   tsan        same suite under ThreadSanitizer (races are hard failures —
#               this is what keeps the single-writer counter discipline in
#               src/obs honest)
#   asan        same suite under AddressSanitizer with leak detection —
#               the recovery paths juggle staged pages and rebuilt trees,
#               exactly where lifetime bugs would hide
#   ubsan       same suite under UndefinedBehaviorSanitizer with
#               -fno-sanitize-recover=all, so any UB aborts the test
#   fault       the crash-matrix harness (fault_test) re-run explicitly in
#               the UBSan tree: every injected crash point must recover
#               without tripping a single UB check
#   no-metrics  smoke build with -DASR_METRICS=OFF to prove the
#               instrumentation compiles out
#   telemetry   the live-telemetry suite re-run in the TSan tree with the
#               background sampler forced on (ASR_TELEMETRY_MS=1): the
#               sampler thread hammers the LiveTelemetry hub while every
#               test runs, so a racy Observe/snapshot pair is a hard
#               failure — plus a metrics-off parity check that the metered
#               page counts are bit-identical with telemetry compiled out
#   paranoid    suite with -DASR_PARANOID=ON: every maintenance commit
#               point revalidates the ASR structural invariants inline
#   file-backend  the full default-tree ctest run again with
#               ASR_STORAGE_BACKEND=file — everything above the storage
#               seam (metering, checksums, fault staging, recovery) must
#               behave identically when page bytes live in real files
#   crash-harness  the kill-based process-crash harness on the file
#               backend: 50 randomized SIGKILL points against a child doing
#               WAL-logged maintenance with group-flush durability; every
#               point must recover to invariant-clean, twin-equal answers
#   crash-harness-interleaved  the same harness in two-writer mode: each
#               child runs two transactional writers on disjoint anchored
#               partitions (own WAL stream each), the SIGKILL lands with
#               the writers in different commit phases, and recovery must
#               leave both writers' answers twin-equal and invariant-clean
#   bench-smoke   runs the dual-report bench and fails unless the JSON
#               artifact carries wall_ms and read_p99_us fields (the
#               raw-speed half of the reporting contract)
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_job() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] test ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

scripts/lint.sh "$JOBS"

run_job default     build-ci

echo "==== [analysis] asrlint discipline analyzer over src/ ===="
build-ci/tools/asrlint/asrlint \
  --compile-commands build-ci/compile_commands.json --root src

echo "==== [analysis] asrlint seeded-violation self-test ===="
build-ci/tests/asrlint_test

echo "==== [analysis] gcc -fanalyzer over src/storage (advisory) ===="
# C++ support in -fanalyzer is explicitly experimental upstream; it runs
# clean here today, so regressions are worth a look, but its verdicts never
# gate the build (EXPERIMENTS.md records the evaluation).
for f in src/storage/*.cc; do
  g++ -std=c++20 -fanalyzer -Isrc -c "$f" -o /dev/null 2>&1 |
    grep -E '^\S+:[0-9]+:' || true
done

run_job tsan        build-ci-tsan      -DASR_SANITIZE=thread
run_job asan        build-ci-asan      -DASR_SANITIZE=address
run_job ubsan       build-ci-ubsan     -DASR_SANITIZE=ubsan

echo "==== [fault] crash matrix under UBSan ===="
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  build-ci-ubsan/tests/fault_test

run_job no-metrics  build-ci-nometrics -DASR_METRICS=OFF

echo "==== [telemetry] live sampler under TSan ===="
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 ASR_TELEMETRY_MS=1 \
  build-ci-tsan/tests/telemetry_test

echo "==== [telemetry] metrics-off parity of metered page counts ===="
REPO_ROOT="$PWD"
PARITY_DIR="$(mktemp -d)"
mkdir "$PARITY_DIR/on" "$PARITY_DIR/off"
(cd "$PARITY_DIR/on" && "$REPO_ROOT"/build-ci/bench/bulkload_bench >/dev/null)
(cd "$PARITY_DIR/off" &&
  "$REPO_ROOT"/build-ci-nometrics/bench/bulkload_bench >/dev/null)
for f in on off; do
  grep -o '"page_\(reads\|writes\)": [0-9]*' \
    "$PARITY_DIR/$f/BENCH_bulkload.json" > "$PARITY_DIR/$f.counts"
done
diff -u "$PARITY_DIR/on.counts" "$PARITY_DIR/off.counts" || {
  echo "telemetry: metered page counts differ between ASR_METRICS=ON/OFF" >&2
  exit 1
}
rm -rf "$PARITY_DIR"

run_job paranoid    build-ci-paranoid  -DASR_PARANOID=ON

echo "==== [file-backend] tier-1 suite on the file backend ===="
ASR_STORAGE_BACKEND=file \
  ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "==== [crash-harness] 50 SIGKILL points on the file backend ===="
ASR_STORAGE_BACKEND=file ASR_KILL_POINTS=50 \
  build-ci/tests/kill_harness_test \
  --gtest_filter='-KillHarnessTest.Interleaved*'

echo "==== [crash-harness-interleaved] 50 two-writer SIGKILL points ===="
ASR_STORAGE_BACKEND=file ASR_KILL_POINTS=50 \
  build-ci/tests/kill_harness_test \
  --gtest_filter='KillHarnessTest.Interleaved*'

echo "==== [bench-smoke] dual-report artifact check ===="
REPO_ROOT="$PWD"
BENCH_DIR="$(mktemp -d)"
(cd "$BENCH_DIR" && "$REPO_ROOT"/build-ci/bench/bulkload_bench)
grep -q '"wall_ms"' "$BENCH_DIR/BENCH_bulkload.json" || {
  echo "bench-smoke: BENCH_bulkload.json carries no wall_ms field" >&2
  exit 1
}
grep -q '"read_p99_us"' "$BENCH_DIR/BENCH_bulkload.json" || {
  echo "bench-smoke: BENCH_bulkload.json carries no read_p99_us field" >&2
  exit 1
}
rm -rf "$BENCH_DIR"

echo "==== all CI jobs passed ===="
