#!/usr/bin/env bash
# Static analysis + idiom lint over src/.
#
# Always runs tools/asrlint — the in-repo discipline analyzer (lock
# annotations, seam purity, metering purity, status discipline, durability
# ordering; rules documented in DESIGN.md §13). asrlint is built from this
# tree, so it exists wherever the code compiles; its diagnostics are hard
# failures. clang-tidy (profile in .clang-tidy) additionally runs when the
# binary is available — the minimal CI image ships only gcc, so its absence
# degrades to the asrlint-only pass, not a failure.
#
# The idiom greps below always run and are hard failures:
#
#   1. no raw `new` / `delete` outside src/storage — ownership lives in
#      smart pointers (a factory wrapping `new` in a unique_ptr/shared_ptr
#      on the same line is the accepted escape hatch for private ctors);
#      storage/ manages raw page frames and is exempt.
#   2. include guards follow ASR_<PATH>_H_ exactly, so guards can never
#      collide as headers move or multiply.
#
# Usage: scripts/lint.sh [jobs]
set -uo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
fail=0

# --- asrlint (always) --------------------------------------------------------
echo "==== [lint] asrlint discipline analyzer ===="
cmake -B build-lint -S . >/dev/null  # exports compile_commands.json
if cmake --build build-lint -j "$JOBS" --target asrlint >/dev/null; then
  if ! build-lint/tools/asrlint/asrlint \
    --compile-commands build-lint/compile_commands.json --root src; then
    fail=1
  fi
else
  echo "asrlint failed to build"
  fail=1
fi

# --- clang -Wthread-safety (optional) ----------------------------------------
# The ASR_GUARDED_BY/ASR_REQUIRES macros expand to clang's thread-safety
# attributes (common/thread_annotations.h), so where clang++ exists the
# whole tree gets the real flow-sensitive analysis on top of asrlint's
# flow-insensitive lock-discipline rule. -Werror makes every thread-safety
# diagnostic a hard failure. The gcc-only CI image skips the sweep; asrlint
# still enforces the discipline there.
if command -v clang++ >/dev/null 2>&1; then
  echo "==== [lint] clang -Wthread-safety ===="
  if ! find src -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 8 clang++ -std=c++20 -fsyntax-only -Isrc \
      -Wthread-safety -Werror=thread-safety; then
    fail=1
  fi
else
  echo "==== [lint] clang++ not installed; skipping -Wthread-safety sweep ===="
fi

# --- clang-tidy (optional) ---------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "==== [lint] clang-tidy ===="
  if ! find src -name '*.cc' -print0 |
    xargs -0 -P "$JOBS" -n 8 clang-tidy -p build-lint --quiet; then
    fail=1
  fi
else
  echo "==== [lint] clang-tidy not installed; asrlint-only pass ===="
fi

# --- idiom: no raw new/delete outside src/storage ----------------------------
echo "==== [lint] raw new/delete ===="
# A factory with a private ctor wraps `new` in a smart pointer that may sit
# on the previous line, so the scan keeps one line of lookbehind.
raw_alloc=$(find src \( -name '*.cc' -o -name '*.h' \) ! -path 'src/storage/*' |
  sort | while IFS= read -r f; do
  awk -v file="$f" '
    { line = $0; sub(/\/\/.*/, "", line) }
    line ~ /(^|[^A-Za-z_])new [A-Za-z_:<(]/ ||
    line ~ /(^|[^A-Za-z_])delete($|[^A-Za-z_0-9])/ {
      if (line !~ /unique_ptr|shared_ptr|= *delete/ &&
          prev !~ /unique_ptr|shared_ptr/) {
        printf "%s:%d:%s\n", file, NR, $0
      }
    }
    { prev = line }
  ' "$f"
done)
if [[ -n "$raw_alloc" ]]; then
  echo "raw new/delete outside src/storage (wrap in a smart pointer):"
  echo "$raw_alloc"
  fail=1
fi

# --- idiom: include-guard style ----------------------------------------------
echo "==== [lint] include guards ===="
while IFS= read -r header; do
  rel=${header#src/}
  guard="ASR_$(echo "$rel" | tr 'a-z/.' 'A-Z__')_"
  if ! grep -q "#ifndef $guard" "$header" ||
    ! grep -q "#define $guard" "$header"; then
    echo "bad include guard in $header (want $guard)"
    fail=1
  fi
done < <(find src -name '*.h' | sort)

if [[ "$fail" -ne 0 ]]; then
  echo "==== lint FAILED ===="
  exit 1
fi
echo "==== lint passed ===="
