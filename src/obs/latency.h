// Wall-clock latency instrumentation and the live telemetry hub.
//
// The registry's HotCounter/HotHistogram are deliberately single-writer
// plain fields, readable only at quiescent points — which is exactly wrong
// for a background sampler that wants to watch a workload *while it runs*.
// This header adds the second discipline: SharedCounter / SharedHistogram
// are relaxed-atomic twins of the hot types, safe for one writer plus any
// number of concurrent readers (per-field relaxed loads; a sampled snapshot
// is a near-point-in-time view, not a serialized one — fine for rates and
// percentiles, never used for metered page-count claims).
//
// LiveTelemetry is the process-global hub holding exactly the signals the
// sampler streams: buffer hits/misses, degraded navigation hops, and the
// storage-seam latency histograms (backend read/write/sync, WAL
// append/sync). Hot components mirror into it; the sampler only ever reads
// the hub, so the single-writer HotCounters stay untouched by other
// threads and TSan stays quiet.
//
// Compile-out contract: under ASR_METRICS_ENABLED=0 every type here is an
// empty no-op and LatencyTimer never reads the clock, so -DASR_METRICS=OFF
// leaves zero telemetry work in the hot paths.
#ifndef ASR_OBS_LATENCY_H_
#define ASR_OBS_LATENCY_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace asr::obs {

#if ASR_METRICS_ENABLED

// Monotonic wall clock in microseconds (the latency currency everywhere).
inline uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One writer, many readers; relaxed is enough because samples are
// statistical, not transactional.
class SharedCounter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A level, not an accumulator: Set overwrites (snapshot age, queue depth).
// Same discipline as SharedCounter — one writer, many relaxed readers.
class SharedGauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Relaxed-atomic histogram with the registry's bucket geometry. Observe is
// one writer; snapshot() may run concurrently from the sampler thread and
// sees each field near-current (fields may be mutually skewed by an
// in-flight Observe — rates and percentiles tolerate that).
class SharedHistogram {
 public:
  void Observe(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    buckets_[HotHistogram::BucketIndex(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

// Scoped stopwatch: observes elapsed microseconds into up to two
// histograms (the component's own, for per-phase bench numbers, and the
// hub's, for the live stream). `enabled=false` skips the clock entirely so
// metering-backend paths pay nothing.
class LatencyTimer {
 public:
  explicit LatencyTimer(bool enabled, SharedHistogram* primary,
                        SharedHistogram* mirror = nullptr)
      : primary_(enabled ? primary : nullptr),
        mirror_(enabled ? mirror : nullptr),
        start_(enabled ? MonotonicMicros() : 0) {}

  ~LatencyTimer() {
    if (primary_ == nullptr && mirror_ == nullptr) return;
    uint64_t us = MonotonicMicros() - start_;
    if (primary_ != nullptr) primary_->Observe(us);
    if (mirror_ != nullptr) mirror_->Observe(us);
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  SharedHistogram* primary_;
  SharedHistogram* mirror_;
  uint64_t start_;
};

#else  // !ASR_METRICS_ENABLED

inline uint64_t MonotonicMicros() { return 0; }

class SharedCounter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class SharedGauge {
 public:
  void Set(uint64_t) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class SharedHistogram {
 public:
  void Observe(uint64_t) {}
  HistogramSnapshot snapshot() const { return {}; }
  uint64_t count() const { return 0; }
  void Reset() {}
};

class LatencyTimer {
 public:
  explicit LatencyTimer(bool, SharedHistogram*, SharedHistogram* = nullptr) {}
};

#endif  // ASR_METRICS_ENABLED

// Process-global mirror of the live-stream signals. Everything in here is
// shared-safe; the sampler's default collector reads only this hub.
struct LiveTelemetry {
  // Buffer pool (mirrored from BufferManager::TryPin).
  SharedCounter buffer_hits;
  SharedCounter buffer_misses;
  // Degraded navigation entries (mirrored from AccessSupportRelation).
  SharedCounter degraded_hops;
  // Storage-seam latencies, microseconds.
  SharedHistogram storage_read_us;
  SharedHistogram storage_write_us;
  SharedHistogram storage_sync_us;
  SharedHistogram wal_append_us;
  SharedHistogram wal_sync_us;
  // Transaction layer (mirrored from MvccManager and the ASR txn retry
  // loop): commit/conflict counts, retries-per-op, and the distance in
  // epochs between the oldest live snapshot and the committed epoch.
  SharedCounter txn_commits;
  SharedCounter txn_conflicts;
  SharedHistogram txn_retries;
  SharedGauge snapshot_age_epochs;

  void Reset() {
    buffer_hits.Reset();
    buffer_misses.Reset();
    degraded_hops.Reset();
    storage_read_us.Reset();
    storage_write_us.Reset();
    storage_sync_us.Reset();
    wal_append_us.Reset();
    wal_sync_us.Reset();
    txn_commits.Reset();
    txn_conflicts.Reset();
    txn_retries.Reset();
    snapshot_age_epochs.Reset();
  }

  static LiveTelemetry& Instance() {
    static LiveTelemetry hub;
    return hub;
  }
};

}  // namespace asr::obs

#endif  // ASR_OBS_LATENCY_H_
