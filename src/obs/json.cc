#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace asr::obs {

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_sibling_.push_back(false);
}

void JsonWriter::EndObject() {
  has_sibling_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_sibling_.push_back(false);
}

void JsonWriter::EndArray() {
  has_sibling_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

}  // namespace asr::obs
