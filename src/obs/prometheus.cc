#include "obs/prometheus.h"

namespace asr::obs {

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "asr_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPrometheusHistogram(const std::string& metric,
                               const HistogramSnapshot& snap,
                               std::string* out) {
  *out += "# TYPE " + metric + " histogram\n";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += snap.buckets[b];
    uint64_t bound = HistogramBucketBound(b);
    *out += metric + "_bucket{le=\"";
    *out += bound == UINT64_MAX ? "+Inf" : std::to_string(bound);
    *out += "\"} " + std::to_string(cumulative) + "\n";
  }
  *out += metric + "_sum " + std::to_string(snap.sum) + "\n";
  *out += metric + "_count " + std::to_string(snap.count) + "\n";
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.Counters()) {
    std::string metric = PrometheusMetricName(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, snap] : registry.Histograms()) {
    AppendPrometheusHistogram(PrometheusMetricName(name), snap, &out);
  }
  return out;
}

}  // namespace asr::obs
