// Metrics: hot-path counters/histograms plus the registry that collects them.
//
// The paper's evaluation currency is secondary-storage page accesses; raw
// AccessStats counters answer "how many", but not "which component and why".
// This layer attributes cost: every instrumented component (buffer manager,
// B+ tree, ASR, query evaluator) owns plain single-writer counters and
// histograms on its hot paths, and a MetricsRegistry aggregates them into a
// named snapshot at quiescent points — the same aggregation discipline as
// the per-segment AccessStats (one writer per counter, merge on demand, no
// atomics, single-threaded metered runs bit-identical).
//
// Compile-out contract: configuring with -DASR_METRICS=OFF defines
// ASR_METRICS_ENABLED=0, which turns HotCounter/HotHistogram into empty
// no-op types. Hot paths then reference no registry symbol at all — the
// registry only ever appears in the cold ExportMetrics() pull path.
#ifndef ASR_OBS_METRICS_H_
#define ASR_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#ifndef ASR_METRICS_ENABLED
#define ASR_METRICS_ENABLED 1
#endif

#include "common/thread_annotations.h"

namespace asr::obs {

class JsonWriter;

// Fixed histogram geometry: power-of-two bucket upper bounds
// 1, 2, 4, ..., 2^(kHistogramBuckets-2), +inf. Fits page counts, cluster and
// frontier sizes, and microsecond latencies without configuration.
inline constexpr size_t kHistogramBuckets = 18;

// Upper bound of bucket `b` (UINT64_MAX for the overflow bucket).
uint64_t HistogramBucketBound(size_t b);

// Point-in-time value of one histogram, also the registry's stored form.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }

  // Upper-bound estimate of the q-quantile (0 < q <= 1) from the
  // power-of-two buckets: the bound of the first bucket whose cumulative
  // count reaches ceil(q * count), capped at the observed max. p50/p95/p99
  // for benches and exports share this one definition.
  uint64_t Percentile(double q) const;
  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P95() const { return Percentile(0.95); }
  uint64_t P99() const { return Percentile(0.99); }

  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
  // Bucket-wise difference against an earlier snapshot of the same
  // histogram (monotone fields only; max carries the later value since a
  // windowed max is not recoverable from two cumulative points).
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

#if ASR_METRICS_ENABLED

// Single-writer counter: one owning component, one writer thread (parallel
// builders each own their component instance), merged only after join.
class HotCounter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Single-writer fixed-bucket histogram; Observe is branch-light (a clz-based
// bucket index plus three adds).
class HotHistogram {
 public:
  void Observe(uint64_t v) {
    ++snap_.count;
    snap_.sum += v;
    if (v > snap_.max) snap_.max = v;
    ++snap_.buckets[BucketIndex(v)];
  }
  const HistogramSnapshot& snapshot() const { return snap_; }
  uint64_t count() const { return snap_.count; }
  void Reset() { snap_ = HistogramSnapshot{}; }

  static size_t BucketIndex(uint64_t v);

 private:
  HistogramSnapshot snap_;
};

#else  // !ASR_METRICS_ENABLED

class HotCounter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class HotHistogram {
 public:
  void Observe(uint64_t) {}
  HistogramSnapshot snapshot() const { return {}; }
  uint64_t count() const { return 0; }
  void Reset() {}
};

#endif  // ASR_METRICS_ENABLED

// Named snapshot store. Components push their hot counters/histograms into a
// registry via their ExportMetrics(registry, prefix) methods; benches and
// the drift report then render the merged picture. All methods are cold
// path; a mutex guards the maps so concurrent exporters (e.g. per-thread
// registries being merged) stay safe, but the hot counters themselves are
// never touched by more than their single owner.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Overwrites (Set) or accumulates into (Add) the named counter.
  void Set(const std::string& name, uint64_t value);
  void Add(const std::string& name, uint64_t delta);
  void SetHistogram(const std::string& name, const HistogramSnapshot& snap);
  void AddHistogram(const std::string& name, const HistogramSnapshot& snap);

  // Convenience overloads pulling from the hot types (no-ops under
  // ASR_METRICS_ENABLED=0 write zeros, keeping snapshots shape-stable).
  void Set(const std::string& name, const HotCounter& c) {
    Set(name, c.value());
  }
  void SetHistogram(const std::string& name, const HotHistogram& h) {
    SetHistogram(name, h.snapshot());
  }

  // Lookup; 0 / empty snapshot when absent.
  uint64_t counter(const std::string& name) const;
  bool HasCounter(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name) const;

  // Sums `other` into this registry (counters add, histograms merge).
  void MergeFrom(const MetricsRegistry& other);
  void Clear();

  size_t counter_count() const;
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms() const;

  // Rendering: one "name value" line per counter plus histogram summaries,
  // and a {"counters": {...}, "histograms": {...}} JSON object.
  std::string ToText() const;
  void WriteJson(JsonWriter* json) const;
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_ ASR_GUARDED_BY(mu_);
  std::map<std::string, HistogramSnapshot> histograms_ ASR_GUARDED_BY(mu_);
};

}  // namespace asr::obs

#endif  // ASR_OBS_METRICS_H_
