#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "obs/json.h"

namespace asr::obs {

uint64_t HistogramBucketBound(size_t b) {
  if (b + 1 >= kHistogramBuckets) return UINT64_MAX;
  return 1ull << b;
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) return max;
  // Smallest rank whose cumulative bucket count covers quantile q.
  auto rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      uint64_t bound = HistogramBucketBound(b);
      return bound < max ? bound : max;
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  d.count = count - earlier.count;
  d.sum = sum - earlier.sum;
  d.max = max;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    d.buckets[b] = buckets[b] - earlier.buckets[b];
  }
  return d;
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (size_t b = 0; b < kHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  return *this;
}

#if ASR_METRICS_ENABLED
size_t HotHistogram::BucketIndex(uint64_t v) {
  if (v <= 1) return 0;
  size_t b = static_cast<size_t>(std::bit_width(v - 1));
  return b < kHistogramBuckets - 1 ? b : kHistogramBuckets - 1;
}
#endif

void MetricsRegistry::Set(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetHistogram(const std::string& name,
                                   const HistogramSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] = snap;
}

void MetricsRegistry::AddHistogram(const std::string& name,
                                   const HistogramSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name] += snap;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool MetricsRegistry::HasCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.count(name) > 0;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Copy under the source lock, then fold in under ours (never both at once,
  // so merging in either direction cannot deadlock).
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const auto& [name, snap] : histograms) histograms_[name] += snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, snap] : histograms_) {
    out += name + " count=" + std::to_string(snap.count) +
           " sum=" + std::to_string(snap.sum) +
           " max=" + std::to_string(snap.max) + "\n";
  }
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("counters");
  json->BeginObject();
  for (const auto& [name, value] : counters_) {
    json->Key(name);
    json->UInt(value);
  }
  json->EndObject();
  json->Key("histograms");
  json->BeginObject();
  for (const auto& [name, snap] : histograms_) {
    json->Key(name);
    json->BeginObject();
    json->Key("count");
    json->UInt(snap.count);
    json->Key("sum");
    json->UInt(snap.sum);
    json->Key("max");
    json->UInt(snap.max);
    json->Key("buckets");
    json->BeginArray();
    // Trailing empty buckets are elided; bucket b spans (2^(b-1), 2^b].
    size_t last = kHistogramBuckets;
    while (last > 0 && snap.buckets[last - 1] == 0) --last;
    for (size_t b = 0; b < last; ++b) json->UInt(snap.buckets[b]);
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.TakeString();
}

}  // namespace asr::obs
