// Structured trace spans: the EXPLAIN substrate.
//
// A TraceContext installs itself as the thread's active trace; while one is
// active, every ScopedSpan on that thread opens a child of the innermost
// open span, and on destruction records the page reads/writes, buffer
// hits/misses, and wall time that elapsed inside it. The result is a
// per-stage tree — stage name, attributes (partition, mode, frontier size),
// page-access attribution — rendered as indented text or JSON.
//
// Page/buffer deltas come from a caller-supplied probe so this layer stays
// independent of the storage module; the probe reads the same AccessStats
// the Meter uses, so a span's counts are directly comparable with the
// analytical model's predictions. Probing never touches pages itself:
// tracing an operation does not change its metered cost, and metered
// single-threaded runs stay bit-identical whether or not a trace is active.
//
// When no TraceContext is installed (the common case), a ScopedSpan is one
// thread-local load and a branch — cheap enough to leave in hot stages.
// Spans are deliberately NOT compiled out by ASR_METRICS=OFF: EXPLAIN is an
// explicit, opt-in facility, not passive metering.
#ifndef ASR_OBS_SPAN_H_
#define ASR_OBS_SPAN_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace asr::obs {

class JsonWriter;

// Cumulative cost counters a probe reads at span boundaries.
struct CostProbe {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
};

using ProbeFn = std::function<CostProbe()>;

// One node of the span tree.
struct SpanNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;
  double wall_us = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  uint64_t page_total() const { return page_reads + page_writes; }
};

// A finished span tree.
class Trace {
 public:
  Trace() = default;
  bool empty() const { return root_ == nullptr; }
  const SpanNode& root() const { return *root_; }

  // Indented per-stage rendering, one line per span:
  //   name [attr=v ...]  reads=r writes=w hits=h misses=m wall=t
  std::string ToText() const;
  // The span tree as a JSON object (children nested under "children").
  std::string ToJson() const;
  void WriteJson(JsonWriter* json) const;

 private:
  friend class TraceContext;
  explicit Trace(std::unique_ptr<SpanNode> root) : root_(std::move(root)) {}
  std::unique_ptr<SpanNode> root_;
};

// Installs a trace on the current thread for its lifetime. Non-reentrant
// nesting is allowed (the previous context is restored on destruction).
class TraceContext {
 public:
  TraceContext(std::string root_name, ProbeFn probe);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  // Closes the root span and returns the tree. The context stops collecting;
  // further spans on this thread attach to the enclosing context, if any.
  Trace Finish();

  // Attribute on the root span.
  void RootAttr(const std::string& key, std::string value);

  static TraceContext* Current();

 private:
  friend class ScopedSpan;

  SpanNode* OpenSpan(const char* name);
  void CloseSpan(SpanNode* node);
  CostProbe Probe() const { return probe_ ? probe_() : CostProbe{}; }

  TraceContext* prev_;
  ProbeFn probe_;
  std::unique_ptr<SpanNode> root_;
  std::vector<SpanNode*> open_;  // innermost open span at the back
  CostProbe root_start_;
  std::chrono::steady_clock::time_point root_t0_;
  bool finished_ = false;
};

// RAII span. Inert (near-zero cost) when no TraceContext is active on this
// thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return node_ != nullptr; }

  // Attributes (no-ops when inert, so callers need no guards).
  void Attr(const char* key, const std::string& value);
  void Attr(const char* key, uint64_t value);

 private:
  TraceContext* ctx_ = nullptr;
  SpanNode* node_ = nullptr;
  CostProbe start_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace asr::obs

#endif  // ASR_OBS_SPAN_H_
