// Model-vs-observed drift reports: the common self-describing JSON snapshot
// emitted by validate_model_vs_system and the figure benchmarks.
//
// Each row pairs one operation's analytical prediction (Sections 4-6 of the
// paper) with its metered page-access count and carries the relative error;
// the snapshot also embeds a full MetricsRegistry dump so a regression shows
// up with the component-level counters that explain it. Rows without an
// observation (model-only figure reproductions) simply omit the observed
// side — same schema, partially filled.
#ifndef ASR_OBS_REPORT_H_
#define ASR_OBS_REPORT_H_

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace asr::obs {

struct DriftRow {
  std::string op;       // e.g. "Q04(bw) full/bin" or "ins_2 left/bin"
  double model = 0;     // predicted page accesses
  double observed = 0;  // metered page accesses (meaningful iff has_observed)
  bool has_observed = false;

  // |observed - model| / model; 0 when the model predicts 0 and the system
  // agrees, infinity when it does not.
  double RelError() const;
};

class DriftReport {
 public:
  DriftReport(std::string bench, std::string profile)
      : bench_(std::move(bench)), profile_(std::move(profile)) {}

  // Model-only row (figure reproductions).
  void AddModelRow(const std::string& op, double model);
  // Full drift row (metered executions).
  void AddRow(const std::string& op, double model, double observed);
  // Free-form metadata surfaced under "meta" in the snapshot.
  void AddMeta(const std::string& key, const std::string& value);

  const std::vector<DriftRow>& rows() const { return rows_; }
  // Largest relative error over rows that have an observation.
  double MaxRelError() const;

  // The embedded registry dump; fill it via the components'
  // ExportMetrics(...) before writing.
  MetricsRegistry* metrics() { return &metrics_; }

  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string bench_;
  std::string profile_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<DriftRow> rows_;
  MetricsRegistry metrics_;
};

}  // namespace asr::obs

#endif  // ASR_OBS_REPORT_H_
