// Background telemetry sampler: periodic snapshots, windowed rates, alerts.
//
// A TelemetrySampler owns one background thread that snapshots a metrics
// source (by default the LiveTelemetry hub — the only store that is safe to
// read while the workload runs) every `interval_ms`, differences each
// snapshot against the previous one into windowed deltas and per-second
// rates, keeps a bounded time-series ring of samples, and evaluates
// threshold alert rules over each window. Rule transitions from quiet to
// firing are edge-triggered: each firing is appended to a bounded list,
// recorded as an EventKind::kAlert event, and handed to any subscribed
// callback — the hook the ROADMAP's online auto-tuner attaches to.
//
// `SampleOnce()` is public and synchronous so unit tests (and single-shot
// tools) can drive the pipeline without a thread. `ASR_TELEMETRY_MS` in the
// environment picks the interval; unset or 0 leaves Start() a no-op.
//
// Compile-out contract: under ASR_METRICS_ENABLED=0 Start() never spawns a
// thread, SampleOnce() returns an empty sample, and no rule ever fires.
#ifndef ASR_OBS_SAMPLER_H_
#define ASR_OBS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace asr::obs {

class JsonWriter;

// One periodic observation: cumulative values plus the window since the
// previous sample.
struct TelemetrySample {
  uint64_t seq = 0;
  uint64_t t_us = 0;   // monotonic clock at the sample
  uint64_t dt_us = 0;  // window length (0 for the first sample)
  std::map<std::string, uint64_t> counters;                  // cumulative
  std::map<std::string, uint64_t> counter_deltas;            // this window
  std::map<std::string, double> rates;                       // per second
  std::map<std::string, HistogramSnapshot> histograms;       // cumulative
  std::map<std::string, HistogramSnapshot> histogram_deltas; // this window

  uint64_t counter(const std::string& name) const;
  uint64_t delta(const std::string& name) const;
  double rate(const std::string& name) const;
  HistogramSnapshot histogram_delta(const std::string& name) const;
};

// Threshold rule evaluated against each sample's window. `predicate`
// returns true while the alerting condition holds; the sampler fires on
// the false->true edge and re-arms on true->false.
struct AlertRule {
  std::string name;
  std::function<bool(const TelemetrySample&)> predicate;
  // Renders the observed value for the firing's detail string.
  std::function<std::string(const TelemetrySample&)> describe;
};

// Rule factories for the stock conditions.
// Fires while counter `name`'s windowed per-second rate exceeds
// `per_second` (use 0.0 for "any activity at all", e.g. degraded hops).
AlertRule CounterRateAbove(const std::string& rule, const std::string& name,
                           double per_second);
// Fires while num/(num+den) over the window drops below `ratio`, ignoring
// windows with fewer than `min_events` in num+den (e.g. buffer hit-ratio).
AlertRule RatioBelow(const std::string& rule, const std::string& num,
                     const std::string& den, double ratio,
                     uint64_t min_events);
// Fires while the windowed p99 of histogram `name` exceeds `ceiling_us`,
// ignoring windows with fewer than `min_count` observations.
AlertRule HistogramP99Above(const std::string& rule, const std::string& name,
                            uint64_t ceiling_us, uint64_t min_count);
// Fires while conflicts/(commits+conflicts) over the window exceeds `ratio`,
// ignoring windows with fewer than `min_events` commit attempts — a
// sustained-contention signal over the MVCC first-committer-wins path
// (live.txn.commits / live.txn.conflicts).
AlertRule TxnConflictRatioAbove(const std::string& rule, double ratio,
                                uint64_t min_events);

// The stock rule set over the LiveTelemetry names: degraded-hop rate > 0,
// buffer hit-ratio below `hit_ratio_floor`, sync-latency p99 above
// `sync_p99_ceiling_us`, and txn conflict ratio above 1/2 sustained over at
// least 16 commit attempts per window.
std::vector<AlertRule> DefaultAlertRules(double hit_ratio_floor,
                                         uint64_t sync_p99_ceiling_us);

struct AlertFiring {
  uint64_t sample_seq = 0;
  uint64_t t_us = 0;
  std::string rule;
  std::string detail;
};

// Fills a registry with the current cumulative values of the source being
// sampled. The default reads the LiveTelemetry hub under "live." names.
using TelemetryCollector = std::function<void(MetricsRegistry*)>;
void CollectLive(MetricsRegistry* registry);

class TelemetrySampler {
 public:
  struct Options {
    uint64_t interval_ms = 250;   // 0 = Start() is a no-op
    size_t ring_capacity = 240;   // samples retained
    size_t firing_capacity = 64;  // alert firings retained
    TelemetryCollector collector; // default: CollectLive

    // Reads ASR_TELEMETRY_MS (unset/0/invalid => interval_ms 0).
    static Options FromEnv();
  };

  TelemetrySampler();
  explicit TelemetrySampler(Options options);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void AddRule(AlertRule rule);
  // Subscriber hook; called from the sampling thread (or the SampleOnce
  // caller) after the sample is committed, outside the sampler lock.
  void OnAlert(std::function<void(const AlertFiring&)> callback);

  // Spawns the background thread. Returns running(); false when the
  // interval is 0 or metrics are compiled out.
  bool Start();
  void Stop();
  bool running() const;

  // Collect + diff + evaluate + record, synchronously. The thread calls
  // this on each tick; tests call it directly.
  TelemetrySample SampleOnce();

  std::vector<TelemetrySample> Samples() const;  // oldest first
  bool Latest(TelemetrySample* out) const;       // false when empty
  std::vector<AlertFiring> Firings() const;
  uint64_t samples_taken() const;

  // {"interval_ms":..,"samples":[..],"alerts":[..]}
  void WriteJson(JsonWriter* json) const;
  std::string ToJson() const;

 private:
  void ThreadMain();

  Options options_;  // immutable after construction; no lock needed
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ ASR_GUARDED_BY(mu_) = false;
  bool running_ ASR_GUARDED_BY(mu_) = false;
  // Joined only by Stop()/~TelemetrySampler after running_ is cleared;
  // never touched by the sampling thread itself.
  std::thread thread_;

  std::vector<AlertRule> rules_ ASR_GUARDED_BY(mu_);
  std::vector<bool> rule_active_ ASR_GUARDED_BY(mu_);
  std::vector<std::function<void(const AlertFiring&)>> callbacks_
      ASR_GUARDED_BY(mu_);

  std::vector<TelemetrySample> ring_ ASR_GUARDED_BY(mu_);  // oldest first
  std::vector<AlertFiring> firings_ ASR_GUARDED_BY(mu_);
  uint64_t next_seq_ ASR_GUARDED_BY(mu_) = 1;
  bool have_prev_ ASR_GUARDED_BY(mu_) = false;
  TelemetrySample prev_ ASR_GUARDED_BY(mu_);
};

}  // namespace asr::obs

#endif  // ASR_OBS_SAMPLER_H_
