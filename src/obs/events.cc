#include "obs/events.h"

#include <utility>

#include "obs/json.h"
#include "obs/latency.h"

namespace asr::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRecoveryStart:
      return "recovery_start";
    case EventKind::kRecoveryFinish:
      return "recovery_finish";
    case EventKind::kPartitionQuarantine:
      return "partition_quarantine";
    case EventKind::kReadOnlyDemotion:
      return "read_only_demotion";
    case EventKind::kWalTornTail:
      return "wal_torn_tail";
    case EventKind::kWalCorruptSuffix:
      return "wal_corrupt_suffix";
    case EventKind::kCheckpointSaved:
      return "checkpoint_saved";
    case EventKind::kDegradedNavigation:
      return "degraded_navigation";
    case EventKind::kMaintenanceLost:
      return "maintenance_lost";
    case EventKind::kAlert:
      return "alert";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventLog& EventLog::Instance() {
  static EventLog log;
  return log;
}

void EventLog::Record(EventKind kind, std::string detail) {
#if ASR_METRICS_ENABLED
  Event e;
  e.t_us = MonotonicMicros();
  e.kind = kind;
  e.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(e));
#else
  (void)kind;
  (void)detail;
#endif
}

std::vector<Event> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<Event> EventLog::Since(uint64_t after_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const Event& e : ring_) {
    if (e.seq > after_seq) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::OfKind(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const Event& e : ring_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

uint64_t EventLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  // seq keeps advancing across Clear() so "Since" cursors stay valid.
  dropped_ = 0;
}

void EventLog::WriteJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("total");
  json->UInt(next_seq_ - 1);
  json->Key("dropped");
  json->UInt(dropped_);
  json->Key("events");
  json->BeginArray();
  for (const Event& e : ring_) {
    json->BeginObject();
    json->Key("seq");
    json->UInt(e.seq);
    json->Key("t_us");
    json->UInt(e.t_us);
    json->Key("kind");
    json->String(EventKindName(e.kind));
    json->Key("detail");
    json->String(e.detail);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

std::string EventLog::ToJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.TakeString();
}

}  // namespace asr::obs
