// Minimal dependency-free JSON emitter for observability snapshots.
//
// Observability output (metric dumps, EXPLAIN traces, drift reports) must be
// machine-readable without pulling a serialization library into the tree, so
// this writer covers exactly what those producers need: nested
// objects/arrays, correct string escaping, and numeric formatting in which
// non-finite doubles degrade to null instead of producing invalid JSON.
#ifndef ASR_OBS_JSON_H_
#define ASR_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asr::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Structure. Key() must precede every value inside an object.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);

  // Values.
  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);  // NaN / infinity emit null
  void Bool(bool value);
  void Null();

  // The document built so far.
  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  // Emits the separating comma when a value follows a prior sibling.
  void BeforeValue();

  std::string out_;
  // One entry per open container: true after the first child was written.
  std::vector<bool> has_sibling_;
  bool pending_key_ = false;
};

}  // namespace asr::obs

#endif  // ASR_OBS_JSON_H_
