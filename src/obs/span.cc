#include "obs/span.h"

#include <cstdio>

#include "obs/json.h"

namespace asr::obs {

namespace {

thread_local TraceContext* g_current = nullptr;

void AppendSpanText(const SpanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.attrs.empty()) {
    *out += " [";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) *out += ' ';
      *out += node.attrs[i].first + "=" + node.attrs[i].second;
    }
    *out += ']';
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  reads=%llu writes=%llu hits=%llu misses=%llu wall=%.0fus",
                static_cast<unsigned long long>(node.page_reads),
                static_cast<unsigned long long>(node.page_writes),
                static_cast<unsigned long long>(node.buffer_hits),
                static_cast<unsigned long long>(node.buffer_misses),
                node.wall_us);
  *out += buf;
  *out += '\n';
  for (const auto& child : node.children) {
    AppendSpanText(*child, depth + 1, out);
  }
}

void WriteSpanJson(const SpanNode& node, JsonWriter* json) {
  json->BeginObject();
  json->Key("name");
  json->String(node.name);
  if (!node.attrs.empty()) {
    json->Key("attrs");
    json->BeginObject();
    for (const auto& [key, value] : node.attrs) {
      json->Key(key);
      json->String(value);
    }
    json->EndObject();
  }
  json->Key("page_reads");
  json->UInt(node.page_reads);
  json->Key("page_writes");
  json->UInt(node.page_writes);
  json->Key("buffer_hits");
  json->UInt(node.buffer_hits);
  json->Key("buffer_misses");
  json->UInt(node.buffer_misses);
  json->Key("wall_us");
  json->Double(node.wall_us);
  if (!node.children.empty()) {
    json->Key("children");
    json->BeginArray();
    for (const auto& child : node.children) WriteSpanJson(*child, json);
    json->EndArray();
  }
  json->EndObject();
}

}  // namespace

std::string Trace::ToText() const {
  if (root_ == nullptr) return "";
  std::string out;
  AppendSpanText(*root_, 0, &out);
  return out;
}

void Trace::WriteJson(JsonWriter* json) const {
  if (root_ == nullptr) {
    json->Null();
    return;
  }
  WriteSpanJson(*root_, json);
}

std::string Trace::ToJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.TakeString();
}

TraceContext::TraceContext(std::string root_name, ProbeFn probe)
    : prev_(g_current), probe_(std::move(probe)) {
  root_ = std::make_unique<SpanNode>();
  root_->name = std::move(root_name);
  root_start_ = Probe();
  root_t0_ = std::chrono::steady_clock::now();
  g_current = this;
}

TraceContext::~TraceContext() {
  if (!finished_) Finish();
}

Trace TraceContext::Finish() {
  if (finished_) return Trace{};
  finished_ = true;
  // Unclosed child spans would mean a ScopedSpan outlived its context —
  // close them defensively so the tree stays well-formed.
  open_.clear();
  CostProbe end = Probe();
  root_->page_reads = end.page_reads - root_start_.page_reads;
  root_->page_writes = end.page_writes - root_start_.page_writes;
  root_->buffer_hits = end.buffer_hits - root_start_.buffer_hits;
  root_->buffer_misses = end.buffer_misses - root_start_.buffer_misses;
  root_->wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - root_t0_)
                       .count();
  g_current = prev_;
  return Trace(std::move(root_));
}

void TraceContext::RootAttr(const std::string& key, std::string value) {
  if (root_ != nullptr) root_->attrs.emplace_back(key, std::move(value));
}

TraceContext* TraceContext::Current() { return g_current; }

SpanNode* TraceContext::OpenSpan(const char* name) {
  SpanNode* parent = open_.empty() ? root_.get() : open_.back();
  parent->children.push_back(std::make_unique<SpanNode>());
  SpanNode* node = parent->children.back().get();
  node->name = name;
  open_.push_back(node);
  return node;
}

void TraceContext::CloseSpan(SpanNode* node) {
  // Spans close in strict LIFO order (RAII guarantees it within one thread).
  if (!open_.empty() && open_.back() == node) open_.pop_back();
}

ScopedSpan::ScopedSpan(const char* name) {
  TraceContext* ctx = TraceContext::Current();
  if (ctx == nullptr || ctx->finished_) return;
  ctx_ = ctx;
  node_ = ctx->OpenSpan(name);
  start_ = ctx->Probe();
  t0_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  CostProbe end = ctx_->Probe();
  node_->page_reads = end.page_reads - start_.page_reads;
  node_->page_writes = end.page_writes - start_.page_writes;
  node_->buffer_hits = end.buffer_hits - start_.buffer_hits;
  node_->buffer_misses = end.buffer_misses - start_.buffer_misses;
  node_->wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0_)
                       .count();
  ctx_->CloseSpan(node_);
}

void ScopedSpan::Attr(const char* key, const std::string& value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}

void ScopedSpan::Attr(const char* key, uint64_t value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, std::to_string(value));
}

}  // namespace asr::obs
