// Operational event journal: a bounded ring of typed, timestamped events.
//
// Metrics say how much; events say what happened and when. The storage and
// recovery layers emit one event per operational state change — recovery
// start/finish, partition quarantine, read-only demotion, WAL torn-tail
// truncation, checkpoint saved, degraded-navigation entry — into a
// process-global ring that tools (examples/stats, the sampler's alert
// hook, post-crash assertions in the kill harness) can snapshot and render
// as JSON. Every emission site is already a cold path (these things happen
// per incident, not per page), so a mutex-guarded ring is the right tool.
//
// Call sites use the ASR_EVENT macro so that -DASR_METRICS=OFF compiles
// both the call and its detail-string construction out entirely.
#ifndef ASR_OBS_EVENTS_H_
#define ASR_OBS_EVENTS_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace asr::obs {

class JsonWriter;

// Event taxonomy. Keep in sync with EventKindName().
enum class EventKind : uint8_t {
  kRecoveryStart = 0,
  kRecoveryFinish,
  kPartitionQuarantine,
  kReadOnlyDemotion,
  kWalTornTail,
  kWalCorruptSuffix,
  kCheckpointSaved,
  kDegradedNavigation,
  kMaintenanceLost,
  kAlert,
};

const char* EventKindName(EventKind kind);

struct Event {
  uint64_t seq = 0;      // monotonically increasing, never reused
  uint64_t t_us = 0;     // monotonic clock at emission (MonotonicMicros)
  EventKind kind = EventKind::kRecoveryStart;
  std::string detail;    // "key=value key=value" context, may be empty
};

// Bounded ring. Overflow drops the oldest event but keeps counting: seq and
// total_recorded() keep advancing, dropped() says how many fell off, so a
// reader can always tell a quiet system from a noisy one it only saw the
// tail of.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit EventLog(size_t capacity = kDefaultCapacity);

  // Process-global instance used by the ASR_EVENT macro and all exports.
  static EventLog& Instance();

  void Record(EventKind kind, std::string detail = "");

  // Oldest-first copy of the retained window.
  std::vector<Event> Snapshot() const;
  // Events with seq > after_seq (for incremental tailing).
  std::vector<Event> Since(uint64_t after_seq) const;
  // Retained events of one kind, oldest first.
  std::vector<Event> OfKind(EventKind kind) const;

  uint64_t total_recorded() const;
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }
  size_t size() const;
  void Clear();

  // {"total": N, "dropped": D, "events": [{seq, t_us, kind, detail}...]}
  void WriteJson(JsonWriter* json) const;
  std::string ToJson() const;

 private:
  const size_t capacity_;  // immutable after construction; no lock needed
  mutable std::mutex mu_;
  std::deque<Event> ring_ ASR_GUARDED_BY(mu_);
  uint64_t next_seq_ ASR_GUARDED_BY(mu_) = 1;
  uint64_t dropped_ ASR_GUARDED_BY(mu_) = 0;
};

}  // namespace asr::obs

#if ASR_METRICS_ENABLED
// Records into the global log; `detail` may be an arbitrary expression and
// is not evaluated when metrics are compiled out.
#define ASR_EVENT(kind, detail) \
  ::asr::obs::EventLog::Instance().Record((kind), (detail))
#else
#define ASR_EVENT(kind, detail) ((void)0)
#endif

#endif  // ASR_OBS_EVENTS_H_
