#include "obs/sampler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/latency.h"

namespace asr::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

uint64_t TelemetrySample::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t TelemetrySample::delta(const std::string& name) const {
  auto it = counter_deltas.find(name);
  return it == counter_deltas.end() ? 0 : it->second;
}

double TelemetrySample::rate(const std::string& name) const {
  auto it = rates.find(name);
  return it == rates.end() ? 0.0 : it->second;
}

HistogramSnapshot TelemetrySample::histogram_delta(
    const std::string& name) const {
  auto it = histogram_deltas.find(name);
  return it == histogram_deltas.end() ? HistogramSnapshot{} : it->second;
}

AlertRule CounterRateAbove(const std::string& rule, const std::string& name,
                           double per_second) {
  AlertRule r;
  r.name = rule;
  r.predicate = [name, per_second](const TelemetrySample& s) {
    return s.rate(name) > per_second;
  };
  r.describe = [name](const TelemetrySample& s) {
    return name + "/s=" + FormatDouble(s.rate(name));
  };
  return r;
}

AlertRule RatioBelow(const std::string& rule, const std::string& num,
                     const std::string& den, double ratio,
                     uint64_t min_events) {
  AlertRule r;
  r.name = rule;
  r.predicate = [num, den, ratio, min_events](const TelemetrySample& s) {
    uint64_t n = s.delta(num);
    uint64_t total = n + s.delta(den);
    if (total < min_events) return false;
    return static_cast<double>(n) / static_cast<double>(total) < ratio;
  };
  r.describe = [num, den](const TelemetrySample& s) {
    uint64_t n = s.delta(num);
    uint64_t total = n + s.delta(den);
    double observed =
        total == 0 ? 0.0
                   : static_cast<double>(n) / static_cast<double>(total);
    return "ratio=" + FormatDouble(observed) +
           " window_events=" + std::to_string(total);
  };
  return r;
}

AlertRule HistogramP99Above(const std::string& rule, const std::string& name,
                            uint64_t ceiling_us, uint64_t min_count) {
  AlertRule r;
  r.name = rule;
  r.predicate = [name, ceiling_us, min_count](const TelemetrySample& s) {
    HistogramSnapshot d = s.histogram_delta(name);
    if (d.count < min_count) return false;
    return d.P99() > ceiling_us;
  };
  r.describe = [name](const TelemetrySample& s) {
    HistogramSnapshot d = s.histogram_delta(name);
    return "p99_us=" + std::to_string(d.P99()) +
           " window_count=" + std::to_string(d.count);
  };
  return r;
}

AlertRule TxnConflictRatioAbove(const std::string& rule, double ratio,
                                uint64_t min_events) {
  AlertRule r;
  r.name = rule;
  r.predicate = [ratio, min_events](const TelemetrySample& s) {
    uint64_t conflicts = s.delta("live.txn.conflicts");
    uint64_t total = conflicts + s.delta("live.txn.commits");
    if (total < min_events) return false;
    return static_cast<double>(conflicts) / static_cast<double>(total) > ratio;
  };
  r.describe = [](const TelemetrySample& s) {
    uint64_t conflicts = s.delta("live.txn.conflicts");
    uint64_t total = conflicts + s.delta("live.txn.commits");
    double observed =
        total == 0 ? 0.0
                   : static_cast<double>(conflicts) / static_cast<double>(total);
    return "conflict_ratio=" + FormatDouble(observed) +
           " window_attempts=" + std::to_string(total);
  };
  return r;
}

std::vector<AlertRule> DefaultAlertRules(double hit_ratio_floor,
                                         uint64_t sync_p99_ceiling_us) {
  std::vector<AlertRule> rules;
  rules.push_back(
      CounterRateAbove("degraded_navigation", "live.degraded.hops", 0.0));
  rules.push_back(RatioBelow("buffer_hit_ratio", "live.buffer.hits",
                             "live.buffer.misses", hit_ratio_floor, 64));
  rules.push_back(HistogramP99Above("sync_latency_p99",
                                    "live.storage.sync_us",
                                    sync_p99_ceiling_us, 4));
  rules.push_back(TxnConflictRatioAbove("txn_conflict_ratio", 0.5, 16));
  return rules;
}

void CollectLive(MetricsRegistry* registry) {
  LiveTelemetry& hub = LiveTelemetry::Instance();
  registry->Set("live.buffer.hits", hub.buffer_hits.value());
  registry->Set("live.buffer.misses", hub.buffer_misses.value());
  registry->Set("live.degraded.hops", hub.degraded_hops.value());
  registry->SetHistogram("live.storage.read_us",
                         hub.storage_read_us.snapshot());
  registry->SetHistogram("live.storage.write_us",
                         hub.storage_write_us.snapshot());
  registry->SetHistogram("live.storage.sync_us",
                         hub.storage_sync_us.snapshot());
  registry->SetHistogram("live.wal.append_us", hub.wal_append_us.snapshot());
  registry->SetHistogram("live.wal.sync_us", hub.wal_sync_us.snapshot());
  registry->Set("live.txn.commits", hub.txn_commits.value());
  registry->Set("live.txn.conflicts", hub.txn_conflicts.value());
  registry->Set("live.txn.snapshot_age", hub.snapshot_age_epochs.value());
  registry->SetHistogram("live.txn.retries", hub.txn_retries.snapshot());
}

TelemetrySampler::Options TelemetrySampler::Options::FromEnv() {
  Options o;
  o.interval_ms = 0;
  if (const char* env = std::getenv("ASR_TELEMETRY_MS")) {
    char* end = nullptr;
    unsigned long long ms = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') o.interval_ms = ms;
  }
  return o;
}

TelemetrySampler::TelemetrySampler() : TelemetrySampler(Options()) {}

TelemetrySampler::TelemetrySampler(Options options)
    : options_(std::move(options)) {
  if (!options_.collector) options_.collector = CollectLive;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.firing_capacity == 0) options_.firing_capacity = 1;
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::AddRule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
  rule_active_.push_back(false);
}

void TelemetrySampler::OnAlert(
    std::function<void(const AlertFiring&)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(std::move(callback));
}

bool TelemetrySampler::Start() {
#if ASR_METRICS_ENABLED
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || options_.interval_ms == 0) return running_;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadMain(); });
  return true;
#else
  return false;
#endif
}

void TelemetrySampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TelemetrySampler::ThreadMain() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
  }
}

TelemetrySample TelemetrySampler::SampleOnce() {
  TelemetrySample sample;
#if ASR_METRICS_ENABLED
  MetricsRegistry registry;
  options_.collector(&registry);

  std::vector<AlertFiring> fired;
  std::vector<std::function<void(const AlertFiring&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sample.seq = next_seq_++;
    sample.t_us = MonotonicMicros();
    for (const auto& [name, value] : registry.Counters()) {
      sample.counters[name] = value;
    }
    for (const auto& [name, snap] : registry.Histograms()) {
      sample.histograms[name] = snap;
    }
    if (have_prev_) {
      sample.dt_us = sample.t_us - prev_.t_us;
      double dt_s = static_cast<double>(sample.dt_us) / 1e6;
      for (const auto& [name, value] : sample.counters) {
        uint64_t before = prev_.counter(name);
        uint64_t delta = value >= before ? value - before : 0;
        sample.counter_deltas[name] = delta;
        sample.rates[name] =
            dt_s > 0.0 ? static_cast<double>(delta) / dt_s : 0.0;
      }
      for (const auto& [name, snap] : sample.histograms) {
        auto it = prev_.histograms.find(name);
        sample.histogram_deltas[name] =
            it == prev_.histograms.end() ? snap : snap.DeltaSince(it->second);
      }
      // Alert rules see only complete windows.
      for (size_t i = 0; i < rules_.size(); ++i) {
        bool holds = rules_[i].predicate && rules_[i].predicate(sample);
        if (holds && !rule_active_[i]) {
          AlertFiring firing;
          firing.sample_seq = sample.seq;
          firing.t_us = sample.t_us;
          firing.rule = rules_[i].name;
          firing.detail =
              rules_[i].describe ? rules_[i].describe(sample) : std::string();
          if (firings_.size() == options_.firing_capacity) {
            firings_.erase(firings_.begin());
          }
          firings_.push_back(firing);
          fired.push_back(firing);
        }
        rule_active_[i] = holds;
      }
    }
    prev_ = sample;
    have_prev_ = true;
    if (ring_.size() == options_.ring_capacity) ring_.erase(ring_.begin());
    ring_.push_back(sample);
    if (!fired.empty()) callbacks = callbacks_;
  }
  // Events and subscriber callbacks run outside the sampler lock so a
  // callback may call back into Samples()/Firings().
  for (const AlertFiring& firing : fired) {
    ASR_EVENT(EventKind::kAlert, firing.rule + " " + firing.detail);
    for (const auto& callback : callbacks) callback(firing);
  }
#endif
  return sample;
}

std::vector<TelemetrySample> TelemetrySampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

bool TelemetrySampler::Latest(TelemetrySample* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return false;
  *out = ring_.back();
  return true;
}

std::vector<AlertFiring> TelemetrySampler::Firings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return firings_;
}

uint64_t TelemetrySampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void TelemetrySampler::WriteJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("interval_ms");
  json->UInt(options_.interval_ms);
  json->Key("samples");
  json->BeginArray();
  for (const TelemetrySample& s : ring_) {
    json->BeginObject();
    json->Key("seq");
    json->UInt(s.seq);
    json->Key("t_us");
    json->UInt(s.t_us);
    json->Key("dt_us");
    json->UInt(s.dt_us);
    json->Key("counters");
    json->BeginObject();
    for (const auto& [name, value] : s.counters) {
      json->Key(name);
      json->UInt(value);
    }
    json->EndObject();
    json->Key("rates");
    json->BeginObject();
    for (const auto& [name, value] : s.rates) {
      json->Key(name);
      json->Double(value);
    }
    json->EndObject();
    json->Key("p99_us");
    json->BeginObject();
    for (const auto& [name, snap] : s.histograms) {
      json->Key(name);
      json->UInt(snap.P99());
    }
    json->EndObject();
    json->EndObject();
  }
  json->EndArray();
  json->Key("alerts");
  json->BeginArray();
  for (const AlertFiring& firing : firings_) {
    json->BeginObject();
    json->Key("sample_seq");
    json->UInt(firing.sample_seq);
    json->Key("t_us");
    json->UInt(firing.t_us);
    json->Key("rule");
    json->String(firing.rule);
    json->Key("detail");
    json->String(firing.detail);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

std::string TelemetrySampler::ToJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.TakeString();
}

}  // namespace asr::obs
