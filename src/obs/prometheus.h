// Prometheus text exposition (format 0.0.4) beside the JSON export.
//
// Renders a MetricsRegistry as scrape-ready text: every counter becomes an
// `asr_`-prefixed counter sample, every HistogramSnapshot becomes the
// standard cumulative `_bucket{le="..."}` series plus `_sum`/`_count`,
// with bucket bounds taken from the registry's power-of-two geometry.
// Metric names are sanitized (dots and other non-identifier characters
// become underscores) so registry names like "storage.read.pages" expose
// as "asr_storage_read_pages".
#ifndef ASR_OBS_PROMETHEUS_H_
#define ASR_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace asr::obs {

// "asr_" + name with every character outside [a-zA-Z0-9_] replaced by '_'.
std::string PrometheusMetricName(const std::string& name);

// Appends the exposition for one histogram under the (already sanitized)
// metric name.
void AppendPrometheusHistogram(const std::string& metric,
                               const HistogramSnapshot& snap,
                               std::string* out);

// Full registry -> exposition text, counters then histograms, each with a
// # TYPE header.
std::string ToPrometheusText(const MetricsRegistry& registry);

}  // namespace asr::obs

#endif  // ASR_OBS_PROMETHEUS_H_
