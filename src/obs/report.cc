#include "obs/report.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace asr::obs {

double DriftRow::RelError() const {
  if (!has_observed) return 0.0;
  if (model == 0.0) return observed == 0.0 ? 0.0 : INFINITY;
  return std::fabs(observed - model) / std::fabs(model);
}

void DriftReport::AddModelRow(const std::string& op, double model) {
  DriftRow row;
  row.op = op;
  row.model = model;
  rows_.push_back(std::move(row));
}

void DriftReport::AddRow(const std::string& op, double model,
                         double observed) {
  DriftRow row;
  row.op = op;
  row.model = model;
  row.observed = observed;
  row.has_observed = true;
  rows_.push_back(std::move(row));
}

void DriftReport::AddMeta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

double DriftReport::MaxRelError() const {
  double worst = 0.0;
  for (const DriftRow& row : rows_) {
    if (row.has_observed) worst = std::max(worst, row.RelError());
  }
  return worst;
}

std::string DriftReport::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String(bench_);
  json.Key("profile");
  json.String(profile_);
  if (!meta_.empty()) {
    json.Key("meta");
    json.BeginObject();
    for (const auto& [key, value] : meta_) {
      json.Key(key);
      json.String(value);
    }
    json.EndObject();
  }
  json.Key("rows");
  json.BeginArray();
  for (const DriftRow& row : rows_) {
    json.BeginObject();
    json.Key("op");
    json.String(row.op);
    json.Key("model");
    json.Double(row.model);
    if (row.has_observed) {
      json.Key("observed");
      json.Double(row.observed);
      json.Key("rel_error");
      json.Double(row.RelError());  // infinity degrades to null
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("metrics");
  metrics_.WriteJson(&json);
  json.EndObject();
  return json.TakeString();
}

bool DriftReport::WriteFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string body = ToJson();
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  bool ok = written == body.size();
  ok = (std::fputc('\n', f) != EOF) && ok;
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

}  // namespace asr::obs
