// Database: one self-contained unit of schema + simulated disk + buffer
// manager + object store, with snapshot persistence to a single file.
//
// Access support relations are derived structures; they are rebuilt (cheaply,
// relative to their maintenance value) after opening a snapshot rather than
// persisted — the same policy as for any secondary index whose base data is
// durable.
#ifndef ASR_GOM_DATABASE_H_
#define ASR_GOM_DATABASE_H_

#include <memory>
#include <string>

#include "gom/object_store.h"
#include "gom/type_system.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"

namespace asr::gom {

class Database {
 public:
  // A fresh, empty database. Define types via schema(), then create objects.
  // `disk` picks the storage backend (default: the environment, like a bare
  // Disk — see storage/backend.h).
  static std::unique_ptr<Database> Create(
      size_t buffer_capacity = 256,
      const storage::DiskOptions& disk = storage::DiskOptions::FromEnv());

  // Opens a snapshot previously written by Save(). Snapshots are
  // backend-independent: any `disk` options can open any snapshot.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& file, size_t buffer_capacity = 256,
      const storage::DiskOptions& disk = storage::DiskOptions::FromEnv());

  // Writes the full database (schema, pages, store metadata) to `file`,
  // flushing buffered pages first. The snapshot is self-contained.
  Status Save(const std::string& file);

  Schema* schema() { return &schema_; }
  ObjectStore* store() { return &store_; }
  storage::Disk* disk() { return &disk_; }
  storage::BufferManager* buffers() { return &buffers_; }

 private:
  Database(size_t buffer_capacity, const storage::DiskOptions& disk)
      : disk_(disk), buffers_(&disk_, buffer_capacity),
        store_(&schema_, &buffers_) {}

  Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  ObjectStore store_;
};

}  // namespace asr::gom

#endif  // ASR_GOM_DATABASE_H_
