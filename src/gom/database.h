// Database: one self-contained unit of schema + simulated disk + buffer
// manager + object store, with snapshot persistence to a single file.
//
// Access support relations are derived structures; they are rebuilt (cheaply,
// relative to their maintenance value) after opening a snapshot rather than
// persisted — the same policy as for any secondary index whose base data is
// durable.
//
// The durable contract is checkpoint + log: SaveDurable() writes the snapshot
// through the tmp-file/fsync/atomic-rename/directory-fsync discipline, and
// AttachWal() opens a write-ahead log for everything since — the maintenance
// journal's records plus any application redo records sharing the file. After
// a process death, Open(snapshot) + AttachWal(log) reconstructs the pre-crash
// state: the snapshot restores the pages, replayed_wal() hands back the log
// records for the application and journal to re-apply.
#ifndef ASR_GOM_DATABASE_H_
#define ASR_GOM_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "gom/object_store.h"
#include "gom/type_system.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/mvcc.h"
#include "storage/wal.h"

namespace asr::gom {

class Database {
 public:
  // A fresh, empty database. Define types via schema(), then create objects.
  // `disk` picks the storage backend (default: the environment, like a bare
  // Disk — see storage/backend.h).
  static std::unique_ptr<Database> Create(
      size_t buffer_capacity = 256,
      const storage::DiskOptions& disk = storage::DiskOptions::FromEnv());

  // Opens a snapshot previously written by Save(). Snapshots are
  // backend-independent: any `disk` options can open any snapshot.
  static Result<std::unique_ptr<Database>> Open(
      const std::string& file, size_t buffer_capacity = 256,
      const storage::DiskOptions& disk = storage::DiskOptions::FromEnv());

  // Writes the full database (schema, pages, store metadata) to `file`,
  // flushing buffered pages first. The snapshot is self-contained.
  Status Save(const std::string& file);

  // Save() with a real durability point: the snapshot is written to a
  // temporary sibling, fsynced, atomically renamed over `file`, and the
  // parent directory fsynced so the rename itself survives. A crash at any
  // point leaves either the complete old snapshot or the complete new one —
  // never a torn file under the final name.
  Status SaveDurable(const std::string& file);

  // Opens (creating if absent) a write-ahead log at `path`. Records already
  // in the file — from the run that died — are collected into
  // replayed_wal() for the caller to re-apply, and any torn or corrupt tail
  // is truncated. The log stays owned by the database; borrow it via wal()
  // to append (e.g. MaintenanceJournal::AttachWal).
  Status AttachWal(const std::string& path);
  storage::WriteAheadLog* wal() { return wal_.get(); }
  const std::vector<std::string>& replayed_wal() const {
    return replayed_wal_;
  }

  Schema* schema() { return &schema_; }
  ObjectStore* store() { return &store_; }
  storage::Disk* disk() { return &disk_; }
  storage::BufferManager* buffers() { return &buffers_; }

  // Creates the page-version manager and attaches it to the disk — the
  // prerequisite for transactional ASR maintenance and consistent-epoch
  // snapshot reads (storage/mvcc.h). Idempotent. Segments stay on the
  // byte-identical legacy path until something registers them
  // (AsrOptions::transactional does this for partition tree segments). When
  // a WAL is attached (before or after this call), transaction commits
  // append their epoch record to it.
  storage::MvccManager* EnableMvcc() {
    if (mvcc_ == nullptr) {
      mvcc_ = std::make_unique<storage::MvccManager>();
      disk_.AttachMvcc(mvcc_.get());
      if (wal_ != nullptr) mvcc_->AttachWal(wal_.get());
    }
    return mvcc_.get();
  }
  storage::MvccManager* mvcc() { return mvcc_.get(); }

 private:
  Database(size_t buffer_capacity, const storage::DiskOptions& disk)
      : disk_(disk), buffers_(&disk_, buffer_capacity),
        store_(&schema_, &buffers_) {}

  Schema schema_;
  storage::Disk disk_;
  storage::BufferManager buffers_;
  ObjectStore store_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::vector<std::string> replayed_wal_;
  std::unique_ptr<storage::MvccManager> mvcc_;
};

}  // namespace asr::gom

#endif  // ASR_GOM_DATABASE_H_
