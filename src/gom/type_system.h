// The type system of the Generic Object Model (GOM), paper §2.
//
// GOM provides: elementary value types (instances have no identity), the
// tuple constructor with named attributes, set and list collection
// constructors, subtyping with single and multiple inheritance, and strong
// typing where a declared attribute type is an upper bound — the referenced
// instance may be of any subtype (§2, "strong typing").
//
// Lists are supported and handled exactly like sets by the access-support
// machinery, following the paper: "the access support on ordered
// collections, i.e., lists, is analogous to sets" (§2.1).
#ifndef ASR_GOM_TYPE_SYSTEM_H_
#define ASR_GOM_TYPE_SYSTEM_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/oid.h"
#include "common/status.h"

namespace asr::gom {

enum class TypeKind {
  kAtomic,  // built-in value types: instances are their own identity
  kTuple,   // [a1: t1, ..., an: tn]
  kSet,     // {t}
  kList,    // <t>, ordered with duplicates
};

enum class AtomicKind {
  kInt,      // INTEGER / CHAR (codepoint)
  kDecimal,  // DECIMAL, fixed-point scaled by 100 (e.g. Price 1205.50)
  kString,   // STRING, interned
};

// One declared or inherited attribute of a tuple type.
struct Attribute {
  std::string name;
  TypeId range_type = kInvalidTypeId;
  // Type that introduced the attribute (differs from the owner for inherited
  // attributes).
  TypeId declared_in = kInvalidTypeId;
};

// Registry of all types of one database schema. Type ids are dense indices,
// stable for the schema's lifetime. The built-in atomic types are
// pre-registered (kIntType, kDecimalType, kStringType).
class Schema {
 public:
  Schema();
  ASR_DISALLOW_COPY_AND_ASSIGN(Schema);

  static constexpr TypeId kIntType = 0;
  static constexpr TypeId kDecimalType = 1;
  static constexpr TypeId kStringType = 2;
  static constexpr TypeId kFirstUserType = 3;

  // type t is supertypes (s1, ..., sm) [a1: t1, ..., an: tn]
  // Inherited attributes precede own attributes in index order; attribute
  // names must be pairwise distinct across the flattened list (§2.1).
  Result<TypeId> DefineTupleType(const std::string& name,
                                 const std::vector<TypeId>& supertypes,
                                 const std::vector<Attribute>& attributes);

  // type t is {s}
  Result<TypeId> DefineSetType(const std::string& name, TypeId element_type);

  // type t is <s> — an ordered collection with duplicates (§2.1). Access
  // support treats lists exactly like sets.
  Result<TypeId> DefineListType(const std::string& name, TypeId element_type);

  // --- Introspection ---------------------------------------------------
  bool IsValidType(TypeId t) const { return t < types_.size(); }
  TypeKind kind(TypeId t) const;
  AtomicKind atomic_kind(TypeId t) const;
  const std::string& name(TypeId t) const;
  Result<TypeId> FindType(const std::string& name) const;

  bool IsTuple(TypeId t) const { return kind(t) == TypeKind::kTuple; }
  bool IsSet(TypeId t) const { return kind(t) == TypeKind::kSet; }
  bool IsList(TypeId t) const { return kind(t) == TypeKind::kList; }
  // Sets and lists: the collection hops of path expressions.
  bool IsCollection(TypeId t) const { return IsSet(t) || IsList(t); }
  bool IsAtomic(TypeId t) const { return kind(t) == TypeKind::kAtomic; }

  // Element type of a set or list type.
  TypeId element_type(TypeId collection_type) const;

  // Flattened attribute list of a tuple type (inherited first).
  const std::vector<Attribute>& attributes(TypeId tuple_type) const;

  // Index into attributes(t) or NotFound.
  Result<uint32_t> FindAttribute(TypeId tuple_type,
                                 const std::string& attr_name) const;

  // Direct supertypes as declared.
  const std::vector<TypeId>& supertypes(TypeId tuple_type) const;

  // Reflexive-transitive subtype test: every instance of `sub` may stand
  // where `super` is expected.
  bool IsSubtypeOf(TypeId sub, TypeId super) const;

  size_t type_count() const { return types_.size(); }

  // Snapshot support: user types are replayed through the Define* calls, so
  // type ids are preserved. Deserialize requires a fresh schema.
  void Serialize(std::ostream* out) const;
  Status Deserialize(std::istream* in);

 private:
  struct TypeInfo {
    std::string name;
    TypeKind type_kind;
    AtomicKind atomic;                  // kAtomic only
    TypeId element = kInvalidTypeId;    // kSet / kList only
    std::vector<TypeId> supertypes;     // kTuple only
    std::vector<Attribute> attributes;  // kTuple only; flattened
    std::unordered_set<TypeId> ancestors;  // reflexive-transitive, kTuple
  };

  Result<TypeId> AddType(TypeInfo info);

  std::vector<TypeInfo> types_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace asr::gom

#endif  // ASR_GOM_TYPE_SYSTEM_H_
