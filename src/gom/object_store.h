// Page-based store of GOM object instances.
//
// An object instance is a triple (i, v, t): identifier, value, type (§2).
// Objects are clustered by type — one disk segment per type — which is the
// clustering assumption behind the paper's op_i = ceil(c_i / opp_i) page
// estimate (Eq. 17/18). References are uni-directional (Fig. 1): an object
// stores the OIDs it references and nothing points back, which is what makes
// unsupported backward queries exhaustive searches (§5.6.2).
//
// Record layouts inside slotted pages (all little-endian, 8-byte columns so
// records stay fixed width per type):
//   tuple: [oid:u64][attr value AsrKey:u64 x n_attrs][padding]
//   set:   [oid:u64][count:u32][unused:u32][member AsrKey:u64 x cap][padding]
// A set's capacity is derived from its record length; growth relocates the
// record. SetObjectSize() pads records up to a configured physical size so
// synthetic workloads can realize the paper's size_i parameter exactly.
#ifndef ASR_GOM_OBJECT_STORE_H_
#define ASR_GOM_OBJECT_STORE_H_

#include <deque>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/asr_key.h"
#include "common/oid.h"
#include "common/status.h"
#include "common/string_dict.h"
#include "gom/type_system.h"
#include "storage/buffer_manager.h"

namespace asr::gom {

// Decoded snapshot of one tuple object.
struct TupleView {
  Oid oid;
  std::vector<AsrKey> attrs;
};

// Decoded snapshot of one set instance.
struct SetView {
  Oid oid;
  std::vector<AsrKey> members;
};

// Concurrency: the store is a shared conflict surface for the multi-writer
// ASR maintenance path, so public operations take an internal reader/writer
// lock for their full duration (content access included — disjoint objects
// share pages). The lock is re-entrancy-aware through a thread-local mode:
// a public method called from inside another's callback (e.g. SetContains
// inside a ScanWithTargets visitor) piggybacks on the already-held lock
// instead of self-deadlocking. Escalating from inside a read (a mutation
// called from a scan callback) is a programming error and aborts. The
// fields below are guarded by this discipline rather than per-field
// ASR_GUARDED_BY annotations, which cannot express a re-entrant guard.
class ObjectStore {
 public:
  ObjectStore(const Schema* schema, storage::BufferManager* buffers);
  ASR_DISALLOW_COPY_AND_ASSIGN(ObjectStore);

  const Schema& schema() const { return *schema_; }
  StringDict* string_dict() { return &dict_; }
  const StringDict& string_dict() const { return dict_; }

  // Pads records of `type` to at least `bytes` (the paper's size_i).
  // Must be called before the first object of the type is created.
  void SetObjectSize(TypeId type, uint32_t bytes);

  // Stores objects of `type` in the segment of `with` (both created
  // back-to-back land on the same page). Used to co-locate set instances
  // with their owning objects so that a set-valued reference behaves like
  // the in-object reference list the cost model assumes. Must be called
  // before the first object of either type is created.
  void ColocateType(TypeId type, TypeId with);

  // --- Instantiation (§2, "instantiation") ------------------------------
  // New tuple object with all attributes NULL.
  Result<Oid> CreateObject(TypeId tuple_type);
  // New empty set instance.
  Result<Oid> CreateSet(TypeId set_type);
  // Removes an object; dangling references to it keep their OID (the store
  // does not chase them, matching uni-directional references).
  Status DeleteObject(Oid oid);

  bool Exists(Oid oid) const;

  // --- Tuple attribute access -------------------------------------------
  Result<AsrKey> GetAttribute(Oid oid, uint32_t attr_index);
  Result<AsrKey> GetAttributeByName(Oid oid, const std::string& attr_name);
  // Strongly typed write: `value` must conform to the attribute's declared
  // range type (subtype instances allowed; NULL always allowed).
  Status SetAttribute(Oid oid, uint32_t attr_index, AsrKey value);
  Status SetAttributeByName(Oid oid, const std::string& attr_name,
                            AsrKey value);

  // Typed conveniences used by the examples.
  Status SetString(Oid oid, const std::string& attr_name,
                   std::string_view value);
  Result<std::string> GetString(Oid oid, const std::string& attr_name);
  Status SetInt(Oid oid, const std::string& attr_name, int64_t value);
  // DECIMAL values are fixed-point with two digits (1205.50 -> 120550).
  Status SetDecimal(Oid oid, const std::string& attr_name, double value);
  Status SetRef(Oid oid, const std::string& attr_name, Oid target);

  // One page access; decodes the whole tuple.
  Result<TupleView> GetTuple(Oid oid);

  // Batched fetch: groups `oids` by page and pins each containing page once
  // — the Yao-style retrieval pattern the analytical model assumes when k
  // objects are read from m pages (y(k, m, n), §5.6). Order of results is
  // unspecified; unknown/deleted OIDs yield NotFound.
  Result<std::vector<TupleView>> GetTuples(std::vector<Oid> oids);
  Result<std::vector<SetView>> GetSets(std::vector<Oid> oids);

  // Navigational join primitive: reads the `attr_name` targets of every
  // tuple in `oids`, expanding set-valued attributes. Owners are fetched
  // page-batched; a set instance co-located on its owner's page is decoded
  // from the already-pinned page, others are fetched page-batched
  // afterwards. Result: one (owner, targets) entry per input with a defined
  // attribute (empty sets yield an empty target list).
  Result<std::vector<std::pair<Oid, std::vector<AsrKey>>>> GetAttributeTargets(
      std::vector<Oid> oids, const std::string& attr_name);

  // Extent-scan variant of GetAttributeTargets: visits every live object of
  // exactly `type` in page order, expanding `attr_name`. Objects with a NULL
  // attribute are skipped.
  Status ScanWithTargets(
      TypeId type, const std::string& attr_name,
      const std::function<Status(Oid, const std::vector<AsrKey>&)>& fn);

  // --- Set access ---------------------------------------------------------
  Status AddToSet(Oid set_oid, AsrKey member);
  Status RemoveFromSet(Oid set_oid, AsrKey member);
  // Works for sets and lists (lists report members in order).
  Result<SetView> GetSet(Oid collection_oid);
  Result<bool> SetContains(Oid collection_oid, AsrKey member);

  // --- List access ----------------------------------------------------------
  // Lists are ordered and admit duplicates; otherwise they behave like sets
  // (§2.1) and share the same record format and overflow chaining.
  Result<Oid> CreateList(TypeId list_type);
  Status ListAppend(Oid list_oid, AsrKey element);
  // Removes the element at `index` (0-based), preserving order.
  Status ListRemoveAt(Oid list_oid, uint32_t index);
  Result<uint64_t> ListLength(Oid list_oid);

  // --- Extent scans ---------------------------------------------------------
  // Visits every live tuple object of exactly `type` in page order; each
  // page is pinned once for the whole page's objects (matching the op_i
  // page-access count of an exhaustive scan).
  Status ScanTuples(TypeId type,
                    const std::function<Status(const TupleView&)>& fn);
  Status ScanSets(TypeId type,
                  const std::function<Status(const SetView&)>& fn);

  // --- Statistics -----------------------------------------------------------
  uint64_t ObjectCount(TypeId type) const;   // live objects, c_i realized
  uint32_t PageCount(TypeId type) const;     // op_i realized
  // Disk segment holding `type`'s records, or -1 while the type has none
  // yet. Introspection for the invariant checker (which walks every segment
  // page); co-located types report the shared segment.
  int64_t SegmentOf(TypeId type) const;
  storage::BufferManager* buffers() { return buffers_; }

  // Validates store invariants: every live location resolves to a live slot
  // whose record carries the expected OID, overflow chains reference live
  // continuation records of their set, and live counts match. Intended for
  // tests and after snapshot loads.
  Status CheckConsistency();

  // --- Snapshot support -------------------------------------------------
  // Serializes the store's metadata (type states, locations, overflow
  // chains, string dictionary). The page data itself lives in the Disk;
  // flush the buffer manager before serializing. Deserialize requires a
  // fresh store over the already-deserialized disk/schema.
  void SerializeMetadata(std::ostream* out) const;
  Status DeserializeMetadata(std::istream* in);

 private:
  class ReadGuard;
  class WriteGuard;

  struct Location {
    uint32_t page_no = UINT32_MAX;
    uint16_t slot = 0;
    bool live = false;
  };

  struct TypeState {
    uint32_t segment = UINT32_MAX;
    uint32_t pad_bytes = 0;
    TypeId colocate_with = kInvalidTypeId;
    uint64_t live_count = 0;
    std::vector<Location> locations;  // indexed by seq - 1
    // Overflow chain records of large set instances (keyed by the set's
    // sequence number, in chain order). Continuation records live in the
    // same segment, marked by a flag bit in their count field.
    std::unordered_map<uint64_t, std::vector<Location>> overflow;
  };

  TypeState& State(TypeId type);
  const TypeState* StateOrNull(TypeId type) const;
  uint32_t EnsureSegment(TypeId type);

  // Places a fresh record and returns its location.
  Location PlaceRecord(TypeId type, const std::vector<std::byte>& record);

  Result<Location> Locate(Oid oid) const;

  uint32_t TupleRecordBytes(TypeId type) const;

  Status CheckAttributeValue(TypeId tuple_type, const Attribute& attr,
                             AsrKey value);

  // True when `set_oid` has continuation records (its members span several
  // records; inline single-page decoding does not apply).
  bool SetHasOverflow(Oid set_oid) const;

  // Reads all members of a set, following the overflow chain (one page pin
  // per chain record).
  Result<std::vector<AsrKey>> ReadSetChain(Oid set_oid);

  const Schema* schema_;
  storage::BufferManager* buffers_;
  // Reader/writer lock over dict_, the TypeState contents, segment_fill_,
  // and the pages they describe; see the class comment for the re-entrancy
  // discipline.
  mutable std::shared_mutex mu_;
  // Guards only the deque's *growth* (lazy per-type slots): readers index
  // concurrently under mu_'s shared side, and deque references are stable
  // across emplace_back, so growth needs its own tiny lock, not exclusivity
  // over the whole store.
  mutable std::mutex states_mu_;
  StringDict dict_;
  mutable std::deque<TypeState> states_;  // indexed by TypeId
  // Last page with potential free space, per segment (segments may be
  // shared by co-located types).
  std::unordered_map<uint32_t, uint32_t> segment_fill_;
};

}  // namespace asr::gom

#endif  // ASR_GOM_OBJECT_STORE_H_
