#include "gom/object_store.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/binary_io.h"
#include "storage/slotted_page.h"

namespace asr::gom {

namespace {

using storage::Page;
using storage::PageGuard;
using storage::PageId;
using storage::SlottedPage;

constexpr uint32_t kOidBytes = 8;
constexpr uint32_t kSetHeaderBytes = kOidBytes + 8;  // oid + count + unused
// High bit of the count field marks a continuation record of a set's
// overflow chain; the low 31 bits are the record's member count.
constexpr uint32_t kContinuationFlag = 0x80000000u;
// Largest record a slotted page can hold.
constexpr uint32_t kMaxRecordBytes =
    storage::kPageSize - SlottedPage::kHeaderSize - SlottedPage::kSlotSize;

uint64_t ReadU64(const std::vector<std::byte>& rec, uint32_t off) {
  uint64_t v;
  std::memcpy(&v, rec.data() + off, 8);
  return v;
}

void WriteU64(std::vector<std::byte>* rec, uint32_t off, uint64_t v) {
  std::memcpy(rec->data() + off, &v, 8);
}

uint32_t ReadU32(const std::vector<std::byte>& rec, uint32_t off) {
  uint32_t v;
  std::memcpy(&v, rec.data() + off, 4);
  return v;
}

void WriteU32(std::vector<std::byte>* rec, uint32_t off, uint32_t v) {
  std::memcpy(rec->data() + off, &v, 4);
}

// Which store (if any) the current thread already holds locked, and how.
// Saved/restored by the guards, so nested guards across different stores
// behave like a stack without materializing one.
enum class LockMode { kNone, kShared, kExclusive };
struct ThreadLockState {
  const void* store = nullptr;
  LockMode mode = LockMode::kNone;
};
thread_local ThreadLockState t_store_lock;

}  // namespace

// Shared (reader) side of the store lock; no-op when this thread already
// holds the store in either mode (a read nested in a scan callback or
// inside a mutation is served by the outer lock).
class ObjectStore::ReadGuard {
 public:
  explicit ReadGuard(const ObjectStore* store) : prev_(t_store_lock) {
    if (t_store_lock.store != store) {
      store->mu_.lock_shared();
      locked_ = store;
      t_store_lock = {store, LockMode::kShared};
    }
  }
  ~ReadGuard() {
    if (locked_ != nullptr) {
      t_store_lock = prev_;
      locked_->mu_.unlock_shared();
    }
  }
  ASR_DISALLOW_COPY_AND_ASSIGN(ReadGuard);

 private:
  ThreadLockState prev_;
  const ObjectStore* locked_ = nullptr;
};

// Exclusive (writer) side. Re-entrant under an exclusive hold; escalating
// from inside a shared hold (a mutation called from a read callback) would
// deadlock or race, so it aborts instead.
class ObjectStore::WriteGuard {
 public:
  explicit WriteGuard(ObjectStore* store) : prev_(t_store_lock) {
    if (t_store_lock.store == store) {
      ASR_CHECK(t_store_lock.mode == LockMode::kExclusive);
      return;
    }
    store->mu_.lock();
    locked_ = store;
    t_store_lock = {store, LockMode::kExclusive};
  }
  ~WriteGuard() {
    if (locked_ != nullptr) {
      t_store_lock = prev_;
      locked_->mu_.unlock();
    }
  }
  ASR_DISALLOW_COPY_AND_ASSIGN(WriteGuard);

 private:
  ThreadLockState prev_;
  ObjectStore* locked_ = nullptr;
};

ObjectStore::ObjectStore(const Schema* schema,
                         storage::BufferManager* buffers)
    : schema_(schema), buffers_(buffers) {}

ObjectStore::TypeState& ObjectStore::State(TypeId type) {
  ASR_CHECK(schema_->IsValidType(type));
  // Growth happens under its own lock so read paths (shared holders of mu_)
  // can materialize a type's slot concurrently; deque references stay
  // stable across emplace_back, so outstanding TypeState& remain valid.
  std::lock_guard<std::mutex> lock(states_mu_);
  while (states_.size() <= type) states_.emplace_back();
  return states_[type];
}

const ObjectStore::TypeState* ObjectStore::StateOrNull(TypeId type) const {
  std::lock_guard<std::mutex> lock(states_mu_);
  if (type >= states_.size()) return nullptr;
  return &states_[type];
}

uint32_t ObjectStore::EnsureSegment(TypeId type) {
  TypeState& state = State(type);
  if (state.segment == UINT32_MAX) {
    if (state.colocate_with != kInvalidTypeId) {
      state.segment = EnsureSegment(state.colocate_with);
    } else {
      state.segment =
          buffers_->disk()->CreateSegment("type:" + schema_->name(type));
    }
  }
  return state.segment;
}

void ObjectStore::ColocateType(TypeId type, TypeId with) {
  WriteGuard store_guard(this);
  TypeState& state = State(type);
  ASR_CHECK(state.locations.empty() && state.segment == UINT32_MAX);
  ASR_CHECK(type != with);
  state.colocate_with = with;
}

void ObjectStore::SetObjectSize(TypeId type, uint32_t bytes) {
  WriteGuard store_guard(this);
  TypeState& state = State(type);
  ASR_CHECK(state.locations.empty());
  ASR_CHECK(bytes <= kMaxRecordBytes);
  state.pad_bytes = bytes;
}

uint32_t ObjectStore::TupleRecordBytes(TypeId type) const {
  uint32_t natural =
      kOidBytes + 8 * static_cast<uint32_t>(schema_->attributes(type).size());
  const TypeState* state = StateOrNull(type);
  uint32_t pad = state != nullptr ? state->pad_bytes : 0;
  return std::max(natural, pad);
}

ObjectStore::Location ObjectStore::PlaceRecord(
    TypeId type, const std::vector<std::byte>& record) {
  uint32_t segment = EnsureSegment(type);
  ASR_CHECK(record.size() <= kMaxRecordBytes);
  uint16_t len = static_cast<uint16_t>(record.size());

  // Try the segment's current fill page, else start a fresh one. Hole reuse
  // inside SlottedPage::Insert keeps same-size-record segments packed after
  // churn.
  auto fill = segment_fill_.find(segment);
  if (fill != segment_fill_.end()) {
    PageGuard guard = buffers_->Pin(PageId{segment, fill->second});
    if (SlottedPage::Fits(guard.page(), len)) {
      int slot = SlottedPage::Insert(&guard.page(), record.data(), len);
      ASR_CHECK(slot >= 0);
      guard.MarkDirty();
      return Location{fill->second, static_cast<uint16_t>(slot), true};
    }
  }
  PageGuard guard = buffers_->AllocatePinned(segment);
  SlottedPage::Init(&guard.page());
  int slot = SlottedPage::Insert(&guard.page(), record.data(), len);
  ASR_CHECK(slot >= 0);
  guard.MarkDirty();
  segment_fill_[segment] = guard.id().page_no;
  return Location{guard.id().page_no, static_cast<uint16_t>(slot), true};
}

Result<Oid> ObjectStore::CreateObject(TypeId tuple_type) {
  WriteGuard store_guard(this);
  if (!schema_->IsValidType(tuple_type) || !schema_->IsTuple(tuple_type)) {
    return Status::TypeError("CreateObject requires a tuple type");
  }
  TypeState& state = State(tuple_type);
  uint64_t seq = state.locations.size() + 1;
  Oid oid = Oid::Make(tuple_type, seq);

  // All attributes start NULL (§2, "instantiation").
  std::vector<std::byte> record(TupleRecordBytes(tuple_type), std::byte{0});
  WriteU64(&record, 0, oid.raw());
  Location loc = PlaceRecord(tuple_type, record);
  state.locations.push_back(loc);
  ++state.live_count;
  return oid;
}

Result<Oid> ObjectStore::CreateList(TypeId list_type) {
  WriteGuard store_guard(this);
  if (!schema_->IsValidType(list_type) || !schema_->IsList(list_type)) {
    return Status::TypeError("CreateList requires a list type");
  }
  // Lists share the collection record format.
  TypeState& state = State(list_type);
  uint64_t seq = state.locations.size() + 1;
  Oid oid = Oid::Make(list_type, seq);
  uint32_t bytes = std::max(kSetHeaderBytes,
                            state.pad_bytes != 0 ? state.pad_bytes : 0u);
  std::vector<std::byte> record(bytes, std::byte{0});
  WriteU64(&record, 0, oid.raw());
  WriteU32(&record, kOidBytes, 0);
  Location loc = PlaceRecord(list_type, record);
  state.locations.push_back(loc);
  ++state.live_count;
  return oid;
}

Result<Oid> ObjectStore::CreateSet(TypeId set_type) {
  WriteGuard store_guard(this);
  if (!schema_->IsValidType(set_type) || !schema_->IsSet(set_type)) {
    return Status::TypeError("CreateSet requires a set type");
  }
  TypeState& state = State(set_type);
  uint64_t seq = state.locations.size() + 1;
  Oid oid = Oid::Make(set_type, seq);

  uint32_t bytes = std::max(kSetHeaderBytes,
                            state.pad_bytes != 0 ? state.pad_bytes : 0u);
  std::vector<std::byte> record(bytes, std::byte{0});
  WriteU64(&record, 0, oid.raw());
  WriteU32(&record, kOidBytes, 0);  // count
  Location loc = PlaceRecord(set_type, record);
  state.locations.push_back(loc);
  ++state.live_count;
  return oid;
}

Result<ObjectStore::Location> ObjectStore::Locate(Oid oid) const {
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  const TypeState* state = StateOrNull(oid.type_id());
  if (state == nullptr || oid.seq() == 0 ||
      oid.seq() > state->locations.size()) {
    return Status::NotFound("unknown object " + oid.ToString());
  }
  Location loc = state->locations[oid.seq() - 1];
  if (!loc.live) return Status::NotFound("deleted object " + oid.ToString());
  return loc;
}

bool ObjectStore::Exists(Oid oid) const {
  ReadGuard store_guard(this);
  return Locate(oid).ok();
}

Status ObjectStore::DeleteObject(Oid oid) {
  WriteGuard store_guard(this);
  Result<Location> loc = Locate(oid);
  ASR_RETURN_IF_ERROR(loc.status());
  TypeState& state = State(oid.type_id());
  {
    PageGuard guard = buffers_->Pin(PageId{state.segment, loc->page_no});
    SlottedPage::Delete(&guard.page(), loc->slot);
    guard.MarkDirty();
  }
  // A set's overflow chain goes with it.
  auto overflow_it = state.overflow.find(oid.seq());
  if (schema_->IsSet(oid.type_id()) && overflow_it != state.overflow.end()) {
    for (const Location& cont : overflow_it->second) {
      PageGuard guard = buffers_->Pin(PageId{state.segment, cont.page_no});
      SlottedPage::Delete(&guard.page(), cont.slot);
      guard.MarkDirty();
    }
    state.overflow.erase(overflow_it);
  }
  state.locations[oid.seq() - 1].live = false;
  --state.live_count;
  return Status::OK();
}

Result<AsrKey> ObjectStore::GetAttribute(Oid oid, uint32_t attr_index) {
  ReadGuard store_guard(this);
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  TypeId type = oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsTuple(type)) {
    return Status::TypeError("not a tuple object: " + oid.ToString());
  }
  if (attr_index >= schema_->attributes(type).size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  Result<Location> loc = Locate(oid);
  ASR_RETURN_IF_ERROR(loc.status());
  const TypeState& state = State(type);
  PageGuard guard = buffers_->Pin(PageId{state.segment, loc->page_no});
  std::vector<std::byte> record(
      SlottedPage::RecordLength(guard.page(), loc->slot));
  SlottedPage::Read(guard.page(), loc->slot, record.data());
  return AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * attr_index));
}

Result<AsrKey> ObjectStore::GetAttributeByName(Oid oid,
                                               const std::string& attr_name) {
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  Result<uint32_t> idx = schema_->FindAttribute(oid.type_id(), attr_name);
  ASR_RETURN_IF_ERROR(idx.status());
  return GetAttribute(oid, *idx);
}

Status ObjectStore::CheckAttributeValue(TypeId /*tuple_type*/,
                                        const Attribute& attr, AsrKey value) {
  if (value.IsNull()) return Status::OK();
  TypeId range = attr.range_type;
  switch (schema_->kind(range)) {
    case TypeKind::kAtomic: {
      AtomicKind ak = schema_->atomic_kind(range);
      bool ok = (ak == AtomicKind::kString) ? value.IsString() : value.IsInt();
      if (!ok) {
        return Status::TypeError("value does not match atomic type '" +
                                 schema_->name(range) + "' for attribute '" +
                                 attr.name + "'");
      }
      return Status::OK();
    }
    case TypeKind::kTuple: {
      if (!value.IsOid() ||
          !schema_->IsSubtypeOf(value.ToOid().type_id(), range)) {
        return Status::TypeError(
            "reference is not a (subtype) instance of '" +
            schema_->name(range) + "' for attribute '" + attr.name + "'");
      }
      return Status::OK();
    }
    case TypeKind::kSet:
    case TypeKind::kList: {
      // Collection types have no subtypes; the referenced instance must be
      // of the declared type exactly.
      if (!value.IsOid() || value.ToOid().type_id() != range) {
        return Status::TypeError(
            "reference is not an instance of collection type '" +
            schema_->name(range) + "' for attribute '" + attr.name + "'");
      }
      return Status::OK();
    }
  }
  return Status::TypeError("unknown range type kind");
}

Status ObjectStore::SetAttribute(Oid oid, uint32_t attr_index, AsrKey value) {
  WriteGuard store_guard(this);
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  TypeId type = oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsTuple(type)) {
    return Status::TypeError("not a tuple object: " + oid.ToString());
  }
  const auto& attrs = schema_->attributes(type);
  if (attr_index >= attrs.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  ASR_RETURN_IF_ERROR(CheckAttributeValue(type, attrs[attr_index], value));
  Result<Location> loc = Locate(oid);
  ASR_RETURN_IF_ERROR(loc.status());
  const TypeState& state = State(type);
  PageGuard guard = buffers_->Pin(PageId{state.segment, loc->page_no});
  uint16_t len = SlottedPage::RecordLength(guard.page(), loc->slot);
  std::vector<std::byte> record(len);
  SlottedPage::Read(guard.page(), loc->slot, record.data());
  WriteU64(&record, kOidBytes + 8 * attr_index, value.raw());
  SlottedPage::WriteInPlace(&guard.page(), loc->slot, record.data(), len);
  guard.MarkDirty();
  return Status::OK();
}

Status ObjectStore::SetAttributeByName(Oid oid, const std::string& attr_name,
                                       AsrKey value) {
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  Result<uint32_t> idx = schema_->FindAttribute(oid.type_id(), attr_name);
  ASR_RETURN_IF_ERROR(idx.status());
  return SetAttribute(oid, *idx, value);
}

Status ObjectStore::SetString(Oid oid, const std::string& attr_name,
                              std::string_view value) {
  // Exclusive before dict_.Intern (a mutation); the nested SetAttribute
  // piggybacks on this hold.
  WriteGuard store_guard(this);
  return SetAttributeByName(oid, attr_name, AsrKey::FromString(value, &dict_));
}

Result<std::string> ObjectStore::GetString(Oid oid,
                                           const std::string& attr_name) {
  ReadGuard store_guard(this);
  Result<AsrKey> key = GetAttributeByName(oid, attr_name);
  ASR_RETURN_IF_ERROR(key.status());
  if (!key->IsString()) {
    return Status::TypeError("attribute '" + attr_name + "' is not a string");
  }
  return dict_.Get(key->ToStringCode());
}

Status ObjectStore::SetInt(Oid oid, const std::string& attr_name,
                           int64_t value) {
  return SetAttributeByName(oid, attr_name, AsrKey::FromInt(value));
}

Status ObjectStore::SetDecimal(Oid oid, const std::string& attr_name,
                               double value) {
  return SetAttributeByName(
      oid, attr_name, AsrKey::FromInt(std::llround(value * 100.0)));
}

Status ObjectStore::SetRef(Oid oid, const std::string& attr_name, Oid target) {
  return SetAttributeByName(oid, attr_name, AsrKey::FromOid(target));
}

Result<TupleView> ObjectStore::GetTuple(Oid oid) {
  ReadGuard store_guard(this);
  if (oid.IsNull()) return Status::InvalidArgument("NULL OID");
  TypeId type = oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsTuple(type)) {
    return Status::TypeError("not a tuple object: " + oid.ToString());
  }
  Result<Location> loc = Locate(oid);
  ASR_RETURN_IF_ERROR(loc.status());
  const TypeState& state = State(type);
  PageGuard guard = buffers_->Pin(PageId{state.segment, loc->page_no});
  std::vector<std::byte> record(
      SlottedPage::RecordLength(guard.page(), loc->slot));
  SlottedPage::Read(guard.page(), loc->slot, record.data());
  TupleView view;
  view.oid = oid;
  size_t n = schema_->attributes(type).size();
  view.attrs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    view.attrs.push_back(
        AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * i)));
  }
  return view;
}

Result<std::vector<TupleView>> ObjectStore::GetTuples(std::vector<Oid> oids) {
  ReadGuard store_guard(this);
  // Sort by physical placement so each page is pinned exactly once.
  struct Placement {
    Oid oid;
    Location loc;
  };
  std::vector<Placement> placements;
  placements.reserve(oids.size());
  for (Oid oid : oids) {
    if (oid.IsNull() || !schema_->IsValidType(oid.type_id()) ||
        !schema_->IsTuple(oid.type_id())) {
      return Status::TypeError("not a tuple object: " + oid.ToString());
    }
    Result<Location> loc = Locate(oid);
    ASR_RETURN_IF_ERROR(loc.status());
    placements.push_back({oid, *loc});
  }
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.oid.type_id() != b.oid.type_id()) {
                return a.oid.type_id() < b.oid.type_id();
              }
              if (a.loc.page_no != b.loc.page_no) {
                return a.loc.page_no < b.loc.page_no;
              }
              return a.loc.slot < b.loc.slot;
            });
  std::vector<TupleView> out;
  out.reserve(placements.size());
  storage::PageGuard guard;
  storage::PageId pinned = storage::kInvalidPageId;
  for (const Placement& pl : placements) {
    const TypeState& state = State(pl.oid.type_id());
    storage::PageId page_id{state.segment, pl.loc.page_no};
    if (page_id != pinned) {
      guard = buffers_->Pin(page_id);
      pinned = page_id;
    }
    std::vector<std::byte> record(
        storage::SlottedPage::RecordLength(guard.page(), pl.loc.slot));
    storage::SlottedPage::Read(guard.page(), pl.loc.slot, record.data());
    TupleView view;
    view.oid = pl.oid;
    size_t n = schema_->attributes(pl.oid.type_id()).size();
    view.attrs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      view.attrs.push_back(AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * i)));
    }
    out.push_back(std::move(view));
  }
  return out;
}

Result<std::vector<SetView>> ObjectStore::GetSets(std::vector<Oid> oids) {
  ReadGuard store_guard(this);
  struct Placement {
    Oid oid;
    Location loc;
  };
  std::vector<Placement> placements;
  placements.reserve(oids.size());
  for (Oid oid : oids) {
    if (oid.IsNull() || !schema_->IsValidType(oid.type_id()) ||
        !schema_->IsCollection(oid.type_id())) {
      return Status::TypeError("not a collection instance: " +
                               oid.ToString());
    }
    Result<Location> loc = Locate(oid);
    ASR_RETURN_IF_ERROR(loc.status());
    placements.push_back({oid, *loc});
  }
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.oid.type_id() != b.oid.type_id()) {
                return a.oid.type_id() < b.oid.type_id();
              }
              if (a.loc.page_no != b.loc.page_no) {
                return a.loc.page_no < b.loc.page_no;
              }
              return a.loc.slot < b.loc.slot;
            });
  std::vector<SetView> out;
  out.reserve(placements.size());
  storage::PageGuard guard;
  storage::PageId pinned = storage::kInvalidPageId;
  for (const Placement& pl : placements) {
    const TypeState& state = State(pl.oid.type_id());
    storage::PageId page_id{state.segment, pl.loc.page_no};
    if (page_id != pinned) {
      guard = buffers_->Pin(page_id);
      pinned = page_id;
    }
    std::vector<std::byte> record(
        storage::SlottedPage::RecordLength(guard.page(), pl.loc.slot));
    storage::SlottedPage::Read(guard.page(), pl.loc.slot, record.data());
    SetView view;
    view.oid = pl.oid;
    uint32_t count = ReadU32(record, kOidBytes) & ~kContinuationFlag;
    view.members.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      view.members.push_back(
          AsrKey::FromRaw(ReadU64(record, kSetHeaderBytes + 8 * i)));
    }
    out.push_back(std::move(view));
  }
  // Expand overflow chains (extra page pins per continuation record).
  for (SetView& view : out) {
    if (SetHasOverflow(view.oid)) {
      Result<std::vector<AsrKey>> all = ReadSetChain(view.oid);
      ASR_RETURN_IF_ERROR(all.status());
      view.members = std::move(*all);
    }
  }
  return out;
}

Result<std::vector<std::pair<Oid, std::vector<AsrKey>>>>
ObjectStore::GetAttributeTargets(std::vector<Oid> oids,
                                 const std::string& attr_name) {
  ReadGuard store_guard(this);
  struct Placement {
    Oid oid;
    Location loc;
  };
  std::vector<Placement> placements;
  placements.reserve(oids.size());
  for (Oid oid : oids) {
    if (oid.IsNull() || !schema_->IsValidType(oid.type_id()) ||
        !schema_->IsTuple(oid.type_id())) {
      return Status::TypeError("not a tuple object: " + oid.ToString());
    }
    Result<Location> loc = Locate(oid);
    ASR_RETURN_IF_ERROR(loc.status());
    placements.push_back({oid, *loc});
  }
  std::sort(placements.begin(), placements.end(),
            [](const Placement& a, const Placement& b) {
              if (a.oid.type_id() != b.oid.type_id()) {
                return a.oid.type_id() < b.oid.type_id();
              }
              if (a.loc.page_no != b.loc.page_no) {
                return a.loc.page_no < b.loc.page_no;
              }
              return a.loc.slot < b.loc.slot;
            });

  std::vector<std::pair<Oid, std::vector<AsrKey>>> out;
  out.reserve(placements.size());
  // Set instances not co-located with their owner: fetched page-batched in a
  // second pass.
  std::vector<Oid> deferred_sets;
  std::vector<size_t> deferred_out_index;

  storage::PageGuard guard;
  storage::PageId pinned = storage::kInvalidPageId;
  for (const Placement& pl : placements) {
    const TypeState& state = State(pl.oid.type_id());
    storage::PageId page_id{state.segment, pl.loc.page_no};
    if (page_id != pinned) {
      guard = buffers_->Pin(page_id);
      pinned = page_id;
    }
    Result<uint32_t> idx =
        schema_->FindAttribute(pl.oid.type_id(), attr_name);
    ASR_RETURN_IF_ERROR(idx.status());
    std::vector<std::byte> record(
        SlottedPage::RecordLength(guard.page(), pl.loc.slot));
    SlottedPage::Read(guard.page(), pl.loc.slot, record.data());
    AsrKey value = AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * *idx));
    if (value.IsNull()) continue;

    const Attribute& attr = schema_->attributes(pl.oid.type_id())[*idx];
    if (!schema_->IsCollection(attr.range_type)) {
      out.emplace_back(pl.oid, std::vector<AsrKey>{value});
      continue;
    }
    // Set-valued: decode from this page when co-located, else defer.
    Oid set_oid = value.ToOid();
    Result<Location> set_loc = Locate(set_oid);
    ASR_RETURN_IF_ERROR(set_loc.status());
    const TypeState& set_state = State(set_oid.type_id());
    if (set_state.segment == state.segment &&
        set_loc->page_no == pl.loc.page_no && !SetHasOverflow(set_oid)) {
      std::vector<std::byte> set_rec(
          SlottedPage::RecordLength(guard.page(), set_loc->slot));
      SlottedPage::Read(guard.page(), set_loc->slot, set_rec.data());
      uint32_t count = ReadU32(set_rec, kOidBytes);
      std::vector<AsrKey> members;
      members.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        members.push_back(
            AsrKey::FromRaw(ReadU64(set_rec, kSetHeaderBytes + 8 * i)));
      }
      out.emplace_back(pl.oid, std::move(members));
    } else {
      out.emplace_back(pl.oid, std::vector<AsrKey>{});
      deferred_sets.push_back(set_oid);
      deferred_out_index.push_back(out.size() - 1);
    }
  }
  guard.Release();

  if (!deferred_sets.empty()) {
    // GetSets returns in physical order; map results back via set OID.
    std::unordered_map<uint64_t, size_t> index_of_set;
    for (size_t i = 0; i < deferred_sets.size(); ++i) {
      index_of_set[deferred_sets[i].raw()] = deferred_out_index[i];
    }
    Result<std::vector<SetView>> sets = GetSets(deferred_sets);
    ASR_RETURN_IF_ERROR(sets.status());
    for (SetView& view : *sets) {
      out[index_of_set.at(view.oid.raw())].second = std::move(view.members);
    }
  }
  return out;
}

Status ObjectStore::ScanWithTargets(
    TypeId type, const std::string& attr_name,
    const std::function<Status(Oid, const std::vector<AsrKey>&)>& fn) {
  ReadGuard store_guard(this);
  if (!schema_->IsValidType(type) || !schema_->IsTuple(type)) {
    return Status::TypeError("ScanWithTargets requires a tuple type");
  }
  Result<uint32_t> attr_idx = schema_->FindAttribute(type, attr_name);
  ASR_RETURN_IF_ERROR(attr_idx.status());
  const Attribute& attr = schema_->attributes(type)[*attr_idx];
  const bool set_valued = schema_->IsCollection(attr.range_type);

  const TypeState* state = StateOrNull(type);
  if (state == nullptr || state->segment == UINT32_MAX) return Status::OK();
  uint32_t pages = buffers_->disk()->SegmentPageCount(state->segment);

  // Sets that were not co-located on their owner's page, fetched afterwards.
  std::vector<Oid> deferred_sets;
  std::vector<Oid> deferred_owners;

  for (uint32_t p = 0; p < pages; ++p) {
    PageGuard guard = buffers_->Pin(PageId{state->segment, p});
    uint16_t slots = SlottedPage::slot_count(guard.page());
    for (int s = 0; s < slots; ++s) {
      if (!SlottedPage::IsLive(guard.page(), s)) continue;
      std::vector<std::byte> record(
          SlottedPage::RecordLength(guard.page(), s));
      SlottedPage::Read(guard.page(), s, record.data());
      Oid oid = Oid::FromRaw(ReadU64(record, 0));
      if (oid.type_id() != type) continue;
      AsrKey value = AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * *attr_idx));
      if (value.IsNull()) continue;
      if (!set_valued) {
        ASR_RETURN_IF_ERROR(fn(oid, std::vector<AsrKey>{value}));
        continue;
      }
      Oid set_oid = value.ToOid();
      Result<Location> set_loc = Locate(set_oid);
      ASR_RETURN_IF_ERROR(set_loc.status());
      const TypeState& set_state = State(set_oid.type_id());
      if (set_state.segment == state->segment && set_loc->page_no == p &&
          !SetHasOverflow(set_oid)) {
        std::vector<std::byte> set_rec(
            SlottedPage::RecordLength(guard.page(), set_loc->slot));
        SlottedPage::Read(guard.page(), set_loc->slot, set_rec.data());
        uint32_t count = ReadU32(set_rec, kOidBytes);
        std::vector<AsrKey> members;
        members.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          members.push_back(
              AsrKey::FromRaw(ReadU64(set_rec, kSetHeaderBytes + 8 * i)));
        }
        ASR_RETURN_IF_ERROR(fn(oid, members));
      } else {
        deferred_sets.push_back(set_oid);
        deferred_owners.push_back(oid);
      }
    }
  }

  if (!deferred_sets.empty()) {
    std::unordered_map<uint64_t, Oid> owner_of_set;
    for (size_t i = 0; i < deferred_sets.size(); ++i) {
      owner_of_set[deferred_sets[i].raw()] = deferred_owners[i];
    }
    Result<std::vector<SetView>> sets = GetSets(deferred_sets);
    ASR_RETURN_IF_ERROR(sets.status());
    for (const SetView& view : *sets) {
      ASR_RETURN_IF_ERROR(fn(owner_of_set.at(view.oid.raw()), view.members));
    }
  }
  return Status::OK();
}

Status ObjectStore::AddToSet(Oid set_oid, AsrKey member) {
  WriteGuard store_guard(this);
  if (set_oid.IsNull()) return Status::InvalidArgument("NULL set OID");
  TypeId type = set_oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsSet(type)) {
    return Status::TypeError("not a set instance: " + set_oid.ToString());
  }
  if (member.IsNull()) {
    return Status::InvalidArgument("cannot insert NULL into a set");
  }
  // Strong typing on the element: subtype instances allowed for object
  // elements, exact atomic kind for value elements.
  TypeId elem = schema_->element_type(type);
  if (schema_->IsTuple(elem)) {
    if (!member.IsOid() ||
        !schema_->IsSubtypeOf(member.ToOid().type_id(), elem)) {
      return Status::TypeError("set member is not a (subtype) instance of '" +
                               schema_->name(elem) + "'");
    }
  } else {
    AtomicKind ak = schema_->atomic_kind(elem);
    bool ok = (ak == AtomicKind::kString) ? member.IsString() : member.IsInt();
    if (!ok) {
      return Status::TypeError("set member does not match element type '" +
                               schema_->name(elem) + "'");
    }
  }

  Result<Location> primary = Locate(set_oid);
  ASR_RETURN_IF_ERROR(primary.status());
  TypeState& state = State(type);

  // Walk the chain once: duplicate check, and remember the first record
  // with free space.
  std::vector<Location> chain{*primary};
  auto overflow_it = state.overflow.find(set_oid.seq());
  if (overflow_it != state.overflow.end()) {
    chain.insert(chain.end(), overflow_it->second.begin(),
                 overflow_it->second.end());
  }
  int free_idx = -1;
  uint32_t last_capacity = 0;
  for (size_t r = 0; r < chain.size(); ++r) {
    PageGuard guard = buffers_->Pin(PageId{state.segment, chain[r].page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), chain[r].slot);
    std::vector<std::byte> record(len);
    SlottedPage::Read(guard.page(), chain[r].slot, record.data());
    uint32_t count = ReadU32(record, kOidBytes) & ~kContinuationFlag;
    uint32_t capacity = (len - kSetHeaderBytes) / 8;
    last_capacity = capacity;
    for (uint32_t i = 0; i < count; ++i) {
      if (ReadU64(record, kSetHeaderBytes + 8 * i) == member.raw()) {
        return Status::OK();  // set semantics: duplicate insert is a no-op
      }
    }
    if (free_idx < 0 && count < capacity) free_idx = static_cast<int>(r);
  }

  // Insert into the first record with room.
  if (free_idx >= 0) {
    const Location& loc = chain[free_idx];
    PageGuard guard = buffers_->Pin(PageId{state.segment, loc.page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), loc.slot);
    std::vector<std::byte> record(len);
    SlottedPage::Read(guard.page(), loc.slot, record.data());
    uint32_t raw_count = ReadU32(record, kOidBytes);
    uint32_t count = raw_count & ~kContinuationFlag;
    WriteU64(&record, kSetHeaderBytes + 8 * count, member.raw());
    WriteU32(&record, kOidBytes, (raw_count & kContinuationFlag) | (count + 1));
    SlottedPage::WriteInPlace(&guard.page(), loc.slot, record.data(), len);
    guard.MarkDirty();
    return Status::OK();
  }

  // All records full. Grow the primary by relocation while it fits on a
  // page; afterwards extend the overflow chain.
  if (chain.size() == 1) {
    PageGuard guard = buffers_->Pin(PageId{state.segment, primary->page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), primary->slot);
    if (len < kMaxRecordBytes) {
      std::vector<std::byte> record(len);
      SlottedPage::Read(guard.page(), primary->slot, record.data());
      uint32_t count = ReadU32(record, kOidBytes);
      uint32_t capacity = (len - kSetHeaderBytes) / 8;
      uint32_t new_capacity = capacity == 0 ? 4 : capacity * 2;
      uint32_t new_len =
          std::min(kMaxRecordBytes, kSetHeaderBytes + 8 * new_capacity);
      std::vector<std::byte> grown(new_len, std::byte{0});
      std::memcpy(grown.data(), record.data(), record.size());
      WriteU64(&grown, kSetHeaderBytes + 8 * count, member.raw());
      WriteU32(&grown, kOidBytes, count + 1);
      SlottedPage::Delete(&guard.page(), primary->slot);
      guard.MarkDirty();
      guard.Release();
      state.locations[set_oid.seq() - 1] = PlaceRecord(type, grown);
      return Status::OK();
    }
  }

  // New continuation record, capacity doubling along the chain.
  uint32_t max_members = (kMaxRecordBytes - kSetHeaderBytes) / 8;
  uint32_t new_capacity =
      std::min(max_members, std::max<uint32_t>(16, last_capacity * 2));
  std::vector<std::byte> record(kSetHeaderBytes + 8 * new_capacity,
                                std::byte{0});
  WriteU64(&record, 0, set_oid.raw());
  WriteU32(&record, kOidBytes, kContinuationFlag | 1);
  WriteU64(&record, kSetHeaderBytes, member.raw());
  state.overflow[set_oid.seq()].push_back(PlaceRecord(type, record));
  return Status::OK();
}

Status ObjectStore::RemoveFromSet(Oid set_oid, AsrKey member) {
  WriteGuard store_guard(this);
  if (set_oid.IsNull()) return Status::InvalidArgument("NULL set OID");
  TypeId type = set_oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsSet(type)) {
    return Status::TypeError("not a set instance: " + set_oid.ToString());
  }
  Result<Location> primary = Locate(set_oid);
  ASR_RETURN_IF_ERROR(primary.status());
  TypeState& state = State(type);
  std::vector<Location> chain{*primary};
  auto overflow_it = state.overflow.find(set_oid.seq());
  if (overflow_it != state.overflow.end()) {
    chain.insert(chain.end(), overflow_it->second.begin(),
                 overflow_it->second.end());
  }
  for (const Location& loc : chain) {
    PageGuard guard = buffers_->Pin(PageId{state.segment, loc.page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), loc.slot);
    std::vector<std::byte> record(len);
    SlottedPage::Read(guard.page(), loc.slot, record.data());
    uint32_t raw_count = ReadU32(record, kOidBytes);
    uint32_t count = raw_count & ~kContinuationFlag;
    for (uint32_t i = 0; i < count; ++i) {
      if (ReadU64(record, kSetHeaderBytes + 8 * i) == member.raw()) {
        // Swap-with-last keeps the record's member array dense.
        uint64_t last = ReadU64(record, kSetHeaderBytes + 8 * (count - 1));
        WriteU64(&record, kSetHeaderBytes + 8 * i, last);
        WriteU64(&record, kSetHeaderBytes + 8 * (count - 1), 0);
        WriteU32(&record, kOidBytes,
                 (raw_count & kContinuationFlag) | (count - 1));
        SlottedPage::WriteInPlace(&guard.page(), loc.slot, record.data(),
                                  len);
        guard.MarkDirty();
        return Status::OK();
      }
    }
  }
  return Status::NotFound("member not in set");
}

Status ObjectStore::ListAppend(Oid list_oid, AsrKey element) {
  WriteGuard store_guard(this);
  if (list_oid.IsNull()) return Status::InvalidArgument("NULL list OID");
  TypeId type = list_oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsList(type)) {
    return Status::TypeError("not a list instance: " + list_oid.ToString());
  }
  if (element.IsNull()) {
    return Status::InvalidArgument("cannot append NULL to a list");
  }
  TypeId elem = schema_->element_type(type);
  if (schema_->IsTuple(elem)) {
    if (!element.IsOid() ||
        !schema_->IsSubtypeOf(element.ToOid().type_id(), elem)) {
      return Status::TypeError(
          "list element is not a (subtype) instance of '" +
          schema_->name(elem) + "'");
    }
  } else {
    AtomicKind ak = schema_->atomic_kind(elem);
    bool ok =
        (ak == AtomicKind::kString) ? element.IsString() : element.IsInt();
    if (!ok) {
      return Status::TypeError("list element does not match element type '" +
                               schema_->name(elem) + "'");
    }
  }

  Result<Location> primary = Locate(list_oid);
  ASR_RETURN_IF_ERROR(primary.status());
  TypeState& state = State(type);
  // Order matters: always append to the LAST record of the chain.
  Location tail = *primary;
  bool tail_is_primary = true;
  auto overflow_it = state.overflow.find(list_oid.seq());
  if (overflow_it != state.overflow.end() && !overflow_it->second.empty()) {
    tail = overflow_it->second.back();
    tail_is_primary = false;
  }
  {
    PageGuard guard = buffers_->Pin(PageId{state.segment, tail.page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), tail.slot);
    std::vector<std::byte> record(len);
    SlottedPage::Read(guard.page(), tail.slot, record.data());
    uint32_t raw_count = ReadU32(record, kOidBytes);
    uint32_t count = raw_count & ~kContinuationFlag;
    uint32_t capacity = (len - kSetHeaderBytes) / 8;
    if (count < capacity) {
      WriteU64(&record, kSetHeaderBytes + 8 * count, element.raw());
      WriteU32(&record, kOidBytes,
               (raw_count & kContinuationFlag) | (count + 1));
      SlottedPage::WriteInPlace(&guard.page(), tail.slot, record.data(), len);
      guard.MarkDirty();
      return Status::OK();
    }
    // Grow the primary by relocation while it fits on a page.
    if (tail_is_primary && len < kMaxRecordBytes) {
      uint32_t new_capacity = capacity == 0 ? 4 : capacity * 2;
      uint32_t new_len =
          std::min(kMaxRecordBytes, kSetHeaderBytes + 8 * new_capacity);
      std::vector<std::byte> grown(new_len, std::byte{0});
      std::memcpy(grown.data(), record.data(), record.size());
      WriteU64(&grown, kSetHeaderBytes + 8 * count, element.raw());
      WriteU32(&grown, kOidBytes, count + 1);
      SlottedPage::Delete(&guard.page(), tail.slot);
      guard.MarkDirty();
      guard.Release();
      state.locations[list_oid.seq() - 1] = PlaceRecord(type, grown);
      return Status::OK();
    }
  }
  // New continuation record at the end of the chain.
  uint32_t max_members = (kMaxRecordBytes - kSetHeaderBytes) / 8;
  std::vector<std::byte> record(
      kSetHeaderBytes + 8 * std::min<uint32_t>(max_members, 256),
      std::byte{0});
  WriteU64(&record, 0, list_oid.raw());
  WriteU32(&record, kOidBytes, kContinuationFlag | 1);
  WriteU64(&record, kSetHeaderBytes, element.raw());
  state.overflow[list_oid.seq()].push_back(PlaceRecord(type, record));
  return Status::OK();
}

Status ObjectStore::ListRemoveAt(Oid list_oid, uint32_t index) {
  WriteGuard store_guard(this);
  if (list_oid.IsNull()) return Status::InvalidArgument("NULL list OID");
  TypeId type = list_oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsList(type)) {
    return Status::TypeError("not a list instance: " + list_oid.ToString());
  }
  Result<Location> primary = Locate(list_oid);
  ASR_RETURN_IF_ERROR(primary.status());
  TypeState& state = State(type);
  std::vector<Location> chain{*primary};
  auto overflow_it = state.overflow.find(list_oid.seq());
  if (overflow_it != state.overflow.end()) {
    chain.insert(chain.end(), overflow_it->second.begin(),
                 overflow_it->second.end());
  }
  uint32_t remaining = index;
  for (const Location& loc : chain) {
    PageGuard guard = buffers_->Pin(PageId{state.segment, loc.page_no});
    uint16_t len = SlottedPage::RecordLength(guard.page(), loc.slot);
    std::vector<std::byte> record(len);
    SlottedPage::Read(guard.page(), loc.slot, record.data());
    uint32_t raw_count = ReadU32(record, kOidBytes);
    uint32_t count = raw_count & ~kContinuationFlag;
    if (remaining >= count) {
      remaining -= count;
      continue;
    }
    // Shift left within the record to preserve order.
    for (uint32_t i = remaining; i + 1 < count; ++i) {
      WriteU64(&record, kSetHeaderBytes + 8 * i,
               ReadU64(record, kSetHeaderBytes + 8 * (i + 1)));
    }
    WriteU64(&record, kSetHeaderBytes + 8 * (count - 1), 0);
    WriteU32(&record, kOidBytes, (raw_count & kContinuationFlag) | (count - 1));
    SlottedPage::WriteInPlace(&guard.page(), loc.slot, record.data(), len);
    guard.MarkDirty();
    return Status::OK();
  }
  return Status::OutOfRange("list index out of range");
}

Result<uint64_t> ObjectStore::ListLength(Oid list_oid) {
  ReadGuard store_guard(this);
  if (list_oid.IsNull()) return Status::InvalidArgument("NULL list OID");
  if (!schema_->IsValidType(list_oid.type_id()) ||
      !schema_->IsList(list_oid.type_id())) {
    return Status::TypeError("not a list instance: " + list_oid.ToString());
  }
  Result<std::vector<AsrKey>> members = ReadSetChain(list_oid);
  ASR_RETURN_IF_ERROR(members.status());
  return static_cast<uint64_t>(members->size());
}

bool ObjectStore::SetHasOverflow(Oid set_oid) const {
  const TypeState* state = StateOrNull(set_oid.type_id());
  return state != nullptr &&
         state->overflow.count(set_oid.seq()) > 0;
}

Result<std::vector<AsrKey>> ObjectStore::ReadSetChain(Oid set_oid) {
  Result<Location> primary = Locate(set_oid);
  ASR_RETURN_IF_ERROR(primary.status());
  TypeState& state = State(set_oid.type_id());
  std::vector<Location> chain{*primary};
  auto overflow_it = state.overflow.find(set_oid.seq());
  if (overflow_it != state.overflow.end()) {
    chain.insert(chain.end(), overflow_it->second.begin(),
                 overflow_it->second.end());
  }
  std::vector<AsrKey> members;
  for (const Location& loc : chain) {
    PageGuard guard = buffers_->Pin(PageId{state.segment, loc.page_no});
    std::vector<std::byte> record(
        SlottedPage::RecordLength(guard.page(), loc.slot));
    SlottedPage::Read(guard.page(), loc.slot, record.data());
    uint32_t count = ReadU32(record, kOidBytes) & ~kContinuationFlag;
    for (uint32_t i = 0; i < count; ++i) {
      members.push_back(
          AsrKey::FromRaw(ReadU64(record, kSetHeaderBytes + 8 * i)));
    }
  }
  return members;
}

Result<SetView> ObjectStore::GetSet(Oid collection_oid) {
  ReadGuard store_guard(this);
  Oid set_oid = collection_oid;
  if (set_oid.IsNull()) return Status::InvalidArgument("NULL set OID");
  TypeId type = set_oid.type_id();
  if (!schema_->IsValidType(type) || !schema_->IsCollection(type)) {
    return Status::TypeError("not a collection instance: " +
                             set_oid.ToString());
  }
  Result<std::vector<AsrKey>> members = ReadSetChain(set_oid);
  ASR_RETURN_IF_ERROR(members.status());
  SetView view;
  view.oid = set_oid;
  view.members = std::move(*members);
  return view;
}

Result<bool> ObjectStore::SetContains(Oid collection_oid, AsrKey member) {
  ReadGuard store_guard(this);
  Result<SetView> view = GetSet(collection_oid);
  ASR_RETURN_IF_ERROR(view.status());
  for (AsrKey m : view->members) {
    if (m == member) return true;
  }
  return false;
}

Status ObjectStore::ScanTuples(
    TypeId type, const std::function<Status(const TupleView&)>& fn) {
  ReadGuard store_guard(this);
  if (!schema_->IsValidType(type) || !schema_->IsTuple(type)) {
    return Status::TypeError("ScanTuples requires a tuple type");
  }
  const TypeState* state = StateOrNull(type);
  if (state == nullptr || state->segment == UINT32_MAX) return Status::OK();
  size_t n_attrs = schema_->attributes(type).size();
  uint32_t pages = buffers_->disk()->SegmentPageCount(state->segment);
  for (uint32_t p = 0; p < pages; ++p) {
    PageGuard guard = buffers_->Pin(PageId{state->segment, p});
    uint16_t slots = SlottedPage::slot_count(guard.page());
    for (int s = 0; s < slots; ++s) {
      if (!SlottedPage::IsLive(guard.page(), s)) continue;
      std::vector<std::byte> record(
          SlottedPage::RecordLength(guard.page(), s));
      SlottedPage::Read(guard.page(), s, record.data());
      TupleView view;
      view.oid = Oid::FromRaw(ReadU64(record, 0));
      // Co-located segments hold records of several types; filter.
      if (view.oid.type_id() != type) continue;
      view.attrs.reserve(n_attrs);
      for (size_t i = 0; i < n_attrs; ++i) {
        view.attrs.push_back(
            AsrKey::FromRaw(ReadU64(record, kOidBytes + 8 * i)));
      }
      ASR_RETURN_IF_ERROR(fn(view));
    }
  }
  return Status::OK();
}

Status ObjectStore::ScanSets(TypeId type,
                             const std::function<Status(const SetView&)>& fn) {
  ReadGuard store_guard(this);
  if (!schema_->IsValidType(type) || !schema_->IsCollection(type)) {
    return Status::TypeError("ScanSets requires a set or list type");
  }
  const TypeState* state = StateOrNull(type);
  if (state == nullptr || state->segment == UINT32_MAX) return Status::OK();
  uint32_t pages = buffers_->disk()->SegmentPageCount(state->segment);
  for (uint32_t p = 0; p < pages; ++p) {
    PageGuard guard = buffers_->Pin(PageId{state->segment, p});
    uint16_t slots = SlottedPage::slot_count(guard.page());
    for (int s = 0; s < slots; ++s) {
      if (!SlottedPage::IsLive(guard.page(), s)) continue;
      std::vector<std::byte> record(
          SlottedPage::RecordLength(guard.page(), s));
      SlottedPage::Read(guard.page(), s, record.data());
      SetView view;
      view.oid = Oid::FromRaw(ReadU64(record, 0));
      if (view.oid.type_id() != type) continue;
      uint32_t raw_count = ReadU32(record, kOidBytes);
      if ((raw_count & kContinuationFlag) != 0) continue;  // chain tail
      uint32_t count = raw_count;
      view.members.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        view.members.push_back(
            AsrKey::FromRaw(ReadU64(record, kSetHeaderBytes + 8 * i)));
      }
      if (SetHasOverflow(view.oid)) {
        Result<std::vector<AsrKey>> all = ReadSetChain(view.oid);
        ASR_RETURN_IF_ERROR(all.status());
        view.members = std::move(*all);
      }
      ASR_RETURN_IF_ERROR(fn(view));
    }
  }
  return Status::OK();
}

Status ObjectStore::CheckConsistency() {
  ReadGuard store_guard(this);
  for (TypeId type = 0; type < states_.size(); ++type) {
    const TypeState& state = states_[type];
    if (state.segment == UINT32_MAX) {
      if (!state.locations.empty()) {
        return Status::Corruption("type " + std::to_string(type) +
                                  " has locations but no segment");
      }
      continue;
    }
    uint64_t live = 0;
    uint32_t pages = buffers_->disk()->SegmentPageCount(state.segment);
    for (uint64_t seq = 1; seq <= state.locations.size(); ++seq) {
      const Location& loc = state.locations[seq - 1];
      if (!loc.live) continue;
      ++live;
      if (loc.page_no >= pages) {
        return Status::Corruption("location beyond segment for " +
                                  Oid::Make(type, seq).ToString());
      }
      storage::PageGuard guard =
          buffers_->Pin(storage::PageId{state.segment, loc.page_no});
      if (loc.slot >= SlottedPage::slot_count(guard.page()) ||
          !SlottedPage::IsLive(guard.page(), loc.slot)) {
        return Status::Corruption("location points at a dead slot for " +
                                  Oid::Make(type, seq).ToString());
      }
      uint16_t len = SlottedPage::RecordLength(guard.page(), loc.slot);
      std::vector<std::byte> record(len);
      SlottedPage::Read(guard.page(), loc.slot, record.data());
      if (ReadU64(record, 0) != Oid::Make(type, seq).raw()) {
        return Status::Corruption("record OID mismatch for " +
                                  Oid::Make(type, seq).ToString());
      }
    }
    if (live != state.live_count) {
      return Status::Corruption("live count mismatch for type " +
                                std::to_string(type));
    }
    for (const auto& [seq, chain] : state.overflow) {
      if (seq == 0 || seq > state.locations.size() ||
          !state.locations[seq - 1].live) {
        return Status::Corruption("overflow chain for a dead set");
      }
      for (const Location& cont : chain) {
        if (cont.page_no >= pages) {
          return Status::Corruption("overflow record beyond segment");
        }
        storage::PageGuard guard =
            buffers_->Pin(storage::PageId{state.segment, cont.page_no});
        if (cont.slot >= SlottedPage::slot_count(guard.page()) ||
            !SlottedPage::IsLive(guard.page(), cont.slot)) {
          return Status::Corruption("overflow record slot is dead");
        }
        uint16_t len = SlottedPage::RecordLength(guard.page(), cont.slot);
        std::vector<std::byte> record(len);
        SlottedPage::Read(guard.page(), cont.slot, record.data());
        if (ReadU64(record, 0) != Oid::Make(type, seq).raw() ||
            (ReadU32(record, kOidBytes) & kContinuationFlag) == 0) {
          return Status::Corruption("overflow record header mismatch");
        }
      }
    }
  }
  return Status::OK();
}

void ObjectStore::SerializeMetadata(std::ostream* out) const {
  ReadGuard store_guard(this);
  dict_.Serialize(out);
  io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(states_.size()));
  for (const TypeState& state : states_) {
    io::WriteScalar<uint32_t>(out, state.segment);
    io::WriteScalar<uint32_t>(out, state.pad_bytes);
    io::WriteScalar<uint32_t>(out, state.colocate_with);
    io::WriteScalar<uint64_t>(out, state.live_count);
    io::WriteScalar<uint64_t>(out, state.locations.size());
    for (const Location& loc : state.locations) {
      io::WriteScalar<uint32_t>(out, loc.page_no);
      io::WriteScalar<uint16_t>(out, loc.slot);
      io::WriteScalar<uint8_t>(out, loc.live ? 1 : 0);
    }
    io::WriteScalar<uint64_t>(out, state.overflow.size());
    for (const auto& [seq, chain] : state.overflow) {
      io::WriteScalar<uint64_t>(out, seq);
      io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(chain.size()));
      for (const Location& loc : chain) {
        io::WriteScalar<uint32_t>(out, loc.page_no);
        io::WriteScalar<uint16_t>(out, loc.slot);
      }
    }
  }
  io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(segment_fill_.size()));
  for (const auto& [segment, fill] : segment_fill_) {
    io::WriteScalar<uint32_t>(out, segment);
    io::WriteScalar<uint32_t>(out, fill);
  }
}

Status ObjectStore::DeserializeMetadata(std::istream* in) {
  WriteGuard store_guard(this);
  ASR_CHECK(states_.empty() && dict_.size() == 0);
  ASR_RETURN_IF_ERROR(dict_.Deserialize(in));
  Result<uint32_t> state_count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(state_count.status());
  states_.resize(*state_count);
  for (TypeState& state : states_) {
    Result<uint32_t> segment = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(segment.status());
    state.segment = *segment;
    Result<uint32_t> pad = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(pad.status());
    state.pad_bytes = *pad;
    Result<uint32_t> colocate = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(colocate.status());
    state.colocate_with = *colocate;
    Result<uint64_t> live = io::ReadScalar<uint64_t>(in);
    ASR_RETURN_IF_ERROR(live.status());
    state.live_count = *live;
    Result<uint64_t> loc_count = io::ReadScalar<uint64_t>(in);
    ASR_RETURN_IF_ERROR(loc_count.status());
    state.locations.resize(*loc_count);
    for (Location& loc : state.locations) {
      Result<uint32_t> page_no = io::ReadScalar<uint32_t>(in);
      ASR_RETURN_IF_ERROR(page_no.status());
      loc.page_no = *page_no;
      Result<uint16_t> slot = io::ReadScalar<uint16_t>(in);
      ASR_RETURN_IF_ERROR(slot.status());
      loc.slot = *slot;
      Result<uint8_t> live_flag = io::ReadScalar<uint8_t>(in);
      ASR_RETURN_IF_ERROR(live_flag.status());
      loc.live = *live_flag != 0;
    }
    Result<uint64_t> overflow_count = io::ReadScalar<uint64_t>(in);
    ASR_RETURN_IF_ERROR(overflow_count.status());
    for (uint64_t o = 0; o < *overflow_count; ++o) {
      Result<uint64_t> seq = io::ReadScalar<uint64_t>(in);
      ASR_RETURN_IF_ERROR(seq.status());
      Result<uint32_t> chain_len = io::ReadScalar<uint32_t>(in);
      ASR_RETURN_IF_ERROR(chain_len.status());
      std::vector<Location> chain(*chain_len);
      for (Location& loc : chain) {
        Result<uint32_t> page_no = io::ReadScalar<uint32_t>(in);
        ASR_RETURN_IF_ERROR(page_no.status());
        loc.page_no = *page_no;
        Result<uint16_t> slot = io::ReadScalar<uint16_t>(in);
        ASR_RETURN_IF_ERROR(slot.status());
        loc.slot = *slot;
        loc.live = true;
      }
      state.overflow.emplace(*seq, std::move(chain));
    }
  }
  Result<uint32_t> fill_count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(fill_count.status());
  for (uint32_t f = 0; f < *fill_count; ++f) {
    Result<uint32_t> segment = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(segment.status());
    Result<uint32_t> fill = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(fill.status());
    segment_fill_[*segment] = *fill;
  }
  return Status::OK();
}

uint64_t ObjectStore::ObjectCount(TypeId type) const {
  ReadGuard store_guard(this);
  const TypeState* state = StateOrNull(type);
  return state == nullptr ? 0 : state->live_count;
}

uint32_t ObjectStore::PageCount(TypeId type) const {
  ReadGuard store_guard(this);
  const TypeState* state = StateOrNull(type);
  if (state == nullptr || state->segment == UINT32_MAX) return 0;
  return buffers_->disk()->SegmentPageCount(state->segment);
}

int64_t ObjectStore::SegmentOf(TypeId type) const {
  ReadGuard store_guard(this);
  const TypeState* state = StateOrNull(type);
  if (state == nullptr || state->segment == UINT32_MAX) return -1;
  return state->segment;
}

}  // namespace asr::gom
