#include "gom/database.h"

#include <fstream>
#include <utility>

#include "common/binary_io.h"
#include "obs/events.h"
#include "storage/io_retry.h"

namespace asr::gom {

namespace {

// "ASRdb" + format version.
constexpr uint64_t kMagic = 0x0001626452534100ull;

}  // namespace

std::unique_ptr<Database> Database::Create(size_t buffer_capacity,
                                           const storage::DiskOptions& disk) {
  return std::unique_ptr<Database>(new Database(buffer_capacity, disk));
}

Status Database::Save(const std::string& file) {
  // A snapshot of un-flushable state would silently lose the dirty frames.
  ASR_RETURN_IF_ERROR(buffers_.FlushAll());
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open '" + file + "' for writing");
  }
  io::WriteScalar<uint64_t>(&out, kMagic);
  schema_.Serialize(&out);
  disk_.Serialize(&out);
  store_.SerializeMetadata(&out);
  out.flush();
  if (!out.good()) {
    return Status::Corruption("write error while saving '" + file + "'");
  }
  return Status::OK();
}

Status Database::SaveDurable(const std::string& file) {
  const std::string tmp = file + ".tmp";
  ASR_RETURN_IF_ERROR(Save(tmp));
  // The fsync-before-rename publish order lives below the storage seam.
  ASR_RETURN_IF_ERROR(storage::io::PublishDurable(tmp, file));
  ASR_EVENT(obs::EventKind::kCheckpointSaved, "file=" + file);
  return Status::OK();
}

Status Database::AttachWal(const std::string& path) {
  ASR_CHECK(wal_ == nullptr);
  replayed_wal_.clear();
  Result<std::unique_ptr<storage::WriteAheadLog>> wal =
      storage::WriteAheadLog::Open(path, [&](std::string_view payload) {
        replayed_wal_.emplace_back(payload);
      });
  ASR_RETURN_IF_ERROR(wal.status());
  wal_ = std::move(*wal);
  if (mvcc_ != nullptr) mvcc_->AttachWal(wal_.get());
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Open(
    const std::string& file, size_t buffer_capacity,
    const storage::DiskOptions& disk) {
  std::ifstream in(file, std::ios::binary);
  if (!in.good()) {
    return Status::NotFound("cannot open snapshot '" + file + "'");
  }
  Result<uint64_t> magic = io::ReadScalar<uint64_t>(&in);
  ASR_RETURN_IF_ERROR(magic.status());
  if (*magic != kMagic) {
    return Status::Corruption("'" + file + "' is not an asr database "
                              "snapshot (bad magic)");
  }
  std::unique_ptr<Database> db(new Database(buffer_capacity, disk));
  ASR_RETURN_IF_ERROR(db->schema_.Deserialize(&in));
  ASR_RETURN_IF_ERROR(db->disk_.Deserialize(&in));
  ASR_RETURN_IF_ERROR(db->store_.DeserializeMetadata(&in));
  return db;
}

}  // namespace asr::gom
