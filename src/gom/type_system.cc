#include "gom/type_system.h"

#include <utility>

#include "common/binary_io.h"

namespace asr::gom {

Schema::Schema() {
  // Pre-register the built-in elementary value types (§2, "values").
  TypeInfo int_type;
  int_type.name = "INTEGER";
  int_type.type_kind = TypeKind::kAtomic;
  int_type.atomic = AtomicKind::kInt;
  ASR_CHECK(AddType(std::move(int_type)).value() == kIntType);

  TypeInfo dec_type;
  dec_type.name = "DECIMAL";
  dec_type.type_kind = TypeKind::kAtomic;
  dec_type.atomic = AtomicKind::kDecimal;
  ASR_CHECK(AddType(std::move(dec_type)).value() == kDecimalType);

  TypeInfo str_type;
  str_type.name = "STRING";
  str_type.type_kind = TypeKind::kAtomic;
  str_type.atomic = AtomicKind::kString;
  ASR_CHECK(AddType(std::move(str_type)).value() == kStringType);
}

Result<TypeId> Schema::AddType(TypeInfo info) {
  if (by_name_.count(info.name) > 0) {
    return Status::AlreadyExists("type '" + info.name + "' already defined");
  }
  // OIDs reserve 24 bits for the type id; AsrKey further requires the top
  // two bits of an OID to be clear, leaving 22 usable bits.
  if (types_.size() >= (1u << 22)) {
    return Status::InvalidArgument("type registry full");
  }
  TypeId id = static_cast<TypeId>(types_.size());
  by_name_.emplace(info.name, id);
  types_.push_back(std::move(info));
  return id;
}

Result<TypeId> Schema::DefineTupleType(const std::string& name,
                                       const std::vector<TypeId>& supertypes,
                                       const std::vector<Attribute>& attributes) {
  TypeInfo info;
  info.name = name;
  info.type_kind = TypeKind::kTuple;
  info.supertypes = supertypes;

  // Flatten inherited attributes (in supertype declaration order), then own
  // attributes; enforce pairwise distinct names (§2.1).
  std::unordered_set<std::string> seen;
  for (TypeId super : supertypes) {
    if (!IsValidType(super) || !IsTuple(super)) {
      return Status::TypeError("supertype of '" + name +
                               "' is not a tuple type");
    }
    const TypeInfo& sup = types_[super];
    for (const Attribute& attr : sup.attributes) {
      if (seen.insert(attr.name).second) {
        info.attributes.push_back(attr);
      } else {
        // The same attribute may arrive through two inheritance paths from a
        // shared ancestor; that is fine. A genuine clash (same name declared
        // by unrelated types) is an error.
        bool duplicate_ok = false;
        for (const Attribute& existing : info.attributes) {
          if (existing.name == attr.name &&
              existing.declared_in == attr.declared_in) {
            duplicate_ok = true;
            break;
          }
        }
        if (!duplicate_ok) {
          return Status::TypeError("attribute '" + attr.name +
                                   "' inherited ambiguously by '" + name +
                                   "'");
        }
      }
    }
    info.ancestors.insert(sup.ancestors.begin(), sup.ancestors.end());
  }
  for (const Attribute& attr : attributes) {
    if (!IsValidType(attr.range_type)) {
      return Status::TypeError("attribute '" + attr.name +
                               "' of '" + name + "' has an undefined type");
    }
    if (!seen.insert(attr.name).second) {
      return Status::TypeError("attribute '" + attr.name +
                               "' duplicated in '" + name + "'");
    }
    Attribute own = attr;
    own.declared_in = static_cast<TypeId>(types_.size());
    info.attributes.push_back(own);
  }
  info.ancestors.insert(static_cast<TypeId>(types_.size()));  // reflexive
  return AddType(std::move(info));
}

Result<TypeId> Schema::DefineSetType(const std::string& name,
                                     TypeId element_type) {
  if (!IsValidType(element_type)) {
    return Status::TypeError("element type of '" + name + "' is undefined");
  }
  // "we do not permit powersets" (§3, footnote 2); nested collections of
  // either flavor are excluded for the same reason.
  if (IsCollection(element_type)) {
    return Status::TypeError("powerset type '" + name + "' is not permitted");
  }
  TypeInfo info;
  info.name = name;
  info.type_kind = TypeKind::kSet;
  info.element = element_type;
  return AddType(std::move(info));
}

Result<TypeId> Schema::DefineListType(const std::string& name,
                                      TypeId element_type) {
  if (!IsValidType(element_type)) {
    return Status::TypeError("element type of '" + name + "' is undefined");
  }
  if (IsCollection(element_type)) {
    return Status::TypeError("nested collection type '" + name +
                             "' is not permitted");
  }
  TypeInfo info;
  info.name = name;
  info.type_kind = TypeKind::kList;
  info.element = element_type;
  return AddType(std::move(info));
}

TypeKind Schema::kind(TypeId t) const {
  ASR_CHECK(IsValidType(t));
  return types_[t].type_kind;
}

AtomicKind Schema::atomic_kind(TypeId t) const {
  ASR_CHECK(IsValidType(t) && IsAtomic(t));
  return types_[t].atomic;
}

const std::string& Schema::name(TypeId t) const {
  ASR_CHECK(IsValidType(t));
  return types_[t].name;
}

Result<TypeId> Schema::FindType(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("type '" + name + "' not defined");
  }
  return it->second;
}

TypeId Schema::element_type(TypeId collection_type) const {
  ASR_CHECK(IsValidType(collection_type) && IsCollection(collection_type));
  return types_[collection_type].element;
}

const std::vector<Attribute>& Schema::attributes(TypeId tuple_type) const {
  ASR_CHECK(IsValidType(tuple_type) && IsTuple(tuple_type));
  return types_[tuple_type].attributes;
}

Result<uint32_t> Schema::FindAttribute(TypeId tuple_type,
                                       const std::string& attr_name) const {
  const std::vector<Attribute>& attrs = attributes(tuple_type);
  for (uint32_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].name == attr_name) return i;
  }
  return Status::NotFound("type '" + name(tuple_type) +
                          "' has no attribute '" + attr_name + "'");
}

const std::vector<TypeId>& Schema::supertypes(TypeId tuple_type) const {
  ASR_CHECK(IsValidType(tuple_type) && IsTuple(tuple_type));
  return types_[tuple_type].supertypes;
}

bool Schema::IsSubtypeOf(TypeId sub, TypeId super) const {
  if (sub == super) return true;
  if (!IsValidType(sub) || !IsValidType(super)) return false;
  if (!IsTuple(sub)) return false;
  return types_[sub].ancestors.count(super) > 0;
}

void Schema::Serialize(std::ostream* out) const {
  io::WriteScalar<uint32_t>(
      out, static_cast<uint32_t>(types_.size() - kFirstUserType));
  for (TypeId t = kFirstUserType; t < types_.size(); ++t) {
    const TypeInfo& info = types_[t];
    io::WriteString(out, info.name);
    io::WriteScalar<uint8_t>(out, static_cast<uint8_t>(info.type_kind));
    switch (info.type_kind) {
      case TypeKind::kSet:
      case TypeKind::kList:
        io::WriteScalar<uint32_t>(out, info.element);
        break;
      case TypeKind::kTuple: {
        io::WriteScalar<uint32_t>(
            out, static_cast<uint32_t>(info.supertypes.size()));
        for (TypeId super : info.supertypes) {
          io::WriteScalar<uint32_t>(out, super);
        }
        // Own attributes only: inherited ones are recomputed on replay.
        uint32_t own = 0;
        for (const Attribute& attr : info.attributes) {
          if (attr.declared_in == t) ++own;
        }
        io::WriteScalar<uint32_t>(out, own);
        for (const Attribute& attr : info.attributes) {
          if (attr.declared_in != t) continue;
          io::WriteString(out, attr.name);
          io::WriteScalar<uint32_t>(out, attr.range_type);
        }
        break;
      }
      case TypeKind::kAtomic:
        break;  // built-ins are never serialized
    }
  }
}

Status Schema::Deserialize(std::istream* in) {
  if (types_.size() != kFirstUserType) {
    return Status::InvalidArgument(
        "schema deserialization requires a fresh schema");
  }
  Result<uint32_t> count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(count.status());
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::string> name = io::ReadString(in);
    ASR_RETURN_IF_ERROR(name.status());
    Result<uint8_t> kind_byte = io::ReadScalar<uint8_t>(in);
    ASR_RETURN_IF_ERROR(kind_byte.status());
    switch (static_cast<TypeKind>(*kind_byte)) {
      case TypeKind::kSet:
      case TypeKind::kList: {
        Result<uint32_t> element = io::ReadScalar<uint32_t>(in);
        ASR_RETURN_IF_ERROR(element.status());
        Result<TypeId> id =
            static_cast<TypeKind>(*kind_byte) == TypeKind::kSet
                ? DefineSetType(*name, *element)
                : DefineListType(*name, *element);
        ASR_RETURN_IF_ERROR(id.status());
        break;
      }
      case TypeKind::kTuple: {
        Result<uint32_t> super_count = io::ReadScalar<uint32_t>(in);
        ASR_RETURN_IF_ERROR(super_count.status());
        std::vector<TypeId> supers;
        for (uint32_t sidx = 0; sidx < *super_count; ++sidx) {
          Result<uint32_t> super = io::ReadScalar<uint32_t>(in);
          ASR_RETURN_IF_ERROR(super.status());
          supers.push_back(*super);
        }
        Result<uint32_t> attr_count = io::ReadScalar<uint32_t>(in);
        ASR_RETURN_IF_ERROR(attr_count.status());
        std::vector<Attribute> attrs;
        for (uint32_t a = 0; a < *attr_count; ++a) {
          Attribute attr;
          Result<std::string> attr_name = io::ReadString(in);
          ASR_RETURN_IF_ERROR(attr_name.status());
          attr.name = std::move(*attr_name);
          Result<uint32_t> range = io::ReadScalar<uint32_t>(in);
          ASR_RETURN_IF_ERROR(range.status());
          attr.range_type = *range;
          attrs.push_back(std::move(attr));
        }
        Result<TypeId> id = DefineTupleType(*name, supers, attrs);
        ASR_RETURN_IF_ERROR(id.status());
        break;
      }
      default:
        return Status::Corruption("invalid type kind in snapshot");
    }
  }
  return Status::OK();
}

}  // namespace asr::gom
