// Fixed-size pages and page identifiers for the simulated secondary store.
//
// The paper's system parameters (Fig. 3) fix the *net* page size at 4056
// bytes; all capacity formulas (objects per page Eq. 17, ASR tuples per page
// Eq. 14, B+ tree fan-out) are derived from it. kPageSize is that net size:
// header bytes consumed by our own page layouts (slotted page directory,
// B+ node headers) are accounted inside the net area, matching how the
// analytical model treats them as negligible.
#ifndef ASR_STORAGE_PAGE_H_
#define ASR_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/macros.h"

namespace asr::storage {

inline constexpr uint32_t kPageSize = 4056;

// Identifies a page as (segment, page number within segment). Segments group
// pages that belong to one physical structure: one per object type (the paper
// assumes type-based clustering, Eq. 18) and one per B+ tree.
struct PageId {
  uint32_t segment = UINT32_MAX;
  uint32_t page_no = UINT32_MAX;

  bool IsValid() const { return segment != UINT32_MAX; }

  friend bool operator==(PageId a, PageId b) {
    return a.segment == b.segment && a.page_no == b.page_no;
  }
  friend bool operator!=(PageId a, PageId b) { return !(a == b); }

  std::string ToString() const {
    if (!IsValid()) return "invalid";
    return std::to_string(segment) + ":" + std::to_string(page_no);
  }
};

inline constexpr PageId kInvalidPageId{};

// Raw page payload with bounds-checked scalar accessors.
class Page {
 public:
  Page() { data_.fill(std::byte{0}); }

  std::byte* data() { return data_.data(); }
  const std::byte* data() const { return data_.data(); }

  template <typename T>
  T Read(uint32_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    ASR_DCHECK(offset + sizeof(T) <= kPageSize);
    T value;
    std::memcpy(&value, data_.data() + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void Write(uint32_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ASR_DCHECK(offset + sizeof(T) <= kPageSize);
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  void ReadBytes(uint32_t offset, void* out, uint32_t len) const {
    ASR_DCHECK(offset + len <= kPageSize);
    std::memcpy(out, data_.data() + offset, len);
  }

  void WriteBytes(uint32_t offset, const void* in, uint32_t len) {
    ASR_DCHECK(offset + len <= kPageSize);
    std::memcpy(data_.data() + offset, in, len);
  }

  void Zero() { data_.fill(std::byte{0}); }

 private:
  std::array<std::byte, kPageSize> data_;
};

}  // namespace asr::storage

template <>
struct std::hash<asr::storage::PageId> {
  size_t operator()(asr::storage::PageId id) const noexcept {
    uint64_t x = (static_cast<uint64_t>(id.segment) << 32) | id.page_no;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

#endif  // ASR_STORAGE_PAGE_H_
