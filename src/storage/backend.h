// Storage backends: where page images physically live.
//
// Disk is the paper-facing instrument — it meters accesses, keeps per-page
// checksums, and hosts the fault injector. What it deliberately does NOT fix
// is where the bytes are: the metering in-memory store is the right substrate
// for validating the analytical page-count model, but wall-clock speed needs
// a real file-backed path. StorageBackend is that seam. Everything above it
// (metering, checksums, FaultInjector semantics, Serialize/Deserialize,
// BufferManager, B+ trees) is backend-agnostic, so the crash matrix and the
// full test suite run unchanged against either backend.
//
// Concurrency contract (inherited from Disk): segment registration may run
// concurrently with page access to *existing* segments; each individual
// segment has at most one accessor thread at a time.
#ifndef ASR_STORAGE_BACKEND_H_
#define ASR_STORAGE_BACKEND_H_

#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace asr::storage {

enum class BackendKind {
  kMemory,  // metering in-memory page store (the paper's instrument)
  kFile,    // raw-speed file store: pread/pwrite, optional mmap read path
};

const char* BackendKindName(BackendKind kind);

// When (if ever) eviction write-backs are pushed to stable storage. The
// metering default is kOff — no sync traffic, bit-identical page counts to a
// durability-unaware pool. kGroup batches write-backs and issues one
// fdatasync per run of ASR_FLUSH_BATCH pages (per touched segment); kPage
// syncs after every single write-back — the strawman kGroup is measured
// against. Either way FlushAll() ends with a sync, so the durable end state
// at a checkpoint is identical across modes.
enum class DurabilityMode {
  kOff,
  kGroup,
  kPage,
};

const char* DurabilityModeName(DurabilityMode mode);

// How a Disk should store its pages. The default is the in-memory metering
// store; FromEnv() lets a whole process (e.g. the ctest suite under the CI
// file-backend job) be flipped without touching call sites:
//   ASR_STORAGE_BACKEND=memory|file   backend selection
//   ASR_STORAGE_DIR=<path>            file backend directory (default: a
//                                     fresh mkdtemp under $TMPDIR, removed
//                                     when the Disk is destroyed)
//   ASR_STORAGE_MMAP=0|1              file backend read path (default 1)
//   ASR_DURABILITY=off|group|page     eviction write-back sync policy
//   ASR_FLUSH_BATCH=<n>               group-flush run length (default 64)
struct DiskOptions {
  BackendKind backend = BackendKind::kMemory;
  // File backend only: directory for segment files. Empty = create a private
  // temporary directory and remove it (and all segment files) on
  // destruction. A caller-supplied directory is left in place.
  std::string file_dir;
  // File backend only: serve reads from a shared mmap of the segment file
  // instead of pread. Writes always go through pwrite (coherent with the
  // mapping on the same file).
  bool mmap_reads = true;
  // Write-back sync policy, applied by every BufferManager over this disk.
  // Also makes the file backend fsync durably at the structural points
  // (directory entry after segment creation, file metadata after growth).
  DurabilityMode durability = DurabilityMode::kOff;
  // kGroup only: write-backs per fdatasync run (>= 1).
  uint32_t flush_batch = 64;

  static DiskOptions FromEnv();

  static DiskOptions Memory() { return DiskOptions{}; }
  static DiskOptions File(std::string dir = "", bool mmap = true) {
    DiskOptions o;
    o.backend = BackendKind::kFile;
    o.file_dir = std::move(dir);
    o.mmap_reads = mmap;
    return o;
  }
};

// Raw page storage. Segment ids are assigned by Disk, dense from 0, and
// every call uses ids the backend has seen via AddSegment. Bounds and
// metering are Disk's job; backends only move bytes.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual BackendKind kind() const = 0;

  // Registers the next segment id (== number of prior AddSegment calls).
  virtual void AddSegment(const std::string& name) = 0;

  // Appends one zeroed page to `segment`.
  virtual void AddPage(uint32_t segment) = 0;

  // Uncounted raw page I/O; Disk layers counting, checksums, and fault
  // actions on top. Read/Write never see out-of-range pages.
  virtual Status Read(uint32_t segment, uint32_t page_no, Page* out) = 0;
  virtual Status Write(uint32_t segment, uint32_t page_no,
                       const Page& page) = 0;

  // Best-effort hint that `page_no` is about to be read (the B+ tree batched
  // probe announces sibling leaves). Never required for correctness.
  virtual void Prefetch(uint32_t segment, uint32_t page_no) {
    (void)segment;
    (void)page_no;
  }

  // Durability points: everything written to `segment` (resp. every
  // segment) so far is on stable storage when the call returns OK. The
  // memory backend's storage is the process image — already as stable as it
  // gets — so the default is a no-op; the file backend issues fdatasync.
  virtual Status Sync(uint32_t segment) {
    (void)segment;
    return Status::OK();
  }
  virtual Status SyncAll() { return Status::OK(); }

  // True when a permanent write failure demoted the backend to read-only
  // (reads keep working; every write fails fast with the original error).
  virtual bool read_only() const { return false; }

  // Backend-specific counters under `prefix` (e.g. "disk.backend"). Cold
  // path; call from quiescent points.
  virtual void ExportMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) const {
    (void)registry;
    (void)prefix;
  }
};

// The metering in-memory store: a vector of pages per segment. Identical
// performance profile to the pre-seam Disk (one memcpy per I/O), so metered
// page counts and the model validation are unchanged.
class MemoryBackend : public StorageBackend {
 public:
  MemoryBackend() = default;
  ASR_DISALLOW_COPY_AND_ASSIGN(MemoryBackend);

  BackendKind kind() const override { return BackendKind::kMemory; }
  void AddSegment(const std::string& name) override;
  void AddPage(uint32_t segment) override;
  Status Read(uint32_t segment, uint32_t page_no, Page* out) override;
  Status Write(uint32_t segment, uint32_t page_no, const Page& page) override;
  void Prefetch(uint32_t segment, uint32_t page_no) override;
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const override;

 private:
  std::vector<Page>& Pages(uint32_t segment);

  // Guards the deque structure only; per-segment page vectors follow the
  // single-accessor-per-segment contract (deque references are stable).
  mutable std::shared_mutex mu_;
  std::deque<std::vector<Page>> segments_ ASR_GUARDED_BY(mu_);
};

// Creates the backend described by `options`.
std::unique_ptr<StorageBackend> MakeBackend(const DiskOptions& options);

}  // namespace asr::storage

#endif  // ASR_STORAGE_BACKEND_H_
