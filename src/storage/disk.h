// Segmented page store with per-segment access metering, per-page checksums,
// and fault injection — over a pluggable storage backend.
//
// The paper has no running system; its evaluation counts secondary page
// accesses analytically. This disk is the executable counterpart: an array of
// 4056-byte pages per segment whose every read/write is counted, so a live
// query can be metered with the same unit the paper uses. Where the page
// bytes physically live is a separate concern (storage/backend.h): the
// default in-memory backend is the metering instrument, while the
// file-backed backend (pread/pwrite, optional mmap reads) measures the same
// workloads at hardware speed. Metering, checksums, fault injection, and
// snapshot serialization all live ABOVE the seam, so they behave identically
// on every backend.
//
// Fault model: an optional FaultInjector observes every counted I/O and can
// drop a write (crash), tear it (half-written sector revealed at restart),
// or fail a read. Independently, the disk keeps a checksum per page —
// updated on every successful write, verified on every read — so torn or
// stomped pages surface as Status::Corruption instead of garbage reaching a
// B+ tree descent. While the injector reports crashed() the verification is
// suspended: the process is "still up" and reads through the OS-cache
// fiction; after Disk::RecoverFromCrash() (the restart point) torn sectors
// become visible and verification resumes.
//
// Concurrency: segments are independent units of allocation and metering.
// The segment table itself is guarded by a shared mutex (segment creation
// may run concurrently with page access to existing segments), but each
// individual segment must have at most one accessor thread at a time — the
// contract the parallel ASR build pipeline satisfies by giving every
// partition builder its own segments. Global access statistics are the merge
// of the per-segment counters, so no cross-thread counter is ever written.
// Fault injection is for single-threaded crash drills; arm it only when no
// concurrent builders run.
#ifndef ASR_STORAGE_DISK_H_
#define ASR_STORAGE_DISK_H_

#include <atomic>
#include <deque>
#include <istream>
#include <memory>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/access_stats.h"
#include "storage/backend.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace asr::storage {

class MvccManager;
class PageSnapshot;

class Disk {
 public:
  // The default backend comes from the environment (DiskOptions::FromEnv),
  // so a whole binary — notably the test suite under the CI file-backend
  // job — can be flipped with ASR_STORAGE_BACKEND=file.
  Disk() : Disk(DiskOptions::FromEnv()) {}
  explicit Disk(const DiskOptions& options);
  ASR_DISALLOW_COPY_AND_ASSIGN(Disk);

  BackendKind backend_kind() const { return backend_->kind(); }
  const char* backend_name() const {
    return BackendKindName(backend_->kind());
  }
  // The options this disk was built with — the BufferManager reads its
  // write-back sync policy (durability mode, flush batch) from here so that
  // policy travels with the disk instead of with every pool constructor.
  const DiskOptions& options() const { return options_; }
  // The raw backend (borrowed). Tests and degradation drills reach through
  // for backend-specific state (e.g. FileBackend::EnterReadOnly).
  StorageBackend* backend() { return backend_.get(); }

  // Creates an empty segment and returns its id. `name` is for diagnostics.
  uint32_t CreateSegment(std::string name);

  // Appends a zeroed page to `segment`; does not count as an access (the
  // model charges allocation when the page is first written).
  PageId AllocatePage(uint32_t segment);

  // Counted accesses. ReadPage fails with Corruption when the page's
  // checksum does not match (torn or stomped page) and with IOError on an
  // injected read fault; WritePage fails with IOError when the armed
  // injector drops or tears the write. On failure `*out` is unspecified.
  Status ReadPage(PageId id, Page* out);
  Status WritePage(PageId id, const Page& page);

  // Uncounted read hint: tells the backend `id` is about to be pinned (the
  // B+ tree batched probe announces sibling leaves). Never required.
  void PrefetchPage(PageId id);

  // Attaches a page-version manager (borrowed; nullptr detaches). With a
  // manager attached, reads and writes to its registered segments route
  // through the MVCC layer: a thread with an active PageTransaction stages
  // covered writes privately and reads them back, direct writes to
  // registered segments are auto-versioned, and snapshot handles read a
  // pinned epoch via ReadPageSnapshot. Unregistered segments — and every
  // disk without a manager — take the legacy path, byte-identical in
  // behavior and metering.
  void AttachMvcc(MvccManager* mvcc);
  MvccManager* mvcc() { return mvcc_; }

  // The image of `id` as of snap.epoch(); requires an attached manager and
  // a registered segment. Counted as a page read like any query access.
  Status ReadPageSnapshot(PageId id, const PageSnapshot& snap, Page* out);

  // Durability points, forwarded to the backend (no-op on the memory
  // backend). Uncounted in AccessStats — the page-count model has no fsync
  // term — but tallied in sync_requests() and the metrics export so the
  // bench can report the fsync currency alongside page counts.
  Status SyncSegment(uint32_t segment);
  Status SyncAll();
  uint64_t sync_requests() const {
    return sync_requests_.load(std::memory_order_relaxed);
  }

  // Checksum triage (counted as reads — recovery pays for its verification
  // pass in the same unit as everything else). VerifySegment returns the
  // first corrupt page as Corruption.
  Status VerifyPage(PageId id);
  Status VerifySegment(uint32_t segment);

  // Installs `injector` as the fault policy for every subsequent I/O
  // (nullptr detaches). The injector is borrowed, not owned.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  // The restart point after a simulated crash: reveals the torn sector of a
  // fired kTornWrite (until here reads served the fully-written image — the
  // OS page cache fiction), re-enables checksum verification, and disarms
  // the injector. No-op without an injector or without a crash.
  void RecoverFromCrash();

  uint32_t SegmentPageCount(uint32_t segment) const;
  const std::string& SegmentName(uint32_t segment) const;
  size_t segment_count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return segments_.size();
  }

  // Snapshot support: raw segment/page image (access statistics are not
  // persisted; checksums are recomputed on load). Deserialize requires an
  // empty disk and leaves it empty when the stream is truncated or corrupt.
  // The snapshot format is backend-independent: a snapshot written on one
  // backend loads on any other.
  void Serialize(std::ostream* out) const;
  Status Deserialize(std::istream* in);

  // Disk-wide statistics: the merge of every segment's counters. (Computed
  // on demand so that concurrent builders only ever touch their own
  // segment's counters; call from a quiescent point when workers may run.)
  AccessStats stats() const;
  const AccessStats& segment_stats(uint32_t segment) const;
  void ResetStats();

  // Pushes disk-wide and per-segment page-access counters into `registry`
  // under `prefix` (e.g. "disk.segment.<name>.reads"), plus the backend's
  // own counters under `prefix + ".backend"`. Cold path; call from a
  // quiescent point, like stats().
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  friend class MvccManager;

  // The pre-MVCC read/write paths: counted, checksummed, fault-injected.
  // The public ReadPage/WritePage delegate here after (possibly) routing
  // through the attached manager; the manager calls back in under its own
  // lock for snapshot reads and commit write-through.
  Status ReadPageUnversioned(PageId id, Page* out);
  Status WritePageUnversioned(PageId id, const Page& page);
  // Uncounted, unverified backend read — version-retention bookkeeping.
  Status ReadPageRaw(PageId id, Page* out);
  // Meters a snapshot read served from a retained in-memory image.
  void CountSnapshotRead(PageId id);

  // Per-segment bookkeeping above the seam; page bytes live in backend_.
  struct Segment {
    std::string name;
    // checksums[i] covers page i; maintained on every successful write. The
    // vector's size is also the segment's logical page count.
    std::vector<uint64_t> checksums;
    AccessStats stats;
  };

  struct TornPage {
    PageId id;
    Page image;  // half-new half-old bytes, installed at RecoverFromCrash
  };

  // References into segments_ are stable (deque) — the lock only covers the
  // table lookup, never the page I/O.
  Segment& GetSegment(uint32_t segment);
  const Segment& GetSegment(uint32_t segment) const;

  mutable std::shared_mutex mu_;  // guards the segment table structure
  std::deque<Segment> segments_ ASR_GUARDED_BY(mu_);
  DiskOptions options_;
  std::unique_ptr<StorageBackend> backend_;
  FaultInjector* injector_ = nullptr;
  MvccManager* mvcc_ = nullptr;  // borrowed; see AttachMvcc
  std::vector<TornPage> pending_torn_ ASR_GUARDED_BY(mu_);
  // Relaxed atomic: sync requests can arrive from several pools (each
  // partition builder owns one) while metering stays per-segment.
  std::atomic<uint64_t> sync_requests_{0};
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_DISK_H_
