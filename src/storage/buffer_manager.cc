#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <utility>

namespace asr::storage {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    id_ = other.id_;
    frame_ = other.frame_;
    dirty_pending_ = other.dirty_pending_;
    other.manager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

Page& PageGuard::page() {
  ASR_DCHECK(valid());
  return *frame_;
}

const Page& PageGuard::page() const {
  ASR_DCHECK(valid());
  return *frame_;
}

void PageGuard::MarkDirty() {
  ASR_DCHECK(valid());
  dirty_pending_ = true;
}

void PageGuard::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(id_, dirty_pending_);
    manager_ = nullptr;
    frame_ = nullptr;
    dirty_pending_ = false;
  }
}

PageGuard BufferManager::Pin(PageId id) {
  Result<PageGuard> guard = TryPin(id);
  if (!guard.ok()) {
    std::fprintf(stderr, "BufferManager::Pin(%s): %s\n", id.ToString().c_str(),
                 guard.status().ToString().c_str());
    ASR_CHECK(guard.ok());
  }
  return std::move(*std::move(guard));
}

Result<PageGuard> BufferManager::TryPin(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    ++misses_;
#if ASR_METRICS_ENABLED
    ++SegCounters(id.segment).misses;
    obs::LiveTelemetry::Instance().buffer_misses.Inc();
#endif
    Frame frame;
    if (snapshot_ != nullptr) {
      ASR_RETURN_IF_ERROR(disk_->ReadPageSnapshot(id, *snapshot_, &frame.page));
    } else {
      ASR_RETURN_IF_ERROR(disk_->ReadPage(id, &frame.page));
    }
    it = frames_.emplace(id, std::move(frame)).first;
  } else {
    ++hits_;
#if ASR_METRICS_ENABLED
    ++SegCounters(id.segment).hits;
    obs::LiveTelemetry::Instance().buffer_hits.Inc();
#endif
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_pos);
      it->second.in_lru = false;
    }
  }
  ++it->second.pin_count;
  return PageGuard(this, id, &it->second.page);
}

PageGuard BufferManager::AllocatePinned(uint32_t segment) {
  ASR_CHECK(snapshot_ == nullptr);  // snapshot pools are read-only
  PageId id = disk_->AllocatePage(segment);
  std::lock_guard<std::mutex> lock(mu_);
  Frame frame;
  frame.dirty = true;
  auto it = frames_.emplace(id, std::move(frame)).first;
  ++it->second.pin_count;
  return PageGuard(this, id, &it->second.page);
}

void BufferManager::Unpin(PageId id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  ASR_CHECK(it != frames_.end());
  Frame& frame = it->second;
  ASR_CHECK(frame.pin_count > 0);
  ASR_CHECK(!(dirty && snapshot_ != nullptr));  // snapshot pools are read-only
  if (dirty) frame.dirty = true;
  if (--frame.pin_count == 0) {
    lru_.push_back(id);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
    EnforceCapacity();
  }
}

void BufferManager::EnforceCapacity() {
  while (lru_.size() > capacity_) {
    PageId victim = lru_.front();
    EvictFrame(victim);
  }
}

void BufferManager::EvictFrame(PageId id) {
  auto it = frames_.find(id);
  ASR_CHECK(it != frames_.end());
  Frame& frame = it->second;
  ASR_CHECK(frame.pin_count == 0 && frame.in_lru);
  evictions_.Inc();
#if ASR_METRICS_ENABLED
  ++SegCounters(id.segment).evictions;
#endif
  if (frame.dirty) {
    writebacks_.Inc();
    Status st;
    {
      obs::LatencyTimer timer(time_io_, &evict_writeback_us_);
      st = disk_->WritePage(id, frame.page);
    }
    // The unpin that triggered this eviction cannot receive a Status, so the
    // first failure sticks; the frame is dropped regardless (its content is
    // what the crash lost).
    if (!st.ok() && write_error_.ok()) write_error_ = st;
    if (st.ok()) NoteWriteBack(id.segment);
  }
  lru_.erase(frame.lru_pos);
  frames_.erase(it);
}

void BufferManager::NoteWriteBack(uint32_t segment) {
  if (durability_ == DurabilityMode::kOff) return;
  ++unsynced_writebacks_;
  if (std::find(dirty_segments_.begin(), dirty_segments_.end(), segment) ==
      dirty_segments_.end()) {
    dirty_segments_.push_back(segment);
  }
  if (durability_ == DurabilityMode::kPage ||
      unsynced_writebacks_ >= flush_batch_) {
    FlushRun();
  }
}

void BufferManager::FlushRun() {
  if (unsynced_writebacks_ == 0) return;
  {
    obs::LatencyTimer timer(time_io_, &flush_run_us_);
    for (uint32_t segment : dirty_segments_) {
      Status st = disk_->SyncSegment(segment);
      if (!st.ok() && write_error_.ok()) write_error_ = st;
    }
  }
  flush_run_sizes_.Observe(unsynced_writebacks_);
  ++group_flushes_;
  unsynced_writebacks_ = 0;
  dirty_segments_.clear();
}

Status BufferManager::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  // Write back all dirty frames (pinned frames stay resident but clean),
  // best-effort: a failed write-back does not stop the remaining flushes.
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      writebacks_.Inc();
      Status st = disk_->WritePage(id, frame.page);
      if (!st.ok() && write_error_.ok()) write_error_ = st;
      if (st.ok()) NoteWriteBack(id.segment);
      frame.dirty = false;
    }
  }
  // Drop unpinned frames.
  while (!lru_.empty()) EvictFrame(lru_.front());
  // A flush is a durability point in every non-off mode: close the open run
  // so nothing written back here is left unsynced.
  if (durability_ != DurabilityMode::kOff) FlushRun();
  return write_error_;
}

void BufferManager::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame& frame = it->second;
    if (frame.pin_count > 0) {
      ++it;
      continue;
    }
    if (frame.in_lru) lru_.erase(frame.lru_pos);
    it = frames_.erase(it);
  }
  write_error_ = Status::OK();
  // Restart point: whatever was in the open flush run died with the cached
  // frames; the next write-back starts a fresh run.
  unsynced_writebacks_ = 0;
  dirty_segments_.clear();
}

void BufferManager::ExportMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry->Set(prefix + ".hits", hits_);
  registry->Set(prefix + ".misses", misses_);
  registry->Set(prefix + ".evictions", evictions_.value());
  registry->Set(prefix + ".writebacks", writebacks_.value());
  registry->Set(prefix + ".capacity", capacity_);
  registry->Set(prefix + ".group_flushes", group_flushes_);
  registry->SetHistogram(prefix + ".flush_run_sizes", flush_run_sizes_);
  registry->SetHistogram(prefix + ".evict_writeback_us",
                         evict_writeback_us_.snapshot());
  registry->SetHistogram(prefix + ".flush_run_us", flush_run_us_.snapshot());
#if ASR_METRICS_ENABLED
  for (uint32_t seg = 0; seg < seg_counters_.size(); ++seg) {
    const SegmentCounters& c = seg_counters_[seg];
    if (c.hits == 0 && c.misses == 0 && c.evictions == 0) continue;
    const std::string seg_prefix =
        prefix + ".segment." + disk_->SegmentName(seg);
    registry->Set(seg_prefix + ".hits", c.hits);
    registry->Set(seg_prefix + ".misses", c.misses);
    registry->Set(seg_prefix + ".evictions", c.evictions);
  }
#endif
}

}  // namespace asr::storage
