// Counters of secondary-storage page accesses.
//
// The paper's entire evaluation metric is "the number of page accesses on
// secondary storage" (§5.6); every read and write that reaches the simulated
// disk is counted here so empirical runs are directly comparable with the
// analytical cost model.
//
// The fields are relaxed atomics with value-copy semantics. Most segments
// still follow the aggregation discipline — one accessor thread, disk-wide
// totals merged at quiescent points — but the multi-writer transaction path
// lets several writers read the *shared* object-base segments concurrently,
// and their metering lands on the same per-segment counters. Relaxed
// increments keep that sound without ordering cost, and single-threaded
// metered runs count bit-identically to the plain-field version.
#ifndef ASR_STORAGE_ACCESS_STATS_H_
#define ASR_STORAGE_ACCESS_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace asr::storage {

struct AccessStats {
  std::atomic<uint64_t> page_reads{0};
  std::atomic<uint64_t> page_writes{0};

  AccessStats() = default;
  AccessStats(uint64_t reads, uint64_t writes)
      : page_reads(reads), page_writes(writes) {}
  AccessStats(const AccessStats& other) { *this = other; }
  AccessStats& operator=(const AccessStats& other) {
    page_reads.store(other.page_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    page_writes.store(other.page_writes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  uint64_t reads() const {
    return page_reads.load(std::memory_order_relaxed);
  }
  uint64_t writes() const {
    return page_writes.load(std::memory_order_relaxed);
  }
  uint64_t total() const { return reads() + writes(); }

  AccessStats operator-(const AccessStats& other) const {
    return AccessStats(reads() - other.reads(), writes() - other.writes());
  }

  AccessStats& operator+=(const AccessStats& other) {
    page_reads.fetch_add(other.reads(), std::memory_order_relaxed);
    page_writes.fetch_add(other.writes(), std::memory_order_relaxed);
    return *this;
  }

  AccessStats operator+(const AccessStats& other) const {
    AccessStats out = *this;
    out += other;
    return out;
  }

  std::string ToString() const {
    return "reads=" + std::to_string(reads()) +
           " writes=" + std::to_string(writes());
  }
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_ACCESS_STATS_H_
