// Counters of secondary-storage page accesses.
//
// The paper's entire evaluation metric is "the number of page accesses on
// secondary storage" (§5.6); every read and write that reaches the simulated
// disk is counted here so empirical runs are directly comparable with the
// analytical cost model.
//
// The struct itself is deliberately plain (no atomics): concurrency is
// handled by aggregation discipline instead. Each disk segment keeps its own
// AccessStats written by at most one thread — parallel ASR builders meter
// into the counters of the segments they own — and disk-wide totals are the
// merge of the per-segment counters, taken at quiescent points (after
// worker join). This keeps single-threaded metered runs bit-identical with
// zero synchronization cost on the counting fast path.
#ifndef ASR_STORAGE_ACCESS_STATS_H_
#define ASR_STORAGE_ACCESS_STATS_H_

#include <cstdint>
#include <string>

namespace asr::storage {

struct AccessStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;

  uint64_t total() const { return page_reads + page_writes; }

  AccessStats operator-(const AccessStats& other) const {
    return AccessStats{page_reads - other.page_reads,
                       page_writes - other.page_writes};
  }

  AccessStats& operator+=(const AccessStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    return *this;
  }

  AccessStats operator+(const AccessStats& other) const {
    AccessStats out = *this;
    out += other;
    return out;
  }

  std::string ToString() const {
    return "reads=" + std::to_string(page_reads) +
           " writes=" + std::to_string(page_writes);
  }
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_ACCESS_STATS_H_
