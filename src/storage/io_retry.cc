#include "storage/io_retry.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

namespace asr::storage::io {

namespace {

// Transient-errno retry budget. EINTR is retried without limit (it is the
// caller's own signal traffic, not a device condition); the budget only
// bounds EAGAIN/ENOMEM loops so a persistently starved system eventually
// surfaces an error instead of hanging.
constexpr int kMaxTransientRetries = 8;
constexpr useconds_t kBackoffBaseUs = 100;

std::atomic<uint64_t> g_transient_retries{0};
std::atomic<uint64_t> g_eintr_retries{0};
std::atomic<uint64_t> g_resumed_short_reads{0};
std::atomic<uint64_t> g_resumed_short_writes{0};

std::string ErrnoMessage(const char* what, int err) {
  return std::string(what) + ": " + std::strerror(err);
}

// Sleeps for the attempt's backoff slot (100us, 200us, 400us, ...).
void Backoff(int attempt) {
  g_transient_retries.fetch_add(1, std::memory_order_relaxed);
  ::usleep(kBackoffBaseUs << attempt);
}

}  // namespace

bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK || err == ENOMEM;
}

uint64_t transient_retries() {
  return g_transient_retries.load(std::memory_order_relaxed);
}

uint64_t eintr_retries() {
  return g_eintr_retries.load(std::memory_order_relaxed);
}

uint64_t resumed_short_reads() {
  return g_resumed_short_reads.load(std::memory_order_relaxed);
}

uint64_t resumed_short_writes() {
  return g_resumed_short_writes.load(std::memory_order_relaxed);
}

Result<size_t> ReadAtMost(int fd, void* buf, size_t n, off_t off,
                          const char* what) {
  size_t done = 0;
  int transient = 0;
  while (done < n) {
    ssize_t got = ::pread(fd, static_cast<char*>(buf) + done, n - done,
                          off + static_cast<off_t>(done));
    if (got > 0) {
      if (done > 0) {
        // A short transfer is being continued from where it stopped.
        g_resumed_short_reads.fetch_add(1, std::memory_order_relaxed);
      }
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) break;  // EOF
    if (errno == EINTR) {
      g_eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (IsTransientErrno(errno) && transient < kMaxTransientRetries) {
      Backoff(transient++);
      continue;
    }
    return Status::IOError(ErrnoMessage(what, errno));
  }
  return done;
}

Status ReadFull(int fd, void* buf, size_t n, off_t off, const char* what) {
  Result<size_t> got = ReadAtMost(fd, buf, n, off, what);
  ASR_RETURN_IF_ERROR(got.status());
  if (*got != n) {
    return Status::IOError(std::string(what) + ": short read (" +
                           std::to_string(*got) + " of " + std::to_string(n) +
                           " bytes)");
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n, off_t off,
                 const char* what) {
  size_t done = 0;
  int transient = 0;
  while (done < n) {
    ssize_t put = ::pwrite(fd, static_cast<const char*>(buf) + done, n - done,
                           off + static_cast<off_t>(done));
    if (put > 0) {
      if (done > 0) {
        g_resumed_short_writes.fetch_add(1, std::memory_order_relaxed);
      }
      done += static_cast<size_t>(put);
      continue;
    }
    // pwrite returning 0 for a nonzero count is a non-advancing anomaly;
    // treat it like a transient condition rather than spinning forever.
    int err = put == 0 ? EAGAIN : errno;
    if (err == EINTR) {
      g_eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (IsTransientErrno(err) && transient < kMaxTransientRetries) {
      Backoff(transient++);
      continue;
    }
    return Status::IOError(ErrnoMessage(what, err));
  }
  return Status::OK();
}

Status Fdatasync(int fd, const char* what) {
  while (::fdatasync(fd) != 0) {
    if (errno == EINTR) {
      g_eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return Status::IOError(ErrnoMessage(what, errno));
  }
  return Status::OK();
}

Status Fsync(int fd, const char* what) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) {
      g_eintr_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return Status::IOError(ErrnoMessage(what, errno));
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage(("open dir " + dir).c_str(), errno));
  }
  Status st = Fsync(fd, ("fsync dir " + dir).c_str());
  ::close(fd);
  return st;
}

Status FsyncPath(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(
        ErrnoMessage(("open for fsync " + path).c_str(), errno));
  }
  Status st = Fsync(fd, ("fsync " + path).c_str());
  ::close(fd);
  return st;
}

Status PublishDurable(const std::string& tmp, const std::string& final_path) {
  Status st = FsyncPath(tmp);
  if (st.ok() && ::rename(tmp.c_str(), final_path.c_str()) != 0) {
    st = Status::IOError(
        ErrnoMessage(("rename " + tmp + " -> " + final_path).c_str(), errno));
  }
  if (!st.ok()) {
    // justified: best-effort cleanup of the unpublished temporary; the
    // Status being returned already carries the publish failure.
    (void)::unlink(tmp.c_str());
    return st;
  }
  const size_t slash = final_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : final_path.substr(0, slash);
  return FsyncDir(dir.empty() ? "/" : dir);
}

}  // namespace asr::storage::io
