#include "storage/fault_injector.h"

#include <utility>

namespace asr::storage {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWriteCrash:
      return "write_crash";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kReadError:
      return "read_error";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultSpec spec) {
  spec_ = std::move(spec);
  armed_ = true;
  crashed_ = false;
  fired_ = false;
  matching_ = 0;
  dropped_writes_ = 0;
}

void FaultInjector::Disarm() {
  armed_ = false;
  crashed_ = false;
}

bool FaultInjector::Matches(PageId id, const std::string& segment_name) const {
  if (spec_.segment >= 0 &&
      static_cast<int64_t>(id.segment) != spec_.segment) {
    return false;
  }
  if (!spec_.segment_prefix.empty() &&
      segment_name.compare(0, spec_.segment_prefix.size(),
                           spec_.segment_prefix) != 0) {
    return false;
  }
  return true;
}

FaultInjector::Action FaultInjector::OnWrite(PageId id,
                                             const std::string& segment_name) {
  if (crashed_) {
    ++dropped_writes_;
    return Action::kDropWrite;
  }
  if (!armed_ || spec_.kind == FaultKind::kReadError ||
      spec_.after_matching == 0 || !Matches(id, segment_name)) {
    return Action::kProceed;
  }
  if (++matching_ < spec_.after_matching) return Action::kProceed;
  fired_ = true;
  crashed_ = true;
  // The firing write surfaces an IOError to the caller, so it is not a
  // *silent* loss; dropped_writes_ meters only the post-crash drops.
  return spec_.kind == FaultKind::kTornWrite ? Action::kTornWrite
                                             : Action::kDropWrite;
}

FaultInjector::Action FaultInjector::OnRead(PageId id,
                                            const std::string& segment_name) {
  if (crashed_ || !armed_ || spec_.kind != FaultKind::kReadError ||
      spec_.after_matching == 0 || !Matches(id, segment_name)) {
    return Action::kProceed;
  }
  if (++matching_ < spec_.after_matching) return Action::kProceed;
  // One-shot transient error: fire once, then proceed normally.
  if (fired_) return Action::kProceed;
  fired_ = true;
  return Action::kFailRead;
}

}  // namespace asr::storage
