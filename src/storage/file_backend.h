// Raw-speed file-backed page store: one file per segment, pread/pwrite,
// optional mmap read path.
//
// This is the wall-clock substrate the ROADMAP's "as fast as the hardware
// allows" goal needs: pages live in real files (one per segment, pages at
// offset page_no * kPageSize), writes go through pwrite, and reads are
// served either by pread or — when DiskOptions::mmap_reads is set — by a
// MAP_SHARED mapping of the segment file, which turns a steady-state read
// into a single memcpy out of the OS page cache. Files are grown in chunks
// (ftruncate doubling) so page allocation is not a syscall per page, and the
// mapping is re-established only when the file capacity actually grows.
//
// Durability is intentionally NOT the point: no fsync is issued. Crash
// semantics in this codebase are *simulated* by the FaultInjector above the
// seam (in Disk), so they apply to this backend unchanged; the files exist
// for speed and for realistic I/O-path measurement, not for pulling the
// plug on the host.
//
// Concurrency: same contract as every backend — segment creation may run
// concurrently with access to existing segments (the table is guarded, the
// deque gives stable references), and each segment has one accessor thread
// at a time, which also serializes growth/remap of that segment's file.
#ifndef ASR_STORAGE_FILE_BACKEND_H_
#define ASR_STORAGE_FILE_BACKEND_H_

#include <atomic>
#include <deque>
#include <shared_mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/backend.h"

namespace asr::storage {

class FileBackend : public StorageBackend {
 public:
  // `dir` empty: create a private mkdtemp directory (removed, with all
  // segment files, on destruction). Non-empty: use it (must exist or be
  // creatable); the directory itself is kept, segment files are still
  // unlinked on destruction.
  FileBackend(std::string dir, bool mmap_reads);
  ~FileBackend() override;
  ASR_DISALLOW_COPY_AND_ASSIGN(FileBackend);

  BackendKind kind() const override { return BackendKind::kFile; }
  void AddSegment(const std::string& name) override;
  void AddPage(uint32_t segment) override;
  Status Read(uint32_t segment, uint32_t page_no, Page* out) override;
  Status Write(uint32_t segment, uint32_t page_no, const Page& page) override;
  void Prefetch(uint32_t segment, uint32_t page_no) override;
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const override;

  const std::string& dir() const { return dir_; }
  bool mmap_reads() const { return mmap_reads_; }

 private:
  struct Segment {
    int fd = -1;
    uint32_t pages = 0;          // logical page count
    uint32_t capacity_pages = 0; // pages the file (and mapping) can hold
    std::byte* map = nullptr;    // MAP_SHARED mapping when mmap_reads_
    std::string path;
  };

  Segment& Seg(uint32_t segment);
  const Segment& Seg(uint32_t segment) const;
  // Grows seg's file (and mapping) to hold at least `pages` pages.
  void Reserve(Segment* seg, uint32_t pages);

  mutable std::shared_mutex mu_;  // guards the segment table structure
  std::deque<Segment> segments_;
  std::string dir_;
  bool owns_dir_ = false;
  bool mmap_reads_ = false;

  // Relaxed atomics: bumped from per-segment accessor threads, read only at
  // quiescent export points. (Unlike AccessStats these cross segments, so
  // plain counters would race under parallel builds.)
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> mmap_reads_served_{0};
  std::atomic<uint64_t> remaps_{0};
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_FILE_BACKEND_H_
