// Raw-speed file-backed page store: one file per segment, pread/pwrite,
// optional mmap read path.
//
// This is the wall-clock substrate the ROADMAP's "as fast as the hardware
// allows" goal needs: pages live in real files (one per segment, pages at
// offset page_no * kPageSize), writes go through pwrite, and reads are
// served either by pread or — when DiskOptions::mmap_reads is set — by a
// MAP_SHARED mapping of the segment file, which turns a steady-state read
// into a single memcpy out of the OS page cache. Files are grown in chunks
// (ftruncate doubling) so page allocation is not a syscall per page, and the
// mapping is re-established only when the file capacity actually grows.
//
// Durability: Sync(segment)/SyncAll() issue fdatasync — the durability
// points the BufferManager's flush policy and the checkpoint path call.
// When constructed durable (DiskOptions::durability != kOff) the backend
// also fsyncs the storage directory after creating a segment file (the
// directory entry must survive the crash for the file to be findable) and
// fdatasyncs after ftruncate growth (the new size is metadata the next
// pread depends on). In the default non-durable configuration no sync is
// ever issued and the backend behaves exactly like the pre-durability one.
//
// Hardening: all transfers go through the io_retry loops (EINTR retry,
// short-transfer continuation, bounded transient backoff), a failed
// mmap/remap falls back to pread reads for that segment instead of
// aborting, and the first permanent write failure demotes the whole backend
// to read-only — reads keep being served, every later write fails fast with
// the original error, and the layers above degrade (maintenance marks the
// op lost, recovery quarantines the partition, queries navigate).
//
// Concurrency: same contract as every backend — segment creation may run
// concurrently with access to existing segments (the table is guarded, the
// deque gives stable references), and each segment has one accessor thread
// at a time, which also serializes growth/remap of that segment's file.
#ifndef ASR_STORAGE_FILE_BACKEND_H_
#define ASR_STORAGE_FILE_BACKEND_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/latency.h"
#include "storage/backend.h"

namespace asr::storage {

class FileBackend : public StorageBackend {
 public:
  // `dir` empty: create a private mkdtemp directory (removed, with all
  // segment files, on destruction). Non-empty: use it (must exist or be
  // creatable); the directory itself is kept, segment files are still
  // unlinked on destruction. `durable` turns on the structural fsyncs
  // (directory entry on segment creation, file metadata on growth).
  FileBackend(std::string dir, bool mmap_reads, bool durable = false);
  ~FileBackend() override;
  ASR_DISALLOW_COPY_AND_ASSIGN(FileBackend);

  BackendKind kind() const override { return BackendKind::kFile; }
  void AddSegment(const std::string& name) override;
  void AddPage(uint32_t segment) override;
  Status Read(uint32_t segment, uint32_t page_no, Page* out) override;
  Status Write(uint32_t segment, uint32_t page_no, const Page& page) override;
  void Prefetch(uint32_t segment, uint32_t page_no) override;
  Status Sync(uint32_t segment) override;
  Status SyncAll() override;
  bool read_only() const override {
    return read_only_.load(std::memory_order_acquire);
  }
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const override;

  const std::string& dir() const { return dir_; }
  bool mmap_reads() const { return mmap_reads_; }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t dir_fsyncs() const {
    return dir_fsyncs_.load(std::memory_order_relaxed);
  }
  uint64_t mmap_fallbacks() const {
    return mmap_fallbacks_.load(std::memory_order_relaxed);
  }
  // First permanent write failure (OK while healthy).
  Status write_error() const;

  // Wall-clock latency of the seam operations, microseconds. The file
  // backend is the wall-clock currency, so these are always on; they are
  // mirrored into the LiveTelemetry hub for the sampler and exported as
  // histograms next to the byte counters.
  obs::HistogramSnapshot read_latency() const { return read_us_.snapshot(); }
  obs::HistogramSnapshot write_latency() const {
    return write_us_.snapshot();
  }
  obs::HistogramSnapshot sync_latency() const { return sync_us_.snapshot(); }

  // Demotes the backend to read-only as if `why` had been a permanent write
  // failure (test hook for the degradation paths; also called internally).
  void EnterReadOnly(const Status& why);

 private:
  struct Segment {
    int fd = -1;
    uint32_t pages = 0;          // logical page count
    uint32_t capacity_pages = 0; // pages the file (and mapping) can hold
    std::byte* map = nullptr;    // MAP_SHARED mapping when mmap serves reads
    bool mmap_disabled = false;  // a failed (re)map demoted reads to pread
    std::string path;
  };

  Segment& Seg(uint32_t segment);
  const Segment& Seg(uint32_t segment) const;
  // Grows seg's file (and mapping) to hold at least `pages` pages.
  void Reserve(Segment* seg, uint32_t pages);

  mutable std::shared_mutex mu_;  // guards the segment table structure
  std::deque<Segment> segments_ ASR_GUARDED_BY(mu_);
  std::string dir_;
  bool owns_dir_ = false;
  bool mmap_reads_ = false;
  bool durable_ = false;

  std::atomic<bool> read_only_{false};
  mutable std::mutex error_mu_;  // guards write_error_ (cold path)
  Status write_error_ ASR_GUARDED_BY(error_mu_);

  // Relaxed atomics: bumped from per-segment accessor threads, read only at
  // quiescent export points. (Unlike AccessStats these cross segments, so
  // plain counters would race under parallel builds.)
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> mmap_reads_served_{0};
  std::atomic<uint64_t> remaps_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> dir_fsyncs_{0};
  std::atomic<uint64_t> mmap_fallbacks_{0};

  // Storage-seam latency histograms (shared-safe: per-segment accessor
  // threads observe, the telemetry sampler reads concurrently).
  obs::SharedHistogram read_us_;
  obs::SharedHistogram write_us_;
  obs::SharedHistogram sync_us_;
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_FILE_BACKEND_H_
