#include "storage/backend.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "storage/file_backend.h"

namespace asr::storage {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMemory:
      return "memory";
    case BackendKind::kFile:
      return "file";
  }
  return "unknown";
}

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kGroup:
      return "group";
    case DurabilityMode::kPage:
      return "page";
  }
  return "unknown";
}

DiskOptions DiskOptions::FromEnv() {
  DiskOptions o;
  const char* backend = std::getenv("ASR_STORAGE_BACKEND");
  if (backend != nullptr && std::strcmp(backend, "file") == 0) {
    o.backend = BackendKind::kFile;
  }
  const char* dir = std::getenv("ASR_STORAGE_DIR");
  if (dir != nullptr) o.file_dir = dir;
  const char* mmap = std::getenv("ASR_STORAGE_MMAP");
  if (mmap != nullptr) o.mmap_reads = std::strcmp(mmap, "0") != 0;
  const char* durability = std::getenv("ASR_DURABILITY");
  if (durability != nullptr) {
    if (std::strcmp(durability, "group") == 0) {
      o.durability = DurabilityMode::kGroup;
    } else if (std::strcmp(durability, "page") == 0) {
      o.durability = DurabilityMode::kPage;
    }
  }
  const char* batch = std::getenv("ASR_FLUSH_BATCH");
  if (batch != nullptr) {
    long v = std::strtol(batch, nullptr, 10);
    if (v >= 1) o.flush_batch = static_cast<uint32_t>(v);
  }
  return o;
}

std::unique_ptr<StorageBackend> MakeBackend(const DiskOptions& options) {
  switch (options.backend) {
    case BackendKind::kMemory:
      return std::make_unique<MemoryBackend>();
    case BackendKind::kFile:
      return std::make_unique<FileBackend>(
          options.file_dir, options.mmap_reads,
          options.durability != DurabilityMode::kOff);
  }
  ASR_CHECK(false);
  return nullptr;
}

void MemoryBackend::AddSegment(const std::string& name) {
  (void)name;
  std::unique_lock<std::shared_mutex> lock(mu_);
  segments_.emplace_back();
}

std::vector<Page>& MemoryBackend::Pages(uint32_t segment) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

void MemoryBackend::AddPage(uint32_t segment) {
  Pages(segment).emplace_back();
}

Status MemoryBackend::Read(uint32_t segment, uint32_t page_no, Page* out) {
  *out = Pages(segment)[page_no];
  return Status::OK();
}

Status MemoryBackend::Write(uint32_t segment, uint32_t page_no,
                            const Page& page) {
  Pages(segment)[page_no] = page;
  return Status::OK();
}

void MemoryBackend::Prefetch(uint32_t segment, uint32_t page_no) {
  std::vector<Page>& pages = Pages(segment);
  if (page_no >= pages.size()) return;
  // Pull the head of the page toward the caches; the subsequent Read's
  // memcpy streams the rest. Eight lines covers the leaf header plus the
  // first entries — where the batched probe's binary search lands first.
  const std::byte* p = pages[page_no].data();
  for (uint32_t line = 0; line < 8; ++line) {
    __builtin_prefetch(p + line * 64, /*rw=*/0, /*locality=*/1);
  }
}

void MemoryBackend::ExportMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t pages = 0;
  for (const std::vector<Page>& seg : segments_) pages += seg.size();
  registry->Set(prefix + ".kind", 0);
  registry->Set(prefix + ".resident_pages", pages);
}

}  // namespace asr::storage
