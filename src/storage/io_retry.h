// Hardened POSIX I/O: full-transfer pread/pwrite loops and transient-error
// classification.
//
// The one-shot ::pread/::pwrite calls the file backend started with treat a
// short transfer or an EINTR as a hard IOError, which turns an ordinary
// signal delivery into a spurious "disk failure". These helpers implement
// the standard discipline instead: continue a short transfer from where it
// stopped, retry EINTR immediately, retry transient errnos (EAGAIN/ENOMEM)
// a bounded number of times with exponential microsleep backoff, and only
// then surface an error. The errno of a surfaced failure is classified as
// transient or permanent so callers can decide between "try again later"
// and "degrade to read-only".
#ifndef ASR_STORAGE_IO_RETRY_H_
#define ASR_STORAGE_IO_RETRY_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace asr::storage::io {

// Errnos worth retrying (EINTR, EAGAIN, ENOMEM): the condition can clear on
// its own. Everything else (EIO, ENOSPC, EBADF, EROFS, ...) is permanent —
// retrying cannot fix a broken device or a full disk.
bool IsTransientErrno(int err);

// Reads exactly `n` bytes at `off`, retrying EINTR and continuing short
// transfers. Returns the bytes actually read: `n` normally, less when EOF
// arrived first (0 when `off` is at or past EOF). Errors become IOError
// tagged with `what` and the errno text.
Result<size_t> ReadAtMost(int fd, void* buf, size_t n, off_t off,
                          const char* what);

// ReadAtMost that treats EOF before `n` bytes as an IOError ("short read").
Status ReadFull(int fd, void* buf, size_t n, off_t off, const char* what);

// Writes exactly `n` bytes at `off` with the same retry discipline.
Status WriteFull(int fd, const void* buf, size_t n, off_t off,
                 const char* what);

// fdatasync/fsync with EINTR retry.
Status Fdatasync(int fd, const char* what);
Status Fsync(int fd, const char* what);

// Opens `dir`, fsyncs it, closes it — makes a just-created (or just-renamed)
// directory entry durable.
Status FsyncDir(const std::string& dir);

// Opens `path` read-only, fsyncs it, closes it — makes already-written file
// contents durable without the caller holding a descriptor.
Status FsyncPath(const std::string& path);

// Atomically publishes `tmp` at `final_path` with the full durability order:
// fsync(tmp), rename(tmp, final_path), fsync(parent directory). rename is
// atomic in the namespace but only an fsynced file has atomic contents, and
// the new name itself lives in the directory — hence both syncs. On failure
// the temporary is removed (best-effort) so no half-published file lingers.
// This is the one sanctioned checkpoint-publish path above the seam.
Status PublishDurable(const std::string& tmp, const std::string& final_path);

// Process-wide counts (relaxed; exported into backend metrics) of what the
// loops above absorbed before the caller saw a clean transfer:
// transient-errno backoff retries, immediate EINTR retries, and short
// pread/pwrite transfers that were resumed from where they stopped.
uint64_t transient_retries();
uint64_t eintr_retries();
uint64_t resumed_short_reads();
uint64_t resumed_short_writes();

}  // namespace asr::storage::io

#endif  // ASR_STORAGE_IO_RETRY_H_
