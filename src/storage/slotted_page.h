// Slotted page layout for variable-length records.
//
// Classic layout: a small header and a slot directory grow from the front of
// the page, record bytes grow from the back. Used by the object store (one
// record per object) so that tuple objects, set instances, and padded
// synthetic objects can share one page format.
//
//   [slot_count:u16][free_end:u16][slot 0][slot 1]... ...records...]
//
// A slot is [offset:u16][length:u16]. A deleted record's slot keeps its
// offset and has the high bit of `length` set; the low 15 bits remember the
// hole's capacity so the slot can be reused by a same-or-smaller record.
// Record lengths are therefore limited to 32767 bytes (far above the 4056
// byte page).
#ifndef ASR_STORAGE_SLOTTED_PAGE_H_
#define ASR_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>

#include "storage/page.h"

namespace asr::storage {

class SlottedPage {
 public:
  static constexpr uint16_t kTombstoneBit = 0x8000;
  static constexpr uint32_t kHeaderSize = 4;
  static constexpr uint32_t kSlotSize = 4;

  // Prepares an empty slotted page.
  static void Init(Page* page);

  // Inserts a record; returns the slot index or -1 when it does not fit.
  static int Insert(Page* page, const void* data, uint16_t len);

  // True when a record of `len` bytes would fit (fresh space or a hole).
  static bool Fits(const Page& page, uint16_t len);

  // True when `slot` holds a live record.
  static bool IsLive(const Page& page, int slot);

  // Length of the live record at `slot`.
  static uint16_t RecordLength(const Page& page, int slot);

  // Copies the live record at `slot` into `out` (size it via RecordLength).
  static void Read(const Page& page, int slot, void* out);

  // Overwrites the record at `slot` in place; `len` must equal the record's
  // current length.
  static void WriteInPlace(Page* page, int slot, const void* data,
                           uint16_t len);

  // Tombstones `slot`; its space can be reused by later inserts.
  static void Delete(Page* page, int slot);

  static uint16_t slot_count(const Page& page) {
    return page.Read<uint16_t>(0);
  }

  // Contiguous free bytes between the slot directory and the record area.
  static uint32_t FreeSpace(const Page& page);

 private:
  static uint16_t free_end(const Page& page) { return page.Read<uint16_t>(2); }
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_SLOTTED_PAGE_H_
