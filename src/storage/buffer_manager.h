// Buffer manager: pin/unpin interface with LRU replacement over the
// simulated disk.
//
// The analytical model charges one secondary-storage access per page touched,
// i.e. it assumes no buffering across the pages of one operation. Metered
// experiments therefore run with capacity 0 — every unpin immediately evicts
// (writing back if dirty), so each logical page visit is one counted disk
// access — while applications that just want the library fast can configure a
// real cache capacity.
#ifndef ASR_STORAGE_BUFFER_MANAGER_H_
#define ASR_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace asr::storage {

class BufferManager;

// RAII pin on one page. While alive, the frame is resident and stable;
// destruction unpins (and, if marked dirty, schedules a write-back).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard() { Release(); }
  ASR_DISALLOW_COPY_AND_ASSIGN(PageGuard);

  bool valid() const { return manager_ != nullptr; }
  PageId id() const { return id_; }

  Page& page();
  const Page& page() const;

  // Marks the frame dirty; it is written back to disk when evicted.
  void MarkDirty();

  // Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferManager;
  PageGuard(BufferManager* manager, PageId id, Page* frame)
      : manager_(manager), id_(id), frame_(frame) {}

  BufferManager* manager_ = nullptr;
  PageId id_;
  Page* frame_ = nullptr;
  bool dirty_pending_ = false;
};

class BufferManager {
 public:
  // `capacity` is the number of unpinned frames retained; 0 means unbuffered
  // (metering mode). Pinned frames are always resident regardless. The
  // write-back sync policy comes from the disk's options (DurabilityMode):
  // kOff issues no syncs (bit-identical to a durability-unaware pool), kPage
  // syncs the segment after every dirty write-back, kGroup batches
  // flush_batch write-backs and syncs each touched segment once per run.
  BufferManager(Disk* disk, size_t capacity)
      : disk_(disk),
        capacity_(capacity),
        durability_(disk->options().durability),
        flush_batch_(disk->options().flush_batch < 1
                         ? 1
                         : disk->options().flush_batch),
        time_io_(disk->options().backend == BackendKind::kFile) {}
  // Snapshot-mode pool: every miss reads the page image as of `snapshot`'s
  // epoch (Disk::ReadPageSnapshot) instead of the live state, and the pool
  // is read-only — dirtying a frame or allocating through it is a
  // programming error. The snapshot handle is borrowed and must outlive
  // the pool.
  BufferManager(Disk* disk, size_t capacity, const PageSnapshot* snapshot)
      : BufferManager(disk, capacity) {
    snapshot_ = snapshot;
  }
  // Destruction is best-effort teardown; a caller that needs durability (or
  // wants to observe write-back faults) calls FlushAll() itself first.
  // justified: the destructor has no way to surface a Status, and the sticky
  // write_error_ already recorded any failure for commit points to consult.
  ~BufferManager() { (void)FlushAll(); }
  ASR_DISALLOW_COPY_AND_ASSIGN(BufferManager);

  // Pins `id`, reading it from disk on a miss. Aborts if the read fails
  // (checksum mismatch or injected fault) — the hot-path contract that pages
  // reached through healthy structures are readable. Triage paths that
  // expect damage use TryPin.
  PageGuard Pin(PageId id);

  // Pin variant that surfaces read failures as a Status instead of
  // aborting.
  Result<PageGuard> TryPin(PageId id);

  // Allocates a fresh zeroed page in `segment` and pins it dirty, without a
  // disk read (the page has no prior contents).
  PageGuard AllocatePinned(uint32_t segment);

  // Writes back all dirty frames and drops every unpinned frame. Returns
  // the first write-back failure — including one recorded earlier by an
  // eviction (the sticky error below) — while still flushing what it can.
  Status FlushAll();

  // Discards every unpinned frame WITHOUT write-back and clears the sticky
  // write error: the restart point after a simulated crash, where cached
  // (possibly never-persisted) frames are RAM contents that did not survive.
  void DropAll();

  // First write-back failure since the last DropAll(), from any eviction or
  // flush. Evictions cannot propagate a Status to the unpin that triggered
  // them, so the error sticks here; maintenance commit points consult it
  // before declaring an operation durable. (By value: a reference into
  // guarded state would dangle once the lock is released.)
  Status write_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return write_error_;
  }
  bool has_write_error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !write_error_.ok();
  }

  Disk* disk() { return disk_; }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_.value();
  }
  uint64_t writebacks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return writebacks_.value();
  }
  DurabilityMode durability() const { return durability_; }
  uint64_t group_flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return group_flushes_;
  }

  // Wall-clock latency of dirty-eviction write-backs and group-flush sync
  // runs, microseconds. Timed only on the file backend (time_io_), so the
  // metered memory-backend hot path never reads the clock.
  obs::HistogramSnapshot writeback_latency() const {
    return evict_writeback_us_.snapshot();
  }
  obs::HistogramSnapshot flush_run_latency() const {
    return flush_run_us_.snapshot();
  }

  // Pushes this pool's counters into `registry` under `prefix`: totals
  // (hits/misses/evictions/writebacks) plus, when metrics are compiled in,
  // per-segment hit/miss/eviction attribution keyed by segment name. Cold
  // path only — call at quiescent points (the single-writer discipline).
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    int pin_count = 0;
    bool dirty = false;
    // Position in lru_ when unpinned; lru_.end() while pinned.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id, bool dirty);
  void EnforceCapacity() ASR_REQUIRES(mu_);
  void EvictFrame(PageId id) ASR_REQUIRES(mu_);

  // Durability hook after every dirty write-back: kPage syncs the segment
  // immediately; kGroup marks it touched and syncs the whole run when
  // flush_batch write-backs accumulated. Sync failures stick in
  // write_error_ like write-back failures (commit points consult it).
  void NoteWriteBack(uint32_t segment) ASR_REQUIRES(mu_);
  // Syncs every touched segment and closes the current run.
  void FlushRun() ASR_REQUIRES(mu_);

#if ASR_METRICS_ENABLED
  // Per-segment attribution of buffer behavior (hit/miss/eviction), indexed
  // by segment id.
  struct SegmentCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  SegmentCounters& SegCounters(uint32_t segment) ASR_REQUIRES(mu_) {
    if (segment >= seg_counters_.size()) seg_counters_.resize(segment + 1);
    return seg_counters_[segment];
  }
  std::vector<SegmentCounters> seg_counters_ ASR_GUARDED_BY(mu_);
#endif

  Disk* disk_;
  size_t capacity_;
  // Read-only epoch pinned by this pool; nullptr = live pool.
  const PageSnapshot* snapshot_ = nullptr;
  // Write-back sync policy (snapshot of the disk's options at construction).
  DurabilityMode durability_ = DurabilityMode::kOff;
  uint32_t flush_batch_ = 64;

  // One lock for the pool: frame table, LRU, flush-run state, counters.
  // Uncontended in today's single-accessor workloads; the precondition for
  // the ROADMAP's multi-writer ASR maintenance sharing one pool. Lock order:
  // mu_ is held across Disk calls (pool -> disk, never the reverse).
  mutable std::mutex mu_;
  uint32_t unsynced_writebacks_ ASR_GUARDED_BY(mu_) = 0;
  // Segments touched since the last sync run.
  std::vector<uint32_t> dirty_segments_ ASR_GUARDED_BY(mu_);
  // Plain (not HotCounter): benches assert it.
  uint64_t group_flushes_ ASR_GUARDED_BY(mu_) = 0;
  std::unordered_map<PageId, Frame> frames_ ASR_GUARDED_BY(mu_);
  // front = oldest unpinned frame
  std::list<PageId> lru_ ASR_GUARDED_BY(mu_);
  uint64_t hits_ ASR_GUARDED_BY(mu_) = 0;
  uint64_t misses_ ASR_GUARDED_BY(mu_) = 0;
  Status write_error_ ASR_GUARDED_BY(mu_);
  obs::HotCounter evictions_ ASR_GUARDED_BY(mu_);
  obs::HotCounter writebacks_ ASR_GUARDED_BY(mu_);
  // Write-backs covered per sync run.
  obs::HotHistogram flush_run_sizes_ ASR_GUARDED_BY(mu_);
  // Whether seam operations are wall-clock timed (file backend only).
  bool time_io_ = false;
  // Shared-safe atomics; sampled concurrently by the telemetry thread.
  obs::SharedHistogram evict_writeback_us_;
  obs::SharedHistogram flush_run_us_;
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_BUFFER_MANAGER_H_
