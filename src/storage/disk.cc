#include "storage/disk.h"

#include <mutex>
#include <utility>

#include "common/binary_io.h"

namespace asr::storage {

Disk::Segment& Disk::GetSegment(uint32_t segment) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

const Disk::Segment& Disk::GetSegment(uint32_t segment) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

uint32_t Disk::CreateSegment(std::string name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint32_t id = static_cast<uint32_t>(segments_.size());
  segments_.push_back(Segment{std::move(name), {}, {}});
  return id;
}

PageId Disk::AllocatePage(uint32_t segment) {
  Segment& seg = GetSegment(segment);
  PageId id{segment, static_cast<uint32_t>(seg.pages.size())};
  seg.pages.emplace_back();
  return id;
}

void Disk::ReadPage(PageId id, Page* out) {
  Segment& seg = GetSegment(id.segment);
  ASR_CHECK(id.page_no < seg.pages.size());
  *out = seg.pages[id.page_no];
  ++seg.stats.page_reads;
}

void Disk::WritePage(PageId id, const Page& page) {
  Segment& seg = GetSegment(id.segment);
  ASR_CHECK(id.page_no < seg.pages.size());
  seg.pages[id.page_no] = page;
  ++seg.stats.page_writes;
}

uint32_t Disk::SegmentPageCount(uint32_t segment) const {
  return static_cast<uint32_t>(GetSegment(segment).pages.size());
}

const std::string& Disk::SegmentName(uint32_t segment) const {
  return GetSegment(segment).name;
}

const AccessStats& Disk::segment_stats(uint32_t segment) const {
  return GetSegment(segment).stats;
}

AccessStats Disk::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  AccessStats total;
  for (const Segment& seg : segments_) total += seg.stats;
  return total;
}

void Disk::ResetStats() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& seg : segments_) seg.stats = AccessStats{};
}

void Disk::ExportMetrics(obs::MetricsRegistry* registry,
                         const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  AccessStats total;
  uint64_t pages = 0;
  for (const Segment& seg : segments_) {
    total += seg.stats;
    pages += seg.pages.size();
    if (seg.stats.total() == 0) continue;
    const std::string seg_prefix = prefix + ".segment." + seg.name;
    registry->Set(seg_prefix + ".reads", seg.stats.page_reads);
    registry->Set(seg_prefix + ".writes", seg.stats.page_writes);
  }
  registry->Set(prefix + ".reads", total.page_reads);
  registry->Set(prefix + ".writes", total.page_writes);
  registry->Set(prefix + ".segments", segments_.size());
  registry->Set(prefix + ".pages", pages);
}

void Disk::Serialize(std::ostream* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(segments_.size()));
  for (const Segment& seg : segments_) {
    io::WriteString(out, seg.name);
    io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(seg.pages.size()));
    for (const Page& page : seg.pages) {
      out->write(reinterpret_cast<const char*>(page.data()), kPageSize);
    }
  }
}

Status Disk::Deserialize(std::istream* in) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    ASR_CHECK(segments_.empty());
  }
  Result<uint32_t> seg_count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(seg_count.status());
  for (uint32_t s = 0; s < *seg_count; ++s) {
    Result<std::string> name = io::ReadString(in);
    ASR_RETURN_IF_ERROR(name.status());
    uint32_t seg = CreateSegment(*name);
    Result<uint32_t> page_count = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(page_count.status());
    for (uint32_t p = 0; p < *page_count; ++p) {
      PageId id = AllocatePage(seg);
      Page page;
      in->read(reinterpret_cast<char*>(page.data()), kPageSize);
      if (!in->good()) {
        return Status::Corruption("truncated page data in snapshot");
      }
      GetSegment(id.segment).pages[id.page_no] = page;
    }
  }
  return Status::OK();
}

}  // namespace asr::storage
