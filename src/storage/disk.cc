#include "storage/disk.h"

#include <cstring>
#include <mutex>
#include <utility>

#include "common/binary_io.h"
#include "storage/mvcc.h"

namespace asr::storage {

namespace {

// FNV-1a over the page image, folded 8 bytes at a time (kPageSize is a
// multiple of 8). Word folding keeps the dependent-multiply chain 8x shorter
// than the byte-at-a-time form — checksums sit on every counted I/O, so this
// is squarely on the wall-clock path. Not cryptographic; it only has to
// catch torn sectors and stray stomps, like a real page checksum.
uint64_t PageChecksum(const Page& page) {
  const std::byte* bytes = page.data();
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < kPageSize; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    h ^= word;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t ZeroPageChecksum() {
  static const uint64_t checksum = PageChecksum(Page{});
  return checksum;
}

}  // namespace

Disk::Disk(const DiskOptions& options)
    : options_(options), backend_(MakeBackend(options)) {}

Status Disk::SyncSegment(uint32_t segment) {
  sync_requests_.fetch_add(1, std::memory_order_relaxed);
  return backend_->Sync(segment);
}

Status Disk::SyncAll() {
  sync_requests_.fetch_add(1, std::memory_order_relaxed);
  return backend_->SyncAll();
}

Disk::Segment& Disk::GetSegment(uint32_t segment) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

const Disk::Segment& Disk::GetSegment(uint32_t segment) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

uint32_t Disk::CreateSegment(std::string name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint32_t id = static_cast<uint32_t>(segments_.size());
  backend_->AddSegment(name);
  segments_.push_back(Segment{std::move(name), {}, {}});
  return id;
}

PageId Disk::AllocatePage(uint32_t segment) {
  // Registered segments grow their checksum vector under the mvcc commit
  // lock: snapshot readers index into it under the shared side, and a
  // vector relocation mid-read is exactly the race the lock exists for.
  TxnCommitLock mvcc_guard;
  if (mvcc_ != nullptr) mvcc_guard = mvcc_->LockForAllocate(segment);
  Segment& seg = GetSegment(segment);
  PageId id{segment, static_cast<uint32_t>(seg.checksums.size())};
  backend_->AddPage(segment);
  seg.checksums.push_back(ZeroPageChecksum());
  return id;
}

void Disk::AttachMvcc(MvccManager* mvcc) {
  mvcc_ = mvcc;
  if (mvcc_ != nullptr) mvcc_->disk_ = this;
}

Status Disk::ReadPage(PageId id, Page* out) {
  if (mvcc_ != nullptr) {
    // Read-your-writes: a covered page staged by this thread's transaction
    // wins over the committed image. Uncounted — the staged image lives in
    // memory, and the commit write is the metered access.
    if (mvcc_->TryReadStaged(id, out)) return Status::OK();
    // Registered segments read under the shared version-table lock so a
    // concurrent commit cannot rewrite the backend image mid-read.
    Status routed;
    if (mvcc_->RouteRead(this, id, out, &routed)) return routed;
  }
  return ReadPageUnversioned(id, out);
}

Status Disk::ReadPageSnapshot(PageId id, const PageSnapshot& snap,
                              Page* out) {
  ASR_CHECK(mvcc_ != nullptr);
  return mvcc_->ReadSnapshotPage(this, id, snap, out);
}

Status Disk::ReadPageRaw(PageId id, Page* out) {
  return backend_->Read(id.segment, id.page_no, out);
}

void Disk::CountSnapshotRead(PageId id) {
  ++GetSegment(id.segment).stats.page_reads;
}

Status Disk::ReadPageUnversioned(PageId id, Page* out) {
  Segment& seg = GetSegment(id.segment);
  ASR_CHECK(id.page_no < seg.checksums.size());
  if (injector_ != nullptr &&
      injector_->OnRead(id, seg.name) == FaultInjector::Action::kFailRead) {
    ++seg.stats.page_reads;
    return Status::IOError("injected read fault on " + seg.name + " page " +
                           std::to_string(id.page_no));
  }
  ASR_RETURN_IF_ERROR(backend_->Read(id.segment, id.page_no, out));
  ++seg.stats.page_reads;
  // While the injector reports a crash the process is "still up": reads are
  // served through the cache fiction and verification waits for the restart
  // point (RecoverFromCrash), where torn sectors become visible.
  if (injector_ != nullptr && injector_->crashed()) return Status::OK();
  if (PageChecksum(*out) != seg.checksums[id.page_no]) {
    return Status::Corruption("checksum mismatch on " + seg.name + " page " +
                              std::to_string(id.page_no));
  }
  return Status::OK();
}

Status Disk::WritePage(PageId id, const Page& page) {
  if (mvcc_ != nullptr) {
    Status routed;
    if (mvcc_->RouteWrite(this, id, page, &routed)) return routed;
  }
  return WritePageUnversioned(id, page);
}

Status Disk::WritePageUnversioned(PageId id, const Page& page) {
  Segment& seg = GetSegment(id.segment);
  ASR_CHECK(id.page_no < seg.checksums.size());
  if (injector_ != nullptr) {
    switch (injector_->OnWrite(id, seg.name)) {
      case FaultInjector::Action::kProceed:
        break;
      case FaultInjector::Action::kDropWrite:
        // Lost in the crash: content and checksum keep their old value, so
        // the loss is checksum-invisible (caught by cross-structure checks).
        return Status::IOError("write to " + seg.name + " page " +
                               std::to_string(id.page_no) +
                               " lost in simulated crash");
      case FaultInjector::Action::kTornWrite: {
        // Half the sector makes it to the platter. The torn image is staged
        // until RecoverFromCrash: while the process lives, the cache serves
        // the full image below; the stale checksum is what triage finds.
        TornPage torn{id, Page{}};
        Status read = backend_->Read(id.segment, id.page_no, &torn.image);
        if (!read.ok()) return read;
        std::memcpy(torn.image.data(), page.data(), kPageSize / 2);
        {
          std::unique_lock<std::shared_mutex> lock(mu_);
          pending_torn_.push_back(std::move(torn));
        }
        ASR_RETURN_IF_ERROR(backend_->Write(id.segment, id.page_no, page));
        ++seg.stats.page_writes;
        return Status::IOError("write to " + seg.name + " page " +
                               std::to_string(id.page_no) +
                               " torn in simulated crash");
      }
      case FaultInjector::Action::kFailRead:
        ASR_CHECK(false);  // never returned by OnWrite
    }
  }
  ASR_RETURN_IF_ERROR(backend_->Write(id.segment, id.page_no, page));
  seg.checksums[id.page_no] = PageChecksum(page);
  ++seg.stats.page_writes;
  return Status::OK();
}

void Disk::PrefetchPage(PageId id) {
  if (!id.IsValid()) return;
  backend_->Prefetch(id.segment, id.page_no);
}

Status Disk::VerifyPage(PageId id) {
  Segment& seg = GetSegment(id.segment);
  ASR_CHECK(id.page_no < seg.checksums.size());
  ++seg.stats.page_reads;
  Page page;
  ASR_RETURN_IF_ERROR(backend_->Read(id.segment, id.page_no, &page));
  if (PageChecksum(page) != seg.checksums[id.page_no]) {
    return Status::Corruption("checksum mismatch on " + seg.name + " page " +
                              std::to_string(id.page_no));
  }
  return Status::OK();
}

Status Disk::VerifySegment(uint32_t segment) {
  const uint32_t pages = SegmentPageCount(segment);
  for (uint32_t p = 0; p < pages; ++p) {
    ASR_RETURN_IF_ERROR(VerifyPage(PageId{segment, p}));
  }
  return Status::OK();
}

void Disk::RecoverFromCrash() {
  std::vector<TornPage> torn;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    torn.swap(pending_torn_);
  }
  for (TornPage& t : torn) {
    Segment& seg = GetSegment(t.id.segment);
    ASR_CHECK(t.id.page_no < seg.checksums.size());
    // Install the torn bytes; the checksum (of the full image) stays, so the
    // page now fails verification — exactly a torn sector after restart.
    ASR_CHECK(backend_->Write(t.id.segment, t.id.page_no, t.image).ok());
  }
  if (injector_ != nullptr) injector_->Disarm();
}

uint32_t Disk::SegmentPageCount(uint32_t segment) const {
  return static_cast<uint32_t>(GetSegment(segment).checksums.size());
}

const std::string& Disk::SegmentName(uint32_t segment) const {
  return GetSegment(segment).name;
}

const AccessStats& Disk::segment_stats(uint32_t segment) const {
  return GetSegment(segment).stats;
}

AccessStats Disk::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  AccessStats total;
  for (const Segment& seg : segments_) total += seg.stats;
  return total;
}

void Disk::ResetStats() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& seg : segments_) seg.stats = AccessStats{};
}

void Disk::ExportMetrics(obs::MetricsRegistry* registry,
                         const std::string& prefix) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    AccessStats total;
    uint64_t pages = 0;
    for (const Segment& seg : segments_) {
      total += seg.stats;
      pages += seg.checksums.size();
      if (seg.stats.total() == 0) continue;
      const std::string seg_prefix = prefix + ".segment." + seg.name;
      registry->Set(seg_prefix + ".reads", seg.stats.page_reads);
      registry->Set(seg_prefix + ".writes", seg.stats.page_writes);
    }
    registry->Set(prefix + ".reads", total.page_reads);
    registry->Set(prefix + ".writes", total.page_writes);
    registry->Set(prefix + ".segments", segments_.size());
    registry->Set(prefix + ".pages", pages);
    registry->Set(prefix + ".sync_requests",
                  sync_requests_.load(std::memory_order_relaxed));
  }
  backend_->ExportMetrics(registry, prefix + ".backend");
}

void Disk::Serialize(std::ostream* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(segments_.size()));
  for (uint32_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    io::WriteString(out, seg.name);
    io::WriteScalar<uint32_t>(out, static_cast<uint32_t>(seg.checksums.size()));
    Page page;
    for (uint32_t p = 0; p < seg.checksums.size(); ++p) {
      // Uncounted raw read: snapshots are maintenance, not workload.
      ASR_CHECK(backend_->Read(s, p, &page).ok());
      out->write(reinterpret_cast<const char*>(page.data()), kPageSize);
    }
  }
}

Status Disk::Deserialize(std::istream* in) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    ASR_CHECK(segments_.empty());
  }
  // Deserialize into a staging area and install only on full success: a
  // truncated or corrupt snapshot must leave the disk empty, never
  // half-populated (a partial segment table would satisfy later page-bound
  // checks with pages that were never loaded). Pages are staged in memory
  // and pushed to the backend only after the stream parsed completely.
  struct StagedSegment {
    std::string name;
    std::vector<Page> pages;
  };
  std::deque<StagedSegment> staged;
  Result<uint32_t> seg_count = io::ReadScalar<uint32_t>(in);
  ASR_RETURN_IF_ERROR(seg_count.status());
  for (uint32_t s = 0; s < *seg_count; ++s) {
    Result<std::string> name = io::ReadString(in);
    ASR_RETURN_IF_ERROR(name.status());
    staged.push_back(StagedSegment{std::move(*name), {}});
    StagedSegment& seg = staged.back();
    Result<uint32_t> page_count = io::ReadScalar<uint32_t>(in);
    ASR_RETURN_IF_ERROR(page_count.status());
    // Pages are read one at a time, so an absurd count from a corrupt
    // header fails at the first missing page instead of allocating for it.
    for (uint32_t p = 0; p < *page_count; ++p) {
      Page page;
      in->read(reinterpret_cast<char*>(page.data()), kPageSize);
      if (!in->good()) {
        return Status::Corruption("truncated page data in snapshot");
      }
      seg.pages.push_back(page);
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segments_.empty());
  for (uint32_t s = 0; s < staged.size(); ++s) {
    StagedSegment& src = staged[s];
    backend_->AddSegment(src.name);
    Segment seg;
    seg.name = std::move(src.name);
    for (uint32_t p = 0; p < src.pages.size(); ++p) {
      backend_->AddPage(s);
      ASR_CHECK(backend_->Write(s, p, src.pages[p]).ok());
      seg.checksums.push_back(PageChecksum(src.pages[p]));
    }
    segments_.push_back(std::move(seg));
  }
  return Status::OK();
}

}  // namespace asr::storage
