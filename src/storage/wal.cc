#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "obs/events.h"
#include "storage/io_retry.h"

namespace asr::storage {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr size_t kHeaderBytes = 8;  // u32 length + u32 crc

void PutU32(std::byte* out, uint32_t v) {
  out[0] = static_cast<std::byte>(v & 0xFF);
  out[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  out[2] = static_cast<std::byte>((v >> 16) & 0xFF);
  out[3] = static_cast<std::byte>((v >> 24) & 0xFF);
}

uint32_t GetU32(const std::byte* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const ReplayFn& replay, ReplayStats* stats_out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open wal " + path + ": " + std::strerror(errno));
  }
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path, fd));

  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek wal " + path + ": " + std::strerror(errno));
  }

  // Scan valid frames from the head. The loop exits in one of three ways:
  // clean EOF at a frame boundary, a cut-short frame (torn tail), or a CRC
  // mismatch (corrupt suffix). Only the valid prefix is replayed.
  ReplayStats stats;
  uint64_t off = 0;
  std::vector<std::byte> payload;
  while (off + kHeaderBytes <= static_cast<uint64_t>(size)) {
    std::byte header[kHeaderBytes];
    ASR_RETURN_IF_ERROR(io::ReadFull(fd, header, kHeaderBytes,
                                     static_cast<off_t>(off), "wal header"));
    const uint32_t len = GetU32(header);
    const uint32_t crc = GetU32(header + 4);
    if (len > kMaxRecordBytes) {
      // An absurd length is indistinguishable from a stomped header; treat
      // the suffix as corrupt rather than trusting the frame boundary.
      stats.corrupt_suffix = true;
      break;
    }
    if (off + kHeaderBytes + len > static_cast<uint64_t>(size)) {
      stats.torn_tail = true;  // payload cut short by the crash
      break;
    }
    payload.resize(len);
    ASR_RETURN_IF_ERROR(io::ReadFull(fd, payload.data(), len,
                                     static_cast<off_t>(off + kHeaderBytes),
                                     "wal payload"));
    if (Crc32(payload.data(), len) != crc) {
      stats.corrupt_suffix = true;
      break;
    }
    if (replay != nullptr) {
      replay(std::string_view(reinterpret_cast<const char*>(payload.data()),
                              len));
    }
    ++stats.records;
    off += kHeaderBytes + len;
  }
  stats.valid_bytes = off;
  if (off < static_cast<uint64_t>(size)) {
    stats.dropped_bytes = static_cast<uint64_t>(size) - off;
    if (!stats.corrupt_suffix) stats.torn_tail = true;  // partial header
    // Quarantine the suffix: truncate back to the last valid record so the
    // next Append produces a well-formed tail instead of burying the torn
    // bytes under new frames.
    if (::ftruncate(fd, static_cast<off_t>(off)) != 0) {
      return Status::IOError("ftruncate wal " + path + ": " +
                             std::strerror(errno));
    }
    ASR_EVENT(stats.corrupt_suffix ? obs::EventKind::kWalCorruptSuffix
                                   : obs::EventKind::kWalTornTail,
              "path=" + path +
                  " dropped_bytes=" + std::to_string(stats.dropped_bytes) +
                  " valid_records=" + std::to_string(stats.records));
  }
  // asrlint:allow(lock-discipline) pre-publication init: no other thread can
  // hold a reference to `wal` before Open() returns it.
  wal->tail_ = off;
  wal->replay_ = stats;
  if (stats_out != nullptr) *stats_out = stats;
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Append(std::string_view payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("wal record exceeds " +
                                   std::to_string(kMaxRecordBytes) + " bytes");
  }
  std::vector<std::byte> frame(kHeaderBytes + payload.size());
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, Crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  // One pwrite per record, issued under the tail lock: a crash can tear the
  // frame but two Appends can never interleave or reuse an offset.
  std::lock_guard<std::mutex> lock(mu_);
  {
    obs::LatencyTimer timer(
        true, &append_us_, &obs::LiveTelemetry::Instance().wal_append_us);
    ASR_RETURN_IF_ERROR(io::WriteFull(fd_, frame.data(), frame.size(),
                                      static_cast<off_t>(tail_),
                                      "wal append"));
  }
  tail_ += frame.size();
  records_appended_.Inc();
  bytes_appended_.Inc(frame.size());
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  {
    obs::LatencyTimer timer(true, &sync_us_,
                            &obs::LiveTelemetry::Instance().wal_sync_us);
    ASR_RETURN_IF_ERROR(io::Fdatasync(fd_, "wal fdatasync"));
  }
  syncs_.Inc();
  return Status::OK();
}

void WriteAheadLog::ExportMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry->Set(prefix + ".records_appended", records_appended_.value());
  registry->Set(prefix + ".bytes_appended", bytes_appended_.value());
  registry->Set(prefix + ".syncs", syncs_.value());
  registry->Set(prefix + ".replayed_records", replay_.records);
  registry->Set(prefix + ".replay_dropped_bytes", replay_.dropped_bytes);
  registry->Set(prefix + ".tail_offset", tail_);
  registry->SetHistogram(prefix + ".append_us", append_us_.snapshot());
  registry->SetHistogram(prefix + ".sync_us", sync_us_.snapshot());
}

}  // namespace asr::storage
