#include "storage/slotted_page.h"

#include "common/macros.h"

namespace asr::storage {

namespace {

struct Slot {
  uint16_t offset;
  uint16_t length;  // high bit set = tombstone, low 15 bits = hole capacity
};

uint32_t SlotOffset(int slot) {
  return SlottedPage::kHeaderSize +
         static_cast<uint32_t>(slot) * SlottedPage::kSlotSize;
}

Slot GetSlot(const Page& page, int slot) {
  return page.Read<Slot>(SlotOffset(slot));
}

void PutSlot(Page* page, int slot, Slot value) {
  page->Write(SlotOffset(slot), value);
}

}  // namespace

void SlottedPage::Init(Page* page) {
  page->Zero();
  page->Write<uint16_t>(0, 0);  // slot_count
  page->Write<uint16_t>(2, static_cast<uint16_t>(kPageSize));  // free_end
}

uint32_t SlottedPage::FreeSpace(const Page& page) {
  uint32_t directory_end = kHeaderSize + slot_count(page) * kSlotSize;
  uint32_t fe = free_end(page);
  ASR_DCHECK(fe >= directory_end);
  return fe - directory_end;
}

bool SlottedPage::Fits(const Page& page, uint16_t len) {
  if (FreeSpace(page) >= static_cast<uint32_t>(len) + kSlotSize) return true;
  uint16_t n = slot_count(page);
  for (int s = 0; s < n; ++s) {
    Slot slot = GetSlot(page, s);
    if ((slot.length & kTombstoneBit) != 0 &&
        (slot.length & ~kTombstoneBit) >= len) {
      return true;
    }
  }
  return false;
}

int SlottedPage::Insert(Page* page, const void* data, uint16_t len) {
  ASR_DCHECK(len < kTombstoneBit);
  uint16_t n = slot_count(*page);
  // Prefer reusing a hole: keeps fixed-size-record segments (the dominant
  // case — all objects of one type share a size) fully packed after churn.
  for (int s = 0; s < n; ++s) {
    Slot slot = GetSlot(*page, s);
    if ((slot.length & kTombstoneBit) == 0) continue;
    uint16_t capacity = slot.length & ~kTombstoneBit;
    if (capacity >= len) {
      page->WriteBytes(slot.offset, data, len);
      PutSlot(page, s, Slot{slot.offset, len});
      // When len < capacity the tail of the hole is leaked until a page
      // rewrite; records of one segment share a size here, so in practice
      // len == capacity and nothing leaks.
      return s;
    }
  }
  if (FreeSpace(*page) < static_cast<uint32_t>(len) + kSlotSize) return -1;
  uint16_t fe = free_end(*page);
  uint16_t offset = static_cast<uint16_t>(fe - len);
  page->WriteBytes(offset, data, len);
  PutSlot(page, n, Slot{offset, len});
  page->Write<uint16_t>(0, static_cast<uint16_t>(n + 1));
  page->Write<uint16_t>(2, offset);
  return n;
}

bool SlottedPage::IsLive(const Page& page, int slot) {
  ASR_DCHECK(slot >= 0 && slot < slot_count(page));
  return (GetSlot(page, slot).length & kTombstoneBit) == 0;
}

uint16_t SlottedPage::RecordLength(const Page& page, int slot) {
  Slot s = GetSlot(page, slot);
  ASR_DCHECK((s.length & kTombstoneBit) == 0);
  return s.length;
}

void SlottedPage::Read(const Page& page, int slot, void* out) {
  Slot s = GetSlot(page, slot);
  ASR_DCHECK((s.length & kTombstoneBit) == 0);
  page.ReadBytes(s.offset, out, s.length);
}

void SlottedPage::WriteInPlace(Page* page, int slot, const void* data,
                               uint16_t len) {
  Slot s = GetSlot(*page, slot);
  ASR_CHECK(s.length == len);
  page->WriteBytes(s.offset, data, len);
}

void SlottedPage::Delete(Page* page, int slot) {
  Slot s = GetSlot(*page, slot);
  ASR_DCHECK((s.length & kTombstoneBit) == 0);
  PutSlot(page, slot, Slot{s.offset, static_cast<uint16_t>(
                                         s.length | kTombstoneBit)});
}

}  // namespace asr::storage
