#include "storage/mvcc.h"

#include <algorithm>
#include <utility>

#include "storage/disk.h"
#include "storage/wal.h"

namespace asr::storage {

namespace {

// The thread's active transaction. One per thread by construction
// (PageTransaction's constructor checks); the binding is what lets
// Disk::WritePage route a covered write without any argument threading
// through the BufferManager and B+ tree layers between them.
thread_local PageTransaction* t_current_txn = nullptr;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

// ---------------------------------------------------------------------------
// PageSnapshot
// ---------------------------------------------------------------------------

PageSnapshot& PageSnapshot::operator=(PageSnapshot&& other) noexcept {
  if (this != &other) {
    Release();
    mvcc_ = other.mvcc_;
    epoch_ = other.epoch_;
    other.mvcc_ = nullptr;
    other.epoch_ = 0;
  }
  return *this;
}

void PageSnapshot::Release() {
  if (mvcc_ != nullptr) {
    mvcc_->ReleaseSnapshot(epoch_);
    mvcc_ = nullptr;
    epoch_ = 0;
  }
}

// ---------------------------------------------------------------------------
// PageTransaction
// ---------------------------------------------------------------------------

PageTransaction::PageTransaction(MvccManager* mvcc,
                                 std::vector<uint32_t> segments)
    : mvcc_(mvcc), segments_(std::move(segments)) {
  ASR_CHECK(mvcc_ != nullptr);
  // One transaction per thread: nested checkouts would make the write
  // routing ambiguous.
  ASR_CHECK(t_current_txn == nullptr);
  TxnCommitLock lock(mvcc_->mu_);
  for (uint32_t s : segments_) mvcc_->registered_.insert(s);
  checkout_ = mvcc_->epoch_;
  active_ = true;
  t_current_txn = this;
}

PageTransaction::~PageTransaction() { Abort(); }

bool PageTransaction::covers(uint32_t segment) const {
  return std::find(segments_.begin(), segments_.end(), segment) !=
         segments_.end();
}

Status PageTransaction::Commit(std::vector<PageId>* conflicts) {
  ASR_CHECK(active_);
  ASR_CHECK(t_current_txn == this);  // committed on the opening thread
  Status st = mvcc_->CommitTransaction(this, conflicts);
  staged_.clear();
  active_ = false;
  t_current_txn = nullptr;
  return st;
}

void PageTransaction::Abort() {
  if (!active_) return;
  ASR_CHECK(t_current_txn == this);
  mvcc_->AbortTransaction(this);
  staged_.clear();
  active_ = false;
  t_current_txn = nullptr;
}

// ---------------------------------------------------------------------------
// MvccManager
// ---------------------------------------------------------------------------

void MvccManager::RegisterSegment(uint32_t segment) {
  TxnCommitLock lock(mu_);
  registered_.insert(segment);
}

bool MvccManager::IsRegistered(uint32_t segment) const {
  SnapshotReadLock lock(mu_);
  return registered_.count(segment) > 0;
}

void MvccManager::AttachWal(WriteAheadLog* wal) {
  TxnCommitLock lock(mu_);
  wal_ = wal;
}

PageSnapshot MvccManager::BeginSnapshot() {
  TxnCommitLock lock(mu_);
  snapshots_.insert(epoch_);
  UpdateSnapshotAge();
  return PageSnapshot(this, epoch_);
}

MvccEpoch MvccManager::committed_epoch() const {
  SnapshotReadLock lock(mu_);
  return epoch_;
}

size_t MvccManager::live_snapshots() const {
  SnapshotReadLock lock(mu_);
  return snapshots_.size();
}

size_t MvccManager::retained_pages() const {
  SnapshotReadLock lock(mu_);
  size_t n = 0;
  for (const auto& [id, v] : pages_) n += v.retained.size();
  return n;
}

PageTransaction* MvccManager::CurrentTransaction() { return t_current_txn; }

bool MvccManager::TryReadStaged(PageId id, Page* out) const {
  const PageTransaction* txn = t_current_txn;
  if (txn == nullptr || txn->mvcc_ != this || !txn->active_) return false;
  auto it = txn->staged_.find(id);
  if (it == txn->staged_.end()) return false;
  *out = it->second;
  return true;
}

bool MvccManager::RouteWrite(Disk* disk, PageId id, const Page& page,
                             Status* result) {
  PageTransaction* txn = t_current_txn;
  if (txn != nullptr && txn->mvcc_ == this && txn->active_ &&
      txn->covers(id.segment)) {
    // Staged privately; the counted backend write happens at commit, once
    // per distinct page.
    txn->staged_[id] = page;
    *result = Status::OK();
    return true;
  }
  TxnCommitLock lock(mu_);
  if (registered_.count(id.segment) == 0) return false;
  // Auto-versioned direct write: a registered segment written outside any
  // transaction (legacy maintenance, shared-store reconcile) commits a
  // single-page epoch so live snapshots keep reading the image they pinned.
  PageVersions& versions = pages_[id];
  RetainIfNeeded(disk, id, &versions);
  *result = disk->WritePageUnversioned(id, page);
  if (result->ok()) {
    versions.current = ++epoch_;
    direct_versioned_writes_.Inc();
    UpdateSnapshotAge();
  }
  return true;
}

bool MvccManager::RouteRead(Disk* disk, PageId id, Page* out, Status* result) {
  SnapshotReadLock lock(mu_);
  if (registered_.count(id.segment) == 0) return false;
  // The shared lock excludes a committer (TxnCommitLock) replacing this
  // page's backend image mid-read; readers stay concurrent with each other,
  // and the metered read counters are atomics, so no exclusive section is
  // needed here.
  *result = disk->ReadPageUnversioned(id, out);
  return true;
}

TxnCommitLock MvccManager::LockForAllocate(uint32_t segment) {
  TxnCommitLock lock(mu_);
  if (registered_.count(segment) == 0) lock.unlock();
  return lock;
}

Status MvccManager::ReadSnapshotPage(Disk* disk, PageId id,
                                     const PageSnapshot& snap, Page* out) {
  ASR_CHECK(snap.valid() && snap.mvcc_ == this);
  SnapshotReadLock lock(mu_);
  snapshot_reads_.Inc();
  auto it = pages_.find(id);
  if (it == pages_.end() || it->second.current <= snap.epoch_) {
    // The backend image is the one this snapshot pinned. Reading under the
    // shared lock excludes a commit replacing it mid-copy.
    return disk->ReadPageUnversioned(id, out);
  }
  // Replaced since checkout: serve the retained image with the largest
  // version <= the snapshot epoch. Retention at commit time guarantees it
  // exists while this snapshot is live.
  const auto& retained = it->second.retained;
  auto r = retained.upper_bound(snap.epoch_);
  ASR_CHECK(r != retained.begin());
  --r;
  *out = r->second;
  // A real system would read this old version from the page's version
  // chain on disk: charge the same unit as any other query access.
  disk->CountSnapshotRead(id);
  return Status::OK();
}

void MvccManager::ReleaseSnapshot(MvccEpoch epoch) {
  TxnCommitLock lock(mu_);
  auto it = snapshots_.find(epoch);
  ASR_CHECK(it != snapshots_.end());
  snapshots_.erase(it);
  CollectRetained();
  UpdateSnapshotAge();
}

Status MvccManager::CommitTransaction(PageTransaction* txn,
                                      std::vector<PageId>* conflicts) {
  TxnCommitLock lock(mu_);
  // First committer wins: any staged page whose committed version moved
  // past our checkout epoch belongs to a transaction that got there first.
  std::vector<PageId> losers;
  for (const auto& [id, page] : txn->staged_) {
    auto it = pages_.find(id);
    if (it != pages_.end() && it->second.current > txn->checkout_) {
      losers.push_back(id);
    }
  }
  if (!losers.empty()) {
    conflicts_.Inc();
#if ASR_METRICS_ENABLED
    obs::LiveTelemetry::Instance().txn_conflicts.Inc();
#endif
    std::string msg = "page-version conflict on " +
                      std::to_string(losers.size()) + " of " +
                      std::to_string(txn->staged_.size()) +
                      " staged pages (checkout epoch " +
                      std::to_string(txn->checkout_) + ", committed epoch " +
                      std::to_string(epoch_) + ")";
    if (conflicts != nullptr) *conflicts = std::move(losers);
    return Status::Aborted(std::move(msg));
  }
  if (!txn->staged_.empty()) {
    // Epoch advances before the writes so a partial failure (injected
    // IOError mid-commit) can never leave a page version above the
    // committed epoch. BeginSnapshot also takes mu_, so nothing observes
    // the epoch until the writes below finish.
    const MvccEpoch commit_epoch = ++epoch_;
    for (const auto& [id, page] : txn->staged_) {
      PageVersions& versions = pages_[id];
      RetainIfNeeded(disk_, id, &versions);
      ASR_RETURN_IF_ERROR(disk_->WritePageUnversioned(id, page));
      versions.current = commit_epoch;
    }
    if (wal_ != nullptr) {
      // Unsynced audit marker; the journal's commit record syncs the tail.
      std::string record;
      record.push_back('X');
      PutU64(&record, commit_epoch);
      PutU32(&record, static_cast<uint32_t>(txn->staged_.size()));
      ASR_RETURN_IF_ERROR(wal_->Append(record));
    }
  }
  commits_.Inc();
  commit_pages_.Observe(txn->staged_.size());
#if ASR_METRICS_ENABLED
  obs::LiveTelemetry::Instance().txn_commits.Inc();
#endif
  UpdateSnapshotAge();
  return Status::OK();
}

void MvccManager::AbortTransaction(PageTransaction* txn) {
  (void)txn;  // staging is txn-local; nothing global to undo
}

void MvccManager::RetainIfNeeded(Disk* disk, PageId id,
                                 PageVersions* versions) {
  if (snapshots_.empty()) return;
  // The image about to be replaced is valid for snapshot epochs in
  // [versions->current, new version). Every live snapshot epoch is below
  // the new version (it has not been minted yet), so the image is needed
  // iff some live snapshot is at or past its birth version. Earlier
  // snapshots are served by images retained when those versions died.
  if (*snapshots_.rbegin() < versions->current) return;
  Page old_image;
  // Uncounted raw read: version retention is bookkeeping, not workload.
  if (!disk->ReadPageRaw(id, &old_image).ok()) return;
  versions->retained.emplace(versions->current, old_image);
  retained_copies_.Inc();
}

void MvccManager::CollectRetained() {
  for (auto p = pages_.begin(); p != pages_.end();) {
    auto& retained = p->second.retained;
    for (auto r = retained.begin(); r != retained.end();) {
      auto next = std::next(r);
      const MvccEpoch upper =
          next != retained.end() ? next->first : p->second.current;
      // retained[v] serves snapshots in [v, upper); drop it when none live.
      auto s = snapshots_.lower_bound(r->first);
      if (s == snapshots_.end() || *s >= upper) {
        r = retained.erase(r);
      } else {
        r = next;
      }
    }
    if (p->second.retained.empty() && p->second.current == 0) {
      p = pages_.erase(p);
    } else {
      ++p;
    }
  }
}

void MvccManager::UpdateSnapshotAge() {
#if ASR_METRICS_ENABLED
  const uint64_t age =
      snapshots_.empty() ? 0 : epoch_ - *snapshots_.begin();
  obs::LiveTelemetry::Instance().snapshot_age_epochs.Set(age);
#endif
}

void MvccManager::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  SnapshotReadLock lock(mu_);
  registry->Set(prefix + ".epoch", epoch_);
  registry->Set(prefix + ".commits", commits_.value());
  registry->Set(prefix + ".conflicts", conflicts_.value());
  registry->Set(prefix + ".direct_versioned_writes",
                direct_versioned_writes_.value());
  registry->Set(prefix + ".snapshot_reads", snapshot_reads_.value());
  registry->Set(prefix + ".retained_copies", retained_copies_.value());
  registry->Set(prefix + ".live_snapshots", snapshots_.size());
  size_t retained = 0;
  for (const auto& [id, v] : pages_) retained += v.retained.size();
  registry->Set(prefix + ".retained_pages", retained);
  registry->SetHistogram(prefix + ".commit_pages", commit_pages_.snapshot());
}

}  // namespace asr::storage
