// Page-level multi-version concurrency control over the Disk.
//
// The paper's cost model assumes queries and ASR maintenance take turns; a
// base serving many users cannot. This layer adds the minimum machinery for
// readers and writers to overlap without locks on the page path, following
// the per-page-version design of the oidadb spec (SNIPPETS.md): a version
// table mapping PageId to the epoch of its last committed image, snapshot
// handles that pin an epoch and read a consistent past state, and an
// optimistic writer transaction that stages private page images and detects
// conflicts at commit as "any staged page whose committed version moved past
// my checkout epoch" (first committer wins; the loser aborts cleanly with
// the conflict list and retries with backoff).
//
// Scope: only segments registered with the manager (the ASR tree segments)
// are versioned. Everything else — and everything on a disk with no manager
// attached — takes the exact legacy path, including its metering, so the
// paper-facing page counts of single-writer runs are bit-identical.
//
// Retention is copy-on-write at commit time: when a new version of a page is
// about to replace an image some live snapshot still needs, the old image is
// retained in memory keyed by its version and garbage-collected when the
// last snapshot inside its validity window is released. The version table
// itself is volatile — epochs restart at zero after a crash, which is sound
// because snapshots and in-flight transactions do not survive the process,
// and committed transactions are re-derivable from the MaintenanceJournal.
//
// Lock order: mvcc mutex before the disk's segment-table mutex, never the
// reverse. Live (non-snapshot) reads of registered segments take the shared
// side of the version-table mutex — enough to exclude a commit rewriting the
// backend image mid-read while keeping readers concurrent with each other;
// logical writer isolation for them is still the ASR store-claim protocol.
// Snapshot reads and all registered-segment writes serialize here too.
#ifndef ASR_STORAGE_MVCC_H_
#define ASR_STORAGE_MVCC_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace asr::storage {

class Disk;
class MvccManager;
class WriteAheadLog;

// Monotonic commit counter. Epoch 0 is "before every commit": a page absent
// from the version table has version 0 and its backend image is valid for
// every snapshot.
using MvccEpoch = uint64_t;

// Named lock handles for the two sides of the version-table mutex. Aliases
// rather than raw std::unique_lock/shared_lock at the call sites so the
// lock-discipline analyzer (and a human reader) can tell a commit-side
// exclusive section from a snapshot-side shared one.
using TxnCommitLock = std::unique_lock<std::shared_mutex>;
using SnapshotReadLock = std::shared_lock<std::shared_mutex>;

// A reader's checkout of one consistent page-version epoch. While the handle
// is live, every registered page's image as of epoch() stays readable via
// Disk::ReadPageSnapshot — commits that overwrite such a page first retain
// the old image. Movable, not copyable; releasing (or destroying) the handle
// lets the retained images it pinned be collected.
class PageSnapshot {
 public:
  PageSnapshot() = default;
  PageSnapshot(PageSnapshot&& other) noexcept { *this = std::move(other); }
  PageSnapshot& operator=(PageSnapshot&& other) noexcept;
  ~PageSnapshot() { Release(); }
  ASR_DISALLOW_COPY_AND_ASSIGN(PageSnapshot);

  bool valid() const { return mvcc_ != nullptr; }
  MvccEpoch epoch() const { return epoch_; }
  void Release();

 private:
  friend class MvccManager;
  PageSnapshot(MvccManager* mvcc, MvccEpoch epoch)
      : mvcc_(mvcc), epoch_(epoch) {}

  MvccManager* mvcc_ = nullptr;
  MvccEpoch epoch_ = 0;
};

// An optimistic writer transaction over a set of registered segments. While
// active, the constructing thread's Disk::WritePage calls to covered
// segments stage private images here instead of reaching the backend, and
// its ReadPage calls see those staged images first (read-your-writes). The
// binding is thread-local: exactly one active transaction per thread, and
// the transaction must be committed or aborted on the thread that opened it.
//
// Commit validates every staged page against the checkout epoch, writes the
// survivors through to the backend under the commit lock (one counted page
// write per distinct staged page — write combining is part of the design,
// not a metering leak), and advances the committed epoch. On conflict
// nothing is applied and the staged set is discarded; the caller backs off
// and retries against the new epoch.
class PageTransaction {
 public:
  PageTransaction(MvccManager* mvcc, std::vector<uint32_t> segments);
  ~PageTransaction();
  ASR_DISALLOW_COPY_AND_ASSIGN(PageTransaction);

  // Returns OK and makes every staged page durable-visible at a single new
  // epoch, or Aborted with the conflicting pages in `*conflicts` (when non
  // null) and no effect. IOError from the backend also leaves the
  // transaction inactive; the journal intent stays unresolved for Recover().
  Status Commit(std::vector<PageId>* conflicts = nullptr);
  // Discards the staged set. Idempotent; also implied by the destructor.
  void Abort();

  bool active() const { return active_; }
  MvccEpoch checkout_epoch() const { return checkout_; }
  size_t staged_page_count() const { return staged_.size(); }
  bool covers(uint32_t segment) const;

 private:
  friend class MvccManager;

  MvccManager* mvcc_;
  std::vector<uint32_t> segments_;
  MvccEpoch checkout_ = 0;
  // Private page images, visible only to the owning thread until commit.
  std::unordered_map<PageId, Page> staged_;
  bool active_ = false;
};

// The version table and snapshot/transaction registry for one Disk. Attach
// with Disk::AttachMvcc; the manager is borrowed by the disk and must
// outlive it. All public methods are thread-safe.
class MvccManager {
 public:
  MvccManager() = default;
  ASR_DISALLOW_COPY_AND_ASSIGN(MvccManager);

  // Marks `segment` as version-managed: its direct writes are auto-versioned
  // (each write commits a single-page epoch), its pages become snapshot
  // readable, and transactions may cover it. Idempotent.
  void RegisterSegment(uint32_t segment);
  bool IsRegistered(uint32_t segment) const;

  // Optional: commits append an 'X' marker record (epoch, page count) to
  // this WAL, unsynced — it rides on the next journal commit sync. Foreign
  // to the journal's own replay (size-checked), it exists for audit tools.
  void AttachWal(WriteAheadLog* wal);

  // Checks out the current committed epoch for reading.
  PageSnapshot BeginSnapshot();
  MvccEpoch committed_epoch() const;
  size_t live_snapshots() const;
  size_t retained_pages() const;

  // The transaction bound to the calling thread, if any.
  static PageTransaction* CurrentTransaction();

  // Counters for the obs surface. commits/conflicts also mirror into
  // LiveTelemetry as txn.commits / txn.conflicts.
  const obs::SharedCounter& commits() const { return commits_; }
  const obs::SharedCounter& conflicts() const { return conflicts_; }

  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  friend class Disk;
  friend class PageSnapshot;
  friend class PageTransaction;

  struct PageVersions {
    // Epoch of the image currently in the backend (0 = pre-MVCC image).
    MvccEpoch current = 0;
    // Old images still needed by live snapshots. retained[v] is valid for
    // snapshot epochs in [v, next retained version or `current`).
    std::map<MvccEpoch, Page> retained;
  };

  // --- Disk hooks (called with no mvcc lock held) --------------------------
  // Serves `id` from the calling thread's active transaction. Returns false
  // (out untouched) when there is no binding or no staged image.
  bool TryReadStaged(PageId id, Page* out) const;
  // Routes a write: stages it in the calling thread's transaction, or
  // applies it as an auto-versioned direct write when the segment is
  // registered. Returns false when the write is not mvcc-managed, in which
  // case the disk takes its legacy path.
  bool RouteWrite(Disk* disk, PageId id, const Page& page, Status* result);
  // Routes a live read of a registered segment under the shared side of the
  // version-table mutex, so it cannot observe a commit half-way through
  // rewriting the backend image. Returns false (out untouched) when the
  // segment is not registered, in which case the disk takes its legacy path.
  bool RouteRead(Disk* disk, PageId id, Page* out, Status* result);
  // Exclusive lock for registered-segment page allocation (checksum-vector
  // growth must not race snapshot readers). Empty when not registered.
  TxnCommitLock LockForAllocate(uint32_t segment);
  // Snapshot read: the image of `id` as of snap.epoch(). Counted as a page
  // read on the owning segment, like any other query access.
  Status ReadSnapshotPage(Disk* disk, PageId id, const PageSnapshot& snap,
                          Page* out);

  // --- internals -----------------------------------------------------------
  void ReleaseSnapshot(MvccEpoch epoch);
  Status CommitTransaction(PageTransaction* txn, std::vector<PageId>* conflicts)
      ASR_EXCLUDES(mu_);
  void AbortTransaction(PageTransaction* txn);
  // Retains the backend image of `id` (currently at version `current`) when
  // some live snapshot still needs it.
  void RetainIfNeeded(Disk* disk, PageId id, PageVersions* versions)
      ASR_REQUIRES(mu_);
  void UpdateSnapshotAge() ASR_REQUIRES(mu_);
  void CollectRetained() ASR_REQUIRES(mu_);

  mutable std::shared_mutex mu_;
  std::unordered_set<uint32_t> registered_ ASR_GUARDED_BY(mu_);
  std::unordered_map<PageId, PageVersions> pages_ ASR_GUARDED_BY(mu_);
  // Live snapshot epochs (multiset: several readers may share an epoch).
  std::multiset<MvccEpoch> snapshots_ ASR_GUARDED_BY(mu_);
  MvccEpoch epoch_ ASR_GUARDED_BY(mu_) = 0;
  WriteAheadLog* wal_ ASR_GUARDED_BY(mu_) = nullptr;
  Disk* disk_ = nullptr;  // set by Disk::AttachMvcc before first use

  obs::SharedCounter commits_;
  obs::SharedCounter conflicts_;
  obs::SharedCounter direct_versioned_writes_;
  obs::SharedCounter snapshot_reads_;
  obs::SharedCounter retained_copies_;
  obs::SharedHistogram commit_pages_;
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_MVCC_H_
