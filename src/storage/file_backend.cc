#include "storage/file_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace asr::storage {

namespace {

// File growth quantum: small segments stay small, big builds amortize
// ftruncate (and remap) to O(log pages) calls.
constexpr uint32_t kMinCapacityPages = 64;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

FileBackend::FileBackend(std::string dir, bool mmap_reads)
    : mmap_reads_(mmap_reads) {
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl = std::string(tmp != nullptr ? tmp : "/tmp") +
                       "/asr-disk-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASR_CHECK(mkdtemp(buf.data()) != nullptr);
    dir_ = buf.data();
    owns_dir_ = true;
  } else {
    dir_ = std::move(dir);
    // Best effort create; an existing directory is fine.
    ::mkdir(dir_.c_str(), 0755);
  }
}

FileBackend::~FileBackend() {
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) {
      ::munmap(seg.map, static_cast<size_t>(seg.capacity_pages) * kPageSize);
    }
    if (seg.fd >= 0) ::close(seg.fd);
    if (!seg.path.empty()) ::unlink(seg.path.c_str());
  }
  if (owns_dir_) ::rmdir(dir_.c_str());
}

FileBackend::Segment& FileBackend::Seg(uint32_t segment) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

const FileBackend::Segment& FileBackend::Seg(uint32_t segment) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

void FileBackend::AddSegment(const std::string& name) {
  (void)name;  // segment names can repeat and carry '/'; files go by id
  std::unique_lock<std::shared_mutex> lock(mu_);
  Segment seg;
  seg.path = dir_ + "/seg-" + std::to_string(segments_.size());
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  ASR_CHECK(seg.fd >= 0);
  segments_.push_back(std::move(seg));
}

void FileBackend::Reserve(Segment* seg, uint32_t pages) {
  if (pages <= seg->capacity_pages) return;
  uint32_t cap = seg->capacity_pages == 0 ? kMinCapacityPages
                                          : seg->capacity_pages * 2;
  while (cap < pages) cap *= 2;
  ASR_CHECK(::ftruncate(seg->fd,
                        static_cast<off_t>(cap) * kPageSize) == 0);
  if (mmap_reads_) {
    if (seg->map != nullptr) {
      ::munmap(seg->map,
               static_cast<size_t>(seg->capacity_pages) * kPageSize);
    }
    void* map = ::mmap(nullptr, static_cast<size_t>(cap) * kPageSize,
                       PROT_READ, MAP_SHARED, seg->fd, 0);
    ASR_CHECK(map != MAP_FAILED);
    seg->map = static_cast<std::byte*>(map);
    remaps_.fetch_add(1, std::memory_order_relaxed);
  }
  seg->capacity_pages = cap;
}

void FileBackend::AddPage(uint32_t segment) {
  Segment& seg = Seg(segment);
  Reserve(&seg, seg.pages + 1);
  // ftruncate extends with zeros, so the new page needs no explicit clear.
  ++seg.pages;
}

Status FileBackend::Read(uint32_t segment, uint32_t page_no, Page* out) {
  Segment& seg = Seg(segment);
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  if (seg.map != nullptr) {
    std::memcpy(out->data(), seg.map + off, kPageSize);
    mmap_reads_served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ssize_t n = ::pread(seg.fd, out->data(), kPageSize, off);
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IOError(ErrnoMessage("pread " + seg.path + " page " +
                                          std::to_string(page_no)));
    }
  }
  bytes_read_.fetch_add(kPageSize, std::memory_order_relaxed);
  return Status::OK();
}

Status FileBackend::Write(uint32_t segment, uint32_t page_no,
                          const Page& page) {
  Segment& seg = Seg(segment);
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  ssize_t n = ::pwrite(seg.fd, page.data(), kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(ErrnoMessage("pwrite " + seg.path + " page " +
                                        std::to_string(page_no)));
  }
  bytes_written_.fetch_add(kPageSize, std::memory_order_relaxed);
  return Status::OK();
}

void FileBackend::Prefetch(uint32_t segment, uint32_t page_no) {
  Segment& seg = Seg(segment);
  if (seg.map == nullptr || page_no >= seg.pages) return;
  const std::byte* p = seg.map + static_cast<size_t>(page_no) * kPageSize;
  for (uint32_t line = 0; line < 8; ++line) {
    __builtin_prefetch(p + line * 64, /*rw=*/0, /*locality=*/1);
  }
}

void FileBackend::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  uint64_t pages = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const Segment& seg : segments_) pages += seg.pages;
  }
  registry->Set(prefix + ".kind", 1);
  registry->Set(prefix + ".resident_pages", pages);
  registry->Set(prefix + ".bytes_read",
                bytes_read_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".bytes_written",
                bytes_written_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".mmap_reads",
                mmap_reads_served_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".remaps", remaps_.load(std::memory_order_relaxed));
}

}  // namespace asr::storage
