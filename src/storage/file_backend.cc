#include "storage/file_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/events.h"
#include "storage/io_retry.h"

namespace asr::storage {

namespace {

// File growth quantum: small segments stay small, big builds amortize
// ftruncate (and remap) to O(log pages) calls.
constexpr uint32_t kMinCapacityPages = 64;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

FileBackend::FileBackend(std::string dir, bool mmap_reads, bool durable)
    : mmap_reads_(mmap_reads), durable_(durable) {
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl = std::string(tmp != nullptr ? tmp : "/tmp") +
                       "/asr-disk-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASR_CHECK(mkdtemp(buf.data()) != nullptr);
    dir_ = buf.data();
    owns_dir_ = true;
  } else {
    dir_ = std::move(dir);
    // Best effort create; an existing directory is fine.
    ::mkdir(dir_.c_str(), 0755);
  }
}

FileBackend::~FileBackend() {
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) {
      ::munmap(seg.map, static_cast<size_t>(seg.capacity_pages) * kPageSize);
    }
    if (seg.fd >= 0) ::close(seg.fd);
    if (!seg.path.empty()) ::unlink(seg.path.c_str());
  }
  if (owns_dir_) ::rmdir(dir_.c_str());
}

void FileBackend::EnterReadOnly(const Status& why) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (write_error_.ok()) {
      write_error_ = why;
      first = true;
    }
  }
  read_only_.store(true, std::memory_order_release);
  if (first) {
    ASR_EVENT(obs::EventKind::kReadOnlyDemotion, "reason=" + why.message());
  }
}

Status FileBackend::write_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return write_error_;
}

FileBackend::Segment& FileBackend::Seg(uint32_t segment) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

const FileBackend::Segment& FileBackend::Seg(uint32_t segment) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ASR_CHECK(segment < segments_.size());
  return segments_[segment];
}

void FileBackend::AddSegment(const std::string& name) {
  (void)name;  // segment names can repeat and carry '/'; files go by id
  std::unique_lock<std::shared_mutex> lock(mu_);
  Segment seg;
  seg.path = dir_ + "/seg-" + std::to_string(segments_.size());
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (seg.fd < 0) {
    // A segment that cannot be backed demotes the store to read-only: the
    // id is still registered (the layers above assume registration never
    // fails) but every page I/O against it fails fast.
    EnterReadOnly(
        Status::IOError(ErrnoMessage("create segment file " + seg.path)));
    seg.path.clear();
  } else if (durable_) {
    // The file's directory entry must survive a crash for the segment to be
    // findable after reopen.
    if (io::FsyncDir(dir_).ok()) {
      dir_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  segments_.push_back(std::move(seg));
}

void FileBackend::Reserve(Segment* seg, uint32_t pages) {
  if (pages <= seg->capacity_pages || seg->fd < 0) return;
  uint32_t cap = seg->capacity_pages == 0 ? kMinCapacityPages
                                          : seg->capacity_pages * 2;
  while (cap < pages) cap *= 2;
  if (::ftruncate(seg->fd, static_cast<off_t>(cap) * kPageSize) != 0) {
    // Growth failed (e.g. disk full): keep the old capacity and demote to
    // read-only. Writes to already-backed pages would still be possible,
    // but a store that cannot allocate cannot complete any maintenance op,
    // so failing them all fast keeps the degradation story simple.
    EnterReadOnly(
        Status::IOError(ErrnoMessage("ftruncate " + seg->path + " to " +
                                     std::to_string(cap) + " pages")));
    return;
  }
  if (durable_) {
    // The new size is file metadata the post-crash pread path depends on.
    if (io::Fdatasync(seg->fd, "fdatasync after growth").ok()) {
      fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (mmap_reads_ && !seg->mmap_disabled) {
    if (seg->map != nullptr) {
      ::munmap(seg->map,
               static_cast<size_t>(seg->capacity_pages) * kPageSize);
      seg->map = nullptr;
    }
    void* map = ::mmap(nullptr, static_cast<size_t>(cap) * kPageSize,
                       PROT_READ, MAP_SHARED, seg->fd, 0);
    if (map == MAP_FAILED) {
      // Graceful fallback: reads of this segment are served by pread from
      // now on. Not an error — the mapping is an optimization.
      seg->mmap_disabled = true;
      mmap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    } else {
      seg->map = static_cast<std::byte*>(map);
      remaps_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  seg->capacity_pages = cap;
}

void FileBackend::AddPage(uint32_t segment) {
  Segment& seg = Seg(segment);
  Reserve(&seg, seg.pages + 1);
  // ftruncate extends with zeros, so the new page needs no explicit clear.
  ++seg.pages;
}

Status FileBackend::Read(uint32_t segment, uint32_t page_no, Page* out) {
  Segment& seg = Seg(segment);
  if (seg.fd < 0) {
    return Status::IOError("segment " + std::to_string(segment) +
                           " has no backing file (read-only backend)");
  }
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  obs::LatencyTimer timer(
      true, &read_us_, &obs::LiveTelemetry::Instance().storage_read_us);
  // The mapping covers capacity_pages; a page allocated past a failed
  // growth (degraded regime) must go through pread.
  if (seg.map != nullptr && page_no < seg.capacity_pages) {
    std::memcpy(out->data(), seg.map + off, kPageSize);
    mmap_reads_served_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ASR_RETURN_IF_ERROR(io::ReadFull(
        seg.fd, out->data(), kPageSize, off,
        ("pread " + seg.path + " page " + std::to_string(page_no)).c_str()));
  }
  bytes_read_.fetch_add(kPageSize, std::memory_order_relaxed);
  return Status::OK();
}

Status FileBackend::Write(uint32_t segment, uint32_t page_no,
                          const Page& page) {
  if (read_only()) {
    Status why = write_error();
    return Status::IOError("backend is read-only after write failure: " +
                           why.message());
  }
  Segment& seg = Seg(segment);
  if (seg.fd < 0) {
    return Status::IOError("segment " + std::to_string(segment) +
                           " has no backing file (read-only backend)");
  }
  const off_t off = static_cast<off_t>(page_no) * kPageSize;
  obs::LatencyTimer timer(
      true, &write_us_, &obs::LiveTelemetry::Instance().storage_write_us);
  Status st = io::WriteFull(
      seg.fd, page.data(), kPageSize, off,
      ("pwrite " + seg.path + " page " + std::to_string(page_no)).c_str());
  if (!st.ok()) {
    // The retry loop already exhausted the transient budget: what surfaces
    // here is permanent (EIO, ENOSPC, ...) and demotes the backend.
    EnterReadOnly(st);
    return st;
  }
  bytes_written_.fetch_add(kPageSize, std::memory_order_relaxed);
  return Status::OK();
}

void FileBackend::Prefetch(uint32_t segment, uint32_t page_no) {
  Segment& seg = Seg(segment);
  if (seg.map == nullptr || page_no >= seg.pages ||
      page_no >= seg.capacity_pages) {
    return;
  }
  const std::byte* p = seg.map + static_cast<size_t>(page_no) * kPageSize;
  for (uint32_t line = 0; line < 8; ++line) {
    __builtin_prefetch(p + line * 64, /*rw=*/0, /*locality=*/1);
  }
}

Status FileBackend::Sync(uint32_t segment) {
  Segment& seg = Seg(segment);
  if (seg.fd < 0) {
    return Status::IOError("segment " + std::to_string(segment) +
                           " has no backing file (read-only backend)");
  }
  Status st;
  {
    obs::LatencyTimer timer(
        true, &sync_us_, &obs::LiveTelemetry::Instance().storage_sync_us);
    st = io::Fdatasync(seg.fd, ("fdatasync " + seg.path).c_str());
  }
  if (!st.ok()) {
    // A failed fsync means the kernel may have dropped dirty pages whose
    // write already "succeeded" — the classic reason fsync errors must be
    // treated as fatal for the file, not retried.
    EnterReadOnly(st);
    return st;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileBackend::SyncAll() {
  size_t count;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    count = segments_.size();
  }
  Status first = Status::OK();
  for (uint32_t s = 0; s < count; ++s) {
    Status st = Sync(s);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

void FileBackend::ExportMetrics(obs::MetricsRegistry* registry,
                                const std::string& prefix) const {
  uint64_t pages = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const Segment& seg : segments_) pages += seg.pages;
  }
  registry->Set(prefix + ".kind", 1);
  registry->Set(prefix + ".resident_pages", pages);
  registry->Set(prefix + ".bytes_read",
                bytes_read_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".bytes_written",
                bytes_written_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".mmap_reads",
                mmap_reads_served_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".remaps", remaps_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".fsyncs",
                fsyncs_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".dir_fsyncs",
                dir_fsyncs_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".mmap_fallbacks",
                mmap_fallbacks_.load(std::memory_order_relaxed));
  registry->Set(prefix + ".io_transient_retries", io::transient_retries());
  registry->Set(prefix + ".io_eintr_retries", io::eintr_retries());
  registry->Set(prefix + ".io_resumed_short_reads",
                io::resumed_short_reads());
  registry->Set(prefix + ".io_resumed_short_writes",
                io::resumed_short_writes());
  registry->Set(prefix + ".read_only", read_only() ? 1 : 0);
  registry->SetHistogram(prefix + ".read_us", read_us_.snapshot());
  registry->SetHistogram(prefix + ".write_us", write_us_.snapshot());
  registry->SetHistogram(prefix + ".sync_us", sync_us_.snapshot());
}

}  // namespace asr::storage
