// Persistent write-ahead log: CRC-framed, append-only records in one file.
//
// This is the durable half of the intent-journal protocol. The in-memory
// MaintenanceJournal models WHAT a real system logs (intent, commit, lost);
// this file is WHERE it survives a process death. Records are opaque
// payloads framed as
//
//   [u32 length][u32 crc32(payload)][payload bytes]
//
// little-endian, appended at the tail. Durability points are explicit:
// Append buffers nothing but syncs nothing either; Sync() issues fdatasync,
// and callers place it at their commit points (the journal fdatasyncs on
// commit, the checkpoint path after the snapshot rename).
//
// Open() replays the existing file through a callback with truncated-tail
// tolerance: a record whose header or payload is cut short — exactly what a
// SIGKILL mid-append leaves behind — ends the replay cleanly, and a record
// whose CRC does not match quarantines the entire suffix from that point
// (once one frame is untrustworthy, every later frame boundary is too). In
// both cases the file is truncated back to the last valid record so the
// next Append starts from a well-formed tail.
#ifndef ASR_STORAGE_WAL_H_
#define ASR_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/latency.h"
#include "obs/metrics.h"

namespace asr::storage {

// Computes the CRC-32 (IEEE 802.3 polynomial, as in zip/zlib) of `data`.
// Exposed for tests that forge corrupt frames.
uint32_t Crc32(const void* data, size_t n);

class WriteAheadLog {
 public:
  // Sanity bound on one record; a length field beyond it is treated as
  // corruption, not an allocation request.
  static constexpr uint32_t kMaxRecordBytes = 1u << 20;

  // What Open() found in a pre-existing log file.
  struct ReplayStats {
    uint64_t records = 0;        // valid records delivered to the callback
    uint64_t valid_bytes = 0;    // file prefix covered by valid records
    uint64_t dropped_bytes = 0;  // torn or corrupt suffix discarded
    bool torn_tail = false;      // suffix was a cut-short frame (crash tail)
    bool corrupt_suffix = false; // suffix began with a CRC mismatch
  };

  using ReplayFn = std::function<void(std::string_view payload)>;

  // Opens (creating if absent) the log at `path`, replays every valid
  // record in order through `replay` (may be null), truncates any torn or
  // corrupt suffix, and leaves the log positioned for Append. `stats_out`
  // (may be null) reports what the scan found.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const ReplayFn& replay = nullptr,
      ReplayStats* stats_out = nullptr);

  ~WriteAheadLog();
  ASR_DISALLOW_COPY_AND_ASSIGN(WriteAheadLog);

  // Appends one framed record at the tail. The bytes reach the OS but NOT
  // the platter — call Sync() at the commit point that needs them durable.
  Status Append(std::string_view payload);

  // fdatasync of the log file: everything appended so far is durable.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t tail_offset() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tail_;
  }
  uint64_t records_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_appended_.value();
  }
  uint64_t bytes_appended() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_appended_.value();
  }
  uint64_t syncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return syncs_.value();
  }
  const ReplayStats& replay_stats() const { return replay_; }

  // Wall-clock latency of the durability operations, microseconds (also
  // mirrored into the LiveTelemetry hub for the sampler).
  obs::HistogramSnapshot append_latency() const {
    return append_us_.snapshot();
  }
  obs::HistogramSnapshot sync_latency() const { return sync_us_.snapshot(); }

  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  WriteAheadLog(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;   // immutable after construction
  int fd_ = -1;        // immutable after Open() returns
  ReplayStats replay_; // written by Open() pre-publication, const after

  // Guards the append tail and the single-writer counters so concurrent
  // journal writers (the ROADMAP's multi-writer ASR maintenance) serialize
  // on the frame boundary instead of interleaving half-frames.
  mutable std::mutex mu_;
  uint64_t tail_ ASR_GUARDED_BY(mu_) = 0;  // append offset == file size

  obs::HotCounter records_appended_ ASR_GUARDED_BY(mu_);
  obs::HotCounter bytes_appended_ ASR_GUARDED_BY(mu_);
  obs::HotCounter syncs_ ASR_GUARDED_BY(mu_);
  // Shared-safe atomics; sampled concurrently by the telemetry thread.
  obs::SharedHistogram append_us_;
  obs::SharedHistogram sync_us_;
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_WAL_H_
