// Deterministic page-I/O fault injection for the simulated disk.
//
// The paper treats ASRs as *redundant* access paths: every partition is
// derivable from the object base, so a damaged ASR may never make the system
// wrong — at worst slower. Exercising that claim needs faults on demand. The
// injector is a policy object hooked into Disk: it watches every counted
// page I/O and, on the Nth one matching a segment filter, simulates one of
//
//   kWriteCrash  the write (and every write after it) is silently dropped —
//                the disk "loses power" at that exact I/O; page content and
//                checksum keep their pre-crash value, so the loss is
//                invisible to checksums and must be caught by the ASR's
//                cross-structure checks;
//   kTornWrite   like kWriteCrash, but the interrupted write additionally
//                leaves the first half of the new page image on disk with a
//                stale checksum. While the process is still "up" the buffer
//                cache serves the full image (the OS page cache fiction);
//                the torn bytes become visible only after the restart point
//                (Disk::RecoverFromCrash), exactly like a real torn sector;
//   kReadError   the matching read fails once with Status::IOError (a
//                transient medium error; the page itself stays intact).
//
// Determinism: the fire point is the match counter alone — no clocks, no
// global RNG — so a crash matrix "inject at I/O k for k = 1..K" replays
// bit-identically. Thread safety: arm/observe from the thread driving the
// faulted workload (the per-segment single-accessor discipline Disk already
// requires).
#ifndef ASR_STORAGE_FAULT_INJECTOR_H_
#define ASR_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "storage/page.h"

namespace asr::storage {

enum class FaultKind {
  kWriteCrash,
  kTornWrite,
  kReadError,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kWriteCrash;
  // Fire on the Nth matching I/O, 1-based. 0 never fires.
  uint64_t after_matching = 1;
  // Match only this segment id (-1 = any segment).
  int64_t segment = -1;
  // Match only segments whose name starts with this prefix ("" = any);
  // composes with `segment`. ASR partition segments are "<path>:<kind>:
  // <first>-<last>:fwd/:bwd", so a prefix targets one partition, one tree,
  // or a whole ASR.
  std::string segment_prefix;
};

class FaultInjector {
 public:
  // What the disk should do with the I/O it just announced.
  enum class Action {
    kProceed,
    kDropWrite,
    kTornWrite,
    kFailRead,
  };

  // Installs `spec` and resets counters and the crashed flag.
  void Arm(FaultSpec spec);
  // Clears the armed spec and the crashed flag: the "restart" point.
  void Disarm();

  bool armed() const { return armed_; }
  // True once a kWriteCrash/kTornWrite fault has fired: the disk is halted
  // and drops every further write until Disarm().
  bool crashed() const { return crashed_; }
  // True once the armed fault has fired (the sweep's termination signal:
  // after_matching beyond the workload's I/O count never fires).
  bool fired() const { return fired_; }

  uint64_t matching_ios() const { return matching_; }
  uint64_t dropped_writes() const { return dropped_writes_; }

  // Disk hooks, called once per counted page I/O.
  Action OnWrite(PageId id, const std::string& segment_name);
  Action OnRead(PageId id, const std::string& segment_name);

 private:
  bool Matches(PageId id, const std::string& segment_name) const;

  FaultSpec spec_;
  bool armed_ = false;
  bool crashed_ = false;
  bool fired_ = false;
  uint64_t matching_ = 0;
  uint64_t dropped_writes_ = 0;
};

}  // namespace asr::storage

#endif  // ASR_STORAGE_FAULT_INJECTOR_H_
