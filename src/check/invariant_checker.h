// Structural/semantic validation of the paper's correctness claims.
//
// The paper's guarantees are structural: Defs. 3.3-3.6 pin down exactly
// which (partial) paths each extension may contain, Theorem 3.9 makes every
// decomposition lossless, and §5.2's storage scheme keeps two redundant B+
// trees per partition that must agree. A maintenance bug that violates any
// of these surfaces only as a wrong query answer — so this checker verifies
// them directly, one layer at a time:
//
//   slotted page   slot directory / free-space / record-overlap invariants
//   B+ tree        key order, leaf chain, counts, capacity and fill bounds
//   partition      first-column and last-column tree hold the same tuples,
//                  refcounts match the trees (§5.4 sharing contract)
//   extension      membership shape per Def. 3.3-3.6 (canonical: complete
//                  paths only; left-/right-complete: correct anchoring; all:
//                  partial paths are contiguous), plus — semantically — the
//                  stored relation equals the extension recomputed from the
//                  object base
//   decomposition  Theorem 3.9: partitions are the Def. 3.8 projections and
//                  their natural re-join reproduces the relation
//
// Violations accumulate in a CheckReport; each checker is independent, so a
// corrupted low layer still lets the others report their own view.
#ifndef ASR_CHECK_INVARIANT_CHECKER_H_
#define ASR_CHECK_INVARIANT_CHECKER_H_

#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "asr/extension.h"
#include "btree/btree.h"
#include "check/check_report.h"
#include "gom/object_store.h"
#include "rel/relation.h"
#include "storage/page.h"

namespace asr::check {

struct CheckOptions {
  // Re-derive the extension from the object base and set-compare it with the
  // stored relation — the strongest membership check (it catches silently
  // dropped or fabricated partial paths). Costs one ComputeExtension.
  bool semantic = true;

  // Verify Theorem 3.9 by natural-re-joining the partition dumps and
  // comparing the NULL-free rows with the relation's. (NULL-padded rows are
  // not recoverable by a natural join — NULL never matches — which is why
  // partitions additionally must equal the Def. 3.8 projections; both are
  // checked.) Skipped for ASRs sharing a partition store: a shared store
  // holds sibling contributions that would surface as false positives.
  bool losslessness = true;

  // Minimum fill fraction asserted for every leaf but the chain's last
  // (0 disables). Meaningful right after a bulk load with a known fill
  // factor; trees that saw lazy deletions legitimately underflow.
  double min_leaf_fill = 0.0;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(CheckOptions options = {}) : options_(options) {}

  // --- storage layer -----------------------------------------------------
  // Slot directory and free-space invariants of one slotted page: header
  // bounds, slot extents inside the record area, no overlapping records.
  void CheckSlottedPage(const storage::Page& page, const std::string& site,
                        CheckReport* report) const;

  // Object-store bookkeeping (locations, overflow chains, live counts) plus
  // a slotted-page check of every allocated page of every type's segment.
  void CheckObjectStore(gom::ObjectStore* store, CheckReport* report) const;

  // --- B+ tree layer -----------------------------------------------------
  // Structural invariants (key ordering, sibling chain, fingerprints, counts
  // vs header) plus per-leaf capacity and the optional fill lower bound.
  void CheckBTree(btree::BTree* tree, const std::string& site,
                  CheckReport* report) const;

  // --- partition layer ---------------------------------------------------
  // Both trees structurally valid, mutually consistent (same tuple set
  // clustered two ways, §5.2), and refcounts agreeing with the contents.
  void CheckPartitionStore(PartitionStore* store, CheckReport* report) const;

  // --- extension layer ---------------------------------------------------
  // Def. 3.3-3.6 shape rules on (full-width or partition-slice) rows: no
  // all-NULL row, partial paths contiguous, canonical ⇒ complete, left-/
  // right-complete ⇒ anchored at position 0 / n.
  void CheckExtensionShape(ExtensionKind kind,
                           const std::vector<rel::Row>& rows,
                           const std::string& site, CheckReport* report) const;

  // --- everything for one ASR --------------------------------------------
  // Runs every layer: partition stores, per-partition and relation shape,
  // Def. 3.8 projection agreement, Theorem 3.9 re-join, and (when
  // options.semantic) the recomputed-extension comparison.
  void CheckAsr(AccessSupportRelation* asr, CheckReport* report) const;

  const CheckOptions& options() const { return options_; }

 private:
  CheckOptions options_;
};

}  // namespace asr::check

#endif  // ASR_CHECK_INVARIANT_CHECKER_H_
