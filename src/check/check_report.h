// Violation report shared by every invariant checker.
//
// A CheckReport collects structured violations — one category per checked
// invariant layer, from raw slotted pages up to Theorem 3.9 losslessness —
// so a corruption surfaces with the layer that broke, not as a wrong query
// answer three layers up. Reports serialize through the observability JSON
// writer, making checker output machine-readable alongside metric dumps and
// drift snapshots.
#ifndef ASR_CHECK_CHECK_REPORT_H_
#define ASR_CHECK_CHECK_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace asr::check {

// One category per invariant layer. Ordered bottom-up: a violation in a low
// layer usually explains the cascading ones above it.
enum class Category {
  kSlottedPage,          // slot directory / free-space consistency
  kBTreeStructure,       // key order, leaf chain, counts, fill bounds
  kPartitionDesync,      // first-column vs last-column tree disagreement
  kRefcount,             // slice refcounts vs stored tuples (§5.4 sharing)
  kExtensionMembership,  // Defs. 3.3-3.6: which partial paths may appear
  kLosslessness,         // Theorem 3.9: partitions re-join to the relation
  kObjectStore,          // object-store location/overflow bookkeeping
};

// Stable lower_snake label ("btree_structure", ...) used in JSON output.
std::string_view CategoryName(Category category);

struct Violation {
  Category category;
  std::string site;    // which structure: partition store, page id, ...
  std::string detail;  // what is wrong
};

class CheckReport {
 public:
  // Recorded violations are capped per category; further ones only bump the
  // category's count so a mass corruption cannot balloon the report.
  static constexpr size_t kMaxRecordedPerCategory = 64;

  void Add(Category category, std::string site, std::string detail);

  bool clean() const { return total_ == 0; }
  // All violations observed, including ones beyond the recording cap.
  uint64_t total() const { return total_; }
  uint64_t count(Category category) const;
  const std::vector<Violation>& violations() const { return violations_; }

  // {"clean": ..., "total": ..., "counts": {...}, "violations": [...]}
  std::string ToJson() const;
  // Human-readable rendering, one violation per line (gtest messages).
  std::string ToString() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<Violation> violations_;
  std::map<Category, uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace asr::check

#endif  // ASR_CHECK_CHECK_REPORT_H_
