#include "check/invariant_checker.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>

#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/slotted_page.h"

namespace asr::check {

namespace {

using storage::kPageSize;
using storage::SlottedPage;

std::string RowToString(const rel::Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

bool NullFree(const rel::Row& row) {
  return std::none_of(row.begin(), row.end(),
                      [](AsrKey k) { return k.IsNull(); });
}

// Rows of `r` without any NULL — the common footing on which the natural
// re-join of Theorem 3.9 is compared (NULL join values never match, so
// NULL-padded rows are not recoverable by the re-join).
std::set<rel::Row> NullFreeRows(const rel::Relation& r) {
  std::set<rel::Row> out;
  for (const rel::Row& row : r.rows()) {
    if (NullFree(row)) out.insert(row);
  }
  return out;
}

Status CollectRows(btree::BTree* tree, std::set<rel::Row>* out) {
  return tree->ScanAll([out](const rel::Row& row) -> Status {
    out->insert(row);
    return Status::OK();
  });
}

// Reports each element of `missing` (capped by the report) as `category`.
void ReportRowSetDiff(const std::set<rel::Row>& missing,
                      const std::string& site, Category category,
                      const std::string& what, CheckReport* report) {
  for (const rel::Row& row : missing) {
    report->Add(category, site, what + " " + RowToString(row));
  }
}

}  // namespace

void InvariantChecker::CheckSlottedPage(const storage::Page& page,
                                        const std::string& site,
                                        CheckReport* report) const {
  const uint16_t slots = SlottedPage::slot_count(page);
  const uint16_t free_end = page.Read<uint16_t>(2);
  const uint32_t directory_end =
      SlottedPage::kHeaderSize + slots * SlottedPage::kSlotSize;

  if (free_end > kPageSize) {
    report->Add(Category::kSlottedPage, site,
                "free_end " + std::to_string(free_end) +
                    " beyond the page size");
    return;  // further extent checks would be noise
  }
  if (directory_end > free_end) {
    report->Add(Category::kSlottedPage, site,
                "slot directory (" + std::to_string(slots) +
                    " slots) overlaps the record area at " +
                    std::to_string(free_end));
    return;
  }

  // Each slot's extent — a live record's length, or a tombstoned hole's
  // capacity — must lie inside [free_end, kPageSize), and no two extents
  // may overlap.
  std::vector<std::pair<uint16_t, uint16_t>> extents;  // (offset, bytes)
  for (int s = 0; s < slots; ++s) {
    const uint32_t slot_off =
        SlottedPage::kHeaderSize + s * SlottedPage::kSlotSize;
    const uint16_t offset = page.Read<uint16_t>(slot_off);
    const uint16_t length = page.Read<uint16_t>(slot_off + 2);
    const uint16_t bytes =
        static_cast<uint16_t>(length & ~SlottedPage::kTombstoneBit);
    if (bytes == 0) continue;  // empty extent cannot overlap or escape
    if (offset < free_end) {
      report->Add(Category::kSlottedPage, site,
                  "slot " + std::to_string(s) + " starts at " +
                      std::to_string(offset) +
                      ", inside the free region ending at " +
                      std::to_string(free_end));
      continue;
    }
    if (static_cast<uint32_t>(offset) + bytes > kPageSize) {
      report->Add(Category::kSlottedPage, site,
                  "slot " + std::to_string(s) + " record [" +
                      std::to_string(offset) + ", " +
                      std::to_string(offset + bytes) +
                      ") runs past the page end");
      continue;
    }
    extents.emplace_back(offset, bytes);
  }
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    const auto& [prev_off, prev_bytes] = extents[i - 1];
    const auto& [off, bytes] = extents[i];
    if (static_cast<uint32_t>(prev_off) + prev_bytes > off) {
      report->Add(Category::kSlottedPage, site,
                  "records at " + std::to_string(prev_off) + "(+" +
                      std::to_string(prev_bytes) + ") and " +
                      std::to_string(off) + "(+" + std::to_string(bytes) +
                      ") overlap");
    }
  }
}

void InvariantChecker::CheckObjectStore(gom::ObjectStore* store,
                                        CheckReport* report) const {
  Status st = store->CheckConsistency();
  if (!st.ok()) {
    report->Add(Category::kObjectStore, "object store", st.ToString());
  }
  storage::Disk* disk = store->buffers()->disk();
  std::set<int64_t> seen;  // co-located types share a segment
  const gom::Schema& schema = store->schema();
  for (TypeId t = 0; t < schema.type_count(); ++t) {
    int64_t segment = store->SegmentOf(t);
    if (segment < 0 || !seen.insert(segment).second) continue;
    const uint32_t seg = static_cast<uint32_t>(segment);
    const uint32_t pages = disk->SegmentPageCount(seg);
    for (uint32_t p = 0; p < pages; ++p) {
      storage::PageGuard guard =
          store->buffers()->Pin(storage::PageId{seg, p});
      CheckSlottedPage(guard.page(),
                       "segment " + disk->SegmentName(seg) + " page " +
                           std::to_string(p),
                       report);
    }
  }
}

void InvariantChecker::CheckBTree(btree::BTree* tree, const std::string& site,
                                  CheckReport* report) const {
  Status st = tree->CheckIntegrity();
  if (!st.ok()) {
    report->Add(Category::kBTreeStructure, site, st.message());
    return;  // the chain is unreliable; per-leaf checks would be noise
  }
  // Per-leaf capacity and the optional fill lower bound. The last leaf of a
  // packed chain is legitimately partial, so it is exempt from the bound.
  const uint16_t capacity = static_cast<uint16_t>(tree->leaf_capacity());
  const uint16_t min_fill = static_cast<uint16_t>(
      options_.min_leaf_fill * static_cast<double>(capacity));
  std::vector<std::pair<uint32_t, uint16_t>> leaves;
  st = tree->ForEachLeaf([&](uint32_t page_no, uint16_t count) -> Status {
    leaves.emplace_back(page_no, count);
    return Status::OK();
  });
  if (!st.ok()) {
    report->Add(Category::kBTreeStructure, site, st.message());
    return;
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    const auto& [page_no, count] = leaves[i];
    if (count > capacity) {
      report->Add(Category::kBTreeStructure, site,
                  "leaf " + std::to_string(page_no) + " holds " +
                      std::to_string(count) + " entries, capacity " +
                      std::to_string(capacity));
    }
    const bool last = (i + 1 == leaves.size());
    if (!last && min_fill > 0 && count < min_fill) {
      report->Add(Category::kBTreeStructure, site,
                  "leaf " + std::to_string(page_no) + " holds " +
                      std::to_string(count) + " entries, fill bound " +
                      std::to_string(min_fill));
    }
  }
}

void InvariantChecker::CheckPartitionStore(PartitionStore* store,
                                           CheckReport* report) const {
  const std::string site = "partition " + store->name;
  if (store->quarantined) {
    // The trees are untrusted and must not be read; the in-memory refcounts
    // are the live state until Repair() — only their sanity can be checked.
    for (const auto& [slice, count] : store->refcounts) {
      if (count == 0) {
        report->Add(Category::kRefcount, site,
                    "zero refcount retained for " + RowToString(slice));
      }
    }
    return;
  }
  CheckBTree(store->forward.get(), site + " fwd", report);
  CheckBTree(store->backward.get(), site + " bwd", report);
  if (store->forward->width() != store->width ||
      store->backward->width() != store->width) {
    report->Add(Category::kPartitionDesync, site,
                "tree tuple width disagrees with the store width " +
                    std::to_string(store->width));
    return;
  }

  // §5.2: the two trees are the same tuple set clustered two ways.
  std::set<rel::Row> fwd_rows;
  std::set<rel::Row> bwd_rows;
  Status st = CollectRows(store->forward.get(), &fwd_rows);
  if (st.ok()) st = CollectRows(store->backward.get(), &bwd_rows);
  if (!st.ok()) {
    report->Add(Category::kPartitionDesync, site,
                "tree scan failed: " + st.ToString());
    return;
  }
  std::set<rel::Row> only_fwd;
  std::set<rel::Row> only_bwd;
  std::set_difference(fwd_rows.begin(), fwd_rows.end(), bwd_rows.begin(),
                      bwd_rows.end(),
                      std::inserter(only_fwd, only_fwd.begin()));
  std::set_difference(bwd_rows.begin(), bwd_rows.end(), fwd_rows.begin(),
                      fwd_rows.end(),
                      std::inserter(only_bwd, only_bwd.begin()));
  ReportRowSetDiff(only_fwd, site, Category::kPartitionDesync,
                   "tuple only in the first-column tree:", report);
  ReportRowSetDiff(only_bwd, site, Category::kPartitionDesync,
                   "tuple only in the last-column tree:", report);

  // The refcounts key exactly the distinct slices stored (their counts sum
  // the sharing ASRs' contributions, §5.4).
  for (const auto& [slice, count] : store->refcounts) {
    if (count == 0) {
      report->Add(Category::kRefcount, site,
                  "zero refcount retained for " + RowToString(slice));
    } else if (fwd_rows.count(slice) == 0) {
      report->Add(Category::kRefcount, site,
                  "refcounted slice missing from the trees: " +
                      RowToString(slice));
    }
  }
  for (const rel::Row& row : fwd_rows) {
    if (store->refcounts.count(row) == 0) {
      report->Add(Category::kRefcount, site,
                  "stored tuple has no refcount: " + RowToString(row));
    }
  }
}

void InvariantChecker::CheckExtensionShape(ExtensionKind kind,
                                           const std::vector<rel::Row>& rows,
                                           const std::string& site,
                                           CheckReport* report) const {
  for (const rel::Row& row : rows) {
    // The non-NULL cells of any (partial) path are contiguous — a path
    // fragment covers consecutive positions (Defs. 3.3-3.7). This holds for
    // full-width rows and for every partition slice of them.
    size_t first = row.size();
    size_t last = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].IsNull()) continue;
      first = std::min(first, i);
      last = std::max(last, i);
    }
    if (first == row.size()) {
      report->Add(Category::kExtensionMembership, site,
                  "all-NULL row stored");
      continue;
    }
    bool contiguous = true;
    for (size_t i = first; i <= last; ++i) {
      if (row[i].IsNull()) contiguous = false;
    }
    if (!contiguous) {
      report->Add(Category::kExtensionMembership, site,
                  "partial path is not contiguous: " + RowToString(row));
      continue;
    }
    switch (kind) {
      case ExtensionKind::kCanonical:
        // Def. 3.4: complete paths only — no NULL anywhere.
        if (first != 0 || last != row.size() - 1) {
          report->Add(Category::kExtensionMembership, site,
                      "canonical extension holds a partial path: " +
                          RowToString(row));
        }
        break;
      case ExtensionKind::kLeftComplete:
        // Def. 3.6: every partial path is anchored at position 0, so NULLs
        // form a right suffix only.
        if (first != 0) {
          report->Add(Category::kExtensionMembership, site,
                      "left-complete extension holds an unanchored path: " +
                          RowToString(row));
        }
        break;
      case ExtensionKind::kRightComplete:
        // Def. 3.7 (mirror): NULLs form a left prefix only.
        if (last != row.size() - 1) {
          report->Add(Category::kExtensionMembership, site,
                      "right-complete extension holds an unanchored path: " +
                          RowToString(row));
        }
        break;
      case ExtensionKind::kFull:
        break;  // any contiguous fragment is admissible (Def. 3.5)
    }
  }
}

void InvariantChecker::CheckAsr(AccessSupportRelation* asr,
                                CheckReport* report) const {
  const std::string rel_site =
      asr->path().ToString() + ":" + ExtensionKindName(asr->kind());

  bool any_shared = false;
  bool any_quarantined = false;
  std::vector<rel::Relation> dumps;
  for (size_t p = 0; p < asr->partition_count(); ++p) {
    PartitionStore* store = asr->partition_store(p).get();
    any_shared |= store->owners > 1;
    CheckPartitionStore(store, report);
    if (store->quarantined) {
      // Physical checks are meaningless on untrusted trees; the semantic
      // check below still validates the relation itself.
      any_quarantined = true;
      dumps.emplace_back(store->width);  // placeholder keeps indices aligned
      continue;
    }

    Result<rel::Relation> dump = asr->DumpPartition(p);
    if (!dump.ok()) {
      report->Add(Category::kBTreeStructure, "partition " + store->name,
                  "dump failed: " + dump.status().ToString());
      dumps.emplace_back(store->width);  // placeholder keeps indices aligned
      continue;
    }

    // Slices inherit the extension's shape rules (a slice of a contiguous
    // fragment is contiguous, and anchoring carries over per partition);
    // only the first/last partition constrains the respective anchor column.
    auto [first, last] = asr->partition_range(p);
    ExtensionKind slice_kind = ExtensionKind::kFull;
    if (asr->kind() == ExtensionKind::kCanonical) {
      slice_kind = ExtensionKind::kCanonical;
    } else if (asr->kind() == ExtensionKind::kLeftComplete && first == 0) {
      slice_kind = ExtensionKind::kLeftComplete;
    } else if (asr->kind() == ExtensionKind::kRightComplete &&
               last == asr->width() - 1) {
      slice_kind = ExtensionKind::kRightComplete;
    }
    CheckExtensionShape(slice_kind, dump->rows(), "partition " + store->name,
                        report);

    // Def. 3.8: a solely owned partition store is exactly the projection of
    // the relation onto the partition's columns.
    if (store->owners == 1) {
      std::set<rel::Row> expected;
      for (const rel::Row& row : asr->rows()) {
        rel::Row slice(row.begin() + first, row.begin() + last + 1);
        if (std::any_of(slice.begin(), slice.end(),
                        [](AsrKey k) { return !k.IsNull(); })) {
          expected.insert(std::move(slice));
        }
      }
      std::set<rel::Row> stored(dump->rows().begin(), dump->rows().end());
      std::set<rel::Row> missing;
      std::set<rel::Row> extra;
      std::set_difference(expected.begin(), expected.end(), stored.begin(),
                          stored.end(), std::inserter(missing, missing.begin()));
      std::set_difference(stored.begin(), stored.end(), expected.begin(),
                          expected.end(), std::inserter(extra, extra.begin()));
      ReportRowSetDiff(missing, "partition " + store->name,
                       Category::kLosslessness,
                       "projection slice missing from the partition:", report);
      ReportRowSetDiff(extra, "partition " + store->name,
                       Category::kLosslessness,
                       "partition tuple outside the projection:", report);
    }
    dumps.push_back(std::move(*dump));
  }

  // Full-width relation shape (Defs. 3.3-3.6).
  std::vector<rel::Row> rows(asr->rows().begin(), asr->rows().end());
  for (const rel::Row& row : rows) {
    if (row.size() != asr->width()) {
      report->Add(Category::kExtensionMembership, rel_site,
                  "row arity " + std::to_string(row.size()) +
                      " differs from the relation width " +
                      std::to_string(asr->width()));
    }
  }
  CheckExtensionShape(asr->kind(), rows, rel_site, report);

  // Theorem 3.9: the natural re-join of the partitions reproduces the
  // relation. NULL join values never match, so the comparison runs on the
  // NULL-free rows — the NULL-padded remainder is covered by the projection
  // check above. Shared stores hold sibling ASRs' slices and would re-join
  // to a superset; skip them.
  if (options_.losslessness && !any_shared && !any_quarantined &&
      dumps.size() == asr->partition_count() && !dumps.empty()) {
    rel::Relation rejoined = dumps[0];
    for (size_t p = 1; p < dumps.size(); ++p) {
      rejoined =
          rel::Relation::Join(rejoined, dumps[p], rel::JoinKind::kNatural);
    }
    rel::Relation full(asr->width());
    for (const rel::Row& row : rows) full.AddRow(row);
    std::set<rel::Row> want = NullFreeRows(full);
    std::set<rel::Row> got = NullFreeRows(rejoined);
    std::set<rel::Row> missing;
    std::set<rel::Row> extra;
    std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                        std::inserter(missing, missing.begin()));
    std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                        std::inserter(extra, extra.begin()));
    ReportRowSetDiff(missing, rel_site, Category::kLosslessness,
                     "row lost by the partition re-join:", report);
    ReportRowSetDiff(extra, rel_site, Category::kLosslessness,
                     "row fabricated by the partition re-join:", report);
  }

  // Semantic membership: the stored relation IS the extension of the path
  // over the current object base (Defs. 3.3-3.6). Catches maintenance bugs
  // that keep every structural invariant intact — e.g. a silently dropped
  // partial path.
  if (options_.semantic) {
    Result<rel::Relation> recomputed = ComputeExtension(
        asr->object_store(), asr->path(), asr->kind(),
        asr->options().drop_set_columns, asr->options().anchor_collection);
    if (!recomputed.ok()) {
      report->Add(Category::kExtensionMembership, rel_site,
                  "extension recompute failed: " +
                      recomputed.status().ToString());
      return;
    }
    std::set<rel::Row> want(recomputed->rows().begin(),
                            recomputed->rows().end());
    std::set<rel::Row> missing;
    std::set<rel::Row> extra;
    std::set_difference(want.begin(), want.end(), asr->rows().begin(),
                        asr->rows().end(),
                        std::inserter(missing, missing.begin()));
    std::set_difference(asr->rows().begin(), asr->rows().end(), want.begin(),
                        want.end(), std::inserter(extra, extra.begin()));
    ReportRowSetDiff(missing, rel_site, Category::kExtensionMembership,
                     "extension row missing from the stored relation:",
                     report);
    ReportRowSetDiff(extra, rel_site, Category::kExtensionMembership,
                     "stored row not in the extension:", report);
  }
}

}  // namespace asr::check
