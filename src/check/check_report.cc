#include "check/check_report.h"

#include <fstream>

#include "obs/json.h"

namespace asr::check {

std::string_view CategoryName(Category category) {
  switch (category) {
    case Category::kSlottedPage:
      return "slotted_page";
    case Category::kBTreeStructure:
      return "btree_structure";
    case Category::kPartitionDesync:
      return "partition_desync";
    case Category::kRefcount:
      return "refcount";
    case Category::kExtensionMembership:
      return "extension_membership";
    case Category::kLosslessness:
      return "losslessness";
    case Category::kObjectStore:
      return "object_store";
  }
  return "unknown";
}

void CheckReport::Add(Category category, std::string site,
                      std::string detail) {
  uint64_t& count = counts_[category];
  ++count;
  ++total_;
  if (count <= kMaxRecordedPerCategory) {
    violations_.push_back(
        Violation{category, std::move(site), std::move(detail)});
  }
}

uint64_t CheckReport::count(Category category) const {
  auto it = counts_.find(category);
  return it == counts_.end() ? 0 : it->second;
}

std::string CheckReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("clean");
  w.Bool(clean());
  w.Key("total");
  w.UInt(total_);
  w.Key("counts");
  w.BeginObject();
  for (const auto& [category, count] : counts_) {
    w.Key(CategoryName(category));
    w.UInt(count);
  }
  w.EndObject();
  w.Key("violations");
  w.BeginArray();
  for (const Violation& v : violations_) {
    w.BeginObject();
    w.Key("category");
    w.String(CategoryName(v.category));
    w.Key("site");
    w.String(v.site);
    w.Key("detail");
    w.String(v.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string CheckReport::ToString() const {
  if (clean()) return "clean";
  std::string out = std::to_string(total_) + " violation(s)\n";
  for (const Violation& v : violations_) {
    out += "  [";
    out += CategoryName(v.category);
    out += "] " + v.site + ": " + v.detail + "\n";
  }
  uint64_t dropped = total_ - violations_.size();
  if (dropped > 0) {
    out += "  (+" + std::to_string(dropped) + " not recorded)\n";
  }
  return out;
}

bool CheckReport::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace asr::check
