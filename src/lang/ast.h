// Abstract syntax of the query notation.
//
//   query  := SELECT path FROM range (',' range)* [WHERE cond (AND cond)*]
//   range  := IDENT IN source        -- source: type name, or var.path
//   cond   := path '=' literal
//   path   := IDENT ('.' IDENT)*     -- first component is a range variable
//             (in FROM sources the first component may be a type name)
//
// This covers the paper's Queries 1-3: a select projection along a path,
// range variables over extents and over paths of other variables, and
// equality conditions on path termini.
#ifndef ASR_LANG_AST_H_
#define ASR_LANG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace asr::lang {

// A dotted reference: head ('.' attrs)*.
struct PathRef {
  std::string head;
  std::vector<std::string> attrs;

  std::string ToString() const {
    std::string out = head;
    for (const std::string& a : attrs) out += "." + a;
    return out;
  }
};

struct RangeDecl {
  std::string var;
  PathRef source;  // type name (no attrs) or var.path
};

struct Literal {
  enum class Kind { kString, kInt, kDecimal };
  Kind kind = Kind::kString;
  std::string string_value;
  int64_t int_value = 0;  // decimals pre-scaled by 100
};

struct Condition {
  PathRef path;
  Literal literal;
};

struct SelectQuery {
  PathRef select;
  std::vector<RangeDecl> ranges;
  std::vector<Condition> conditions;
};

}  // namespace asr::lang

#endif  // ASR_LANG_AST_H_
