#include "lang/parser.h"

#include "lang/lexer.h"

namespace asr::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Run() {
    SelectQuery query;
    ASR_RETURN_IF_ERROR(Expect(TokenKind::kSelect));
    Result<PathRef> select = ParsePath();
    ASR_RETURN_IF_ERROR(select.status());
    query.select = std::move(*select);

    ASR_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
    while (true) {
      RangeDecl range;
      Result<std::string> var = ExpectIdent();
      ASR_RETURN_IF_ERROR(var.status());
      range.var = std::move(*var);
      ASR_RETURN_IF_ERROR(Expect(TokenKind::kIn));
      Result<PathRef> source = ParsePath();
      ASR_RETURN_IF_ERROR(source.status());
      range.source = std::move(*source);
      query.ranges.push_back(std::move(range));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }

    if (Peek().kind == TokenKind::kWhere) {
      Advance();
      while (true) {
        Condition cond;
        Result<PathRef> path = ParsePath();
        ASR_RETURN_IF_ERROR(path.status());
        cond.path = std::move(*path);
        ASR_RETURN_IF_ERROR(Expect(TokenKind::kEquals));
        Result<Literal> literal = ParseLiteral();
        ASR_RETURN_IF_ERROR(literal.status());
        cond.literal = std::move(*literal);
        query.conditions.push_back(std::move(cond));
        if (Peek().kind != TokenKind::kAnd) break;
        Advance();
      }
    }
    ASR_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      Token expected;
      expected.kind = kind;
      return Status::InvalidArgument("expected " + expected.Describe() +
                                     " but found " + Peek().Describe() +
                                     " at byte " +
                                     std::to_string(Peek().offset));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected identifier but found " +
                                     Peek().Describe() + " at byte " +
                                     std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<PathRef> ParsePath() {
    PathRef path;
    Result<std::string> head = ExpectIdent();
    ASR_RETURN_IF_ERROR(head.status());
    path.head = std::move(*head);
    while (Peek().kind == TokenKind::kDot) {
      Advance();
      Result<std::string> attr = ExpectIdent();
      ASR_RETURN_IF_ERROR(attr.status());
      path.attrs.push_back(std::move(*attr));
    }
    return path;
  }

  Result<Literal> ParseLiteral() {
    Literal literal;
    if (Peek().kind == TokenKind::kString) {
      literal.kind = Literal::Kind::kString;
      literal.string_value = Advance().text;
      return literal;
    }
    if (Peek().kind == TokenKind::kNumber) {
      const Token& token = Advance();
      literal.kind = token.decimal ? Literal::Kind::kDecimal
                                   : Literal::Kind::kInt;
      literal.int_value = token.number;
      return literal;
    }
    return Status::InvalidArgument("expected a literal but found " +
                                   Peek().Describe() + " at byte " +
                                   std::to_string(Peek().offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectQuery> Parse(const std::string& query) {
  Result<std::vector<Token>> tokens = Tokenize(query);
  ASR_RETURN_IF_ERROR(tokens.status());
  return Parser(std::move(*tokens)).Run();
}

}  // namespace asr::lang
