// Tokenizer for the paper's SQL-like query notation (§2.2/§2.3):
//
//   select r.Name
//   from   r in OurRobots
//   where  r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"
#ifndef ASR_LANG_LEXER_H_
#define ASR_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace asr::lang {

enum class TokenKind {
  kSelect,
  kFrom,
  kWhere,
  kIn,
  kAnd,
  kIdent,
  kString,   // "Utopia"
  kNumber,   // 42 or 1205.50
  kDot,
  kComma,
  kEquals,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier or string contents
  int64_t number = 0;   // kNumber: value scaled by 100 when decimal is true
  bool decimal = false; // kNumber: literal contained a decimal point
  size_t offset = 0;    // byte offset in the query (for error messages)

  std::string Describe() const;
};

// Splits `query` into tokens; keywords are case-insensitive.
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace asr::lang

#endif  // ASR_LANG_LEXER_H_
