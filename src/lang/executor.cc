#include "lang/executor.h"

#include <cstdio>
#include <unordered_set>
#include <utility>

#include "workload/profile_estimator.h"

namespace asr::lang {

Result<std::vector<AsrKey>> QueryEngine::Execute(const std::string& query) {
  Result<SelectQuery> parsed = Parse(query);
  ASR_RETURN_IF_ERROR(parsed.status());
  return Execute(*parsed);
}

Result<TypeId> QueryEngine::BindRanges(
    const SelectQuery& query, std::map<std::string, Binding>* bindings) {
  if (query.ranges.empty()) {
    return Status::InvalidArgument("query needs at least one range variable");
  }
  const gom::Schema& schema = store_->schema();

  // The anchor range runs over a type extent.
  const RangeDecl& anchor = query.ranges.front();
  if (!anchor.source.attrs.empty()) {
    return Status::InvalidArgument(
        "the first range variable must run over a type extent, not a path");
  }
  Result<TypeId> anchor_type = schema.FindType(anchor.source.head);
  ASR_RETURN_IF_ERROR(anchor_type.status());
  if (!schema.IsTuple(*anchor_type)) {
    return Status::TypeError("'" + anchor.source.head +
                             "' is not a tuple type");
  }
  (*bindings)[anchor.var] = Binding{};

  // Later ranges chain off previously declared variables.
  for (size_t r = 1; r < query.ranges.size(); ++r) {
    const RangeDecl& range = query.ranges[r];
    auto it = bindings->find(range.source.head);
    if (it == bindings->end()) {
      return Status::InvalidArgument(
          "range variable '" + range.var + "' refers to undeclared '" +
          range.source.head + "'");
    }
    if (range.source.attrs.empty()) {
      return Status::InvalidArgument("range variable '" + range.var +
                                     "' must traverse at least one attribute");
    }
    Binding binding = it->second;
    binding.attrs.insert(binding.attrs.end(), range.source.attrs.begin(),
                         range.source.attrs.end());
    if (!bindings->emplace(range.var, std::move(binding)).second) {
      return Status::InvalidArgument("range variable '" + range.var +
                                     "' declared twice");
    }
  }
  return *anchor_type;
}

Result<PathExpression> QueryEngine::ResolvePath(
    TypeId anchor, const std::map<std::string, Binding>& bindings,
    const PathRef& ref) {
  auto it = bindings.find(ref.head);
  if (it == bindings.end()) {
    return Status::InvalidArgument("unknown variable '" + ref.head + "'");
  }
  std::vector<std::string> attrs = it->second.attrs;
  attrs.insert(attrs.end(), ref.attrs.begin(), ref.attrs.end());
  if (attrs.empty()) {
    return Status::InvalidArgument(
        "path must traverse at least one attribute");
  }
  return PathExpression::Create(store_->schema(), anchor, attrs);
}

Result<AsrKey> QueryEngine::LiteralKey(const PathExpression& path,
                                       const Literal& literal) {
  const gom::Schema& schema = store_->schema();
  TypeId terminal = path.type_at(path.n());
  if (!schema.IsAtomic(terminal)) {
    return Status::TypeError(
        "path '" + path.ToString() +
        "' ends in an object type; literals compare against atomic "
        "attributes only");
  }
  switch (schema.atomic_kind(terminal)) {
    case gom::AtomicKind::kString:
      if (literal.kind != Literal::Kind::kString) {
        return Status::TypeError("attribute is a STRING; quote the literal");
      }
      {
        // A never-interned string matches nothing; avoid polluting the dict.
        uint32_t code =
            std::as_const(*store_).string_dict().Lookup(
                literal.string_value);
        if (code == StringDict::kNotFound) return AsrKey::Null();
        return AsrKey::FromStringCode(code);
      }
    case gom::AtomicKind::kInt:
      if (literal.kind != Literal::Kind::kInt) {
        return Status::TypeError("attribute is an INTEGER literal mismatch");
      }
      return AsrKey::FromInt(literal.int_value);
    case gom::AtomicKind::kDecimal:
      if (literal.kind == Literal::Kind::kDecimal) {
        return AsrKey::FromInt(literal.int_value);
      }
      if (literal.kind == Literal::Kind::kInt) {
        return AsrKey::FromInt(literal.int_value * 100);
      }
      return Status::TypeError("attribute is a DECIMAL; use a number");
  }
  return Status::TypeError("unknown atomic kind");
}

AccessSupportRelation* QueryEngine::FindAsr(
    const PathExpression& path) const {
  for (AccessSupportRelation* asr : asrs_) {
    if (asr->path().ToString() == path.ToString() &&
        asr->SupportsQuery(0, path.n())) {
      return asr;
    }
  }
  return nullptr;
}

Result<std::vector<AsrKey>> QueryEngine::EvalBackward(
    const PathExpression& path, AsrKey target) {
  if (AccessSupportRelation* asr = FindAsr(path)) {
    ++supported_evals_;
    return asr->EvalBackward(target, 0, path.n());
  }
  ++navigational_evals_;
  QueryEvaluator nav(store_, &path);
  return nav.BackwardNoSupport(target, 0, path.n());
}

Result<std::vector<AsrKey>> QueryEngine::EvalForward(
    const PathExpression& path, AsrKey start) {
  if (AccessSupportRelation* asr = FindAsr(path)) {
    ++supported_evals_;
    return asr->EvalForward(start, 0, path.n());
  }
  ++navigational_evals_;
  QueryEvaluator nav(store_, &path);
  return nav.ForwardNoSupport(start, 0, path.n());
}

Result<std::vector<AsrKey>> QueryEngine::Execute(const SelectQuery& query) {
  std::map<std::string, Binding> bindings;
  Result<TypeId> anchor = BindRanges(query, &bindings);
  ASR_RETURN_IF_ERROR(anchor.status());
  const gom::Schema& schema = store_->schema();

  // Anchor candidates: intersection of the conditions' backward queries, or
  // the whole extent when there is no condition.
  std::unordered_set<AsrKey> anchors;
  bool first_condition = true;
  for (const Condition& cond : query.conditions) {
    Result<PathExpression> path = ResolvePath(*anchor, bindings, cond.path);
    ASR_RETURN_IF_ERROR(path.status());
    Result<AsrKey> literal_key = LiteralKey(*path, cond.literal);
    ASR_RETURN_IF_ERROR(literal_key.status());
    std::unordered_set<AsrKey> matched;
    if (!literal_key->IsNull()) {
      Result<std::vector<AsrKey>> result =
          EvalBackward(*path, *literal_key);
      ASR_RETURN_IF_ERROR(result.status());
      matched.insert(result->begin(), result->end());
    }
    if (first_condition) {
      anchors = std::move(matched);
      first_condition = false;
    } else {
      std::unordered_set<AsrKey> kept;
      for (AsrKey k : anchors) {
        if (matched.count(k) > 0) kept.insert(k);
      }
      anchors = std::move(kept);
    }
    if (anchors.empty()) break;
  }
  if (query.conditions.empty()) {
    for (TypeId t = 0; t < schema.type_count(); ++t) {
      if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, *anchor)) continue;
      Status st = store_->ScanTuples(t, [&](const gom::TupleView& view) {
        anchors.insert(AsrKey::FromOid(view.oid));
        return Status::OK();
      });
      ASR_RETURN_IF_ERROR(st);
    }
  }

  // Projection.
  auto select_binding = bindings.find(query.select.head);
  if (select_binding == bindings.end()) {
    return Status::InvalidArgument("unknown variable '" + query.select.head +
                                   "' in the select clause");
  }
  std::unordered_set<AsrKey> output;
  if (query.select.attrs.empty() && select_binding->second.attrs.empty()) {
    output = std::move(anchors);
  } else {
    Result<PathExpression> select_path =
        ResolvePath(*anchor, bindings, query.select);
    ASR_RETURN_IF_ERROR(select_path.status());
    for (AsrKey a : anchors) {
      Result<std::vector<AsrKey>> values = EvalForward(*select_path, a);
      ASR_RETURN_IF_ERROR(values.status());
      output.insert(values->begin(), values->end());
    }
  }
  return std::vector<AsrKey>(output.begin(), output.end());
}

namespace {

// Maps a supporting ASR's extension/decomposition into the cost model's
// supported-query estimate; navigational queries use Qnas.
double PredictPathCost(const cost::CostModel& model,
                       cost::QueryDirection dir, uint32_t n,
                       const AccessSupportRelation* asr) {
  if (asr != nullptr) {
    return model.QuerySupported(asr->kind(), dir, 0, n,
                                asr->decomposition());
  }
  return model.QueryNoSupport(dir, 0, n);
}

}  // namespace

std::string QueryEngine::QueryPlan::ToString() const {
  std::string out;
  for (const PlanStep& step : steps) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-11s %8.1f  %s\n",
                  step.supported ? "[asr]" : "[navigate]",
                  step.predicted_accesses, step.description.c_str());
    out += line;
  }
  char total[64];
  std::snprintf(total, sizeof(total), "  predicted total: %.1f page accesses\n",
                total_predicted);
  out += total;
  return out;
}

Result<QueryEngine::QueryPlan> QueryEngine::Explain(const std::string& query) {
  Result<SelectQuery> parsed = Parse(query);
  ASR_RETURN_IF_ERROR(parsed.status());
  return Explain(*parsed);
}

Result<QueryEngine::QueryPlan> QueryEngine::Explain(const SelectQuery& query) {
  std::map<std::string, Binding> bindings;
  Result<TypeId> anchor = BindRanges(query, &bindings);
  ASR_RETURN_IF_ERROR(anchor.status());

  QueryPlan plan;
  for (const Condition& cond : query.conditions) {
    Result<PathExpression> path = ResolvePath(*anchor, bindings, cond.path);
    ASR_RETURN_IF_ERROR(path.status());
    Result<AsrKey> literal = LiteralKey(*path, cond.literal);
    ASR_RETURN_IF_ERROR(literal.status());  // type-check the condition
    Result<cost::ApplicationProfile> profile =
        workload::EstimateProfile(store_, *path);
    ASR_RETURN_IF_ERROR(profile.status());
    cost::CostModel model(std::move(*profile));
    AccessSupportRelation* asr = FindAsr(*path);
    PlanStep step;
    step.description =
        "backward over " + path->ToString() + " (condition)";
    step.supported = asr != nullptr;
    step.predicted_accesses = PredictPathCost(
        model, cost::QueryDirection::kBackward, path->n(), asr);
    plan.total_predicted += step.predicted_accesses;
    plan.steps.push_back(std::move(step));
  }

  auto select_binding = bindings.find(query.select.head);
  if (select_binding == bindings.end()) {
    return Status::InvalidArgument("unknown variable '" + query.select.head +
                                   "' in the select clause");
  }
  if (!query.select.attrs.empty() || !select_binding->second.attrs.empty()) {
    Result<PathExpression> path =
        ResolvePath(*anchor, bindings, query.select);
    ASR_RETURN_IF_ERROR(path.status());
    Result<cost::ApplicationProfile> profile =
        workload::EstimateProfile(store_, *path);
    ASR_RETURN_IF_ERROR(profile.status());
    cost::CostModel model(std::move(*profile));
    AccessSupportRelation* asr = FindAsr(*path);
    PlanStep step;
    step.description =
        "forward over " + path->ToString() + " (projection, per anchor)";
    step.supported = asr != nullptr;
    step.predicted_accesses = PredictPathCost(
        model, cost::QueryDirection::kForward, path->n(), asr);
    plan.total_predicted += step.predicted_accesses;
    plan.steps.push_back(std::move(step));
  }
  if (query.conditions.empty()) {
    PlanStep step;
    step.description = "extent scan of " +
                       store_->schema().name(*anchor) + " (no condition)";
    step.supported = false;
    step.predicted_accesses =
        static_cast<double>(store_->PageCount(*anchor));
    plan.total_predicted += step.predicted_accesses;
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

std::string QueryEngine::Format(AsrKey key) const {
  if (key.IsString()) {
    return "\"" +
           std::as_const(*store_).string_dict().Get(key.ToStringCode()) +
           "\"";
  }
  if (key.IsInt()) return std::to_string(key.ToInt());
  return key.ToString();
}

}  // namespace asr::lang
