#include "lang/lexer.h"

#include <cctype>

namespace asr::lang {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kSelect:
      return "'select'";
    case TokenKind::kFrom:
      return "'from'";
    case TokenKind::kWhere:
      return "'where'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kAnd:
      return "'and'";
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kString:
      return "string \"" + text + "\"";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '.') {
      token.kind = TokenKind::kDot;
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '=') {
      token.kind = TokenKind::kEquals;
      ++i;
    } else if (c == '"') {
      token.kind = TokenKind::kString;
      ++i;
      while (i < n && query[i] != '"') token.text += query[i++];
      if (i == n) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(token.offset));
      }
      ++i;  // closing quote
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      token.kind = TokenKind::kNumber;
      bool negative = c == '-';
      if (negative) ++i;
      int64_t whole = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
        whole = whole * 10 + (query[i++] - '0');
      }
      int64_t cents = 0;
      if (i < n && query[i] == '.') {
        token.decimal = true;
        ++i;
        int digits = 0;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          if (digits < 2) cents = cents * 10 + (query[i] - '0');
          ++digits;
          ++i;
        }
        if (digits == 1) cents *= 10;  // "1.5" -> 150
        if (digits > 2) {
          return Status::InvalidArgument(
              "decimal literals carry at most two fraction digits (byte " +
              std::to_string(token.offset) + ")");
        }
      }
      token.number = token.decimal ? whole * 100 + cents : whole;
      if (negative) token.number = -token.number;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(query[i])) ||
                       query[i] == '_')) {
        token.text += query[i++];
      }
      std::string lower = Lower(token.text);
      if (lower == "select") {
        token.kind = TokenKind::kSelect;
      } else if (lower == "from") {
        token.kind = TokenKind::kFrom;
      } else if (lower == "where") {
        token.kind = TokenKind::kWhere;
      } else if (lower == "in") {
        token.kind = TokenKind::kIn;
      } else if (lower == "and") {
        token.kind = TokenKind::kAnd;
      } else {
        token.kind = TokenKind::kIdent;
      }
    } else {
      return Status::InvalidArgument(
          std::string("unexpected character '") + c + "' at byte " +
          std::to_string(i));
    }
    out.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(end);
  return out;
}

}  // namespace asr::lang
