// Query engine: binds and executes parsed select queries against an object
// store, using registered access support relations where one matches the
// query's path and falling back to navigational evaluation otherwise.
//
// Range variables are normalized onto the anchor variable (the first range,
// which must run over a type extent): a declaration `b in d.Manufactures.
// Composition` makes every use of `b` a path from `d` — turning the paper's
// Query 2 into the backward path query Q_{0,n}(bw) it is.
#ifndef ASR_LANG_EXECUTOR_H_
#define ASR_LANG_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"
#include "asr/query.h"
#include "cost/cost_model.h"
#include "lang/ast.h"
#include "lang/parser.h"

namespace asr::lang {

class QueryEngine {
 public:
  explicit QueryEngine(gom::ObjectStore* store) : store_(store) {}
  ASR_DISALLOW_COPY_AND_ASSIGN(QueryEngine);

  // Registers an ASR (not owned) the engine may use when its path matches.
  void RegisterAsr(AccessSupportRelation* asr) { asrs_.push_back(asr); }

  // Parses and executes `query`; the result holds object OIDs or atomic
  // values, deduplicated, in unspecified order.
  Result<std::vector<AsrKey>> Execute(const std::string& query);

  // Executes an already parsed query.
  Result<std::vector<AsrKey>> Execute(const SelectQuery& query);

  // Renders a result key: strings decoded and quoted, integers printed,
  // OIDs in tN.sM form.
  std::string Format(AsrKey key) const;

  // One evaluation step of a query plan.
  struct PlanStep {
    std::string description;       // what runs (condition path / projection)
    bool supported = false;        // served by a registered ASR?
    double predicted_accesses = 0; // cost-model page-access estimate
  };
  struct QueryPlan {
    std::vector<PlanStep> steps;
    double total_predicted = 0;
    std::string ToString() const;
  };

  // Plans `query` without executing it: which steps run through which ASR
  // and what the analytical model predicts for each. Estimating the profile
  // scans the extents along each involved path, so Explain is itself a
  // heavyweight (but side-effect free) operation.
  Result<QueryPlan> Explain(const std::string& query);
  Result<QueryPlan> Explain(const SelectQuery& query);

  // How many path evaluations ran through an ASR vs navigationally (for
  // tests and diagnostics).
  uint64_t supported_evals() const { return supported_evals_; }
  uint64_t navigational_evals() const { return navigational_evals_; }

 private:
  // A variable binding: the attribute chain from the anchor variable.
  struct Binding {
    std::vector<std::string> attrs;
  };

  // Resolves ranges/select/conditions onto the anchor; fills `anchor_type`
  // and per-variable bindings.
  Result<TypeId> BindRanges(const SelectQuery& query,
                            std::map<std::string, Binding>* bindings);

  Result<PathExpression> ResolvePath(TypeId anchor,
                                     const std::map<std::string, Binding>& b,
                                     const PathRef& ref);

  // Converts a literal to the key comparable against `path`'s terminus.
  Result<AsrKey> LiteralKey(const PathExpression& path,
                            const Literal& literal);

  // Finds a registered ASR able to evaluate Q_{0,n} over `path`.
  AccessSupportRelation* FindAsr(const PathExpression& path) const;

  Result<std::vector<AsrKey>> EvalBackward(const PathExpression& path,
                                           AsrKey target);
  Result<std::vector<AsrKey>> EvalForward(const PathExpression& path,
                                          AsrKey start);

  gom::ObjectStore* store_;
  std::vector<AccessSupportRelation*> asrs_;
  uint64_t supported_evals_ = 0;
  uint64_t navigational_evals_ = 0;
};

}  // namespace asr::lang

#endif  // ASR_LANG_EXECUTOR_H_
