// Recursive-descent parser for the query notation (see ast.h).
#ifndef ASR_LANG_PARSER_H_
#define ASR_LANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace asr::lang {

// Parses one select query. Errors carry the offending token and position.
Result<SelectQuery> Parse(const std::string& query);

}  // namespace asr::lang

#endif  // ASR_LANG_PARSER_H_
