// Access support relations: materialized path extensions stored in pairs of
// B+ trees, with supported query evaluation and incremental maintenance.
//
// For a chosen extension (Defs. 3.4-3.7) and decomposition (Def. 3.8), every
// partition E^{i,j} is stored in two redundant B+ trees — clustered on its
// first and on its last column (§5.2) — so that partial paths can be chased
// forward and backward with one cluster lookup per partition. Queries whose
// entry column is not a partition boundary must inspect every page of the
// covering partition, exactly the ap term of the analytical model (Eq. 33).
#ifndef ASR_ASR_ACCESS_SUPPORT_RELATION_H_
#define ASR_ASR_ACCESS_SUPPORT_RELATION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "asr/decomposition.h"
#include "asr/extension.h"
#include "asr/journal.h"
#include "asr/path_expression.h"
#include "btree/btree.h"
#include "common/status.h"
#include "gom/object_store.h"
#include "obs/metrics.h"
#include "rel/relation.h"

namespace asr {

class AsrSnapshot;

struct AsrOptions {
  // Drop set-instance OID columns (the paper's no-set-sharing
  // simplification, §3): the relation then has arity n+1 and incremental
  // maintenance is available. With false, set columns are retained (arity
  // n+k+1) and updates require a rebuild.
  bool drop_set_columns = true;

  // Anchor the path at a particular collection C of t_0 elements instead of
  // the whole extent — the alternative §3 mentions ("we could have chosen a
  // particular collection C of elements of type t0 as the anchor"). When
  // set, only paths originating in members of this set/list instance are
  // materialized. Membership changes of C require Rebuild(); edge
  // maintenance within the paths stays incremental.
  Oid anchor_collection = Oid::Null();

  // --- Build pipeline (beyond the paper) ---------------------------------
  // Materialize fresh partition stores by sorted bulk load: slice the
  // full-width row set per partition, sort by the clustered column, and
  // pack both B+ trees bottom-up — no descents, no splits, each page
  // written once. Contents are identical to tuple-at-a-time loading; only
  // build cost changes. The tuple-at-a-time path is kept for metering
  // comparisons (bench/bulkload_bench).
  bool bulk_load = true;

  // Leaf fill fraction for bulk-loaded trees (1.0 packs leaves completely).
  double fill_factor = btree::BTree::kDefaultFillFactor;

  // Worker threads for partition builds. With > 1, every fresh partition
  // store gets a private BufferManager over its own disk segments and the
  // partitions bulk-build concurrently; shared and pre-existing stores are
  // always loaded serially. 1 = build in the calling thread (metered runs
  // stay single-threaded and bit-identical).
  uint32_t build_threads = 1;

  // --- Transactional maintenance (beyond the paper) ----------------------
  // Route every edge-maintenance operation through a page transaction
  // (storage/mvcc.h): tree writes stage privately, commit as one epoch, and
  // roll back cleanly on conflict. Enables multi-writer maintenance of ASRs
  // over disjoint partitions (writers sharing a partition store serialize on
  // its claim) and OpenSnapshot() readers that see a consistent committed
  // epoch while maintenance is mid-flight. Requires the disk to have an
  // MvccManager attached (Database::EnableMvcc) and forces private buffer
  // pools per partition store so one writer's dirty pages never ride another
  // writer's commit. Off (the default) keeps every path — and its metering —
  // bit-identical to the single-writer library.
  bool transactional = false;

  // Commit-conflict retry policy: attempts per operation and the base of the
  // exponential (jittered) backoff between them. Env overrides:
  // ASR_TXN_RETRIES, ASR_TXN_BACKOFF_US.
  uint32_t txn_max_retries = 8;
  uint32_t txn_backoff_us = 100;

  // Applies the environment overrides above (call sites that want env
  // configuration do so explicitly; defaults stay env-independent).
  static AsrOptions FromEnv();
};

// Storage of one partition, shareable between access support relations over
// overlapping path expressions (§5.4). Holds the partition's two redundant
// B+ trees plus the slice reference counts; when several ASRs share the
// store, each contributes its own projections and the counts sum, so one
// ASR's maintenance never drops a slice another ASR still covers — provided
// every sharing ASR is maintained on every base update (the §5.4 contract).
struct PartitionStore {
  uint32_t width = 0;
  // Number of ASRs whose partitions attach this store. A shared store
  // (owners > 1) can transiently hold another path's not-yet-maintained
  // contribution, so maintenance answers existence questions from the
  // object store instead of the trees.
  uint32_t owners = 0;
  std::string name;  // diagnostic segment-name stem
  std::unique_ptr<btree::BTree> forward;   // clustered on the first column
  std::unique_ptr<btree::BTree> backward;  // clustered on the last column
  std::map<rel::Row, uint32_t> refcounts;
  // Set when physical triage (checksum, tree structure, cross-tree
  // agreement) failed after a crash: the trees are untrusted and must not
  // be read or written until RebuildTrees() re-derives them. Queries over a
  // quarantined partition degrade to object-base navigation; maintenance
  // keeps the refcounts (which live in memory and survive the page-write
  // crash) current so the rebuild has an exact source.
  bool quarantined = false;
  // Set when the store was created for a concurrent build: its trees pin
  // through this dedicated pool (over the store's own disk segments), so
  // partition builders never contend on a shared BufferManager.
  std::unique_ptr<storage::BufferManager> private_buffers;
  // The pool the trees actually use: private_buffers when present, else the
  // object store's shared pool. Needed to recreate trees on ResetTrees.
  storage::BufferManager* buffers = nullptr;

  // Transactional-mode writer claim. An edge operation try-locks the claim
  // of every store it spans (address order) before touching refcounts or
  // trees; failure to acquire means another writer is mid-operation on a
  // shared store and the op aborts for backoff — the ASR-level conflict
  // surface, with storage-level OCC as the safety net. Snapshot capture and
  // rebuilds take the same claims blocking (deadlock-free because try-lockers
  // never hold-and-wait).
  std::mutex claim_mu;

  // Creates a store with two empty trees named `name`:fwd/:bwd, width
  // `width`, clustered on the first and last column. With `own_buffers`,
  // the trees get a private BufferManager of the same capacity as `shared`.
  static std::shared_ptr<PartitionStore> Create(
      storage::BufferManager* shared, const std::string& name, uint32_t width,
      bool own_buffers);

  // Bulk-loads both trees from `slices` (distinct partition tuples; each
  // tree sorts by its own clustered column). Trees must be empty.
  Status BulkLoad(std::vector<rel::Row> slices, double fill_factor);

  // Replaces both trees with fresh empty ones (new disk segments) and
  // clears the refcounts. Only valid for stores with a single owner — the
  // in-place rebuild path; the store's identity (shared_ptr) is preserved
  // so catalog registrations stay valid.
  void ResetTrees();

  // Rebuilds both trees (fresh disk segments) by bulk-loading the refcount
  // keys — the repair path for a quarantined store. Unlike ResetTrees the
  // refcounts are kept: for a shared store they are the only record that
  // includes every sibling ASR's contribution. Clears `quarantined`.
  Status RebuildTrees(double fill_factor);

  uint64_t TotalPages() const {
    return forward->leaf_page_count() + forward->inner_page_count() +
           backward->leaf_page_count() + backward->inner_page_count();
  }
};

// Callback consulted per partition during Build: return an existing store to
// share it (its width must match), or nullptr to create a fresh one.
// Arguments: partition index, first column, last column.
using PartitionProvider = std::function<std::shared_ptr<PartitionStore>(
    size_t, uint32_t, uint32_t)>;

// What Recover()/Repair() found and did (all page costs are additionally
// metered through the disk's per-segment counters).
struct RecoveryReport {
  // Fast path: no unresolved journal entries and every partition passed
  // physical triage — nothing was re-derived.
  bool clean = false;
  uint64_t journal_resolved = 0;    // pending/lost intents covered
  uint64_t rows_recomputed = 0;     // extension rows re-derived from the base
  uint32_t partitions_checked = 0;
  uint32_t partitions_quarantined = 0;  // failed triage; trees untrusted
  uint32_t partitions_reconciled = 0;   // healthy trees that needed a diff
  uint32_t partitions_repaired = 0;     // quarantined trees rebuilt (Repair)
  uint64_t slices_inserted = 0;     // per-tree reconcile insertions
  uint64_t slices_erased = 0;       // per-tree reconcile deletions

  std::string ToString() const;
};

class AccessSupportRelation {
 public:
  // Materializes the extension from the object store and loads every
  // partition into its two B+ trees.
  static Result<std::unique_ptr<AccessSupportRelation>> Build(
      gom::ObjectStore* store, PathExpression path, ExtensionKind kind,
      Decomposition decomposition, AsrOptions options = {},
      const PartitionProvider& provider = nullptr);

  const PathExpression& path() const { return path_; }
  ExtensionKind kind() const { return kind_; }
  const Decomposition& decomposition() const { return decomposition_; }
  const AsrOptions& options() const { return options_; }

  // Number of columns of the (undecomposed) relation.
  uint32_t width() const { return width_; }

  // Column of path position `pos` (equals pos when set columns are dropped).
  uint32_t ColumnOfPosition(uint32_t pos) const;

  // Eq. 35: which Q_{i,j} this extension can answer (i < j path positions).
  bool SupportsQuery(uint32_t i, uint32_t j) const {
    return ExtensionSupportsQuery(kind_, i, j, path_.n());
  }

  // Supported forward query Q_{i,j}(fw): keys at position j reachable from
  // `start` (a position-i object/value). NotSupported when Eq. 35 says so.
  Result<std::vector<AsrKey>> EvalForward(AsrKey start, uint32_t i,
                                          uint32_t j);

  // Supported backward query Q_{i,j}(bw): position-i keys with a path to
  // `target` (a position-j object/value).
  Result<std::vector<AsrKey>> EvalBackward(AsrKey target, uint32_t i,
                                           uint32_t j);

  // --- Incremental maintenance (§6) --------------------------------------
  // To be called AFTER the object store change has been applied. The edge at
  // attribute A_{p+1} connects `u` (an object at path position p) to `w`
  // (the position p+1 object, or the atomic value when p+1 == n). Follows
  // the paper's simplifying assumption that an object occurs at only one
  // path position (§6). Requires drop_set_columns.
  Status OnEdgeInserted(Oid u, uint32_t p, AsrKey w);
  Status OnEdgeRemoved(Oid u, uint32_t p, AsrKey w);

  // Single-valued attribute assignment u.A_{p+1} := new_value (old value
  // `old_value`); either side may be NULL. Call after the store update.
  Status OnAttributeAssigned(Oid u, uint32_t p, AsrKey old_value,
                             AsrKey new_value);

  // Recomputes the extension from the object base and reloads every
  // partition in place. The fallback maintenance path for ASRs with
  // retained set columns (where incremental maintenance is unavailable) and
  // for bulk changes. Shared partition stores keep contributions of other
  // ASRs intact. Note: the rebuilt trees reuse their segments' pages only
  // logically; the simulated disk does not reclaim old pages.
  Status Rebuild();

  // --- Crash recovery -----------------------------------------------------
  // Post-crash repair protocol, to be called after a simulated crash (or
  // whenever corruption is suspected). Marks the disk's restart point
  // (revealing torn sectors, disarming the injector), drops every cached
  // buffer frame, and triages each partition store: per-page checksums,
  // B+ tree structure, forward/backward agreement. If the journal has no
  // unresolved intent and triage is clean, returns with report->clean (the
  // fast path). Otherwise the extension is re-derived from the object base
  // — which is updated before maintenance runs and therefore authoritative;
  // replay and rollback coincide — healthy partitions are reconciled by
  // slice diff, and partitions that failed triage are quarantined: queries
  // degrade to object-base navigation over their path slice until Repair().
  // After Recover() the ASR answers every supported query correctly.
  Status Recover(RecoveryReport* report = nullptr);

  // Rebuilds every quarantined partition store from its (memory-resident,
  // crash-surviving) refcounts into fresh segments and re-admits it; clears
  // degradation. The "background repair" half of the protocol.
  Status Repair(RecoveryReport* report = nullptr);

  // True while any partition store is quarantined (queries still answer
  // correctly, at navigation cost).
  bool degraded() const;
  size_t quarantined_count() const;

  // --- Consistent-epoch readers (transactional mode) ----------------------
  // Captures a read-only view of every partition tree at the current
  // committed epoch (snapshot.h). The returned snapshot answers EvalForward/
  // EvalBackward with the exact rows the live ASR held at capture time, even
  // while later maintenance operations or a Rebuild are mid-flight —
  // retained page versions, not locks, isolate the reader. Requires
  // AsrOptions::transactional and a non-degraded ASR; capture briefly takes
  // every partition claim so it never lands mid-operation.
  Result<std::unique_ptr<AsrSnapshot>> OpenSnapshot();

  const MaintenanceJournal& journal() const { return journal_; }
  // Mutable access for persistence wiring: Database attaches its WAL here
  // and replays journal records through ApplyWalRecord() at reopen.
  MaintenanceJournal* mutable_journal() { return &journal_; }

  // --- Introspection -------------------------------------------------------
  size_t partition_count() const { return partitions_.size(); }
  const btree::BTree& forward_tree(size_t idx) const {
    return *partitions_[idx].store->forward;
  }
  const btree::BTree& backward_tree(size_t idx) const {
    return *partitions_[idx].store->backward;
  }
  // The (possibly shared) storage of partition `idx`.
  const std::shared_ptr<PartitionStore>& partition_store(size_t idx) const {
    return partitions_[idx].store;
  }
  std::pair<uint32_t, uint32_t> partition_range(size_t idx) const {
    return decomposition_.partition(idx);
  }

  // Materializes partition `idx` as a relation (test oracle; scans pages).
  Result<rel::Relation> DumpPartition(size_t idx);

  // The materialized full-width extension (introspection for the invariant
  // checker, which compares it against partitions and the object base).
  const std::set<rel::Row>& rows() const { return full_rows_; }
  gom::ObjectStore* object_store() const { return store_; }

  // Structural self-validation: per-partition B+ tree integrity, forward/
  // backward tree agreement, refcount consistency, and — for solely owned
  // stores — agreement with the Def. 3.8 projection of the relation.
  // Returns the first violation as Corruption. This is the ASR_PARANOID
  // commit-point check; the paper-level invariants (Defs. 3.3–3.6
  // membership, Theorem 3.9 losslessness) live in src/check.
  Status ValidateStructure();

  // Commit-point hook: ValidateStructure() under -DASR_PARANOID=ON, no-op
  // (and compiled away) otherwise.
  Status ParanoidValidate() {
#if ASR_PARANOID_ENABLED
    return ValidateStructure();
#else
    return Status::OK();
#endif
  }

  // Total leaf+inner pages over all partition trees (storage footprint).
  uint64_t TotalPages() const;

  // Multi-line human-readable summary: path, extension, decomposition, and
  // per-partition tuple/page/height statistics.
  std::string Describe() const;

  // Pushes this ASR's query/maintenance counters, frontier-size histogram,
  // and per-partition structure (tuples, pages, plus both trees' counters)
  // into `registry` under `prefix`. Cold path; call at quiescent points.
  void ExportMetrics(obs::MetricsRegistry* registry,
                     const std::string& prefix) const;

 private:
  friend class AsrSnapshot;

  struct Partition {
    uint32_t first = 0;
    uint32_t last = 0;
    std::shared_ptr<PartitionStore> store;
  };

  AccessSupportRelation(gom::ObjectStore* store, PathExpression path,
                        ExtensionKind kind, Decomposition decomposition,
                        AsrOptions options);

  // Rows of partition `p_idx` whose absolute column `col` equals `value`;
  // uses a tree lookup when `col` is the partition's first/last column and a
  // page scan otherwise (the Eq. 33/34 interior-column case).
  Result<std::vector<rel::Row>> PartitionRowsWithValue(size_t p_idx,
                                                       uint32_t col,
                                                       AsrKey value);

  // Streaming variant of PartitionRowsWithValue: `fn` returns false to stop
  // early (used by existence probes to avoid materializing clusters).
  Status PartitionEachRowWithValue(
      size_t p_idx, uint32_t col, AsrKey value,
      const std::function<bool(const rel::Row&)>& fn);

  // Installs `rows` as this ASR's contribution: fills full_rows_ and the
  // per-partition slice refcounts, bulk-loading partitions whose store is
  // flagged fresh (concurrently when options_.build_threads > 1) and
  // inserting tuple-at-a-time into stores that already hold contributions.
  Status LoadRows(const std::vector<rel::Row>& rows,
                  const std::vector<bool>& fresh_store);

  // Inserts/erases a full-width row into/from all partitions (projected).
  void InsertRow(const rel::Row& row);
  void EraseRow(const rel::Row& row);

  // --- maintenance helpers (maintenance.cc) ---------------------------
  // Maximal partial paths over columns [0..p] ending in `u` (NULL-padded on
  // the left when the fragment does not reach position 0).
  Result<std::vector<rel::Row>> LeftFragments(Oid u, uint32_t p);
  // Maximal partial paths over columns [p+1..n] starting at `w`.
  Result<std::vector<rel::Row>> RightFragments(AsrKey w, uint32_t p1);

  Result<std::vector<rel::Row>> LeftFragmentsFromAsr(Oid u, uint32_t p);
  Result<std::vector<rel::Row>> RightFragmentsFromAsr(AsrKey w, uint32_t p1);
  Result<std::vector<rel::Row>> LeftFragmentsFromStore(Oid u, uint32_t p);
  Result<std::vector<rel::Row>> RightFragmentsFromStore(AsrKey w,
                                                        uint32_t p1);

  // Implementations of the maintenance entry points; the public wrappers
  // add the journal's begin/commit-or-mark-lost envelope around them.
  Status OnEdgeInsertedImpl(Oid u, uint32_t p, AsrKey w);
  Status OnEdgeRemovedImpl(Oid u, uint32_t p, AsrKey w);
  Status RebuildImpl();

  // --- transactional maintenance (txn.cc) ------------------------------
  // Journal envelope + claim/attempt/backoff retry loop around one edge
  // operation; the transactional counterpart of the wrappers above.
  Status RunEdgeTxn(MaintOp op, Oid u, uint32_t p, AsrKey w);
  // One optimistic attempt: claim stores (try-lock, address order), stage
  // tree writes in a PageTransaction, commit; on claim failure or commit
  // conflict roll everything back (staged pages dropped, tree metas
  // restored, in-memory rows/refcounts undone) and return Aborted.
  Status AttemptEdgeTxn(MaintOp op, Oid u, uint32_t p, AsrKey w);
  // Distinct partition stores, address-sorted (the canonical claim order).
  std::vector<PartitionStore*> DistinctStores() const;
  // Registers every partition tree segment with the disk's MvccManager.
  // FailedPrecondition when none is attached. Idempotent; re-run after any
  // path that gives a store fresh segments (ResetTrees/RebuildTrees).
  Status RegisterTreeSegments();
  // The MvccManager behind this ASR's disk, or nullptr.
  storage::MvccManager* mvcc() const;

  // True when any buffer pool this ASR writes through has recorded a
  // write-back failure — the signal that an operation's tree updates did
  // not all reach the disk and its journal entry must be marked lost.
  bool AnyWriteError() const;

  // --- recovery helpers (recovery.cc) ---------------------------------
  // Physical triage of one partition store: segment checksums, both trees'
  // structure, forward/backward tuple agreement. OK = trees trustworthy.
  Status TriagePartitionStore(PartitionStore* store);

  // Degraded navigation for quarantined partitions: chase the object graph
  // between absolute relation columns (honoring retained set columns).
  // Forward expands the frontier column by column; backward extent-scans
  // the objects of the destination column, expands them forward, and
  // back-propagates. Both meter through the object store's pages.
  Result<std::unordered_set<AsrKey>> NavigateForward(
      const std::unordered_set<AsrKey>& frontier, uint32_t from_col,
      uint32_t to_col);
  Result<std::unordered_set<AsrKey>> NavigateBackward(
      const std::unordered_set<AsrKey>& frontier, uint32_t from_col,
      uint32_t to_col);
  // Keys at column `col + 1` reachable from `key` at column `col`.
  Result<std::vector<AsrKey>> StepRight(AsrKey key, uint32_t col);
  // Path position occupying absolute column `col`, or -1 for a retained
  // set-instance column.
  int PositionOfColumn(uint32_t col) const;

  // Current out-edges of `u` along A_{p+1} (reads the object store).
  Result<std::vector<AsrKey>> OutEdges(Oid u, uint32_t p);
  // Is A_{q+1} of the position-q object `x` non-NULL? (An empty set counts
  // as defined — it occupies a tuple of E_q per Def. 3.3.)
  Result<bool> AttrDefined(AsrKey x, uint32_t q);
  // Does any object other than `exclude` currently reference `w` at
  // position p1 = p+1? Answered from the ASR when the extension carries the
  // information, else from the object store.
  Result<bool> HasOtherInEdge(AsrKey w, uint32_t p1, Oid exclude);

  gom::ObjectStore* store_;
  PathExpression path_;
  ExtensionKind kind_;
  Decomposition decomposition_;
  AsrOptions options_;
  uint32_t width_ = 0;
  std::vector<Partition> partitions_;
  // The materialized full-width extension as a set. Insert/erase of
  // full-width rows is exact set semantics; re-inserting an existing row or
  // erasing an absent one is a no-op that must not disturb the partitions.
  std::set<rel::Row> full_rows_;

  // Undo log for transactional attempts: while undo_active_, InsertRow/
  // EraseRow push closures reversing their full_rows_/refcount effects (tree
  // effects roll back physically — staged pages dropped, metas restored — so
  // the closures touch only the in-memory side). Replayed in reverse on
  // abort. Owned by the thread holding every claim; never concurrent.
  std::vector<std::function<void()>> undo_log_;
  bool undo_active_ = false;

  // Observability (compiled out under ASR_METRICS=OFF). Single-writer: the
  // thread evaluating queries / applying maintenance owns these.
  obs::HotCounter fwd_queries_;
  obs::HotCounter bwd_queries_;
  obs::HotCounter hop_lookups_;   // partition hops answered by cluster lookup
  obs::HotCounter hop_scans_;     // interior-column hops (full partition scan)
  obs::HotHistogram frontier_sizes_;  // frontier cardinality per hop
  obs::HotCounter maint_edge_inserts_;
  obs::HotCounter maint_edge_removes_;
  obs::HotCounter rebuilds_;
  obs::HotCounter rebuild_rows_;  // rows re-installed across all rebuilds
  obs::HotCounter degraded_hops_;  // hops answered by object-base navigation
  obs::HotCounter recoveries_;
  obs::HotCounter repairs_;

  MaintenanceJournal journal_;
};

}  // namespace asr

#endif  // ASR_ASR_ACCESS_SUPPORT_RELATION_H_
