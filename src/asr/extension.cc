#include "asr/extension.h"

#include <unordered_set>

namespace asr {

std::string ExtensionKindName(ExtensionKind kind) {
  switch (kind) {
    case ExtensionKind::kCanonical:
      return "can";
    case ExtensionKind::kFull:
      return "full";
    case ExtensionKind::kLeftComplete:
      return "left";
    case ExtensionKind::kRightComplete:
      return "right";
  }
  return "?";
}

bool ExtensionSupportsQuery(ExtensionKind kind, uint32_t i, uint32_t j,
                            uint32_t n) {
  ASR_DCHECK(i < j && j <= n);
  switch (kind) {
    case ExtensionKind::kCanonical:
      return i == 0 && j == n;
    case ExtensionKind::kFull:
      return true;
    case ExtensionKind::kLeftComplete:
      return i == 0;
    case ExtensionKind::kRightComplete:
      return j == n;
  }
  return false;
}

namespace {

// Runs `fn` over every live tuple object whose type is `type` or a subtype
// of it ("the constrained type constitutes only an upper bound", §2).
Status ScanExtent(gom::ObjectStore* store, TypeId type,
                  const std::function<Status(const gom::TupleView&)>& fn) {
  const gom::Schema& schema = store->schema();
  for (TypeId t = 0; t < schema.type_count(); ++t) {
    if (!schema.IsTuple(t) || !schema.IsSubtypeOf(t, type)) continue;
    ASR_RETURN_IF_ERROR(store->ScanTuples(t, fn));
  }
  return Status::OK();
}

}  // namespace

Result<rel::Relation> BuildAuxiliaryRelation(gom::ObjectStore* store,
                                             const PathExpression& path,
                                             uint32_t j,
                                             bool drop_set_columns,
                                             Oid anchor_collection) {
  ASR_CHECK(j >= 1 && j <= path.n());
  const PathStep& step = path.step(j);
  const bool ternary = step.set_occurrence && !drop_set_columns;
  rel::Relation out(ternary ? 3 : 2);

  // Collection-anchored paths: E_0 only carries members of C.
  std::unordered_set<AsrKey> anchor_members;
  const bool anchored = j == 1 && !anchor_collection.IsNull();
  if (anchored) {
    Result<gom::SetView> view = store->GetSet(anchor_collection);
    ASR_RETURN_IF_ERROR(view.status());
    anchor_members.insert(view->members.begin(), view->members.end());
  }

  // The attribute index must be resolved per concrete object type: an
  // attribute inherited from step.domain_type keeps its flattened index in
  // every subtype because inherited attributes come first, but multiple
  // supertypes can shift it, so resolve by name per type.
  const gom::Schema& schema = store->schema();
  Status st = ScanExtent(
      store, step.domain_type,
      [&](const gom::TupleView& view) -> Status {
        AsrKey self = AsrKey::FromOid(view.oid);
        if (anchored && anchor_members.count(self) == 0) {
          return Status::OK();  // t_0 object outside the anchor collection
        }
        Result<uint32_t> idx =
            schema.FindAttribute(view.oid.type_id(), step.attr_name);
        ASR_RETURN_IF_ERROR(idx.status());
        AsrKey value = view.attrs[*idx];
        if (value.IsNull()) return Status::OK();  // undefined A_j: no tuple
        if (!step.set_occurrence) {
          out.AddRow({self, value});
          return Status::OK();
        }
        // Set occurrence: expand the set instance's members.
        Result<gom::SetView> set = store->GetSet(value.ToOid());
        ASR_RETURN_IF_ERROR(set.status());
        if (set->members.empty()) {
          // "In the special case that o'_j is an empty set the relation
          // contains the tuple (id(o_{j-1}), id(o'_j), NULL)" (Def. 3.3).
          if (ternary) {
            out.AddRow({self, value, AsrKey::Null()});
          } else {
            out.AddRow({self, AsrKey::Null()});
          }
          return Status::OK();
        }
        for (AsrKey member : set->members) {
          if (ternary) {
            out.AddRow({self, value, member});
          } else {
            out.AddRow({self, member});
          }
        }
        return Status::OK();
      });
  ASR_RETURN_IF_ERROR(st);
  return out;
}

Result<rel::Relation> ComputeExtension(gom::ObjectStore* store,
                                       const PathExpression& path,
                                       ExtensionKind kind,
                                       bool drop_set_columns,
                                       Oid anchor_collection) {
  const uint32_t n = path.n();
  std::vector<rel::Relation> aux;
  aux.reserve(n);
  for (uint32_t j = 1; j <= n; ++j) {
    Result<rel::Relation> e = BuildAuxiliaryRelation(
        store, path, j, drop_set_columns, anchor_collection);
    ASR_RETURN_IF_ERROR(e.status());
    aux.push_back(std::move(*e));
  }

  using rel::JoinKind;
  switch (kind) {
    case ExtensionKind::kCanonical:
    case ExtensionKind::kFull:
    case ExtensionKind::kLeftComplete: {
      JoinKind jk = kind == ExtensionKind::kCanonical ? JoinKind::kNatural
                    : kind == ExtensionKind::kFull    ? JoinKind::kFullOuter
                                                      : JoinKind::kLeftOuter;
      rel::Relation acc = std::move(aux[0]);
      for (uint32_t i = 1; i < n; ++i) {
        acc = rel::Relation::Join(acc, aux[i], jk);
      }
      acc.Normalize();
      return acc;
    }
    case ExtensionKind::kRightComplete: {
      // Right-associated per Def. 3.7.
      rel::Relation acc = std::move(aux[n - 1]);
      for (uint32_t i = n - 1; i >= 1; --i) {
        acc = rel::Relation::Join(aux[i - 1], acc, JoinKind::kRightOuter);
      }
      acc.Normalize();
      return acc;
    }
  }
  return Status::InvalidArgument("unknown extension kind");
}

}  // namespace asr
