#include "asr/decomposition.h"

namespace asr {

Decomposition Decomposition::None(uint32_t m) {
  ASR_CHECK(m >= 1);
  return Decomposition({0, m});
}

Decomposition Decomposition::Binary(uint32_t m) {
  ASR_CHECK(m >= 1);
  std::vector<uint32_t> cuts(m + 1);
  for (uint32_t i = 0; i <= m; ++i) cuts[i] = i;
  return Decomposition(std::move(cuts));
}

Result<Decomposition> Decomposition::Of(std::vector<uint32_t> cuts,
                                        uint32_t m) {
  if (cuts.size() < 2 || cuts.front() != 0 || cuts.back() != m) {
    return Status::InvalidArgument(
        "decomposition must run from 0 to m inclusive");
  }
  for (size_t i = 1; i < cuts.size(); ++i) {
    if (cuts[i] <= cuts[i - 1]) {
      return Status::InvalidArgument(
          "decomposition cut points must be strictly increasing");
    }
  }
  return Decomposition(std::move(cuts));
}

std::vector<Decomposition> Decomposition::EnumerateAll(uint32_t m) {
  ASR_CHECK(m >= 1 && m <= 20);
  std::vector<Decomposition> out;
  uint32_t interior = m - 1;
  for (uint64_t mask = 0; mask < (uint64_t{1} << interior); ++mask) {
    std::vector<uint32_t> cuts{0};
    for (uint32_t b = 0; b < interior; ++b) {
      if ((mask >> b) & 1) cuts.push_back(b + 1);
    }
    cuts.push_back(m);
    out.push_back(Decomposition(std::move(cuts)));
  }
  return out;
}

bool Decomposition::IsBoundary(uint32_t col) const {
  for (uint32_t c : cuts_) {
    if (c == col) return true;
  }
  return false;
}

int Decomposition::PartitionStartingAt(uint32_t col) const {
  for (size_t i = 0; i + 1 < cuts_.size(); ++i) {
    if (cuts_[i] == col) return static_cast<int>(i);
  }
  return -1;
}

int Decomposition::PartitionEndingAt(uint32_t col) const {
  for (size_t i = 1; i < cuts_.size(); ++i) {
    if (cuts_[i] == col) return static_cast<int>(i - 1);
  }
  return -1;
}

int Decomposition::PartitionCovering(uint32_t col) const {
  ASR_CHECK(col <= m());
  for (size_t i = 0; i + 1 < cuts_.size(); ++i) {
    if (cuts_[i] <= col && col <= cuts_[i + 1]) return static_cast<int>(i);
  }
  return static_cast<int>(partition_count() - 1);
}

std::string Decomposition::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cuts_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(cuts_[i]);
  }
  out += ")";
  return out;
}

}  // namespace asr
