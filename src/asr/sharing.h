// Sharing of access support relations across overlapping path expressions
// (paper §5.4).
//
// Two paths
//   t0 .A1...Ai .A_{i+1}...A_{i+j} .A_{i+j+1}...An         (1)
//   t0'.A1'...Ai'.A_{i+1}...A_{i+j} .A'_{i'+j+1}...A'_{n'}  (2)
// that traverse the same attribute chain in their middle may share the
// partition over that chain: for full extensions the decompositions
// (0, i, i+j, n) and (0, i', i'+j, n') have E^{i,i+j}_full = Ē^{i',i'+j}_full
// — both materialize exactly the partial paths of the shared chain. Sharing
// is generally only possible for full extensions; the exceptions are shared
// *prefixes* under left-complete and shared *suffixes* under right-complete
// extensions (§5.4).
//
// The AsrCatalog exploits this: when building a full-extension ASR whose
// decomposition contains a partition over a chain segment that some earlier
// ASR already stores, the existing PartitionStore is attached instead of a
// fresh one. Contract: every catalog ASR must receive its maintenance call
// on every base update, which keeps the summed slice refcounts of shared
// stores exact.
#ifndef ASR_ASR_SHARING_H_
#define ASR_ASR_SHARING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asr/access_support_relation.h"

namespace asr {

// A common attribute-chain segment of two paths: steps a_start+1..a_start+len
// of `a` coincide with steps b_start+1..b_start+len of `b` (same attribute
// names, domain and range types).
struct PathOverlap {
  uint32_t a_start = 0;
  uint32_t b_start = 0;
  uint32_t length = 0;  // number of shared steps (j in §5.4)

  bool empty() const { return length == 0; }
};

// Longest common chain segment (leftmost in `a` on ties).
PathOverlap FindLongestOverlap(const PathExpression& a,
                               const PathExpression& b);

// Can the overlap's partition be shared under extension `kind` (§5.4)?
// full: always; left-complete: only when the segment is a prefix of both
// paths; right-complete: only when it is a suffix of both.
bool OverlapSharable(const PathOverlap& overlap, ExtensionKind kind,
                     const PathExpression& a, const PathExpression& b);

// The §5.4 decomposition (0, i, i+j, m) that isolates the shared segment of
// one path (degenerate cut points are dropped).
Decomposition SharingDecomposition(const PathOverlap& overlap, bool for_a,
                                   const PathExpression& path);

// Canonical signature of the chain segment spanning positions
// [start, start+len] of `path`: anchor type plus attribute names. Two
// partitions with equal signatures store the same relation under the full
// extension.
std::string SegmentSignature(const PathExpression& path, uint32_t start,
                             uint32_t length);

// Catalog of ASRs over one object base that transparently shares partition
// stores between full-extension ASRs whose partitions cover identical chain
// segments. (Dropped set columns only: signatures address positions.)
class AsrCatalog {
 public:
  explicit AsrCatalog(gom::ObjectStore* store) : store_(store) {}
  ASR_DISALLOW_COPY_AND_ASSIGN(AsrCatalog);

  // Builds (or shares into) an ASR; the catalog keeps ownership.
  Result<AccessSupportRelation*> Build(PathExpression path,
                                       ExtensionKind kind,
                                       Decomposition decomposition);

  size_t asr_count() const { return asrs_.size(); }
  AccessSupportRelation* asr(size_t idx) { return asrs_[idx].get(); }

  // Number of partitions attached from the shared segment registry instead
  // of being rebuilt.
  uint64_t shared_partition_count() const { return shared_count_; }

  // Forwards a base update to every ASR in the catalog (the sharing
  // contract): the edge along attribute `attr_name` from object `u` to key
  // `w` was applied to the store. Each ASR locates the attribute on its own
  // path (if present) and runs its incremental maintenance.
  Status OnEdgeInserted(Oid u, const std::string& attr_name, AsrKey w);
  Status OnEdgeRemoved(Oid u, const std::string& attr_name, AsrKey w);

 private:
  Status ForwardEdge(Oid u, const std::string& attr_name, AsrKey w,
                     bool inserted);

  gom::ObjectStore* store_;
  std::vector<std::unique_ptr<AccessSupportRelation>> asrs_;
  // Signature of a chain segment -> its shared store (full extension only).
  std::map<std::string, std::shared_ptr<PartitionStore>> segments_;
  uint64_t shared_count_ = 0;
};

}  // namespace asr

#endif  // ASR_ASR_SHARING_H_
