#include "asr/path_expression.h"

#include <sstream>

namespace asr {

PathExpression::PathExpression(const gom::Schema* schema, TypeId anchor,
                               std::vector<PathStep> steps)
    : schema_(schema), anchor_(anchor), steps_(std::move(steps)) {
  col_of_pos_.reserve(steps_.size() + 1);
  col_of_pos_.push_back(0);
  uint32_t col = 0;
  for (const PathStep& step : steps_) {
    ++col;  // column of t_i, or of t'_i when a set occurs
    if (step.set_occurrence) {
      ++k_;
      ++col;  // the member column
    }
    col_of_pos_.push_back(col);
  }
}

Result<PathExpression> PathExpression::Create(
    const gom::Schema& schema, TypeId anchor,
    const std::vector<std::string>& attrs) {
  if (!schema.IsValidType(anchor) || !schema.IsTuple(anchor)) {
    return Status::TypeError("path anchor must be a tuple type");
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("path expression must have length >= 1");
  }
  std::vector<PathStep> steps;
  steps.reserve(attrs.size());
  TypeId domain = anchor;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (!schema.IsTuple(domain)) {
      return Status::TypeError(
          "path step '" + attrs[i] +
          "' applied to non-tuple type '" + schema.name(domain) + "'");
    }
    Result<uint32_t> idx = schema.FindAttribute(domain, attrs[i]);
    ASR_RETURN_IF_ERROR(idx.status());
    const gom::Attribute& attr = schema.attributes(domain)[*idx];
    PathStep step;
    step.attr_name = attrs[i];
    step.attr_index = *idx;
    step.domain_type = domain;
    if (schema.IsCollection(attr.range_type)) {
      // Lists are handled exactly like sets (§2.1).
      step.set_occurrence = true;
      step.set_type = attr.range_type;
      step.range_type = schema.element_type(attr.range_type);
    } else {
      step.range_type = attr.range_type;
    }
    // Atomic ranges terminate a path: only the last step may be atomic.
    if (schema.IsAtomic(step.range_type) && i + 1 != attrs.size()) {
      return Status::TypeError("attribute '" + attrs[i] +
                               "' has an atomic range but is not the last "
                               "step of the path");
    }
    domain = step.range_type;
    steps.push_back(std::move(step));
  }
  return PathExpression(&schema, anchor, std::move(steps));
}

Result<PathExpression> PathExpression::Parse(const gom::Schema& schema,
                                             TypeId anchor,
                                             const std::string& dotted) {
  std::vector<std::string> attrs;
  std::stringstream ss(dotted);
  std::string part;
  while (std::getline(ss, part, '.')) {
    if (part.empty()) {
      return Status::InvalidArgument("empty path component in '" + dotted +
                                     "'");
    }
    attrs.push_back(part);
  }
  return Create(schema, anchor, attrs);
}

TypeId PathExpression::type_at(uint32_t pos) const {
  ASR_DCHECK(pos <= n());
  if (pos == 0) return anchor_;
  return steps_[pos - 1].range_type;
}

bool PathExpression::terminal_is_atomic() const {
  return schema_->IsAtomic(type_at(n()));
}

std::string PathExpression::ToString() const {
  std::string out = schema_->name(anchor_);
  for (const PathStep& step : steps_) {
    out += ".";
    out += step.attr_name;
  }
  return out;
}

}  // namespace asr
